#!/usr/bin/env bash
# Build the simulator, run the full reproduction sweep (every paper
# machine x every benchmark) once serially and once on the thread
# pool, and check the resulting IPC matrix against the checked-in
# golden ("hpa.sweep-golden.v1"; any drift is reported per cell as
# machine, workload, expected and got). Writes BENCH_sweep.json
# ("hpa.bench-sweep.v3": per-run status/IPC, wall time, simulated-
# cycles/sec, and the measured serial-to-parallel speedup) in the
# repo root — the canonical committed artifact — then validates both
# documents with hpa_json_validate and diffs the regenerated sweep
# against the committed baseline with compare_bench.py
# --max-regress 10 (a hard gate at the default budget).
#
# Usage: tools/run_full_sweep.sh
#   HPA_INSTS  committed-instruction budget per run (default 50000 —
#              the budget the golden was recorded at; other values
#              skip the golden comparison and the perf gate)
#   HPA_JOBS   worker threads for the parallel pass (default: one
#              per hardware thread)
#
# To refresh the golden after an intentional model change:
#   ./build/tools/hpa_bench_sweep --insts 50000 \
#       --write-golden tools/golden_sweep_ipc.json
set -euo pipefail
cd "$(dirname "$0")/.."

INSTS="${HPA_INSTS:-50000}"
JOBS="${HPA_JOBS:-0}"
GOLDEN=tools/golden_sweep_ipc.json

cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j"$(nproc)" --target hpa_bench_sweep \
    --target hpa_json_validate

CHECK=(--check "$GOLDEN")
if [ "$INSTS" != 50000 ]; then
    echo "note: HPA_INSTS=$INSTS differs from the golden budget" \
         "(50000); skipping the golden comparison"
    CHECK=()
fi

# Snapshot the committed baseline before the sweep overwrites it, so
# the perf gate below compares old-vs-new rather than new-vs-new.
BASELINE=$(mktemp)
trap 'rm -f "$BASELINE"' EXIT
HAVE_BASELINE=0
if git show HEAD:BENCH_sweep.json > "$BASELINE" 2>/dev/null; then
    HAVE_BASELINE=1
fi

./build/tools/hpa_bench_sweep --insts "$INSTS" --jobs "$JOBS" \
    --out BENCH_sweep.json "${CHECK[@]}"

./build/tools/hpa_json_validate --schema hpa.sweep-golden.v1 "$GOLDEN"
./build/tools/hpa_json_validate --schema hpa.bench-sweep.v3 \
    BENCH_sweep.json

if [ "$HAVE_BASELINE" = 1 ] && [ "$INSTS" = 50000 ]; then
    python3 tools/compare_bench.py "$BASELINE" BENCH_sweep.json \
        --max-regress 10
else
    echo "note: no committed BENCH_sweep.json baseline (or non-" \
         "default budget); skipping the perf regression gate"
fi

echo "full sweep OK: BENCH_sweep.json written"
