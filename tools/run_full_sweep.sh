#!/usr/bin/env bash
# Build the simulator, run the full reproduction sweep (every paper
# machine x every benchmark) once serially and once on the thread
# pool, and check the resulting IPC matrix against the checked-in
# golden. Writes BENCH_sweep.json (per-run IPC, wall time,
# simulated-cycles/sec, and the measured serial-to-parallel speedup)
# in the repo root.
#
# Usage: tools/run_full_sweep.sh
#   HPA_INSTS  committed-instruction budget per run (default 50000 —
#              the budget the golden was recorded at; other values
#              skip the golden comparison)
#   HPA_JOBS   worker threads for the parallel pass (default: one
#              per hardware thread)
set -euo pipefail
cd "$(dirname "$0")/.."

INSTS="${HPA_INSTS:-50000}"
JOBS="${HPA_JOBS:-0}"
GOLDEN=tools/golden_sweep_ipc.json

cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j"$(nproc)" --target hpa_bench_sweep

CHECK=(--check "$GOLDEN")
if [ "$INSTS" != 50000 ]; then
    echo "note: HPA_INSTS=$INSTS differs from the golden budget" \
         "(50000); skipping the golden comparison"
    CHECK=()
fi

./build/tools/hpa_bench_sweep --insts "$INSTS" --jobs "$JOBS" \
    --out BENCH_sweep.json "${CHECK[@]}"

echo "full sweep OK: BENCH_sweep.json written"
