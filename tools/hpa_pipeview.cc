/**
 * @file
 * Pipeline viewer (in the spirit of SimpleScalar's pipetrace): run a
 * small HPA-ISA program or the first instructions of a benchmark and
 * print, per committed instruction, its fetch / dispatch / issue /
 * complete / commit cycles plus an ASCII occupancy strip. Handy for
 * seeing the half-price penalties land: a slow-bus wakeup shifts
 * issue right by one; a sequential register access stretches
 * issue-to-complete; a replay reissues.
 *
 *   hpa_pipeview --asm kernel.s
 *   hpa_pipeview --bench bzip --insts 40 --wakeup seq --regfile seq
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "sim/simulation.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

struct Row
{
    uint64_t seq;
    uint64_t pc;
    std::string disasm;
    uint64_t fetch, dispatch, issue, complete, commit;
    uint32_t issues;
    bool seq_ra;
    bool replay;
};

void
usage(std::ostream &os)
{
    os << "usage: hpa_pipeview (--asm FILE | --bench NAME) "
          "[--insts N] [--width N]\n"
          "       [--wakeup conv|seq|seq-nopred|tag-elim] "
          "[--regfile 2port|seq|extra-stage|half-xbar]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench, asm_file;
    uint64_t insts = 32;
    unsigned width = 4;
    core::CoreConfig cfg = core::fourWideConfig();

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << argv[i] << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help") {
            usage(std::cout);
            return 0;
        } else if (a == "--bench") {
            bench = need(i);
        } else if (a == "--asm") {
            asm_file = need(i);
        } else if (a == "--insts") {
            insts = std::stoull(need(i));
        } else if (a == "--width") {
            width = unsigned(std::stoul(need(i)));
        } else if (a == "--wakeup") {
            std::string v = need(i);
            cfg.wakeup = v == "seq" ? core::WakeupModel::Sequential
                : v == "seq-nopred" ? core::WakeupModel::SequentialNoPred
                : v == "tag-elim" ? core::WakeupModel::TagElimination
                : core::WakeupModel::Conventional;
        } else if (a == "--regfile") {
            std::string v = need(i);
            cfg.regfile = v == "seq"
                ? core::RegfileModel::SequentialAccess
                : v == "extra-stage" ? core::RegfileModel::ExtraStage
                : v == "half-xbar"
                    ? core::RegfileModel::HalfPortCrossbar
                    : core::RegfileModel::TwoPort;
        } else {
            std::cerr << "unknown option: " << a << "\n";
            usage(std::cerr);
            return 2;
        }
    }

    if (bench.empty() == asm_file.empty()) {
        usage(std::cerr);
        return 2;
    }

    if (width == 8) {
        auto w8 = core::eightWideConfig();
        w8.wakeup = cfg.wakeup;
        w8.regfile = cfg.regfile;
        cfg = w8;
    }

    try {
        assembler::Program image;
        if (!bench.empty()) {
            image = workloads::make(bench,
                                    workloads::Scale::Test).program;
        } else {
            std::ifstream in(asm_file);
            if (!in) {
                std::cerr << "cannot open " << asm_file << "\n";
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            image = assembler::assemble(text.str());
        }

        sim::Simulation s(image, cfg, insts);
        std::vector<Row> rows;
        s.core().setCommitListener(
            [&rows](const core::DynInst &di, uint64_t commit) {
                rows.push_back(Row{di.seq, di.rec->pc,
                                   di.rec->inst.disassemble(),
                                   di.fetchCycle, di.dispatchCycle,
                                   di.issueCycle, di.completeCycle,
                                   commit, di.issueToken,
                                   di.seqRegAccess,
                                   di.loadMissReplay});
            });
        s.run(1000000);

        std::printf("%4s %-28s %6s %6s %6s %6s %6s  %s\n", "seq",
                    "instruction", "fetch", "disp", "issue", "compl",
                    "commit", "notes");
        uint64_t base = rows.empty() ? 0 : rows.front().fetch;
        for (const Row &r : rows) {
            std::string notes;
            if (r.issues > 1)
                notes += "replayed x" + std::to_string(r.issues - 1)
                    + " ";
            if (r.seq_ra)
                notes += "seq-RF ";
            if (r.replay)
                notes += "load-miss ";
            auto u = [](uint64_t v) {
                return static_cast<unsigned long long>(v);
            };
            std::printf("%4llu %-28s %6llu %6llu %6llu %6llu %6llu  %s\n",
                        u(r.seq), r.disasm.c_str(),
                        u(r.fetch - base),
                        u(r.dispatch - base),
                        u(r.issue - base),
                        u(r.complete - base),
                        u(r.commit - base),
                        notes.c_str());
        }
        std::printf("\nIPC %.3f over %llu cycles\n", s.ipc(),
                    static_cast<unsigned long long>(s.core().cycle()));
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
