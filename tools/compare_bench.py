#!/usr/bin/env python3
"""Compare two throughput-benchmark JSON artifacts.

Diffs a baseline and a candidate BENCH_sweep.json
("hpa.bench-sweep.v2") or micro_throughput --json artifact
("hpa.micro-throughput.v1") and flags throughput regressions:

  tools/compare_bench.py docs/runs/BENCH_sweep_before.json BENCH_sweep.json

A regression is a drop of more than --threshold (default 10%) in
aggregate_cycles_per_sec or in any individual run's cycles_per_sec.
Report-only by default — wall-clock numbers depend on the host, so
this is a review aid, not a merge gate; pass --strict to exit 1 on
any flagged regression (e.g. for a dedicated perf CI host).

Only uses the standard library; the artifacts are small and flat.
"""

import argparse
import json
import sys

KNOWN_SCHEMAS = ("hpa.bench-sweep.v2", "hpa.micro-throughput.v1")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")
    schema = doc.get("schema", "<none>")
    if schema not in KNOWN_SCHEMAS:
        sys.exit(
            f"error: {path} has schema {schema!r}; expected one of "
            f"{', '.join(KNOWN_SCHEMAS)}"
        )
    return doc


def run_key(run):
    # bench-sweep runs are keyed by machine|workload; micro-throughput
    # runs by width|workload. Both identify a unique measurement.
    if "machine" in run:
        return f"{run['machine']}|{run['workload']}"
    return f"{run.get('width', '?')}-wide|{run['workload']}"


def pct(new, old):
    return 100.0 * (new - old) / old if old else float("nan")


def main():
    ap = argparse.ArgumentParser(
        description="diff two throughput benchmark artifacts"
    )
    ap.add_argument("baseline", help="older artifact (JSON)")
    ap.add_argument("candidate", help="newer artifact (JSON)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression threshold in percent (default 10)",
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any regression exceeds the threshold",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    if base.get("schema") != cand.get("schema"):
        sys.exit(
            f"error: schema mismatch: {base.get('schema')} vs "
            f"{cand.get('schema')}"
        )
    if base.get("insts_per_run") != cand.get("insts_per_run"):
        print(
            f"warning: different insts_per_run "
            f"({base.get('insts_per_run')} vs "
            f"{cand.get('insts_per_run')}); throughput numbers are "
            f"still comparable, wall times are not"
        )

    regressions = []

    agg_b = base.get("aggregate_cycles_per_sec")
    agg_c = cand.get("aggregate_cycles_per_sec")
    if agg_b and agg_c:
        delta = pct(agg_c, agg_b)
        marker = ""
        if delta < -args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append(("aggregate", delta))
        print(
            f"aggregate cycles/sec: {agg_b:,.0f} -> {agg_c:,.0f} "
            f"({delta:+.1f}%){marker}"
        )

    base_runs = {run_key(r): r for r in base.get("runs", [])}
    cand_runs = {run_key(r): r for r in cand.get("runs", [])}
    only_base = sorted(set(base_runs) - set(cand_runs))
    only_cand = sorted(set(cand_runs) - set(base_runs))
    for k in only_base:
        print(f"only in baseline: {k}")
    for k in only_cand:
        print(f"only in candidate: {k}")

    shared = sorted(set(base_runs) & set(cand_runs))
    for k in shared:
        b, c = base_runs[k], cand_runs[k]
        cps_b = b.get("cycles_per_sec", 0)
        cps_c = c.get("cycles_per_sec", 0)
        if not cps_b or not cps_c:
            continue
        delta = pct(cps_c, cps_b)
        if delta < -args.threshold:
            regressions.append((k, delta))
            print(
                f"  {k}: {cps_b:,.0f} -> {cps_c:,.0f} cycles/sec "
                f"({delta:+.1f}%)  <-- REGRESSION"
            )

    print(
        f"{len(shared)} shared runs compared, "
        f"{len(regressions)} regression(s) beyond "
        f"{args.threshold:.0f}%"
    )
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
