#!/usr/bin/env python3
"""Compare two throughput-benchmark JSON artifacts.

Diffs a baseline and a candidate BENCH_sweep.json
("hpa.bench-sweep.v2"/"v3" — v3 only adds per-run policy names, so
the two are throughput-comparable) or micro_throughput --json
artifact ("hpa.micro-throughput.v1") and flags throughput
regressions:

  tools/compare_bench.py docs/runs/BENCH_sweep_before.json BENCH_sweep.json

A regression is a drop of more than --threshold (default 10%) in
aggregate_cycles_per_sec or in any individual run's cycles_per_sec.
Report-only by default — wall-clock numbers depend on the host, so
this is a review aid, not a merge gate; pass --strict to exit 1 on
any flagged regression, or --max-regress PCT to both set the
threshold and gate in one flag (e.g. `--max-regress 15` on a
dedicated perf CI host). `--self-test` runs the built-in unit checks
on synthetic artifacts.

Only uses the standard library; the artifacts are small and flat.
"""

import argparse
import json
import sys

KNOWN_SCHEMAS = (
    "hpa.bench-sweep.v2",
    "hpa.bench-sweep.v3",
    "hpa.micro-throughput.v1",
    "hpa.micro-throughput.v2",
)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")
    schema = doc.get("schema", "<none>")
    if schema not in KNOWN_SCHEMAS:
        sys.exit(
            f"error: {path} has schema {schema!r}; expected one of "
            f"{', '.join(KNOWN_SCHEMAS)}"
        )
    return doc


def run_key(run):
    # bench-sweep runs are keyed by machine|workload; micro-throughput
    # runs by width|workload. Both identify a unique measurement.
    if "machine" in run:
        return f"{run['machine']}|{run['workload']}"
    return f"{run.get('width', '?')}-wide|{run['workload']}"


def pct(new, old):
    return 100.0 * (new - old) / old if old else float("nan")


def find_regressions(base, cand, threshold, out=sys.stdout):
    """Print the diff of two loaded artifacts and return the list of
    (key, delta_pct) regressions beyond threshold."""
    regressions = []

    agg_b = base.get("aggregate_cycles_per_sec")
    agg_c = cand.get("aggregate_cycles_per_sec")
    if agg_b and agg_c:
        delta = pct(agg_c, agg_b)
        marker = ""
        if delta < -threshold:
            marker = "  <-- REGRESSION"
            regressions.append(("aggregate", delta))
        print(
            f"aggregate cycles/sec: {agg_b:,.0f} -> {agg_c:,.0f} "
            f"({delta:+.1f}%){marker}",
            file=out,
        )

    base_runs = {run_key(r): r for r in base.get("runs", [])}
    cand_runs = {run_key(r): r for r in cand.get("runs", [])}
    for k in sorted(set(base_runs) - set(cand_runs)):
        print(f"only in baseline: {k}", file=out)
    for k in sorted(set(cand_runs) - set(base_runs)):
        print(f"only in candidate: {k}", file=out)

    shared = sorted(set(base_runs) & set(cand_runs))
    for k in shared:
        b, c = base_runs[k], cand_runs[k]
        cps_b = b.get("cycles_per_sec", 0)
        cps_c = c.get("cycles_per_sec", 0)
        if not cps_b or not cps_c:
            continue
        delta = pct(cps_c, cps_b)
        if delta < -threshold:
            regressions.append((k, delta))
            print(
                f"  {k}: {cps_b:,.0f} -> {cps_c:,.0f} cycles/sec "
                f"({delta:+.1f}%)  <-- REGRESSION",
                file=out,
            )

    print(
        f"{len(shared)} shared runs compared, "
        f"{len(regressions)} regression(s) beyond "
        f"{threshold:.0f}%",
        file=out,
    )
    return regressions


def self_test():
    import io

    def doc(agg, runs):
        return {
            "schema": "hpa.bench-sweep.v2",
            "aggregate_cycles_per_sec": agg,
            "runs": [
                {"machine": m, "workload": w, "cycles_per_sec": cps}
                for m, w, cps in runs
            ],
        }

    sink = io.StringIO()
    base = doc(1000.0, [("m1", "gzip", 100.0), ("m1", "gcc", 200.0)])

    # Identical artifacts: no regressions at any threshold.
    assert find_regressions(base, base, 0.5, sink) == []

    # A 20% per-run drop trips a 10% threshold but not a 30% one.
    slow = doc(1000.0, [("m1", "gzip", 80.0), ("m1", "gcc", 200.0)])
    regs = find_regressions(base, slow, 10.0, sink)
    assert [k for k, _ in regs] == ["m1|gzip"], regs
    assert find_regressions(base, slow, 30.0, sink) == []

    # Aggregate drops are keyed "aggregate".
    agg = doc(500.0, [("m1", "gzip", 100.0), ("m1", "gcc", 200.0)])
    assert [k for k, _ in find_regressions(base, agg, 10.0, sink)] \
        == ["aggregate"]

    # Improvements never count as regressions.
    fast = doc(2000.0, [("m1", "gzip", 300.0), ("m1", "gcc", 400.0)])
    assert find_regressions(base, fast, 10.0, sink) == []

    # Disjoint run sets are reported, not compared.
    other = doc(1000.0, [("m2", "gzip", 1.0)])
    assert find_regressions(base, other, 10.0, sink) == []

    # micro-throughput artifacts key on width|workload.
    assert run_key({"width": 4, "workload": "gzip"}) == "4-wide|gzip"
    assert run_key({"machine": "m1", "workload": "gcc"}) == "m1|gcc"

    print("self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="diff two throughput benchmark artifacts"
    )
    ap.add_argument("baseline", nargs="?", help="older artifact (JSON)")
    ap.add_argument("candidate", nargs="?", help="newer artifact (JSON)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression threshold in percent (default 10)",
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any regression exceeds the threshold",
    )
    ap.add_argument(
        "--max-regress",
        type=float,
        metavar="PCT",
        help="gate mode: set the threshold to PCT and exit 1 on any "
        "regression beyond it (shorthand for --threshold PCT "
        "--strict)",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in unit checks and exit",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.candidate is None:
        ap.error("baseline and candidate artifacts are required")

    threshold = args.threshold
    gate = args.strict
    if args.max_regress is not None:
        threshold = args.max_regress
        gate = True

    base = load(args.baseline)
    cand = load(args.candidate)

    # Schemas must be the same *family*; bench-sweep v2 vs v3 is fine
    # (v3 only adds per-run policy names, the metrics are unchanged).
    def family(doc):
        return doc.get("schema", "").rsplit(".", 1)[0]

    if family(base) != family(cand):
        sys.exit(
            f"error: schema mismatch: {base.get('schema')} vs "
            f"{cand.get('schema')}"
        )
    if base.get("insts_per_run") != cand.get("insts_per_run"):
        print(
            f"warning: different insts_per_run "
            f"({base.get('insts_per_run')} vs "
            f"{cand.get('insts_per_run')}); throughput numbers are "
            f"still comparable, wall times are not"
        )

    regressions = find_regressions(base, cand, threshold)
    if regressions and gate:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
