#!/usr/bin/env bash
# Profile the simulator hot path and produce something a human can
# read: a folded-stack file suitable for flamegraph.pl when `perf`
# is available, else a gprof flat+call-graph profile from a -pg
# build. Degrades gracefully — many dev containers (including the
# reference VM) ship no `perf` binary, and gprof still answers "what
# does a simulated cycle spend its time on".
#
# Usage: tools/perf_flamegraph.sh [-- <hpa_bench_sweep args>]
#   HPA_PROFILE_DIR   output dir (default: profile/)
#   default workload: hpa_bench_sweep --insts 50000 --batch 1
#                     (batch 1 keeps per-config attribution clean)
#
# Outputs, depending on tooling:
#   perf path:  profile/perf.data, profile/folded.txt
#               (feed folded.txt to flamegraph.pl for the SVG)
#   gprof path: profile/gprof.txt (flat profile + call graph)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${HPA_PROFILE_DIR:-profile}"
mkdir -p "$OUT"

ARGS=(--insts 50000 --batch 1)
if [ "${1:-}" = "--" ]; then
    shift
    ARGS=("$@")
fi

if command -v perf >/dev/null 2>&1; then
    echo "== perf found: sampling with call graphs =="
    cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build build -j"$(nproc)" --target hpa_bench_sweep
    perf record -g --output "$OUT/perf.data" -- \
        ./build/tools/hpa_bench_sweep "${ARGS[@]}"
    perf script --input "$OUT/perf.data" \
        | awk '
            # Minimal stack folding: collapse each sample stack into
            # one semicolon-joined line so flamegraph.pl can render
            # it without the stackcollapse-perf.pl helper.
            /^\S/ { if (stack != "") print stack; stack = ""; next }
            /^\s/ { n = split($0, f, " ");
                    frame = f[2];
                    stack = (stack == "" ? frame : frame ";" stack) }
            END   { if (stack != "") print stack }
        ' | sort | uniq -c | sort -rn \
        | awk '{ cnt = $1; $1 = ""; sub(/^ /, ""); print $0, cnt }' \
        > "$OUT/folded.txt"
    echo "wrote $OUT/folded.txt ($(wc -l < "$OUT/folded.txt") stacks)"
    echo "render: flamegraph.pl $OUT/folded.txt > $OUT/flame.svg"
elif command -v gprof >/dev/null 2>&1; then
    echo "== no perf; falling back to gprof (-pg build) =="
    cmake -B build-prof -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-pg" -DCMAKE_EXE_LINKER_FLAGS="-pg"
    cmake --build build-prof -j"$(nproc)" --target hpa_bench_sweep
    # Absolute binary path: gmon.out lands in the CWD of the run, so
    # we cd into $OUT (which may itself be absolute, e.g. when ctest
    # sets HPA_PROFILE_DIR) and invoke the binary from the repo root.
    BIN="$PWD/build-prof/tools/hpa_bench_sweep"
    (cd "$OUT" && "$BIN" "${ARGS[@]}")
    gprof "$BIN" "$OUT/gmon.out" > "$OUT/gprof.txt"
    echo "wrote $OUT/gprof.txt (flat profile + call graph)"
else
    # Exit 77 — the conventional "skip" status — so the ctest
    # wrapper (SKIP_RETURN_CODE 77) reports SKIP, not FAIL, on
    # containers that ship neither profiler.
    echo "skip: neither perf nor gprof is available" >&2
    exit 77
fi
