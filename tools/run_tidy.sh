#!/usr/bin/env bash
# Run the repo's curated clang-tidy profile (.clang-tidy) over every
# project translation unit in a compile_commands.json database.
#
#   tools/run_tidy.sh [-p BUILD_DIR] [FILE...]
#
#   -p BUILD_DIR  build tree containing compile_commands.json
#                 (default: ./build; configure with
#                 -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)
#   FILE...       restrict the run to these sources (default: every
#                 src/tools/bench/examples/tests TU in the database)
#
# Exit codes: 0 clean, 1 findings, 2 usage/setup error, 77 skipped
# because no clang-tidy binary is installed (ctest's SKIP_RETURN_CODE,
# so the lint label stays green on containers without LLVM while CI
# images with clang-tidy enforce it).
set -u

build_dir=build
while getopts "p:h" opt; do
    case "$opt" in
        p) build_dir=$OPTARG ;;
        h) sed -n '2,16p' "$0"; exit 0 ;;
        *) exit 2 ;;
    esac
done
shift $((OPTIND - 1))

tidy=""
for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
            clang-tidy-16 clang-tidy-15; do
    if command -v "$cand" > /dev/null 2>&1; then
        tidy=$cand
        break
    fi
done
if [ -z "$tidy" ]; then
    echo "run_tidy: no clang-tidy binary found; skipping (install" \
         "clang-tidy to enforce the .clang-tidy profile)" >&2
    exit 77
fi

db=$build_dir/compile_commands.json
if [ ! -f "$db" ]; then
    echo "run_tidy: $db not found; configure with" \
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

repo=$(cd "$(dirname "$0")/.." && pwd)

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    # Project TUs only: sources under the repo, not dependency or
    # generated code in the build tree.
    mapfile -t files < <(
        grep -o '"file": *"[^"]*"' "$db" | sed 's/.*"file": *"//;s/"$//' |
        grep "^$repo/" | grep -v "^$repo/build" | sort -u)
fi
if [ "${#files[@]}" -eq 0 ]; then
    echo "run_tidy: no project sources found in $db" >&2
    exit 2
fi

jobs=$(nproc 2> /dev/null || echo 2)
log=$(mktemp)
trap 'rm -f "$log"' EXIT

printf '%s\0' "${files[@]}" |
    xargs -0 -n 1 -P "$jobs" "$tidy" --quiet -p "$build_dir" \
        > "$log" 2> /dev/null
status=$?

cat "$log"
count=$(grep -c 'warning:\|error:' "$log" || true)
echo "run_tidy: $tidy over ${#files[@]} file(s): $count finding(s)"
if [ "$count" -ne 0 ] || [ "$status" -ne 0 ]; then
    exit 1
fi
exit 0
