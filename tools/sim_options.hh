/**
 * @file
 * hpa_sim command-line surface, factored out of main() so the
 * regression tests can drive the parser as a plain function: an
 * options struct, a strict argv parser (unknown options, missing
 * values and malformed numbers all produce a one-line error and
 * exit code 2), and the translation from parsed options to a
 * builder-assembled sim::Machine.
 */

#ifndef HPA_TOOLS_SIM_OPTIONS_HH
#define HPA_TOOLS_SIM_OPTIONS_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/policy_registry.hh"
#include "sim/experiment.hh"

namespace hpa::tools
{

/** Everything hpa_sim accepts on the command line. */
struct SimOptions
{
    std::string bench;
    std::string asm_file;
    unsigned width = 4;
    core::WakeupModel wakeup = core::WakeupModel::Conventional;
    core::RegfileModel regfile = core::RegfileModel::TwoPort;
    core::RecoveryModel recovery = core::RecoveryModel::NonSelective;
    core::RenameModel rename = core::RenameModel::TwoPort;
    unsigned lap = 1024;
    bool lap_set = false;
    unsigned bypass = 1;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    bool fastforward = true;
    bool report = false;
    bool sweep = false;
    bool list = false;
    bool help = false;
    unsigned jobs = 0;
    /** --watchdog N: deadlock watchdog threshold in cycles
     *  (0 disables). Unset keeps the CoreConfig default. */
    uint64_t watchdog = 0;
    bool watchdog_set = false;
    /** --check-interval N: scheduler cross-validation every N cycles
     *  (0 = off, the default). */
    uint64_t check_interval = 0;
    /** --sched-engine masked|reference: scheduler data-structure
     *  engine. Result-invariant (the golden gate pins both engines
     *  bit-identical), so it never enters the machine name. */
    core::SchedEngine sched_engine = core::SchedEngine::Masked;
    bool sched_engine_set = false;
    /** --trace-cache on|off: sweep cells replay a shared committed
     *  trace (default) or re-emulate per cell. IPC is bit-identical
     *  either way; off trades speed for exercising the emulator. */
    bool trace_cache = true;
    /** Output files; "-" means stdout. Empty means not requested. */
    std::string json_out;
    std::string stats_json_out;
    std::string stats_csv_out;

    /** True when a machine-readable document goes to stdout — the
     *  human summary is suppressed so the stream stays parseable. */
    bool
    machineReadableStdout() const
    {
        return json_out == "-" || stats_json_out == "-"
            || stats_csv_out == "-";
    }
};

/** Strict unsigned parse: the whole token must be a base-10 number
 *  that fits @p out. */
inline bool
parseNumber(const std::string &text, uint64_t &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size()
        || text[0] == '-')
        return false;
    out = v;
    return true;
}

/** Scheduler-policy lookup over the registry ("conv", "seq",
 *  "seq-nopred", "tag-elim", "dlt", ...). */
inline bool
parseWakeupModel(const std::string &v, core::WakeupModel &out)
{
    const core::SchedPolicyInfo *info = core::findSchedPolicy(v);
    if (!info)
        return false;
    out = info->model;
    return true;
}

/** Register-file-policy lookup over the registry ("2port", "seq",
 *  "extra-stage", "half-xbar", "prefetch", ...). */
inline bool
parseRegfileModel(const std::string &v, core::RegfileModel &out)
{
    const core::RFPolicyInfo *info = core::findRFPolicy(v);
    if (!info)
        return false;
    out = info->model;
    return true;
}

inline bool
parseRecoveryModel(const std::string &v, core::RecoveryModel &out)
{
    if (v == "sel")
        out = core::RecoveryModel::Selective;
    else if (v == "nonsel")
        out = core::RecoveryModel::NonSelective;
    else
        return false;
    return true;
}

inline bool
parseRenameModel(const std::string &v, core::RenameModel &out)
{
    if (v == "half")
        out = core::RenameModel::HalfPort;
    else if (v == "2port")
        out = core::RenameModel::TwoPort;
    else
        return false;
    return true;
}

/**
 * Parse argv[1..argc) into @p opt. Returns 0 on success; on any
 * error returns 2 with a one-line description in @p err (the
 * caller prints it and the usage text). --help and --list are
 * reported as flags, not handled here.
 *
 * Value-taking options accept both `--flag value` and `--flag=value`;
 * repeated options are last-wins. Numeric values must be base-10
 * unsigned integers, and options stored in an `unsigned` field
 * additionally reject values above its range (no silent truncation:
 * `--width 4294967300` is an error, not width 4).
 */
inline int
parseSimOptions(const std::vector<std::string> &args, SimOptions &opt,
                std::string &err)
{
    auto fail = [&](std::string msg) {
        err = std::move(msg);
        return 2;
    };
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &orig = args[i];
        std::string a = orig;
        std::optional<std::string> inline_val;
        if (a.size() > 2 && a[0] == '-' && a[1] == '-') {
            size_t eq = a.find('=');
            if (eq != std::string::npos) {
                inline_val = a.substr(eq + 1);
                a.resize(eq);
            }
        }
        auto need = [&](std::string *v) {
            if (inline_val) {
                *v = *inline_val;
                inline_val.reset();
                return true;
            }
            if (i + 1 >= args.size())
                return false;
            *v = args[++i];
            return true;
        };
        auto needNumber = [&](uint64_t *v) {
            std::string text;
            if (!need(&text) || !parseNumber(text, *v)) {
                err = a + " expects an unsigned integer"
                    + (text.empty() ? "" : ", got '" + text + "'");
                return false;
            }
            return true;
        };
        auto needUnsigned = [&](unsigned *v) {
            uint64_t wide = 0;
            if (!needNumber(&wide))
                return false;
            if (wide > std::numeric_limits<unsigned>::max()) {
                err = a + " value out of range";
                return false;
            }
            *v = unsigned(wide);
            return true;
        };
        std::string v;
        if (a == "--help" || a == "-h") {
            opt.help = true;
        } else if (a == "--list") {
            opt.list = true;
        } else if (a == "--sweep") {
            opt.sweep = true;
        } else if (a == "--jobs") {
            if (!needUnsigned(&opt.jobs))
                return 2;
        } else if (a == "--bench") {
            if (!need(&opt.bench))
                return fail("--bench needs a value");
        } else if (a == "--asm") {
            if (!need(&opt.asm_file))
                return fail("--asm needs a value");
        } else if (a == "--width") {
            if (!needUnsigned(&opt.width))
                return 2;
        } else if (a == "--wakeup" || a == "--sched-policy") {
            if (!need(&v) || !parseWakeupModel(v, opt.wakeup))
                return fail(a + " expects a registered scheduler "
                                "policy ("
                            + core::schedPolicyNames() + ")");
        } else if (a == "--regfile" || a == "--rf-policy") {
            if (!need(&v) || !parseRegfileModel(v, opt.regfile))
                return fail(a + " expects a registered register-file "
                                "policy ("
                            + core::rfPolicyNames() + ")");
        } else if (a == "--policy") {
            // k=v list form: --policy sched=dlt,rf=prefetch
            if (!need(&v))
                return fail("--policy needs a k=v list "
                            "(sched=NAME,rf=NAME)");
            std::string list = v;
            while (!list.empty()) {
                size_t comma = list.find(',');
                std::string item = list.substr(0, comma);
                list = comma == std::string::npos
                    ? std::string() : list.substr(comma + 1);
                size_t eq = item.find('=');
                if (eq == std::string::npos)
                    return fail("--policy item '" + item
                                + "' is not k=v (sched=NAME or "
                                  "rf=NAME)");
                std::string key = item.substr(0, eq);
                std::string val = item.substr(eq + 1);
                if (key == "sched") {
                    if (!parseWakeupModel(val, opt.wakeup))
                        return fail(
                            "--policy sched: unknown policy '" + val
                            + "' (registered: "
                            + core::schedPolicyNames() + ")");
                } else if (key == "rf") {
                    if (!parseRegfileModel(val, opt.regfile))
                        return fail(
                            "--policy rf: unknown policy '" + val
                            + "' (registered: "
                            + core::rfPolicyNames() + ")");
                } else {
                    return fail("--policy key must be sched or rf, "
                                "got '" + key + "'");
                }
            }
        } else if (a == "--recovery") {
            if (!need(&v) || !parseRecoveryModel(v, opt.recovery))
                return fail("--recovery expects nonsel | sel");
        } else if (a == "--rename") {
            if (!need(&v) || !parseRenameModel(v, opt.rename))
                return fail("--rename expects 2port | half");
        } else if (a == "--lap") {
            if (!needUnsigned(&opt.lap))
                return 2;
            opt.lap_set = true;
        } else if (a == "--bypass") {
            if (!needUnsigned(&opt.bypass))
                return 2;
        } else if (a == "--insts") {
            if (!needNumber(&opt.insts))
                return 2;
        } else if (a == "--cycles") {
            if (!needNumber(&opt.cycles))
                return 2;
        } else if (a == "--watchdog") {
            if (!needNumber(&opt.watchdog))
                return 2;
            opt.watchdog_set = true;
        } else if (a == "--check-interval") {
            if (!needNumber(&opt.check_interval))
                return 2;
        } else if (a == "--sched-engine") {
            if (!need(&v) || !core::parseSchedEngine(v, opt.sched_engine))
                return fail("--sched-engine expects masked | reference");
            opt.sched_engine_set = true;
        } else if (a == "--trace-cache") {
            if (!need(&v) || (v != "on" && v != "off"))
                return fail("--trace-cache expects on | off");
            opt.trace_cache = (v == "on");
        } else if (a == "--no-fastforward") {
            opt.fastforward = false;
        } else if (a == "--report") {
            opt.report = true;
        } else if (a == "--json") {
            if (!need(&opt.json_out))
                return fail("--json needs a file (or '-')");
        } else if (a == "--stats-json") {
            if (!need(&opt.stats_json_out))
                return fail("--stats-json needs a file (or '-')");
        } else if (a == "--stats-csv") {
            if (!need(&opt.stats_csv_out))
                return fail("--stats-csv needs a file (or '-')");
        } else {
            return fail("unknown option: " + orig);
        }
        if (inline_val)
            return fail(a + " does not take a value");
    }
    return 0;
}

/** Apply --watchdog / --check-interval / --sched-engine onto a core
 *  configuration (sweep mode applies them to every reproduction
 *  machine). */
inline void
applyRobustnessKnobs(const SimOptions &opt, core::CoreConfig &cfg)
{
    if (opt.watchdog_set)
        cfg.watchdog_cycles = opt.watchdog;
    if (opt.check_interval)
        cfg.check_interval = opt.check_interval;
    if (opt.sched_engine_set)
        cfg.sched_engine = opt.sched_engine;
}

/**
 * Assemble the machine the options describe. Every model setter is
 * applied (wakeup, regfile, recovery, rename) so the machine name
 * keeps its historical five-component form; lap() is only forwarded when
 * --lap was given, because the builder rejects a predictor table on
 * predictor-less wakeup schemes. Throws hpa::ConfigError (a
 * std::invalid_argument) on invalid combinations (bad width, --lap
 * with --wakeup conv, ...). The robustness knobs (--watchdog,
 * --check-interval) are applied after build(); they do not alter
 * the machine name.
 */
inline sim::Machine
machineFor(const SimOptions &opt)
{
    auto b = sim::Machine::base(opt.width)
                 .wakeup(opt.wakeup)
                 .regfile(opt.regfile)
                 .recovery(opt.recovery)
                 .rename(opt.rename)
                 .bypassWindow(opt.bypass);
    if (opt.lap_set)
        b.lap(opt.lap);
    sim::Machine m = b.build();
    applyRobustnessKnobs(opt, m.cfg);
    return m;
}

} // namespace hpa::tools

#endif // HPA_TOOLS_SIM_OPTIONS_HH
