#!/usr/bin/env python3
"""hpa-prove: binary-truth hot-path prover for the HPA simulator.

The repo's central performance claims — zero steady-state allocation
in Core::tick, no unwind paths or indirect calls inside the bitmask
scheduler, the policy zoo's "header-inlined dispatch, no virtual
calls" contract — are enforced in two other places: the HPA002 regex
lint (tools/lint/hpa_lint.py) and the runtime operator-new counter
(tests/test_hotpath_alloc.cc). Both can miss transitive callees and
neither sees what the optimizer actually emitted. This tool closes
the gap: it ingests compiler-emitted ground truth, builds the
whole-program call graph transitively reachable from the hot-path
roots, and proves four properties with named violation paths.

Ground truth, in preference order:

  callgraph mode   per-TU VCG call graphs from GCC
                   `-fcallgraph-info=su,da` (.ci files) plus
                   `-fstack-usage` (.su files), produced by the
                   `analyze` CMake preset (-DHPA_ANALYZE=ON). These
                   are emitted AFTER optimization: an inlined call
                   has no edge, a devirtualized call is direct, so
                   the graph is exactly what the machine executes.
  objdump mode     disassembly of the linked hpa static libraries
                   (objdump -dlr + nm), used as a fallback when the
                   build carries no .ci files (e.g. a default-preset
                   build, or a non-GCC toolchain). Direct calls come
                   from relocations and symbolized targets, indirect
                   calls from `call *` forms, frame sizes from the
                   prologue.

Roots: Core::tick (the per-cycle pipeline), Core::tickGuards (the
rare-but-every-cycle guard hooks) and CoreLane::tickQuantum (the
batched-replay slice). Because every scheduler/register-file policy
and both scheduler engines are compiled into one Core (runtime
variant switch + engine flag), a single static reachability pass
covers every registered policy combination on both engines: any code
any combination could run on the hot path is reachable from these
roots.

Properties (each reports named root->...->symbol violation paths):

  P1 no-alloc      no reachable operator new/new[]/malloc family
                   symbol. std::vector amortized-growth helpers are
                   recognized as a class and excluded with a reason:
                   their quiescence at steady state is proven
                   dynamically by tests/test_hotpath_alloc.cc (the
                   two checks cross-validate). Per-insert allocators
                   (map/unordered_map node inserts) are NOT excused:
                   each surviving site needs an explicit
                   hpa-prove-allow.
  P2 no-unwind     no reachable __cxa_throw / __cxa_rethrow /
                   std::__throw_* edge, except through the
                   whitelisted guard functions (tickGuards, the
                   HPA_CHECK failure helper
                   hpa::detail::invariantFailed, cross-validation).
                   _Unwind_Resume landing pads are the RECEIVER side
                   of propagation — every originating throw is
                   already flagged at its source — so they are
                   counted (cleanup_landing_pads), not violated.
  P3 no-indirect   no indirect or virtual call site in the hot
                   graph — the compiled proof of the policy zoo's
                   "no virtual calls" contract and the bitmask
                   engine's inlining claims.
  P4 stack-bound   the worst-case static stack depth along any hot
                   path stays under --stack-limit bytes, and the hot
                   graph is recursion-free (a cycle makes the static
                   bound meaningless and is itself a violation).

Suppressions: `// hpa-prove-allow(P1): reason` on the offending call
site's line (or alone on the line directly above) excuses edges at
that callsite for the named properties; the excused edge is CUT from
the traversal, so the subtree reachable only through it is excused
with it. When inlining leaves only libstdc++-header callsites (a
rehash, vector growth guts, std::function dispatch), place the allow
directly above the calling function's DEFINITION instead: a
function-level allow excuses that function's edges into non-repo
code while its calls into repo code stay fully checked. HPA_CHECK
failure arms are excused automatically (edges sharing a callsite
with a whitelisted guard call, and string machinery in guard-calling
functions) and surface as failure_arm_edges counts. The reason is
mandatory; hpa_lint's HPA000 rule enforces the comment hygiene
(known property ids, reason present), and this tool reports allows
that matched nothing as stale_allows so they can be cleaned up.

Output: human-readable proof report (default) or a machine-readable
hpa.prove.v1 JSON document (--json FILE, '-' = stdout), schema-gated
in ctest by hpa_json_validate. Exit codes: 0 = all properties
proved, 1 = violations, 2 = usage error, 77 = the toolchain or build
tree cannot support the analysis (ctest turns 77 into SKIP).

Standard library only, by design (like hpa_lint): binutils
(nm/objdump/c++filt) are invoked via subprocess when present, never
required for callgraph mode.
"""

import argparse
import glob
import json
import os
import re
import shutil
import subprocess
import sys

PROVE_SCHEMA = "hpa.prove.v1"

# --------------------------------------------------------------------
# Configuration: roots, per-property pruning, symbol classifiers.
# --------------------------------------------------------------------

# Hot-path roots, matched as demangled-name substrings (clone
# suffixes like [clone .part.0] still match). `required` roots must
# exist in the graph or the proof is refused; optional roots may be
# fully inlined away (tickQuantum is header-inline with essentially
# one caller), in which case their body's calls are attributed to
# the inlining caller and covered through the other roots.
ROOTS = [
    ("tick", "hpa::core::Core::tick(", True),
    ("tickGuards", "hpa::core::Core::tickGuards(", False),
    ("tickQuantum", "hpa::core::CoreLane::tickQuantum(", False),
]

# Cold subtrees excluded from the graph for EVERY property, each
# with the reason shown in the JSON document. These are failure
# paths: they run at most once per run (they raise) or on a gated
# cadence (cross-validation), and they are allowed to allocate,
# throw and build ostream dumps.
PRUNE_GUARDS = [
    ("hpa::detail::invariantFailed(",
     "HPA_CHECK failure helper: [[noreturn]], throws "
     "InvariantViolation"),
    ("hpa::core::Core::crossValidate(",
     "periodic cross-validation pass: cold cadence, throws on "
     "divergence"),
    ("hpa::core::Core::invariantContext(",
     "failure-context builder: runs only while an error is being "
     "raised"),
    ("hpa::core::Core::dumpPipelineState(",
     "failure dump builder: runs only while an error is being "
     "raised"),
    ("hpa::core::Core::sideListDivergence(",
     "cross-validation helper: re-derives scheduler lists off the "
     "hot path"),
    ("hpa::core::Core::readyListConsistent(",
     "test/cross-validation helper, O(window), never on the hot "
     "path"),
]

# Pruned ONLY for P1/P2: tickGuards throws by design (it IS the P2
# whitelist) and its failure arms build error strings, but it is a
# root for P3/P4 — even the guard hook must stay devirtualized and
# stack-bounded.
PRUNE_STEADY = [
    ("hpa::core::Core::tickGuards(",
     "guard hook: watchdog/deadline/cross-validation/fault checks, "
     "gated to a handful of compares per cycle; its failure arms "
     "throw by design (P1/P2 whitelist; still analyzed for P3/P4)"),
]

# std::vector amortized-growth helpers (P1 only): reaching one means
# "this container CAN grow", not "this allocates per operation".
# Growth is bounded by warm-up and proven quiescent at steady state
# by tests/test_hotpath_alloc.cc; the surviving per-insert allocation
# paths (node containers) still need explicit hpa-prove-allow.
AMORTIZED_GROWTH_MARKERS = [
    "_M_realloc_insert",
    "_M_realloc_append",
    "_M_default_append",
    "_M_fill_insert",
    "_M_range_insert",
    "_M_insert_aux",
    "_M_create_storage",
    "_M_allocate_and_copy",
]

ALLOC_NAMES = {
    "malloc", "calloc", "realloc", "aligned_alloc", "valloc",
    "posix_memalign", "strdup", "strndup",
}

THROW_NAMES = {
    "__cxa_throw", "__cxa_rethrow", "__cxa_allocate_exception",
    "_Unwind_RaiseException", "__cxa_bad_cast", "__cxa_bad_typeid",
}

# Landing pads are the RECEIVER side of exception propagation: a
# frame with nontrivial cleanup gets one as soon as any callee can
# throw. Every originating throw is flagged at its source, so
# counting pads as violations double-reports the same root cause;
# P2 reports their count honestly instead.
LANDING_PAD_NAMES = {"_Unwind_Resume", "__builtin_unwind_resume"}

# HPA_CHECK failure arms construct their message inline; after
# inlining, the std::string machinery they use is attributed to
# libstdc++ headers. A function that calls a whitelisted [[noreturn]]
# guard has those edges excused as failure-arm construction; string
# use in functions WITHOUT a guard call is still caught.
STRING_MACHINERY_RE = re.compile(
    r"basic_string|::to_string\(|char_traits")

INDIRECT_NODE = "__indirect_call"

PROPERTIES = {
    "P1": "no reachable allocation symbol on the steady-state hot "
          "path (operator new / new[] / malloc family)",
    "P2": "no reachable throw/unwind edge outside the whitelisted "
          "guard functions",
    "P3": "no indirect or virtual call site in the hot graph",
    "P4": "worst-case static stack depth bounded and recursion-free",
}

# Per-property traversal configuration. tickGuards is a root for P3
# and P4 (even the guards must stay devirtualized and stack-bounded)
# but is itself the P1/P2 whitelist: its body throws by design.
PROPERTY_ROOTS = {
    "P1": ("tick", "tickQuantum"),
    "P2": ("tick", "tickQuantum"),
    "P3": ("tick", "tickGuards", "tickQuantum"),
    "P4": ("tick", "tickGuards", "tickQuantum"),
}

DEFAULT_STACK_LIMIT = 16384

ALLOW_RE = re.compile(
    r"//\s*hpa-prove-allow\(([^)]*)\)\s*(?::\s*(.*\S))?\s*$")

SOURCE_EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp")
SOURCE_DIRS = ("src", "tools", "bench", "tests", "examples")
FIXTURE_FILE = "tests/prove_fixture.cc"


# --------------------------------------------------------------------
# Demangling
# --------------------------------------------------------------------

class Demangler:
    """Batch c++filt front end with a cache; identity fallback."""

    def __init__(self):
        self.cache = {}
        self.tool = shutil.which("c++filt")

    def demangle_all(self, names):
        todo = [n for n in names if n not in self.cache]
        if todo and self.tool:
            try:
                out = subprocess.run(
                    [self.tool], input="\n".join(todo) + "\n",
                    capture_output=True, text=True, timeout=120)
                lines = out.stdout.splitlines()
                if len(lines) == len(todo):
                    for n, d in zip(todo, lines):
                        self.cache[n] = d
            except (OSError, subprocess.SubprocessError):
                pass
        for n in todo:
            self.cache.setdefault(n, n)

    def get(self, name):
        return self.cache.get(name, name)


# --------------------------------------------------------------------
# Call graph
# --------------------------------------------------------------------

class Node:
    __slots__ = ("sym", "demangled", "loc", "stack", "defined")

    def __init__(self, sym):
        self.sym = sym          # mangled (or plain C) symbol
        self.demangled = sym
        self.loc = ""           # "file:line" of the definition
        self.stack = None       # static stack bytes, if known
        self.defined = False    # body seen in some TU / object


class Graph:
    """Whole-program call graph merged across TUs/objects.

    Nodes are keyed by symbol name. Same-named local symbols from
    different TUs merge; the union over-approximates reachability,
    which is the conservative direction for proving absence.
    """

    def __init__(self):
        self.nodes = {}
        # (src, dst) -> set of "file:line" callsites ("" = unknown)
        self.edges = {}
        self.adj = {}

    def node(self, sym):
        n = self.nodes.get(sym)
        if n is None:
            n = self.nodes[sym] = Node(sym)
        return n

    def add_edge(self, src, dst, callsite=""):
        self.node(src)
        self.node(dst)
        self.edges.setdefault((src, dst), set()).add(callsite)
        self.adj.setdefault(src, set()).add(dst)

    def out_edges(self, sym):
        for dst in sorted(self.adj.get(sym, ())):
            yield dst, self.edges[(sym, dst)]


# --------------------------------------------------------------------
# VCG (.ci) parsing
# --------------------------------------------------------------------

VCG_NODE_RE = re.compile(
    r'node:\s*\{\s*title:\s*"((?:[^"\\]|\\.)*)"'
    r'\s*label:\s*"((?:[^"\\]|\\.)*)"'
    r'\s*(shape\s*:\s*ellipse)?')
VCG_EDGE_RE = re.compile(
    r'edge:\s*\{\s*sourcename:\s*"((?:[^"\\]|\\.)*)"'
    r'\s*targetname:\s*"((?:[^"\\]|\\.)*)"'
    r'(?:\s*label:\s*"((?:[^"\\]|\\.)*)")?')
STACK_LABEL_RE = re.compile(r"(\d+)\s+bytes")
LOC_RE = re.compile(r"^(.*):(\d+):\d+$")


def vcg_unescape(s):
    return (s.replace('\\"', '"').replace("\\\\", "\\"))


def trim_loc(label_loc):
    """'file:line:col' -> 'file:line' (the suppression key)."""
    m = LOC_RE.match(label_loc)
    return "%s:%s" % (m.group(1), m.group(2)) if m else label_loc


def parse_ci_file(graph, path, tu_index):
    """Merge one -fcallgraph-info VCG document into the graph."""
    with open(path, encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    # The per-TU indirect-call placeholder must not merge across TUs
    # by accident of its fixed name: it carries no callees, so
    # merging is harmless — keep the shared name for classification.
    for m in VCG_NODE_RE.finditer(text):
        title = vcg_unescape(m.group(1))
        label = vcg_unescape(m.group(2))
        ellipse = bool(m.group(3))
        n = graph.node(title)
        parts = label.split("\\n")
        if title == INDIRECT_NODE:
            n.demangled = "(indirect call site)"
            continue
        if parts:
            n.demangled = parts[0]
        for p in parts[1:]:
            sm = STACK_LABEL_RE.search(p)
            if sm and "bytes" in p:
                n.stack = max(n.stack or 0, int(sm.group(1)))
            elif ":" in p and not n.loc:
                n.loc = trim_loc(p)
        if not ellipse:
            n.defined = True
    for m in VCG_EDGE_RE.finditer(text):
        src = vcg_unescape(m.group(1))
        dst = vcg_unescape(m.group(2))
        callsite = trim_loc(vcg_unescape(m.group(3) or ""))
        graph.add_edge(src, dst, callsite)
    return text.count("node:")


def parse_su_file(graph, path):
    """Merge -fstack-usage data: 'file:line:col:func\\tbytes\\tqual'.

    Matched into the graph by definition file:line — the .ci label
    usually carries the same number already; .su fills holes (and is
    the documented companion artifact)."""
    by_loc = {}
    for n in graph.nodes.values():
        if n.loc:
            by_loc.setdefault(n.loc, []).append(n)
    with open(path, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            cols = line.rstrip("\n").split("\t")
            if len(cols) < 3:
                continue
            m = re.match(r"^(.*):(\d+):\d+:", cols[0])
            if not m:
                continue
            try:
                bytes_ = int(cols[1])
            except ValueError:
                continue
            loc = "%s:%s" % (m.group(1), m.group(2))
            for n in by_loc.get(loc, ()):
                n.stack = max(n.stack or 0, bytes_)


def load_ci_graph(build_dir):
    """Find and merge all .ci/.su files under the build tree.

    Prefers the library subtree (build/src) so tool/test TUs don't
    bloat the graph; falls back to the whole tree."""
    for base in (os.path.join(build_dir, "src"), build_dir):
        ci = sorted(glob.glob(os.path.join(base, "**", "*.ci"),
                              recursive=True))
        if ci:
            break
    if not ci:
        return None, []
    graph = Graph()
    for i, path in enumerate(ci):
        parse_ci_file(graph, path, i)
    for path in sorted(glob.glob(os.path.join(base, "**", "*.su"),
                                 recursive=True)):
        parse_su_file(graph, path)
    return graph, ci


# --------------------------------------------------------------------
# objdump fallback
# --------------------------------------------------------------------

FUNC_HEADER_RE = re.compile(r"^[0-9a-f]+ <([^>]+)>:$")
SRC_LINE_RE = re.compile(r"^(/[^:]*|[A-Za-z]?[^:]*\.(?:cc|hh|cpp|hpp|h|c)):(\d+)")
CALL_RE = re.compile(r"\b(call[a-z]*|jmp[a-z]*)\s+(.*)$")
TARGET_SYM_RE = re.compile(r"<([^>+]+)(?:\+0x[0-9a-f]+)?>")
RELOC_RE = re.compile(r"^\s*[0-9a-f]+:\s+(R_\S+)\s+(\S+)")
SUB_RSP_RE = re.compile(r"\bsub\s+\$0x([0-9a-f]+),%rsp")
PUSH_RE = re.compile(r"\bpush")


def find_objects(build_dir):
    """The linked hpa libraries, or raw src/ objects as a fallback."""
    libs = sorted(glob.glob(os.path.join(build_dir, "**", "libhpa*.a"),
                            recursive=True))
    if libs:
        return libs
    return sorted(glob.glob(
        os.path.join(build_dir, "src", "**", "*.o"), recursive=True))


def parse_objdump(graph, path, objdump):
    """Disassemble one archive/object and merge call edges.

    Direct calls (and `jmp` tail calls) come from symbolized targets
    and relocations; when both are present the relocation wins — in
    relocatable archive members the displacement is 0, so the
    symbolized target of an external call is bogus (it resolves
    inside the current function). `call *...` forms become edges to
    the indirect placeholder. Indirect *jumps* are NOT flagged: at
    -O2/-O3 they are almost always switch jump tables
    (intra-function control flow), which -fcallgraph-info correctly
    ignores too. Frame size is read from the prologue (pushes + the
    first `sub $N,%rsp`)."""
    try:
        out = subprocess.run(
            [objdump, "-dlr", "--no-show-raw-insn", path],
            capture_output=True, text=True, timeout=600)
    except (OSError, subprocess.SubprocessError):
        return False
    if out.returncode != 0:
        return False
    state = {"cur": None, "pending": None}
    cur_loc = ""
    prologue = True
    pushes = 0

    def flush():
        # Commit a call whose relocation (if any) never arrived.
        if state["pending"] is not None:
            cs, tgt = state["pending"]
            if tgt and tgt != state["cur"]:
                graph.add_edge(state["cur"], tgt, cs)
            state["pending"] = None

    for line in out.stdout.splitlines():
        m = FUNC_HEADER_RE.match(line)
        if m:
            flush()
            state["cur"] = m.group(1)
            n = graph.node(state["cur"])
            n.defined = True
            cur_loc = ""
            prologue, pushes = True, 0
            continue
        cur = state["cur"]
        if cur is None:
            continue
        m = RELOC_RE.match(line)
        if m:
            if state["pending"] is not None:
                cs, _ = state["pending"]
                sym = m.group(2).split("@")[0]
                sym = re.sub(r"[+-]0x[0-9a-f]+$", "", sym)
                if sym != cur:
                    graph.add_edge(cur, sym, cs)
                state["pending"] = None
            continue
        m = SRC_LINE_RE.match(line)
        if m and not line.startswith(" "):
            cur_loc = "%s:%s" % (m.group(1), m.group(2))
            continue
        if "\t" not in line:
            continue  # symbol name annotations from -l, blank lines
        flush()
        insn = line.split("\t", 1)[1]
        if prologue:
            if PUSH_RE.search(insn):
                pushes += 1
            sm = SUB_RSP_RE.search(insn)
            if sm:
                n = graph.node(cur)
                frame = int(sm.group(1), 16) + 8 * pushes
                n.stack = max(n.stack or 0, frame)
                prologue = False
        m = CALL_RE.search(insn)
        if m:
            rest = m.group(2).strip()
            if rest.startswith("*"):
                # Indirect calls are violations; indirect jumps are
                # switch tables and are ignored.
                if m.group(1).startswith("call"):
                    graph.add_edge(cur, INDIRECT_NODE, cur_loc)
                continue
            tm = TARGET_SYM_RE.search(rest)
            # Tentative target; a relocation line overrides it.
            state["pending"] = (cur_loc, tm.group(1) if tm else None)
    flush()
    # Functions with pushes but no sub still consumed push bytes.
    return True


def load_objdump_graph(build_dir):
    objdump = shutil.which("objdump")
    if not objdump:
        return None, []
    objects = find_objects(build_dir)
    if not objects:
        return None, []
    graph = Graph()
    parsed = []
    for path in objects:
        if parse_objdump(graph, path, objdump):
            parsed.append(path)
    if not graph.nodes:
        return None, []
    nd = graph.node(INDIRECT_NODE)
    nd.demangled = "(indirect call site)"
    dem = Demangler()
    dem.demangle_all(list(graph.nodes))
    for n in graph.nodes.values():
        if n.sym != INDIRECT_NODE:
            n.demangled = dem.get(n.sym)
    return graph, parsed


# --------------------------------------------------------------------
# Source suppression scan (hpa-prove-allow)
# --------------------------------------------------------------------

class Allow:
    __slots__ = ("file", "line", "props", "reason", "target", "used")

    def __init__(self, file, line, props, reason, target):
        self.file = file        # path relative to root
        self.line = line        # comment line
        self.props = props
        self.reason = reason
        self.target = target    # line whose edges it excuses
        self.used = False


def scan_allows(root_dir):
    allows = []
    for d in SOURCE_DIRS:
        top = os.path.join(root_dir, d)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(n for n in dirnames
                                 if not n.startswith(("build", ".")))
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name),
                                      root_dir).replace(os.sep, "/")
                with open(os.path.join(dirpath, name),
                          encoding="utf-8", errors="replace") as fh:
                    lines = fh.readlines()
                for idx, line in enumerate(lines, start=1):
                    m = ALLOW_RE.search(line)
                    if not m:
                        continue
                    props = [p.strip()
                             for p in m.group(1).split(",")
                             if p.strip()]
                    alone = line[:m.start()].strip() == ""
                    target = idx
                    if alone:
                        # The comment may wrap: the target is the
                        # first non-comment line below it.
                        target = idx + 1
                        while (target <= len(lines)
                               and lines[target - 1].lstrip()
                               .startswith("//")):
                            target += 1
                    allows.append(Allow(
                        rel, idx, props, m.group(2) or "", target))
    return allows


def allow_index(allows, root_dir):
    """(relfile, line, prop) -> Allow, for callsite lookup."""
    idx = {}
    for a in allows:
        for p in a.props:
            idx[(a.file, a.target, p)] = a
    return idx


def rel_callsite(callsite, root_dir):
    """Normalize a compiler callsite to (relpath, line) under root."""
    m = LOC_RE.match(callsite + ":0")
    # callsite is already "file:line"
    if ":" not in callsite:
        return None
    file, _, line = callsite.rpartition(":")
    try:
        lineno = int(line)
    except ValueError:
        return None
    path = os.path.normpath(os.path.join(root_dir, file)) \
        if not os.path.isabs(file) else os.path.normpath(file)
    root = os.path.normpath(os.path.abspath(root_dir))
    if path.startswith(root + os.sep):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        return rel, lineno
    return None


# --------------------------------------------------------------------
# Analysis
# --------------------------------------------------------------------

def is_alloc_symbol(node):
    s = node.sym
    if s.startswith("_Znw") or s.startswith("_Zna"):
        return True  # operator new / operator new[]
    if s in ALLOC_NAMES:
        return True
    # .ci labels carry the return type ("void* operator new(...)"),
    # demangler output does not — substring match covers both.
    return "operator new" in node.demangled


def is_throw_symbol(node):
    if node.sym in THROW_NAMES:
        return True
    return "std::__throw_" in node.demangled


def is_amortized_growth(node):
    d = node.demangled
    if "std::vector" not in d and "_M_" not in node.sym:
        return False
    return any(m in d or m in node.sym
               for m in AMORTIZED_GROWTH_MARKERS)


def find_roots(graph, root_specs):
    """name -> list of matching symbols (clones included)."""
    found = {name: [] for name, _, _ in root_specs}
    for sym, n in graph.nodes.items():
        if not n.defined:
            continue
        for name, pattern, _ in root_specs:
            if pattern in n.demangled:
                found[name].append(sym)
    return found


class PropertyResult:
    def __init__(self, pid, title):
        self.id = pid
        self.title = title
        self.status = "proved"   # proved | violated | skipped
        self.roots = []
        self.reachable = 0
        self.violations = []
        self.allowed = []
        self.pruned = []
        self.extra = {}


def reach(graph, roots, prune_syms, cuts=None, on_cut=None):
    """BFS; returns ({sym: parent}, order). Pruned nodes are walls:
    reachable as edge targets, never expanded. Cut edges (excused by
    an allow or a failure-arm rule) are not traversed, so an excused
    edge also excuses the subtree only reachable through it; each cut
    edge met from a live node is reported once via on_cut."""
    parents = {}
    order = []
    frontier = []
    for r in roots:
        if r not in parents:
            parents[r] = None
            frontier.append(r)
            order.append(r)
    while frontier:
        nxt = []
        for u in frontier:
            if u in prune_syms:
                continue
            for v in sorted(graph.adj.get(u, ())):
                if cuts and (u, v) in cuts:
                    if on_cut:
                        on_cut(u, v)
                    continue
                if v not in parents:
                    parents[v] = u
                    order.append(v)
                    nxt.append(v)
        frontier = nxt
    return parents, order


def path_to(parents, sym, graph):
    path = []
    cur = sym
    while cur is not None:
        path.append(graph.nodes[cur].demangled)
        cur = parents[cur]
    return list(reversed(path))


def prune_set(graph, patterns):
    """Symbols whose demangled name matches a prune pattern, with
    reasons, plus the amortized-growth class resolved separately."""
    pruned = []
    syms = set()
    for sym, n in graph.nodes.items():
        for pattern, reason in patterns:
            if pattern in n.demangled:
                pruned.append((sym, n.demangled, reason))
                syms.add(sym)
                break
    return syms, pruned


def build_cuts(graph, root_dir, aidx, pid, guard_like):
    """Edges excused for property `pid`, removed before traversal so
    an excused edge also excuses the subtree reachable only through
    it. Four sources, in precedence order:

      1. callsite allows — an hpa-prove-allow whose target line is
         one of the edge's callsites;
      2. function-level allows — when inlined std machinery leaves
         only libstdc++-header callsites (hashtable rehash, vector
         growth guts, std::function dispatch), no repo line can carry
         the allow; an allow directly above the CALLER's definition
         excuses that caller's edges into non-repo code (its edges to
         repo functions stay fully checked);
      3. failure-arm edges — an edge sharing its exact callsite with
         a call into a whitelisted guard is the inline construction
         of that guard's arguments (HPA_CHECK message building on the
         macro line);
      4. failure-arm strings — std::string machinery called from a
         function that itself calls a whitelisted guard: the nested
         inlining of rule 3's message building, attributed to
         basic_string.h instead of the macro line.

    Rules 3-4 are automatic (no comment) and surface as a count in
    the report; string use in guard-free functions is still flagged.
    """
    cuts = {}
    guard_sites = set()
    guard_callers = set()
    for (u, v), css in graph.edges.items():
        if v in guard_like:
            guard_callers.add(u)
            guard_sites.update(c for c in css if c)

    def repo_loc(loc):
        return rel_callsite(loc, root_dir) if loc else None

    for (u, v), css in graph.edges.items():
        if v in guard_like:
            continue  # already walls for this property
        nu, nv = graph.nodes[u], graph.nodes[v]
        allow = None
        for c in sorted(css):
            rc = rel_callsite(c, root_dir)
            if rc and (rc[0], rc[1], pid) in aidx:
                allow = aidx[(rc[0], rc[1], pid)]
                break
        if allow is None:
            uloc = repo_loc(nu.loc)
            if uloc and not repo_loc(nv.loc):
                # The compiler records the line of the function NAME;
                # a comment above a `ret\\nClass::name(...)` style
                # signature lands up to two lines higher.
                for off in (0, 1, 2):
                    a = aidx.get((uloc[0], uloc[1] - off, pid))
                    if a is not None:
                        allow = a
                        break
        if allow is not None:
            cuts[(u, v)] = (allow.reason, allow)
            continue
        if any(c in guard_sites for c in css if c):
            cuts[(u, v)] = (
                "failure-arm: shares its callsite with a call into a "
                "whitelisted guard (inline HPA_CHECK argument "
                "construction)", None)
        elif u in guard_callers and STRING_MACHINERY_RE.search(
                nv.demangled):
            cuts[(u, v)] = (
                "failure-arm string construction: std::string "
                "machinery in a function whose throw path is a "
                "whitelisted guard", None)
    return cuts


def check_edge_property(graph, parents, pid, classify, res,
                        prune_syms=frozenset(), cuts=None):
    """Shared engine for P1/P2/P3: scan out-edges of every reachable,
    unpruned node; classify(dst_node) -> violation kind or None.

    Pruned nodes appear in `parents` (they are reachable as walls)
    but their bodies are excused, so their out-edges are skipped, as
    are edges already cut by build_cuts."""
    for u in sorted(parents):
        if u in prune_syms or u not in graph.adj:
            continue
        nu = graph.nodes[u]
        for v, callsites in graph.out_edges(u):
            if cuts and (u, v) in cuts:
                continue
            nv = graph.nodes[v]
            kind = classify(nv)
            if not kind:
                continue
            res.violations.append({
                "symbol": nv.demangled,
                "raw_symbol": v,
                "caller": nu.demangled,
                "callsites": sorted(c for c in callsites if c),
                "kind": kind,
                "path": path_to(parents, u, graph)
                + [nv.demangled],
            })


def analyze_p4(graph, parents, prune_syms, stack_limit, res):
    """Worst-case stack depth over the pruned reachable graph, plus
    recursion detection. Unknown-stack nodes (external library
    functions) contribute 0 and are counted honestly."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {}
    best = {}      # sym -> (depth_from_here, next_sym)
    cycles = []
    unknown = set()

    reachable = [s for s in parents if s not in prune_syms]
    rset = set(reachable)

    def frame(sym):
        n = graph.nodes[sym]
        if n.stack is None:
            if n.defined:
                unknown.add(n.demangled)
            return 0
        return n.stack

    # Iterative DFS with cycle detection.
    for start in reachable:
        if color.get(start, WHITE) != WHITE:
            continue
        stack = [(start, iter(sorted(graph.adj.get(start, ()))))]
        color[start] = GREY
        onstack = {start}
        while stack:
            sym, it = stack[-1]
            advanced = False
            for v in it:
                if v not in rset or v in prune_syms:
                    continue
                c = color.get(v, WHITE)
                if c == GREY:
                    cyc = [graph.nodes[s].demangled
                           for s, _ in stack[
                               [s for s, _ in stack].index(v):]]
                    cycles.append(cyc + [graph.nodes[v].demangled])
                    continue
                if c == WHITE:
                    color[v] = GREY
                    onstack.add(v)
                    stack.append(
                        (v, iter(sorted(graph.adj.get(v, ())))))
                    advanced = True
                    break
            if not advanced:
                d, nxt = 0, None
                for v in sorted(graph.adj.get(sym, ())):
                    if v not in rset or v in prune_syms:
                        continue
                    if color.get(v) == BLACK and v in best:
                        if best[v][0] > d:
                            d, nxt = best[v][0], v
                best[sym] = (d + frame(sym), nxt)
                color[sym] = BLACK
                onstack.discard(sym)
                stack.pop()

    worst, worst_root = 0, None
    for r in res.roots:
        if r in best and best[r][0] > worst:
            worst, worst_root = best[r][0], r
    worst_path = []
    cur = worst_root
    while cur is not None:
        worst_path.append({
            "function": graph.nodes[cur].demangled,
            "frame_bytes": graph.nodes[cur].stack or 0,
        })
        cur = best[cur][1] if cur in best else None

    res.extra = {
        "stack_limit": stack_limit,
        "worst_stack_bytes": worst,
        "worst_path": worst_path,
        "unknown_frame_functions": len(unknown),
        "recursion_cycles": cycles[:8],
    }
    for cyc in cycles:
        res.violations.append({
            "symbol": cyc[0],
            "kind": "recursion",
            "caller": cyc[-2] if len(cyc) > 1 else cyc[0],
            "callsites": [],
            "path": cyc,
        })
    if worst > stack_limit:
        res.violations.append({
            "symbol": worst_path[0]["function"] if worst_path else "",
            "kind": "stack-depth",
            "caller": "",
            "callsites": [],
            "path": [e["function"] for e in worst_path],
        })


def run_analysis(graph, root_dir, root_specs=None, prune_guards=None,
                 prune_steady=None, stack_limit=DEFAULT_STACK_LIMIT,
                 allows=None):
    """Run P1-P4 over a loaded graph. Returns (results, roots_report,
    stale_allows). `prune_guards` applies to every property;
    `prune_steady` only to P1/P2 (tickGuards: whitelisted there,
    analyzed for P3/P4)."""
    root_specs = root_specs if root_specs is not None else ROOTS
    prune_guards = (prune_guards if prune_guards is not None
                    else PRUNE_GUARDS)
    prune_steady = (prune_steady if prune_steady is not None
                    else PRUNE_STEADY)
    if allows is None:
        # The self-test fixture's allows belong to its private graph;
        # in a real-tree run they would always read as stale.
        allows = [a for a in scan_allows(root_dir)
                  if a.file != FIXTURE_FILE]
    aidx = allow_index(allows, root_dir)

    roots_found = find_roots(graph, root_specs)
    roots_report = []
    missing_required = []
    for name, pattern, required in root_specs:
        syms = roots_found[name]
        roots_report.append({
            "name": name,
            "pattern": pattern,
            "required": required,
            "found": bool(syms),
            "symbols": [graph.nodes[s].demangled for s in syms],
        })
        if required and not syms:
            missing_required.append(pattern)
    if missing_required:
        return None, roots_report, []

    guard_syms, guard_pruned = prune_set(graph, prune_guards)
    steady_syms, steady_pruned = prune_set(graph, prune_steady)

    growth_syms = {s for s, n in graph.nodes.items()
                   if is_amortized_growth(n)}

    results = []
    for pid in ("P1", "P2", "P3", "P4"):
        res = PropertyResult(pid, PROPERTIES[pid])
        res.roots = [s for name in PROPERTY_ROOTS[pid]
                     for s in roots_found.get(name, ())]
        if not res.roots:
            res.status = "skipped"
            res.extra["skip_reason"] = "no root symbols in graph"
            results.append(res)
            continue
        pruned = list(guard_pruned)
        pr_syms = set(guard_syms)
        if pid in ("P1", "P2"):
            pruned += steady_pruned
            pr_syms |= steady_syms
        if pid == "P1":
            # Growth helpers are walls for the alloc scan: reaching
            # one is recorded, its internal operator-new edge is not
            # a per-operation allocation.
            pr_syms |= growth_syms
        res.pruned = [{"symbol": d, "reason": r}
                      for _, d, r in pruned]
        if pid == "P4":
            # P4 runs uncut: excused edges still consume stack, so
            # the bound stays conservative.
            parents, order = reach(graph, res.roots, pr_syms)
            res.reachable = len(order)
            analyze_p4(graph, parents, pr_syms, stack_limit, res)
        else:
            guard_like = guard_syms | steady_syms
            cuts = build_cuts(graph, root_dir, aidx, pid, guard_like)

            def on_cut(u, v, _res=res, _cuts=cuts):
                reason, allow = _cuts[(u, v)]
                if allow is not None:
                    allow.used = True
                    _res.allowed.append({
                        "symbol": graph.nodes[v].demangled,
                        "caller": graph.nodes[u].demangled,
                        "callsite": "%s:%d"
                                    % (allow.file, allow.target),
                        "reason": reason,
                    })
                else:
                    _res.extra["failure_arm_edges"] = \
                        _res.extra.get("failure_arm_edges", 0) + 1

            parents, order = reach(graph, res.roots, pr_syms,
                                   cuts=cuts, on_cut=on_cut)
            res.reachable = len(order)
            if pid == "P1":
                res.extra["amortized_growth"] = sorted(
                    graph.nodes[s].demangled for s in growth_syms
                    if s in parents)
                classify = (lambda n:
                            "alloc" if is_alloc_symbol(n) else None)
            elif pid == "P2":
                pads = 0
                for u in parents:
                    if u in pr_syms:
                        continue
                    for v in graph.adj.get(u, ()):
                        if (v in LANDING_PAD_NAMES
                                and (u, v) not in cuts):
                            pads += 1
                res.extra["cleanup_landing_pads"] = pads
                classify = (lambda n:
                            "throw" if is_throw_symbol(n) else None)
            else:
                classify = (lambda n:
                            "indirect"
                            if n.sym.startswith(INDIRECT_NODE)
                            else None)
            check_edge_property(graph, parents, pid, classify, res,
                                prune_syms=pr_syms, cuts=cuts)
        if res.violations:
            res.status = "violated"
        results.append(res)

    stale = [a for a in allows if not a.used]
    return results, roots_report, stale


# --------------------------------------------------------------------
# Reporting
# --------------------------------------------------------------------

def registry_policies(root_dir):
    """Registered policy keys (same extraction as hpa_lint HPA006) —
    recorded in the JSON so the document names the combinations the
    static proof covers."""
    path = os.path.join(root_dir, "src", "core", "policy_registry.cc")
    keys = []
    if os.path.exists(path):
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                m = re.match(r'^\s*\{"([a-z0-9-]+)",', line)
                if m:
                    keys.append(m.group(1))
    return keys


def to_json(mode, build_dir, inputs, graph, results, roots_report,
            stale, root_dir):
    ok = all(r.status != "violated" for r in results)
    return {
        "schema": PROVE_SCHEMA,
        "mode": mode,
        "build_dir": os.path.abspath(build_dir),
        "inputs": len(inputs),
        "nodes": len(graph.nodes),
        "edges": len(graph.edges),
        "roots": roots_report,
        "policy_keys": registry_policies(root_dir),
        "coverage_note":
            "all registered sched/rf policies and both scheduler "
            "engines are compiled into Core (runtime dispatch), so "
            "static reachability from the roots covers every "
            "combination",
        "properties": [
            {
                "id": r.id,
                "title": r.title,
                "status": r.status,
                "reachable": r.reachable,
                "violations": r.violations,
                "allowed": r.allowed,
                "pruned": r.pruned,
                **r.extra,
            }
            for r in results
        ],
        "stale_allows": [
            {"file": a.file, "line": a.line,
             "properties": a.props, "reason": a.reason}
            for a in stale
        ],
        "ok": ok,
    }


def print_report(doc, out=sys.stdout):
    w = out.write
    w("hpa-prove: mode=%s, %d inputs, %d nodes, %d edges\n"
      % (doc["mode"], doc["inputs"], doc["nodes"], doc["edges"]))
    for r in doc["roots"]:
        w("  root %-12s %s (%d symbol%s)\n"
          % (r["name"],
             "found" if r["found"] else "NOT FOUND",
             len(r["symbols"]), "" if len(r["symbols"]) == 1 else "s"))
    for p in doc["properties"]:
        w("%s %-4s %s\n"
          % ({"proved": "PASS", "violated": "FAIL",
              "skipped": "SKIP"}[p["status"]], p["id"], p["title"]))
        if p["id"] == "P4" and p["status"] != "skipped":
            w("       worst static stack: %d bytes (limit %d), "
              "%d external frame(s) unknown\n"
              % (p.get("worst_stack_bytes", 0),
                 p.get("stack_limit", 0),
                 p.get("unknown_frame_functions", 0)))
        for v in p["violations"]:
            w("       violation [%s] %s\n" % (v["kind"], v["symbol"]))
            for step in v["path"]:
                w("         -> %s\n" % step)
            for c in v.get("callsites", []):
                w("         at %s\n" % c)
        if p["allowed"]:
            w("       %d allowed site(s) (hpa-prove-allow)\n"
              % len(p["allowed"]))
    for a in doc["stale_allows"]:
        w("warning: stale hpa-prove-allow at %s:%d (%s) matched "
          "nothing\n" % (a["file"], a["line"],
                         ",".join(a["properties"])))
    w("hpa-prove: %s\n" % ("all properties proved"
                           if doc["ok"] else "VIOLATIONS FOUND"))


# --------------------------------------------------------------------
# Self test
# --------------------------------------------------------------------

FIXTURE_ROOTS = [
    ("tick", "provefix::FixCore::tick(", True),
    ("cleanTick", "provefix::FixCore::cleanTick(", False),
]
FIXTURE_PRUNE = [
    ("provefix::FixCore::guards(",
     "fixture guard subtree: its alloc/throw must NOT be flagged"),
]


def self_test(root_dir, keep=False):
    import tempfile

    fixture = os.path.join(root_dir, "tests", "prove_fixture.cc")
    if not os.path.exists(fixture):
        print("SKIP: fixture %s not found" % fixture)
        return 77
    cxx = os.environ.get("CXX", "c++")
    if not shutil.which(cxx):
        print("SKIP: no C++ compiler (%s) on PATH" % cxx)
        return 77

    failures = []

    def check(cond, what):
        if not cond:
            failures.append(what)

    with tempfile.TemporaryDirectory() as tmp:
        obj = os.path.join(tmp, "prove_fixture.o")
        cg_cmd = [cxx, "-std=c++17", "-O2", "-g",
                  "-fcallgraph-info=su,da", "-fstack-usage",
                  "-c", fixture, "-o", obj]
        r = subprocess.run(cg_cmd, capture_output=True, text=True)
        if r.returncode != 0:
            plain = subprocess.run(
                [cxx, "-std=c++17", "-O2", "-c", fixture, "-o", obj],
                capture_output=True, text=True)
            if plain.returncode == 0:
                print("SKIP: %s does not support "
                      "-fcallgraph-info=su,da" % cxx)
                return 77
            print("SKIP: cannot compile fixture: %s"
                  % r.stderr.strip()[:400])
            return 77

        ci_files = glob.glob(os.path.join(tmp, "*.ci"))
        check(ci_files, "fixture produced no .ci file")
        graph = Graph()
        for path in ci_files:
            parse_ci_file(graph, path, 0)
        for path in glob.glob(os.path.join(tmp, "*.su")):
            parse_su_file(graph, path)

        # The fixture's allow comments live in the real tests/ tree.
        allows = [a for a in scan_allows(root_dir)
                  if a.file == "tests/prove_fixture.cc"]
        check(allows, "fixture allow comments not found by the scan")

        out = run_analysis(
            graph, root_dir, root_specs=FIXTURE_ROOTS,
            prune_guards=FIXTURE_PRUNE, stack_limit=4096,
            allows=allows)
        results, roots_report, stale = out
        check(results is not None, "fixture root tick not found")
        if results is not None:
            by_id = {r.id: r for r in results}

            p1 = by_id["P1"]
            check(p1.status == "violated", "P1 missed the fixture "
                  "allocation (status %s)" % p1.status)
            check(any("hotAlloc" in "".join(v["path"])
                      for v in p1.violations),
                  "P1 violation path does not name hotAlloc")
            check(not any("guardAlloc" in "".join(v["path"])
                          for v in p1.violations),
                  "P1 flagged the pruned guard subtree")
            check(len(p1.allowed) >= 1,
                  "P1 did not honor the hpa-prove-allow site")
            check(not any("allowedAlloc" in "".join(v["path"])
                          for v in p1.violations),
                  "P1 flagged the allowed site")
            check(not any("allowedDeep" in "".join(v["path"])
                          for v in p1.violations),
                  "P1 flagged the function-level allowed function")
            check(any("allowedDeep" in e["caller"]
                      for e in p1.allowed),
                  "P1 did not honor the function-level allow")

            p2 = by_id["P2"]
            check(p2.status == "violated",
                  "P2 missed the fixture throw")
            check(any("hotThrow" in "".join(v["path"])
                      for v in p2.violations),
                  "P2 violation path does not name hotThrow")

            p3 = by_id["P3"]
            check(p3.status == "violated",
                  "P3 missed the fixture indirect call")
            check(any("hotIndirect" in "".join(v["path"])
                      for v in p3.violations),
                  "P3 violation path does not name hotIndirect")

            p4 = by_id["P4"]
            check(p4.status == "violated",
                  "P4 missed the fixture stack hog / recursion")
            check(p4.extra.get("worst_stack_bytes", 0) > 4096,
                  "P4 worst stack %r not over the 4096 fixture limit"
                  % p4.extra.get("worst_stack_bytes"))
            check(any(v["kind"] == "recursion"
                      for v in p4.violations),
                  "P4 missed the fixture recursion cycle")

        # Clean root: a graph rooted only at cleanTick proves P1-P3.
        clean_roots = [("tick", "provefix::FixCore::cleanTick(",
                        True)]
        out2 = run_analysis(
            graph, root_dir, root_specs=clean_roots,
            prune_guards=FIXTURE_PRUNE, stack_limit=4096,
            allows=[])
        results2 = out2[0]
        check(results2 is not None, "cleanTick root not found")
        if results2 is not None:
            for r in results2:
                if r.id in ("P1", "P2", "P3"):
                    check(r.status == "proved",
                          "clean fixture root: %s unexpectedly %s "
                          "(%r)" % (r.id, r.status,
                                    [v["path"]
                                     for v in r.violations]))

        # objdump fallback over the same TU (no callgraph flags).
        if shutil.which("objdump"):
            obj2 = os.path.join(tmp, "fallback.o")
            r2 = subprocess.run(
                [cxx, "-std=c++17", "-O2", "-g", "-c", fixture,
                 "-o", obj2],
                capture_output=True, text=True)
            if r2.returncode == 0:
                g2 = Graph()
                parse_objdump(g2, obj2, shutil.which("objdump"))
                dem = Demangler()
                dem.demangle_all(list(g2.nodes))
                for n in g2.nodes.values():
                    if n.sym != INDIRECT_NODE:
                        n.demangled = dem.get(n.sym)
                out3 = run_analysis(
                    g2, root_dir, root_specs=FIXTURE_ROOTS,
                    prune_guards=FIXTURE_PRUNE, stack_limit=4096,
                    allows=[a for a in scan_allows(root_dir)
                            if a.file == "tests/prove_fixture.cc"])
                results3 = out3[0]
                check(results3 is not None,
                      "objdump fallback: fixture roots not found")
                if results3 is not None:
                    by3 = {r.id: r for r in results3}
                    check(by3["P1"].status == "violated",
                          "objdump fallback missed the P1 alloc")
                    check(by3["P3"].status == "violated",
                          "objdump fallback missed the P3 indirect "
                          "call")

    # Parser unit check on an embedded VCG snippet.
    g = Graph()
    import tempfile as _tf
    with _tf.NamedTemporaryFile("w", suffix=".ci", delete=False) as f:
        f.write(
            'graph: { title: "t.cc"\n'
            'node: { title: "_Z1fv" label: "int f()\\n'
            't.cc:3:5\\n24 bytes (static)\\n0 dynamic objects" }\n'
            'node: { title: "_Znwm" label: "operator new(unsigned'
            ' long)\\n/usr/include/new:126:26" shape : ellipse }\n'
            'edge: { sourcename: "_Z1fv" targetname: "_Znwm" '
            'label: "t.cc:4:11" }\n'
            '}\n')
        snippet = f.name
    try:
        parse_ci_file(g, snippet, 0)
        check(g.nodes["_Z1fv"].stack == 24,
              "VCG parser: stack bytes not read")
        check(g.nodes["_Z1fv"].demangled == "int f()",
              "VCG parser: demangled label not read")
        check(("_Z1fv", "_Znwm") in g.edges
              and "t.cc:4" in next(iter(g.edges[("_Z1fv", "_Znwm")])),
              "VCG parser: edge/callsite not read")
        check(not g.nodes["_Znwm"].defined,
              "VCG parser: ellipse node marked defined")
    finally:
        os.unlink(snippet)

    if failures:
        for msg in failures:
            print("SELF-TEST FAIL: %s" % msg)
        return 1
    print("self-test OK (callgraph + objdump fallback + parser)")
    return 0


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def default_root():
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="whole-program hot-path prover over "
                    "compiler-emitted call graphs")
    ap.add_argument("--build-dir", default="build",
                    help="CMake build tree (default: build)")
    ap.add_argument("--root-dir", default=default_root(),
                    help="repository root (for hpa-prove-allow "
                         "scanning; default: the tree containing "
                         "this script)")
    ap.add_argument("--mode",
                    choices=("auto", "callgraph", "objdump"),
                    default="auto",
                    help="auto prefers .ci files, falling back to "
                         "objdump over the linked hpa libraries")
    ap.add_argument("--stack-limit", type=int,
                    default=DEFAULT_STACK_LIMIT,
                    help="P4 worst-case stack bound in bytes "
                         "(default %d)" % DEFAULT_STACK_LIMIT)
    ap.add_argument("--json", metavar="FILE",
                    help="write an %s document ('-' = stdout)"
                         % PROVE_SCHEMA)
    ap.add_argument("--self-test", action="store_true",
                    help="compile tests/prove_fixture.cc and verify "
                         "every property catches its violation")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test(args.root_dir)

    graph, inputs, mode = None, [], None
    if args.mode in ("auto", "callgraph"):
        if os.path.isdir(args.build_dir):
            graph, inputs = load_ci_graph(args.build_dir)
        if graph is not None:
            mode = "callgraph"
        elif args.mode == "callgraph":
            print("SKIP: no .ci files under %s (configure with "
                  "-DHPA_ANALYZE=ON and a GCC that supports "
                  "-fcallgraph-info)" % args.build_dir,
                  file=sys.stderr)
            return 77
    if graph is None and args.mode in ("auto", "objdump"):
        graph, inputs = load_objdump_graph(args.build_dir)
        if graph is not None:
            mode = "objdump"
    if graph is None:
        print("SKIP: no analyzable artifacts under %s (no .ci files "
              "and no libhpa*.a/objdump)" % args.build_dir,
              file=sys.stderr)
        return 77

    results, roots_report, stale = run_analysis(
        graph, args.root_dir, stack_limit=args.stack_limit)
    if results is None:
        missing = [r["pattern"] for r in roots_report
                   if r["required"] and not r["found"]]
        print("SKIP: required root(s) not in the graph: %s (is this "
              "the right build tree?)" % ", ".join(missing),
              file=sys.stderr)
        return 77

    doc = to_json(mode, args.build_dir, inputs, graph, results,
                  roots_report, stale, args.root_dir)

    if args.json:
        text = json.dumps(doc, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text)
    if args.json != "-":
        print_report(doc)
    return 0 if doc["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
