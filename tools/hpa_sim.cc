/**
 * @file
 * Command-line driver for the half-price architecture simulator:
 * run any SPEC substitute benchmark or a user-supplied HPA-ISA
 * assembly file on any machine configuration, print IPC and,
 * optionally, emit the text report or schema-versioned JSON/CSV.
 *
 *   hpa_sim --bench gzip --width 4 --wakeup seq --regfile seq
 *   hpa_sim --bench gzip --insts 200000 --stats-json out.json
 *   hpa_sim --asm kernel.s --insts 1000000 --report
 *   hpa_sim --list
 *
 * Argument parsing and machine assembly live in sim_options.hh so
 * the regression tests exercise them directly.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "sim/experiment.hh"
#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "workloads/workloads.hh"

#include "sim_options.hh"

namespace
{

using namespace hpa;

void
usage(std::ostream &os)
{
    os << R"(usage: hpa_sim [options]

workload (choose one):
  --bench NAME        SPEC CINT2000 substitute (see --list)
  --asm FILE          assemble and run an HPA-ISA source file
  --list              list available benchmarks and exit
  --sweep             run the full reproduction sweep (every
                      benchmark x every paper machine) on a thread
                      pool and print an IPC matrix
  --jobs N            sweep worker threads (0 = hardware threads)
  --trace-cache V     on (default) | off: sweep cells replay one
                      shared committed trace per workload instead of
                      re-emulating per cell; IPC is bit-identical

machine:
  --width N           4 (default) or 8: Table 1 base machines
  --sched-policy P    scheduler (wakeup/select) policy: conv
                      (default) | seq | seq-nopred | tag-elim | dlt
                      (--wakeup is an alias)
  --rf-policy P       register-file read-port policy: 2port
                      (default) | seq | extra-stage | half-xbar |
                      prefetch (--regfile is an alias)
  --policy K=V,...    list form of the two above, e.g.
                      --policy sched=dlt,rf=prefetch
  --recovery MODEL    nonsel (default) | sel
  --rename MODEL      2port (default) | half
  --lap N             last-arrival predictor entries (default 1024;
                      requires a predictor-based --sched-policy)
  --bypass N          bypass window in cycles (default 1)

run control:
  --insts N           committed-instruction budget (default: to
                      HALT; in --sweep mode: 200000 per run)
  --cycles N          cycle budget (default: unbounded)
  --no-fastforward    do not skip to the workload's steady: label
  --report            dump the full statistics report
  --help              this text

robustness:
  --watchdog N        fail the run with a deadlock report when no
                      instruction commits for N cycles (default
                      100000; 0 disables)
  --check-interval N  cross-validate the scheduler's incremental
                      bookkeeping against the window every N cycles
                      (default 0 = off)
  --sched-engine E    masked (default) | reference: scheduler
                      data-structure engine; results are
                      bit-identical, reference keeps the per-entry
                      chains as a cross-check

structured output (FILE may be '-' for stdout; writing any document
to stdout suppresses the human-readable summary):
  --json FILE         the whole run — spec, metrics, status, full
                      stats — as one "hpa.run.v2" JSON document
  --stats-json FILE   just the statistics registry, "hpa.stats.v1"
  --stats-csv FILE    the statistics as a CSV header/data row pair

exit status: 0 success; 1 runtime failure (including failed sweep
cells — partial results are still printed); 2 usage/config errors.
)";
}

/**
 * The full reproduction sweep: every benchmark on every machine of
 * the paper's main figures, run on the SweepRunner thread pool.
 * Deterministic — the IPC matrix is identical at any --jobs value.
 * Failed cells print as FAIL, are listed with their error kind and
 * context after the matrix, and turn the exit status non-zero; the
 * surviving cells are unaffected.
 */
int
runSweepMode(const tools::SimOptions &opt)
{
    uint64_t insts = opt.insts ? opt.insts : 200000;
    auto machines = sim::reproductionMachines();
    auto names = workloads::benchmarkNames();

    std::vector<sim::SweepJob> sweep;
    for (auto &m : machines) {
        tools::applyRobustnessKnobs(opt, m.cfg);
        for (const auto &n : names) {
            sim::SweepJob j;
            j.workload = n;
            j.machine = m;
            j.max_insts = insts;
            j.max_cycles = opt.cycles;
            j.trace_cache = opt.trace_cache;
            sweep.push_back(j);
        }
    }

    sim::SweepRunner runner(opt.jobs);
    std::cout << sweep.size() << " runs (" << machines.size()
              << " machines x " << names.size() << " benchmarks), "
              << runner.jobs() << " worker thread(s), " << insts
              << " insts per run\n\n";
    auto t0 = std::chrono::steady_clock::now();
    auto res = runner.run(std::move(sweep));
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    // IPC matrix: machines down, benchmarks across.
    std::cout << std::left << std::setw(26) << "machine (IPC)";
    for (const auto &n : names)
        std::cout << std::right << std::setw(8) << n;
    std::cout << "\n";
    size_t k = 0;
    uint64_t total_cycles = 0;
    std::vector<const sim::SweepResult *> failed;
    bool steady_missing = false;
    for (const auto &m : machines) {
        std::cout << std::left << std::setw(26) << m.name;
        for (size_t i = 0; i < names.size(); ++i, ++k) {
            if (!res[k].outcome.ok()) {
                failed.push_back(&res[k]);
                std::cout << std::right << std::setw(8) << "FAIL";
            } else {
                std::cout << std::right << std::setw(8) << std::fixed
                          << std::setprecision(2) << res[k].ipc;
            }
            steady_missing |= res[k].outcome.steadyMissing;
            total_cycles += res[k].cycles;
        }
        std::cout << "\n";
    }
    std::cout << "\n"
              << std::setprecision(1) << double(total_cycles) / 1e6
              << " Mcycles simulated in " << wall << " s wall ("
              << std::setprecision(2)
              << double(total_cycles) / 1e6 / wall
              << " Mcycles/s aggregate)\n";
    if (steady_missing)
        std::cerr << "warning: some kernels have no steady: symbol; "
                     "their timing includes initialization\n";
    if (!failed.empty()) {
        std::cerr << "\n" << failed.size() << " of " << res.size()
                  << " runs failed (remaining cells are complete and "
                     "deterministic):\n";
        for (const auto *r : failed)
            std::cerr << "  " << r->spec.workload << " @ "
                      << r->spec.machine.name << ": "
                      << r->outcome.error << "\n";
        return 1;
    }
    return 0;
}

/** Run @p emit against @p path ('-' = stdout). */
bool
writeDocument(const std::string &path,
              const std::function<void(std::ostream &)> &emit)
{
    if (path == "-") {
        emit(std::cout);
        return true;
    }
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << " for writing\n";
        return false;
    }
    emit(out);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::SimOptions opt;
    std::string err;
    if (parseSimOptions(std::vector<std::string>(argv + 1, argv + argc),
                        opt, err)
        != 0) {
        std::cerr << err << "\n";
        usage(std::cerr);
        return 2;
    }
    if (opt.help) {
        usage(std::cout);
        return 0;
    }
    if (opt.list) {
        for (const auto &n : workloads::benchmarkNames()) {
            auto w = workloads::make(n, workloads::Scale::Test);
            std::cout << n << " — " << w.description << "\n";
        }
        return 0;
    }

    if (opt.sweep) {
        if (!opt.bench.empty() || !opt.asm_file.empty()) {
            std::cerr << "--sweep runs every benchmark; drop "
                         "--bench/--asm\n";
            return 2;
        }
        try {
            return runSweepMode(opt);
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 1;
        }
    }

    if (opt.bench.empty() == opt.asm_file.empty()) {
        std::cerr << "exactly one of --bench or --asm is required\n";
        usage(std::cerr);
        return 2;
    }

    try {
        assembler::Program image;
        std::string name;
        if (!opt.bench.empty()) {
            auto w = workloads::make(opt.bench, workloads::Scale::Full);
            image = std::move(w.program);
            name = w.name + " — " + w.description;
        } else {
            std::ifstream in(opt.asm_file);
            if (!in) {
                std::cerr << "cannot open " << opt.asm_file << "\n";
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            image = assembler::assemble(text.str());
            name = opt.asm_file;
        }

        sim::RunResult r;
        r.spec.workload =
            !opt.bench.empty() ? opt.bench : opt.asm_file;
        r.spec.machine = tools::machineFor(opt);
        r.spec.max_insts = opt.insts;
        r.spec.max_cycles = opt.cycles;
        r.spec.fast_forward = opt.fastforward;

        uint64_t ff = 0;
        if (opt.fastforward) {
            if (image.symbols.count("steady")) {
                ff = image.symbols.at("steady");
            } else {
                r.outcome.steadyMissing = true;
                std::cerr << "warning: no steady: symbol in "
                          << r.spec.workload
                          << "; timing includes initialization\n";
            }
        }

        r.sim = std::make_unique<sim::Simulation>(
            image, r.spec.machine.cfg, opt.insts, ff);
        auto t0 = std::chrono::steady_clock::now();
        r.sim->run(opt.cycles);
        r.wallSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        r.ipc = r.sim->ipc();
        r.committed = r.sim->core().stats().committed.value();
        r.cycles = r.sim->core().cycle();
        r.fastForwarded = r.sim->fastForwarded();

        if (!opt.machineReadableStdout()) {
            std::cout << "workload: " << name << "\n"
                      << "machine:  " << r.spec.machine.name << "\n";
            if (ff)
                std::cout << "fast-forwarded " << r.fastForwarded
                          << " instructions\n";
            std::cout << "committed " << r.committed
                      << " instructions in " << r.cycles
                      << " cycles: IPC " << r.ipc << "\n";
            if (!r.sim->console().empty()) {
                std::cout << "console: ";
                for (unsigned char c : r.sim->console())
                    std::cout << (std::isprint(c) ? char(c) : '.');
                std::cout << "\n";
            }
            if (opt.report) {
                std::cout << "\n";
                r.sim->report(std::cout);
            }
        }

        bool ok = true;
        if (!opt.json_out.empty())
            ok &= writeDocument(opt.json_out, [&](std::ostream &os) {
                r.toJson(os, /*with_stats=*/true,
                         /*with_timing=*/false);
            });
        if (!opt.stats_json_out.empty())
            ok &= writeDocument(
                opt.stats_json_out,
                [&](std::ostream &os) {
                    r.statsRegistry().toJson(os);
                });
        if (!opt.stats_csv_out.empty())
            ok &= writeDocument(
                opt.stats_csv_out, [&](std::ostream &os) {
                    auto reg = r.statsRegistry();
                    reg.csvHeader(os);
                    reg.csvRow(os);
                });
        if (!ok)
            return 1;
    } catch (const SimError &e) {
        // Typed failures: one line with the machine-readable kind;
        // config mistakes exit 2 like other usage errors, and any
        // attached pipeline dump goes to stderr for postmortems.
        std::cerr << "error: " << e.oneLine() << "\n";
        if (!e.context().dump.empty())
            std::cerr << e.context().dump;
        return e.kind() == ErrorKind::Config ? 2 : 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
