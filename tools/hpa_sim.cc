/**
 * @file
 * Command-line driver for the half-price architecture simulator:
 * run any SPEC substitute benchmark or a user-supplied HPA-ISA
 * assembly file on any machine configuration and print IPC and,
 * optionally, the full statistics report.
 *
 *   hpa_sim --bench gzip --width 4 --wakeup seq --regfile seq
 *   hpa_sim --asm kernel.s --insts 1000000 --report
 *   hpa_sim --list
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

void
usage(std::ostream &os)
{
    os << R"(usage: hpa_sim [options]

workload (choose one):
  --bench NAME        SPEC CINT2000 substitute (see --list)
  --asm FILE          assemble and run an HPA-ISA source file
  --list              list available benchmarks and exit
  --sweep             run the full reproduction sweep (every
                      benchmark x every paper machine) on a thread
                      pool and print an IPC matrix
  --jobs N            sweep worker threads (0 = hardware threads)

machine:
  --width N           4 (default) or 8: Table 1 base machines
  --wakeup MODEL      conv (default) | seq | seq-nopred | tag-elim
  --regfile MODEL     2port (default) | seq | extra-stage | half-xbar
  --recovery MODEL    nonsel (default) | sel
  --rename MODEL      2port (default) | half
  --lap N             last-arrival predictor entries (default 1024)
  --bypass N          bypass window in cycles (default 1)

run control:
  --insts N           committed-instruction budget (default: to
                      HALT; in --sweep mode: 200000 per run)
  --cycles N          cycle budget (default: unbounded)
  --no-fastforward    do not skip to the workload's steady: label
  --report            dump the full statistics report
  --help              this text
)";
}

bool
parseWakeup(const std::string &v, core::WakeupModel &out)
{
    if (v == "conv")
        out = core::WakeupModel::Conventional;
    else if (v == "seq")
        out = core::WakeupModel::Sequential;
    else if (v == "seq-nopred")
        out = core::WakeupModel::SequentialNoPred;
    else if (v == "tag-elim")
        out = core::WakeupModel::TagElimination;
    else
        return false;
    return true;
}

/**
 * The full reproduction sweep: every benchmark on every machine of
 * the paper's main figures, run on the SweepRunner thread pool.
 * Deterministic — the IPC matrix is identical at any --jobs value.
 */
int
runSweepMode(unsigned jobs, uint64_t insts, uint64_t cycles)
{
    if (insts == 0)
        insts = 200000;
    auto machines = sim::reproductionMachines();
    auto names = workloads::benchmarkNames();

    std::vector<sim::SweepJob> sweep;
    for (const auto &m : machines) {
        for (const auto &n : names) {
            sim::SweepJob j;
            j.workload = n;
            j.machine = m;
            j.max_insts = insts;
            j.max_cycles = cycles;
            sweep.push_back(j);
        }
    }

    sim::SweepRunner runner(jobs);
    std::cout << sweep.size() << " runs (" << machines.size()
              << " machines x " << names.size() << " benchmarks), "
              << runner.jobs() << " worker thread(s), " << insts
              << " insts per run\n\n";
    auto t0 = std::chrono::steady_clock::now();
    auto res = runner.run(std::move(sweep));
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    // IPC matrix: machines down, benchmarks across.
    std::cout << std::left << std::setw(26) << "machine (IPC)";
    for (const auto &n : names)
        std::cout << std::right << std::setw(8) << n;
    std::cout << "\n";
    size_t k = 0;
    uint64_t total_cycles = 0;
    for (const auto &m : machines) {
        std::cout << std::left << std::setw(26) << m.name;
        for (size_t i = 0; i < names.size(); ++i, ++k) {
            std::cout << std::right << std::setw(8) << std::fixed
                      << std::setprecision(2) << res[k].ipc;
            total_cycles += res[k].cycles;
        }
        std::cout << "\n";
    }
    std::cout << "\n"
              << std::setprecision(1) << total_cycles / 1e6
              << " Mcycles simulated in " << wall << " s wall ("
              << std::setprecision(2) << total_cycles / 1e6 / wall
              << " Mcycles/s aggregate)\n";
    return 0;
}

bool
parseRegfile(const std::string &v, core::RegfileModel &out)
{
    if (v == "2port")
        out = core::RegfileModel::TwoPort;
    else if (v == "seq")
        out = core::RegfileModel::SequentialAccess;
    else if (v == "extra-stage")
        out = core::RegfileModel::ExtraStage;
    else if (v == "half-xbar")
        out = core::RegfileModel::HalfPortCrossbar;
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench;
    std::string asm_file;
    unsigned width = 4;
    core::WakeupModel wakeup = core::WakeupModel::Conventional;
    core::RegfileModel regfile = core::RegfileModel::TwoPort;
    core::RecoveryModel recovery = core::RecoveryModel::NonSelective;
    core::RenameModel rename = core::RenameModel::TwoPort;
    unsigned lap = 1024;
    unsigned bypass = 1;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    bool fastforward = true;
    bool report = false;
    bool sweep = false;
    unsigned jobs = 0;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << argv[i] << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(std::cout);
            return 0;
        } else if (a == "--list") {
            for (const auto &n : workloads::benchmarkNames()) {
                auto w = workloads::make(n, workloads::Scale::Test);
                std::cout << n << " — " << w.description << "\n";
            }
            return 0;
        } else if (a == "--sweep") {
            sweep = true;
        } else if (a == "--jobs") {
            jobs = unsigned(std::stoul(need(i)));
        } else if (a == "--bench") {
            bench = need(i);
        } else if (a == "--asm") {
            asm_file = need(i);
        } else if (a == "--width") {
            width = unsigned(std::stoul(need(i)));
        } else if (a == "--wakeup") {
            if (!parseWakeup(need(i), wakeup)) {
                std::cerr << "bad --wakeup value\n";
                return 2;
            }
        } else if (a == "--regfile") {
            if (!parseRegfile(need(i), regfile)) {
                std::cerr << "bad --regfile value\n";
                return 2;
            }
        } else if (a == "--recovery") {
            std::string v = need(i);
            recovery = v == "sel" ? core::RecoveryModel::Selective
                                  : core::RecoveryModel::NonSelective;
        } else if (a == "--rename") {
            rename = need(i) == std::string("half")
                ? core::RenameModel::HalfPort
                : core::RenameModel::TwoPort;
        } else if (a == "--lap") {
            lap = unsigned(std::stoul(need(i)));
        } else if (a == "--bypass") {
            bypass = unsigned(std::stoul(need(i)));
        } else if (a == "--insts") {
            insts = std::stoull(need(i));
        } else if (a == "--cycles") {
            cycles = std::stoull(need(i));
        } else if (a == "--no-fastforward") {
            fastforward = false;
        } else if (a == "--report") {
            report = true;
        } else {
            std::cerr << "unknown option: " << a << "\n";
            usage(std::cerr);
            return 2;
        }
    }

    if (sweep) {
        if (!bench.empty() || !asm_file.empty()) {
            std::cerr << "--sweep runs every benchmark; drop "
                         "--bench/--asm\n";
            return 2;
        }
        try {
            return runSweepMode(jobs, insts, cycles);
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 1;
        }
    }

    if (bench.empty() == asm_file.empty()) {
        std::cerr << "exactly one of --bench or --asm is required\n";
        usage(std::cerr);
        return 2;
    }

    try {
        assembler::Program image;
        std::string name;
        if (!bench.empty()) {
            auto w = workloads::make(bench, workloads::Scale::Full);
            image = std::move(w.program);
            name = w.name + " — " + w.description;
        } else {
            std::ifstream in(asm_file);
            if (!in) {
                std::cerr << "cannot open " << asm_file << "\n";
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            image = assembler::assemble(text.str());
            name = asm_file;
        }

        sim::Machine m = sim::baseMachine(width);
        m = sim::withWakeup(m, wakeup, lap);
        m = sim::withRegfile(m, regfile);
        m = sim::withRecovery(m, recovery);
        m = sim::withRename(m, rename);
        m.cfg.bypass_window = bypass;

        uint64_t ff = 0;
        if (fastforward && image.symbols.count("steady"))
            ff = image.symbols.at("steady");

        sim::Simulation s(image, m.cfg, insts, ff);
        s.run(cycles);

        std::cout << "workload: " << name << "\n"
                  << "machine:  " << m.name << "\n";
        if (ff)
            std::cout << "fast-forwarded " << s.fastForwarded()
                      << " instructions\n";
        std::cout << "committed " << s.core().stats().committed.value()
                  << " instructions in " << s.core().cycle()
                  << " cycles: IPC " << s.ipc() << "\n";
        if (!s.emulator().console().empty()) {
            std::cout << "console: ";
            for (unsigned char c : s.emulator().console())
                std::cout << (std::isprint(c) ? char(c) : '.');
            std::cout << "\n";
        }
        if (report) {
            std::cout << "\n";
            s.report(std::cout);
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
