/**
 * @file
 * Host-throughput benchmark of the full reproduction sweep: run
 * every (paper machine x benchmark) pair once serially and once on
 * the thread pool, verify the two produce identical IPC (the sweep
 * engine's determinism contract), and emit BENCH_sweep.json
 * ("hpa.bench-sweep.v3") with per-run status, IPC, wall time,
 * simulated-cycles/sec and the run's registry policy names
 * (sched_policy / rf_policy) plus the measured serial-to-parallel
 * speedup.
 *
 *   hpa_bench_sweep [--insts N] [--jobs N] [--out FILE]
 *                   [--zoo | --sched-policy P | --rf-policy P]
 *                   [--check GOLDEN] [--write-golden FILE]
 *                   [--inject KIND@INDEX]
 *                   [--store DIR [--resume] [--workers N]
 *                    [--lease-timeout SEC] [--max-attempts N]
 *                    [--dump-journal N]]
 *
 * The machine axis defaults to the paper's reproduction grid.
 * --zoo swaps in sim::policyZooMachines() (the post-paper policies:
 * dlt wakeup, prefetch register file); --sched-policy/--rf-policy
 * build a custom two-machine grid (both Table 1 widths) from the
 * string policy registry — unknown names exit 2 listing it.
 *
 * --store DIR switches to the crash-resilient execution layer
 * (sim/job_store.hh, sim/shard.hh): every completed cell is framed
 * and fsync'd into an append-only journal as it finishes, so a
 * SIGKILL/OOM mid-sweep costs at most the in-flight cells. A
 * non-empty store refuses to run without --resume (which replays the
 * journal, dedupes finished cells and executes only the remainder).
 * --workers N forks N worker processes that claim cells via
 * heartbeat-renewed lease files; the parent reclaims expired leases
 * (a worker died mid-cell) and respawns workers if a whole round
 * dies. SIGINT/SIGTERM drain gracefully: in-flight cells are
 * journaled and leases released before exit (status 128+signal).
 * On full completion the journal is compacted and the merged
 * artifact/golden check is emitted from the store — bit-identical to
 * an uninterrupted run. --dump-journal N prints record N as its
 * "hpa.sweep-journal.v1" JSON payload (schema-gate hook).
 *
 * --check compares the sweep's IPC values against a golden JSON map
 * ("hpa.sweep-golden.v1", tools/golden_sweep_ipc.json in the repo)
 * and fails with a per-cell diff on any drift — the cheap regression
 * gate run by tools/run_full_sweep.sh.
 *
 * Failed cells are fault-isolated: they appear in the JSON with
 * status/error_kind/error, are excluded from the determinism and
 * golden comparisons, and turn the exit status non-zero — the
 * artifact with every surviving cell is still written. --inject
 * (test only; KIND = poison | invariant | hang | flaky, plus the
 * process-level crash | stall-heartbeat which require --store)
 * plants a fault in one job so these paths can be exercised end to
 * end.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/policy_registry.hh"
#include "sim/job_store.hh"
#include "sim/shard.hh"
#include "sim/sweep.hh"
#include "stats/json.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

std::atomic<bool> g_stop{false};
volatile std::sig_atomic_t g_signal = 0;

extern "C" void
onSignal(int sig)
{
    g_signal = sig;
    g_stop.store(true);
}

void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

/** Key of one run in the golden map. */
std::string
runKey(const sim::SweepJob &job)
{
    return job.machine.name + "|" + job.workload;
}

/** Strict decimal parse; exits with a clear message on garbage. */
uint64_t
parseU64(const std::string &opt, const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0') {
        std::cerr << opt << " needs a non-negative integer, got '"
                  << text << "'\n";
        std::exit(2);
    }
    return v;
}

double
parseDouble(const std::string &opt, const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == text.c_str() || *end != '\0'
        || !(v > 0.0)) {
        std::cerr << opt << " needs a positive number, got '" << text
                  << "'\n";
        std::exit(2);
    }
    return v;
}

/**
 * Minimal parser for the golden file: extracts every `"key": number`
 * pair (string-valued fields like "schema" are skipped naturally).
 * The golden format is flat, so no general JSON machinery is needed.
 */
std::map<std::string, double>
parseGolden(const std::string &text)
{
    std::map<std::string, double> kv;
    size_t pos = 0;
    while ((pos = text.find('"', pos)) != std::string::npos) {
        size_t end = text.find('"', pos + 1);
        if (end == std::string::npos)
            break;
        std::string key = text.substr(pos + 1, end - pos - 1);
        size_t colon = text.find(':', end);
        if (colon == std::string::npos)
            break;
        size_t vstart = text.find_first_not_of(" \t\n", colon + 1);
        if (vstart == std::string::npos)
            break;
        char *vend = nullptr;
        double v = std::strtod(text.c_str() + vstart, &vend);
        if (vend != text.c_str() + vstart)
            kv[key] = v;
        pos = end + 1;
    }
    return kv;
}

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One per-run line of the merged artifact — buildable from a live
 *  SweepResult or a journal StoredRun, so the dual-pass and
 *  store-backed paths share the emission/golden-check code. */
struct Row
{
    std::string machine;
    std::string sched_policy;
    std::string rf_policy;
    std::string workload;
    std::string status;
    bool valid = false;
    bool steady_missing = false;
    unsigned attempts = 1;
    uint64_t backoff_ms = 0;
    double ipc = 0.0;
    uint64_t committed = 0;
    uint64_t cycles = 0;
    double wall_seconds = 0.0;
    std::string error_kind;
    std::string error;

    bool ok() const { return status == "ok"; }
    double
    cyclesPerSec() const
    {
        return wall_seconds > 0 ? double(cycles) / wall_seconds : 0.0;
    }
};

Row
rowFromSpec(const sim::SweepJob &job)
{
    Row row;
    row.machine = job.machine.name;
    row.sched_policy =
        core::schedPolicyFor(job.machine.cfg.wakeup).name;
    row.rf_policy = core::rfPolicyFor(job.machine.cfg.regfile).name;
    row.workload = job.workload;
    return row;
}

Row
rowFromResult(const sim::SweepJob &job, const sim::SweepResult &r)
{
    Row row = rowFromSpec(job);
    row.status = sim::statusName(r.outcome.status);
    row.valid = r.valid();
    row.steady_missing = r.outcome.steadyMissing;
    row.attempts = r.outcome.attempts;
    row.backoff_ms = r.outcome.backoffMs;
    row.ipc = r.ipc;
    row.committed = r.committed;
    row.cycles = r.cycles;
    row.wall_seconds = r.wallSeconds;
    if (!r.outcome.ok()) {
        row.error_kind = kindName(r.outcome.errorKind);
        row.error = r.outcome.error;
    }
    return row;
}

Row
rowFromStored(const sim::SweepJob &job, const sim::StoredRun &s)
{
    Row row = rowFromSpec(job);
    row.status = s.status;
    row.valid = s.valid;
    row.steady_missing = s.steadyMissing;
    row.attempts = s.attempts;
    row.backoff_ms = s.backoffMs;
    row.ipc = s.ipc;
    row.committed = s.committed;
    row.cycles = s.cycles;
    row.wall_seconds = s.wallSeconds;
    row.error_kind = s.errorKind;
    row.error = s.error;
    return row;
}

/** Everything the v3 artifact header needs besides the rows. */
struct ArtifactMeta
{
    uint64_t insts = 0;
    bool trace_cache = true;
    const char *sched_engine = "masked";
    unsigned batch = 0;
    uint64_t batches_formed = 0;
    uint64_t lanes_max = 0;
    unsigned hw = 1;
    unsigned requested_jobs = 0;
    bool jobs_clamped = false;
    unsigned par_jobs = 1;
    double t_serial = 0.0;
    double t_parallel = 0.0;
    // Store-mode extras (emitted only when store is non-empty).
    std::string store;
    uint64_t resumed_runs = 0;
    uint64_t executed_runs = 0;
    uint64_t workers = 0;
    uint64_t journal_dropped_bytes = 0;
    uint64_t journal_dropped_records = 0;
};

bool
emitArtifact(const std::string &out, const std::vector<Row> &rows,
             const ArtifactMeta &m)
{
    std::ofstream os(out);
    if (!os) {
        std::cerr << "cannot write " << out << "\n";
        return false;
    }
    size_t failed = 0;
    uint64_t total_cycles = 0;
    for (const Row &r : rows) {
        if (!r.ok())
            ++failed;
        total_cycles += r.cycles;
    }
    double speedup =
        m.t_parallel > 0 ? m.t_serial / m.t_parallel : 0.0;
    double efficiency =
        speedup / double(std::min<unsigned>(m.par_jobs, m.hw));

    stats::json::JsonWriter jw(os);
    jw.beginObject()
        .kv("schema", "hpa.bench-sweep.v3")
        .kv("insts_per_run", m.insts)
        .kv("trace_cache", m.trace_cache)
        .kv("sched_engine", m.sched_engine)
        .kv("batch", uint64_t(sim::SweepRunner::resolveBatch(m.batch)))
        .kv("batches_formed", m.batches_formed)
        .kv("lanes_max", m.lanes_max)
        .kv("hardware_threads", m.hw)
        .kv("requested_jobs", uint64_t(m.requested_jobs))
        .kv("jobs_clamped", m.jobs_clamped)
        .kv("parallel_jobs", m.par_jobs)
        .kv("serial_wall_seconds", m.t_serial, 3)
        .kv("parallel_wall_seconds", m.t_parallel, 3)
        .kv("speedup", speedup, 3)
        .kv("scaling_efficiency", efficiency, 3)
        .kv("total_simulated_cycles", total_cycles)
        .kv("aggregate_cycles_per_sec",
            m.t_parallel > 0 ? double(total_cycles) / m.t_parallel
                             : 0.0,
            0)
        .kv("ok_runs", uint64_t(rows.size() - failed))
        .kv("failed_runs", uint64_t(failed));
    if (!m.store.empty()) {
        jw.kv("store", m.store)
            .kv("resumed_runs", m.resumed_runs)
            .kv("executed_runs", m.executed_runs)
            .kv("workers", m.workers)
            .kv("journal_dropped_bytes", m.journal_dropped_bytes)
            .kv("journal_dropped_records", m.journal_dropped_records);
    }
    jw.key("runs").beginArray();
    for (const Row &r : rows) {
        jw.beginObject()
            .kv("machine", r.machine)
            .kv("sched_policy", r.sched_policy)
            .kv("rf_policy", r.rf_policy)
            .kv("workload", r.workload)
            .kv("status", r.status)
            .kv("valid", r.valid)
            .kv("steady_missing", r.steady_missing)
            .kv("attempts", r.attempts)
            .kv("backoff_ms", r.backoff_ms)
            .kv("ipc", r.ipc, 6)
            .kv("committed", r.committed)
            .kv("cycles", r.cycles)
            .kv("wall_seconds", r.wall_seconds, 4)
            .kv("cycles_per_sec", r.cyclesPerSec(), 0);
        if (!r.ok()) {
            jw.kv("error_kind", r.error_kind).kv("error", r.error);
        }
        jw.endObject();
    }
    jw.endArray().endObject();
    std::printf("wrote %s\n", out.c_str());
    return true;
}

bool
writeGoldenFile(const std::string &path, const std::vector<Row> &rows,
                uint64_t insts)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << "\n";
        return false;
    }
    stats::json::JsonWriter jw(os);
    jw.beginObject()
        .kv("schema", "hpa.sweep-golden.v1")
        .kv("insts_per_run", insts);
    for (const Row &r : rows)
        if (r.ok())
            jw.kv(r.machine + "|" + r.workload, r.ipc, 6);
    jw.endObject();
    std::printf("wrote %s\n", path.c_str());
    return true;
}

/** @return 0 ok, 1 drift/unreadable. */
int
goldenCheck(const std::string &check, const std::vector<Row> &rows,
            uint64_t insts)
{
    std::ifstream in(check);
    if (!in) {
        std::cerr << "cannot read " << check << "\n";
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto golden = parseGolden(text.str());

    auto budget = golden.find("insts_per_run");
    if (budget != golden.end() && uint64_t(budget->second) != insts) {
        std::fprintf(stderr,
                     "golden was recorded at %llu insts per run, "
                     "this sweep ran %llu — not comparable\n",
                     static_cast<unsigned long long>(budget->second),
                     static_cast<unsigned long long>(insts));
        return 1;
    }

    size_t drift = 0, checked = 0;
    for (const Row &r : rows) {
        // Failed cells carry no IPC to compare; they are reported
        // (and fail the gate) via the failure list.
        if (!r.ok())
            continue;
        auto it = golden.find(r.machine + "|" + r.workload);
        if (it == golden.end())
            continue;
        ++checked;
        // Golden stores 6 decimals; allow the rounding slack.
        if (std::fabs(r.ipc - it->second) > 5e-7) {
            std::fprintf(stderr,
                         "IPC DRIFT machine=%s workload=%s "
                         "expected=%.6f got=%.6f\n",
                         r.machine.c_str(), r.workload.c_str(),
                         it->second, r.ipc);
            ++drift;
        }
    }
    if (checked == 0) {
        std::fprintf(stderr, "golden %s matched no runs\n",
                     check.c_str());
        return 1;
    }
    if (drift) {
        std::fprintf(stderr, "%zu of %zu runs drifted from golden\n",
                     drift, checked);
        return 1;
    }
    std::printf("golden check: %zu runs match %s\n", checked,
                check.c_str());
    return 0;
}

/** Report failed rows on stderr. @return their count. */
size_t
reportFailures(const std::vector<Row> &rows, const std::string &out)
{
    size_t failed = 0;
    for (const Row &r : rows)
        if (!r.ok())
            ++failed;
    if (failed) {
        std::fprintf(stderr,
                     "\n%zu of %zu runs failed (artifact %s still "
                     "carries every surviving cell):\n",
                     failed, rows.size(), out.c_str());
        for (const Row &r : rows)
            if (!r.ok())
                std::fprintf(stderr, "  %s @ %s: %s\n",
                             r.workload.c_str(), r.machine.c_str(),
                             r.error.c_str());
    }
    return failed;
}

/** Pre-build every workload (and, with the trace cache, its
 *  committed trace) touched by @p jobs so the timed/sharded phase
 *  pays no assembly or one-time emulation. */
void
prebuildWorkloads(const std::vector<sim::SweepJob> &jobs,
                  bool trace_cache, uint64_t insts)
{
    std::vector<std::string> names;
    for (const auto &j : jobs)
        if (std::find(names.begin(), names.end(), j.workload)
            == names.end())
            names.push_back(j.workload);
    for (const auto &n : names) {
        const workloads::Workload &w = workloads::globalCache().get(n);
        if (trace_cache) {
            uint64_t ff = 0;
            auto it = w.program.symbols.find("steady");
            if (it != w.program.symbols.end())
                ff = it->second;
            workloads::globalCache().trace(
                n, workloads::Scale::Full, insts, ff);
        }
    }
}

/** All the store-mode knobs, resolved from the CLI. */
struct StoreOptions
{
    std::string dir;
    bool resume = false;
    unsigned workers = 0;
    double lease_timeout = 30.0;
    unsigned max_attempts = 3;
    /** Worker-respawn rounds before the coordinator gives up. */
    unsigned max_rounds = 5;
};

/** Exit status honouring a drain-on-signal interruption. */
int
interruptedExit(const sim::JobStore &store)
{
    std::fprintf(stderr,
                 "interrupted: %zu cells journaled in %s; rerun with "
                 "--resume to finish\n",
                 store.completed(), store.dir().c_str());
    return 128 + int(g_signal);
}

int
runWorkerChild(const StoreOptions &so, const std::string &worker_id,
               const std::vector<sim::SweepJob> &sweep)
{
    try {
        sim::JobStore store(so.dir, worker_id);
        sim::ShardOptions opts;
        opts.lease.timeout_seconds = so.lease_timeout;
        opts.lease.max_attempts = so.max_attempts;
        opts.stop = &g_stop;
        sim::ShardWorker worker(store, sweep, opts);
        sim::ShardSummary sum = worker.run();
        std::printf("[%s] executed %zu, resumed %zu, discarded %zu, "
                    "permanent failures %zu%s\n",
                    worker_id.c_str(), sum.executed, sum.resumed,
                    sum.discarded, sum.failed_permanent,
                    sum.stopped ? " (stopped)" : "");
        return sum.stopped ? 128 + int(g_signal) : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "[%s] fatal: %s\n", worker_id.c_str(),
                     e.what());
        return 1;
    }
}

/**
 * Store-backed execution: single journaled pass (no --workers) or a
 * forked worker fleet with lease recovery. Emits the merged artifact
 * and golden check from the journal. @return process exit status.
 */
int
runStoreMode(const StoreOptions &so,
             const std::vector<sim::SweepJob> &sweep,
             const ArtifactMeta &meta_in, const std::string &out,
             const std::string &check, const std::string &write_golden)
{
    ArtifactMeta meta = meta_in;
    meta.store = so.dir;
    meta.workers = so.workers;
    installSignalHandlers();

    std::vector<std::string> keys;
    keys.reserve(sweep.size());
    for (const auto &j : sweep)
        keys.push_back(sim::JobStore::specKey(j));

    // Resume gate + torn-tail recovery report, in a scoped reader so
    // no journal FILE handle is ever held across fork().
    size_t already = 0;
    {
        sim::JobStore reader(so.dir, "coord");
        if (reader.droppedBytes() > 0)
            std::fprintf(stderr,
                         "journal recovery: dropped %zu bytes "
                         "(%zu torn/corrupt record(s)) from %s\n",
                         reader.droppedBytes(),
                         reader.droppedRecords(), so.dir.c_str());
        for (const auto &k : keys)
            if (reader.find(k))
                ++already;
        if (reader.loadedRecords() > 0 && !so.resume) {
            std::fprintf(stderr,
                         "store %s already holds %zu journaled "
                         "record(s); pass --resume to continue this "
                         "sweep or point --store at a fresh "
                         "directory\n",
                         so.dir.c_str(), reader.loadedRecords());
            return 2;
        }
    }
    meta.resumed_runs = already;
    std::printf("store %s: %zu of %zu cells already journaled\n",
                so.dir.c_str(), already, sweep.size());

    // Only the remainder needs workloads/traces built.
    if (already < sweep.size()) {
        std::vector<sim::SweepJob> missing;
        {
            sim::JobStore reader(so.dir, "coord");
            for (size_t i = 0; i < sweep.size(); ++i)
                if (!reader.find(keys[i]))
                    missing.push_back(sweep[i]);
        }
        prebuildWorkloads(missing, meta.trace_cache, meta.insts);
    }

    double t_run = 0.0;
    if (so.workers == 0) {
        // Single-process journaled pass.
        sim::JobStore store(so.dir, "w0");
        sim::ShardSummary sum;
        t_run = wallSeconds([&] {
            sum = sim::runWithStore(store, sweep, meta.par_jobs,
                                    &g_stop);
        });
        meta.executed_runs = sum.executed;
        std::printf("journaled pass: executed %zu, resumed %zu "
                    "(%.2f s, %u workers)\n",
                    sum.executed, sum.resumed, t_run, meta.par_jobs);
        if (sum.stopped)
            return interruptedExit(store);
    } else {
        // Forked worker fleet with a reclaiming coordinator.
        sim::LeaseOptions lo;
        lo.timeout_seconds = so.lease_timeout;
        lo.max_attempts = so.max_attempts;
        sim::LeaseManager coordinator(so.dir, "coord", lo);

        const auto t0 = std::chrono::steady_clock::now();
        for (unsigned round = 1; round <= so.max_rounds; ++round) {
            std::vector<pid_t> pids;
            for (unsigned w = 0; w < so.workers; ++w) {
                std::string wid = "w";
                wid += std::to_string(w);
                // Children inherit the stdio buffers; flush so they
                // don't replay the parent's pending output.
                std::fflush(nullptr);
                pid_t pid = fork();
                if (pid < 0) {
                    std::perror("fork");
                    break;
                }
                if (pid == 0) {
                    // Child: own JobStore, own shard file — never
                    // constructed before fork, so no FILE buffer is
                    // shared with the parent.
                    int rc = runWorkerChild(so, wid, sweep);
                    std::fflush(nullptr);
                    _exit(rc);
                }
                pids.push_back(pid);
            }
            if (pids.empty())
                return 1;
            std::printf("round %u: %zu worker process(es), lease "
                        "timeout %.1f s\n",
                        round, pids.size(), so.lease_timeout);

            size_t alive = pids.size();
            size_t crashed = 0;
            bool forwarded = false;
            while (alive > 0) {
                if (g_stop.load() && !forwarded) {
                    for (pid_t pid : pids)
                        kill(pid, SIGTERM);
                    forwarded = true;
                }
                int status = 0;
                pid_t done = waitpid(-1, &status, WNOHANG);
                if (done > 0) {
                    --alive;
                    if (WIFSIGNALED(status)) {
                        ++crashed;
                        std::fprintf(
                            stderr,
                            "worker %d died on signal %d — its "
                            "leased cell will be reclaimed\n",
                            int(done), WTERMSIG(status));
                    }
                    continue;
                }
                // While waiting, reclaim leases whose heartbeat
                // stopped (dead worker) so peers can take over.
                coordinator.reclaimExpired();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(200));
            }

            size_t completed = 0;
            {
                sim::JobStore reader(so.dir, "coord");
                for (const auto &k : keys)
                    if (reader.find(k))
                        ++completed;
            }
            if (completed >= sweep.size() || g_stop.load())
                break;
            std::fprintf(stderr,
                         "round %u ended with %zu/%zu cells durable "
                         "(%zu worker crash(es)); respawning\n",
                         round, completed, sweep.size(), crashed);
        }
        t_run = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    }
    meta.t_parallel = t_run;

    // Merge phase: one authoritative reader over every shard.
    sim::JobStore store(so.dir, "coord");
    if (g_stop.load())
        return interruptedExit(store);
    meta.journal_dropped_bytes = store.droppedBytes();
    meta.journal_dropped_records = store.droppedRecords();
    if (so.workers > 0) {
        size_t executed = 0;
        for (const auto &rec : store.records())
            if (rec.worker != "coord")
                ++executed;
        meta.executed_runs =
            executed >= already ? executed - already : 0;
    }

    std::vector<Row> rows;
    rows.reserve(sweep.size());
    size_t missing = 0;
    for (size_t i = 0; i < sweep.size(); ++i) {
        const sim::StoredRun *rec = store.find(keys[i]);
        if (!rec) {
            std::fprintf(stderr, "no journal record for cell %zu "
                         "(%s @ %s)\n",
                         i, sweep[i].workload.c_str(),
                         sweep[i].machine.name.c_str());
            ++missing;
            Row row = rowFromSpec(sweep[i]);
            row.status = "failed";
            row.error_kind = "crash";
            row.error = "no durable result (workers exhausted)";
            rows.push_back(row);
            continue;
        }
        rows.push_back(rowFromStored(sweep[i], *rec));
    }

    if (!emitArtifact(out, rows, meta))
        return 1;
    int rc = 0;
    if (!write_golden.empty()
        && !writeGoldenFile(write_golden, rows, meta.insts))
        rc = 1;
    if (!check.empty() && goldenCheck(check, rows, meta.insts) != 0)
        rc = 1;
    if (reportFailures(rows, out) > 0 || missing > 0)
        rc = 1;

    if (rc == 0 && missing == 0) {
        const size_t dropped = store.compact();
        std::printf("sweep complete: journal compacted (%zu "
                    "superseded record(s) dropped)\n",
                    dropped);
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t insts = 50000;
    unsigned jobs = 0;
    unsigned batch = 0;
    bool trace_cache = true;
    core::SchedEngine engine = core::SchedEngine::Masked;
    std::string out = "BENCH_sweep.json";
    std::string check;
    std::string write_golden;
    bool zoo = false;
    std::string sched_policy;
    std::string rf_policy;
    std::vector<std::pair<sim::FaultKind, size_t>> injections;
    StoreOptions store_opts;
    bool dump_journal = false;
    uint64_t dump_index = 0;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << argv[i] << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--insts")
            insts = parseU64(a, need(i));
        else if (a == "--jobs")
            jobs = unsigned(parseU64(a, need(i)));
        else if (a == "--batch")
            batch = unsigned(parseU64(a, need(i)));
        else if (a == "--trace-cache") {
            std::string v = need(i);
            if (v != "on" && v != "off") {
                std::cerr << "--trace-cache expects on | off\n";
                return 2;
            }
            trace_cache = (v == "on");
        } else if (a == "--sched-engine") {
            std::string v = need(i);
            if (!core::parseSchedEngine(v, engine)) {
                std::cerr << "--sched-engine expects masked | "
                             "reference\n";
                return 2;
            }
        } else if (a == "--out")
            out = need(i);
        else if (a == "--check")
            check = need(i);
        else if (a == "--write-golden")
            write_golden = need(i);
        else if (a == "--zoo")
            zoo = true;
        else if (a == "--sched-policy")
            sched_policy = need(i);
        else if (a == "--rf-policy")
            rf_policy = need(i);
        else if (a == "--store")
            store_opts.dir = need(i);
        else if (a == "--resume")
            store_opts.resume = true;
        else if (a == "--workers")
            store_opts.workers = unsigned(parseU64(a, need(i)));
        else if (a == "--lease-timeout")
            store_opts.lease_timeout = parseDouble(a, need(i));
        else if (a == "--max-attempts")
            store_opts.max_attempts = unsigned(parseU64(a, need(i)));
        else if (a == "--dump-journal") {
            dump_journal = true;
            dump_index = parseU64(a, need(i));
        } else if (a == "--inject") {
            std::string v = need(i);
            size_t at = v.find('@');
            std::string kind = v.substr(0, at);
            sim::FaultKind f;
            if (kind == "poison")
                f = sim::FaultKind::PoisonWorkload;
            else if (kind == "invariant")
                f = sim::FaultKind::InvariantTrip;
            else if (kind == "hang")
                f = sim::FaultKind::BlockCommit;
            else if (kind == "flaky")
                f = sim::FaultKind::FlakyOnce;
            else if (kind == "crash")
                f = sim::FaultKind::CrashProcess;
            else if (kind == "stall-heartbeat")
                f = sim::FaultKind::StallHeartbeat;
            else {
                std::cerr << "--inject expects poison|invariant|hang"
                             "|flaky|crash|stall-heartbeat@INDEX\n";
                return 2;
            }
            if (at == std::string::npos) {
                std::cerr << "--inject needs an @INDEX\n";
                return 2;
            }
            injections.emplace_back(
                f, parseU64(a, v.substr(at + 1)));
        } else {
            std::cerr << "unknown option: " << a << "\n"
                      << "usage: hpa_bench_sweep [--insts N] "
                         "[--jobs N] [--batch B] "
                         "[--trace-cache on|off] "
                         "[--sched-engine masked|reference] "
                         "[--zoo | --sched-policy P | "
                         "--rf-policy P] "
                         "[--out FILE] [--check GOLDEN] "
                         "[--write-golden FILE] "
                         "[--inject KIND@INDEX] "
                         "[--store DIR [--resume] [--workers N] "
                         "[--lease-timeout SEC] [--max-attempts N] "
                         "[--dump-journal N]]\n";
            return 2;
        }
    }

    const bool store_mode = !store_opts.dir.empty();
    if (!store_mode
        && (store_opts.resume || store_opts.workers > 0
            || dump_journal)) {
        std::cerr << "--resume/--workers/--dump-journal require "
                     "--store DIR\n";
        return 2;
    }
    for (auto [fault, idx] : injections) {
        if ((fault == sim::FaultKind::CrashProcess
             || fault == sim::FaultKind::StallHeartbeat)
            && !store_mode) {
            std::cerr << "--inject crash/stall-heartbeat are "
                         "process-level faults; they need --store "
                         "DIR (and stall-heartbeat also --workers)\n";
            return 2;
        }
    }

    if (dump_journal) {
        // Schema-gate hook: print record N as its standalone
        // hpa.sweep-journal.v1 JSON payload and exit.
        try {
            sim::JobStore store(store_opts.dir, "dump");
            if (dump_index >= store.records().size()) {
                std::fprintf(stderr,
                             "--dump-journal %llu out of range: "
                             "store holds %zu record(s)\n",
                             static_cast<unsigned long long>(
                                 dump_index),
                             store.records().size());
                return 1;
            }
            std::printf("%s\n",
                        sim::JobStore::recordJson(
                            store.records()[size_t(dump_index)])
                            .c_str());
            return 0;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }

    if (zoo && (!sched_policy.empty() || !rf_policy.empty())) {
        std::cerr << "--zoo already selects its machine grid; drop "
                     "--sched-policy/--rf-policy\n";
        return 2;
    }
    std::vector<sim::Machine> machines;
    if (!sched_policy.empty() || !rf_policy.empty()) {
        // Custom grid: the requested policies at both Table 1
        // widths, built through the string registry so an unknown
        // name fails here with the registered list.
        try {
            for (unsigned w : {4u, 8u}) {
                auto b = sim::Machine::base(w);
                if (!sched_policy.empty())
                    b.schedPolicy(sched_policy);
                if (!rf_policy.empty())
                    b.rfPolicy(rf_policy);
                machines.push_back(b.build());
            }
        } catch (const std::invalid_argument &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    } else {
        machines = zoo ? sim::policyZooMachines()
                       : sim::reproductionMachines();
    }
    // The engine knob is a result-invariant simulator implementation
    // choice: apply it to every machine in the grid (names and spec
    // keys are unchanged, so goldens/stores stay comparable).
    for (auto &m : machines)
        m.cfg.sched_engine = engine;
    auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> sweep;
    for (const auto &m : machines) {
        for (const auto &n : names) {
            sim::SweepJob j;
            j.workload = n;
            j.machine = m;
            j.max_insts = insts;
            j.trace_cache = trace_cache;
            j.batch = batch;
            j.validate();
            sweep.push_back(j);
        }
    }
    for (auto [fault, idx] : injections) {
        if (idx >= sweep.size()) {
            std::cerr << "--inject index " << idx << " out of range "
                      << "(0.." << sweep.size() - 1 << ")\n";
            return 2;
        }
        sweep[idx].fault = fault;
        // A hung cell waits out the watchdog; keep that snappy.
        if (fault == sim::FaultKind::BlockCommit)
            sweep[idx].machine.cfg.watchdog_cycles = 20000;
    }

    unsigned hw = sim::SweepRunner::resolveJobs(0);
    unsigned requested_jobs = jobs;
    unsigned par_jobs = sim::SweepRunner::resolveJobs(jobs);
    bool jobs_clamped = false;
    if (par_jobs > hw) {
        // Oversubscribing a throughput benchmark only adds context
        // switches; the runs would still be deterministic, but the
        // timing numbers would not mean what the artifact claims.
        std::fprintf(stderr,
                     "warning: --jobs %u exceeds the %u hardware "
                     "thread(s); clamping the parallel pass to %u\n",
                     requested_jobs, hw, hw);
        par_jobs = hw;
        jobs_clamped = true;
    }
    std::printf("%zu runs (%zu machines x %zu benchmarks), "
                "%llu insts per run, %u hardware thread(s), "
                "trace cache %s, batch %u%s\n",
                sweep.size(), machines.size(), names.size(),
                static_cast<unsigned long long>(insts), hw,
                trace_cache ? "on" : "off",
                sim::SweepRunner::resolveBatch(batch),
                batch == 0 ? " (auto)" : "");

    ArtifactMeta meta;
    meta.insts = insts;
    meta.trace_cache = trace_cache;
    meta.sched_engine = core::schedEngineName(engine);
    meta.batch = batch;
    meta.hw = hw;
    meta.requested_jobs = requested_jobs;
    meta.jobs_clamped = jobs_clamped;
    meta.par_jobs = par_jobs;

    if (store_mode)
        return runStoreMode(store_opts, sweep, meta, out, check,
                            write_golden);

    // Pre-build every workload so neither timed pass pays assembly;
    // with the trace cache on, also pre-capture each committed trace
    // so the one-time emulation cost stays out of both timed passes.
    prebuildWorkloads(sweep, trace_cache, insts);

    std::printf("serial pass (1 worker)...\n");
    sim::SweepRunner serial_runner(1);
    std::vector<sim::SweepResult> serial;
    double t_serial =
        wallSeconds([&] { serial = serial_runner.run(sweep); });

    std::printf("parallel pass (%u workers)...\n", par_jobs);
    sim::SweepRunner parallel_runner(par_jobs);
    std::vector<sim::SweepResult> parallel;
    double t_parallel =
        wallSeconds([&] { parallel = parallel_runner.run(sweep); });

    // Determinism contract: parallel results bit-identical to serial
    // — including which cells failed and why (error kinds are
    // deterministic; only the wall-clock fields may differ).
    size_t mismatches = 0;
    for (size_t i = 0; i < sweep.size(); ++i) {
        if (serial[i].outcome.status != parallel[i].outcome.status
            || serial[i].outcome.errorKind
                   != parallel[i].outcome.errorKind) {
            std::fprintf(stderr,
                         "DETERMINISM MISMATCH %s: serial status %s "
                         "parallel status %s\n",
                         runKey(sweep[i]).c_str(),
                         sim::statusName(serial[i].outcome.status),
                         sim::statusName(parallel[i].outcome.status));
            ++mismatches;
            continue;
        }
        if (!serial[i].outcome.ok())
            continue;
        if (serial[i].ipc != parallel[i].ipc
            || serial[i].cycles != parallel[i].cycles
            || serial[i].committed != parallel[i].committed) {
            std::fprintf(stderr,
                         "DETERMINISM MISMATCH %s: serial IPC %.9f "
                         "parallel IPC %.9f\n",
                         runKey(sweep[i]).c_str(), serial[i].ipc,
                         parallel[i].ipc);
            ++mismatches;
        }
    }
    if (mismatches) {
        std::fprintf(stderr, "%zu mismatching runs\n", mismatches);
        return 1;
    }

    std::vector<Row> rows;
    rows.reserve(parallel.size());
    for (size_t i = 0; i < sweep.size(); ++i)
        rows.push_back(rowFromResult(sweep[i], parallel[i]));

    meta.batches_formed = parallel_runner.batchesFormed();
    meta.lanes_max = parallel_runner.lanesMax();
    meta.t_serial = t_serial;
    meta.t_parallel = t_parallel;

    double speedup = t_parallel > 0 ? t_serial / t_parallel : 0.0;
    double efficiency =
        speedup / double(std::min<unsigned>(par_jobs, hw));
    std::printf("serial %.2f s, parallel %.2f s at %u workers: "
                "speedup %.2fx (%.0f%% of linear up to %u cores)\n",
                t_serial, t_parallel, par_jobs, speedup,
                100.0 * efficiency, std::min(par_jobs, hw));

    if (!emitArtifact(out, rows, meta))
        return 1;
    if (!write_golden.empty()
        && !writeGoldenFile(write_golden, rows, insts))
        return 1;
    if (!check.empty() && goldenCheck(check, rows, insts) != 0)
        return 1;
    if (reportFailures(rows, out) > 0)
        return 1;
    return 0;
}
