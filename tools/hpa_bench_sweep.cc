/**
 * @file
 * Host-throughput benchmark of the full reproduction sweep: run
 * every (paper machine x benchmark) pair once serially and once on
 * the thread pool, verify the two produce identical IPC (the sweep
 * engine's determinism contract), and emit BENCH_sweep.json
 * ("hpa.bench-sweep.v3") with per-run status, IPC, wall time,
 * simulated-cycles/sec and the run's registry policy names
 * (sched_policy / rf_policy) plus the measured serial-to-parallel
 * speedup.
 *
 *   hpa_bench_sweep [--insts N] [--jobs N] [--out FILE]
 *                   [--zoo | --sched-policy P | --rf-policy P]
 *                   [--check GOLDEN] [--write-golden FILE]
 *                   [--inject KIND@INDEX]
 *
 * The machine axis defaults to the paper's reproduction grid.
 * --zoo swaps in sim::policyZooMachines() (the post-paper policies:
 * dlt wakeup, prefetch register file); --sched-policy/--rf-policy
 * build a custom two-machine grid (both Table 1 widths) from the
 * string policy registry — unknown names exit 2 listing it.
 *
 * --check compares the sweep's IPC values against a golden JSON map
 * ("hpa.sweep-golden.v1", tools/golden_sweep_ipc.json in the repo)
 * and fails with a per-cell diff on any drift — the cheap regression
 * gate run by tools/run_full_sweep.sh.
 *
 * Failed cells are fault-isolated: they appear in the JSON with
 * status/error_kind/error, are excluded from the determinism and
 * golden comparisons, and turn the exit status non-zero — the
 * artifact with every surviving cell is still written. --inject
 * (test only; KIND = poison | invariant | hang | flaky) plants a
 * fault in one job so this path can be exercised end to end.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy_registry.hh"
#include "sim/sweep.hh"
#include "stats/json.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

/** Key of one run in the golden map. */
std::string
runKey(const sim::SweepJob &job)
{
    return job.machine.name + "|" + job.workload;
}

/** Strict decimal parse; exits with a clear message on garbage. */
uint64_t
parseU64(const std::string &opt, const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0') {
        std::cerr << opt << " needs a non-negative integer, got '"
                  << text << "'\n";
        std::exit(2);
    }
    return v;
}

/**
 * Minimal parser for the golden file: extracts every `"key": number`
 * pair (string-valued fields like "schema" are skipped naturally).
 * The golden format is flat, so no general JSON machinery is needed.
 */
std::map<std::string, double>
parseGolden(const std::string &text)
{
    std::map<std::string, double> kv;
    size_t pos = 0;
    while ((pos = text.find('"', pos)) != std::string::npos) {
        size_t end = text.find('"', pos + 1);
        if (end == std::string::npos)
            break;
        std::string key = text.substr(pos + 1, end - pos - 1);
        size_t colon = text.find(':', end);
        if (colon == std::string::npos)
            break;
        size_t vstart = text.find_first_not_of(" \t\n", colon + 1);
        if (vstart == std::string::npos)
            break;
        char *vend = nullptr;
        double v = std::strtod(text.c_str() + vstart, &vend);
        if (vend != text.c_str() + vstart)
            kv[key] = v;
        pos = end + 1;
    }
    return kv;
}

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t insts = 50000;
    unsigned jobs = 0;
    unsigned batch = 0;
    bool trace_cache = true;
    std::string out = "BENCH_sweep.json";
    std::string check;
    std::string write_golden;
    bool zoo = false;
    std::string sched_policy;
    std::string rf_policy;
    std::vector<std::pair<sim::FaultKind, size_t>> injections;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << argv[i] << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--insts")
            insts = parseU64(a, need(i));
        else if (a == "--jobs")
            jobs = unsigned(parseU64(a, need(i)));
        else if (a == "--batch")
            batch = unsigned(parseU64(a, need(i)));
        else if (a == "--trace-cache") {
            std::string v = need(i);
            if (v != "on" && v != "off") {
                std::cerr << "--trace-cache expects on | off\n";
                return 2;
            }
            trace_cache = (v == "on");
        } else if (a == "--out")
            out = need(i);
        else if (a == "--check")
            check = need(i);
        else if (a == "--write-golden")
            write_golden = need(i);
        else if (a == "--zoo")
            zoo = true;
        else if (a == "--sched-policy")
            sched_policy = need(i);
        else if (a == "--rf-policy")
            rf_policy = need(i);
        else if (a == "--inject") {
            std::string v = need(i);
            size_t at = v.find('@');
            std::string kind = v.substr(0, at);
            sim::FaultKind f;
            if (kind == "poison")
                f = sim::FaultKind::PoisonWorkload;
            else if (kind == "invariant")
                f = sim::FaultKind::InvariantTrip;
            else if (kind == "hang")
                f = sim::FaultKind::BlockCommit;
            else if (kind == "flaky")
                f = sim::FaultKind::FlakyOnce;
            else {
                std::cerr << "--inject expects "
                             "poison|invariant|hang|flaky@INDEX\n";
                return 2;
            }
            if (at == std::string::npos) {
                std::cerr << "--inject needs an @INDEX\n";
                return 2;
            }
            injections.emplace_back(
                f, parseU64(a, v.substr(at + 1)));
        } else {
            std::cerr << "unknown option: " << a << "\n"
                      << "usage: hpa_bench_sweep [--insts N] "
                         "[--jobs N] [--batch B] "
                         "[--trace-cache on|off] "
                         "[--zoo | --sched-policy P | "
                         "--rf-policy P] "
                         "[--out FILE] [--check GOLDEN] "
                         "[--write-golden FILE] "
                         "[--inject KIND@INDEX]\n";
            return 2;
        }
    }

    if (zoo && (!sched_policy.empty() || !rf_policy.empty())) {
        std::cerr << "--zoo already selects its machine grid; drop "
                     "--sched-policy/--rf-policy\n";
        return 2;
    }
    std::vector<sim::Machine> machines;
    if (!sched_policy.empty() || !rf_policy.empty()) {
        // Custom grid: the requested policies at both Table 1
        // widths, built through the string registry so an unknown
        // name fails here with the registered list.
        try {
            for (unsigned w : {4u, 8u}) {
                auto b = sim::Machine::base(w);
                if (!sched_policy.empty())
                    b.schedPolicy(sched_policy);
                if (!rf_policy.empty())
                    b.rfPolicy(rf_policy);
                machines.push_back(b.build());
            }
        } catch (const std::invalid_argument &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    } else {
        machines = zoo ? sim::policyZooMachines()
                       : sim::reproductionMachines();
    }
    auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> sweep;
    for (const auto &m : machines) {
        for (const auto &n : names) {
            sim::SweepJob j;
            j.workload = n;
            j.machine = m;
            j.max_insts = insts;
            j.trace_cache = trace_cache;
            j.batch = batch;
            j.validate();
            sweep.push_back(j);
        }
    }
    for (auto [fault, idx] : injections) {
        if (idx >= sweep.size()) {
            std::cerr << "--inject index " << idx << " out of range "
                      << "(0.." << sweep.size() - 1 << ")\n";
            return 2;
        }
        sweep[idx].fault = fault;
        // A hung cell waits out the watchdog; keep that snappy.
        if (fault == sim::FaultKind::BlockCommit)
            sweep[idx].machine.cfg.watchdog_cycles = 20000;
    }

    unsigned hw = sim::SweepRunner::resolveJobs(0);
    unsigned requested_jobs = jobs;
    unsigned par_jobs = sim::SweepRunner::resolveJobs(jobs);
    bool jobs_clamped = false;
    if (par_jobs > hw) {
        // Oversubscribing a throughput benchmark only adds context
        // switches; the runs would still be deterministic, but the
        // timing numbers would not mean what the artifact claims.
        std::fprintf(stderr,
                     "warning: --jobs %u exceeds the %u hardware "
                     "thread(s); clamping the parallel pass to %u\n",
                     requested_jobs, hw, hw);
        par_jobs = hw;
        jobs_clamped = true;
    }
    std::printf("%zu runs (%zu machines x %zu benchmarks), "
                "%llu insts per run, %u hardware thread(s), "
                "trace cache %s, batch %u%s\n",
                sweep.size(), machines.size(), names.size(),
                static_cast<unsigned long long>(insts), hw,
                trace_cache ? "on" : "off",
                sim::SweepRunner::resolveBatch(batch),
                batch == 0 ? " (auto)" : "");

    // Pre-build every workload so neither timed pass pays assembly;
    // with the trace cache on, also pre-capture each committed trace
    // so the one-time emulation cost stays out of both timed passes.
    for (const auto &n : names) {
        const workloads::Workload &w = workloads::globalCache().get(n);
        if (trace_cache) {
            uint64_t ff = 0;
            auto it = w.program.symbols.find("steady");
            if (it != w.program.symbols.end())
                ff = it->second;
            workloads::globalCache().trace(
                n, workloads::Scale::Full, insts, ff);
        }
    }

    std::printf("serial pass (1 worker)...\n");
    sim::SweepRunner serial_runner(1);
    std::vector<sim::SweepResult> serial;
    double t_serial =
        wallSeconds([&] { serial = serial_runner.run(sweep); });

    std::printf("parallel pass (%u workers)...\n", par_jobs);
    sim::SweepRunner parallel_runner(par_jobs);
    std::vector<sim::SweepResult> parallel;
    double t_parallel =
        wallSeconds([&] { parallel = parallel_runner.run(sweep); });

    // Determinism contract: parallel results bit-identical to serial
    // — including which cells failed and why (error kinds are
    // deterministic; only the wall-clock fields may differ).
    size_t mismatches = 0;
    for (size_t i = 0; i < sweep.size(); ++i) {
        if (serial[i].outcome.status != parallel[i].outcome.status
            || serial[i].outcome.errorKind
                   != parallel[i].outcome.errorKind) {
            std::fprintf(stderr,
                         "DETERMINISM MISMATCH %s: serial status %s "
                         "parallel status %s\n",
                         runKey(sweep[i]).c_str(),
                         sim::statusName(serial[i].outcome.status),
                         sim::statusName(parallel[i].outcome.status));
            ++mismatches;
            continue;
        }
        if (!serial[i].outcome.ok())
            continue;
        if (serial[i].ipc != parallel[i].ipc
            || serial[i].cycles != parallel[i].cycles
            || serial[i].committed != parallel[i].committed) {
            std::fprintf(stderr,
                         "DETERMINISM MISMATCH %s: serial IPC %.9f "
                         "parallel IPC %.9f\n",
                         runKey(sweep[i]).c_str(), serial[i].ipc,
                         parallel[i].ipc);
            ++mismatches;
        }
    }
    if (mismatches) {
        std::fprintf(stderr, "%zu mismatching runs\n", mismatches);
        return 1;
    }

    std::vector<const sim::SweepResult *> failed;
    for (const auto &r : parallel)
        if (!r.outcome.ok())
            failed.push_back(&r);

    double speedup = t_parallel > 0 ? t_serial / t_parallel : 0.0;
    double efficiency =
        speedup / double(std::min<unsigned>(par_jobs, hw));
    uint64_t total_cycles = 0;
    for (const auto &r : parallel)
        total_cycles += r.cycles;

    std::printf("serial %.2f s, parallel %.2f s at %u workers: "
                "speedup %.2fx (%.0f%% of linear up to %u cores)\n",
                t_serial, t_parallel, par_jobs, speedup,
                100.0 * efficiency, std::min(par_jobs, hw));

    {
        std::ofstream os(out);
        if (!os) {
            std::cerr << "cannot write " << out << "\n";
            return 1;
        }
        stats::json::JsonWriter jw(os);
        jw.beginObject()
            .kv("schema", "hpa.bench-sweep.v3")
            .kv("insts_per_run", insts)
            .kv("trace_cache", trace_cache)
            .kv("batch",
                uint64_t(sim::SweepRunner::resolveBatch(batch)))
            .kv("batches_formed",
                uint64_t(parallel_runner.batchesFormed()))
            .kv("lanes_max", uint64_t(parallel_runner.lanesMax()))
            .kv("hardware_threads", hw)
            .kv("requested_jobs", uint64_t(requested_jobs))
            .kv("jobs_clamped", jobs_clamped)
            .kv("parallel_jobs", par_jobs)
            .kv("serial_wall_seconds", t_serial, 3)
            .kv("parallel_wall_seconds", t_parallel, 3)
            .kv("speedup", speedup, 3)
            .kv("scaling_efficiency", efficiency, 3)
            .kv("total_simulated_cycles", total_cycles)
            .kv("aggregate_cycles_per_sec",
                t_parallel > 0 ? double(total_cycles) / t_parallel
                               : 0.0,
                0)
            .kv("ok_runs", uint64_t(parallel.size() - failed.size()))
            .kv("failed_runs", uint64_t(failed.size()))
            .key("runs")
            .beginArray();
        for (const auto &r : parallel) {
            jw.beginObject()
                .kv("machine", r.spec.machine.name)
                .kv("sched_policy",
                    core::schedPolicyFor(r.spec.machine.cfg.wakeup)
                        .name)
                .kv("rf_policy",
                    core::rfPolicyFor(r.spec.machine.cfg.regfile)
                        .name)
                .kv("workload", r.spec.workload)
                .kv("status", sim::statusName(r.outcome.status))
                .kv("valid", r.valid())
                .kv("steady_missing", r.outcome.steadyMissing)
                .kv("ipc", r.ipc, 6)
                .kv("committed", r.committed)
                .kv("cycles", r.cycles)
                .kv("wall_seconds", r.wallSeconds, 4)
                .kv("cycles_per_sec", r.cyclesPerSec(), 0);
            if (!r.outcome.ok()) {
                jw.kv("error_kind", kindName(r.outcome.errorKind))
                    .kv("error", r.outcome.error);
            }
            jw.endObject();
        }
        jw.endArray().endObject();
        std::printf("wrote %s\n", out.c_str());
    }

    if (!write_golden.empty()) {
        std::ofstream os(write_golden);
        if (!os) {
            std::cerr << "cannot write " << write_golden << "\n";
            return 1;
        }
        stats::json::JsonWriter jw(os);
        jw.beginObject()
            .kv("schema", "hpa.sweep-golden.v1")
            .kv("insts_per_run", insts);
        for (size_t i = 0; i < parallel.size(); ++i)
            if (parallel[i].outcome.ok())
                jw.kv(runKey(sweep[i]), parallel[i].ipc, 6);
        jw.endObject();
        std::printf("wrote %s\n", write_golden.c_str());
    }

    if (!check.empty()) {
        std::ifstream in(check);
        if (!in) {
            std::cerr << "cannot read " << check << "\n";
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        auto golden = parseGolden(text.str());

        auto budget = golden.find("insts_per_run");
        if (budget != golden.end()
            && uint64_t(budget->second) != insts) {
            std::fprintf(stderr,
                         "golden was recorded at %llu insts per run, "
                         "this sweep ran %llu — not comparable\n",
                         static_cast<unsigned long long>(
                             budget->second),
                         static_cast<unsigned long long>(insts));
            return 1;
        }

        size_t drift = 0, checked = 0;
        for (size_t i = 0; i < sweep.size(); ++i) {
            // Failed cells carry no IPC to compare; they are
            // reported (and fail the gate) via the failure list.
            if (!parallel[i].outcome.ok())
                continue;
            auto it = golden.find(runKey(sweep[i]));
            if (it == golden.end())
                continue;
            ++checked;
            // Golden stores 6 decimals; allow the rounding slack.
            if (std::fabs(parallel[i].ipc - it->second) > 5e-7) {
                std::fprintf(
                    stderr,
                    "IPC DRIFT machine=%s workload=%s "
                    "expected=%.6f got=%.6f\n",
                    sweep[i].machine.name.c_str(),
                    sweep[i].workload.c_str(), it->second,
                    parallel[i].ipc);
                ++drift;
            }
        }
        if (checked == 0) {
            std::fprintf(stderr, "golden %s matched no runs\n",
                         check.c_str());
            return 1;
        }
        if (drift) {
            std::fprintf(stderr,
                         "%zu of %zu runs drifted from golden\n",
                         drift, checked);
            return 1;
        }
        std::printf("golden check: %zu runs match %s\n", checked,
                    check.c_str());
    }

    if (!failed.empty()) {
        std::fprintf(stderr,
                     "\n%zu of %zu runs failed (artifact %s still "
                     "carries every surviving cell):\n",
                     failed.size(), parallel.size(), out.c_str());
        for (const auto *r : failed)
            std::fprintf(stderr, "  %s @ %s: %s\n",
                         r->spec.workload.c_str(),
                         r->spec.machine.name.c_str(),
                         r->outcome.error.c_str());
        return 1;
    }
    return 0;
}
