/**
 * @file
 * Host-throughput benchmark of the full reproduction sweep: run
 * every (paper machine x benchmark) pair once serially and once on
 * the thread pool, verify the two produce identical IPC (the sweep
 * engine's determinism contract), and emit BENCH_sweep.json
 * ("hpa.bench-sweep.v1") with per-run IPC, wall time and
 * simulated-cycles/sec plus the measured serial-to-parallel speedup.
 *
 *   hpa_bench_sweep [--insts N] [--jobs N] [--out FILE]
 *                   [--check GOLDEN] [--write-golden FILE]
 *
 * --check compares the sweep's IPC values against a golden JSON map
 * ("hpa.sweep-golden.v1", tools/golden_sweep_ipc.json in the repo)
 * and fails with a per-cell diff on any drift — the cheap regression
 * gate run by tools/run_full_sweep.sh.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "stats/json.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

/** Key of one run in the golden map. */
std::string
runKey(const sim::SweepJob &job)
{
    return job.machine.name + "|" + job.workload;
}

/** Strict decimal parse; exits with a clear message on garbage. */
uint64_t
parseU64(const std::string &opt, const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0') {
        std::cerr << opt << " needs a non-negative integer, got '"
                  << text << "'\n";
        std::exit(2);
    }
    return v;
}

/**
 * Minimal parser for the golden file: extracts every `"key": number`
 * pair (string-valued fields like "schema" are skipped naturally).
 * The golden format is flat, so no general JSON machinery is needed.
 */
std::map<std::string, double>
parseGolden(const std::string &text)
{
    std::map<std::string, double> kv;
    size_t pos = 0;
    while ((pos = text.find('"', pos)) != std::string::npos) {
        size_t end = text.find('"', pos + 1);
        if (end == std::string::npos)
            break;
        std::string key = text.substr(pos + 1, end - pos - 1);
        size_t colon = text.find(':', end);
        if (colon == std::string::npos)
            break;
        size_t vstart = text.find_first_not_of(" \t\n", colon + 1);
        if (vstart == std::string::npos)
            break;
        char *vend = nullptr;
        double v = std::strtod(text.c_str() + vstart, &vend);
        if (vend != text.c_str() + vstart)
            kv[key] = v;
        pos = end + 1;
    }
    return kv;
}

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t insts = 50000;
    unsigned jobs = 0;
    std::string out = "BENCH_sweep.json";
    std::string check;
    std::string write_golden;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << argv[i] << " needs a value\n";
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--insts")
            insts = parseU64(a, need(i));
        else if (a == "--jobs")
            jobs = unsigned(parseU64(a, need(i)));
        else if (a == "--out")
            out = need(i);
        else if (a == "--check")
            check = need(i);
        else if (a == "--write-golden")
            write_golden = need(i);
        else {
            std::cerr << "unknown option: " << a << "\n"
                      << "usage: hpa_bench_sweep [--insts N] "
                         "[--jobs N] [--out FILE] [--check GOLDEN] "
                         "[--write-golden FILE]\n";
            return 2;
        }
    }

    auto machines = sim::reproductionMachines();
    auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> sweep;
    for (const auto &m : machines) {
        for (const auto &n : names) {
            sim::SweepJob j;
            j.workload = n;
            j.machine = m;
            j.max_insts = insts;
            j.validate();
            sweep.push_back(j);
        }
    }

    unsigned hw = sim::SweepRunner::resolveJobs(0);
    unsigned par_jobs = sim::SweepRunner::resolveJobs(jobs);
    std::printf("%zu runs (%zu machines x %zu benchmarks), "
                "%llu insts per run, %u hardware thread(s)\n",
                sweep.size(), machines.size(), names.size(),
                static_cast<unsigned long long>(insts), hw);

    // Pre-build every workload so neither timed pass pays assembly.
    for (const auto &n : names)
        workloads::globalCache().get(n);

    std::printf("serial pass (1 worker)...\n");
    std::vector<sim::SweepResult> serial;
    double t_serial = wallSeconds(
        [&] { serial = sim::SweepRunner(1).run(sweep); });

    std::printf("parallel pass (%u workers)...\n", par_jobs);
    std::vector<sim::SweepResult> parallel;
    double t_parallel = wallSeconds(
        [&] { parallel = sim::SweepRunner(par_jobs).run(sweep); });

    // Determinism contract: parallel results bit-identical to serial.
    size_t mismatches = 0;
    for (size_t i = 0; i < sweep.size(); ++i) {
        if (serial[i].ipc != parallel[i].ipc
            || serial[i].cycles != parallel[i].cycles
            || serial[i].committed != parallel[i].committed) {
            std::fprintf(stderr,
                         "DETERMINISM MISMATCH %s: serial IPC %.9f "
                         "parallel IPC %.9f\n",
                         runKey(sweep[i]).c_str(), serial[i].ipc,
                         parallel[i].ipc);
            ++mismatches;
        }
    }
    if (mismatches) {
        std::fprintf(stderr, "%zu mismatching runs\n", mismatches);
        return 1;
    }

    double speedup = t_parallel > 0 ? t_serial / t_parallel : 0.0;
    double efficiency =
        speedup / double(std::min<unsigned>(par_jobs, hw));
    uint64_t total_cycles = 0;
    for (const auto &r : parallel)
        total_cycles += r.cycles;

    std::printf("serial %.2f s, parallel %.2f s at %u workers: "
                "speedup %.2fx (%.0f%% of linear up to %u cores)\n",
                t_serial, t_parallel, par_jobs, speedup,
                100.0 * efficiency, std::min(par_jobs, hw));

    {
        std::ofstream os(out);
        if (!os) {
            std::cerr << "cannot write " << out << "\n";
            return 1;
        }
        stats::json::JsonWriter jw(os);
        jw.beginObject()
            .kv("schema", "hpa.bench-sweep.v1")
            .kv("insts_per_run", insts)
            .kv("hardware_threads", hw)
            .kv("parallel_jobs", par_jobs)
            .kv("serial_wall_seconds", t_serial, 3)
            .kv("parallel_wall_seconds", t_parallel, 3)
            .kv("speedup", speedup, 3)
            .kv("scaling_efficiency", efficiency, 3)
            .kv("total_simulated_cycles", total_cycles)
            .kv("aggregate_cycles_per_sec",
                t_parallel > 0 ? double(total_cycles) / t_parallel
                               : 0.0,
                0)
            .key("runs")
            .beginArray();
        for (const auto &r : parallel) {
            jw.beginObject()
                .kv("machine", r.spec.machine.name)
                .kv("workload", r.spec.workload)
                .kv("ipc", r.ipc, 6)
                .kv("committed", r.committed)
                .kv("cycles", r.cycles)
                .kv("wall_seconds", r.wallSeconds, 4)
                .kv("cycles_per_sec", r.cyclesPerSec(), 0)
                .endObject();
        }
        jw.endArray().endObject();
        std::printf("wrote %s\n", out.c_str());
    }

    if (!write_golden.empty()) {
        std::ofstream os(write_golden);
        if (!os) {
            std::cerr << "cannot write " << write_golden << "\n";
            return 1;
        }
        stats::json::JsonWriter jw(os);
        jw.beginObject()
            .kv("schema", "hpa.sweep-golden.v1")
            .kv("insts_per_run", insts);
        for (size_t i = 0; i < parallel.size(); ++i)
            jw.kv(runKey(sweep[i]), parallel[i].ipc, 6);
        jw.endObject();
        std::printf("wrote %s\n", write_golden.c_str());
    }

    if (!check.empty()) {
        std::ifstream in(check);
        if (!in) {
            std::cerr << "cannot read " << check << "\n";
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        auto golden = parseGolden(text.str());

        auto budget = golden.find("insts_per_run");
        if (budget != golden.end()
            && uint64_t(budget->second) != insts) {
            std::fprintf(stderr,
                         "golden was recorded at %llu insts per run, "
                         "this sweep ran %llu — not comparable\n",
                         static_cast<unsigned long long>(
                             budget->second),
                         static_cast<unsigned long long>(insts));
            return 1;
        }

        size_t drift = 0, checked = 0;
        for (size_t i = 0; i < sweep.size(); ++i) {
            auto it = golden.find(runKey(sweep[i]));
            if (it == golden.end())
                continue;
            ++checked;
            // Golden stores 6 decimals; allow the rounding slack.
            if (std::fabs(parallel[i].ipc - it->second) > 5e-7) {
                std::fprintf(
                    stderr,
                    "IPC DRIFT machine=%s workload=%s "
                    "expected=%.6f got=%.6f\n",
                    sweep[i].machine.name.c_str(),
                    sweep[i].workload.c_str(), it->second,
                    parallel[i].ipc);
                ++drift;
            }
        }
        if (checked == 0) {
            std::fprintf(stderr, "golden %s matched no runs\n",
                         check.c_str());
            return 1;
        }
        if (drift) {
            std::fprintf(stderr,
                         "%zu of %zu runs drifted from golden\n",
                         drift, checked);
            return 1;
        }
        std::printf("golden check: %zu runs match %s\n", checked,
                    check.c_str());
    }
    return 0;
}
