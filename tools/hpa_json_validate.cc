/**
 * @file
 * Schema gate for the simulator's machine-readable artifacts:
 * check that a document is well-formed JSON (RFC 8259) and, when
 * --schema is given, that its "schema" field carries the expected
 * version tag — and, for the schemas this repo emits, that every
 * required field is present (so a truncated or hand-edited artifact
 * cannot slip through on the version tag alone). Reads a file,
 * stdin ("-"), or the stdout of a child command (--exec) so ctest
 * can gate an emitter without a shell pipeline:
 *
 *   hpa_json_validate --schema hpa.stats.v1 stats.json
 *   hpa_json_validate --schema hpa.stats.v1 \
 *       --exec "hpa_sim --bench gzip --insts 20000 --stats-json -"
 *
 * Exit codes: 0 valid, 1 invalid or unreadable, 2 usage error.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "stats/json.hh"

namespace
{

/**
 * Required keys per known schema tag. Presence-only (the document
 * already passed the full syntax validator); unknown tags get the
 * version check alone.
 */
const std::map<std::string, std::vector<std::string>> &
requiredFields()
{
    static const std::map<std::string, std::vector<std::string>> req =
        {
            {"hpa.stats.v1",
             {"counters", "distributions", "formulas"}},
            {"hpa.lint.v1",
             {"files_scanned", "rules", "findings", "suppressed",
              "ok"}},
            {"hpa.prove.v1",
             {"mode", "roots", "properties", "stale_allows",
              "ok"}},
            {"hpa.run.v2",
             {"workload", "machine", "status", "valid",
              "steady_missing", "attempts", "ipc", "committed",
              "cycles"}},
            {"hpa.bench-sweep.v2",
             {"insts_per_run", "batch", "batches_formed",
              "lanes_max", "ok_runs", "failed_runs", "runs",
              "status", "valid"}},
            // v3 adds the per-run registry policy names.
            {"hpa.bench-sweep.v3",
             {"insts_per_run", "batch", "batches_formed",
              "lanes_max", "ok_runs", "failed_runs", "runs",
              "status", "valid", "sched_policy", "rf_policy"}},
            {"hpa.sweep-golden.v1", {"insts_per_run"}},
            {"hpa.sweep-journal.v1",
             {"spec_key", "workload", "machine", "status",
              "attempts", "backoff_ms", "ipc", "committed",
              "cycles", "worker"}},
            {"hpa.micro-throughput.v1",
             {"insts_per_run", "total_simulated_cycles",
              "aggregate_cycles_per_sec", "runs"}},
            {"hpa.micro-throughput.v2",
             {"insts_per_run", "batch", "total_simulated_cycles",
              "aggregate_cycles_per_sec", "lane_cycles_per_sec",
              "runs"}},
        };
    return req;
}

/** Check every required key for @p schema appears as a JSON key. */
bool
checkRequired(const std::string &schema, const std::string &text,
              std::string &missing)
{
    auto it = requiredFields().find(schema);
    if (it == requiredFields().end())
        return true;
    for (const auto &key : it->second) {
        if (text.find("\"" + key + "\"") == std::string::npos) {
            missing = key;
            return false;
        }
    }
    return true;
}

void
usage(std::ostream &os)
{
    os << "usage: hpa_json_validate [--schema TAG] FILE|-\n"
          "       hpa_json_validate [--schema TAG] --exec \"CMD\"\n";
}

/** Capture a child command's stdout; false on spawn/exit failure. */
bool
captureExec(const std::string &cmd, std::string &out)
{
    FILE *p = popen(cmd.c_str(), "r");
    if (!p) {
        std::cerr << "cannot run: " << cmd << "\n";
        return false;
    }
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, p)) > 0)
        out.append(buf, n);
    int status = pclose(p);
    if (status != 0) {
        std::cerr << "command failed (status " << status
                  << "): " << cmd << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string schema, exec_cmd, file;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(std::cout);
            return 0;
        } else if (a == "--schema") {
            if (++i >= argc) {
                std::cerr << "--schema needs a value\n";
                return 2;
            }
            schema = argv[i];
        } else if (a == "--exec") {
            if (++i >= argc) {
                std::cerr << "--exec needs a command\n";
                return 2;
            }
            exec_cmd = argv[i];
        } else if (a.size() > 1 && a[0] == '-' && a != "-") {
            std::cerr << "unknown option: " << a << "\n";
            usage(std::cerr);
            return 2;
        } else if (file.empty()) {
            file = a;
        } else {
            std::cerr << "more than one input\n";
            return 2;
        }
    }
    if (exec_cmd.empty() == file.empty()) {
        std::cerr << "exactly one of FILE or --exec is required\n";
        usage(std::cerr);
        return 2;
    }

    std::string text;
    if (!exec_cmd.empty()) {
        if (!captureExec(exec_cmd, text))
            return 1;
    } else if (file == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
    } else {
        FILE *f = fopen(file.c_str(), "rb");
        if (!f) {
            std::cerr << "cannot open " << file << "\n";
            return 1;
        }
        char buf[4096];
        size_t n;
        while ((n = fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        fclose(f);
    }

    std::string err;
    if (!hpa::stats::json::validate(text, &err)) {
        std::cerr << "invalid JSON: " << err << "\n";
        return 1;
    }
    if (!schema.empty()) {
        std::string got =
            hpa::stats::json::findStringField(text, "schema");
        if (got != schema) {
            std::cerr << "schema mismatch: expected \"" << schema
                      << "\", document has \""
                      << (got.empty() ? "<none>" : got) << "\"\n";
            return 1;
        }
        std::string missing;
        if (!checkRequired(schema, text, missing)) {
            std::cerr << "schema " << schema
                      << ": required field \"" << missing
                      << "\" is missing\n";
            return 1;
        }
    }
    std::cout << "OK: " << text.size() << " bytes of valid JSON";
    if (!schema.empty())
        std::cout << ", schema " << schema;
    std::cout << "\n";
    return 0;
}
