#!/usr/bin/env python3
"""hpa-lint: project-specific static analysis for the HPA simulator.

Machine-checks the invariants this repo earned in PRs 1-4 but until
now enforced only by convention and review:

  HPA001 sim-error-throw   every `throw` in library/tool code must
                           construct a class from the SimError
                           taxonomy (src/sim/error.hh), so the sweep
                           engine and CLI always get a typed kind.
  HPA002 hot-path-alloc    no per-operation heap-allocating container
                           types (std::map and friends) and no naked
                           `new` in the Core::tick call-graph files.
                           Amortised std::vector growth is checked
                           dynamically by tests/test_hotpath_alloc.cc;
                           the two checks cross-validate each other.
  HPA003 schema-registry   every "hpa.*.vN" schema literal in the
                           source must be registered in
                           tools/hpa_json_validate.cc and documented
                           in a markdown file.
  HPA004 banned-include    per-directory include bans: no <iostream>
                           in src/ (library code reports through
                           ostream&/errors, never global streams); no
                           threading headers outside the sweep engine
                           and workload cache; no <regex> anywhere.
  HPA005 stats-registry    every stats::Counter / stats::Distribution
                           member declared in a src/ header must be
                           registered with a Registry (reg.add(&x))
                           somewhere in src/, or it silently vanishes
                           from every report, JSON and CSV artifact.
  HPA006 policy-docs       every policy key registered in
                           src/core/policy_registry.cc must be
                           documented in EXPERIMENTS.md, so the
                           sweepable policy zoo and its guide can
                           never drift apart.
  HPA007 determinism       simulated behavior must be a pure
                           function of config + workload: no
                           wall-clock (<chrono>, time(), clock()),
                           no randomness sources (rand, random_device)
                           anywhere in src/, and no iteration over
                           std::unordered_* containers in the
                           deterministic sim core (src/core,
                           src/func) — hash-order iteration makes
                           output depend on pointer values. The
                           sweep engine's timing/backoff uses are
                           suppressed with reasons.
  HPA000 suppression       hpa-nolint hygiene: a suppression must
                           name known rules, carry a reason, and
                           actually suppress something. Also checks
                           `hpa-prove-allow(P*): reason` comments
                           (tools/analyze/hpa_prove.py suppressions):
                           known property ids P1-P4, reason present.
                           Staleness of prove-allows is reported by
                           hpa_prove itself (stale_allows), which is
                           the only tool that knows what matched.

Suppressions: append `// hpa-nolint(RULE): reason` to the offending
line, or put it alone on the line directly above. Multiple rules:
`hpa-nolint(HPA002,HPA004): reason`. The reason is mandatory.

Output: human-readable findings (default) or a machine-readable
hpa.lint.v1 JSON document (--json FILE, '-' = stdout), validated in
ctest by hpa_json_validate. Exit 0 = clean, 1 = findings, 2 = usage.

`--changed-only` filters the REPORT to files touched per git (working
tree + index + untracked) for fast pre-commit runs; the scan itself
still covers the whole tree because the cross-file rules (HPA003,
HPA005, HPA006) need global context, so the filtered findings are
exactly the full scan's findings on those files.

Standard library only, by design: the linter must run anywhere the
repo builds, including minimal CI containers.
"""

import argparse
import json
import os
import re
import sys

LINT_SCHEMA = "hpa.lint.v1"

# Directories scanned relative to --root, and the extensions lint
# cares about. build trees and third-party checkouts are never
# walked.
SCAN_DIRS = ("src", "tools", "bench", "examples", "tests")
EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp")

# --- HPA001 -----------------------------------------------------------
# The SimError taxonomy (src/sim/error.hh + module-local subclasses).
# A new error type must be added here *and* derive from SimError; the
# self-test keeps the list honest.
SIM_ERROR_TYPES = {
    "ConfigError",
    "WorkloadError",
    "InvariantViolation",
    "Deadlock",
    "Timeout",
    "AsmError",
    "EmulationError",
}
# Tests may throw anything: they exercise catch paths and std-base
# compatibility on purpose.
THROW_SCOPE = ("src", "tools", "bench", "examples")

# --- HPA002 -----------------------------------------------------------
# The Core::tick call graph: everything reachable from a tick,
# per-cycle. A file added to the core/mem/bpred layers that tick
# touches belongs in this list.
HOT_PATH_FILES = {
    "src/core/core.cc",
    "src/core/core.hh",
    "src/core/dyn_inst.hh",
    "src/core/issue_window.hh",
    "src/core/sched_policy.hh",
    "src/core/rf_policy.hh",
    "src/core/event_queue.hh",
    "src/core/containers.hh",
    "src/core/fu_pool.cc",
    "src/core/fu_pool.hh",
    "src/core/inst_source.cc",
    "src/core/inst_source.hh",
    "src/core/last_arrival.cc",
    "src/core/last_arrival.hh",
    "src/core/core_lane.hh",
    "src/sim/batched_simulation.cc",
    "src/sim/batched_simulation.hh",
    "src/mem/cache.cc",
    "src/mem/cache.hh",
    "src/mem/hierarchy.cc",
    "src/mem/hierarchy.hh",
    "src/bpred/bpred.cc",
    "src/bpred/bpred.hh",
}
NODE_CONTAINER_RE = re.compile(
    r"std::(?:multi)?(?:map|set)\s*<"
    r"|std::unordered_(?:map|set|multimap|multiset)\s*<"
    r"|std::list\s*<"
    r"|std::deque\s*<"
)
NODE_CONTAINER_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:map|set|list|deque|unordered_map|"
    r"unordered_set)>"
)
NAKED_NEW_RE = re.compile(r"\bnew\b(?!\s*\()")

# --- HPA003 -----------------------------------------------------------
SCHEMA_LITERAL_RE = re.compile(r'"(hpa\.[a-z0-9_-]+(?:\.[a-z0-9_-]+)*\.v[0-9]+)"')
VALIDATOR_SOURCE = "tools/hpa_json_validate.cc"
DOC_GLOBS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "docs")

# --- HPA004 -----------------------------------------------------------
# (ban regex, directories it applies to, directories exempted,
#  rationale shown in the finding)
THREAD_HEADERS = r"<(?:thread|mutex|atomic|condition_variable|future)>"
INCLUDE_BANS = [
    (
        re.compile(r"#\s*include\s*<iostream>"),
        ("src/",),
        (),
        "library code must not pull in global streams; take an "
        "std::ostream& or raise a SimError instead",
    ),
    (
        re.compile(r"#\s*include\s*" + THREAD_HEADERS),
        ("src/",),
        ("src/sim/", "src/workloads/", "src/func/"),
        "concurrency is confined to the sweep engine, the build-once "
        "workload cache and the once_flag trace cache",
    ),
    (
        re.compile(r"#\s*include\s*<regex>"),
        ("src/", "tools/", "bench/", "examples/", "tests/"),
        (),
        "<regex> is a compile-time and runtime heavyweight; use "
        "hand-rolled parsing",
    ),
]

# --- HPA005 -----------------------------------------------------------
STAT_MEMBER_RE = re.compile(
    r"stats::(?:Counter|Distribution)\s+([A-Za-z_]\w*)\s*[;{]"
)
STAT_REGISTER_RE = re.compile(r"\badd\(\s*&(?:\w+\.)*([A-Za-z_]\w*)\s*\)")

# --- HPA006 -----------------------------------------------------------
# Registration tables keep one entry per line, key first (the
# registry source says so); this regex is that convention.
POLICY_REGISTRY_SOURCE = "src/core/policy_registry.cc"
POLICY_ENTRY_RE = re.compile(r'^\s*\{"([a-z0-9-]+)",')
POLICY_DOC = "EXPERIMENTS.md"

# --- HPA007 -----------------------------------------------------------
# The deterministic sim core: simulated state may depend only on
# config + workload. Wall-clock and randomness are banned across
# src/ (the sweep/shard engines' timing and backoff uses carry
# hpa-nolint(HPA007) suppressions with reasons); hash-order
# iteration is banned in the layers that produce simulated output.
DETERMINISM_SCOPE = ("src/",)
DETERMINISM_ITER_SCOPE = ("src/core/", "src/func/")
WALLCLOCK_RE = re.compile(
    r"#\s*include\s*<chrono>"
    r"|std::chrono\b"
    r"|\b(?:time|clock|gettimeofday|clock_gettime)\s*\("
    r"|\b(?:rand|srand|rand_r|drand48|random)\s*\("
    r"|\brandom_device\b"
)
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+"
    r"([A-Za-z_]\w*)\s*[;{=(]"
)

# --- hpa-prove-allow hygiene (reported as HPA000) ---------------------
PROVE_ALLOW_RE = re.compile(
    r"//\s*hpa-prove-allow\(([^)]*)\)\s*(?::\s*(.*\S))?\s*$"
)
PROVE_PROPERTIES = {"P1", "P2", "P3", "P4"}

RULES = {
    "HPA000": "hpa-nolint/hpa-prove-allow suppressions must name "
              "known rules/properties, carry a reason, and (for "
              "hpa-nolint) suppress at least one finding",
    "HPA001": "throw must construct a SimError-taxonomy class",
    "HPA002": "no node-based heap containers or naked new in the "
              "Core::tick call graph",
    "HPA003": "hpa.*.vN schema literals must be registered in "
              "hpa_json_validate.cc and documented in markdown",
    "HPA004": "per-directory banned includes",
    "HPA005": "stats members must be registered with a Registry",
    "HPA006": "policy keys registered in policy_registry.cc must be "
              "documented in EXPERIMENTS.md",
    "HPA007": "no wall-clock/randomness in src/ and no hash-order "
              "iteration in the deterministic sim core (src/core, "
              "src/func)",
}

NOLINT_RE = re.compile(
    r"//\s*hpa-nolint\(([^)]*)\)\s*(?::\s*(.*\S))?\s*$"
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def sort_key(self):
        return (self.path, self.line, self.rule)


class Suppression:
    """One hpa-nolint comment: where it sits and what it covers."""

    def __init__(self, path, line, rules, reason, target_line):
        self.path = path
        self.line = line          # line the comment is written on
        self.rules = rules
        self.reason = reason
        self.target_line = target_line  # line whose findings it hides
        self.used = False


def strip_cpp(text):
    """Replace comments and string/char literal bodies with spaces,
    preserving line structure, so rule regexes never match inside
    either. Handles //, /* */, "...", '...' and R"delim(...)delim"."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^(\s"\\]{0,16})\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n - len(close) if j == -1 else j
            seg = text[i:j + len(close)]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + len(close)
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, root, relpath):
        self.relpath = relpath
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.splitlines()
        self.lines = strip_cpp(self.raw).splitlines()
        self.suppressions = self._collect_suppressions()

    def _collect_suppressions(self):
        sups = []
        for idx, line in enumerate(self.raw_lines, start=1):
            m = NOLINT_RE.search(line)
            if not m:
                continue
            rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
            reason = m.group(2) or ""
            # A comment alone on its line shields the next line;
            # otherwise it shields its own.
            alone = line[:m.start()].strip() == ""
            target = idx + 1 if alone else idx
            sups.append(Suppression(self.relpath, idx, rules, reason,
                                    target))
        return sups


class LintRun:
    def __init__(self, root):
        self.root = root
        self.files = []
        self.findings = []
        self.suppressed = 0

    def scan(self):
        for d in SCAN_DIRS:
            top = os.path.join(self.root, d)
            if not os.path.isdir(top):
                continue
            for dirpath, dirnames, filenames in os.walk(top):
                dirnames[:] = sorted(
                    n for n in dirnames if not n.startswith(("build", ".")))
                for name in sorted(filenames):
                    if name.endswith(EXTENSIONS):
                        rel = os.path.relpath(
                            os.path.join(dirpath, name), self.root)
                        self.files.append(
                            SourceFile(self.root, rel.replace(os.sep, "/")))

    def report(self, path, line, rule, message):
        self.findings.append(Finding(path, line, rule, message))

    # --- rules --------------------------------------------------------

    def check_throws(self, f):
        if not f.relpath.startswith(THROW_SCOPE):
            return
        for idx, line in enumerate(f.lines, start=1):
            for m in re.finditer(r"\bthrow\b\s*([A-Za-z_:]\w*(?:::\w+)*)?",
                                 line):
                target = m.group(1)
                if target is None:
                    # bare rethrow `throw;` (or a wrapped expression
                    # continuing on the next line — resolve it there)
                    rest = line[m.end():].lstrip()
                    if rest.startswith(";") or rest == "":
                        continue
                name = (target or "").split("::")[-1]
                if name in SIM_ERROR_TYPES:
                    continue
                self.report(
                    f.relpath, idx, "HPA001",
                    "throw constructs '%s', which is not part of the "
                    "SimError taxonomy (src/sim/error.hh)"
                    % (target or "<expression>"))

    def check_hot_path(self, f):
        if f.relpath not in HOT_PATH_FILES:
            return
        for idx, line in enumerate(f.lines, start=1):
            if NODE_CONTAINER_RE.search(line):
                self.report(
                    f.relpath, idx, "HPA002",
                    "node-based container in the Core::tick call "
                    "graph allocates per insert")
            elif NODE_CONTAINER_INCLUDE_RE.search(line):
                self.report(
                    f.relpath, idx, "HPA002",
                    "node-based container header included in a "
                    "Core::tick call-graph file")
            if NAKED_NEW_RE.search(line):
                self.report(
                    f.relpath, idx, "HPA002",
                    "naked new in the Core::tick call graph")

    def check_schemas(self):
        validator = ""
        vpath = os.path.join(self.root, VALIDATOR_SOURCE)
        if os.path.exists(vpath):
            with open(vpath, encoding="utf-8") as fh:
                validator = fh.read()
        docs = []
        for g in DOC_GLOBS:
            p = os.path.join(self.root, g)
            if os.path.isfile(p):
                docs.append(p)
            elif os.path.isdir(p):
                for dirpath, _, filenames in os.walk(p):
                    docs.extend(os.path.join(dirpath, n)
                                for n in filenames if n.endswith(".md"))
        doc_text = ""
        for p in docs:
            with open(p, encoding="utf-8") as fh:
                doc_text += fh.read()
        for f in self.files:
            for idx, line in enumerate(f.raw_lines, start=1):
                for m in SCHEMA_LITERAL_RE.finditer(line):
                    tag = m.group(1)
                    if tag not in validator:
                        self.report(
                            f.relpath, idx, "HPA003",
                            "schema '%s' is not registered in %s"
                            % (tag, VALIDATOR_SOURCE))
                    if tag not in doc_text:
                        self.report(
                            f.relpath, idx, "HPA003",
                            "schema '%s' is not mentioned in any "
                            "markdown doc" % tag)

    def check_includes(self, f):
        for idx, line in enumerate(f.lines, start=1):
            for ban, dirs, exempt, why in INCLUDE_BANS:
                if not f.relpath.startswith(dirs):
                    continue
                if f.relpath.startswith(exempt):
                    continue
                m = ban.search(line)
                if m:
                    self.report(
                        f.relpath, idx, "HPA004",
                        "banned include %s: %s" % (m.group(0), why))

    def check_determinism(self, f):
        if not f.relpath.startswith(DETERMINISM_SCOPE):
            return
        # Consecutive matching lines coalesce into one finding (a
        # multi-line chrono statement needs one suppression, not
        # four); the suppression goes on the first line of the run.
        last = -2
        for idx, line in enumerate(f.lines, start=1):
            if WALLCLOCK_RE.search(line):
                if idx != last + 1:
                    self.report(
                        f.relpath, idx, "HPA007",
                        "wall-clock/randomness source in src/; "
                        "simulated behavior must be a pure function "
                        "of config + workload")
                last = idx
        if not f.relpath.startswith(DETERMINISM_ITER_SCOPE):
            return
        names = set(UNORDERED_DECL_RE.findall(
            re.sub(r"\s+", " ", "\n".join(f.lines))))
        if not names:
            return
        iter_res = [
            (name,
             re.compile(r"for\s*\([^;)]*:\s*(?:this->)?%s\s*\)"
                        % re.escape(name)),
             re.compile(r"\b%s\s*\.\s*(?:c?begin|c?end)\s*\("
                        % re.escape(name)))
            for name in names
        ]
        for idx, line in enumerate(f.lines, start=1):
            for name, range_re, begin_re in iter_res:
                if range_re.search(line) or begin_re.search(line):
                    self.report(
                        f.relpath, idx, "HPA007",
                        "iteration over std::unordered_* '%s' is "
                        "hash-order-dependent; snapshot into a "
                        "sorted sequence or use an ordered "
                        "container" % name)

    def check_prove_allows(self, f):
        # Hygiene only: hpa_prove reports stale allows itself (it is
        # the only tool that knows which edges matched).
        for idx, line in enumerate(f.raw_lines, start=1):
            m = PROVE_ALLOW_RE.search(line)
            if not m:
                continue
            props = [p.strip() for p in m.group(1).split(",")
                     if p.strip()]
            unknown = [p for p in props if p not in PROVE_PROPERTIES]
            if unknown or not props:
                self.report(
                    f.relpath, idx, "HPA000",
                    "hpa-prove-allow names unknown propert%s: %s "
                    "(known: %s)"
                    % ("y" if len(unknown) <= 1 else "ies",
                       ", ".join(unknown) or "<none>",
                       ", ".join(sorted(PROVE_PROPERTIES))))
            elif not (m.group(2) or ""):
                self.report(
                    f.relpath, idx, "HPA000",
                    "hpa-prove-allow has no reason; write "
                    "hpa-prove-allow(P*): why this edge is exempt")

    def check_policy_docs(self):
        # Silent when the registry source is not part of the scanned
        # tree (e.g. the self-test's synthetic temp repos).
        reg = next((f for f in self.files
                    if f.relpath == POLICY_REGISTRY_SOURCE), None)
        if reg is None:
            return
        doc_path = os.path.join(self.root, POLICY_DOC)
        doc_text = ""
        if os.path.exists(doc_path):
            with open(doc_path, encoding="utf-8") as fh:
                doc_text = fh.read()
        for idx, line in enumerate(reg.raw_lines, start=1):
            m = POLICY_ENTRY_RE.match(line)
            if m and m.group(1) not in doc_text:
                self.report(
                    reg.relpath, idx, "HPA006",
                    "registered policy '%s' is not documented in %s"
                    % (m.group(1), POLICY_DOC))

    def check_stats_registry(self):
        registered = set()
        for f in self.files:
            if f.relpath.startswith("src/") and f.relpath.endswith(".cc"):
                for m in STAT_REGISTER_RE.finditer(f.raw):
                    registered.add(m.group(1))
        for f in self.files:
            if not (f.relpath.startswith("src/")
                    and f.relpath.endswith(".hh")):
                continue
            if f.relpath == "src/stats/stats.hh":
                continue  # the framework itself, not a stat owner
            for idx, line in enumerate(f.lines, start=1):
                m = STAT_MEMBER_RE.search(line)
                if m and m.group(1) not in registered:
                    self.report(
                        f.relpath, idx, "HPA005",
                        "stat member '%s' is never registered "
                        "(reg.add(&%s)); it will be missing from "
                        "every report and artifact"
                        % (m.group(1), m.group(1)))

    # --- suppression handling ----------------------------------------

    def apply_suppressions(self):
        kept = []
        for fnd in self.findings:
            hidden = False
            for f in self.files:
                if f.relpath != fnd.path:
                    continue
                for sup in f.suppressions:
                    if (fnd.rule in sup.rules
                            and sup.target_line == fnd.line
                            and sup.reason):
                        sup.used = True
                        hidden = True
            if hidden:
                self.suppressed += 1
            else:
                kept.append(fnd)
        self.findings = kept
        # HPA000: malformed or unused suppressions are findings (a
        # stale nolint hides nothing but lies to the reader).
        for f in self.files:
            for sup in f.suppressions:
                unknown = [r for r in sup.rules if r not in RULES]
                if unknown:
                    self.report(
                        f.relpath, sup.line, "HPA000",
                        "suppression names unknown rule(s): %s"
                        % ", ".join(unknown))
                    continue
                if not sup.reason:
                    self.report(
                        f.relpath, sup.line, "HPA000",
                        "suppression has no reason; write "
                        "hpa-nolint(RULE): why this is exempt")
                    continue
                if not sup.used:
                    self.report(
                        f.relpath, sup.line, "HPA000",
                        "suppression of %s matches no finding; "
                        "delete the stale hpa-nolint"
                        % ",".join(sup.rules))

    # --- driver -------------------------------------------------------

    def run(self):
        self.scan()
        for f in self.files:
            self.check_throws(f)
            self.check_hot_path(f)
            self.check_includes(f)
            self.check_determinism(f)
            self.check_prove_allows(f)
        self.check_schemas()
        self.check_stats_registry()
        self.check_policy_docs()
        self.apply_suppressions()
        self.findings.sort(key=Finding.sort_key)
        return self.findings


def changed_files(root):
    """Files touched per git: working tree + index + untracked.
    Returns None when git is unavailable or root is not a repo."""
    import subprocess
    changed = set()
    for cmd in (["git", "-C", root, "diff", "--name-only", "HEAD"],
                ["git", "-C", root, "ls-files", "--others",
                 "--exclude-standard"]):
        try:
            r = subprocess.run(cmd, capture_output=True, text=True,
                               timeout=60)
        except (OSError, subprocess.SubprocessError):
            return None
        if r.returncode != 0:
            return None
        changed.update(l.strip() for l in r.stdout.splitlines()
                       if l.strip())
    return changed


def to_json(run, changed_only=False):
    return {
        "schema": LINT_SCHEMA,
        "root": os.path.abspath(run.root),
        "changed_only": changed_only,
        "files_scanned": len(run.files),
        "rules": [{"id": rid, "description": desc}
                  for rid, desc in sorted(RULES.items())],
        "findings": [
            {"file": f.path, "line": f.line, "rule": f.rule,
             "message": f.message}
            for f in run.findings
        ],
        "suppressed": run.suppressed,
        "ok": not run.findings,
    }


# --- self test --------------------------------------------------------

SELF_TEST_CASES = [
    # (description, relpath, source, expected rule ids)
    ("std throw is flagged", "src/x/a.cc",
     'void f() { throw std::runtime_error("boom"); }\n', ["HPA001"]),
    ("SimError throw is clean", "src/x/a.cc",
     'void f() { throw ConfigError("bad"); }\n', []),
    ("qualified SimError throw is clean", "src/x/a.cc",
     'void f() { throw hpa::InvariantViolation("bad"); }\n', []),
    ("bare rethrow is clean", "src/x/a.cc",
     "void f() { try {} catch (...) { throw; } }\n", []),
    ("throw in a comment is ignored", "src/x/a.cc",
     "// don't throw std::logic_error here\n", []),
    ("throw in a test file is ignored", "tests/t.cc",
     'void f() { throw std::runtime_error("x"); }\n', ["HPA001-absent"]),
    ("map in hot path is flagged", "src/core/fu_pool.hh",
     "#include <map>\nstd::map<int, int> m;\n",
     ["HPA002", "HPA002"]),
    ("suppressed map with reason is clean", "src/core/fu_pool.hh",
     "std::map<int, int> m; // hpa-nolint(HPA002): init-only table\n",
     []),
    ("suppression without reason is flagged", "src/core/fu_pool.hh",
     "std::map<int, int> m; // hpa-nolint(HPA002)\n",
     ["HPA000", "HPA002"]),
    ("stale suppression is flagged", "src/core/fu_pool.hh",
     "int m; // hpa-nolint(HPA002): nothing here\n", ["HPA000"]),
    ("naked new in hot path is flagged", "src/core/core.cc",
     "int *p = new int[4];\n", ["HPA002"]),
    ("unregistered schema literal is flagged", "src/x/a.cc",
     'const char *S = "hpa.nosuch.v9";\n', ["HPA003", "HPA003"]),
    ("iostream in src is flagged", "src/x/a.cc",
     "#include <iostream>\n", ["HPA004"]),
    ("iostream in tools is clean", "tools/t.cc",
     "#include <iostream>\n", []),
    ("mutex in sweep engine is clean", "src/sim/sweep.cc",
     "#include <mutex>\n", []),
    ("mutex in core is flagged", "src/core/fu_pool.cc",
     "#include <mutex>\n", ["HPA004"]),
    ("unregistered stat member is flagged", "src/x/a.hh",
     'stats::Counter bogus{"x", "y"};\n', ["HPA005"]),
    ("undocumented policy key is flagged",
     "src/core/policy_registry.cc",
     '        {"zzz-policy", "/zzz", WakeupModel::Conventional,\n'
     '         "test entry"},\n', ["HPA006"]),
    ("documented policy key is clean",
     {"src/core/policy_registry.cc":
      '        {"zzz-policy", "/zzz", WakeupModel::Conventional,\n'
      '         "test entry"},\n',
      "EXPERIMENTS.md": "The `zzz-policy` scheduler.\n"},
     None, []),
    ("chrono in src is flagged", "src/x/a.cc",
     "#include <chrono>\n", ["HPA007"]),
    ("multi-line chrono statement coalesces to one finding",
     "src/x/a.cc",
     "auto a = std::chrono::steady_clock::now();\n"
     "auto b = std::chrono::steady_clock::now();\n", ["HPA007"]),
    ("rand in src is flagged", "src/x/a.cc",
     "int f() { return rand(); }\n", ["HPA007"]),
    ("chrono in tools is clean", "tools/t.cc",
     "#include <chrono>\n", []),
    ("identifier containing time is clean", "src/x/a.cc",
     "int arrival_time(int x) { return x; }\n"
     "int g() { return arrival_time(3); }\n", []),
    ("suppressed chrono with reason is clean", "src/sim/shard.cc",
     "#include <chrono> "
     "// hpa-nolint(HPA007): lease timing, not simulated state\n",
     []),
    ("unordered iteration in sim core is flagged", "src/func/m.hh",
     "std::unordered_map<int, int> pages;\n"
     "int f() { int s = 0;"
     " for (auto &kv : pages) s += kv.second; return s; }\n",
     ["HPA007"]),
    ("unordered lookup without iteration is clean", "src/func/m.hh",
     "std::unordered_map<int, int> pages;\n"
     "int f(int k) { return pages.count(k); }\n", []),
    ("unordered iteration outside the sim core is clean",
     "src/sim/j.hh",
     "std::unordered_map<int, int> jobs;\n"
     "int f() { int s = 0;"
     " for (auto &kv : jobs) s += kv.second; return s; }\n", []),
    ("prove-allow with unknown property is flagged", "src/x/a.cc",
     "int x; // hpa-prove-allow(P9): nope\n", ["HPA000"]),
    ("prove-allow without reason is flagged", "src/x/a.cc",
     "int x; // hpa-prove-allow(P1)\n", ["HPA000"]),
    ("well-formed prove-allow is clean", "src/x/a.cc",
     "int x; // hpa-prove-allow(P1): warm-up only, proven quiescent\n",
     []),
]


def self_test():
    import tempfile

    failures = []
    for desc, relpath, source, expected in SELF_TEST_CASES:
        with tempfile.TemporaryDirectory() as tmp:
            # A case is one (relpath, source) file, or a dict of
            # several when a rule spans files (HPA006's doc lookup).
            files = (relpath if isinstance(relpath, dict)
                     else {relpath: source})
            for rel, text in files.items():
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(text)
            run = LintRun(tmp)
            got = sorted(f.rule for f in run.run()
                         if f.rule != "HPA003" or "nosuch" in f.message)
            want = sorted(e for e in expected if not e.endswith("-absent"))
            if got != want:
                failures.append("%s: expected %s, got %s [%s]"
                                % (desc, want, got,
                                   "; ".join(f.message
                                             for f in run.findings)))
    # --changed-only equivalence: a filtered run reports exactly the
    # full scan's findings on the changed files (the scan itself is
    # never narrowed, so cross-file rules keep their context).
    import contextlib
    import io
    with tempfile.TemporaryDirectory() as tmp:
        files = {
            "src/x/a.cc":
                'void f() { throw std::runtime_error("a"); }\n',
            "src/x/b.cc":
                'void g() { throw std::runtime_error("b"); }\n'
                "#include <iostream>\n",
        }
        for rel, text in files.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        clist = os.path.join(tmp, "changed.txt")
        with open(clist, "w", encoding="utf-8") as fh:
            fh.write("src/x/b.cc\n")
        full_json = os.path.join(tmp, "full.json")
        part_json = os.path.join(tmp, "part.json")
        with contextlib.redirect_stdout(io.StringIO()):
            main(["--root", tmp, "--json", full_json])
            main(["--root", tmp, "--changed-list", clist,
                  "--json", part_json])
        with open(full_json, encoding="utf-8") as fh:
            full = json.load(fh)
        with open(part_json, encoding="utf-8") as fh:
            part = json.load(fh)
        want = [f for f in full["findings"]
                if f["file"] == "src/x/b.cc"]
        if not want:
            failures.append("changed-only: expected findings in "
                            "src/x/b.cc, full scan found none")
        if part["findings"] != want:
            failures.append(
                "changed-only: filtered findings %r != full-scan "
                "findings on the changed files %r"
                % (part["findings"], want))
        if not part["changed_only"] or full["changed_only"]:
            failures.append("changed-only: JSON flag wrong")

    # The taxonomy list must stay in sync with src/sim/error.hh.
    repo = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    err_hh = os.path.join(repo, "src", "sim", "error.hh")
    if os.path.exists(err_hh):
        with open(err_hh, encoding="utf-8") as fh:
            text = fh.read()
        for cls in ("ConfigError", "WorkloadError", "InvariantViolation",
                    "Deadlock", "Timeout"):
            if ("class %s" % cls) not in text:
                failures.append(
                    "taxonomy drift: %s not found in src/sim/error.hh"
                    % cls)
    if failures:
        for msg in failures:
            print("SELF-TEST FAIL: %s" % msg)
        return 1
    print("self-test OK: %d cases" % len(SELF_TEST_CASES))
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="project-specific static analysis for the HPA "
                    "simulator")
    ap.add_argument("--root", default=".",
                    help="repository root to scan (default: cwd)")
    ap.add_argument("--json", metavar="FILE",
                    help="write an %s document ('-' = stdout)"
                         % LINT_SCHEMA)
    ap.add_argument("--changed-only", action="store_true",
                    help="report findings only for files git "
                         "considers changed (working tree + index + "
                         "untracked); the scan still covers the "
                         "whole tree so cross-file rules keep their "
                         "context")
    ap.add_argument("--changed-list", metavar="FILE",
                    help="like --changed-only but read the changed "
                         "file list (one repo-relative path per "
                         "line) from FILE instead of git; used by "
                         "the self-test")
    ap.add_argument("--rules", action="store_true",
                    help="list rule ids and descriptions, then exit")
    ap.add_argument("--self-test", action="store_true",
                    help="run the linter's built-in unit checks")
    args = ap.parse_args(argv)

    if args.rules:
        for rid, desc in sorted(RULES.items()):
            print("%s  %s" % (rid, desc))
        return 0
    if args.self_test:
        return self_test()

    if not os.path.isdir(args.root):
        print("error: no such directory: %s" % args.root,
              file=sys.stderr)
        return 2

    changed = None
    if args.changed_list:
        with open(args.changed_list, encoding="utf-8") as fh:
            changed = {l.strip() for l in fh if l.strip()}
    elif args.changed_only:
        changed = changed_files(args.root)
        if changed is None:
            print("error: --changed-only needs git and a repository "
                  "at %s" % args.root, file=sys.stderr)
            return 2

    run = LintRun(args.root)
    findings = run.run()
    if changed is not None:
        run.findings = [f for f in run.findings if f.path in changed]
        findings = run.findings

    if args.json:
        doc = json.dumps(to_json(run, changed is not None),
                         indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(doc)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(doc)

    if args.json != "-":
        for f in findings:
            print("%s:%d: %s: %s" % (f.path, f.line, f.rule, f.message))
        print("hpa-lint: %d file(s), %d finding(s), %d suppressed"
              % (len(run.files), len(findings), run.suppressed))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
