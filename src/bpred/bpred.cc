#include "bpred/bpred.hh"

namespace hpa::bpred
{

Btb::Btb(unsigned entries, unsigned assoc)
    : sets_(entries / assoc), assoc_(assoc), entries_(entries)
{}

std::optional<uint64_t>
Btb::lookup(uint64_t pc) const
{
    uint64_t idx = (pc >> 2) & (sets_ - 1);
    uint64_t tag = pc >> 2;
    const Entry *s = &entries_[idx * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (s[w].valid && s[w].tag == tag)
            return s[w].target;
    return std::nullopt;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    uint64_t idx = (pc >> 2) & (sets_ - 1);
    uint64_t tag = pc >> 2;
    Entry *s = &entries_[idx * assoc_];
    Entry *victim = &s[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (s[w].valid && s[w].tag == tag) {
            s[w].target = target;
            s[w].lru = ++clock_;
            return;
        }
        if (!s[w].valid)
            victim = &s[w];
        else if (victim->valid && s[w].lru < victim->lru)
            victim = &s[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lru = ++clock_;
}

void
Ras::push(uint64_t addr)
{
    top_ = unsigned((top_ + 1) % stack_.size());
    stack_[top_] = addr;
    if (count_ < stack_.size())
        ++count_;
}

uint64_t
Ras::pop()
{
    if (count_ == 0)
        return 0;
    uint64_t v = stack_[top_];
    top_ = unsigned((top_ + stack_.size() - 1) % stack_.size());
    --count_;
    return v;
}

BranchPredictor::BranchPredictor(const BPredConfig &config)
    : lookups("bpred.lookups", "control-flow predictions"),
      dirMispredicts("bpred.dir_mispredicts",
                     "conditional direction mispredictions"),
      targetMispredicts("bpred.target_mispredicts",
                        "taken-branch target mispredictions"),
      cfg_(config),
      bimodal_(config.bimodal_entries),
      gshare_(config.gshare_entries),
      selector_(config.selector_entries, 2),
      btb_(config.btb_entries, config.btb_assoc),
      ras_(config.ras_entries)
{}

uint64_t
BranchPredictor::gshareIndex(uint64_t pc) const
{
    uint64_t h = history_ & ((1ull << cfg_.history_bits) - 1);
    return (pc >> 2) ^ h;
}

Prediction
BranchPredictor::predict(uint64_t pc, const isa::StaticInst &si)
{
    ++lookups;
    Prediction p;

    if (si.isReturn()) {
        p.taken = true;
        p.target = ras_.pop();
        p.targetKnown = true;
        return p;
    }

    if (si.isCall())
        ras_.push(pc + 4);

    if (si.isIndirect()) {
        // JMP/JSR: always taken, target from BTB.
        p.taken = true;
        if (auto t = btb_.lookup(pc)) {
            p.target = *t;
            p.targetKnown = true;
        }
        return p;
    }

    // PC-relative target computable at decode.
    uint64_t rel_target =
        pc + 4 + (static_cast<int64_t>(si.disp) << 2);

    if (si.isUncondControl()) {
        p.taken = true;
        p.target = rel_target;
        p.targetKnown = true;
        return p;
    }

    // Conditional branch: combined direction predictor.
    bool bim = bimodal_.taken(pc >> 2);
    bool gsh = gshare_.taken(gshareIndex(pc));
    bool use_gshare = selector_.taken(pc >> 2);
    p.taken = use_gshare ? gsh : bim;
    p.target = rel_target;
    p.targetKnown = true;
    return p;
}

void
BranchPredictor::resolve(uint64_t pc, const isa::StaticInst &si,
                         bool taken, uint64_t target)
{
    if (si.isCondBranch()) {
        bool bim = bimodal_.taken(pc >> 2);
        bool gsh = gshare_.taken(gshareIndex(pc));
        // Train the selector toward the component that was right
        // (only when they disagree).
        if (bim != gsh)
            selector_.update(pc >> 2, gsh == taken);
        bimodal_.update(pc >> 2, taken);
        gshare_.update(gshareIndex(pc), taken);
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }
    if (taken && si.isIndirect() && !si.isReturn())
        btb_.update(pc, target);
}

void
BranchPredictor::regStats(stats::Registry &reg)
{
    reg.add(&lookups);
    reg.add(&dirMispredicts);
    reg.add(&targetMispredicts);
}

} // namespace hpa::bpred
