/**
 * @file
 * Branch prediction per Table 1: a combined bimodal(4k)/gshare(4k)
 * predictor with a 4k-entry selector, a 16-entry return address
 * stack, and a 1k-entry 4-way BTB.
 */

#ifndef HPA_BPRED_BPRED_HH
#define HPA_BPRED_BPRED_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/static_inst.hh"
#include "stats/stats.hh"

namespace hpa::bpred
{

/** Predictor geometry (defaults: Table 1). */
struct BPredConfig
{
    unsigned bimodal_entries = 4096;
    unsigned gshare_entries = 4096;
    unsigned selector_entries = 4096;
    unsigned history_bits = 12;
    unsigned btb_entries = 1024;
    unsigned btb_assoc = 4;
    unsigned ras_entries = 16;
};

/** A table of 2-bit saturating counters. */
class TwoBitTable
{
  public:
    explicit TwoBitTable(unsigned entries, uint8_t init = 1)
        : table_(entries, init)
    {}

    bool taken(uint64_t idx) const { return table_[wrap(idx)] >= 2; }

    void
    update(uint64_t idx, bool taken)
    {
        uint8_t &c = table_[wrap(idx)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
    }

    unsigned size() const { return unsigned(table_.size()); }

  private:
    uint64_t wrap(uint64_t idx) const { return idx & (table_.size() - 1); }

    std::vector<uint8_t> table_;
};

/** 4-way set-associative branch target buffer with LRU. */
class Btb
{
  public:
    Btb(unsigned entries, unsigned assoc);

    std::optional<uint64_t> lookup(uint64_t pc) const;
    void update(uint64_t pc, uint64_t target);

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t target = 0;
        uint64_t lru = 0;
    };

    unsigned sets_;
    unsigned assoc_;
    std::vector<Entry> entries_;
    uint64_t clock_ = 0;
};

/** Circular return-address stack. */
class Ras
{
  public:
    explicit Ras(unsigned entries) : stack_(entries, 0) {}

    void push(uint64_t addr);
    uint64_t pop();
    bool empty() const { return count_ == 0; }

  private:
    std::vector<uint64_t> stack_;
    unsigned top_ = 0;
    unsigned count_ = 0;
};

/** Outcome of a fetch-time prediction. */
struct Prediction
{
    bool taken = false;
    /** Predicted target; valid only when targetKnown. */
    uint64_t target = 0;
    bool targetKnown = false;
};

/**
 * Facade combining direction predictor, BTB and RAS, with hit/miss
 * accounting. The core drives it from the committed-path trace:
 * predict() is side-effect-free except for the RAS (which is updated
 * speculatively at fetch, as in real front ends); resolve() trains
 * tables with the actual outcome.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BPredConfig &config = {});

    /** Predict direction and target for a control instruction. */
    Prediction predict(uint64_t pc, const isa::StaticInst &si);

    /** Train with the actual outcome. */
    void resolve(uint64_t pc, const isa::StaticInst &si, bool taken,
                 uint64_t target);

    void regStats(stats::Registry &reg);

    stats::Counter lookups;
    stats::Counter dirMispredicts;
    stats::Counter targetMispredicts;

  private:
    BPredConfig cfg_;
    TwoBitTable bimodal_;
    TwoBitTable gshare_;
    TwoBitTable selector_;
    Btb btb_;
    Ras ras_;
    uint64_t history_ = 0;

    uint64_t gshareIndex(uint64_t pc) const;
};

} // namespace hpa::bpred

#endif // HPA_BPRED_BPRED_HH
