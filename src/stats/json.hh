/**
 * @file
 * Zero-dependency JSON support for the statistics framework: a
 * streaming writer (used by every machine-readable artifact the
 * simulator emits — stats snapshots, run summaries, sweep results,
 * golden files) and a strict syntax validator used by tests and the
 * `hpa_json_validate` schema gate. No DOM, no allocation beyond the
 * nesting stack.
 */

#ifndef HPA_STATS_JSON_HH
#define HPA_STATS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hpa::stats::json
{

/**
 * Streaming JSON writer. Objects/arrays are opened and closed
 * explicitly; the writer tracks nesting to place commas, newlines and
 * two-space indentation, so emitters never hand-manage separators:
 *
 *   JsonWriter jw(os);
 *   jw.beginObject()
 *     .key("schema").value("hpa.stats.v1")
 *     .key("runs").beginArray().value(1).value(2).endArray()
 *     .endObject();
 *
 * Doubles default to shortest round-trip formatting; a fixed
 * precision overload exists for human-scanned artifacts (golden
 * files) where stable column widths matter.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or begin*(). */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(bool v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(unsigned v) { return value(uint64_t(v)); }
    JsonWriter &value(int v) { return value(int64_t(v)); }
    /** Shortest-round-trip double (NaN/Inf are emitted as null). */
    JsonWriter &value(double v);
    /** Fixed-precision double, printf "%.*f" style. */
    JsonWriter &value(double v, int precision);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, T v)
    {
        return key(k).value(v);
    }
    JsonWriter &
    kv(std::string_view k, double v, int precision)
    {
        return key(k).value(v, precision);
    }

    /** True once every opened scope has been closed again. */
    bool complete() const { return stack_.empty() && wroteRoot_; }

  private:
    enum class Scope : uint8_t { Object, Array };

    void separate(bool is_key);
    void indent();
    void raw(std::string_view s) { os_ << s; }

    std::ostream &os_;
    std::vector<Scope> stack_;
    /** Whether anything was written in the current scope yet. */
    std::vector<bool> hasItems_;
    bool pendingKey_ = false;
    bool wroteRoot_ = false;
};

/** Escape a string for embedding in a JSON document (no quotes). */
std::string escape(std::string_view s);

/**
 * Strict whole-document syntax check (RFC 8259 grammar, UTF-8 not
 * enforced). @return true when @p text is exactly one valid JSON
 * value with only trailing whitespace; otherwise fills @p err with a
 * byte offset and reason.
 */
bool validate(std::string_view text, std::string *err = nullptr);

/**
 * Extract the string value of a top-level-ish `"key": "value"` pair
 * by naive scan (first occurrence). Returns empty when absent. Used
 * by schema checks where the document was already validate()d.
 */
std::string findStringField(std::string_view text, std::string_view key);

} // namespace hpa::stats::json

#endif // HPA_STATS_JSON_HH
