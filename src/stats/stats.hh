/**
 * @file
 * Lightweight statistics framework in the spirit of SimpleScalar's
 * stats package: named scalar counters, averages, distributions
 * (histograms), and derived formulas, collected in a registry that can
 * render a human-readable report.
 */

#ifndef HPA_STATS_STATS_HH
#define HPA_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace hpa::stats
{

namespace json
{
class JsonWriter;
}

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;
    Counter(std::string stat_name, std::string stat_desc)
        : name(std::move(stat_name)), desc(std::move(stat_desc))
    {}

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(uint64_t n) { value_ += n; }

    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    std::string name;
    std::string desc;

  private:
    uint64_t value_ = 0;
};

/**
 * A bucketed histogram over small non-negative integers with an
 * overflow bucket. Used for e.g. wakeup-slack and ready-operand
 * distributions.
 */
class Distribution
{
  public:
    Distribution() = default;

    /**
     * @param name stat name
     * @param desc description
     * @param max_bucket values >= max_bucket land in the overflow
     *        bucket reported as "max_bucket+"
     */
    Distribution(std::string stat_name, std::string stat_desc,
                 unsigned max_bucket)
        : name(std::move(stat_name)), desc(std::move(stat_desc)),
          buckets_(max_bucket + 1, 0)
    {}

    void
    sample(unsigned v, uint64_t count = 1)
    {
        unsigned idx = v >= buckets_.size() - 1
            ? static_cast<unsigned>(buckets_.size()) - 1 : v;
        buckets_[idx] += count;
        total_ += count;
    }

    uint64_t total() const { return total_; }
    uint64_t bucket(unsigned i) const { return buckets_.at(i); }
    size_t numBuckets() const { return buckets_.size(); }

    /** Fraction of samples in bucket i (0 if no samples). */
    double
    fraction(unsigned i) const
    {
        return total_ == 0 ? 0.0
            : static_cast<double>(buckets_.at(i))
                / static_cast<double>(total_);
    }

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        total_ = 0;
    }

    std::string name;
    std::string desc;

  private:
    std::vector<uint64_t> buckets_;
    uint64_t total_ = 0;
};

/** A derived statistic evaluated lazily at reporting time. */
class Formula
{
  public:
    Formula() = default;
    Formula(std::string stat_name, std::string stat_desc,
            std::function<double()> eval)
        : name(std::move(stat_name)), desc(std::move(stat_desc)),
          eval_(std::move(eval))
    {}

    double value() const { return eval_ ? eval_() : 0.0; }

    std::string name;
    std::string desc;

  private:
    std::function<double()> eval_;
};

/**
 * A registry of statistics owned elsewhere. The registry stores
 * non-owning pointers so that hot counters remain plain members of the
 * structures that update them.
 */
class Registry
{
  public:
    /** Version tag stamped into every toJson() document. */
    static constexpr const char *JSON_SCHEMA = "hpa.stats.v1";

    /**
     * Typed visitation over every registered statistic, in
     * registration order (the order the text report uses). All
     * serializers — the text report, toJson(), CSV — are built on
     * this interface, so a new output format never needs friend
     * access or a parallel traversal.
     */
    struct Visitor
    {
        virtual ~Visitor() = default;
        virtual void counter(const Counter &) {}
        virtual void distribution(const Distribution &) {}
        /** The second argument is the formula evaluated once by the
         *  caller. */
        virtual void formula(const Formula &, double) {}
    };

    void add(Counter *c) { counters_.push_back(c); }
    void add(Distribution *d) { dists_.push_back(d); }
    void add(Formula f) { formulas_.push_back(std::move(f)); }

    /** Visit counters, then distributions, then formulas. */
    void visit(Visitor &v) const;

    /** Render all registered statistics as "name value # desc" rows. */
    void dump(std::ostream &os) const;

    /**
     * Emit every registered statistic as a self-describing,
     * schema-versioned (JSON_SCHEMA) JSON object onto @p jw — for
     * embedding into a larger document (e.g. a run summary).
     */
    void toJson(json::JsonWriter &jw) const;

    /** Standalone toJson(): one complete JSON document on @p os. */
    void toJson(std::ostream &os) const;

    /**
     * One CSV header/data row pair over every statistic: counters by
     * name, distributions as name.total plus one column per bucket
     * (overflow suffixed '+'), formulas by name. Column order is
     * registration order, matching the text report and toJson().
     */
    void csvHeader(std::ostream &os) const;
    void csvRow(std::ostream &os) const;

    /** Reset every registered counter and distribution. */
    void reset();

    const std::vector<Counter *> &counters() const { return counters_; }
    const std::vector<Distribution *> &dists() const { return dists_; }
    const std::vector<Formula> &formulas() const { return formulas_; }

    /** Find a counter by name; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    /** Find a distribution by name; nullptr when absent. */
    const Distribution *findDist(const std::string &name) const;

  private:
    std::vector<Counter *> counters_;
    std::vector<Distribution *> dists_;
    std::vector<Formula> formulas_;
};

} // namespace hpa::stats

#endif // HPA_STATS_STATS_HH
