#include "stats/stats.hh"

#include <iomanip>
#include <sstream>

#include "stats/json.hh"

namespace hpa::stats
{

void
Registry::visit(Visitor &v) const
{
    for (const Counter *c : counters_)
        v.counter(*c);
    for (const Distribution *d : dists_)
        v.distribution(*d);
    for (const Formula &f : formulas_)
        v.formula(f, f.value());
}

namespace
{

/** The human-readable "name value # desc" report. */
struct TextDumper final : Registry::Visitor
{
    explicit TextDumper(std::ostream &out) : os(out) {}

    void
    row(const std::string &name, const std::string &value,
        const std::string &desc)
    {
        os << std::left << std::setw(40) << name << " "
           << std::setw(16) << value << " # " << desc << "\n";
    }

    void
    counter(const Counter &c) override
    {
        row(c.name, std::to_string(c.value()), c.desc);
    }

    void
    distribution(const Distribution &d) override
    {
        row(d.name + ".total", std::to_string(d.total()), d.desc);
        for (unsigned i = 0; i < d.numBuckets(); ++i) {
            std::string bucket_name = d.name + "." + std::to_string(i)
                + (i + 1 == d.numBuckets() ? "+" : "");
            std::ostringstream val;
            val << d.bucket(i) << " (" << std::fixed
                << std::setprecision(2) << 100.0 * d.fraction(i) << "%)";
            row(bucket_name, val.str(), d.desc);
        }
    }

    void
    formula(const Formula &f, double value) override
    {
        std::ostringstream val;
        val << std::fixed << std::setprecision(4) << value;
        row(f.name, val.str(), f.desc);
    }

    std::ostream &os;
};

/** The hpa.stats.v1 object body. */
struct JsonDumper final : Registry::Visitor
{
    explicit JsonDumper(json::JsonWriter &writer) : jw(writer) {}

    void
    counter(const Counter &c) override
    {
        jw.beginObject()
            .kv("name", c.name)
            .kv("desc", c.desc)
            .kv("value", c.value())
            .endObject();
    }

    void
    distribution(const Distribution &d) override
    {
        jw.beginObject()
            .kv("name", d.name)
            .kv("desc", d.desc)
            .kv("total", d.total())
            .key("buckets")
            .beginArray();
        for (unsigned i = 0; i < d.numBuckets(); ++i)
            jw.value(d.bucket(i));
        jw.endArray();
        // The last bucket collects all values >= numBuckets()-1.
        jw.kv("overflow_bucket", uint64_t(d.numBuckets() - 1))
            .endObject();
    }

    void
    formula(const Formula &f, double value) override
    {
        jw.beginObject()
            .kv("name", f.name)
            .kv("desc", f.desc)
            .kv("value", value)
            .endObject();
    }

    json::JsonWriter &jw;
};

/** Column names / values for the CSV pair, in report order. */
struct CsvDumper final : Registry::Visitor
{
    CsvDumper(std::ostream &out, bool emit_header)
        : os(out), header(emit_header)
    {}

    void
    cell(const std::string &name, const std::string &value)
    {
        if (!first)
            os << ",";
        first = false;
        os << (header ? name : value);
    }

    void
    counter(const Counter &c) override
    {
        cell(c.name, std::to_string(c.value()));
    }

    void
    distribution(const Distribution &d) override
    {
        cell(d.name + ".total", std::to_string(d.total()));
        for (unsigned i = 0; i < d.numBuckets(); ++i)
            cell(d.name + "." + std::to_string(i)
                     + (i + 1 == d.numBuckets() ? "+" : ""),
                 std::to_string(d.bucket(i)));
    }

    void
    formula(const Formula &f, double value) override
    {
        std::ostringstream val;
        val << std::setprecision(17) << value;
        cell(f.name, val.str());
    }

    std::ostream &os;
    bool header;
    bool first = true;
};

} // namespace

void
Registry::dump(std::ostream &os) const
{
    TextDumper d(os);
    visit(d);
}

void
Registry::toJson(json::JsonWriter &jw) const
{
    jw.beginObject().kv("schema", JSON_SCHEMA);
    JsonDumper d(jw);

    jw.key("counters").beginArray();
    for (const Counter *c : counters_)
        d.counter(*c);
    jw.endArray();

    jw.key("distributions").beginArray();
    for (const Distribution *dist : dists_)
        d.distribution(*dist);
    jw.endArray();

    jw.key("formulas").beginArray();
    for (const Formula &f : formulas_)
        d.formula(f, f.value());
    jw.endArray();

    jw.endObject();
}

void
Registry::toJson(std::ostream &os) const
{
    json::JsonWriter jw(os);
    toJson(jw);
}

void
Registry::csvHeader(std::ostream &os) const
{
    CsvDumper d(os, true);
    visit(d);
    os << "\n";
}

void
Registry::csvRow(std::ostream &os) const
{
    CsvDumper d(os, false);
    visit(d);
    os << "\n";
}

void
Registry::reset()
{
    for (Counter *c : counters_)
        c->reset();
    for (Distribution *d : dists_)
        d->reset();
}

const Counter *
Registry::findCounter(const std::string &name) const
{
    for (const Counter *c : counters_)
        if (c->name == name)
            return c;
    return nullptr;
}

const Distribution *
Registry::findDist(const std::string &name) const
{
    for (const Distribution *d : dists_)
        if (d->name == name)
            return d;
    return nullptr;
}

} // namespace hpa::stats
