#include "stats/stats.hh"

#include <iomanip>
#include <sstream>

namespace hpa::stats
{

void
Registry::dump(std::ostream &os) const
{
    auto row = [&os](const std::string &name, const std::string &value,
                     const std::string &desc) {
        os << std::left << std::setw(40) << name << " "
           << std::setw(16) << value << " # " << desc << "\n";
    };

    for (const Counter *c : counters_)
        row(c->name, std::to_string(c->value()), c->desc);

    for (const Distribution *d : dists_) {
        row(d->name + ".total", std::to_string(d->total()), d->desc);
        for (unsigned i = 0; i < d->numBuckets(); ++i) {
            std::string bucket_name = d->name + "." + std::to_string(i)
                + (i + 1 == d->numBuckets() ? "+" : "");
            std::ostringstream val;
            val << d->bucket(i) << " (" << std::fixed
                << std::setprecision(2) << 100.0 * d->fraction(i) << "%)";
            row(bucket_name, val.str(), d->desc);
        }
    }

    for (const Formula &f : formulas_) {
        std::ostringstream val;
        val << std::fixed << std::setprecision(4) << f.value();
        row(f.name, val.str(), f.desc);
    }
}

void
Registry::reset()
{
    for (Counter *c : counters_)
        c->reset();
    for (Distribution *d : dists_)
        d->reset();
}

const Counter *
Registry::findCounter(const std::string &name) const
{
    for (const Counter *c : counters_)
        if (c->name == name)
            return c;
    return nullptr;
}

const Distribution *
Registry::findDist(const std::string &name) const
{
    for (const Distribution *d : dists_)
        if (d->name == name)
            return d;
    return nullptr;
}

} // namespace hpa::stats
