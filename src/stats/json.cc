#include "stats/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace hpa::stats::json
{

// --- Writer. ---

void
JsonWriter::separate(bool is_key)
{
    if (pendingKey_) {
        // A value (or container) directly follows its key.
        pendingKey_ = false;
        return;
    }
    if (!stack_.empty()) {
        if (hasItems_.back())
            raw(",");
        hasItems_.back() = true;
        raw("\n");
        indent();
    }
    (void)is_key;
}

void
JsonWriter::indent()
{
    for (size_t i = 0; i < stack_.size(); ++i)
        raw("  ");
}

JsonWriter &
JsonWriter::beginObject()
{
    separate(false);
    raw("{");
    stack_.push_back(Scope::Object);
    hasItems_.push_back(false);
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (had) {
        raw("\n");
        indent();
    }
    raw("}");
    if (stack_.empty())
        raw("\n");
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate(false);
    raw("[");
    stack_.push_back(Scope::Array);
    hasItems_.push_back(false);
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (had) {
        raw("\n");
        indent();
    }
    raw("]");
    if (stack_.empty())
        raw("\n");
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    separate(true);
    os_ << '"' << escape(k) << "\": ";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separate(false);
    os_ << '"' << escape(v) << '"';
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate(false);
    raw(v ? "true" : "false");
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    separate(false);
    os_ << v;
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    separate(false);
    os_ << v;
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate(false);
    if (!std::isfinite(v)) {
        raw("null");
    } else {
        char buf[64];
        auto [ptr, ec] =
            std::to_chars(buf, buf + sizeof(buf), v);
        *ptr = '\0';
        // to_chars emits "1e+20" style without a decimal point for
        // integral doubles; that is still valid JSON.
        raw(buf);
    }
    wroteRoot_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v, int precision)
{
    separate(false);
    if (!std::isfinite(v)) {
        raw("null");
    } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
        raw(buf);
    }
    wroteRoot_ = true;
    return *this;
}

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

// --- Validator: recursive-descent over the RFC 8259 grammar. ---

namespace
{

struct Parser
{
    std::string_view text;
    size_t pos = 0;
    std::string err;
    int depth = 0;
    static constexpr int MAX_DEPTH = 256;

    bool
    fail(const std::string &why)
    {
        if (err.empty())
            err = "offset " + std::to_string(pos) + ": " + why;
        return false;
    }

    void
    ws()
    {
        while (pos < text.size()
               && (text[pos] == ' ' || text[pos] == '\t'
                   || text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool eof() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    bool
    literal(std::string_view lit)
    {
        if (text.substr(pos, lit.size()) != lit)
            return fail("bad literal");
        pos += lit.size();
        return true;
    }

    bool
    string()
    {
        if (eof() || peek() != '"')
            return fail("expected string");
        ++pos;
        while (!eof()) {
            char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c == '\\') {
                ++pos;
                if (eof())
                    return fail("truncated escape");
                char e = text[pos];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos + i >= text.size()
                            || !std::isxdigit(static_cast<unsigned char>(
                                text[pos + i])))
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail("bad escape character");
                }
            }
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        size_t start = pos;
        if (!eof() && peek() == '-')
            ++pos;
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad number");
        if (peek() == '0') {
            ++pos;
        } else {
            while (!eof()
                   && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!eof() && peek() == '.') {
            ++pos;
            if (eof()
                || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad fraction");
            while (!eof()
                   && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos;
            if (eof()
                || !std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad exponent");
            while (!eof()
                   && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        return pos > start;
    }

    bool
    value()
    {
        if (++depth > MAX_DEPTH)
            return fail("nesting too deep");
        ws();
        if (eof())
            return fail("expected value");
        bool ok;
        switch (peek()) {
          case '{': ok = object(); break;
          case '[': ok = array(); break;
          case '"': ok = string(); break;
          case 't': ok = literal("true"); break;
          case 'f': ok = literal("false"); break;
          case 'n': ok = literal("null"); break;
          default: ok = number(); break;
        }
        --depth;
        return ok;
    }

    bool
    object()
    {
        ++pos; // '{'
        ws();
        if (!eof() && peek() == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            ws();
            if (!string())
                return false;
            ws();
            if (eof() || peek() != ':')
                return fail("expected ':'");
            ++pos;
            if (!value())
                return false;
            ws();
            if (eof())
                return fail("unterminated object");
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos; // '['
        ws();
        if (!eof() && peek() == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            ws();
            if (eof())
                return fail("unterminated array");
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

bool
validate(std::string_view text, std::string *err)
{
    Parser p{text, 0, {}, 0};
    if (!p.value()) {
        if (err)
            *err = p.err;
        return false;
    }
    p.ws();
    if (!p.eof()) {
        if (err)
            *err = "offset " + std::to_string(p.pos)
                + ": trailing characters after JSON value";
        return false;
    }
    return true;
}

std::string
findStringField(std::string_view text, std::string_view key)
{
    // Appends, not operator+ chains: GCC 12 -Wrestrict misfires on
    // temporary-string concatenation at -O3 (GCC PR105329).
    std::string needle = "\"";
    needle += key;
    needle += '"';
    size_t k = text.find(needle);
    if (k == std::string_view::npos)
        return "";
    size_t colon = text.find(':', k + needle.size());
    if (colon == std::string_view::npos)
        return "";
    size_t q1 = text.find('"', colon + 1);
    if (q1 == std::string_view::npos)
        return "";
    size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string_view::npos)
        return "";
    return std::string(text.substr(q1 + 1, q2 - q1 - 1));
}

} // namespace hpa::stats::json
