/**
 * @file
 * Register-file definition for HPA-ISA, an Alpha-like load/store RISC
 * ISA: 32 integer registers (r31 hardwired to zero) and 32
 * floating-point registers (f31 hardwired to zero).
 *
 * Dependence tracking uses a unified register namespace of 64 ids:
 * integer registers occupy [0, 31] and floating-point registers
 * [32, 63].
 */

#ifndef HPA_ISA_REGISTERS_HH
#define HPA_ISA_REGISTERS_HH

#include <cstdint>
#include <string>

namespace hpa::isa
{

using RegIndex = uint8_t;

constexpr unsigned NUM_INT_REGS = 32;
constexpr unsigned NUM_FP_REGS = 32;
constexpr unsigned NUM_UNIFIED_REGS = NUM_INT_REGS + NUM_FP_REGS;

/** Integer zero register (reads as 0, writes discarded). */
constexpr RegIndex INT_ZERO_REG = 31;
/** Floating-point zero register. */
constexpr RegIndex FP_ZERO_REG = 31;

/** Conventional link register written by BSR/JSR. */
constexpr RegIndex LINK_REG = 26;
/** Conventional stack pointer. */
constexpr RegIndex STACK_REG = 30;

/** Unified id of an integer register. */
constexpr RegIndex
unifiedInt(RegIndex r)
{
    return r;
}

/** Unified id of a floating-point register. */
constexpr RegIndex
unifiedFp(RegIndex f)
{
    return NUM_INT_REGS + f;
}

/** True when the unified register id is one of the hardwired zeros. */
constexpr bool
isZeroReg(RegIndex unified)
{
    return unified == unifiedInt(INT_ZERO_REG)
        || unified == unifiedFp(FP_ZERO_REG);
}

/** True when the unified register id names a floating-point register. */
constexpr bool
isFpReg(RegIndex unified)
{
    return unified >= NUM_INT_REGS;
}

/** Printable name of a unified register id ("r5", "f12"). */
inline std::string
regName(RegIndex unified)
{
    // Appends, not operator+ chains: GCC 12 -Wrestrict misfires on
    // temporary-string concatenation at -O3 (GCC PR105329).
    std::string s(1, isFpReg(unified) ? 'f' : 'r');
    s += std::to_string(isFpReg(unified) ? unified - NUM_INT_REGS
                                         : unified);
    return s;
}

} // namespace hpa::isa

#endif // HPA_ISA_REGISTERS_HH
