/**
 * @file
 * Binary encoding and decoding for HPA-ISA.
 *
 * Word layout (32 bits), Alpha-style:
 *
 *   Operate: [31:26]=group [25:21]=ra [20:16]=rb|[20:13]=lit8,[12]=1
 *            [11:5]=func [4:0]=rc
 *   Memory:  [31:26]=op    [25:21]=ra [20:16]=rb [15:0]=disp16
 *   Branch:  [31:26]=op    [25:21]=ra [20:0]=disp21 (in words)
 *   Jump:    [31:26]=0x1A  [25:21]=ra [20:16]=rb [15:14]=func
 *   System:  [31:26]=0x00  [25:21]=ra [5:0]=func
 */

#ifndef HPA_ISA_DECODE_HH
#define HPA_ISA_DECODE_HH

#include <cstdint>
#include <optional>

#include "isa/static_inst.hh"

namespace hpa::isa
{

using MachInst = uint32_t;

/** Encode a static instruction into its 32-bit machine form. */
MachInst encode(const StaticInst &si);

/**
 * Decode a 32-bit machine word.
 * @return the decoded instruction, or std::nullopt for an illegal
 *         encoding.
 */
std::optional<StaticInst> decode(MachInst word);

} // namespace hpa::isa

#endif // HPA_ISA_DECODE_HH
