#include "isa/decode.hh"

#include <array>

namespace hpa::isa
{

namespace
{

// Primary opcode assignments.
constexpr uint32_t GRP_SYS = 0x00;
constexpr uint32_t GRP_INTOP = 0x10;
constexpr uint32_t GRP_FLTOP = 0x17;
constexpr uint32_t GRP_JUMP = 0x1A;

constexpr uint32_t OP_LDA = 0x08;
constexpr uint32_t OP_LDAH = 0x09;
constexpr uint32_t OP_LDBU = 0x0A;
constexpr uint32_t OP_LDW = 0x0B;
constexpr uint32_t OP_LDL = 0x0C;
constexpr uint32_t OP_LDQ = 0x0D;
constexpr uint32_t OP_LDF = 0x0E;
constexpr uint32_t OP_STB = 0x12;
constexpr uint32_t OP_STW = 0x13;
constexpr uint32_t OP_STL = 0x14;
constexpr uint32_t OP_STQ = 0x15;
constexpr uint32_t OP_STF = 0x16;

constexpr uint32_t OP_BR = 0x30;
constexpr uint32_t OP_BSR = 0x34;
constexpr uint32_t OP_BEQ = 0x38;
constexpr uint32_t OP_BNE = 0x39;
constexpr uint32_t OP_BLT = 0x3A;
constexpr uint32_t OP_BLE = 0x3B;
constexpr uint32_t OP_BGT = 0x3C;
constexpr uint32_t OP_BGE = 0x3D;
constexpr uint32_t OP_BLBC = 0x3E;
constexpr uint32_t OP_BLBS = 0x3F;

/** Function codes within the integer-operate group. */
uint32_t
intFunc(Opcode op)
{
    return static_cast<uint32_t>(op) - static_cast<uint32_t>(Opcode::ADD);
}

std::optional<Opcode>
intOpFromFunc(uint32_t func)
{
    uint32_t v = func + static_cast<uint32_t>(Opcode::ADD);
    if (v > static_cast<uint32_t>(Opcode::S8ADD))
        return std::nullopt;
    return static_cast<Opcode>(v);
}

uint32_t
fltFunc(Opcode op)
{
    return static_cast<uint32_t>(op) - static_cast<uint32_t>(Opcode::ADDF);
}

std::optional<Opcode>
fltOpFromFunc(uint32_t func)
{
    uint32_t v = func + static_cast<uint32_t>(Opcode::ADDF);
    if (v > static_cast<uint32_t>(Opcode::FTOI))
        return std::nullopt;
    return static_cast<Opcode>(v);
}

uint32_t
memPrimary(Opcode op)
{
    switch (op) {
      case Opcode::LDA: return OP_LDA;
      case Opcode::LDAH: return OP_LDAH;
      case Opcode::LDBU: return OP_LDBU;
      case Opcode::LDW: return OP_LDW;
      case Opcode::LDL: return OP_LDL;
      case Opcode::LDQ: return OP_LDQ;
      case Opcode::LDF: return OP_LDF;
      case Opcode::STB: return OP_STB;
      case Opcode::STW: return OP_STW;
      case Opcode::STL: return OP_STL;
      case Opcode::STQ: return OP_STQ;
      case Opcode::STF: return OP_STF;
      default: return 0;
    }
}

uint32_t
branchPrimary(Opcode op)
{
    switch (op) {
      case Opcode::BR: return OP_BR;
      case Opcode::BSR: return OP_BSR;
      case Opcode::BEQ: return OP_BEQ;
      case Opcode::BNE: return OP_BNE;
      case Opcode::BLT: return OP_BLT;
      case Opcode::BLE: return OP_BLE;
      case Opcode::BGT: return OP_BGT;
      case Opcode::BGE: return OP_BGE;
      case Opcode::BLBC: return OP_BLBC;
      case Opcode::BLBS: return OP_BLBS;
      default: return 0;
    }
}

int32_t
sext(uint32_t value, unsigned bits)
{
    uint32_t m = 1u << (bits - 1);
    return static_cast<int32_t>((value ^ m) - m);
}

} // namespace

MachInst
encode(const StaticInst &si)
{
    const OpInfo &inf = si.info();
    uint32_t w = 0;
    switch (inf.format) {
      case Format::Operate: {
        bool fp = inf.opClass == OpClass::FpAlu
            || inf.opClass == OpClass::FpMult
            || inf.opClass == OpClass::FpDiv;
        uint32_t grp = fp ? GRP_FLTOP : GRP_INTOP;
        uint32_t func = fp ? fltFunc(si.op) : intFunc(si.op);
        w = (grp << 26) | (uint32_t(si.ra) << 21) | (func << 5)
            | uint32_t(si.rc);
        if (si.useLiteral)
            w |= (uint32_t(si.literal) << 13) | (1u << 12);
        else
            w |= uint32_t(si.rb) << 16;
        break;
      }
      case Format::Memory:
        w = (memPrimary(si.op) << 26) | (uint32_t(si.ra) << 21)
            | (uint32_t(si.rb) << 16)
            | (static_cast<uint32_t>(si.disp) & 0xFFFF);
        break;
      case Format::Branch:
        w = (branchPrimary(si.op) << 26) | (uint32_t(si.ra) << 21)
            | (static_cast<uint32_t>(si.disp) & 0x1FFFFF);
        break;
      case Format::Jump: {
        uint32_t func = si.op == Opcode::JMP ? 0
            : si.op == Opcode::JSR ? 1 : 2;
        w = (GRP_JUMP << 26) | (uint32_t(si.ra) << 21)
            | (uint32_t(si.rb) << 16) | (func << 14);
        break;
      }
      case Format::System: {
        uint32_t func = si.op == Opcode::HALT ? 0 : 1;
        w = (GRP_SYS << 26) | (uint32_t(si.ra) << 21) | func;
        break;
      }
    }
    return w;
}

std::optional<StaticInst>
decode(MachInst word)
{
    uint32_t primary = word >> 26;
    uint32_t ra = (word >> 21) & 0x1F;
    uint32_t rb = (word >> 16) & 0x1F;

    StaticInst si;
    si.ra = static_cast<RegIndex>(ra);
    si.rb = static_cast<RegIndex>(rb);

    switch (primary) {
      case GRP_SYS: {
        uint32_t func = word & 0x3F;
        if (func == 0)
            si.op = Opcode::HALT;
        else if (func == 1)
            si.op = Opcode::OUT;
        else
            return std::nullopt;
        si.rb = 31;   // no rb field in the system format
        si.finalize();
        return si;
      }
      case GRP_INTOP:
      case GRP_FLTOP: {
        uint32_t func = (word >> 5) & 0x7F;
        auto op = primary == GRP_INTOP ? intOpFromFunc(func)
                                       : fltOpFromFunc(func);
        if (!op)
            return std::nullopt;
        si.op = *op;
        si.rc = static_cast<RegIndex>(word & 0x1F);
        if (word & (1u << 12)) {
            si.useLiteral = true;
            si.literal = static_cast<uint8_t>((word >> 13) & 0xFF);
            si.rb = 31;
        }
        si.finalize();
        return si;
      }
      case GRP_JUMP: {
        uint32_t func = (word >> 14) & 0x3;
        if (func == 0)
            si.op = Opcode::JMP;
        else if (func == 1)
            si.op = Opcode::JSR;
        else if (func == 2)
            si.op = Opcode::RET;
        else
            return std::nullopt;
        si.finalize();
        return si;
      }
      case OP_LDA: si.op = Opcode::LDA; break;
      case OP_LDAH: si.op = Opcode::LDAH; break;
      case OP_LDBU: si.op = Opcode::LDBU; break;
      case OP_LDW: si.op = Opcode::LDW; break;
      case OP_LDL: si.op = Opcode::LDL; break;
      case OP_LDQ: si.op = Opcode::LDQ; break;
      case OP_LDF: si.op = Opcode::LDF; break;
      case OP_STB: si.op = Opcode::STB; break;
      case OP_STW: si.op = Opcode::STW; break;
      case OP_STL: si.op = Opcode::STL; break;
      case OP_STQ: si.op = Opcode::STQ; break;
      case OP_STF: si.op = Opcode::STF; break;
      case OP_BR: si.op = Opcode::BR; break;
      case OP_BSR: si.op = Opcode::BSR; break;
      case OP_BEQ: si.op = Opcode::BEQ; break;
      case OP_BNE: si.op = Opcode::BNE; break;
      case OP_BLT: si.op = Opcode::BLT; break;
      case OP_BLE: si.op = Opcode::BLE; break;
      case OP_BGT: si.op = Opcode::BGT; break;
      case OP_BGE: si.op = Opcode::BGE; break;
      case OP_BLBC: si.op = Opcode::BLBC; break;
      case OP_BLBS: si.op = Opcode::BLBS; break;
      default:
        return std::nullopt;
    }

    if (si.format() == Format::Memory) {
        si.disp = sext(word & 0xFFFF, 16);
    } else if (si.format() == Format::Branch) {
        si.disp = sext(word & 0x1FFFFF, 21);
        si.rb = 31;   // bits [20:16] belong to the displacement
    }
    si.finalize();
    return si;
}

} // namespace hpa::isa
