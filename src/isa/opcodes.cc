#include "isa/opcodes.hh"

#include <array>
#include <cassert>

namespace hpa::isa
{

namespace
{

constexpr auto N = static_cast<size_t>(Opcode::NumOpcodes);

constexpr std::array<OpInfo, N>
buildTable()
{
    std::array<OpInfo, N> t{};
    auto set = [&t](Opcode op, std::string_view m, Format f, OpClass c,
                    uint8_t nsrc, bool wd) {
        t[static_cast<size_t>(op)] = OpInfo{m, f, c, nsrc, wd};
    };

    // Integer operate: rc <- ra OP rb. Two source fields, one dest.
    set(Opcode::ADD,    "add",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::SUB,    "sub",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::MUL,    "mul",    Format::Operate, OpClass::IntMult, 2, true);
    set(Opcode::DIV,    "div",    Format::Operate, OpClass::IntDiv, 2, true);
    set(Opcode::REM,    "rem",    Format::Operate, OpClass::IntDiv, 2, true);
    set(Opcode::AND,    "and",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::BIS,    "bis",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::XOR,    "xor",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::BIC,    "bic",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::ORNOT,  "ornot",  Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::EQV,    "eqv",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::SLL,    "sll",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::SRL,    "srl",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::SRA,    "sra",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::CMPEQ,  "cmpeq",  Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::CMPLT,  "cmplt",  Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::CMPLE,  "cmple",  Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::CMPULT, "cmpult", Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::CMPULE, "cmpule", Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::S4ADD,  "s4add",  Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::S8ADD,  "s8add",  Format::Operate, OpClass::IntAlu, 2, true);

    // Floating-point operate.
    set(Opcode::ADDF,   "addf",   Format::Operate, OpClass::FpAlu, 2, true);
    set(Opcode::SUBF,   "subf",   Format::Operate, OpClass::FpAlu, 2, true);
    set(Opcode::MULF,   "mulf",   Format::Operate, OpClass::FpMult, 2, true);
    set(Opcode::DIVF,   "divf",   Format::Operate, OpClass::FpDiv, 2, true);
    set(Opcode::CMPFEQ, "cmpfeq", Format::Operate, OpClass::FpAlu, 2, true);
    set(Opcode::CMPFLT, "cmpflt", Format::Operate, OpClass::FpAlu, 2, true);
    set(Opcode::CMPFLE, "cmpfle", Format::Operate, OpClass::FpAlu, 2, true);
    set(Opcode::SQRTF,  "sqrtf",  Format::Operate, OpClass::FpDiv, 1, true);
    set(Opcode::ITOF,   "itof",   Format::Operate, OpClass::FpAlu, 1, true);
    set(Opcode::FTOI,   "ftoi",   Format::Operate, OpClass::FpAlu, 1, true);

    // Memory. Loads/LDA read rb (base); stores read ra (data) + rb.
    set(Opcode::LDA,    "lda",    Format::Memory, OpClass::IntAlu, 1, true);
    set(Opcode::LDAH,   "ldah",   Format::Memory, OpClass::IntAlu, 1, true);
    set(Opcode::LDBU,   "ldbu",   Format::Memory, OpClass::MemRead, 1, true);
    set(Opcode::LDW,    "ldw",    Format::Memory, OpClass::MemRead, 1, true);
    set(Opcode::LDL,    "ldl",    Format::Memory, OpClass::MemRead, 1, true);
    set(Opcode::LDQ,    "ldq",    Format::Memory, OpClass::MemRead, 1, true);
    set(Opcode::LDF,    "ldf",    Format::Memory, OpClass::MemRead, 1, true);
    set(Opcode::STB,    "stb",    Format::Memory, OpClass::MemWrite, 2, false);
    set(Opcode::STW,    "stw",    Format::Memory, OpClass::MemWrite, 2, false);
    set(Opcode::STL,    "stl",    Format::Memory, OpClass::MemWrite, 2, false);
    set(Opcode::STQ,    "stq",    Format::Memory, OpClass::MemWrite, 2, false);
    set(Opcode::STF,    "stf",    Format::Memory, OpClass::MemWrite, 2, false);

    // Control. Conditional branches read ra; BR/BSR write ra (link).
    set(Opcode::BR,     "br",     Format::Branch, OpClass::Branch, 0, true);
    set(Opcode::BSR,    "bsr",    Format::Branch, OpClass::Branch, 0, true);
    set(Opcode::BEQ,    "beq",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BNE,    "bne",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BLT,    "blt",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BLE,    "ble",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BGT,    "bgt",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BGE,    "bge",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BLBC,   "blbc",   Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BLBS,   "blbs",   Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::JMP,    "jmp",    Format::Jump, OpClass::Branch, 1, true);
    set(Opcode::JSR,    "jsr",    Format::Jump, OpClass::Branch, 1, true);
    set(Opcode::RET,    "ret",    Format::Jump, OpClass::Branch, 1, true);

    set(Opcode::HALT,   "halt",   Format::System, OpClass::System, 0, false);
    set(Opcode::OUT,    "out",    Format::System, OpClass::System, 1, false);
    return t;
}

constexpr std::array<OpInfo, N> opTable = buildTable();

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    assert(op < Opcode::NumOpcodes);
    return opTable[static_cast<size_t>(op)];
}

unsigned
opClassLatency(OpClass cls)
{
    // Latencies from Table 1. MemRead latency here is the address
    // generation only; cache access latency is added by the memory
    // system model.
    switch (cls) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMult: return 3;
      case OpClass::IntDiv: return 20;
      case OpClass::FpAlu: return 2;
      case OpClass::FpMult: return 4;
      case OpClass::FpDiv: return 12;
      case OpClass::MemRead: return 1;
      case OpClass::MemWrite: return 1;
      case OpClass::Branch: return 1;
      case OpClass::System: return 1;
      default: return 1;
    }
}

bool
opClassUnpipelined(OpClass cls)
{
    return cls == OpClass::IntDiv || cls == OpClass::FpDiv;
}

} // namespace hpa::isa
