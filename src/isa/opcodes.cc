#include "isa/opcodes.hh"

// Opcode properties live entirely in the header now (constexpr table
// + inline lookups) so the core's per-cycle property queries inline
// into their call sites. This TU just anchors the header's symbols
// for any translation unit that only needs the declarations.
