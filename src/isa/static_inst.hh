/**
 * @file
 * Decoded static instruction representation plus the operand
 * classification the paper's characterization figures are built on
 * (2-source formats, unique sources, zero-register and nop detection).
 */

#ifndef HPA_ISA_STATIC_INST_HH
#define HPA_ISA_STATIC_INST_HH

#include <cstdint>
#include <string>

#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace hpa::isa
{

/** Sentinel meaning "no register". */
constexpr RegIndex NO_REG = 255;

/** Fixed-capacity list of source register ids (unified namespace). */
struct SrcList
{
    uint8_t count = 0;
    RegIndex regs[2] = {NO_REG, NO_REG};

    void
    push(RegIndex r)
    {
        regs[count++] = r;
    }
};

/**
 * A decoded HPA-ISA instruction. Register fields are stored raw
 * (0..31); accessors translate them into the unified 64-register
 * dependence namespace.
 */
struct StaticInst
{
    /** Bits of the decode-time operand-property cache (meta). */
    static constexpr uint16_t META_VALID = 1u << 0;
    static constexpr uint16_t META_LOAD = 1u << 1;
    static constexpr uint16_t META_STORE = 1u << 2;
    static constexpr uint16_t META_CONTROL = 1u << 3;
    static constexpr uint16_t META_COND_BRANCH = 1u << 4;
    static constexpr uint16_t META_TWO_SRC = 1u << 5;
    static constexpr uint16_t META_NOP = 1u << 6;

    Opcode op = Opcode::HALT;
    /** Raw register fields as encoded. */
    RegIndex ra = 31;
    RegIndex rb = 31;
    RegIndex rc = 31;
    /** True when the operate second source is an 8-bit literal. */
    bool useLiteral = false;
    uint8_t literal = 0;
    /** Sign-extended displacement (memory: 16-bit; branch: 21-bit). */
    int32_t disp = 0;

    /**
     * Operand-property cache, filled by finalize(). The decoder and
     * the make* constructors finalize every instruction they hand
     * out, so replay-path queries are flag tests and struct copies;
     * a raw aggregate-built instance (meta == 0) still answers every
     * accessor through the compute path below.
     */
    uint16_t meta = 0;
    RegIndex destCache = NO_REG;
    uint8_t memSizeCache = 0;
    SrcList srcCache;
    SrcList uniqCache;

    const OpInfo &info() const { return opInfo(op); }
    OpClass opClass() const { return info().opClass; }
    Format format() const { return info().format; }

    bool
    isLoad() const
    {
        return meta & META_VALID ? bool(meta & META_LOAD)
                                 : opClass() == OpClass::MemRead;
    }
    bool
    isStore() const
    {
        return meta & META_VALID ? bool(meta & META_STORE)
                                 : opClass() == OpClass::MemWrite;
    }
    bool isMemRef() const { return isLoad() || isStore(); }
    bool
    isControl() const
    {
        if (meta & META_VALID)
            return meta & META_CONTROL;
        return format() == Format::Branch || format() == Format::Jump;
    }
    bool
    isCondBranch() const
    {
        if (meta & META_VALID)
            return meta & META_COND_BRANCH;
        return format() == Format::Branch && op != Opcode::BR
            && op != Opcode::BSR;
    }
    bool
    isUncondControl() const
    {
        return isControl() && !isCondBranch();
    }
    bool isCall() const { return op == Opcode::BSR || op == Opcode::JSR; }
    bool isReturn() const { return op == Opcode::RET; }
    bool isIndirect() const { return format() == Format::Jump; }
    bool isHalt() const { return op == Opcode::HALT; }

    /** Access size in bytes for memory references. */
    unsigned
    memSize() const
    {
        return meta & META_VALID ? memSizeCache : computeMemSize();
    }

    unsigned
    computeMemSize() const
    {
        switch (op) {
          case Opcode::LDBU: case Opcode::STB: return 1;
          case Opcode::LDW: case Opcode::STW: return 2;
          case Opcode::LDL: case Opcode::STL: return 4;
          case Opcode::LDQ: case Opcode::STQ:
          case Opcode::LDF: case Opcode::STF: return 8;
          default: return 0;
        }
    }

    /** True when the destination register field is a fp register. */
    bool
    destIsFp() const
    {
        switch (op) {
          case Opcode::ADDF: case Opcode::SUBF: case Opcode::MULF:
          case Opcode::DIVF: case Opcode::CMPFEQ: case Opcode::CMPFLT:
          case Opcode::CMPFLE: case Opcode::SQRTF: case Opcode::ITOF:
          case Opcode::LDF:
            return true;
          default:
            return false;
        }
    }

    /** True for fp-operate ops whose register fields name f regs. */
    bool
    fpSources() const
    {
        switch (op) {
          case Opcode::ADDF: case Opcode::SUBF: case Opcode::MULF:
          case Opcode::DIVF: case Opcode::CMPFEQ: case Opcode::CMPFLT:
          case Opcode::CMPFLE: case Opcode::SQRTF: case Opcode::FTOI:
            return true;
          default:
            return false;
        }
    }

    /**
     * Unified-id destination register, or NO_REG when the format has
     * none. A zero-register destination is returned as-is (callers
     * decide whether to treat it as a discarded write).
     */
    RegIndex
    destReg() const
    {
        return meta & META_VALID ? destCache : computeDestReg();
    }

    RegIndex
    computeDestReg() const
    {
        if (!info().writesDest)
            return NO_REG;
        switch (format()) {
          case Format::Operate:
            return destIsFp() ? unifiedFp(rc) : unifiedInt(rc);
          case Format::Memory:
            // Loads and LDA/LDAH write ra.
            return destIsFp() ? unifiedFp(ra) : unifiedInt(ra);
          case Format::Branch:
          case Format::Jump:
            // Link register write (ra).
            return unifiedInt(ra);
          default:
            return NO_REG;
        }
    }

    /** Unified-id source register fields, in left/right format order. */
    SrcList
    srcRegs() const
    {
        return meta & META_VALID ? srcCache : computeSrcRegs();
    }

    SrcList
    computeSrcRegs() const
    {
        SrcList s;
        switch (format()) {
          case Format::Operate:
            if (info().numSrcFields >= 1) {
                s.push(fpSources() ? unifiedFp(ra) : unifiedInt(ra));
            }
            if (info().numSrcFields >= 2 && !useLiteral) {
                s.push(fpSources() ? unifiedFp(rb) : unifiedInt(rb));
            }
            break;
          case Format::Memory:
            if (isStore()) {
                // Store data (ra; fp for STF) then base (rb). The
                // data operand is the *left* field, matching the
                // assembly order "stq ra, disp(rb)".
                s.push(op == Opcode::STF ? unifiedFp(ra)
                                         : unifiedInt(ra));
                s.push(unifiedInt(rb));
            } else {
                // Loads and LDA/LDAH read only the base register.
                s.push(unifiedInt(rb));
            }
            break;
          case Format::Branch:
            if (info().numSrcFields >= 1)
                s.push(unifiedInt(ra));
            break;
          case Format::Jump:
            s.push(unifiedInt(rb));
            break;
          case Format::System:
            if (op == Opcode::OUT)
                s.push(unifiedInt(ra));
            break;
        }
        return s;
    }

    /**
     * Source registers that create true dependences: zero registers
     * removed and duplicates collapsed. The paper's "2-source
     * instructions" are exactly those with uniqueSrcRegs().count == 2.
     */
    SrcList
    uniqueSrcRegs() const
    {
        return meta & META_VALID ? uniqCache : computeUniqueSrcRegs();
    }

    SrcList
    computeUniqueSrcRegs() const
    {
        SrcList raw = computeSrcRegs();
        SrcList out;
        for (unsigned i = 0; i < raw.count; ++i) {
            RegIndex r = raw.regs[i];
            if (isZeroReg(r))
                continue;
            bool dup = false;
            for (unsigned j = 0; j < out.count; ++j)
                if (out.regs[j] == r)
                    dup = true;
            if (!dup)
                out.push(r);
        }
        return out;
    }

    /**
     * Number of source *register fields* present in this encoding
     * instance (a literal operate has one). Stores report 2; see
     * isStore() for the paper's separate treatment.
     */
    unsigned
    numSrcFields() const
    {
        unsigned n = info().numSrcFields;
        if (format() == Format::Operate && useLiteral && n == 2)
            return 1;
        return n;
    }

    /**
     * True for the paper's "2-source format" class: two register
     * source fields and not a store (stores are classified
     * separately, Figure 2).
     */
    bool
    isTwoSourceFormat() const
    {
        if (meta & META_VALID)
            return meta & META_TWO_SRC;
        return numSrcFields() == 2 && !isStore();
    }

    /**
     * True for 2-source-format nops: writes to a zero register (e.g.
     * bis r31,r31,r31), eliminated by the decoder without execution.
     */
    bool
    isNop() const
    {
        if (meta & META_VALID)
            return meta & META_NOP;
        if (format() != Format::Operate || !info().writesDest)
            return false;
        RegIndex d = computeDestReg();
        return d != NO_REG && isZeroReg(d);
    }

    /**
     * Precompute the operand-property cache. Idempotent; must be
     * re-run if op / register fields / useLiteral change afterwards.
     */
    void
    finalize()
    {
        srcCache = computeSrcRegs();
        uniqCache = computeUniqueSrcRegs();
        destCache = computeDestReg();
        memSizeCache = uint8_t(computeMemSize());
        uint16_t m = META_VALID;
        if (opClass() == OpClass::MemRead)
            m |= META_LOAD;
        if (opClass() == OpClass::MemWrite)
            m |= META_STORE;
        if (format() == Format::Branch || format() == Format::Jump)
            m |= META_CONTROL;
        if (format() == Format::Branch && op != Opcode::BR
            && op != Opcode::BSR) {
            m |= META_COND_BRANCH;
        }
        if (numSrcFields() == 2 && !(m & META_STORE))
            m |= META_TWO_SRC;
        if (format() == Format::Operate && info().writesDest
            && destCache != NO_REG && isZeroReg(destCache)) {
            m |= META_NOP;
        }
        meta = m;
    }

    /** Disassemble to assembly text. */
    std::string disassemble() const;
};

// --- Convenience constructors used by the assembler and tests. ---

/** rc <- ra OP rb. */
StaticInst makeOp(Opcode op, RegIndex ra, RegIndex rb, RegIndex rc);
/** rc <- ra OP literal. */
StaticInst makeOpImm(Opcode op, RegIndex ra, uint8_t lit, RegIndex rc);
/** Memory / LDA format: ra, disp(rb). */
StaticInst makeMem(Opcode op, RegIndex ra, RegIndex rb, int32_t disp);
/** Branch format: op ra, disp (disp in instruction words). */
StaticInst makeBranch(Opcode op, RegIndex ra, int32_t disp);
/** Jump format: op ra, (rb). */
StaticInst makeJump(Opcode op, RegIndex ra, RegIndex rb);
/** System format (HALT, OUT). */
StaticInst makeSystem(Opcode op, RegIndex ra = 31);
/** Canonical nop: bis r31, r31, r31. */
StaticInst makeNop();

} // namespace hpa::isa

#endif // HPA_ISA_STATIC_INST_HH
