/**
 * @file
 * Semantic opcode set and operation classes for HPA-ISA.
 *
 * The ISA deliberately mirrors the structure the paper relies on for
 * the Alpha AXP: instruction formats carry 0, 1 or 2 source register
 * fields plus at most one destination; there is no MEM[reg+reg]
 * addressing mode; and zero registers allow 2-source *formats* to
 * encode fewer *unique* sources (including 2-source-format nops).
 */

#ifndef HPA_ISA_OPCODES_HH
#define HPA_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace hpa::isa
{

/** Instruction encoding formats. */
enum class Format : uint8_t
{
    Operate,    ///< rc <- ra FUNC rb (or 8-bit literal in place of rb)
    Memory,     ///< ra <-> MEM[rb + sext(disp16)]; also LDA/LDAH
    Branch,     ///< conditional/unconditional pc-relative, disp21
    Jump,       ///< ra <- retaddr; pc <- rb
    System,     ///< HALT / OUT / NOP encodings without register fields
};

/** Functional-unit class an instruction executes on (Table 1). */
enum class OpClass : uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    MemRead,    ///< load: address generation + data cache access
    MemWrite,   ///< store: address generation; data written at commit
    Branch,     ///< executes on an integer ALU
    System,     ///< HALT/OUT; single-cycle, serializing at commit
    NumOpClasses,
};

/** Semantic opcodes after decode. */
enum class Opcode : uint8_t
{
    // Integer operate (register or 8-bit literal second source).
    ADD, SUB, MUL, DIV, REM,
    AND, BIS, XOR, BIC, ORNOT, EQV,
    SLL, SRL, SRA,
    CMPEQ, CMPLT, CMPLE, CMPULT, CMPULE,
    S4ADD, S8ADD,
    // Floating-point operate (f registers only except ITOF/FTOI).
    ADDF, SUBF, MULF, DIVF,
    CMPFEQ, CMPFLT, CMPFLE,
    SQRTF,
    ITOF,   ///< fc <- (double)ra   (int source, fp destination)
    FTOI,   ///< rc <- (int64)trunc(fa)  (fp source, int destination)
    // Memory.
    LDA,    ///< ra <- rb + sext(disp16)
    LDAH,   ///< ra <- rb + (sext(disp16) << 16)
    LDBU,   ///< ra <- zext(MEM1[rb + disp])
    LDW,    ///< ra <- sext(MEM2[rb + disp])
    LDL,    ///< ra <- sext(MEM4[rb + disp])
    LDQ,    ///< ra <- MEM8[rb + disp]
    LDF,    ///< fa <- MEM8[rb + disp] (double)
    STB, STW, STL, STQ,
    STF,
    // Control.
    BR,     ///< unconditional, ra <- retaddr (usually r31)
    BSR,    ///< call, ra <- retaddr
    BEQ, BNE, BLT, BLE, BGT, BGE,
    BLBC,   ///< branch if low bit clear
    BLBS,   ///< branch if low bit set
    JMP,    ///< indirect jump, ra <- retaddr, pc <- rb
    JSR,    ///< indirect call
    RET,    ///< indirect return (pops predictor RAS)
    // System.
    HALT,   ///< stop the program
    OUT,    ///< append low byte of ra to the emulator console
    NumOpcodes,
};

/** Static properties of a semantic opcode. */
struct OpInfo
{
    std::string_view mnemonic;
    Format format;
    OpClass opClass;
    /** Number of source *register fields* in the format (0..2). */
    uint8_t numSrcFields;
    bool writesDest;
};

/** Property table lookup. */
const OpInfo &opInfo(Opcode op);

/** Execution latency, in cycles, for each op class (Table 1). */
unsigned opClassLatency(OpClass cls);

/** True when the op class is handled by a non-pipelined divider. */
bool opClassUnpipelined(OpClass cls);

} // namespace hpa::isa

#endif // HPA_ISA_OPCODES_HH
