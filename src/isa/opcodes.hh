/**
 * @file
 * Semantic opcode set and operation classes for HPA-ISA.
 *
 * The ISA deliberately mirrors the structure the paper relies on for
 * the Alpha AXP: instruction formats carry 0, 1 or 2 source register
 * fields plus at most one destination; there is no MEM[reg+reg]
 * addressing mode; and zero registers allow 2-source *formats* to
 * encode fewer *unique* sources (including 2-source-format nops).
 */

#ifndef HPA_ISA_OPCODES_HH
#define HPA_ISA_OPCODES_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace hpa::isa
{

/** Instruction encoding formats. */
enum class Format : uint8_t
{
    Operate,    ///< rc <- ra FUNC rb (or 8-bit literal in place of rb)
    Memory,     ///< ra <-> MEM[rb + sext(disp16)]; also LDA/LDAH
    Branch,     ///< conditional/unconditional pc-relative, disp21
    Jump,       ///< ra <- retaddr; pc <- rb
    System,     ///< HALT / OUT / NOP encodings without register fields
};

/** Functional-unit class an instruction executes on (Table 1). */
enum class OpClass : uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    MemRead,    ///< load: address generation + data cache access
    MemWrite,   ///< store: address generation; data written at commit
    Branch,     ///< executes on an integer ALU
    System,     ///< HALT/OUT; single-cycle, serializing at commit
    NumOpClasses,
};

/** Semantic opcodes after decode. */
enum class Opcode : uint8_t
{
    // Integer operate (register or 8-bit literal second source).
    ADD, SUB, MUL, DIV, REM,
    AND, BIS, XOR, BIC, ORNOT, EQV,
    SLL, SRL, SRA,
    CMPEQ, CMPLT, CMPLE, CMPULT, CMPULE,
    S4ADD, S8ADD,
    // Floating-point operate (f registers only except ITOF/FTOI).
    ADDF, SUBF, MULF, DIVF,
    CMPFEQ, CMPFLT, CMPFLE,
    SQRTF,
    ITOF,   ///< fc <- (double)ra   (int source, fp destination)
    FTOI,   ///< rc <- (int64)trunc(fa)  (fp source, int destination)
    // Memory.
    LDA,    ///< ra <- rb + sext(disp16)
    LDAH,   ///< ra <- rb + (sext(disp16) << 16)
    LDBU,   ///< ra <- zext(MEM1[rb + disp])
    LDW,    ///< ra <- sext(MEM2[rb + disp])
    LDL,    ///< ra <- sext(MEM4[rb + disp])
    LDQ,    ///< ra <- MEM8[rb + disp]
    LDF,    ///< fa <- MEM8[rb + disp] (double)
    STB, STW, STL, STQ,
    STF,
    // Control.
    BR,     ///< unconditional, ra <- retaddr (usually r31)
    BSR,    ///< call, ra <- retaddr
    BEQ, BNE, BLT, BLE, BGT, BGE,
    BLBC,   ///< branch if low bit clear
    BLBS,   ///< branch if low bit set
    JMP,    ///< indirect jump, ra <- retaddr, pc <- rb
    JSR,    ///< indirect call
    RET,    ///< indirect return (pops predictor RAS)
    // System.
    HALT,   ///< stop the program
    OUT,    ///< append low byte of ra to the emulator console
    NumOpcodes,
};

/** Static properties of a semantic opcode. */
struct OpInfo
{
    std::string_view mnemonic;
    Format format;
    OpClass opClass;
    /** Number of source *register fields* in the format (0..2). */
    uint8_t numSrcFields;
    bool writesDest;
};

namespace detail
{

/** Compile-time opcode property table (indexed by Opcode). */
std::array<OpInfo, static_cast<size_t>(Opcode::NumOpcodes)>
constexpr buildOpTable()
{
    constexpr auto N = static_cast<size_t>(Opcode::NumOpcodes);
    std::array<OpInfo, N> t{};
    auto set = [&t](Opcode op, std::string_view m, Format f, OpClass c,
                    uint8_t nsrc, bool wd) {
        t[static_cast<size_t>(op)] = OpInfo{m, f, c, nsrc, wd};
    };

    // Integer operate: rc <- ra OP rb. Two source fields, one dest.
    set(Opcode::ADD,    "add",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::SUB,    "sub",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::MUL,    "mul",    Format::Operate, OpClass::IntMult, 2, true);
    set(Opcode::DIV,    "div",    Format::Operate, OpClass::IntDiv, 2, true);
    set(Opcode::REM,    "rem",    Format::Operate, OpClass::IntDiv, 2, true);
    set(Opcode::AND,    "and",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::BIS,    "bis",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::XOR,    "xor",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::BIC,    "bic",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::ORNOT,  "ornot",  Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::EQV,    "eqv",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::SLL,    "sll",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::SRL,    "srl",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::SRA,    "sra",    Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::CMPEQ,  "cmpeq",  Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::CMPLT,  "cmplt",  Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::CMPLE,  "cmple",  Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::CMPULT, "cmpult", Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::CMPULE, "cmpule", Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::S4ADD,  "s4add",  Format::Operate, OpClass::IntAlu, 2, true);
    set(Opcode::S8ADD,  "s8add",  Format::Operate, OpClass::IntAlu, 2, true);

    // Floating-point operate.
    set(Opcode::ADDF,   "addf",   Format::Operate, OpClass::FpAlu, 2, true);
    set(Opcode::SUBF,   "subf",   Format::Operate, OpClass::FpAlu, 2, true);
    set(Opcode::MULF,   "mulf",   Format::Operate, OpClass::FpMult, 2, true);
    set(Opcode::DIVF,   "divf",   Format::Operate, OpClass::FpDiv, 2, true);
    set(Opcode::CMPFEQ, "cmpfeq", Format::Operate, OpClass::FpAlu, 2, true);
    set(Opcode::CMPFLT, "cmpflt", Format::Operate, OpClass::FpAlu, 2, true);
    set(Opcode::CMPFLE, "cmpfle", Format::Operate, OpClass::FpAlu, 2, true);
    set(Opcode::SQRTF,  "sqrtf",  Format::Operate, OpClass::FpDiv, 1, true);
    set(Opcode::ITOF,   "itof",   Format::Operate, OpClass::FpAlu, 1, true);
    set(Opcode::FTOI,   "ftoi",   Format::Operate, OpClass::FpAlu, 1, true);

    // Memory. Loads/LDA read rb (base); stores read ra (data) + rb.
    set(Opcode::LDA,    "lda",    Format::Memory, OpClass::IntAlu, 1, true);
    set(Opcode::LDAH,   "ldah",   Format::Memory, OpClass::IntAlu, 1, true);
    set(Opcode::LDBU,   "ldbu",   Format::Memory, OpClass::MemRead, 1, true);
    set(Opcode::LDW,    "ldw",    Format::Memory, OpClass::MemRead, 1, true);
    set(Opcode::LDL,    "ldl",    Format::Memory, OpClass::MemRead, 1, true);
    set(Opcode::LDQ,    "ldq",    Format::Memory, OpClass::MemRead, 1, true);
    set(Opcode::LDF,    "ldf",    Format::Memory, OpClass::MemRead, 1, true);
    set(Opcode::STB,    "stb",    Format::Memory, OpClass::MemWrite, 2, false);
    set(Opcode::STW,    "stw",    Format::Memory, OpClass::MemWrite, 2, false);
    set(Opcode::STL,    "stl",    Format::Memory, OpClass::MemWrite, 2, false);
    set(Opcode::STQ,    "stq",    Format::Memory, OpClass::MemWrite, 2, false);
    set(Opcode::STF,    "stf",    Format::Memory, OpClass::MemWrite, 2, false);

    // Control. Conditional branches read ra; BR/BSR write ra (link).
    set(Opcode::BR,     "br",     Format::Branch, OpClass::Branch, 0, true);
    set(Opcode::BSR,    "bsr",    Format::Branch, OpClass::Branch, 0, true);
    set(Opcode::BEQ,    "beq",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BNE,    "bne",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BLT,    "blt",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BLE,    "ble",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BGT,    "bgt",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BGE,    "bge",    Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BLBC,   "blbc",   Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::BLBS,   "blbs",   Format::Branch, OpClass::Branch, 1, false);
    set(Opcode::JMP,    "jmp",    Format::Jump, OpClass::Branch, 1, true);
    set(Opcode::JSR,    "jsr",    Format::Jump, OpClass::Branch, 1, true);
    set(Opcode::RET,    "ret",    Format::Jump, OpClass::Branch, 1, true);

    set(Opcode::HALT,   "halt",   Format::System, OpClass::System, 0, false);
    set(Opcode::OUT,    "out",    Format::System, OpClass::System, 1, false);
    return t;
}

inline constexpr auto opTable = buildOpTable();

} // namespace detail

/**
 * Property table lookup. Header-inline on purpose: the core consults
 * opcode properties (via StaticInst::isLoad() and friends) hundreds
 * of times per simulated cycle, and an out-of-line call here showed
 * up as one of the hottest symbols in whole-sweep profiles.
 */
inline const OpInfo &
opInfo(Opcode op)
{
    return detail::opTable[static_cast<size_t>(op)];
}

/** Execution latency, in cycles, for each op class (Table 1).
 *  MemRead latency is address generation only; cache access latency
 *  is added by the memory system model. */
inline unsigned
opClassLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMult: return 3;
      case OpClass::IntDiv: return 20;
      case OpClass::FpAlu: return 2;
      case OpClass::FpMult: return 4;
      case OpClass::FpDiv: return 12;
      case OpClass::MemRead: return 1;
      case OpClass::MemWrite: return 1;
      case OpClass::Branch: return 1;
      case OpClass::System: return 1;
      default: return 1;
    }
}

/** True when the op class is handled by a non-pipelined divider. */
inline bool
opClassUnpipelined(OpClass cls)
{
    return cls == OpClass::IntDiv || cls == OpClass::FpDiv;
}

} // namespace hpa::isa

#endif // HPA_ISA_OPCODES_HH
