#include "isa/static_inst.hh"

#include <cassert>

// The operand-property accessors (srcRegs, destReg, memSize, ...)
// are defined inline in the header: the core queries them hundreds
// of times per simulated cycle and out-of-line calls dominated
// whole-sweep profiles. Only the assembler-facing constructors and
// disassembly (in disasm.cc) stay out of line.

namespace hpa::isa
{

StaticInst
makeOp(Opcode op, RegIndex ra, RegIndex rb, RegIndex rc)
{
    assert(opInfo(op).format == Format::Operate);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.rb = rb;
    si.rc = rc;
    si.finalize();
    return si;
}

StaticInst
makeOpImm(Opcode op, RegIndex ra, uint8_t lit, RegIndex rc)
{
    assert(opInfo(op).format == Format::Operate);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.rc = rc;
    si.useLiteral = true;
    si.literal = lit;
    si.finalize();
    return si;
}

StaticInst
makeMem(Opcode op, RegIndex ra, RegIndex rb, int32_t disp)
{
    assert(opInfo(op).format == Format::Memory);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.rb = rb;
    si.disp = disp;
    si.finalize();
    return si;
}

StaticInst
makeBranch(Opcode op, RegIndex ra, int32_t disp)
{
    assert(opInfo(op).format == Format::Branch);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.disp = disp;
    si.finalize();
    return si;
}

StaticInst
makeJump(Opcode op, RegIndex ra, RegIndex rb)
{
    assert(opInfo(op).format == Format::Jump);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.rb = rb;
    si.finalize();
    return si;
}

StaticInst
makeSystem(Opcode op, RegIndex ra)
{
    assert(opInfo(op).format == Format::System);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.finalize();
    return si;
}

StaticInst
makeNop()
{
    return makeOp(Opcode::BIS, INT_ZERO_REG, INT_ZERO_REG, INT_ZERO_REG);
}

} // namespace hpa::isa
