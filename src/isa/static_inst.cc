#include "isa/static_inst.hh"

#include <cassert>

namespace hpa::isa
{

unsigned
StaticInst::memSize() const
{
    switch (op) {
      case Opcode::LDBU: case Opcode::STB: return 1;
      case Opcode::LDW: case Opcode::STW: return 2;
      case Opcode::LDL: case Opcode::STL: return 4;
      case Opcode::LDQ: case Opcode::STQ:
      case Opcode::LDF: case Opcode::STF: return 8;
      default: return 0;
    }
}

bool
StaticInst::destIsFp() const
{
    switch (op) {
      case Opcode::ADDF: case Opcode::SUBF: case Opcode::MULF:
      case Opcode::DIVF: case Opcode::CMPFEQ: case Opcode::CMPFLT:
      case Opcode::CMPFLE: case Opcode::SQRTF: case Opcode::ITOF:
      case Opcode::LDF:
        return true;
      default:
        return false;
    }
}

RegIndex
StaticInst::destReg() const
{
    if (!info().writesDest)
        return NO_REG;
    switch (format()) {
      case Format::Operate:
        return destIsFp() ? unifiedFp(rc) : unifiedInt(rc);
      case Format::Memory:
        // Loads and LDA/LDAH write ra.
        return destIsFp() ? unifiedFp(ra) : unifiedInt(ra);
      case Format::Branch:
      case Format::Jump:
        // Link register write (ra).
        return unifiedInt(ra);
      default:
        return NO_REG;
    }
}

namespace
{

/** True for fp-operate ops whose register fields name f registers. */
bool
fpSources(Opcode op)
{
    switch (op) {
      case Opcode::ADDF: case Opcode::SUBF: case Opcode::MULF:
      case Opcode::DIVF: case Opcode::CMPFEQ: case Opcode::CMPFLT:
      case Opcode::CMPFLE: case Opcode::SQRTF: case Opcode::FTOI:
        return true;
      default:
        return false;
    }
}

} // namespace

SrcList
StaticInst::srcRegs() const
{
    SrcList s;
    switch (format()) {
      case Format::Operate:
        if (info().numSrcFields >= 1) {
            s.push(fpSources(op) ? unifiedFp(ra) : unifiedInt(ra));
        }
        if (info().numSrcFields >= 2 && !useLiteral) {
            s.push(fpSources(op) ? unifiedFp(rb) : unifiedInt(rb));
        }
        break;
      case Format::Memory:
        if (isStore()) {
            // Store data (ra; fp for STF) then base (rb). The data
            // operand is the *left* field, matching the assembly
            // order "stq ra, disp(rb)".
            s.push(op == Opcode::STF ? unifiedFp(ra) : unifiedInt(ra));
            s.push(unifiedInt(rb));
        } else {
            // Loads and LDA/LDAH read only the base register.
            s.push(unifiedInt(rb));
        }
        break;
      case Format::Branch:
        if (info().numSrcFields >= 1)
            s.push(unifiedInt(ra));
        break;
      case Format::Jump:
        s.push(unifiedInt(rb));
        break;
      case Format::System:
        if (op == Opcode::OUT)
            s.push(unifiedInt(ra));
        break;
    }
    return s;
}

SrcList
StaticInst::uniqueSrcRegs() const
{
    SrcList raw = srcRegs();
    SrcList out;
    for (unsigned i = 0; i < raw.count; ++i) {
        RegIndex r = raw.regs[i];
        if (isZeroReg(r))
            continue;
        bool dup = false;
        for (unsigned j = 0; j < out.count; ++j)
            if (out.regs[j] == r)
                dup = true;
        if (!dup)
            out.push(r);
    }
    return out;
}

unsigned
StaticInst::numSrcFields() const
{
    unsigned n = info().numSrcFields;
    if (format() == Format::Operate && useLiteral && n == 2)
        return 1;
    return n;
}

bool
StaticInst::isNop() const
{
    if (format() != Format::Operate || !info().writesDest)
        return false;
    RegIndex d = destReg();
    return d != NO_REG && isZeroReg(d);
}

StaticInst
makeOp(Opcode op, RegIndex ra, RegIndex rb, RegIndex rc)
{
    assert(opInfo(op).format == Format::Operate);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.rb = rb;
    si.rc = rc;
    return si;
}

StaticInst
makeOpImm(Opcode op, RegIndex ra, uint8_t lit, RegIndex rc)
{
    assert(opInfo(op).format == Format::Operate);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.rc = rc;
    si.useLiteral = true;
    si.literal = lit;
    return si;
}

StaticInst
makeMem(Opcode op, RegIndex ra, RegIndex rb, int32_t disp)
{
    assert(opInfo(op).format == Format::Memory);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.rb = rb;
    si.disp = disp;
    return si;
}

StaticInst
makeBranch(Opcode op, RegIndex ra, int32_t disp)
{
    assert(opInfo(op).format == Format::Branch);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.disp = disp;
    return si;
}

StaticInst
makeJump(Opcode op, RegIndex ra, RegIndex rb)
{
    assert(opInfo(op).format == Format::Jump);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.rb = rb;
    return si;
}

StaticInst
makeSystem(Opcode op, RegIndex ra)
{
    assert(opInfo(op).format == Format::System);
    StaticInst si;
    si.op = op;
    si.ra = ra;
    return si;
}

StaticInst
makeNop()
{
    return makeOp(Opcode::BIS, INT_ZERO_REG, INT_ZERO_REG, INT_ZERO_REG);
}

} // namespace hpa::isa
