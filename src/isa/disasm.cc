#include <sstream>

#include "isa/static_inst.hh"

namespace hpa::isa
{

std::string
StaticInst::disassemble() const
{
    std::ostringstream os;
    os << info().mnemonic;
    switch (format()) {
      case Format::Operate: {
        bool fp_src = destIsFp() && op != Opcode::ITOF;
        char s = fp_src ? 'f' : 'r';
        char s2 = op == Opcode::FTOI ? 'f' : s;
        char d = destIsFp() ? 'f' : 'r';
        os << " " << s2 << unsigned(ra);
        if (info().numSrcFields >= 2) {
            if (useLiteral)
                os << ", #" << unsigned(literal);
            else
                os << ", " << s << unsigned(rb);
        }
        os << ", " << d << unsigned(rc);
        break;
      }
      case Format::Memory: {
        char c = (op == Opcode::LDF || op == Opcode::STF) ? 'f' : 'r';
        os << " " << c << unsigned(ra) << ", " << disp << "(r"
           << unsigned(rb) << ")";
        break;
      }
      case Format::Branch:
        if (info().numSrcFields >= 1 || info().writesDest)
            os << " r" << unsigned(ra) << ",";
        os << " " << disp;
        break;
      case Format::Jump:
        os << " r" << unsigned(ra) << ", (r" << unsigned(rb) << ")";
        break;
      case Format::System:
        if (op == Opcode::OUT)
            os << " r" << unsigned(ra);
        break;
    }
    return os.str();
}

} // namespace hpa::isa
