#include "core/inst_source.hh"

namespace hpa::core
{

using isa::Opcode;
using isa::RegIndex;

SyntheticSource::SyntheticSource(const SyntheticParams &params)
    : p_(params), rng_(params.seed), ring_(RECORD_LIFETIME),
      pc_(0x1000)
{
    // Seed the recent-destination window so early sources resolve.
    for (unsigned r = 1; r <= 8; ++r)
        recentDests_.push_back(static_cast<RegIndex>(r));
}

double
SyntheticSource::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
}

RegIndex
SyntheticSource::pickSrc()
{
    if (uniform() < p_.zero_reg_frac)
        return isa::INT_ZERO_REG;
    // Geometric dependence distance over recently written registers.
    size_t d = 0;
    while (uniform() > p_.dep_distance_p
           && d + 1 < recentDests_.size())
        ++d;
    return recentDests_[recentDests_.size() - 1 - d];
}

RegIndex
SyntheticSource::pickDest()
{
    auto r = static_cast<RegIndex>(
        1 + std::uniform_int_distribution<int>(0, 28)(rng_));
    recentDests_.push_back(r);
    if (recentDests_.size() > 24)
        recentDests_.erase(recentDests_.begin());
    return r;
}

const func::ExecRecord *
SyntheticSource::next()
{
    if (produced_ >= p_.num_insts)
        return nullptr;
    ++produced_;

    func::ExecRecord &rec = ring_[produced_ % RECORD_LIFETIME];
    rec = func::ExecRecord{};
    rec.pc = pc_;
    uint64_t next_pc = pc_ + 4;

    double roll = uniform();
    if (produced_ == p_.num_insts) {
        rec.inst = isa::makeSystem(Opcode::HALT);
    } else if (roll < p_.load_frac) {
        rec.inst = isa::makeMem(Opcode::LDQ, pickDest(), pickSrc(), 0);
        rec.effAddr = 0x200000
            + (rng_() % p_.mem_span & ~7ull);
    } else if (roll < p_.load_frac + p_.store_frac) {
        RegIndex data = pickSrc();
        RegIndex base = pickSrc();
        rec.inst = isa::makeMem(Opcode::STQ, data, base, 0);
        rec.effAddr = 0x200000
            + (rng_() % p_.mem_span & ~7ull);
    } else if (roll < p_.load_frac + p_.store_frac + p_.branch_frac) {
        rec.inst = isa::makeBranch(Opcode::BNE, pickSrc(), 0);
        if (uniform() < p_.taken_frac) {
            rec.taken = true;
            // Jump within a bounded synthetic text region.
            int64_t hop =
                std::uniform_int_distribution<int64_t>(-64, 64)(rng_);
            next_pc = 0x1000
                + (((pc_ - 0x1000) / 4 + 4096 + hop) % 4096) * 4;
        }
    } else if (uniform() < p_.two_source_frac) {
        rec.inst = isa::makeOp(Opcode::ADD, pickSrc(), pickSrc(),
                               pickDest());
    } else {
        rec.inst = isa::makeOpImm(Opcode::ADD, pickSrc(),
                                  static_cast<uint8_t>(rng_() & 0xFF),
                                  pickDest());
    }

    rec.nextPc = next_pc;
    pc_ = next_pc;
    return &rec;
}

} // namespace hpa::core
