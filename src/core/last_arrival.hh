/**
 * @file
 * PC-indexed, direct-mapped bimodal last-arriving-operand predictor
 * with 2-bit saturating counters (Section 3.2). Predicts whether the
 * left or right source operand of a 2-pending-source instruction will
 * arrive last, steering operand placement for sequential wakeup and
 * comparator placement for tag elimination.
 */

#ifndef HPA_CORE_LAST_ARRIVAL_HH
#define HPA_CORE_LAST_ARRIVAL_HH

#include <cstdint>
#include <vector>

#include "stats/stats.hh"

namespace hpa::core
{

/** 2-bit-counter last-arriving operand predictor. */
class LastArrivalPredictor
{
  public:
    explicit LastArrivalPredictor(unsigned entries);

    /** @return true when the right-hand operand is predicted last.
     *  Header-inline: consulted at dispatch for every 2-pending
     *  instruction on the sequential-wakeup/tag-elim paths (it
     *  decides which operand the masked engine's slow plane and the
     *  reference chains watch). */
    bool
    predictRightLast(uint64_t pc) const
    {
        return table_[index(pc)] >= 2;
    }

    /**
     * Train with the observed arrival order. Header-inline: runs
     * once per resolved 2-pending instruction (noteSecondWake).
     * @param right_last the right operand actually arrived last
     */
    void
    update(uint64_t pc, bool right_last)
    {
        uint8_t &c = table_[index(pc)];
        if (right_last && c < 3)
            ++c;
        else if (!right_last && c > 0)
            --c;
    }

    unsigned entries() const { return unsigned(table_.size()); }

  private:
    std::vector<uint8_t> table_;

    uint64_t index(uint64_t pc) const { return (pc >> 2) & mask_; }
    uint64_t mask_;
};

/**
 * Passive accuracy monitor running shadow predictors of the table
 * sizes swept in Figure 7, plus the simultaneous-wakeup fraction.
 */
class LastArrivalMonitor
{
  public:
    static constexpr unsigned NUM_SIZES = 4;
    /** Table sizes swept by Figure 7. */
    static const unsigned SIZES[NUM_SIZES];

    LastArrivalMonitor();

    /**
     * Record the shadow predictions for an instruction at dispatch.
     * @return bitmask, bit i set = shadow predictor i says right-last
     */
    uint8_t snapshot(uint64_t pc) const;

    /**
     * Score a resolved 2-pending instruction and train the shadows.
     * @param pred_bits mask captured at dispatch
     * @param simultaneous both operands woke in the same cycle
     * @param right_last right operand arrived last (ignored when
     *        simultaneous)
     */
    void resolve(uint64_t pc, uint8_t pred_bits, bool simultaneous,
                 bool right_last);

    uint64_t samples() const { return samples_; }
    uint64_t simultaneous() const { return simultaneous_; }
    uint64_t correct(unsigned size_idx) const
    {
        return correct_[size_idx];
    }

    /** Prediction accuracy excluding simultaneous wakeups. */
    double accuracy(unsigned size_idx) const;

  private:
    std::vector<LastArrivalPredictor> shadows_;
    uint64_t samples_ = 0;
    uint64_t simultaneous_ = 0;
    uint64_t correct_[NUM_SIZES] = {};
};

} // namespace hpa::core

#endif // HPA_CORE_LAST_ARRIVAL_HH
