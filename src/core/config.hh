/**
 * @file
 * Configuration of the out-of-order core: machine width, window
 * sizes, functional units (Table 1), and the half-price scheme
 * selections evaluated in the paper.
 */

#ifndef HPA_CORE_CONFIG_HH
#define HPA_CORE_CONFIG_HH

#include <string_view>

#include "bpred/bpred.hh"
#include "mem/hierarchy.hh"

namespace hpa::core
{

/** Wakeup-logic organization (Section 3). */
enum class WakeupModel
{
    /** Two tag comparators per entry, both on the wakeup bus. */
    Conventional,
    /**
     * Sequential wakeup with a last-arriving operand predictor: the
     * predicted-last operand is wired to the fast bus, the other to
     * the slow bus (one cycle later).
     */
    Sequential,
    /**
     * Sequential wakeup without a predictor: the right-hand operand
     * is statically assumed last-arriving.
     */
    SequentialNoPred,
    /**
     * Tag elimination (Ernst & Austin): only the predicted-last
     * operand has a comparator; premature issue is detected by a
     * scoreboard and triggers non-selective rescheduling.
     */
    TagElimination,
    /**
     * Load-delay-tracking wakeup (Diavastos & Carlson): broadcast is
     * replaced by per-producer real-time delay counters of bounded
     * width (`dlt_max_delay`). A producer whose remaining latency
     * fits the counter wakes its consumers exactly as a broadcast
     * would; one that saturates the counter falls back to the
     * completion scoreboard, so its consumers wake only when the
     * value is architecturally complete (back-to-back issue lost).
     */
    LoadDelayTracking,
};

/** Register-file read-port organization (Section 4). */
enum class RegfileModel
{
    /** Two read ports per issue slot (base machine). */
    TwoPort,
    /**
     * One read port per issue slot; a 2-source instruction whose
     * operands both come from the register file reads sequentially:
     * +1 cycle latency and its issue slot blocked for one cycle.
     */
    SequentialAccess,
    /**
     * Conventional 2R/slot register file pipelined over one extra
     * stage (Figure 15, middle bars).
     */
    ExtraStage,
    /**
     * Half the total read ports with a fully connected crossbar and
     * global port arbitration across all issued instructions
     * (Figure 15, right bars).
     */
    HalfPortCrossbar,
    /**
     * Half ports + crossbar augmented with an operand prefetch
     * buffer (Los-style read-port reduction): operands whose values
     * sit in the architectural register file at dispatch are read
     * ahead of issue through a small number of dedicated prefetch
     * ports (width/2 per cycle) and parked in a buffer, so they
     * consume no issue-time read port. Issue-time port demand is
     * arbitrated across the crossbar exactly as HalfPortCrossbar.
     */
    PrefetchBuffer,
};

/**
 * Scheduler data-structure engine. Both engines implement the same
 * machine model cycle for cycle — the golden gate pins them
 * bit-identical — so the knob selects a simulator implementation,
 * not an architecture: it never appears in machine names, golden
 * keys, or job-store spec keys.
 */
enum class SchedEngine
{
    /**
     * SoA bitmask engine (issue_window.hh): per-window occupancy/
     * ready/issued bit planes, a producer->consumers dependency
     * matrix walked by wakeup broadcasts, and a branchless
     * tzcnt age-order scan for select. The default.
     */
    Masked,
    /**
     * Reference engine: seq-ordered intrusive slot chains plus
     * pooled per-producer consumer lists (containers.hh). Kept as
     * the bit-identity oracle for the masked engine and as the
     * direct realization of the per-entry policy hooks.
     */
    Reference,
};

/** Scheduling-recovery style for load-latency mispredictions. */
enum class RecoveryModel
{
    /** Alpha 21264-style: squash every instruction in the shadow. */
    NonSelective,
    /** Kill-bus style: squash only dependent instructions. */
    Selective,
};

/**
 * Rename-stage source-lookup port organization. The paper's stated
 * future work (Section 6) extends the half-price idea to register
 * renaming: the map table is read once per source operand, so a
 * machine provisioned for two lookups per instruction can halve its
 * rename ports and let the rare 2-source groups take an extra cycle.
 */
enum class RenameModel
{
    /** Two map-table read ports per dispatch slot (base machine). */
    TwoPort,
    /**
     * One map-table read port per dispatch slot; a dispatch group
     * needing more lookups than ports spills into the next cycle.
     */
    HalfPort,
};

/** Full core configuration; defaults give the 4-wide base machine. */
struct CoreConfig
{
    unsigned width = 4;
    unsigned ruu_size = 64;
    unsigned lsq_size = 32;

    /** Fetch..rename depth; inserted into the window this many
     *  cycles after fetch. */
    unsigned front_end_depth = 6;
    /** SCHED->EXE distance (Disp + RF stages + 1). */
    unsigned sched_to_exec = 3;
    /** Cycles of issue squashed on a load-latency misprediction. */
    unsigned replay_shadow = 2;
    /** Scoreboard detection delay for tag elimination. */
    unsigned tagelim_detect_delay = 1;
    /** Enforced minimum branch misprediction refill (Table 1). */
    unsigned min_branch_penalty = 11;

    WakeupModel wakeup = WakeupModel::Conventional;
    RegfileModel regfile = RegfileModel::TwoPort;
    RecoveryModel recovery = RecoveryModel::NonSelective;
    RenameModel rename = RenameModel::TwoPort;

    /** Scheduler data-structure engine (simulator implementation
     *  choice, result-invariant — see SchedEngine). */
    SchedEngine sched_engine = SchedEngine::Masked;

    /** Last-arriving operand predictor entries (Sections 3.2, 5.1). */
    unsigned lap_entries = 1024;

    /**
     * Load-delay-tracking: widest producer delay (cycles) the
     * per-entry counters can represent. A producer whose remaining
     * latency exceeds this saturates the counter and its consumers
     * wake from the completion scoreboard instead (15 = 4-bit
     * counters). Only read by WakeupModel::LoadDelayTracking.
     */
    unsigned dlt_max_delay = 15;

    /**
     * Cycles a produced value stays on the bypass network (Section
     * 4.2 assumes 1; machines with multi-cycle register-file access
     * can provision additional bypass paths and widen this).
     */
    unsigned bypass_window = 1;

    // --- Robustness knobs (see DESIGN.md "Error handling"). ---

    /**
     * No-forward-progress watchdog: if the window is non-empty and no
     * instruction commits for this many cycles, the core throws
     * hpa::Deadlock with a pipeline-state dump. 0 disables.
     */
    uint64_t watchdog_cycles = 100000;

    /**
     * Periodic scheduler cross-validation: every N cycles the
     * incrementally maintained ready/issued/store lists are re-derived
     * from the window by brute force and compared; a mismatch throws
     * hpa::InvariantViolation naming the diverged list. The pass is
     * O(window) — costless when 0 (the default, one compare/cycle).
     */
    uint64_t check_interval = 0;

    // Functional units (Table 1, 4-wide column).
    unsigned num_int_alu = 4;
    unsigned num_fp_alu = 2;
    unsigned num_int_muldiv = 2;
    unsigned num_fp_muldiv = 2;
    unsigned num_mem_ports = 2;

    bpred::BPredConfig bpred;
    mem::HierarchyConfig mem;

    /** Effective RF pipeline depth added by the ExtraStage model. */
    unsigned
    extraRfStages() const
    {
        return regfile == RegfileModel::ExtraStage ? 1 : 0;
    }

    /** SCHED->EXE distance including any extra RF stage. */
    unsigned
    schedToExec() const
    {
        return sched_to_exec + extraRfStages();
    }

    bool
    sequentialWakeup() const
    {
        return wakeup == WakeupModel::Sequential
            || wakeup == WakeupModel::SequentialNoPred;
    }
};

/** CLI/artifact spelling of a scheduler engine. */
inline const char *
schedEngineName(SchedEngine e)
{
    return e == SchedEngine::Masked ? "masked" : "reference";
}

/** Parse a --sched-engine spelling; @return false when unknown. */
inline bool
parseSchedEngine(std::string_view v, SchedEngine &out)
{
    if (v == "masked")
        out = SchedEngine::Masked;
    else if (v == "reference")
        out = SchedEngine::Reference;
    else
        return false;
    return true;
}

/** The paper's 4-wide base machine (Table 1). */
CoreConfig fourWideConfig();
/** The paper's 8-wide base machine (Table 1). */
CoreConfig eightWideConfig();

} // namespace hpa::core

#endif // HPA_CORE_CONFIG_HH
