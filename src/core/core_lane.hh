/**
 * @file
 * One replay lane of a batched trace sweep: a private TraceSource
 * cursor plus a full Core, bound to a shared immutable
 * CommittedTrace. All mutable per-cell state — the window, the
 * scheduler engine's structures (ready/issued bit planes and the
 * dependency matrix on the masked engine; the seq-ordered chains and
 * pooled consumer lists on the reference engine), the rank-split
 * calendar event queue, the cache/bpred models — lives inside the
 * lane's Core, so any number of lanes can replay one trace
 * concurrently or interleaved: the trace is the only shared data and
 * it is read-only.
 *
 * A lane advances in quanta (tickQuantum) so a batch scheduler
 * (sim::BatchedSimulation) can rotate the decode stream through B
 * machine configs while the just-touched trace region is still
 * cache-resident. Lanes are fully independent — no cross-lane state,
 * no shared mutable cursors — so any interleaving of quanta commits
 * the exact cycle-by-cycle schedule of a solo Core::run(): batching
 * is a data-layout change, not a semantic one.
 */

#ifndef HPA_CORE_CORE_LANE_HH
#define HPA_CORE_CORE_LANE_HH

#include "core/core.hh"
#include "core/inst_source.hh"

namespace hpa::core
{

/** A (TraceSource, Core) pair over a shared committed trace. */
class CoreLane
{
  public:
    /** @param trace shared stream; must outlive the lane. */
    CoreLane(const CoreConfig &cfg, const func::CommittedTrace &trace)
        : source_(trace), core_(cfg, source_)
    {}

    CoreLane(const CoreLane &) = delete;
    CoreLane &operator=(const CoreLane &) = delete;

    Core &core() { return core_; }
    const Core &core() const { return core_; }
    TraceSource &source() { return source_; }

    bool done() const { return core_.done(); }

    /**
     * Advance up to @p quantum cycles, stopping early when the lane
     * finishes or reaches @p max_cycles (0 = unbounded) — the same
     * stop conditions, checked in the same order, as Core::run().
     * @return true while the lane can still advance.
     */
    bool
    tickQuantum(uint64_t quantum, uint64_t max_cycles)
    {
        while (quantum--) {
            if (core_.done())
                return false;
            core_.tick();
            if (max_cycles && core_.cycle() >= max_cycles)
                return false;
        }
        return !core_.done();
    }

    /** Run the lane to completion alone (solo replay path). */
    uint64_t run(uint64_t max_cycles) { return core_.run(max_cycles); }

  private:
    TraceSource source_;
    Core core_;
};

} // namespace hpa::core

#endif // HPA_CORE_CORE_LANE_HH
