/**
 * @file
 * Committed-path instruction sources feeding the timing core: the
 * functional emulator (execution-driven) and a synthetic generator
 * with tunable dataflow statistics for tests and property sweeps.
 */

#ifndef HPA_CORE_INST_SOURCE_HH
#define HPA_CORE_INST_SOURCE_HH

#include <optional>
#include <random>

#include "func/emulator.hh"
#include "func/trace.hh"

namespace hpa::core
{

/** Pull interface for the committed dynamic instruction stream. */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /** Next committed instruction, or nullopt at end of stream. */
    virtual std::optional<func::ExecRecord> next() = 0;
};

/** Drives the core from the functional emulator (execution-driven). */
class EmulatorSource : public InstSource
{
  public:
    /**
     * @param emu emulator positioned at the program entry
     * @param max_insts stop after this many instructions (0: no cap)
     */
    explicit EmulatorSource(func::Emulator &emu, uint64_t max_insts = 0)
        : emu_(emu), maxInsts_(max_insts)
    {}

    std::optional<func::ExecRecord>
    next() override
    {
        if (emu_.halted() || (maxInsts_ && count_ >= maxInsts_))
            return std::nullopt;
        ++count_;
        return emu_.step();
    }

  private:
    func::Emulator &emu_;
    uint64_t maxInsts_;
    uint64_t count_ = 0;
};

/**
 * Replays a pre-captured committed trace (trace-once/replay-many).
 * Holds only a read-only reference plus a cursor, so any number of
 * concurrent cores can replay one shared CommittedTrace; the stream
 * is byte-identical to an EmulatorSource over the same program,
 * fast-forward and budget (see CommittedTrace's replay contract).
 */
class TraceSource : public InstSource
{
  public:
    /** @param trace captured stream; must outlive this source. */
    explicit TraceSource(const func::CommittedTrace &trace)
        : trace_(trace)
    {}

    std::optional<func::ExecRecord>
    next() override
    {
        if (index_ >= trace_.size())
            return std::nullopt;
        return trace_.record(index_++);
    }

  private:
    const func::CommittedTrace &trace_;
    size_t index_ = 0;
};

/** Statistical knobs for the synthetic stream. */
struct SyntheticParams
{
    uint64_t num_insts = 10000;
    uint64_t seed = 1;
    /** Probability an ALU op has a 2-register-source format. */
    double two_source_frac = 0.30;
    double load_frac = 0.20;
    double store_frac = 0.10;
    double branch_frac = 0.12;
    /** Probability a conditional branch is taken. */
    double taken_frac = 0.45;
    /** Geometric parameter for register-dependence distance. */
    double dep_distance_p = 0.35;
    /** Probability a source is the zero register. */
    double zero_reg_frac = 0.05;
    /** Working-set span of generated load/store addresses (bytes). */
    uint64_t mem_span = 1 << 16;
};

/**
 * Deterministic synthetic committed path. Produces a well-formed
 * stream (consistent nextPc, real register numbers, plausible
 * dependence distances) without needing an assembled program.
 */
class SyntheticSource : public InstSource
{
  public:
    explicit SyntheticSource(const SyntheticParams &params);

    std::optional<func::ExecRecord> next() override;

  private:
    SyntheticParams p_;
    std::mt19937_64 rng_;
    uint64_t produced_ = 0;
    uint64_t pc_;
    /** Rolling recent-destination window for dependence distances. */
    std::vector<isa::RegIndex> recentDests_;

    isa::RegIndex pickSrc();
    isa::RegIndex pickDest();
    double uniform();
};

} // namespace hpa::core

#endif // HPA_CORE_INST_SOURCE_HH
