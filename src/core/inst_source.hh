/**
 * @file
 * Committed-path instruction sources feeding the timing core: the
 * functional emulator (execution-driven) and a synthetic generator
 * with tunable dataflow statistics for tests and property sweeps.
 */

#ifndef HPA_CORE_INST_SOURCE_HH
#define HPA_CORE_INST_SOURCE_HH

#include <random>
#include <vector>

#include "func/emulator.hh"
#include "func/trace.hh"

namespace hpa::core
{

/**
 * Pull interface for the committed dynamic instruction stream.
 *
 * Lifetime contract: the record a next() call returns stays valid
 * for at least RECORD_LIFETIME further next() calls (trace replay
 * returns pointers into the immutable trace, which never move;
 * generating sources buffer their output in a ring of that size).
 * The core keeps at most window + fetch-queue + 1 records in flight
 * — far below the bound — so it stores the pointers directly and
 * never copies an ExecRecord.
 */
class InstSource
{
  public:
    /** Minimum record lifetime, in subsequent next() calls. */
    static constexpr size_t RECORD_LIFETIME = 4096;

    virtual ~InstSource() = default;

    /** Next committed instruction, or nullptr at end of stream. */
    virtual const func::ExecRecord *next() = 0;
};

/** Drives the core from the functional emulator (execution-driven). */
class EmulatorSource : public InstSource
{
  public:
    /**
     * @param emu emulator positioned at the program entry
     * @param max_insts stop after this many instructions (0: no cap)
     */
    explicit EmulatorSource(func::Emulator &emu, uint64_t max_insts = 0)
        : emu_(emu), maxInsts_(max_insts), ring_(RECORD_LIFETIME)
    {}

    const func::ExecRecord *
    next() override
    {
        if (emu_.halted() || (maxInsts_ && count_ >= maxInsts_))
            return nullptr;
        func::ExecRecord &r = ring_[count_++ % RECORD_LIFETIME];
        r = emu_.step();
        return &r;
    }

  private:
    func::Emulator &emu_;
    uint64_t maxInsts_;
    uint64_t count_ = 0;
    std::vector<func::ExecRecord> ring_;
};

/**
 * Replays a pre-captured committed trace (trace-once/replay-many).
 * Holds only a read-only reference plus a cursor, so any number of
 * concurrent cores — or the lanes of one batched replay — can replay
 * one shared CommittedTrace; the stream is byte-identical to an
 * EmulatorSource over the same program, fast-forward and budget (see
 * CommittedTrace's replay contract).
 */
class TraceSource : public InstSource
{
  public:
    /** @param trace captured stream; must outlive this source. */
    explicit TraceSource(const func::CommittedTrace &trace)
        : trace_(trace)
    {}

    const func::ExecRecord *
    next() override
    {
        if (index_ >= trace_.size())
            return nullptr;
        return &trace_.record(index_++);
    }

    /** Replay cursor (records consumed so far). */
    size_t position() const { return index_; }

  private:
    const func::CommittedTrace &trace_;
    size_t index_ = 0;
};

/** Statistical knobs for the synthetic stream. */
struct SyntheticParams
{
    uint64_t num_insts = 10000;
    uint64_t seed = 1;
    /** Probability an ALU op has a 2-register-source format. */
    double two_source_frac = 0.30;
    double load_frac = 0.20;
    double store_frac = 0.10;
    double branch_frac = 0.12;
    /** Probability a conditional branch is taken. */
    double taken_frac = 0.45;
    /** Geometric parameter for register-dependence distance. */
    double dep_distance_p = 0.35;
    /** Probability a source is the zero register. */
    double zero_reg_frac = 0.05;
    /** Working-set span of generated load/store addresses (bytes). */
    uint64_t mem_span = 1 << 16;
};

/**
 * Deterministic synthetic committed path. Produces a well-formed
 * stream (consistent nextPc, real register numbers, plausible
 * dependence distances) without needing an assembled program.
 */
class SyntheticSource : public InstSource
{
  public:
    explicit SyntheticSource(const SyntheticParams &params);

    const func::ExecRecord *next() override;

  private:
    SyntheticParams p_;
    std::mt19937_64 rng_;
    std::vector<func::ExecRecord> ring_;
    uint64_t produced_ = 0;
    uint64_t pc_;
    /** Rolling recent-destination window for dependence distances. */
    std::vector<isa::RegIndex> recentDests_;

    isa::RegIndex pickSrc();
    isa::RegIndex pickDest();
    double uniform();
};

} // namespace hpa::core

#endif // HPA_CORE_INST_SOURCE_HH
