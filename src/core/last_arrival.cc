#include "core/last_arrival.hh"

#include "sim/error.hh"

namespace hpa::core
{

LastArrivalPredictor::LastArrivalPredictor(unsigned entries)
    : table_(entries, 1), mask_(entries - 1)
{
    if (entries == 0 || (entries & (entries - 1)))
        throw ConfigError("predictor entries must be a power of 2");
}

const unsigned LastArrivalMonitor::SIZES[NUM_SIZES] = {
    128, 512, 1024, 4096,
};

LastArrivalMonitor::LastArrivalMonitor()
{
    for (unsigned s : SIZES)
        shadows_.emplace_back(s);
}

uint8_t
LastArrivalMonitor::snapshot(uint64_t pc) const
{
    uint8_t bits = 0;
    for (unsigned i = 0; i < NUM_SIZES; ++i)
        if (shadows_[i].predictRightLast(pc))
            bits |= uint8_t(1u << i);
    return bits;
}

void
LastArrivalMonitor::resolve(uint64_t pc, uint8_t pred_bits,
                            bool simultaneous, bool right_last)
{
    ++samples_;
    if (simultaneous) {
        ++simultaneous_;
        return;
    }
    for (unsigned i = 0; i < NUM_SIZES; ++i) {
        bool pred = pred_bits & (1u << i);
        if (pred == right_last)
            ++correct_[i];
        shadows_[i].update(pc, right_last);
    }
}

double
LastArrivalMonitor::accuracy(unsigned size_idx) const
{
    uint64_t resolved = samples_ - simultaneous_;
    return resolved == 0 ? 0.0
        : static_cast<double>(correct_[size_idx])
            / static_cast<double>(resolved);
}

} // namespace hpa::core
