/**
 * @file
 * Pluggable scheduler (wakeup/select) policies.
 *
 * Each wakeup-logic organization is a small strategy struct with a
 * fixed hook surface; the core holds one inside a `SchedPolicy`
 * variant and dispatches through `visitPolicy` (a switch on the
 * alternative index — no virtual calls, no std::visit
 * function-pointer table, every hook body header-inlined). The hooks
 * map
 * one-to-one onto the decision points the core consults on the hot
 * path:
 *
 *  - `ready(di)`        — model readiness predicate (select gating);
 *                         must be a pure function of the DynInst so
 *                         the cross-validation pass can re-derive it.
 *  - `seesTag(op)`      — does this operand observe a tag on the
 *                         fast wakeup bus?
 *  - `slow_bus`         — does every fast broadcast re-run on a slow
 *                         bus one cycle later?
 *  - `watches_premature`— does a scoreboard audit issues for
 *                         operands that were not truly data-ready?
 *  - `place(di)`        — operand placement at dispatch (slow-side /
 *                         watched assignment).
 *  - `lastOnSlowBus()`  — accounting: did the last-arriving tag land
 *                         on the slow bus?
 *  - `adjustWake()`     — producer wake-broadcast timing override
 *                         (load-delay-tracking counter saturation).
 *
 * Mask-level entry points (consulted by the masked scheduler engine,
 * CoreConfig::sched_engine — the per-entry hooks above remain the
 * reference semantics both engines must reproduce bit for bit):
 *
 *  - `mask_ready_all_src` — true when `ready(di)` reduces to "every
 *                         scheduling operand has its tag match"
 *                         (di.allSrcReady()), so the engine can fold
 *                         readiness into the ready-plane update
 *                         without consulting the per-entry hook.
 *                         Policies with extra per-entry state (tag
 *                         elimination's watched/scoreboard rules)
 *                         set it false and fall back to `ready()`.
 *  - `maskSlowPlane(op)` — does this operand's tag match arrive on
 *                         the slow-bus re-broadcast? The fast
 *                         broadcast files such consumers on the
 *                         slowPend plane and the SlowWake event one
 *                         cycle later visits only that plane.
 *
 * To add a policy: define a struct with these hooks, append it to
 * the `SchedPolicy` variant, construct it in `makeSchedPolicy()`,
 * and register its name in `policy_registry.cc` (see DESIGN.md
 * "Policy API" for the full recipe — about 30 lines end to end).
 */

#ifndef HPA_CORE_SCHED_POLICY_HH
#define HPA_CORE_SCHED_POLICY_HH

#include <cstdint>
#include <variant>

#include "core/config.hh"
#include "core/dyn_inst.hh"
#include "stats/stats.hh"

namespace hpa::core
{

/** Conventional broadcast wakeup: two comparators per entry, every
 *  operand on the one fast bus (Section 3, base machine). */
struct ConventionalSched
{
    static constexpr bool slow_bus = false;
    static constexpr bool watches_premature = false;
    static constexpr bool mask_ready_all_src = true;

    bool ready(const DynInst &di) const { return di.allSrcReady(); }
    bool seesTag(const OperandState &) const { return true; }
    bool maskSlowPlane(const OperandState &) const { return false; }
    void place(DynInst &) const {}
    bool lastOnSlowBus(const DynInst &, bool) const { return false; }
    uint64_t
    adjustWake(uint64_t, uint64_t wake, uint64_t,
               stats::Counter &) const
    {
        return wake;
    }
};

/** Sequential wakeup with a last-arrival predictor: the
 *  predicted-last operand listens to the fast bus, the other to the
 *  slow bus one cycle later (Section 3.3). */
struct SequentialSched
{
    static constexpr bool slow_bus = true;
    static constexpr bool watches_premature = false;
    static constexpr bool mask_ready_all_src = true;

    bool ready(const DynInst &di) const { return di.allSrcReady(); }
    bool seesTag(const OperandState &op) const { return !op.slowSide; }
    bool
    maskSlowPlane(const OperandState &op) const
    {
        return op.slowSide;
    }

    void
    place(DynInst &di) const
    {
        placeSides(di, di.predRightLast);
    }

    bool
    lastOnSlowBus(const DynInst &ci, bool simultaneous) const
    {
        return slowSideCarriedLast(ci, simultaneous);
    }

    uint64_t
    adjustWake(uint64_t, uint64_t wake, uint64_t,
               stats::Counter &) const
    {
        return wake;
    }

  protected:
    /** Wire the side predicted to arrive last to the fast bus. */
    static void
    placeSides(DynInst &di, bool right_fast)
    {
        if (!di.twoPending)
            return; // single pending operands sit on the fast side
        for (unsigned i = 0; i < di.numSrc; ++i) {
            OperandState &op = di.src[i];
            op.slowSide = op.leftField == right_fast;
        }
    }

    /** True when the last-arriving tag was only visible on the slow
     *  bus; a simultaneous wakeup always pays the slow-bus cycle
     *  (one side is always slow). */
    static bool
    slowSideCarriedLast(const DynInst &ci, bool simultaneous)
    {
        for (unsigned i = 0; i < ci.numSrc; ++i) {
            const OperandState &op = ci.src[i];
            if (simultaneous) {
                if (op.slowSide)
                    return true;
            } else if (op.leftField != ci.firstWakeWasLeft
                       && op.slowSide) {
                return true;
            }
        }
        return false;
    }
};

/** Sequential wakeup without a predictor: the right-hand operand is
 *  statically assumed last-arriving. */
struct SequentialNoPredSched : SequentialSched
{
    void place(DynInst &di) const { placeSides(di, true); }
};

/** Tag elimination (Ernst & Austin): only the predicted-last operand
 *  has a comparator; a scoreboard detects premature issues. */
struct TagElimSched
{
    static constexpr bool slow_bus = false;
    static constexpr bool watches_premature = true;
    static constexpr bool mask_ready_all_src = false;

    bool maskSlowPlane(const OperandState &) const { return false; }

    bool
    ready(const DynInst &di) const
    {
        for (unsigned i = 0; i < di.numSrc; ++i) {
            const OperandState &op = di.src[i];
            if (op.watched && !op.ready)
                return false;
        }
        // After a detected mis-issue the scoreboard holds the entry
        // until every value is truly available.
        if (di.requireDataReady && !di.allSrcDataReady())
            return false;
        return true;
    }

    bool seesTag(const OperandState &op) const { return op.watched; }

    void
    place(DynInst &di) const
    {
        if (di.twoPending) {
            for (unsigned i = 0; i < di.numSrc; ++i) {
                OperandState &op = di.src[i];
                op.watched = op.leftField != di.predRightLast;
            }
        } else {
            // Watch the pending operand (if any).
            for (unsigned i = 0; i < di.numSrc; ++i)
                di.src[i].watched = !di.src[i].readyAtInsert;
        }
    }

    bool lastOnSlowBus(const DynInst &, bool) const { return false; }
    uint64_t
    adjustWake(uint64_t, uint64_t wake, uint64_t,
               stats::Counter &) const
    {
        return wake;
    }
};

/**
 * Load-delay-tracking wakeup (Diavastos & Carlson, arXiv
 * 2109.03112): tag broadcast is replaced by per-producer real-time
 * delay counters of bounded width. A producer whose remaining
 * latency fits in `max_delay` wakes its consumers on exactly the
 * broadcast schedule; one that saturates the counter (long divides,
 * replayed load misses) falls back to the completion scoreboard, so
 * its consumers wake only once the value is architecturally
 * complete and back-to-back issue is lost.
 */
struct LoadDelaySched
{
    unsigned max_delay;

    static constexpr bool slow_bus = false;
    static constexpr bool watches_premature = false;
    static constexpr bool mask_ready_all_src = true;

    bool ready(const DynInst &di) const { return di.allSrcReady(); }
    bool seesTag(const OperandState &) const { return true; }
    bool maskSlowPlane(const OperandState &) const { return false; }
    void place(DynInst &) const {}
    bool lastOnSlowBus(const DynInst &, bool) const { return false; }

    uint64_t
    adjustWake(uint64_t now, uint64_t wake, uint64_t complete,
               stats::Counter &saturated) const
    {
        if (wake - now <= max_delay)
            return wake;
        ++saturated;
        // The completion broadcast cycle, not a cycle later: commit
        // follows completion by at least one cycle, so this is the
        // latest wake the producer is guaranteed to still be in the
        // window to deliver.
        return complete;
    }
};

/** The closed set of scheduler policies (variant dispatch keeps the
 *  per-cycle hooks virtual-call-free and inlinable). */
using SchedPolicy =
    std::variant<ConventionalSched, SequentialSched,
                 SequentialNoPredSched, TagElimSched, LoadDelaySched>;

/**
 * Inline-friendly visitation for the policy variants: libstdc++'s
 * std::visit dispatches through a function-pointer table, which
 * blocks inlining of the one-line hook bodies and costs 10-30%
 * whole-simulation throughput on the per-cycle path. A switch on
 * the alternative index compiles to the same jump table but lets
 * the compiler inline every case; the index is fixed at machine
 * construction, so the branch predicts perfectly.
 */
template <typename F, typename V>
inline decltype(auto)
visitPolicy(F &&f, V &&v)
{
    static_assert(std::variant_size_v<std::decay_t<V>> == 5,
                  "extend the switch when adding an alternative");
    switch (v.index()) {
      case 0:
        return f(*std::get_if<0>(&v));
      case 1:
        return f(*std::get_if<1>(&v));
      case 2:
        return f(*std::get_if<2>(&v));
      case 3:
        return f(*std::get_if<3>(&v));
      case 4:
        return f(*std::get_if<4>(&v));
    }
    __builtin_unreachable();
}

/** Construction-time selection; never on the per-cycle path. */
inline SchedPolicy
makeSchedPolicy(const CoreConfig &cfg)
{
    switch (cfg.wakeup) {
      case WakeupModel::Sequential:
        return SequentialSched{};
      case WakeupModel::SequentialNoPred:
        return SequentialNoPredSched{};
      case WakeupModel::TagElimination:
        return TagElimSched{};
      case WakeupModel::LoadDelayTracking:
        return LoadDelaySched{cfg.dlt_max_delay};
      case WakeupModel::Conventional:
      default:
        return ConventionalSched{};
    }
}

} // namespace hpa::core

#endif // HPA_CORE_SCHED_POLICY_HH
