/**
 * @file
 * Cycle-level out-of-order core implementing the paper's base machine
 * (speculative scheduling with non-selective recovery, RUU-style
 * unified window, Table 1 resources) and the half-price techniques:
 * sequential wakeup (Section 3.3), sequential register access
 * (Section 4.3), tag elimination (Section 3.1 reference scheme), the
 * extra-RF-stage and half-ports+crossbar register files (Section 5.2),
 * and selective recovery (Figure 5). The wakeup and register-read
 * organizations are pluggable strategy structs (sched_policy.hh /
 * rf_policy.hh, variant-dispatched — see DESIGN.md "Policy API"); two
 * follow-on designs, load-delay-tracking wakeup and an
 * operand-prefetch-buffer register file, plug in through the same
 * surface.
 *
 * Timing conventions (cycle numbers are select-eligibility times):
 *  - Wakeup and select are atomic: an instruction woken at cycle t can
 *    be selected at cycle t.
 *  - A producer selected at cycle s with effective latency L
 *    broadcasts on the fast bus at cycle s+L; slow-bus (sequential
 *    wakeup) consumers see the tag at s+L+1.
 *  - SCHED->EXE occupies schedToExec() stages; an op selected at s
 *    completes (value bypassed) at s + schedToExec() + L - 1.
 *  - Loads are scheduled assuming a DL1 hit (1 agen + DL1 latency);
 *    a miss squashes `replay_shadow` cycles of issue.
 */

#ifndef HPA_CORE_CORE_HH
#define HPA_CORE_CORE_HH

// hpa-nolint(HPA007): wall-clock watchdog support (setWallDeadline); guard-only
#include <chrono>
#include <functional>
#include <ostream>
// hpa-nolint(HPA002): wakeup-order history, bounded by static PCs
#include <unordered_map>
#include <vector>

#include "bpred/bpred.hh"
#include "core/config.hh"
#include "core/containers.hh"
#include "core/dyn_inst.hh"
#include "core/event_queue.hh"
#include "core/fu_pool.hh"
#include "core/inst_source.hh"
#include "core/issue_window.hh"
#include "core/last_arrival.hh"
#include "core/rf_policy.hh"
#include "core/sched_policy.hh"
#include "mem/hierarchy.hh"
#include "sim/error.hh"
#include "stats/stats.hh"

namespace hpa::core
{

/** Aggregate statistics exported by a core run. */
struct CoreStats
{
    stats::Counter committed{"core.committed", "committed instructions"};
    stats::Counter cycles{"core.cycles", "simulated cycles"};
    stats::Counter dispatched{"core.dispatched",
        "instructions inserted into the window"};
    stats::Counter issued{"core.issued",
        "issue events (including re-issues)"};
    stats::Counter squashedIssues{"core.squashed_issues",
        "issued instructions pulled back by recovery"};
    stats::Counter loadMissReplays{"core.load_miss_replays",
        "loads that triggered scheduling recovery"};
    stats::Counter tagElimMisissues{"core.tagelim_misissues",
        "tag-elimination premature issues"};
    stats::Counter seqRegAccesses{"core.seq_reg_accesses",
        "issues that took the sequential register access penalty"};
    stats::Counter seqWakeupDelayed{"core.seq_wakeup_delayed",
        "issues delayed because the last tag arrived on the slow bus"};
    stats::Counter renameStalls{"core.rename_stalls",
        "dispatch groups split by rename-port exhaustion"};
    stats::Counter branchMispredicts{"core.branch_mispredicts",
        "mispredicted control instructions"};
    stats::Counter fetchedControl{"core.fetched_control",
        "control instructions fetched"};

    // --- Characterization (Figures 2-4, 6, 10, Table 3). ---
    stats::Counter fmt2srcInsts{"fmt.two_source_format",
        "committed non-store 2-source-format instructions"};
    stats::Counter fmtStores{"fmt.stores", "committed stores"};
    stats::Counter fmtOther{"fmt.other",
        "committed 0/1-source-format instructions"};
    stats::Counter fmtNops{"fmt.nops",
        "2-source-format nops (zero-register destinations)"};
    stats::Counter fmtOneUnique{"fmt.one_unique",
        "2-source-format with one unique source (zero reg/identical)"};
    stats::Counter fmtTwoUnique{"fmt.two_unique",
        "2-source instructions (two unique non-zero sources)"};

    stats::Distribution readyAtInsert{"sched.ready_at_insert",
        "ready operands of 2-source insts at window insert", 2};
    stats::Distribution wakeupSlack{"sched.wakeup_slack",
        "cycles between the two operand wakeups (2-pending insts)", 4};

    stats::Counter orderSame{"sched.wakeup_order_same",
        "2-pending insts whose wakeup order matched last time at PC"};
    stats::Counter orderDiff{"sched.wakeup_order_diff",
        "2-pending insts whose wakeup order differed"};
    stats::Counter leftLast{"sched.left_last",
        "2-pending insts whose left operand arrived last"};
    stats::Counter rightLast{"sched.right_last",
        "2-pending insts whose right operand arrived last"};

    stats::Counter rfBackToBack{"rf.back_to_back",
        "2-source issues with >=1 operand off the bypass"};
    stats::Counter rfTwoReady{"rf.two_ready",
        "2-source issues needing 2 ports (both ready at insert)"};
    stats::Counter rfNonBackToBack{"rf.non_back_to_back",
        "2-source issues needing 2 ports (issued late)"};

    // --- Per-policy counters (policy zoo). ---
    stats::Counter dltSaturated{"sched.dlt_saturated",
        "wake broadcasts deferred to completion by delay-counter "
        "saturation (load-delay-tracking wakeup)"};
    stats::Counter prefetchHits{"rf.prefetch_hits",
        "operands prefetched into the operand buffer at dispatch"};
    stats::Counter prefetchMisses{"rf.prefetch_misses",
        "prefetch-eligible operands denied by prefetch bandwidth"};
    stats::Counter rfPortStalls{"rf.port_stalls",
        "select attempts deferred by read-port arbitration"};

    void regStats(stats::Registry &reg);
};

/**
 * The out-of-order core. Construct with a configuration and a
 * committed-path instruction source, then run().
 */
class Core
{
  public:
    Core(const CoreConfig &cfg, InstSource &source);

    /** Advance one cycle. */
    void tick();

    /**
     * Run to completion (source drained and window empty).
     * @param max_cycles optional safety bound (0 = unbounded)
     * @return committed instruction count
     */
    uint64_t run(uint64_t max_cycles = 0);

    bool
    done() const
    {
        return sourceDone_ && windowCount_ == 0 && fetchQueue_.empty();
    }

    uint64_t cycle() const { return cycle_; }
    double
    ipc() const
    {
        return cycle_ == 0 ? 0.0
            : double(stats_.committed.value()) / double(cycle_);
    }

    const CoreStats &stats() const { return stats_; }
    const CoreConfig &config() const { return cfg_; }
    const LastArrivalMonitor &lapMonitor() const { return lapMon_; }
    mem::Hierarchy &hierarchy() { return hier_; }
    bpred::BranchPredictor &branchPredictor() { return bp_; }

    /** Register core + memory + bpred statistics. */
    void regStats(stats::Registry &reg);

    /**
     * Install a commit observer: called once per committed
     * instruction, with its full pipeline timestamps still intact
     * (fetch/dispatch/issue/complete cycles, replay flags). Used by
     * the pipeline viewer and by tests.
     */
    void
    setCommitListener(
        std::function<void(const DynInst &, uint64_t commit_cycle)> fn)
    {
        commitListener_ = std::move(fn);
    }

    // --- Testing hooks (scheduler data-structure invariants). ---

    /** Snapshot of the incremental ready set: window slots of
     *  unissued, scheduler-ready instructions, oldest first —
     *  whichever engine maintains it. */
    std::vector<unsigned>
    readyListSnapshot() const
    {
        return masked_ ? masks_.ready.toVector(head_)
                       : ready_.toVector();
    }

    /** Snapshot of the issued-but-incomplete set, oldest first. */
    std::vector<unsigned>
    issuedListSnapshot() const
    {
        return masked_ ? masks_.issued.toVector(head_)
                       : issued_.toVector();
    }

    /** The masked engine's bit planes (ReadyMaskFuzz inspection). */
    const IssueWindowMasks &issueMasks() const { return masks_; }

    /**
     * Recompute scheduler readiness by brute force over the whole
     * window and check it matches the incrementally maintained
     * ready list (same members, oldest-first order), and that the
     * store/issued side lists match the window too. Used by the
     * fuzz tests; O(window), never called on the hot path.
     */
    bool readyListConsistent() const;

    /**
     * Like readyListConsistent(), but on mismatch throws
     * hpa::InvariantViolation naming the diverged list and carrying
     * a pipeline-state dump. This is the periodic release-mode
     * cross-validation pass run by tick() every
     * CoreConfig::check_interval cycles.
     */
    void crossValidate() const;

    /**
     * Pipeview-style snapshot of the pipeline state: cycle, commit
     * progress, window occupancy and the oldest in-flight window
     * entries with their per-stage timestamps. Attached to
     * Deadlock/InvariantViolation context dumps.
     */
    std::string dumpPipelineState() const;

    /**
     * Cooperative wall-clock budget: once set, the run loop checks
     * the deadline every few thousand cycles and throws hpa::Timeout
     * when it has passed. @p seconds is measured from now.
     */
    void
    setWallDeadline(double seconds)
    {
        // hpa-nolint(HPA007): converts the caller's wall budget to a watchdog deadline; guard-only
        deadline_ = std::chrono::steady_clock::now()
            + std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
        hasDeadline_ = true;
        nextGuardCycle_ = 0; // re-arm the guard gate
    }

    // --- Test-only fault injection (sim/sweep fault hooks). ---

    /** At @p cycle, corrupt the incremental ready list (append a
     *  duplicate/phantom slot) — the periodic cross-validation must
     *  then report an InvariantViolation. Test-only. */
    void
    testCorruptSchedulerAt(uint64_t cycle)
    {
        corruptAt_ = cycle;
        nextGuardCycle_ = 0; // re-arm the guard gate
    }

    /** After @p cycle, commit() retires nothing — forward progress
     *  stops and the watchdog must report a Deadlock. Test-only. */
    void
    testBlockCommitAfter(uint64_t cycle)
    {
        blockCommitAfter_ = cycle;
    }

  private:
    // --- Event machinery. ---
    enum class EventKind : uint8_t
    {
        FastWake,       ///< producer tag on the fast wakeup bus
        SlowWake,       ///< re-broadcast on the slow bus (seq wakeup)
        Complete,       ///< execution finished (value available)
        LoadMissDetect, ///< latency misprediction detected
        TagElimDetect,  ///< scoreboard flags a premature issue
    };

    /** 16 bytes — ~7 events per simulated cycle flow through the
     *  calendar, so the packed layout is worth the int16 slot. */
    struct Event
    {
        uint64_t seq;
        uint32_t token;
        int16_t slot;
        EventKind kind;
    };

    struct Consumer
    {
        int slot;
        uint8_t opIdx;
        uint64_t seq;
    };

    struct FetchedInst
    {
        const func::ExecRecord *rec;
        uint64_t earliestDispatch;
        bool mispredicted;
        uint64_t fetchCycle;
    };

    /** Same-cycle delivery order of coincident events: detections
     *  (recovery) first, completions second, wakeups last. Events of
     *  equal rank process in schedule order. */
    static int
    eventRank(EventKind k)
    {
        switch (k) {
          case EventKind::LoadMissDetect:
          case EventKind::TagElimDetect:
            return 0;
          case EventKind::Complete:
            return 1;
          default:
            return 2;
        }
    }

    // --- Pipeline phases (in intra-cycle order). ---
    void commit();
    void processEvents();
    void select();
    void dispatch();
    void fetch();

    // --- Helpers. ---
    DynInst &inst(int slot) { return window_[slot]; }
    bool windowFull() const { return windowCount_ == cfg_.ruu_size; }

    /** SimContext for a failure raised now: cycle, commit progress
     *  and the pipeline-state dump. */
    hpa::SimContext invariantContext() const;
    /** Re-derive the ready/issued/store lists from the window and
     *  describe the first divergence (empty string = consistent). */
    std::string sideListDivergence() const;
    /** Watchdog / deadline / cross-check / fault-injection hooks;
     *  everything rare-but-per-cycle, kept out of tick()'s hot
     *  path body. */
    void tickGuards();

    void setupOperands(DynInst &di, int slot);
    void updateReadySlot(unsigned slot);
    void readyRemove(unsigned slot);
    void issuedInsert(unsigned slot);
    void issuedRemove(unsigned slot);
    bool eligible(const DynInst &di) const;
    bool lsqAllowsLoad(const DynInst &load) const;
    unsigned computeRfPorts(const DynInst &di) const;
    /** One select-candidate attempt shared by both engines; issues
     *  on success. @return false when the width budget is spent. */
    bool selectTry(unsigned slot, int pass, unsigned &avail,
                   unsigned &ports_left, bool arbitrated);
    /** @p ports is the candidate's computeRfPorts() value, computed
     *  once by selectTry (the arbitrated path already needs it). */
    void issueInst(DynInst &di, int slot, unsigned ports);
    void scheduleEvent(uint64_t cycle, Event ev);
    void handleFastWake(const Event &ev);
    void handleSlowWake(const Event &ev);
    void handleComplete(const Event &ev);
    void handleLoadMiss(const Event &ev);
    void handleTagElim(const Event &ev);
    bool wakeOperand(DynInst &ci, OperandState &op, uint64_t now,
                     uint64_t producer_seq, bool slow_bus);
    void noteSecondWake(DynInst &ci, uint64_t now);

    // --- Policy dispatch (hot path: visitPolicy switches on the
    //     variant index — no virtual calls, every policy hook body
    //     header-inlined from {sched,rf}_policy.hh). ---

    /** Model readiness predicate: every tag match the wakeup scheme
     *  requires for issue has been observed. Excludes per-cycle
     *  issue conditions (dispatch delay, FUs, LSQ, ports) checked
     *  at select. Pure function of the DynInst, so the periodic
     *  cross-validation pass can re-derive it from the window. */
    bool
    schedReady(const DynInst &di) const
    {
        return core::visitPolicy([&](const auto &p) { return p.ready(di); },
                          sched_);
    }

    /** Does this operand observe a tag on the fast wakeup bus? */
    bool
    schedSeesTag(const OperandState &op) const
    {
        return core::visitPolicy(
            [&](const auto &p) { return p.seesTag(op); }, sched_);
    }

    /** Does every fast broadcast re-run on the slow bus +1 cycle? */
    bool
    schedSlowBus() const
    {
        return core::visitPolicy([](const auto &p) { return p.slow_bus; },
                          sched_);
    }

    /** Does a scoreboard audit issues for premature operands? */
    bool
    schedWatchesPremature() const
    {
        return core::visitPolicy(
            [](const auto &p) { return p.watches_premature; },
            sched_);
    }

    /** Operand placement at dispatch (slow-side/watched bits). */
    void
    schedPlace(DynInst &di)
    {
        core::visitPolicy([&](const auto &p) { p.place(di); }, sched_);
    }

    /** Mask-level entry point: does this operand's tag match ride
     *  the slow-bus re-broadcast (slowPend plane membership)? */
    bool
    schedMaskSlowPlane(const OperandState &op) const
    {
        return core::visitPolicy(
            [&](const auto &p) { return p.maskSlowPlane(op); },
            sched_);
    }

    /** Accounting: did the last-arriving tag land on the slow bus? */
    bool
    schedLastOnSlowBus(const DynInst &ci, bool simultaneous) const
    {
        return core::visitPolicy(
            [&](const auto &p) {
                return p.lastOnSlowBus(ci, simultaneous);
            },
            sched_);
    }

    /** Producer wake-broadcast timing override (delay-counter
     *  saturation defers the wake to the completion scoreboard). */
    uint64_t
    schedAdjustWake(uint64_t now, uint64_t wake, uint64_t complete)
    {
        return core::visitPolicy(
            [&](const auto &p) {
                return p.adjustWake(now, wake, complete,
                                    stats_.dltSaturated);
            },
            sched_);
    }

    /** Must this issue take the sequential register-access penalty? */
    bool
    rfSeqAccess(unsigned ports) const
    {
        return core::visitPolicy(
            [&](const auto &p) { return p.seqAccess(ports); }, rf_);
    }

    /** Issue-time read ports arbitrated across the select group
     *  (~0u = unconstrained). */
    unsigned
    rfPortBudget() const
    {
        return core::visitPolicy(
            [&](const auto &p) { return p.portBudget(cfg_.width); },
            rf_);
    }

    /** Dispatch-time hook: the operand prefetch buffer claims its
     *  per-cycle port bandwidth. */
    void
    rfOnDispatch(DynInst &di)
    {
        core::visitPolicy(
            [&](auto &p) {
                p.onDispatch(di, cycle_, stats_.prefetchHits,
                             stats_.prefetchMisses);
            },
            rf_);
    }
    void squashWindow(uint64_t first_cycle, uint64_t last_cycle,
                      uint64_t trigger_seq, bool selective);
    void repairConsumersOf(int slot, uint64_t producer_seq);
    void commitFormatStats(const DynInst &di);

    CoreConfig cfg_;
    InstSource &source_;
    mem::Hierarchy hier_;
    bpred::BranchPredictor bp_;
    FuPool fu_;
    LastArrivalPredictor lap_;
    LastArrivalMonitor lapMon_;
    CoreStats stats_;

    /** Pluggable wakeup/select and register-file port strategies,
     *  selected from the config at construction (see
     *  sched_policy.hh / rf_policy.hh). */
    SchedPolicy sched_;
    RFPortPolicy rf_;

    uint64_t cycle_ = 0;
    uint64_t nextSeq_ = 0;

    // Window: ring buffer of slots. Slot s's consumer list holds
    // the operands watching s's destination tag; pooled so dispatch
    // appends and commit/reuse clears never touch the heap.
    std::vector<DynInst> window_;
    PooledLists<Consumer> consumers_;
    unsigned head_ = 0;
    unsigned tail_ = 0;
    unsigned windowCount_ = 0;
    unsigned lsqCount_ = 0;

    // --- Incrementally maintained scheduler indices. ---
    // The per-cycle whole-window scans of select, the LSQ search and
    // replay candidate collection are replaced by these seq-ordered
    // (= program-ordered, the window is a FIFO) side lists, so each
    // pipeline phase touches only the instructions it actually acts
    // on while preserving oldest-first priority bit-for-bit.

    /** Unissued, scheduler-ready instructions (ready-list select).
     *  Entries join on wakeup/insert, leave on issue or when replay
     *  repair takes a tag match away. Intrusive chain in seq order:
     *  unlink is O(1), insert walks backward from the tail. */
    SlotChain ready_;
    /** Issued-but-incomplete instructions: the replay-shadow
     *  candidate set of squashWindow(). Seq-ordered chain. */
    SlotChain issued_;
    /** In-window stores in program order (LSQ overlap searches);
     *  occupancy bounded by the window size. Both engines share it. */
    BoundedRing<unsigned> storeSlots_;

    // --- Masked engine (CoreConfig::sched_engine == Masked). ---
    // The SoA bit planes replace the ready/issued chains and the
    // pooled consumer lists; age order from head_ equals seq order
    // (FIFO window), so every scan reproduces the chains' oldest-
    // first visit order bit for bit. See issue_window.hh.
    IssueWindowMasks masks_;
    /** Engine select, fixed at construction. */
    bool masked_;
    /** Cached policy traits (construction-time visitPolicy): does
     *  every fast broadcast re-run on the slow bus, and does the
     *  ready predicate reduce to allSrcReady() (mask_ready_all_src)? */
    bool slowBus_ = false;
    bool readyAllSrc_ = true;

    // squashWindow() scratch, members so recovery (a steady-state
    // occurrence under speculative scheduling) stops allocating
    // once the reserved capacities are warm.
    std::vector<int> squashCandidates_;
    std::vector<int> squashList_;
    std::vector<uint64_t> squashTainted_;
    std::vector<char> squashIn_;

    /** Youngest in-flight producer per unified register. */
    struct ProducerRef
    {
        uint64_t seq = NO_SEQ;
        int slot = -1;
    };
    ProducerRef lastProducer_[isa::NUM_UNIFIED_REGS];

    /** Rank-split calendar: one vector per (cycle, delivery rank),
     *  rank fixed at schedule time (eventRank), so processEvents()
     *  drains each rank in one compare-free pass. */
    CalendarQueue<Event, 3> events_;

    // Front end; occupancy bounded by front_end_depth x width.
    BoundedRing<FetchedInst> fetchQueue_;
    uint64_t fetchResumeCycle_ = 0;
    bool fetchStalledOnBranch_ = false;
    uint64_t stalledBranchSeqTag_ = NO_SEQ; // pc tag for bookkeeping
    bool sourceDone_ = false;
    const func::ExecRecord *lookahead_ = nullptr;

    /** Issue slots blocked this cycle by sequential register access
     *  issues of the previous cycle. */
    unsigned blockedSlots_ = 0;
    unsigned blockedSlotsNext_ = 0;

    /** Wakeup-order history per PC (Table 3). Keyed by static PC,
     *  so the map stops growing after the first iteration of a
     *  kernel's loop; the warm steady state performs lookups only
     *  (test_hotpath_alloc proves it). */
    // hpa-nolint(HPA002): bounded by static PCs, lookup-only when warm
    std::unordered_map<uint64_t, uint8_t> orderHistory_;

    uint64_t lastCommitCycle_ = 0;

    /** Earliest cycle any tickGuards() condition can fire next; 0
     *  forces a (re)evaluation on the next tick. */
    uint64_t nextGuardCycle_ = 0;

    /** Wall-clock deadline (setWallDeadline); checked every 4096
     *  cycles when armed. */
    // hpa-nolint(HPA007): watchdog deadline storage; guard-only
    std::chrono::steady_clock::time_point deadline_{};
    bool hasDeadline_ = false;

    /** Test-only fault injection (NO_CYCLE = disarmed). */
    uint64_t corruptAt_ = NO_CYCLE;
    uint64_t blockCommitAfter_ = NO_CYCLE;

    std::function<void(const DynInst &, uint64_t)> commitListener_;
};

} // namespace hpa::core

#endif // HPA_CORE_CORE_HH
