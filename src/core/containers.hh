/**
 * @file
 * Allocation-free window-sized containers for the core's hot path.
 *
 * BoundedRing replaces std::deque where the occupancy is bounded by
 * a configuration constant (store list <= window size, fetch queue
 * <= front-end depth x width): a fixed array with head/count
 * indices, so push/pop never touch the heap and traversal is a
 * dense sequential walk.
 *
 * PooledLists replaces vector<vector<T>> for the per-slot consumer
 * lists: all entries of all lists live in one index-linked node
 * pool with per-list head/tail, append order preserved. clear() is
 * O(1) — it splices the whole list onto the free list — and the
 * pool's high-water mark is bounded (each in-window instruction
 * appends at most two consumer entries, and a producer's list is
 * cleared no later than its slot is reused), so after warm-up the
 * steady state performs zero heap allocation.
 *
 * The bit-plane scan helpers at the bottom are the traversal
 * primitives of the masked scheduler engine (issue_window.hh): the
 * window is a FIFO ring, so scanning the two segments [head, slots)
 * then [0, head) visits set bits in age (= seq = program) order,
 * which is exactly the oldest-first priority the seq-ordered side
 * chains provide. Each scan loads a word once and pops set bits
 * with countr_zero (tzcnt), so the per-visited-bit cost is a few
 * branch-free ALU ops instead of a pointer chase.
 */

#ifndef HPA_CORE_CONTAINERS_HH
#define HPA_CORE_CONTAINERS_HH

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpa::core
{

/** Fixed-capacity FIFO ring; the caller guarantees the bound. */
template <typename T>
class BoundedRing
{
  public:
    BoundedRing() = default;

    /** Discard contents and (re)allocate a fixed capacity. */
    void
    reset(size_t capacity)
    {
        buf_.assign(capacity, T{});
        head_ = 0;
        count_ = 0;
    }

    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    size_t capacity() const { return buf_.size(); }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    /** @p i-th element from the front (0 = oldest). */
    T &operator[](size_t i) { return buf_[wrap(head_ + i)]; }
    const T &operator[](size_t i) const
    {
        return buf_[wrap(head_ + i)];
    }

    void
    push_back(const T &v)
    {
        assert(count_ < buf_.size());
        buf_[wrap(head_ + count_)] = v;
        ++count_;
    }

    void
    pop_front()
    {
        assert(count_ > 0);
        head_ = wrap(head_ + 1);
        --count_;
    }

  private:
    /** head_ + i < 2 * capacity always, so one subtract suffices. */
    size_t
    wrap(size_t i) const
    {
        return i >= buf_.size() ? i - buf_.size() : i;
    }

    std::vector<T> buf_;
    size_t head_ = 0;
    size_t count_ = 0;
};

/**
 * Intrusive doubly-linked list over window slot indices, kept in
 * ascending order of a caller-supplied key (the window seq, so list
 * order == program order). Replaces the seq-sorted std::vector side
 * lists: unlink is O(1) instead of a binary search plus memmove, and
 * ordered insert walks backward from the tail, which is O(1) for the
 * common append-youngest case (dispatch, and most issues). Slots are
 * unique; membership is tracked so a double insert or a stray unlink
 * trips an assert instead of corrupting the chain.
 */
class SlotChain
{
  public:
    static constexpr int32_t NIL = -1;

    /** Drop everything and size the link arrays for @p slots. */
    void
    reset(size_t slots)
    {
        prev_.assign(slots, NIL);
        next_.assign(slots, NIL);
        in_.assign(slots, 0);
        head_ = NIL;
        tail_ = NIL;
        phantom_ = NIL;
        size_ = 0;
    }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    int32_t head() const { return head_; }
    int32_t next(unsigned s) const { return next_[s]; }
    bool contains(unsigned s) const { return in_[s] != 0; }

    /**
     * Insert @p s keeping ascending @p less order (stable: equal
     * keys cannot occur — seqs are unique). @p less(a, b) compares
     * two slot indices by key.
     */
    template <typename Less>
    void
    insertOrdered(unsigned s, Less &&less)
    {
        assert(!in_[s]);
        int32_t after = tail_;
        while (after != NIL && less(s, unsigned(after)))
            after = prev_[after];
        // Link s after `after` (NIL = new head).
        prev_[s] = after;
        if (after == NIL) {
            next_[s] = head_;
            head_ = int32_t(s);
        } else {
            next_[s] = next_[after];
            next_[after] = int32_t(s);
        }
        if (next_[s] == NIL)
            tail_ = int32_t(s);
        else
            prev_[next_[s]] = int32_t(s);
        in_[s] = 1;
        ++size_;
    }

    /** Unlink @p s — O(1). The slot must be a member. */
    void
    remove(unsigned s)
    {
        assert(in_[s]);
        if (prev_[s] == NIL)
            head_ = next_[s];
        else
            next_[prev_[s]] = next_[s];
        if (next_[s] == NIL)
            tail_ = prev_[s];
        else
            prev_[next_[s]] = prev_[s];
        prev_[s] = NIL;
        next_[s] = NIL;
        in_[s] = 0;
        --size_;
    }

    /** Materialize the chain, head to tail (cold diagnostics).
     *  Includes the injected phantom entry, if any. */
    std::vector<unsigned>
    toVector() const
    {
        std::vector<unsigned> v;
        v.reserve(size_ + (phantom_ != NIL));
        for (int32_t s = head_; s != NIL; s = next_[s])
            v.push_back(unsigned(s));
        if (phantom_ != NIL)
            v.push_back(unsigned(phantom_));
        return v;
    }

    /**
     * Test-only corruption: a duplicate/phantom entry visible to the
     * diagnostic view (toVector) but inert to the hot-path links, so
     * the periodic cross-validation must diverge while the chain
     * stays structurally sound until the check fires.
     */
    void testAppendPhantom(unsigned s) { phantom_ = int32_t(s); }

  private:
    std::vector<int32_t> prev_;
    std::vector<int32_t> next_;
    std::vector<uint8_t> in_;
    int32_t head_ = NIL;
    int32_t tail_ = NIL;
    int32_t phantom_ = NIL;
    size_t size_ = 0;
};

/** N append-ordered lists sharing one pooled node array. */
template <typename T>
class PooledLists
{
  public:
    /** Drop everything: @p lists empty lists over a pool with room
     *  for @p reserve_nodes entries before any growth. */
    void
    reset(size_t lists, size_t reserve_nodes)
    {
        head_.assign(lists, NIL);
        tail_.assign(lists, NIL);
        nodes_.clear();
        nodes_.reserve(reserve_nodes);
        free_ = NIL;
    }

    bool empty(unsigned list) const { return head_[list] == NIL; }

    void
    append(unsigned list, const T &v)
    {
        int32_t n;
        if (free_ != NIL) {
            n = free_;
            free_ = nodes_[n].next;
            nodes_[n].value = v;
            nodes_[n].next = NIL;
        } else {
            n = int32_t(nodes_.size());
            nodes_.push_back(Node{v, NIL});
        }
        if (tail_[list] == NIL)
            head_[list] = n;
        else
            nodes_[tail_[list]].next = n;
        tail_[list] = n;
    }

    /** Splice the whole list onto the free list — O(1). */
    void
    clear(unsigned list)
    {
        int32_t h = head_[list];
        if (h == NIL)
            return;
        nodes_[tail_[list]].next = free_;
        free_ = h;
        head_[list] = NIL;
        tail_[list] = NIL;
    }

    /** Visit each element of @p list in append order. @p fn must not
     *  append to or clear any list of this pool. */
    template <typename Fn>
    void
    forEach(unsigned list, Fn &&fn) const
    {
        for (int32_t n = head_[list]; n != NIL; n = nodes_[n].next)
            fn(nodes_[n].value);
    }

    /** Pool high-water mark (allocated nodes), for diagnostics. */
    size_t poolSize() const { return nodes_.size(); }

  private:
    static constexpr int32_t NIL = -1;

    struct Node
    {
        T value;
        int32_t next;
    };

    std::vector<Node> nodes_;
    std::vector<int32_t> head_;
    std::vector<int32_t> tail_;
    int32_t free_ = NIL;
};

// --------------------------------------------------------------------
// Bit-plane scan primitives (masked scheduler engine)
// --------------------------------------------------------------------

/** Visit the set bits of word array @p w inside [lo, hi) in
 *  ascending index order. @p fn(bit) returns false to stop.
 *  @return false when the callback stopped the scan. */
template <typename Fn>
inline bool
scanSetBits(const uint64_t *w, unsigned lo, unsigned hi, Fn &&fn)
{
    if (lo >= hi)
        return true;
    unsigned wlo = lo >> 6;
    unsigned whi = (hi - 1) >> 6;
    for (unsigned wi = wlo; wi <= whi; ++wi) {
        uint64_t word = w[wi];
        if (wi == wlo)
            word &= ~uint64_t(0) << (lo & 63);
        if (wi == whi && (hi & 63) != 0)
            word &= ~uint64_t(0) >> (64 - (hi & 63));
        while (word) {
            unsigned bit = unsigned(std::countr_zero(word));
            word &= word - 1;
            if (!fn(wi * 64 + bit))
                return false;
        }
    }
    return true;
}

/** Visit the set bits of @p w over a @p slots-entry ring in age
 *  order from @p head: segment [head, slots), then [0, head).
 *  @p fn(bit) returns false to stop early (select's width budget). */
template <typename Fn>
inline void
scanSetBitsFrom(const uint64_t *w, unsigned slots, unsigned head,
                Fn &&fn)
{
    if (scanSetBits(w, head, slots, fn))
        scanSetBits(w, 0, head, fn);
}

/** Like scanSetBitsFrom over the intersection a & b (or a & ~b when
 *  @p complement_b): select's priority-class split scans
 *  ready & highPrio then ready & ~highPrio, so neither pass loads
 *  the DynInsts of the other class. @p fn(bit) returns false to
 *  stop early (the width budget). */
template <typename Fn>
inline void
scanSetBitsFromAnd(const uint64_t *a, const uint64_t *b,
                   bool complement_b, unsigned slots, unsigned head,
                   Fn &&fn)
{
    auto seg = [&](unsigned lo, unsigned hi) {
        if (lo >= hi)
            return true;
        unsigned wlo = lo >> 6;
        unsigned whi = (hi - 1) >> 6;
        for (unsigned wi = wlo; wi <= whi; ++wi) {
            uint64_t word = a[wi] & (complement_b ? ~b[wi] : b[wi]);
            if (wi == wlo)
                word &= ~uint64_t(0) << (lo & 63);
            if (wi == whi && (hi & 63) != 0)
                word &= ~uint64_t(0) >> (64 - (hi & 63));
            while (word) {
                unsigned bit = unsigned(std::countr_zero(word));
                word &= word - 1;
                if (!fn(wi * 64 + bit))
                    return false;
            }
        }
        return true;
    };
    if (seg(head, slots))
        seg(0, head);
}

/** Like scanSetBitsFrom over the union of two planes (the two
 *  operand rows of a producer's dependency vector): @p fn(bit, in_a,
 *  in_b) says which plane(s) held the bit, so the caller touches
 *  operand 0 before operand 1 — the consumer-list append order the
 *  reference engine visits in. */
template <typename Fn>
inline void
scanSetBitsFrom2(const uint64_t *a, const uint64_t *b, unsigned slots,
                 unsigned head, Fn &&fn)
{
    auto seg = [&](unsigned lo, unsigned hi) {
        if (lo >= hi)
            return;
        unsigned wlo = lo >> 6;
        unsigned whi = (hi - 1) >> 6;
        for (unsigned wi = wlo; wi <= whi; ++wi) {
            uint64_t wa = a[wi];
            uint64_t wb = b[wi];
            uint64_t word = wa | wb;
            if (wi == wlo)
                word &= ~uint64_t(0) << (lo & 63);
            if (wi == whi && (hi & 63) != 0)
                word &= ~uint64_t(0) >> (64 - (hi & 63));
            while (word) {
                unsigned bit = unsigned(std::countr_zero(word));
                uint64_t m = word & (~word + 1);
                word &= word - 1;
                fn(wi * 64 + bit, (wa & m) != 0, (wb & m) != 0);
            }
        }
    };
    seg(head, slots);
    seg(0, head);
}

} // namespace hpa::core

#endif // HPA_CORE_CONTAINERS_HH
