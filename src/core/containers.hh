/**
 * @file
 * Allocation-free window-sized containers for the core's hot path.
 *
 * BoundedRing replaces std::deque where the occupancy is bounded by
 * a configuration constant (store list <= window size, fetch queue
 * <= front-end depth x width): a fixed array with head/count
 * indices, so push/pop never touch the heap and traversal is a
 * dense sequential walk.
 *
 * PooledLists replaces vector<vector<T>> for the per-slot consumer
 * lists: all entries of all lists live in one index-linked node
 * pool with per-list head/tail, append order preserved. clear() is
 * O(1) — it splices the whole list onto the free list — and the
 * pool's high-water mark is bounded (each in-window instruction
 * appends at most two consumer entries, and a producer's list is
 * cleared no later than its slot is reused), so after warm-up the
 * steady state performs zero heap allocation.
 */

#ifndef HPA_CORE_CONTAINERS_HH
#define HPA_CORE_CONTAINERS_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpa::core
{

/** Fixed-capacity FIFO ring; the caller guarantees the bound. */
template <typename T>
class BoundedRing
{
  public:
    BoundedRing() = default;

    /** Discard contents and (re)allocate a fixed capacity. */
    void
    reset(size_t capacity)
    {
        buf_.assign(capacity, T{});
        head_ = 0;
        count_ = 0;
    }

    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    size_t capacity() const { return buf_.size(); }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    /** @p i-th element from the front (0 = oldest). */
    T &operator[](size_t i) { return buf_[wrap(head_ + i)]; }
    const T &operator[](size_t i) const
    {
        return buf_[wrap(head_ + i)];
    }

    void
    push_back(const T &v)
    {
        assert(count_ < buf_.size());
        buf_[wrap(head_ + count_)] = v;
        ++count_;
    }

    void
    pop_front()
    {
        assert(count_ > 0);
        head_ = wrap(head_ + 1);
        --count_;
    }

  private:
    /** head_ + i < 2 * capacity always, so one subtract suffices. */
    size_t
    wrap(size_t i) const
    {
        return i >= buf_.size() ? i - buf_.size() : i;
    }

    std::vector<T> buf_;
    size_t head_ = 0;
    size_t count_ = 0;
};

/** N append-ordered lists sharing one pooled node array. */
template <typename T>
class PooledLists
{
  public:
    /** Drop everything: @p lists empty lists over a pool with room
     *  for @p reserve_nodes entries before any growth. */
    void
    reset(size_t lists, size_t reserve_nodes)
    {
        head_.assign(lists, NIL);
        tail_.assign(lists, NIL);
        nodes_.clear();
        nodes_.reserve(reserve_nodes);
        free_ = NIL;
    }

    bool empty(unsigned list) const { return head_[list] == NIL; }

    void
    append(unsigned list, const T &v)
    {
        int32_t n;
        if (free_ != NIL) {
            n = free_;
            free_ = nodes_[n].next;
            nodes_[n].value = v;
            nodes_[n].next = NIL;
        } else {
            n = int32_t(nodes_.size());
            nodes_.push_back(Node{v, NIL});
        }
        if (tail_[list] == NIL)
            head_[list] = n;
        else
            nodes_[tail_[list]].next = n;
        tail_[list] = n;
    }

    /** Splice the whole list onto the free list — O(1). */
    void
    clear(unsigned list)
    {
        int32_t h = head_[list];
        if (h == NIL)
            return;
        nodes_[tail_[list]].next = free_;
        free_ = h;
        head_[list] = NIL;
        tail_[list] = NIL;
    }

    /** Visit each element of @p list in append order. @p fn must not
     *  append to or clear any list of this pool. */
    template <typename Fn>
    void
    forEach(unsigned list, Fn &&fn) const
    {
        for (int32_t n = head_[list]; n != NIL; n = nodes_[n].next)
            fn(nodes_[n].value);
    }

    /** Pool high-water mark (allocated nodes), for diagnostics. */
    size_t poolSize() const { return nodes_.size(); }

  private:
    static constexpr int32_t NIL = -1;

    struct Node
    {
        T value;
        int32_t next;
    };

    std::vector<Node> nodes_;
    std::vector<int32_t> head_;
    std::vector<int32_t> tail_;
    int32_t free_ = NIL;
};

} // namespace hpa::core

#endif // HPA_CORE_CONTAINERS_HH
