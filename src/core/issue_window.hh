/**
 * @file
 * SoA bitmask state of the issue window (the "masked" scheduler
 * engine, CoreConfig::sched_engine). The per-entry AoS DynInst array
 * stays the architectural record; this header holds the structure-
 * of-arrays index planes the hot wakeup/select loops actually walk:
 *
 *  - occupancy / ready / issued / highPrio: one bit per window slot.
 *    The ready plane mirrors the reference engine's seq-ordered
 *    ready chain (bit set <=> DynInst::inReadyList); select is a
 *    tzcnt scan of it in age order (containers.hh scan helpers).
 *    The issued plane replaces the issued chain for replay-shadow
 *    candidate collection. highPrio caches the loads-and-branches-
 *    first select class, fixed at dispatch, so each select pass
 *    scans only its own class (ready & highPrio, then
 *    ready & ~highPrio).
 *
 *  - dep[2]: the dependency matrix, one producer -> consumers
 *    bit-vector per window slot and source-operand plane. Bit s of
 *    dep[k].row(p) means window slot s's operand k names the
 *    instruction in slot p as its producer. A broadcast visits
 *    row(p) with one OR of a few words instead of chasing a pooled
 *    linked list; an instruction's two scheduling operands always
 *    name distinct producers (one destination per instruction), so
 *    a consumer appears in at most one plane per producer and the
 *    plane-0-before-plane-1 visit order reproduces the reference
 *    engine's consumer-list append order exactly.
 *
 *  - slowPend: the sequential-wakeup slow plane. The fast broadcast
 *    records here which consumers still owe their tag match to the
 *    slow bus (policy hook maskSlowPlane); the SlowWake event one
 *    cycle later ORs exactly those bits back through the ready-plane
 *    update instead of re-walking every consumer.
 *
 * Lifetime invariant (why no seq-staleness checks are needed on the
 * masked wake path): commit is in order and a consumer is strictly
 * younger than its producer, so while a producer is in the window
 * every one of its dependency bits still names the consumer it was
 * set for. A producer's rows are cleared when its slot is
 * re-dispatched (clearProducer); the stale rows a committed slot
 * leaves behind are harmless in between, because only an in-window
 * producer's rows are ever scanned, and a consumer bit cannot go
 * stale while its producer is still in the window (the strictly
 * younger consumer commits later).
 *
 * All planes live in flat vectors sized once at reset(); steady-state
 * operation is allocation-free (test_hotpath_alloc covers this
 * engine too).
 */

#ifndef HPA_CORE_ISSUE_WINDOW_HH
#define HPA_CORE_ISSUE_WINDOW_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/containers.hh"

namespace hpa::core
{

/** One bit per window slot, with age-ordered scans. */
class SlotMask
{
  public:
    void
    reset(unsigned slots)
    {
        slots_ = slots;
        words_.assign(wordCount(slots), 0);
    }

    bool
    test(unsigned s) const
    {
        return (words_[s >> 6] >> (s & 63)) & 1;
    }

    void set(unsigned s) { words_[s >> 6] |= uint64_t(1) << (s & 63); }

    void
    clear(unsigned s)
    {
        words_[s >> 6] &= ~(uint64_t(1) << (s & 63));
    }

    /** Test-only corruption hook: toggle membership of @p s, which
     *  diverges from the re-derived window state whichever way the
     *  bit was (the masked analog of SlotChain::testAppendPhantom). */
    void
    testFlip(unsigned s)
    {
        words_[s >> 6] ^= uint64_t(1) << (s & 63);
    }

    const uint64_t *words() const { return words_.data(); }
    unsigned capacity() const { return slots_; }

    /** Visit members in age order from @p head; @p fn(slot) returns
     *  false to stop. */
    template <typename Fn>
    void
    forEachFrom(unsigned head, Fn &&fn) const
    {
        scanSetBitsFrom(words_.data(), slots_, head, fn);
    }

    /** Materialize the members in age order (cold diagnostics). */
    std::vector<unsigned>
    toVector(unsigned head) const
    {
        std::vector<unsigned> v;
        forEachFrom(head, [&](unsigned s) {
            v.push_back(s);
            return true;
        });
        return v;
    }

    static size_t
    wordCount(unsigned slots)
    {
        return (size_t(slots) + 63) / 64;
    }

  private:
    std::vector<uint64_t> words_;
    unsigned slots_ = 0;
};

/** One slot-mask row per window slot, stored flat. */
class DepMatrix
{
  public:
    void
    reset(unsigned slots)
    {
        slots_ = slots;
        rowWords_ = SlotMask::wordCount(slots);
        bits_.assign(rowWords_ * slots, 0);
    }

    const uint64_t *
    row(unsigned slot) const
    {
        return bits_.data() + size_t(slot) * rowWords_;
    }

    void
    set(unsigned row_slot, unsigned bit)
    {
        bits_[size_t(row_slot) * rowWords_ + (bit >> 6)] |=
            uint64_t(1) << (bit & 63);
    }

    bool
    test(unsigned row_slot, unsigned bit) const
    {
        return (bits_[size_t(row_slot) * rowWords_ + (bit >> 6)]
                >> (bit & 63))
            & 1;
    }

    void
    clearRow(unsigned row_slot)
    {
        uint64_t *r = bits_.data() + size_t(row_slot) * rowWords_;
        for (size_t i = 0; i < rowWords_; ++i)
            r[i] = 0;
    }

  private:
    std::vector<uint64_t> bits_;
    size_t rowWords_ = 0;
    unsigned slots_ = 0;
};

/** The masked engine's full plane set, sized to the window. */
struct IssueWindowMasks
{
    SlotMask occupancy; ///< in-window slots (dispatch .. commit)
    SlotMask ready;     ///< unissued, scheduler-ready (select scan)
    SlotMask issued;    ///< issued-but-incomplete (replay candidates)
    SlotMask highPrio;  ///< loads/branches (pass-0 select class)
    DepMatrix dep[2];   ///< producer -> consumers, per operand plane
    DepMatrix slowPend; ///< slow-bus re-delivery plane (seq wakeup)

    void
    reset(unsigned slots)
    {
        occupancy.reset(slots);
        ready.reset(slots);
        issued.reset(slots);
        highPrio.reset(slots);
        dep[0].reset(slots);
        dep[1].reset(slots);
        slowPend.reset(slots);
    }

    /** Drop every dependency bit owned by @p slot (commit / slot
     *  reuse — the pooled consumer-list clear of the masked world). */
    void
    clearProducer(unsigned slot)
    {
        dep[0].clearRow(slot);
        dep[1].clearRow(slot);
        slowPend.clearRow(slot);
    }
};

} // namespace hpa::core

#endif // HPA_CORE_ISSUE_WINDOW_HH
