/**
 * @file
 * Pluggable register-file read-port policies.
 *
 * Each read-port organization is a strategy struct held in an
 * `RFPortPolicy` variant and dispatched through `visitPolicy` — same
 * contract as `SchedPolicy` (header-inlined hooks, no virtual calls
 * on the per-cycle path). Hook surface:
 *
 *  - `seqAccess(ports)`   — must this issue take the sequential
 *                           register-access penalty (+1 cycle, one
 *                           issue slot blocked next cycle)?
 *  - `portBudget(width)`  — issue-time read ports arbitrated across
 *                           the select group (~0u = unconstrained).
 *  - `onDispatch(di,...)` — dispatch-time hook (operand prefetch
 *                           claims its per-cycle port bandwidth).
 *
 * The ExtraStage pipeline effect lives in CoreConfig::schedToExec();
 * its policy struct therefore carries no hot-path behavior of its
 * own. To add a policy, follow the recipe in DESIGN.md "Policy API".
 */

#ifndef HPA_CORE_RF_POLICY_HH
#define HPA_CORE_RF_POLICY_HH

#include <cstdint>
#include <variant>

#include "core/config.hh"
#include "core/dyn_inst.hh"
#include "stats/stats.hh"

namespace hpa::core
{

/** Two read ports per issue slot (base machine): no port pressure. */
struct TwoPortRF
{
    bool seqAccess(unsigned) const { return false; }
    unsigned portBudget(unsigned) const { return ~0u; }
    void
    onDispatch(DynInst &, uint64_t, stats::Counter &,
               stats::Counter &)
    {
    }
};

/** One read port per issue slot; a 2-source instruction whose
 *  operands both come from the register file reads sequentially
 *  (Section 4.3). */
struct SequentialAccessRF
{
    bool seqAccess(unsigned ports) const { return ports == 2; }
    unsigned portBudget(unsigned) const { return ~0u; }
    void
    onDispatch(DynInst &, uint64_t, stats::Counter &,
               stats::Counter &)
    {
    }
};

/** Conventional 2R/slot register file pipelined over one extra
 *  stage; the timing effect is CoreConfig::schedToExec(). */
struct ExtraStageRF
{
    bool seqAccess(unsigned) const { return false; }
    unsigned portBudget(unsigned) const { return ~0u; }
    void
    onDispatch(DynInst &, uint64_t, stats::Counter &,
               stats::Counter &)
    {
    }
};

/** Half the read ports behind a fully connected crossbar with
 *  global arbitration across the issue group (Section 5.2). */
struct HalfPortCrossbarRF
{
    bool seqAccess(unsigned) const { return false; }
    unsigned portBudget(unsigned width) const { return width; }
    void
    onDispatch(DynInst &, uint64_t, stats::Counter &,
               stats::Counter &)
    {
    }
};

/**
 * Half ports + crossbar augmented with an operand prefetch buffer
 * (Los, arXiv 2502.00147): operands whose values already sit in the
 * architectural register file at dispatch — no in-flight producer
 * broadcast pending — are read early through `bandwidth` dedicated
 * prefetch ports per cycle and parked in a buffer beside the window,
 * so they cost no issue-time read port. Only producer-less operands
 * are eligible: a prefetched value can never be invalidated by
 * replay repair, keeping the buffer trivially coherent.
 */
struct PrefetchBufferRF
{
    unsigned bandwidth;

    uint64_t lastCycle = NO_CYCLE;
    unsigned usedThisCycle = 0;

    bool seqAccess(unsigned) const { return false; }
    unsigned portBudget(unsigned width) const { return width; }

    void
    onDispatch(DynInst &di, uint64_t cycle, stats::Counter &hits,
               stats::Counter &misses)
    {
        for (unsigned i = 0; i < di.numSrc; ++i) {
            OperandState &op = di.src[i];
            if (!op.readyAtInsert || op.wakeProducerSeq != NO_SEQ)
                continue;
            if (cycle != lastCycle) {
                lastCycle = cycle;
                usedThisCycle = 0;
            }
            if (usedThisCycle < bandwidth) {
                ++usedThisCycle;
                op.prefetched = true;
                ++hits;
            } else {
                ++misses;
            }
        }
    }
};

/** The closed set of register-file port policies. */
using RFPortPolicy =
    std::variant<TwoPortRF, SequentialAccessRF, ExtraStageRF,
                 HalfPortCrossbarRF, PrefetchBufferRF>;

/** Construction-time selection; never on the per-cycle path. */
inline RFPortPolicy
makeRFPolicy(const CoreConfig &cfg)
{
    switch (cfg.regfile) {
      case RegfileModel::SequentialAccess:
        return SequentialAccessRF{};
      case RegfileModel::ExtraStage:
        return ExtraStageRF{};
      case RegfileModel::HalfPortCrossbar:
        return HalfPortCrossbarRF{};
      case RegfileModel::PrefetchBuffer:
        return PrefetchBufferRF{cfg.width / 2 ? cfg.width / 2 : 1};
      case RegfileModel::TwoPort:
      default:
        return TwoPortRF{};
    }
}

} // namespace hpa::core

#endif // HPA_CORE_RF_POLICY_HH
