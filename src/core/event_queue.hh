/**
 * @file
 * Calendar event queue for the core's cycle-indexed event machinery:
 * a power-of-2 ring of per-cycle buckets (reused vectors, so the
 * steady state allocates nothing) plus an ordered overflow map for
 * events scheduled further ahead than the ring spans. Replaces the
 * red-black-tree std::map<cycle, vector<Event>> on the per-cycle hot
 * path: schedule and drain become an index into the ring instead of
 * a tree walk with node allocation/rebalancing.
 *
 * Buckets are split by delivery rank (NumRanks vectors per cycle
 * slot, rank fixed at schedule time), so draining a cycle is one
 * pass per rank over exactly that rank's events — no per-event rank
 * compares, and no re-scanning the whole bucket once per rank class
 * as the flat layout required.
 *
 * Ordering invariants (the core's bit-identity depends on these):
 *  - Per cycle, events are delivered rank-ascending, and in global
 *    schedule order within a rank. Ring appends preserve the
 *    within-rank order trivially. Overflow entries for cycle c are
 *    only ever scheduled while c is out of ring range (c - now >
 *    mask) and are migrated into the ring by beginCycle() at the
 *    first cycle where c enters range — before any in-range
 *    schedule for c can happen — so migrated entries always precede
 *    ring-path entries, matching schedule order.
 *  - A bucket only ever holds events for one cycle: entries for
 *    cycle c are drained at cycle c, and the earliest a schedule can
 *    target c + ring_size (the same slot) is cycle c itself, which
 *    lands in the overflow map (distance == ring_size > mask).
 *  - The bucket being drained is never appended to: schedules target
 *    strictly-future cycles, and for 1 <= when - now <= mask the
 *    slot index (when & mask) never equals (now & mask).
 */

#ifndef HPA_CORE_EVENT_QUEUE_HH
#define HPA_CORE_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
// hpa-nolint(HPA002): overflow map for beyond-horizon events only
#include <map>
#include <vector>

namespace hpa::core
{

template <typename T, unsigned NumRanks = 1>
class CalendarQueue
{
  public:
    /** One cycle's events, one vector per delivery rank. */
    using Bucket = std::array<std::vector<T>, NumRanks>;

    /** @param log2_slots ring size as a power of 2. The default 256
     *  covers every default-config event horizon (memory latency +
     *  L2 + L1 + sched-to-exec is ~65 cycles); longer latencies are
     *  still exact, they just route through the overflow map. */
    explicit CalendarQueue(unsigned log2_slots = 8)
        : slots_(size_t(1) << log2_slots),
          mask_((uint64_t(1) << log2_slots) - 1)
    {}

    /** Pre-size every ring bucket. clear() keeps capacity, so a
     *  bucket never shrinks — but it starts at zero and would
     *  otherwise learn its high-water mark through reallocation,
     *  which leaks allocations into steady-state ticks long after
     *  warm-up (test_hotpath_alloc counts them). A bound-derived
     *  reserve at construction makes the zero-allocation claim
     *  structural instead of empirical. */
    void
    reserveSlots(size_t per_slot)
    {
        for (auto &s : slots_)
            for (auto &r : s)
                r.reserve(per_slot);
    }

    /** Append @p ev for cycle @p when at delivery rank @p rank;
     *  @p now is the current cycle and @p when must be strictly in
     *  the future. */
    void
    schedule(uint64_t when, uint64_t now, const T &ev,
             unsigned rank = 0)
    {
        ++pending_;
        if (when - now <= mask_)
            slots_[when & mask_][rank].push_back(ev);
        else
            overflow_[when][rank].push_back(ev);
    }

    /**
     * Advance to cycle @p now: migrate far-future events that just
     * came into ring range, then return @p now's bucket for
     * processing. Must be called once per cycle, before any
     * schedule() at that cycle, and followed by endCycle() once the
     * bucket has been handled. The reference stays valid while
     * handlers schedule new events (they can never land in it).
     */
    Bucket &
    beginCycle(uint64_t now)
    {
        while (!overflow_.empty()
               && overflow_.begin()->first - now <= mask_) {
            auto it = overflow_.begin();
            Bucket &dst = slots_[it->first & mask_];
            for (unsigned r = 0; r < NumRanks; ++r)
                dst[r].insert(dst[r].end(), it->second[r].begin(),
                              it->second[r].end());
            overflow_.erase(it);
        }
        return slots_[now & mask_];
    }

    /** Release cycle-@p now's processed bucket (keeps capacity). */
    void
    endCycle(uint64_t now)
    {
        Bucket &b = slots_[now & mask_];
        for (auto &r : b) {
            pending_ -= r.size();
            r.clear();
        }
    }

    /** Events scheduled and not yet drained. */
    size_t pending() const { return pending_; }

    /** Events currently parked beyond the ring horizon. */
    size_t
    overflowPending() const
    {
        size_t n = 0;
        for (const auto &[when, evs] : overflow_)
            for (const auto &r : evs)
                n += r.size();
        return n;
    }

  private:
    std::vector<Bucket> slots_;
    uint64_t mask_;
    size_t pending_ = 0;
    /** when -> events, for when - now > mask_ at schedule time.
     *  Only touched when an event outruns the 256-cycle ring horizon
     *  (the default config never does); correctness needs the
     *  ordered walk in beginCycle(). */
    // hpa-nolint(HPA002): beyond-horizon overflow path, not per-cycle
    std::map<uint64_t, Bucket> overflow_;
};

} // namespace hpa::core

#endif // HPA_CORE_EVENT_QUEUE_HH
