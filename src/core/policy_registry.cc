#include "core/policy_registry.hh"

namespace hpa::core
{

// Registration tables. One entry per line, key first — the hpa-lint
// HPA006 rule extracts the keys from this file and requires each to
// be documented in EXPERIMENTS.md.

const std::vector<SchedPolicyInfo> &
schedPolicies()
{
    static const std::vector<SchedPolicyInfo> table = {
        {"conv", "/conv-wakeup", WakeupModel::Conventional,
         "conventional broadcast wakeup (two comparators/entry)"},
        {"seq", "/seq-wakeup", WakeupModel::Sequential,
         "sequential wakeup with a last-arrival predictor"},
        {"seq-nopred", "/seq-wakeup-nopred",
         WakeupModel::SequentialNoPred,
         "sequential wakeup, right operand statically last"},
        {"tag-elim", "/tag-elim", WakeupModel::TagElimination,
         "tag elimination with scoreboard mis-issue detection"},
        {"dlt", "/dlt-wakeup", WakeupModel::LoadDelayTracking,
         "load-delay-tracking wakeup (bounded delay counters)"},
    };
    return table;
}

const std::vector<RFPolicyInfo> &
rfPolicies()
{
    static const std::vector<RFPolicyInfo> table = {
        {"2port", "/2r-port", RegfileModel::TwoPort,
         "two read ports per issue slot (base machine)"},
        {"seq", "/seq-rf", RegfileModel::SequentialAccess,
         "one port per slot, sequential 2-operand access"},
        {"extra-stage", "/extra-rf-stage", RegfileModel::ExtraStage,
         "2R/slot register file pipelined over an extra stage"},
        {"half-xbar", "/half-ports-xbar",
         RegfileModel::HalfPortCrossbar,
         "half ports behind a fully connected crossbar"},
        {"prefetch", "/prefetch-rf", RegfileModel::PrefetchBuffer,
         "half ports + crossbar with an operand prefetch buffer"},
    };
    return table;
}

const SchedPolicyInfo *
findSchedPolicy(std::string_view name)
{
    for (const SchedPolicyInfo &p : schedPolicies())
        if (name == p.name)
            return &p;
    return nullptr;
}

const RFPolicyInfo *
findRFPolicy(std::string_view name)
{
    for (const RFPolicyInfo &p : rfPolicies())
        if (name == p.name)
            return &p;
    return nullptr;
}

const SchedPolicyInfo &
schedPolicyFor(WakeupModel model)
{
    for (const SchedPolicyInfo &p : schedPolicies())
        if (p.model == model)
            return p;
    return schedPolicies().front();
}

const RFPolicyInfo &
rfPolicyFor(RegfileModel model)
{
    for (const RFPolicyInfo &p : rfPolicies())
        if (p.model == model)
            return p;
    return rfPolicies().front();
}

namespace
{

template <typename Table>
std::string
joinNames(const Table &table)
{
    std::string out;
    for (const auto &p : table) {
        if (!out.empty())
            out += ", ";
        out += p.name;
    }
    return out;
}

} // namespace

std::string
schedPolicyNames()
{
    return joinNames(schedPolicies());
}

std::string
rfPolicyNames()
{
    return joinNames(rfPolicies());
}

} // namespace hpa::core
