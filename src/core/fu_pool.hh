/**
 * @file
 * Functional-unit pool with Table 1 unit counts and latencies.
 * Multipliers are pipelined; dividers are not (they occupy their unit
 * for the full operation latency).
 */

#ifndef HPA_CORE_FU_POOL_HH
#define HPA_CORE_FU_POOL_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "isa/opcodes.hh"

namespace hpa::core
{

/** Groups of units an op class maps onto. */
enum class FuGroup : uint8_t
{
    IntAlu,
    FpAlu,
    IntMulDiv,
    FpMulDiv,
    MemPort,
    NumGroups,
};

/** Map an op class onto its unit group. */
FuGroup fuGroup(isa::OpClass cls);

/** Per-cycle reservation tracker for all functional units. */
class FuPool
{
  public:
    explicit FuPool(const CoreConfig &cfg);

    /**
     * Try to reserve a unit of the group serving @p cls at @p cycle.
     * Pipelined units are busy for one cycle; unpipelined (divide)
     * units for the op latency.
     * @return true when a unit was available and is now reserved.
     */
    bool acquire(isa::OpClass cls, uint64_t cycle);

    /** Units in the group serving @p cls. */
    unsigned count(isa::OpClass cls) const;

  private:
    /** busyUntil (exclusive) per unit instance, per group. */
    std::vector<uint64_t> units_[size_t(FuGroup::NumGroups)];
};

} // namespace hpa::core

#endif // HPA_CORE_FU_POOL_HH
