/**
 * @file
 * Functional-unit pool with Table 1 unit counts and latencies.
 * Multipliers are pipelined; dividers are not (they occupy their unit
 * for the full operation latency).
 */

#ifndef HPA_CORE_FU_POOL_HH
#define HPA_CORE_FU_POOL_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "isa/opcodes.hh"

namespace hpa::core
{

/** Groups of units an op class maps onto. */
enum class FuGroup : uint8_t
{
    IntAlu,
    FpAlu,
    IntMulDiv,
    FpMulDiv,
    MemPort,
    NumGroups,
};

/** Map an op class onto its unit group. Header-inline: acquire()
 *  runs once per select candidate, and the switch folds into it. */
inline FuGroup
fuGroup(isa::OpClass cls)
{
    using isa::OpClass;
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::System:
        return FuGroup::IntAlu;
      case OpClass::FpAlu:
        return FuGroup::FpAlu;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FuGroup::IntMulDiv;
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return FuGroup::FpMulDiv;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        return FuGroup::MemPort;
      default:
        return FuGroup::IntAlu;
    }
}

/** Per-cycle reservation tracker for all functional units. */
class FuPool
{
  public:
    explicit FuPool(const CoreConfig &cfg);

    /**
     * Try to reserve a unit of the group serving @p cls at @p cycle.
     * Pipelined units are busy for one cycle; unpipelined (divide)
     * units for the op latency. Header-inline: this is the per-
     * select-candidate hot path (a ≤4-entry scan).
     * @return true when a unit was available and is now reserved.
     */
    bool
    acquire(isa::OpClass cls, uint64_t cycle)
    {
        auto &group = units_[size_t(fuGroup(cls))];
        unsigned occupancy = isa::opClassUnpipelined(cls)
            ? isa::opClassLatency(cls) : 1;
        for (uint64_t &busy_until : group) {
            if (busy_until <= cycle) {
                busy_until = cycle + occupancy;
                return true;
            }
        }
        return false;
    }

    /** Units in the group serving @p cls. */
    unsigned count(isa::OpClass cls) const;

  private:
    /** busyUntil (exclusive) per unit instance, per group. */
    std::vector<uint64_t> units_[size_t(FuGroup::NumGroups)];
};

} // namespace hpa::core

#endif // HPA_CORE_FU_POOL_HH
