#include "core/fu_pool.hh"

namespace hpa::core
{

FuGroup
fuGroup(isa::OpClass cls)
{
    using isa::OpClass;
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::System:
        return FuGroup::IntAlu;
      case OpClass::FpAlu:
        return FuGroup::FpAlu;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FuGroup::IntMulDiv;
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return FuGroup::FpMulDiv;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        return FuGroup::MemPort;
      default:
        return FuGroup::IntAlu;
    }
}

FuPool::FuPool(const CoreConfig &cfg)
{
    units_[size_t(FuGroup::IntAlu)].assign(cfg.num_int_alu, 0);
    units_[size_t(FuGroup::FpAlu)].assign(cfg.num_fp_alu, 0);
    units_[size_t(FuGroup::IntMulDiv)].assign(cfg.num_int_muldiv, 0);
    units_[size_t(FuGroup::FpMulDiv)].assign(cfg.num_fp_muldiv, 0);
    units_[size_t(FuGroup::MemPort)].assign(cfg.num_mem_ports, 0);
}

bool
FuPool::acquire(isa::OpClass cls, uint64_t cycle)
{
    auto &group = units_[size_t(fuGroup(cls))];
    unsigned occupancy = isa::opClassUnpipelined(cls)
        ? isa::opClassLatency(cls) : 1;
    for (uint64_t &busy_until : group) {
        if (busy_until <= cycle) {
            busy_until = cycle + occupancy;
            return true;
        }
    }
    return false;
}

unsigned
FuPool::count(isa::OpClass cls) const
{
    return unsigned(units_[size_t(fuGroup(cls))].size());
}

} // namespace hpa::core
