#include "core/fu_pool.hh"

namespace hpa::core
{

FuPool::FuPool(const CoreConfig &cfg)
{
    units_[size_t(FuGroup::IntAlu)].assign(cfg.num_int_alu, 0);
    units_[size_t(FuGroup::FpAlu)].assign(cfg.num_fp_alu, 0);
    units_[size_t(FuGroup::IntMulDiv)].assign(cfg.num_int_muldiv, 0);
    units_[size_t(FuGroup::FpMulDiv)].assign(cfg.num_fp_muldiv, 0);
    units_[size_t(FuGroup::MemPort)].assign(cfg.num_mem_ports, 0);
}

unsigned
FuPool::count(isa::OpClass cls) const
{
    return unsigned(units_[size_t(fuGroup(cls))].size());
}

} // namespace hpa::core
