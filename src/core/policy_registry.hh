/**
 * @file
 * String-keyed registry of scheduler and register-file policies.
 *
 * One table per policy axis maps a short registry key (the name
 * accepted by `MachineBuilder::schedPolicy()` / `rfPolicy()` and the
 * `--sched-policy` / `--rf-policy` CLI flags) to the machine-name
 * suffix, the `CoreConfig` enum it selects, and a one-line summary.
 * The suffixes key the golden IPC gate, so they are part of the
 * stable surface; the hpa-lint HPA006 rule requires every registered
 * name to be documented in EXPERIMENTS.md.
 */

#ifndef HPA_CORE_POLICY_REGISTRY_HH
#define HPA_CORE_POLICY_REGISTRY_HH

#include <string>
#include <string_view>
#include <vector>

#include "core/config.hh"

namespace hpa::core
{

/** One registered scheduler (wakeup/select) policy. */
struct SchedPolicyInfo
{
    const char *name;   ///< registry key ("conv", "dlt", ...)
    const char *suffix; ///< machine-name suffix ("/conv-wakeup", ...)
    WakeupModel model;  ///< CoreConfig selection
    const char *summary;
};

/** One registered register-file read-port policy. */
struct RFPolicyInfo
{
    const char *name;
    const char *suffix;
    RegfileModel model;
    const char *summary;
};

/** All registered policies, registration order. */
const std::vector<SchedPolicyInfo> &schedPolicies();
const std::vector<RFPolicyInfo> &rfPolicies();

/** Lookup by registry key; nullptr when unknown. */
const SchedPolicyInfo *findSchedPolicy(std::string_view name);
const RFPolicyInfo *findRFPolicy(std::string_view name);

/** Reverse lookup by model (every enumerator is registered). */
const SchedPolicyInfo &schedPolicyFor(WakeupModel model);
const RFPolicyInfo &rfPolicyFor(RegfileModel model);

/** Comma-separated registry keys, for unknown-name error messages
 *  and CLI help text. */
std::string schedPolicyNames();
std::string rfPolicyNames();

} // namespace hpa::core

#endif // HPA_CORE_POLICY_REGISTRY_HH
