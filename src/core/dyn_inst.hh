/**
 * @file
 * Per-instruction dynamic state tracked while an instruction is in
 * the out-of-order window.
 */

#ifndef HPA_CORE_DYN_INST_HH
#define HPA_CORE_DYN_INST_HH

#include <cstdint>

#include "func/emulator.hh"
#include "isa/static_inst.hh"

namespace hpa::core
{

/** Invalid cycle sentinel. */
constexpr uint64_t NO_CYCLE = ~0ull;
/** Invalid sequence number sentinel. */
constexpr uint64_t NO_SEQ = ~0ull;

/** State of one source operand of an in-window instruction. */
struct OperandState
{
    isa::RegIndex reg = isa::NO_REG;
    /** Sequence number of the in-flight producer; NO_SEQ when the
     *  value was already available at insert. */
    uint64_t producerSeq = NO_SEQ;
    /** Format position: true when this unique operand came from the
     *  left (ra) field. */
    bool leftField = true;

    /** Tag match observed (per-model bus timing applied). */
    bool ready = false;
    /** Cycle the operand's wakeup arrived (select-eligibility). */
    uint64_t wakeCycle = NO_CYCLE;
    /** Cycle the value is actually available (scoreboard view). */
    bool dataReady = false;
    uint64_t dataReadyCycle = NO_CYCLE;
    /** Producer whose broadcast set `ready` (for replay repair). */
    uint64_t wakeProducerSeq = NO_SEQ;

    /** Sequential wakeup: operand listens to the slow bus. */
    bool slowSide = false;
    /** Tag elimination: operand has a comparator on the bus. */
    bool watched = true;
    /** Value was already available when inserted into the window. */
    bool readyAtInsert = false;
    /** Operand prefetch buffer holds the value (PrefetchBuffer RF
     *  policy): costs no issue-time read port. Only set for operands
     *  with no in-flight producer, so replay repair can never
     *  invalidate a prefetched value. */
    bool prefetched = false;
};

/** A dynamic instruction occupying a window (RUU) slot. */
struct DynInst
{
    /** Committed-path record; points into the instruction source's
     *  stable storage (see InstSource's lifetime contract), so slot
     *  setup and recovery never copy the record. Null only in an
     *  empty slot. */
    const func::ExecRecord *rec = nullptr;
    uint64_t seq = NO_SEQ;

    // --- Dependences (unique, non-zero source registers). ---
    unsigned numSrc = 0;
    OperandState src[2];

    // --- Pipeline state. ---
    bool inWindow = false;
    bool issued = false;
    bool completed = false;
    uint64_t fetchCycle = NO_CYCLE;
    uint64_t dispatchCycle = NO_CYCLE;
    uint64_t issueCycle = NO_CYCLE;
    uint64_t completeCycle = NO_CYCLE;
    /** Incremented on every (re)issue; cancels stale events. */
    uint32_t issueToken = 0;

    /** Actual execution latency assigned at issue. */
    unsigned latency = 1;
    /** Actual memory-system latency for loads (set at issue). */
    unsigned memLatency = 0;
    /** Cycle this instruction's destination tag broadcasts on the
     *  fast bus (select-eligibility of dependents). */
    uint64_t wakeBroadcastCycle = NO_CYCLE;
    /** Window slot of the store-data producer (stores only). */
    int storeDataProducerSlot = -1;
    /** Register-file read ports consumed at issue (0..2). */
    unsigned rfPorts = 0;
    /** Issued with the sequential-register-access penalty. */
    bool seqRegAccess = false;
    /** Load issued assuming a DL1 hit but missed. */
    bool loadMissReplay = false;
    /** Tag elimination: issued before an unwatched operand was
     *  data-ready (mis-schedule). */
    bool tagElimMisissue = false;
    /** Tag elimination: after a mis-schedule the scoreboard gates
     *  re-issue on full operand availability. */
    bool requireDataReady = false;
    /** Control instruction the front end mispredicted. */
    bool mispredictedBranch = false;
    /** Stores: in-flight producer of the store-data register (used to
     *  gate store-to-load forwarding; not a scheduling operand). */
    uint64_t storeDataProducerSeq = NO_SEQ;

    /** Scheduler bookkeeping: currently on the core's incremental
     *  ready list (unissued + all required tag matches observed). */
    bool inReadyList = false;

    // --- Characterization bookkeeping. ---
    /** Operand wake-order stats already recorded for this inst. */
    bool lapResolved = false;
    /** Number of operand data-wakeups observed so far. */
    uint8_t wakesSeen = 0;
    /** Data-arrival cycle of the first operand wakeup. */
    uint64_t firstWakeCycle = NO_CYCLE;
    /** The first data wakeup was the left-field operand. */
    bool firstWakeWasLeft = false;

    // --- Last-arrival prediction bookkeeping (Figures 7, 14). ---
    /** Two pending operands at insert (candidate for prediction). */
    bool twoPending = false;
    /** Main predictor's prediction: true = right field last. */
    bool predRightLast = false;
    /** Shadow predictor predictions per monitored table size. */
    uint8_t shadowPredBits = 0;

    bool isLoad() const { return rec->inst.isLoad(); }
    bool isStore() const { return rec->inst.isStore(); }
    bool isControl() const { return rec->inst.isControl(); }

    /** Pass-0 select class (Section 2.1: loads and branches first).
     *  Fixed at dispatch; the masked engine caches it in the
     *  highPrio bit plane. */
    bool selectHighPrio() const { return isLoad() || isControl(); }

    /** All tag matches observed (per-model issue condition helper). */
    bool
    allSrcReady() const
    {
        for (unsigned i = 0; i < numSrc; ++i)
            if (!src[i].ready)
                return false;
        return true;
    }

    /** All values actually available (scoreboard truth). */
    bool
    allSrcDataReady() const
    {
        for (unsigned i = 0; i < numSrc; ++i)
            if (!src[i].dataReady)
                return false;
        return true;
    }
};

} // namespace hpa::core

#endif // HPA_CORE_DYN_INST_HH
