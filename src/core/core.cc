#include "core/core.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace hpa::core
{

CoreConfig
fourWideConfig()
{
    CoreConfig c;
    c.width = 4;
    c.ruu_size = 64;
    c.lsq_size = 32;
    c.num_int_alu = 4;
    c.num_fp_alu = 2;
    c.num_int_muldiv = 2;
    c.num_fp_muldiv = 2;
    c.num_mem_ports = 2;
    return c;
}

CoreConfig
eightWideConfig()
{
    CoreConfig c;
    c.width = 8;
    c.ruu_size = 128;
    c.lsq_size = 64;
    c.num_int_alu = 8;
    c.num_fp_alu = 4;
    c.num_int_muldiv = 4;
    c.num_fp_muldiv = 4;
    c.num_mem_ports = 4;
    return c;
}

void
CoreStats::regStats(stats::Registry &reg)
{
    reg.add(&committed);
    reg.add(&cycles);
    reg.add(&dispatched);
    reg.add(&issued);
    reg.add(&squashedIssues);
    reg.add(&loadMissReplays);
    reg.add(&tagElimMisissues);
    reg.add(&seqRegAccesses);
    reg.add(&seqWakeupDelayed);
    reg.add(&renameStalls);
    reg.add(&branchMispredicts);
    reg.add(&fetchedControl);
    reg.add(&fmt2srcInsts);
    reg.add(&fmtStores);
    reg.add(&fmtOther);
    reg.add(&fmtNops);
    reg.add(&fmtOneUnique);
    reg.add(&fmtTwoUnique);
    reg.add(&readyAtInsert);
    reg.add(&wakeupSlack);
    reg.add(&orderSame);
    reg.add(&orderDiff);
    reg.add(&leftLast);
    reg.add(&rightLast);
    reg.add(&rfBackToBack);
    reg.add(&rfTwoReady);
    reg.add(&rfNonBackToBack);
    reg.add(&dltSaturated);
    reg.add(&prefetchHits);
    reg.add(&prefetchMisses);
    reg.add(&rfPortStalls);
}

Core::Core(const CoreConfig &cfg, InstSource &source)
    : cfg_(cfg), source_(source), hier_(cfg.mem), bp_(cfg.bpred),
      fu_(cfg), lap_(cfg.lap_entries), sched_(makeSchedPolicy(cfg)),
      rf_(makeRFPolicy(cfg)), window_(cfg.ruu_size),
      masked_(cfg.sched_engine == SchedEngine::Masked)
{
    // Every hot-path container is sized to its configuration bound
    // here so steady-state simulation allocates nothing: each
    // in-window instruction contributes at most two consumer-pool
    // entries, stores never outnumber window slots, and the fetch
    // queue is capped by the front-end depth. Only the active
    // engine's structures are sized; the other stays empty.
    HPA_CHECK(cfg.ruu_size > 0 && cfg.ruu_size <= 32767,
              "ruu_size must fit Event::slot (int16)");
    storeSlots_.reset(cfg.ruu_size);
    fetchQueue_.reset(size_t(cfg.front_end_depth) * cfg.width);
    if (masked_) {
        masks_.reset(cfg.ruu_size);
    } else {
        consumers_.reset(cfg.ruu_size, 2 * size_t(cfg.ruu_size));
        ready_.reset(cfg.ruu_size);
        issued_.reset(cfg.ruu_size);
    }
    slowBus_ = schedSlowBus();
    readyAllSrc_ = core::visitPolicy(
        [](const auto &p) { return p.mask_ready_all_src; }, sched_);
    squashCandidates_.reserve(cfg.ruu_size);
    squashList_.reserve(cfg.ruu_size);
    squashTainted_.reserve(size_t(cfg.ruu_size) + 1);
    squashIn_.reserve(cfg.ruu_size);
    // A cycle's event bucket delivers wake/complete/detect events
    // keyed to window slots; with only a few events in flight per
    // in-window instruction, ruu_size + width bounds any single
    // cycle's bucket comfortably. Exceeding it is still correct
    // (the vector grows), just no longer allocation-free —
    // test_hotpath_alloc guards the contract.
    events_.reserveSlots(size_t(cfg.ruu_size) + cfg.width);
    lookahead_ = source_.next();
    if (!lookahead_)
        sourceDone_ = true;
}

// --------------------------------------------------------------------
// Scheduler side lists
// --------------------------------------------------------------------

/** Reconcile one slot's ready membership with its state. Call
 *  after any transition that can change schedReady()/issued. */
void
Core::updateReadySlot(unsigned slot)
{
    DynInst &di = window_[slot];
    if (masked_) {
        // Ready-plane update: for mask_ready_all_src policies the
        // model predicate folds to allSrcReady() without a policy
        // dispatch; tag elimination keeps its per-entry rule.
        bool want = di.inWindow && !di.issued && !di.completed
            && (readyAllSrc_ ? di.allSrcReady() : schedReady(di));
        if (want == di.inReadyList)
            return;
        if (want)
            masks_.ready.set(slot);
        else
            masks_.ready.clear(slot);
        di.inReadyList = want;
        return;
    }
    bool want = di.inWindow && !di.issued && !di.completed
        && schedReady(di);
    if (want == di.inReadyList)
        return;
    if (want)
        ready_.insertOrdered(slot, [this](unsigned a, unsigned b) {
            return window_[a].seq < window_[b].seq;
        });
    else
        readyRemove(slot);
    di.inReadyList = want;
}

void
Core::readyRemove(unsigned slot)
{
    HPA_CHECK_CTX(ready_.contains(slot),
                  "ready-list entry missing for slot "
                      + std::to_string(slot) + " (seq "
                      + std::to_string(window_[slot].seq) + ")",
                  invariantContext());
    ready_.remove(slot);
}

void
Core::issuedInsert(unsigned slot)
{
    issued_.insertOrdered(slot, [this](unsigned a, unsigned b) {
        return window_[a].seq < window_[b].seq;
    });
}

void
Core::issuedRemove(unsigned slot)
{
    HPA_CHECK_CTX(issued_.contains(slot),
                  "issued-list entry missing for slot "
                      + std::to_string(slot) + " (seq "
                      + std::to_string(window_[slot].seq) + ")",
                  invariantContext());
    issued_.remove(slot);
}

namespace
{

std::string
listText(const char *name, const std::vector<unsigned> &have,
         const std::vector<unsigned> &want)
{
    std::ostringstream os;
    os << name << " diverged: have {";
    for (size_t i = 0; i < have.size(); ++i)
        os << (i ? " " : "") << have[i];
    os << "} want {";
    for (size_t i = 0; i < want.size(); ++i)
        os << (i ? " " : "") << want[i];
    os << "}";
    return os.str();
}

} // namespace

std::string
Core::sideListDivergence() const
{
    std::vector<unsigned> want_ready, want_issued, want_stores;
    unsigned idx = head_;
    for (unsigned n = 0; n < windowCount_; ++n) {
        const DynInst &di = window_[idx];
        if (di.inWindow) {
            if (!di.issued && !di.completed && schedReady(di))
                want_ready.push_back(idx);
            if (di.issued && !di.completed)
                want_issued.push_back(idx);
            if (di.isStore())
                want_stores.push_back(idx);
        }
        idx = (idx + 1) % cfg_.ruu_size;
    }
    std::vector<unsigned> have_ready = readyListSnapshot();
    if (want_ready != have_ready)
        return listText("ready list", have_ready, want_ready);
    std::vector<unsigned> have_issued = issuedListSnapshot();
    if (want_issued != have_issued)
        return listText("issued list", have_issued, want_issued);
    std::vector<unsigned> have_stores;
    have_stores.reserve(storeSlots_.size());
    for (size_t i = 0; i < storeSlots_.size(); ++i)
        have_stores.push_back(storeSlots_[i]);
    if (want_stores != have_stores)
        return listText("store list", have_stores, want_stores);
    for (unsigned slot : have_ready)
        if (!window_[slot].inReadyList)
            return "slot " + std::to_string(slot)
                + " is in the ready list but its inReadyList flag "
                  "is clear";
    return {};
}

bool
Core::readyListConsistent() const
{
    return sideListDivergence().empty();
}

void
Core::crossValidate() const
{
    std::string diverged = sideListDivergence();
    if (!diverged.empty())
        throw hpa::InvariantViolation(
            "scheduler cross-validation: " + diverged,
            invariantContext());
}

hpa::SimContext
Core::invariantContext() const
{
    hpa::SimContext ctx;
    ctx.cycle = cycle_;
    ctx.committed = stats_.committed.value();
    ctx.lastCommitCycle = lastCommitCycle_;
    ctx.dump = dumpPipelineState();
    return ctx;
}

std::string
Core::dumpPipelineState() const
{
    std::ostringstream os;
    os << "pipeline state @cycle " << cycle_ << ": committed="
       << stats_.committed.value()
       << " last_commit_cycle=" << lastCommitCycle_ << " window="
       << windowCount_ << "/" << cfg_.ruu_size << " head=" << head_
       << " tail=" << tail_ << " lsq=" << lsqCount_
       << " fetchq=" << fetchQueue_.size()
       << " ready=" << ready_.size()
       << " issued=" << issued_.size()
       << " stores=" << storeSlots_.size()
       << " events_pending=" << events_.pending() << "\n";
    os << "  slot      seq         pc  disp  issue  compl  "
          "state  disasm\n";
    // The oldest entries explain a stall: dump the head of the
    // window (the commit blocker is always window_[head_]).
    const unsigned MAX_ROWS = 16;
    unsigned idx = head_;
    for (unsigned n = 0; n < windowCount_ && n < MAX_ROWS; ++n) {
        const DynInst &di = window_[idx];
        char buf[64];
        std::snprintf(buf, sizeof buf, "  %4u %8llu %10llx", idx,
                      static_cast<unsigned long long>(di.seq),
                      static_cast<unsigned long long>(di.rec->pc));
        os << buf;
        auto cyc = [&](uint64_t c) {
            char b[32];
            if (c == NO_CYCLE)
                std::snprintf(b, sizeof b, " %5s", "-");
            else
                std::snprintf(b, sizeof b, " %5llu",
                              static_cast<unsigned long long>(c));
            os << b;
        };
        cyc(di.dispatchCycle);
        cyc(di.issueCycle);
        cyc(di.completeCycle);
        std::string state;
        state += di.issued ? 'I' : '.';
        state += di.completed ? 'C' : '.';
        state += di.inReadyList ? 'R' : '.';
        state += di.loadMissReplay ? 'M' : '.';
        os << "  " << state << "   "
           << di.rec->inst.disassemble() << "\n";
        idx = (idx + 1) % cfg_.ruu_size;
    }
    if (windowCount_ > MAX_ROWS)
        os << "  ... " << (windowCount_ - MAX_ROWS)
           << " younger entries elided\n";
    return os.str();
}

void
Core::regStats(stats::Registry &reg)
{
    stats_.regStats(reg);
    hier_.regStats(reg);
    bp_.regStats(reg);
}

uint64_t
Core::run(uint64_t max_cycles)
{
    while (!done()) {
        tick();
        if (max_cycles && cycle_ >= max_cycles)
            break;
    }
    return stats_.committed.value();
}

void
Core::tick()
{
    ++cycle_;
    ++stats_.cycles;

    commit();
    processEvents();
    select();
    dispatch();
    fetch();

    tickGuards();
}

/** Everything rare-but-checked-every-cycle: the deadlock watchdog,
 *  the periodic scheduler cross-validation, the cooperative
 *  wall-clock deadline and the test-only fault injections. At
 *  default settings this is four predictable compares per cycle. */
void
Core::tickGuards()
{
    // Every guard below is time-predictable, so the common case is a
    // single compare: nextGuardCycle_ under-approximates the next
    // cycle any guard could fire (a too-early visit merely re-arms;
    // a fire is never missed — the fault setters reset the gate).
    if (cycle_ < nextGuardCycle_)
        return;

    if (cycle_ == corruptAt_) {
        // Test hook: corrupt the incremental ready structure so the
        // periodic cross-validation must diverge whatever the window
        // holds. Reference: append a duplicate (or, on an empty
        // list, a phantom) slot. Masked: toggle the head slot's
        // ready bit — flipping membership diverges either way.
        if (masked_)
            masks_.ready.testFlip(head_);
        else
            ready_.testAppendPhantom(
                ready_.empty() ? head_ : unsigned(ready_.head()));
    }

    if (cfg_.check_interval && cycle_ % cfg_.check_interval == 0)
        crossValidate();

    if (cfg_.watchdog_cycles && windowCount_ > 0
        && cycle_ - lastCommitCycle_ > cfg_.watchdog_cycles)
        throw hpa::Deadlock(
            "no commit in " + std::to_string(cfg_.watchdog_cycles)
                + " cycles with a non-empty window",
            invariantContext());

    if (hasDeadline_ && (cycle_ & 0xFFF) == 0
        // hpa-nolint(HPA007): watchdog wall-budget check; throws Timeout, never feeds simulated state
        && std::chrono::steady_clock::now() > deadline_)
        throw hpa::Timeout("wall-clock budget exceeded",
                           invariantContext());

    // Re-arm: the earliest cycle any guard can fire next. The
    // watchdog term uses the current lastCommitCycle_; commits in
    // the meantime only push the real deadline later, so the visit
    // at the recorded cycle finds nothing and re-arms — exact fire
    // timing, at most one spare visit per watchdog period.
    uint64_t next = NO_CYCLE;
    if (corruptAt_ != NO_CYCLE && corruptAt_ > cycle_)
        next = std::min(next, corruptAt_);
    if (cfg_.check_interval)
        next = std::min(next, cycle_ + cfg_.check_interval
                                  - cycle_ % cfg_.check_interval);
    if (cfg_.watchdog_cycles)
        next = std::min(next,
                        lastCommitCycle_ + cfg_.watchdog_cycles + 1);
    if (hasDeadline_)
        next = std::min(next, (cycle_ | 0xFFF) + 1);
    nextGuardCycle_ = next;
}

// --------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------

void
Core::commitFormatStats(const DynInst &di)
{
    const isa::StaticInst &si = di.rec->inst;
    if (si.isStore()) {
        ++stats_.fmtStores;
        return;
    }
    if (!si.isTwoSourceFormat()) {
        ++stats_.fmtOther;
        return;
    }
    ++stats_.fmt2srcInsts;
    if (si.isNop())
        ++stats_.fmtNops;
    else if (si.uniqueSrcRegs().count == 2)
        ++stats_.fmtTwoUnique;
    else
        ++stats_.fmtOneUnique;
}

// hpa-prove-allow(P3): the commit-listener hook is a std::function
// observer used by pipeview/trace tooling; the indirect call is
// gated on a listener being installed and is empty in measurement
// runs
void
Core::commit()
{
    if (cycle_ > blockCommitAfter_)
        return; // test hook: simulate a wedged commit stage
    unsigned budget = cfg_.width;
    while (budget > 0 && windowCount_ > 0) {
        DynInst &di = window_[head_];
        if (!di.completed || di.completeCycle >= cycle_)
            break;

        if (di.isStore())
            hier_.dataAccess(di.rec->effAddr, true);

        isa::RegIndex dest = di.rec->inst.destReg();
        if (dest != isa::NO_REG && !isa::isZeroReg(dest)
            && lastProducer_[dest].seq == di.seq)
            lastProducer_[dest] = ProducerRef{};

        commitFormatStats(di);
        if (commitListener_)
            commitListener_(di, cycle_);
        if (masked_) {
            // The producer's dependency rows are left stale: commit
            // is in order and every consumer is younger, so a
            // committed slot's rows can never be scanned again
            // before its re-dispatch clears them (the reference
            // engine's consumers_.clear is O(1), the row clear is
            // not — deferring it keeps commit row-free).
            masks_.occupancy.clear(head_);
        } else {
            consumers_.clear(head_);
        }
        di.inWindow = false;
        if (di.isStore()) {
            HPA_CHECK_CTX(!storeSlots_.empty()
                              && storeSlots_.front() == head_,
                          "committing store at head slot "
                              + std::to_string(head_)
                              + " not at front of the store list",
                          invariantContext());
            storeSlots_.pop_front();
        }
        if (di.rec->inst.isMemRef())
            --lsqCount_;
        ++stats_.committed;
        lastCommitCycle_ = cycle_;

        head_ = (head_ + 1) % cfg_.ruu_size;
        --windowCount_;
        --budget;
    }
}

// --------------------------------------------------------------------
// Events
// --------------------------------------------------------------------

// hpa-prove-allow(P1,P2): events beyond the calendar ring's horizon
// go to the sorted overflow std::map (cold arm, node insert);
// steady-state quiescence is proven dynamically by
// tests/test_hotpath_alloc.cc
void
Core::scheduleEvent(uint64_t when, Event ev)
{
    HPA_CHECK_CTX(when > cycle_,
                  "event scheduled for cycle " + std::to_string(when)
                      + ", not in the future",
                  invariantContext());
    events_.schedule(when, cycle_, ev, unsigned(eventRank(ev.kind)));
}

// hpa-prove-allow(P1,P2): beginCycle() migrates far-future events
// out of the overflow std::map back into the ring (cold arm:
// node erase/insert and bucket growth during warm-up only; see
// tests/test_hotpath_alloc.cc for the dynamic quiescence proof)
void
Core::processEvents()
{
    // beginCycle() must run every cycle (it migrates far-future
    // events into ring range before anything can schedule at this
    // cycle), even when this cycle's bucket turns out empty.
    auto &bucket = events_.beginCycle(cycle_);

    // The calendar splits each cycle's events by rank at schedule
    // time, so delivery is one compare-free pass per rank class:
    // identical order to the old flat bucket's three filtered scans
    // (rank class ascending, schedule order within a class) without
    // re-walking the whole cycle once per class. Handlers only
    // schedule strictly-future events, so no vector is appended to
    // mid-iteration; the staleness filter runs at delivery time,
    // exactly as before.
    for (int rank = 0; rank < 3; ++rank) {
        for (const Event &ev : bucket[size_t(rank)]) {
            DynInst &di = window_[ev.slot];
            if (!di.inWindow || di.seq != ev.seq || !di.issued
                || di.issueToken != ev.token)
                continue;
            switch (ev.kind) {
              case EventKind::FastWake: handleFastWake(ev); break;
              case EventKind::SlowWake: handleSlowWake(ev); break;
              case EventKind::Complete: handleComplete(ev); break;
              case EventKind::LoadMissDetect:
                handleLoadMiss(ev);
                break;
              case EventKind::TagElimDetect:
                handleTagElim(ev);
                break;
            }
        }
    }
    events_.endCycle(cycle_);
}

// hpa-prove-allow(P1,P2): the wakeup-order history is an
// unordered_map keyed by static PC — bounded by the benchmark's
// static footprint, so inserts and rehashes die out after warm-up
// (cross-checked dynamically by tests/test_hotpath_alloc.cc)
void
Core::noteSecondWake(DynInst &ci, uint64_t now)
{
    // Called when the second operand data-wakeup of a 2-pending
    // instruction is observed: record Figure 6 / Table 3 samples and
    // train the last-arrival predictors.
    uint64_t slack = now - ci.firstWakeCycle;
    stats_.wakeupSlack.sample(
        static_cast<unsigned>(std::min<uint64_t>(slack, 4)));

    bool simultaneous = slack == 0;
    // The operand waking *now* is the last-arriving one; on a
    // simultaneous wakeup the order is undefined.
    bool right_last = !simultaneous && ci.firstWakeWasLeft;

    if (!simultaneous) {
        if (right_last)
            ++stats_.rightLast;
        else
            ++stats_.leftLast;

        uint64_t pc = ci.rec->pc;
        auto [hist, inserted] =
            orderHistory_.try_emplace(pc, right_last ? 1 : 0);
        if (!inserted) {
            if ((hist->second != 0) == right_last)
                ++stats_.orderSame;
            else
                ++stats_.orderDiff;
            hist->second = right_last ? 1 : 0;
        }
        lap_.update(pc, right_last);
    }
    lapMon_.resolve(ci.rec->pc, ci.shadowPredBits, simultaneous,
                    right_last);

    // Sequential wakeup: the tag of the last-arriving operand is
    // visible one cycle late when it landed on the slow side.
    if (schedLastOnSlowBus(ci, simultaneous))
        ++stats_.seqWakeupDelayed;
}

/** @return true when any operand state changed — the caller only
 *  needs to reconcile ready-list membership (updateReadySlot) after
 *  a real transition; schedReady() is a pure function of operand
 *  state, so a no-op broadcast cannot change membership. */
bool
Core::wakeOperand(DynInst &ci, OperandState &op, uint64_t now,
                  uint64_t producer_seq, bool slow_bus)
{
    if (slow_bus) {
        // Slow-bus re-broadcast: only slow-side operands gain their
        // tag match here; data availability was recorded at the fast
        // broadcast.
        if (op.slowSide && !op.ready && op.dataReady) {
            op.ready = true;
            op.wakeCycle = now;
            op.wakeProducerSeq = producer_seq;
            return true;
        }
        return false;
    }

    bool changed = false;
    if (!op.dataReady) {
        changed = true;
        op.dataReady = true;
        op.dataReadyCycle = now;
        op.wakeProducerSeq = producer_seq;

        if (ci.twoPending && !ci.lapResolved) {
            if (ci.wakesSeen == 0) {
                ci.wakesSeen = 1;
                ci.firstWakeCycle = now;
                ci.firstWakeWasLeft = op.leftField;
            } else {
                ci.wakesSeen = 2;
                ci.lapResolved = true;
                noteSecondWake(ci, now);
            }
        }
    }

    // Tag visibility depends on the wakeup-logic organization.
    if (schedSeesTag(op) && !op.ready) {
        op.ready = true;
        op.wakeCycle = now;
        op.wakeProducerSeq = producer_seq;
        changed = true;
    }
    return changed;
}

void
Core::handleFastWake(const Event &ev)
{
    bool need_slow = slowBus_;
    if (masked_) {
        // Dependency-vector broadcast: one masked scan of the
        // producer's two operand rows in age order from head_
        // reproduces the consumer-list append order (consumers in
        // seq order; a consumer matches a given producer in at most
        // one plane). The producer passed the event staleness check,
        // so — commit being in order — every bit still names the
        // consumer it was set for: no per-entry seq guards needed.
        const unsigned p = unsigned(ev.slot);
        if (slowBus_) {
            masks_.slowPend.clearRow(p);
            need_slow = false;
        }
        scanSetBitsFrom2(
            masks_.dep[0].row(p), masks_.dep[1].row(p),
            cfg_.ruu_size, head_,
            [&](unsigned s, bool in0, bool in1) {
                DynInst &ci = window_[s];
                for (unsigned k = 0; k < 2; ++k) {
                    if (!(k == 0 ? in0 : in1))
                        continue;
                    OperandState &op = ci.src[k];
                    if (wakeOperand(ci, op, cycle_, ev.seq, false))
                        updateReadySlot(s);
                    // File the slow-plane residue: consumers whose
                    // tag match arrives only on the +1 re-broadcast.
                    if (slowBus_ && !op.ready && op.dataReady
                        && schedMaskSlowPlane(op)) {
                        masks_.slowPend.set(p, s);
                        need_slow = true;
                    }
                }
            });
    } else {
        consumers_.forEach(unsigned(ev.slot), [&](const Consumer &c) {
            DynInst &ci = window_[c.slot];
            if (!ci.inWindow || ci.seq != c.seq)
                return;
            OperandState &op = ci.src[c.opIdx];
            if (op.producerSeq != ev.seq)
                return;
            if (wakeOperand(ci, op, cycle_, ev.seq, false))
                updateReadySlot(unsigned(c.slot));
        });
    }
    // The masked engine knows at broadcast time whether any consumer
    // still owes its tag match to the slow bus; an empty slow plane
    // makes the +1 re-broadcast a provable no-op (no consumer can
    // become slow-eligible in between: a later dispatch against an
    // already-broadcast producer inserts fully ready), so the event
    // is never scheduled. The reference engine schedules it
    // unconditionally and re-filters per consumer — identical
    // results, the handler would simply find nothing to wake.
    if (need_slow)
        scheduleEvent(cycle_ + 1,
                      Event{ev.seq, ev.token, ev.slot,
                            EventKind::SlowWake});
}

void
Core::handleSlowWake(const Event &ev)
{
    if (masked_) {
        // The slow plane recorded at fast-broadcast time holds
        // exactly the consumers whose tag match is still owed; the
        // wake condition is re-verified per visit (a detection-rank
        // repair this very cycle may have cleared dataReady).
        const unsigned p = unsigned(ev.slot);
        scanSetBitsFrom(
            masks_.slowPend.row(p), cfg_.ruu_size, head_,
            [&](unsigned s) {
                DynInst &ci = window_[s];
                for (unsigned k = 0; k < 2; ++k) {
                    if (!masks_.dep[k].test(p, s))
                        continue;
                    if (wakeOperand(ci, ci.src[k], cycle_, ev.seq,
                                    true))
                        updateReadySlot(s);
                }
                return true;
            });
        return;
    }
    consumers_.forEach(unsigned(ev.slot), [&](const Consumer &c) {
        DynInst &ci = window_[c.slot];
        if (!ci.inWindow || ci.seq != c.seq)
            return;
        OperandState &op = ci.src[c.opIdx];
        if (op.producerSeq != ev.seq)
            return;
        if (wakeOperand(ci, op, cycle_, ev.seq, true))
            updateReadySlot(unsigned(c.slot));
    });
}

void
Core::handleComplete(const Event &ev)
{
    DynInst &di = window_[ev.slot];
    di.completed = true;
    di.completeCycle = cycle_;
    if (masked_)
        masks_.issued.clear(unsigned(ev.slot));
    else
        issuedRemove(unsigned(ev.slot));

    if (di.mispredictedBranch && fetchStalledOnBranch_) {
        fetchStalledOnBranch_ = false;
        fetchResumeCycle_ =
            std::max(cycle_ + 1,
                     di.fetchCycle + cfg_.min_branch_penalty);
    }
}

void
Core::repairConsumersOf(int slot, uint64_t producer_seq)
{
    // Un-wake every operand this producer speculatively woke.
    auto repairOp = [&](DynInst &ci, OperandState &op, unsigned s) {
        if (op.producerSeq != producer_seq
            || op.wakeProducerSeq != producer_seq)
            return;
        if (!op.dataReady && !op.ready)
            return;
        if (op.dataReady && ci.twoPending && !ci.lapResolved) {
            // Un-record the speculative wakeup observation.
            if (ci.wakesSeen > 0)
                --ci.wakesSeen;
            if (ci.wakesSeen == 0)
                ci.firstWakeCycle = NO_CYCLE;
        }
        op.ready = false;
        op.dataReady = false;
        op.wakeCycle = NO_CYCLE;
        op.dataReadyCycle = NO_CYCLE;
        op.wakeProducerSeq = NO_SEQ;
        updateReadySlot(s);
    };

    if (masked_) {
        const unsigned p = unsigned(slot);
        scanSetBitsFrom2(
            masks_.dep[0].row(p), masks_.dep[1].row(p),
            cfg_.ruu_size, head_,
            [&](unsigned s, bool in0, bool in1) {
                DynInst &ci = window_[s];
                if (in0)
                    repairOp(ci, ci.src[0], s);
                if (in1)
                    repairOp(ci, ci.src[1], s);
            });
        return;
    }
    consumers_.forEach(unsigned(slot), [&](const Consumer &c) {
        DynInst &ci = window_[c.slot];
        if (!ci.inWindow || ci.seq != c.seq)
            return;
        repairOp(ci, ci.src[c.opIdx], unsigned(c.slot));
    });
}

// hpa-prove-allow(P1,P2): squash-list vector growth, fully inlined
// by GCC (so the _M_realloc_insert amortized-growth wall does not
// catch it); capacity is bounded by the window size and growth is
// quiescent at steady state (tests/test_hotpath_alloc.cc)
void
Core::squashWindow(uint64_t first_cycle, uint64_t last_cycle,
                   uint64_t trigger_seq, bool selective)
{
    // Collect issued-in-shadow instructions. The issued chain holds
    // exactly the issued-and-incomplete window entries, oldest
    // first — same visit order as a head-to-tail window scan. The
    // scratch vectors are members (capacity reserved at window
    // size), so recovery allocates nothing once warm.
    std::vector<int> &candidates = squashCandidates_;
    candidates.clear();
    auto consider = [&](unsigned slot) {
        DynInst &di = window_[slot];
        if (di.seq != trigger_seq && di.issueCycle >= first_cycle
            && di.issueCycle <= last_cycle)
            candidates.push_back(int(slot));
    };
    if (masked_) {
        masks_.issued.forEachFrom(head_, [&](unsigned slot) {
            consider(slot);
            return true;
        });
    } else {
        for (int32_t it = issued_.head(); it != SlotChain::NIL;
             it = issued_.next(unsigned(it)))
            consider(unsigned(it));
    }

    std::vector<int> &squash = squashList_;
    squash.clear();
    if (!selective) {
        squash.assign(candidates.begin(), candidates.end());
    } else {
        // Taint propagation from the trigger through wake producers.
        std::vector<uint64_t> &tainted = squashTainted_;
        tainted.clear();
        tainted.push_back(trigger_seq);
        bool changed = true;
        std::vector<char> &in = squashIn_;
        in.assign(candidates.size(), 0);
        while (changed) {
            changed = false;
            for (size_t i = 0; i < candidates.size(); ++i) {
                if (in[i])
                    continue;
                DynInst &di = window_[candidates[i]];
                for (unsigned s = 0; s < di.numSrc; ++s) {
                    uint64_t wp = di.src[s].wakeProducerSeq;
                    if (wp == NO_SEQ)
                        continue;
                    if (std::find(tainted.begin(), tainted.end(), wp)
                        != tainted.end()) {
                        in[i] = 1;
                        tainted.push_back(di.seq);
                        changed = true;
                        break;
                    }
                }
            }
        }
        for (size_t i = 0; i < candidates.size(); ++i)
            if (in[i])
                squash.push_back(candidates[i]);
    }

    for (int slot : squash) {
        DynInst &di = window_[slot];
        di.issued = false;
        ++di.issueToken;
        di.seqRegAccess = false;
        di.wakeBroadcastCycle = NO_CYCLE;
        if (di.tagElimMisissue) {
            di.tagElimMisissue = false;
            di.requireDataReady = true;
        }
        ++stats_.squashedIssues;
        if (masked_)
            masks_.issued.clear(unsigned(slot));
        else
            issuedRemove(unsigned(slot));
        updateReadySlot(unsigned(slot));
        repairConsumersOf(slot, di.seq);
    }
}

void
Core::handleLoadMiss(const Event &ev)
{
    DynInst &load = window_[ev.slot];
    HPA_CHECK_CTX(load.isLoad() && load.loadMissReplay,
                  "load-miss event for slot "
                      + std::to_string(ev.slot)
                      + " that is not a replaying load",
                  invariantContext());

    uint64_t assumed_total = 1 + hier_.assumedLoadLatency();
    uint64_t first = load.issueCycle + assumed_total;
    uint64_t last = first + cfg_.replay_shadow - 1;
    squashWindow(first, last, load.seq,
                 cfg_.recovery == RecoveryModel::Selective);

    // Cancel the speculative wakeups of the load's own dependents and
    // re-broadcast at the true arrival time. A delay-tracking policy
    // whose counter cannot represent the remaining latency defers
    // the re-broadcast to the load's completion instead.
    repairConsumersOf(ev.slot, load.seq);
    uint64_t true_wake = load.issueCycle + 1 + load.memLatency;
    uint64_t load_complete =
        load.issueCycle + cfg_.schedToExec() + load.latency - 1;
    true_wake = schedAdjustWake(cycle_, true_wake, load_complete);
    load.wakeBroadcastCycle = true_wake;
    isa::RegIndex dest = load.rec->inst.destReg();
    if (dest != isa::NO_REG && !isa::isZeroReg(dest)
        && true_wake > cycle_)
        scheduleEvent(true_wake,
                      Event{ev.seq, ev.token, ev.slot,
                            EventKind::FastWake});
}

void
Core::handleTagElim(const Event &ev)
{
    DynInst &di = window_[ev.slot];
    if (!di.tagElimMisissue)
        return;
    uint64_t first = di.issueCycle;
    uint64_t last = di.issueCycle + cfg_.tagelim_detect_delay;
    squashWindow(first, last, NO_SEQ, false);
}

// --------------------------------------------------------------------
// Select / issue
// --------------------------------------------------------------------

bool
Core::eligible(const DynInst &di) const
{
    if (!di.inWindow || di.issued || di.completed
        || di.dispatchCycle >= cycle_)
        return false;
    return schedReady(di);
}

bool
Core::lsqAllowsLoad(const DynInst &load) const
{
    uint64_t lo = load.rec->effAddr;
    uint64_t hi = lo + load.rec->inst.memSize();
    // storeSlots_ holds the in-window stores in program order, so
    // the overlap search touches only older stores instead of the
    // whole window.
    for (size_t k = 0; k < storeSlots_.size(); ++k) {
        const DynInst &di = window_[storeSlots_[k]];
        if (di.seq >= load.seq)
            break;
        uint64_t slo = di.rec->effAddr;
        uint64_t shi = slo + di.rec->inst.memSize();
        if (slo < hi && lo < shi) {
            // Overlapping older store: its address must be known
            // (agen issued) and its data produced before the load
            // can obtain a forwarded value.
            if (!di.issued)
                return false;
            if (di.storeDataProducerSeq != NO_SEQ) {
                const DynInst &p =
                    window_[di.storeDataProducerSlot];
                if (p.inWindow
                    && p.seq == di.storeDataProducerSeq
                    && !p.completed)
                    return false;
            }
        }
    }
    return true;
}

unsigned
Core::computeRfPorts(const DynInst &di) const
{
    // An operand is captured from the bypass network only when its
    // value arrives within the bypass window ending at the issue
    // cycle (Section 4.2 assumes a 1-cycle window); anything older
    // is a register-file read.
    unsigned ports = 0;
    for (unsigned i = 0; i < di.numSrc; ++i) {
        const OperandState &op = di.src[i];
        // Only values observed arriving on the bypass network
        // qualify; operands read from the architectural register
        // file at insert (no producer broadcast) never do. A value
        // parked in the operand prefetch buffer costs no port
        // either (PrefetchBuffer policy; the flag is never set
        // elsewhere).
        bool bypassed = op.prefetched
            || (op.dataReady
                && op.wakeProducerSeq != NO_SEQ
                && op.dataReadyCycle <= cycle_
                && cycle_ - op.dataReadyCycle < cfg_.bypass_window);
        if (!bypassed)
            ++ports;
    }
    return ports;
}

void
Core::issueInst(DynInst &di, int slot, unsigned ports)
{
    di.issued = true;
    di.issueCycle = cycle_;
    ++di.issueToken;
    ++stats_.issued;
    if (masked_) {
        masks_.ready.clear(unsigned(slot));
        masks_.issued.set(unsigned(slot));
    } else {
        readyRemove(unsigned(slot));
        issuedInsert(unsigned(slot));
    }
    di.inReadyList = false;
    bool first_issue = di.issueToken == 1;

    di.rfPorts = ports;

    di.seqRegAccess = rfSeqAccess(ports);
    if (di.seqRegAccess) {
        ++stats_.seqRegAccesses;
        ++blockedSlotsNext_;
    }
    unsigned extra = di.seqRegAccess ? 1 : 0;

    // Figure 10 characterization (first issue only).
    if (first_issue && di.numSrc == 2) {
        if (ports <= 1) {
            ++stats_.rfBackToBack;
        } else if (di.src[0].readyAtInsert && di.src[1].readyAtInsert) {
            ++stats_.rfTwoReady;
        } else {
            ++stats_.rfNonBackToBack;
        }
    }

    isa::RegIndex dest = di.rec->inst.destReg();
    bool broadcasts = dest != isa::NO_REG && !isa::isZeroReg(dest);
    uint64_t wake_cycle;
    uint64_t complete_cycle;

    if (di.isLoad()) {
        // Determine the actual memory latency: forwarded from an
        // older overlapping store, or from the cache hierarchy.
        bool forwarded = false;
        uint64_t lo = di.rec->effAddr;
        uint64_t hi = lo + di.rec->inst.memSize();
        for (size_t k = 0; k < storeSlots_.size(); ++k) {
            const DynInst &st = window_[storeSlots_[k]];
            if (st.seq >= di.seq)
                break;
            uint64_t slo = st.rec->effAddr;
            uint64_t shi = slo + st.rec->inst.memSize();
            if (slo < hi && lo < shi) {
                forwarded = true;
                break;
            }
        }
        unsigned mem_lat = forwarded
            ? hier_.assumedLoadLatency()
            : hier_.dataAccess(di.rec->effAddr, false);
        di.memLatency = mem_lat;

        unsigned assumed_total = 1 + hier_.assumedLoadLatency();
        unsigned actual_total = 1 + mem_lat;
        di.latency = actual_total;

        wake_cycle = cycle_ + assumed_total;
        complete_cycle = cycle_ + cfg_.schedToExec() + actual_total - 1;

        if (actual_total > assumed_total) {
            di.loadMissReplay = true;
            ++stats_.loadMissReplays;
            scheduleEvent(cycle_ + assumed_total + cfg_.replay_shadow,
                          Event{di.seq, di.issueToken, int16_t(slot),
                                EventKind::LoadMissDetect});
        } else {
            di.loadMissReplay = false;
        }
    } else {
        unsigned lat =
            isa::opClassLatency(di.rec->inst.opClass()) + extra;
        di.latency = lat;
        wake_cycle = cycle_ + lat;
        complete_cycle = cycle_ + cfg_.schedToExec() + lat - 1;
    }

    if (broadcasts) {
        // A delay-tracking policy defers the wake to the completion
        // scoreboard when the latency saturates its counters.
        wake_cycle = schedAdjustWake(cycle_, wake_cycle,
                                     complete_cycle);
        di.wakeBroadcastCycle = wake_cycle;
        scheduleEvent(wake_cycle,
                      Event{di.seq, di.issueToken, int16_t(slot),
                            EventKind::FastWake});
    } else {
        di.wakeBroadcastCycle = cycle_;
    }
    scheduleEvent(complete_cycle,
                  Event{di.seq, di.issueToken, int16_t(slot),
                        EventKind::Complete});

    // Tag elimination: the scoreboard detects issues whose unwatched
    // operands were not actually data-ready.
    if (schedWatchesPremature()) {
        bool premature = false;
        for (unsigned i = 0; i < di.numSrc; ++i) {
            const OperandState &op = di.src[i];
            if (!op.dataReady || op.dataReadyCycle > cycle_)
                premature = true;
        }
        if (premature) {
            di.tagElimMisissue = true;
            ++stats_.tagElimMisissues;
            scheduleEvent(cycle_ + cfg_.tagelim_detect_delay + 1,
                          Event{di.seq, di.issueToken, int16_t(slot),
                                EventKind::TagElimDetect});
        }
    }
}

/** One select-candidate attempt, shared by both engines (the ready
 *  structures guarantee identical candidate order, so the issue
 *  decisions are engine-invariant). @return false once the width
 *  budget is spent — the caller stops scanning. */
bool
Core::selectTry(unsigned slot, int pass, unsigned &avail,
                unsigned &ports_left, bool arbitrated)
{
    DynInst &di = window_[slot];

    bool high_prio = di.selectHighPrio();
    if ((pass == 0) != high_prio || !eligible(di))
        return true;
    if (di.isLoad() && !lsqAllowsLoad(di))
        return true;
    unsigned ports = ~0u;
    if (arbitrated) {
        ports = computeRfPorts(di);
        if (ports > ports_left) {
            ++stats_.rfPortStalls;
            return true;
        }
        ports_left -= ports;
    }
    if (!fu_.acquire(di.rec->inst.opClass(), cycle_)) {
        if (arbitrated)
            ports_left += ports;
        return true;
    }
    if (!arbitrated)
        ports = computeRfPorts(di);
    issueInst(di, int(slot), ports);
    return --avail > 0;
}

void
Core::select()
{
    blockedSlots_ = blockedSlotsNext_;
    blockedSlotsNext_ = 0;

    unsigned avail = cfg_.width > blockedSlots_
        ? cfg_.width - blockedSlots_ : 0;
    if (avail == 0)
        return;
    unsigned ports_left = rfPortBudget();
    const bool arbitrated = ports_left != ~0u;

    // Oldest-first, loads and branches prioritized (Section 2.1).
    // The ready structure holds exactly the unissued instructions
    // whose required tag matches have been observed, oldest first
    // (seq order == window order), so scanning it reproduces the
    // full-window scan's issue decisions bit-for-bit while touching
    // only ready instructions. issueInst() clears the current entry;
    // nothing is inserted during select (all wakeups are scheduled
    // for strictly later cycles) — the chain walk grabs its
    // successor first, the mask scan iterates a register copy of
    // each plane word.
    if (masked_) {
        // Each pass scans only its own priority class: the highPrio
        // plane (fixed at dispatch) filters at the word level, so
        // pass 0 never loads a low-priority DynInst and vice versa.
        for (int pass = 0; pass < 2 && avail > 0; ++pass)
            scanSetBitsFromAnd(
                masks_.ready.words(), masks_.highPrio.words(),
                pass != 0, cfg_.ruu_size, head_,
                [&](unsigned slot) {
                    return selectTry(slot, pass, avail, ports_left,
                                     arbitrated);
                });
        return;
    }
    for (int pass = 0; pass < 2 && avail > 0; ++pass) {
        int32_t it = ready_.head();
        while (it != SlotChain::NIL && avail > 0) {
            unsigned slot = unsigned(it);
            it = ready_.next(slot);
            if (!selectTry(slot, pass, avail, ports_left, arbitrated))
                break;
        }
    }
}

// --------------------------------------------------------------------
// Dispatch
// --------------------------------------------------------------------

// hpa-prove-allow(P1,P2): operand/consumer-list vector growth,
// fully inlined by GCC (invisible to the amortized-growth wall);
// capacities track the register count and window size and are
// quiescent at steady state (tests/test_hotpath_alloc.cc)
void
Core::setupOperands(DynInst &di, int slot)
{
    const isa::StaticInst &si = di.rec->inst;

    isa::SrcList raw = si.srcRegs();
    isa::SrcList sched;
    if (si.isStore()) {
        // Stores schedule as address generation only; the data move
        // is handled by the store scheduler at commit (Section 2.3).
        sched.push(raw.regs[1]);
        // Track the data producer to gate store-to-load forwarding.
        isa::RegIndex data_reg = raw.regs[0];
        if (!isa::isZeroReg(data_reg)) {
            ProducerRef pr = lastProducer_[data_reg];
            if (pr.seq != NO_SEQ) {
                di.storeDataProducerSeq = pr.seq;
                di.storeDataProducerSlot = pr.slot;
            }
        }
        if (isa::isZeroReg(sched.regs[0]))
            sched.count = 0;
    } else {
        sched = si.uniqueSrcRegs();
    }

    di.numSrc = sched.count;
    unsigned pending = 0;
    for (unsigned i = 0; i < di.numSrc; ++i) {
        OperandState &op = di.src[i];
        op = OperandState{};
        op.reg = sched.regs[i];
        op.leftField = raw.count > 0 && sched.regs[i] == raw.regs[0];

        ProducerRef pr = lastProducer_[op.reg];
        bool ready_now = true;
        if (pr.seq != NO_SEQ) {
            DynInst &p = window_[pr.slot];
            HPA_CHECK_CTX(p.seq == pr.seq && p.inWindow,
                          "stale producer map entry for reg "
                              + std::to_string(unsigned(op.reg))
                              + ": slot " + std::to_string(pr.slot)
                              + " no longer holds seq "
                              + std::to_string(pr.seq),
                          invariantContext());
            // File the dependence: a dependency-matrix bit (masked)
            // or a pooled consumer-list node (reference). Operand
            // plane i keeps the two engines' broadcast visit orders
            // identical (plane 0 before plane 1 == append order).
            if (masked_)
                masks_.dep[i].set(unsigned(pr.slot), unsigned(slot));
            else
                consumers_.append(unsigned(pr.slot),
                                  Consumer{slot, uint8_t(i), di.seq});
            op.producerSeq = pr.seq;
            ready_now = p.issued
                && p.wakeBroadcastCycle != NO_CYCLE
                && p.wakeBroadcastCycle <= cycle_;
            if (ready_now)
                op.wakeProducerSeq = pr.seq;
        }

        if (ready_now) {
            op.ready = true;
            op.dataReady = true;
            op.readyAtInsert = true;
            op.wakeCycle = cycle_;
            // Record the true arrival time when the value came off an
            // in-flight producer's broadcast (it may still be within
            // a multi-cycle bypass window); architectural values read
            // from the register file carry the insert cycle and are
            // excluded from bypass capture in computeRfPorts().
            op.dataReadyCycle = op.wakeProducerSeq != NO_SEQ
                ? window_[pr.slot].wakeBroadcastCycle : cycle_;
        } else {
            ++pending;
        }
    }

    di.twoPending = di.numSrc == 2 && pending == 2;

    // Figure 4: ready operands of 2-source instructions at insert.
    if (di.numSrc == 2)
        stats_.readyAtInsert.sample(2 - pending);

    if (di.twoPending) {
        di.predRightLast = lap_.predictRightLast(di.rec->pc);
        di.shadowPredBits = lapMon_.snapshot(di.rec->pc);
    }
}

void
Core::dispatch()
{
    unsigned budget = cfg_.width;
    // Rename-stage map-table lookup ports: two per slot on the base
    // machine, one per slot in the half-price rename extension.
    unsigned rename_ports = cfg_.rename == RenameModel::HalfPort
        ? cfg_.width : 2 * cfg_.width;
    while (budget > 0 && !fetchQueue_.empty() && !windowFull()) {
        FetchedInst &fi = fetchQueue_.front();
        if (fi.earliestDispatch > cycle_)
            break;
        if (fi.rec->inst.isMemRef() && lsqCount_ >= cfg_.lsq_size)
            break;
        unsigned lookups = fi.rec->inst.uniqueSrcRegs().count;
        if (lookups > rename_ports) {
            ++stats_.renameStalls;
            // The group splits here — unless nothing has dispatched
            // yet this cycle, in which case the lone instruction
            // serializes through the port (guarantees progress on
            // degenerate 1-wide configurations).
            if (budget != cfg_.width)
                break;
            rename_ports = 0;
        } else {
            rename_ports -= lookups;
        }

        unsigned slot = tail_;
        DynInst &di = window_[slot];
        di = DynInst{};
        if (masked_) {
            // Slot reuse: retire the previous tenant's planes (its
            // occupancy/ready/issued bits were cleared on its way
            // out; the row clears mirror consumers_.clear below).
            masks_.clearProducer(slot);
            masks_.ready.clear(slot);
            masks_.issued.clear(slot);
            masks_.occupancy.set(slot);
        } else {
            consumers_.clear(slot);
        }

        di.rec = fi.rec;
        di.seq = nextSeq_++;
        di.inWindow = true;
        di.fetchCycle = fi.fetchCycle;
        di.dispatchCycle = cycle_;
        di.mispredictedBranch = fi.mispredicted;

        if (masked_) {
            // Cache the fixed pass-0 select class in the bit plane.
            if (di.selectHighPrio())
                masks_.highPrio.set(slot);
            else
                masks_.highPrio.clear(slot);
        }

        setupOperands(di, int(slot));
        schedPlace(di);
        rfOnDispatch(di);
        updateReadySlot(slot);
        if (di.isStore())
            storeSlots_.push_back(slot);

        isa::RegIndex dest = di.rec->inst.destReg();
        if (dest != isa::NO_REG && !isa::isZeroReg(dest))
            lastProducer_[dest] = ProducerRef{di.seq, int(slot)};

        if (di.rec->inst.isMemRef())
            ++lsqCount_;

        tail_ = (tail_ + 1) % cfg_.ruu_size;
        ++windowCount_;
        ++stats_.dispatched;
        --budget;
        fetchQueue_.pop_front();
    }
}

// --------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------

// hpa-prove-allow(P3): source_.next() is the one sanctioned virtual
// call on the hot path — the InstSource boundary that switches
// between trace replay and the execution-driven emulator; one call
// per fetched instruction, outside the paper's measured loops
void
Core::fetch()
{
    if (sourceDone_ && !lookahead_)
        return;
    if (fetchStalledOnBranch_ || cycle_ < fetchResumeCycle_)
        return;

    unsigned budget = cfg_.width;
    size_t fq_cap = size_t(cfg_.front_end_depth) * cfg_.width;
    uint64_t fetched_line = ~0ull;
    uint64_t line_mask = ~uint64_t(hier_.il1().config().line_bytes - 1);

    while (budget > 0 && fetchQueue_.size() < fq_cap && lookahead_) {
        const func::ExecRecord &rec = *lookahead_;

        uint64_t line = rec.pc & line_mask;
        if (line != fetched_line) {
            unsigned lat = hier_.fetchAccess(rec.pc);
            unsigned hit_lat = hier_.il1().config().latency;
            if (lat > hit_lat) {
                // IL1 miss: fetch stalls for the fill.
                fetchResumeCycle_ = cycle_ + (lat - hit_lat);
                return;
            }
            fetched_line = line;
        }

        FetchedInst fi;
        fi.rec = lookahead_;
        fi.fetchCycle = cycle_;
        fi.earliestDispatch = cycle_ + cfg_.front_end_depth;
        fi.mispredicted = false;

        bool stop_group = false;
        if (rec.inst.isControl()) {
            ++stats_.fetchedControl;
            bpred::Prediction pred = bp_.predict(rec.pc, rec.inst);
            bool mispred = pred.taken != rec.taken
                || (rec.taken
                    && (!pred.targetKnown
                        || pred.target != rec.nextPc));
            bp_.resolve(rec.pc, rec.inst, rec.taken, rec.nextPc);
            if (mispred) {
                ++stats_.branchMispredicts;
                if (rec.inst.isCondBranch()
                    && pred.taken != rec.taken)
                    ++bp_.dirMispredicts;
                else
                    ++bp_.targetMispredicts;
                fi.mispredicted = true;
                fetchStalledOnBranch_ = true;
                stop_group = true;
            } else if (rec.taken) {
                // Fetch stops at the first taken branch in a cycle.
                stop_group = true;
            }
        }

        fetchQueue_.push_back(fi);
        lookahead_ = source_.next();
        if (!lookahead_)
            sourceDone_ = true;
        --budget;
        if (stop_group)
            break;
    }
}

} // namespace hpa::core
