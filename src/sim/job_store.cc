#include "sim/job_store.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include <unistd.h>

#include "core/policy_registry.hh"
#include "sim/error.hh"
#include "stats/json.hh"

namespace fs = std::filesystem;

namespace hpa::sim
{

namespace
{

constexpr char MAGIC[4] = {'H', 'P', 'A', 'J'};
constexpr size_t FRAME_HEADER = 4 + 4 + 8;
/** Sanity cap: a journal record is a small JSON summary; anything
 *  larger is framing corruption, not data. */
constexpr uint32_t MAX_PAYLOAD = 1u << 24;

uint64_t
fnv1a64(std::string_view data, uint64_t h = 1469598103934665603ull)
{
    for (unsigned char c : data) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
toHex16(uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[size_t(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return s;
}

void
putLE32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char(uint8_t(v >> (8 * i))));
}

void
putLE64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(char(uint8_t(v >> (8 * i))));
}

uint32_t
getLE32(const unsigned char *p)
{
    return uint32_t(p[0]) | uint32_t(p[1]) << 8 | uint32_t(p[2]) << 16
        | uint32_t(p[3]) << 24;
}

uint64_t
getLE64(const unsigned char *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = v << 8 | p[i];
    return v;
}

// --- minimal field extraction over our own writer's output ---------
//
// Journal payloads are flat JSON objects emitted by JsonWriter
// (`"key": value`, two-space indent, no nested objects), so a
// targeted scan for `"key":` is exact — but string values must be
// decoded with full escape handling because error messages quote
// arbitrary text.

bool
findValue(const std::string &t, const std::string &key, size_t &val)
{
    std::string needle = "\"" + key + "\":";
    size_t pos = t.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < t.size() && (t[pos] == ' ' || t[pos] == '\t'))
        ++pos;
    if (pos >= t.size())
        return false;
    val = pos;
    return true;
}

std::string
decodeString(const std::string &t, size_t pos)
{
    if (pos >= t.size() || t[pos] != '"')
        return "";
    std::string out;
    for (size_t i = pos + 1; i < t.size(); ++i) {
        char c = t[i];
        if (c == '"')
            return out;
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        if (++i >= t.size())
            break;
        switch (t[i]) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u':
            if (i + 4 < t.size()) {
                unsigned cp = unsigned(
                    std::strtoul(t.substr(i + 1, 4).c_str(), nullptr,
                                 16));
                // escape() only emits \u for control bytes; anything
                // else would be multi-byte UTF-8 we never produce.
                if (cp < 0x100)
                    out.push_back(char(cp));
                i += 4;
            }
            break;
          default: out.push_back(t[i]); break;
        }
    }
    return out;
}

std::string
jsonString(const std::string &t, const std::string &key)
{
    size_t pos;
    if (!findValue(t, key, pos))
        return "";
    return decodeString(t, pos);
}

double
jsonNumber(const std::string &t, const std::string &key, double dflt)
{
    size_t pos;
    if (!findValue(t, key, pos))
        return dflt;
    return std::strtod(t.c_str() + pos, nullptr);
}

uint64_t
jsonU64(const std::string &t, const std::string &key, uint64_t dflt)
{
    size_t pos;
    if (!findValue(t, key, pos))
        return dflt;
    return std::strtoull(t.c_str() + pos, nullptr, 10);
}

bool
jsonBool(const std::string &t, const std::string &key, bool dflt)
{
    size_t pos;
    if (!findValue(t, key, pos))
        return dflt;
    return t.compare(pos, 4, "true") == 0;
}

/** Parse one validated payload. @return false when the payload is
 *  not a journal record (wrong schema / no key). */
bool
parseRecord(const std::string &payload, StoredRun &r)
{
    if (jsonString(payload, "schema") != JobStore::JSON_SCHEMA)
        return false;
    r.specKey = jsonString(payload, "spec_key");
    if (r.specKey.empty())
        return false;
    r.workload = jsonString(payload, "workload");
    r.machine = jsonString(payload, "machine");
    r.status = jsonString(payload, "status");
    r.valid = jsonBool(payload, "valid", false);
    r.steadyMissing = jsonBool(payload, "steady_missing", false);
    r.attempts = unsigned(jsonU64(payload, "attempts", 1));
    r.backoffMs = jsonU64(payload, "backoff_ms", 0);
    r.ipc = jsonNumber(payload, "ipc", 0.0);
    r.committed = jsonU64(payload, "committed", 0);
    r.cycles = jsonU64(payload, "cycles", 0);
    r.fastForwarded = jsonU64(payload, "fast_forwarded", 0);
    r.wallSeconds = jsonNumber(payload, "wall_seconds", 0.0);
    r.worker = jsonString(payload, "worker");
    r.errorKind = jsonString(payload, "error_kind");
    r.error = jsonString(payload, "error");
    return !r.status.empty();
}

bool
isShardFile(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name.rfind("journal-", 0) == 0
        && name.size() > 5
        && name.compare(name.size() - 5, 5, ".hpaj") == 0;
}

std::string
readWholeFile(const fs::path &p)
{
    std::FILE *f = std::fopen(p.c_str(), "rb");
    if (!f)
        throw WorkloadError("job store: cannot read journal shard "
                            + p.string());
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

} // namespace

std::string
JobStore::recordJson(const StoredRun &r)
{
    std::ostringstream os;
    stats::json::JsonWriter jw(os);
    jw.beginObject()
        .kv("schema", JobStore::JSON_SCHEMA)
        .kv("spec_key", r.specKey)
        .kv("workload", r.workload)
        .kv("machine", r.machine)
        .kv("status", r.status)
        .kv("valid", r.valid)
        .kv("steady_missing", r.steadyMissing)
        .kv("attempts", r.attempts)
        .kv("backoff_ms", r.backoffMs)
        // Shortest-round-trip doubles: the merged artifact of a
        // resumed sweep must be bit-identical to the original run.
        .kv("ipc", r.ipc)
        .kv("committed", r.committed)
        .kv("cycles", r.cycles)
        .kv("fast_forwarded", r.fastForwarded)
        .kv("wall_seconds", r.wallSeconds)
        .kv("worker", r.worker);
    if (!r.errorKind.empty() || !r.error.empty()) {
        jw.kv("error_kind", r.errorKind).kv("error", r.error);
    }
    jw.endObject();
    return os.str();
}

std::string
JobStore::specCanonical(const ExperimentSpec &spec)
{
    const core::CoreConfig &c = spec.machine.cfg;
    std::ostringstream os;
    os << "workload=" << spec.workload
       << "|scale=" << (spec.scale == workloads::Scale::Full ? "full"
                                                             : "test")
       << "|max_insts=" << spec.max_insts
       << "|max_cycles=" << spec.max_cycles
       << "|fast_forward=" << (spec.fast_forward ? 1 : 0)
       << "|trace_cache=" << (spec.trace_cache ? 1 : 0)
       << "|batch=" << spec.batch
       << "|machine=" << spec.machine.name
       << "|width=" << c.width
       << "|ruu=" << c.ruu_size
       << "|lsq=" << c.lsq_size
       << "|fe_depth=" << c.front_end_depth
       << "|sched_to_exec=" << c.sched_to_exec
       << "|replay_shadow=" << c.replay_shadow
       << "|detect_delay=" << c.tagelim_detect_delay
       << "|min_bpenalty=" << c.min_branch_penalty
       << "|sched=" << core::schedPolicyFor(c.wakeup).name
       << "|rf=" << core::rfPolicyFor(c.regfile).name
       << "|recovery="
       << (c.recovery == core::RecoveryModel::Selective ? "sel"
                                                        : "nonsel")
       << "|rename="
       << (c.rename == core::RenameModel::HalfPort ? "half" : "2r")
       << "|lap=" << c.lap_entries
       << "|dlt_max=" << c.dlt_max_delay
       << "|bypass=" << c.bypass_window
       << "|watchdog=" << c.watchdog_cycles
       << "|check_interval=" << c.check_interval
       << "|fu=" << c.num_int_alu << ',' << c.num_fp_alu << ','
       << c.num_int_muldiv << ',' << c.num_fp_muldiv << ','
       << c.num_mem_ports
       << "|bpred=" << c.bpred.bimodal_entries << ','
       << c.bpred.gshare_entries << ',' << c.bpred.selector_entries
       << ',' << c.bpred.history_bits << ',' << c.bpred.btb_entries
       << ',' << c.bpred.btb_assoc << ',' << c.bpred.ras_entries
       << "|il1=" << c.mem.il1.size_bytes << ',' << c.mem.il1.assoc
       << ',' << c.mem.il1.line_bytes << ',' << c.mem.il1.latency
       << "|dl1=" << c.mem.dl1.size_bytes << ',' << c.mem.dl1.assoc
       << ',' << c.mem.dl1.line_bytes << ',' << c.mem.dl1.latency
       << "|l2=" << c.mem.l2.size_bytes << ',' << c.mem.l2.assoc
       << ',' << c.mem.l2.line_bytes << ',' << c.mem.l2.latency
       << "|mem_latency=" << c.mem.mem_latency;
    return os.str();
}

std::string
JobStore::specKey(const ExperimentSpec &spec)
{
    return toHex16(fnv1a64(specCanonical(spec)));
}

std::string
JobStore::ownShardPath() const
{
    return (fs::path(dir_) / ("journal-" + worker_ + ".hpaj"))
        .string();
}

JobStore::JobStore(std::string dir, std::string worker_id)
    : dir_(std::move(dir)), worker_(std::move(worker_id))
{
    if (worker_.empty()
        || worker_.find_first_of("/\\ \t\n") != std::string::npos)
        throw ConfigError("job store: worker id '" + worker_
                          + "' must be a non-empty filename token");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        throw WorkloadError("job store: cannot create directory "
                            + dir_ + ": " + ec.message());

    std::lock_guard<std::mutex> lock(mu_);
    loadLocked();

    out_ = std::fopen(ownShardPath().c_str(), "ab");
    if (!out_)
        throw WorkloadError("job store: cannot open journal shard "
                            + ownShardPath() + ": "
                            + std::strerror(errno));
}

JobStore::~JobStore()
{
    if (out_)
        std::fclose(out_);
}

void
JobStore::loadLocked()
{
    index_.clear();
    records_.clear();
    droppedBytes_ = 0;
    droppedRecords_ = 0;
    loadedRecords_ = 0;

    std::vector<fs::path> shards;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec))
        if (e.is_regular_file() && isShardFile(e.path()))
            shards.push_back(e.path());
    std::sort(shards.begin(), shards.end());

    for (const fs::path &shard : shards) {
        const std::string text = readWholeFile(shard);
        const auto *bytes =
            reinterpret_cast<const unsigned char *>(text.data());
        size_t off = 0, good_end = 0;
        while (off + FRAME_HEADER <= text.size()) {
            if (std::memcmp(bytes + off, MAGIC, 4) != 0)
                break;
            uint32_t len = getLE32(bytes + off + 4);
            uint64_t sum = getLE64(bytes + off + 8);
            if (len > MAX_PAYLOAD
                || off + FRAME_HEADER + len > text.size())
                break;
            std::string_view payload(text.data() + off + FRAME_HEADER,
                                     len);
            if (fnv1a64(payload) != sum)
                break;
            StoredRun r;
            if (!parseRecord(std::string(payload), r))
                break;
            ++loadedRecords_;
            auto [it, inserted] = index_.emplace(r.specKey, r);
            if (!inserted && !it->second.ok() && r.ok())
                it->second = r;
            records_.push_back(std::move(r));
            good_end = off + FRAME_HEADER + len;
            off = good_end;
        }
        if (good_end < text.size()) {
            // Torn tail or corrupt frame: everything from the first
            // bad byte on is unusable. Count it, and truncate it
            // away on the shard this process owns so the journal
            // heals in place; foreign shards are left untouched
            // (their owner may still be mid-write).
            droppedBytes_ += text.size() - good_end;
            ++droppedRecords_;
            if (shard.string() == ownShardPath()) {
                std::error_code tec;
                fs::resize_file(shard, good_end, tec);
                if (tec)
                    throw WorkloadError(
                        "job store: cannot truncate torn journal "
                        "tail of " + shard.string() + ": "
                        + tec.message());
            }
        }
    }
}

const StoredRun *
JobStore::find(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second;
}

size_t
JobStore::completed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
}

size_t
JobStore::okCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto &[key, r] : index_)
        if (r.ok())
            ++n;
    return n;
}

void
JobStore::appendRecord(const std::string &key,
                       const std::string &payload)
{
    std::string frame;
    frame.reserve(FRAME_HEADER + payload.size());
    frame.append(MAGIC, 4);
    putLE32(frame, uint32_t(payload.size()));
    putLE64(frame, fnv1a64(payload));
    frame += payload;

    if (std::fwrite(frame.data(), 1, frame.size(), out_)
            != frame.size()
        || std::fflush(out_) != 0
        || ::fsync(fileno(out_)) != 0)
        throw WorkloadError("job store: journal append failed for "
                            "cell " + key + ": "
                            + std::strerror(errno));
}

void
JobStore::append(const ExperimentSpec &spec, const RunResult &r)
{
    StoredRun s;
    s.specKey = specKey(spec);
    s.workload = spec.workload;
    s.machine = spec.machine.name;
    s.status = statusName(r.outcome.status);
    s.valid = r.valid();
    s.steadyMissing = r.outcome.steadyMissing;
    s.attempts = r.outcome.attempts;
    s.backoffMs = r.outcome.backoffMs;
    s.ipc = r.ipc;
    s.committed = r.committed;
    s.cycles = r.cycles;
    s.fastForwarded = r.fastForwarded;
    s.wallSeconds = r.wallSeconds;
    s.worker = worker_;
    if (!r.outcome.ok()) {
        s.errorKind = kindName(r.outcome.errorKind);
        s.error = r.outcome.error;
    }

    std::lock_guard<std::mutex> lock(mu_);
    appendRecord(s.specKey, recordJson(s));
    ++loadedRecords_;
    auto [it, inserted] = index_.emplace(s.specKey, s);
    if (!inserted && !it->second.ok() && s.ok())
        it->second = s;
    records_.push_back(std::move(s));
}

void
JobStore::appendFailure(const ExperimentSpec &spec,
                        const std::string &error_kind,
                        const std::string &error, unsigned attempts)
{
    StoredRun s;
    s.specKey = specKey(spec);
    s.workload = spec.workload;
    s.machine = spec.machine.name;
    s.status = statusName(RunStatus::Failed);
    s.attempts = attempts;
    s.worker = worker_;
    s.errorKind = error_kind;
    s.error = error;

    std::lock_guard<std::mutex> lock(mu_);
    appendRecord(s.specKey, recordJson(s));
    ++loadedRecords_;
    index_.emplace(s.specKey, s);
    records_.push_back(std::move(s));
}

void
JobStore::reload()
{
    std::lock_guard<std::mutex> lock(mu_);
    loadLocked();
}

size_t
JobStore::compact()
{
    std::lock_guard<std::mutex> lock(mu_);
    const size_t dropped = records_.size() - index_.size();

    const std::string tmp = ownShardPath() + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw WorkloadError("job store: cannot write compaction file "
                            + tmp);
    for (const auto &[key, r] : index_) {
        const std::string payload = recordJson(r);
        std::string frame;
        frame.append(MAGIC, 4);
        putLE32(frame, uint32_t(payload.size()));
        putLE64(frame, fnv1a64(payload));
        frame += payload;
        if (std::fwrite(frame.data(), 1, frame.size(), f)
                != frame.size()) {
            std::fclose(f);
            throw WorkloadError(
                "job store: compaction write failed for " + tmp);
        }
    }
    if (std::fflush(f) != 0 || ::fsync(fileno(f)) != 0) {
        std::fclose(f);
        throw WorkloadError("job store: compaction flush failed for "
                            + tmp);
    }
    std::fclose(f);

    // The replacement shard is durable; now retire every old shard.
    // Order matters for crash safety: rename over our own shard
    // first (atomic, loaders always see either the old or the new
    // complete file), then unlink the foreign shards — a crash
    // mid-unlink only leaves duplicate records, which the ok-wins
    // load rule already dedupes.
    if (out_) {
        std::fclose(out_);
        out_ = nullptr;
    }
    std::error_code ec;
    fs::rename(tmp, ownShardPath(), ec);
    if (ec)
        throw WorkloadError("job store: compaction rename failed: "
                            + ec.message());
    for (const auto &e : fs::directory_iterator(dir_, ec))
        if (e.is_regular_file() && isShardFile(e.path())
            && e.path().string() != ownShardPath())
            fs::remove(e.path(), ec);

    loadLocked();
    out_ = std::fopen(ownShardPath().c_str(), "ab");
    if (!out_)
        throw WorkloadError("job store: cannot reopen journal shard "
                            + ownShardPath() + " after compaction");
    return dropped;
}

bool
JobStore::armInjectionOnce(const std::string &kind, size_t index)
{
    const std::string marker =
        (fs::path(dir_)
         / ("inject-" + kind + "-" + std::to_string(index)
            + ".armed"))
            .string();
    // "wx" = O_CREAT|O_EXCL: exactly one caller per store wins.
    std::FILE *f = std::fopen(marker.c_str(), "wx");
    if (!f)
        return false;
    std::fputs("armed\n", f);
    std::fclose(f);
    return true;
}

} // namespace hpa::sim
