/**
 * @file
 * Structured error taxonomy for the whole simulator, plus the
 * HPA_CHECK release-mode invariant macros.
 *
 * Every failure the simulator can raise carries a machine-readable
 * ErrorKind and a SimContext (cycle, committed count, machine and
 * workload names, optional pipeline-state dump), so callers — the
 * CLI, the sweep engine, the JSON emitters — can report *what kind*
 * of failure happened and *where* without parsing prose.
 *
 * SimError is a mixin, not a std::exception subclass: each concrete
 * error derives from the matching standard exception (ConfigError is
 * a std::invalid_argument, Deadlock a std::runtime_error, ...) so
 * pre-existing `catch (std::invalid_argument)` call sites and tests
 * keep working, while new code catches `const hpa::SimError &` to
 * get the typed kind and context. The library is a leaf (hpa_error):
 * core, asm, func, workloads and sim all link it without cycles.
 *
 * HPA_CHECK(cond, msg) is the release-mode assert replacement: it
 * stays on in every build type and throws InvariantViolation (with
 * file/line/condition text) instead of aborting, so a scheduler
 * bookkeeping bug in a release sweep becomes one failed, attributable
 * cell instead of a silent divergence or a dead process.
 */

#ifndef HPA_SIM_ERROR_HH
#define HPA_SIM_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hpa
{

/** Machine-readable failure classification. */
enum class ErrorKind
{
    Config,    ///< bad user input: unknown workload, invalid machine
    Workload,  ///< workload construction/execution failure (asm, emu)
    Invariant, ///< internal consistency check failed (HPA_CHECK)
    Deadlock,  ///< watchdog: no forward progress for N cycles
    Timeout,   ///< per-run wall-clock budget exceeded
};

/** Stable lower-case tag for JSON/CLI output ("config", ...). */
const char *kindName(ErrorKind kind);

/**
 * Where a failure happened. Producers fill what they know: the core
 * fills cycle/committed/dump, the sweep engine adds machine and
 * workload names when it files the error into a RunOutcome.
 */
struct SimContext
{
    /** Simulated cycle at failure (0 = before/outside timing). */
    uint64_t cycle = 0;
    /** Instructions committed when the failure was raised. */
    uint64_t committed = 0;
    /** Cycle of the last successful commit (deadlock attribution). */
    uint64_t lastCommitCycle = 0;
    std::string machine;
    std::string workload;
    /** Multi-line pipeline-state dump (Core::dumpPipelineState()). */
    std::string dump;

    /** One-line " @cycle=... machine=..." suffix; empty if nothing
     *  was filled in. Never includes the dump. */
    std::string summary() const;
};

/**
 * Root of the simulator error hierarchy (mixin — catch this to get
 * kind() and context(); catch the std base for what()).
 */
class SimError
{
  public:
    SimError(ErrorKind kind, std::string msg, SimContext ctx)
        : kind_(kind), msg_(std::move(msg)), ctx_(std::move(ctx))
    {}
    virtual ~SimError() = default;

    /** The full composed text (same as the std exception's what()). */
    virtual const char *what() const noexcept = 0;

    ErrorKind kind() const { return kind_; }
    /** The bare message, without kind tag or context suffix. */
    const std::string &message() const { return msg_; }
    const SimContext &context() const { return ctx_; }

    /** One-line "[kind] message @context" (no dump) — what the CLI
     *  prints and the sweep engine stores per failed cell. */
    std::string oneLine() const;

  private:
    ErrorKind kind_;
    std::string msg_;
    SimContext ctx_;
};

namespace detail
{
/** Build the what() text: "[kind] msg @ctx" + "\n" + dump. */
std::string compose(ErrorKind kind, const std::string &msg,
                    const SimContext &ctx);

/** Cold-path helper behind HPA_CHECK; always throws
 *  InvariantViolation. */
[[noreturn]] void invariantFailed(const char *file, int line,
                                  const char *cond,
                                  const std::string &msg,
                                  SimContext ctx);
} // namespace detail

/** Bad user input: unknown workload name, contradictory machine
 *  configuration, malformed spec. Is a std::invalid_argument. */
class ConfigError : public std::invalid_argument, public SimError
{
  public:
    explicit ConfigError(const std::string &msg, SimContext ctx = {})
        : std::invalid_argument(
              detail::compose(ErrorKind::Config, msg, ctx)),
          SimError(ErrorKind::Config, msg, std::move(ctx))
    {}
    const char *
    what() const noexcept override
    {
        return std::invalid_argument::what();
    }
};

/** Workload construction or functional-execution failure (assembler
 *  errors, emulator faults, poisoned test workloads). */
class WorkloadError : public std::runtime_error, public SimError
{
  public:
    explicit WorkloadError(const std::string &msg, SimContext ctx = {})
        : std::runtime_error(
              detail::compose(ErrorKind::Workload, msg, ctx)),
          SimError(ErrorKind::Workload, msg, std::move(ctx))
    {}
    const char *
    what() const noexcept override
    {
        return std::runtime_error::what();
    }
};

/** An HPA_CHECK or cross-validation pass failed: simulator state is
 *  internally inconsistent. Is a std::logic_error. */
class InvariantViolation : public std::logic_error, public SimError
{
  public:
    explicit InvariantViolation(const std::string &msg,
                                SimContext ctx = {})
        : std::logic_error(
              detail::compose(ErrorKind::Invariant, msg, ctx)),
          SimError(ErrorKind::Invariant, msg, std::move(ctx))
    {}
    const char *
    what() const noexcept override
    {
        return std::logic_error::what();
    }
};

/** Watchdog: the core made no forward progress for the configured
 *  number of cycles. */
class Deadlock : public std::runtime_error, public SimError
{
  public:
    explicit Deadlock(const std::string &msg, SimContext ctx = {})
        : std::runtime_error(
              detail::compose(ErrorKind::Deadlock, msg, ctx)),
          SimError(ErrorKind::Deadlock, msg, std::move(ctx))
    {}
    const char *
    what() const noexcept override
    {
        return std::runtime_error::what();
    }
};

/** Per-run wall-clock budget exceeded (cooperative check in the
 *  core's run loop). */
class Timeout : public std::runtime_error, public SimError
{
  public:
    explicit Timeout(const std::string &msg, SimContext ctx = {})
        : std::runtime_error(
              detail::compose(ErrorKind::Timeout, msg, ctx)),
          SimError(ErrorKind::Timeout, msg, std::move(ctx))
    {}
    const char *
    what() const noexcept override
    {
        return std::runtime_error::what();
    }
};

} // namespace hpa

/**
 * Release-mode invariant check. Unlike assert() this is compiled into
 * every build type; a failure throws hpa::InvariantViolation carrying
 * file, line and the condition text. The condition must be cheap —
 * these run on simulator hot paths. The message expression is only
 * evaluated on failure.
 */
#define HPA_CHECK_CTX(cond, msg, ctx)                                  \
    do {                                                               \
        if (!(cond))                                                   \
            ::hpa::detail::invariantFailed(__FILE__, __LINE__, #cond,  \
                                           (msg), (ctx));              \
    } while (0)

/** HPA_CHECK_CTX without a context (non-core call sites). */
#define HPA_CHECK(cond, msg) HPA_CHECK_CTX(cond, msg, ::hpa::SimContext{})

#endif // HPA_SIM_ERROR_HH
