#include "sim/batched_simulation.hh"

#include "sim/error.hh"

namespace hpa::sim
{

BatchedSimulation::BatchedSimulation(
    std::vector<std::unique_ptr<Simulation>> lanes, uint64_t quantum)
    : lanes_(std::move(lanes)), errors_(lanes_.size()),
      quantum_(quantum ? quantum : DEFAULT_QUANTUM)
{
    if (lanes_.empty())
        throw ConfigError("BatchedSimulation needs at least one lane");
    for (const auto &sim : lanes_) {
        if (!sim || !sim->lane()) {
            throw ConfigError("BatchedSimulation lanes must be "
                              "trace-backed simulations");
        }
    }
}

void
BatchedSimulation::run(const std::vector<uint64_t> &max_cycles)
{
    auto capFor = [&](size_t i) {
        return i < max_cycles.size() ? max_cycles[i] : uint64_t(0);
    };

    // Round-robin the decode stream: each live lane replays one
    // quantum of the shared trace, then hands the (still cache-hot)
    // stream to the next machine config. A lane leaves the rotation
    // when it finishes, hits its cycle cap, or throws — a captured
    // error never perturbs its lane-mates, whose schedules are
    // bit-identical to a solo replay by construction (no shared
    // mutable state; see core/core_lane.hh).
    std::vector<size_t> active;
    active.reserve(lanes_.size());
    for (size_t i = 0; i < lanes_.size(); ++i)
        active.push_back(i);

    while (!active.empty()) {
        for (size_t k = 0; k < active.size();) {
            size_t i = active[k];
            bool more = false;
            try {
                more = lanes_[i]->lane()->tickQuantum(quantum_,
                                                      capFor(i));
            } catch (...) {
                errors_[i] = std::current_exception();
            }
            if (more) {
                ++k;
            } else {
                active[k] = active.back();
                active.pop_back();
            }
        }
    }
}

} // namespace hpa::sim
