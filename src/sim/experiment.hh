/**
 * @file
 * The declarative experiment API: machines are assembled by a
 * fluent, validating MachineBuilder, a run is described by an
 * ExperimentSpec, and every completed run returns a RunResult that
 * carries the achieved IPC, the budgets actually consumed, the
 * fast-forward count and the full statistics snapshot — emittable as
 * schema-versioned JSON. This is the stable programmatic surface the
 * tools, bench harnesses and sweep engine all drive the simulator
 * through; the builder is the single machine-construction path, and
 * policies can be selected by registry name (schedPolicy()/
 * rfPolicy(), see core/policy_registry.hh) or by enum.
 */

#ifndef HPA_SIM_EXPERIMENT_HH
#define HPA_SIM_EXPERIMENT_HH

#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/error.hh"
#include "sim/simulation.hh"
#include "stats/json.hh"
#include "workloads/workloads.hh"

namespace hpa::sim
{

/** How one experiment (sweep cell) finished. */
enum class RunStatus
{
    Ok,       ///< ran to its budget/HALT, metrics are meaningful
    Failed,   ///< raised an error (config/workload/invariant/deadlock)
    TimedOut, ///< exceeded its wall-clock budget
};

/** Stable lower-case tag for JSON/CLI output ("ok", ...). */
const char *statusName(RunStatus status);

/**
 * Test-only fault injection, threaded through ExperimentSpec so the
 * robustness tests can exercise the whole isolation pipeline — core
 * guard, sweep catch, CLI/JSON reporting — end to end. None in all
 * production specs.
 */
enum class FaultKind
{
    None,
    /** Request a workload name the registry rejects at run time. */
    PoisonWorkload,
    /** Corrupt the scheduler ready list at fault_cycle; the periodic
     *  cross-validation pass must trip an InvariantViolation. */
    InvariantTrip,
    /** Stop commit after fault_cycle; the watchdog must trip a
     *  Deadlock. */
    BlockCommit,
    /** Fail (WorkloadError) on the first attempt only — exercises
     *  max_retries recovery. */
    FlakyOnce,
    /**
     * Process-level: kill the whole worker process (SIGKILL) after
     * the cell computed its result but before it reaches the
     * journal — the closest controllable stand-in for an OOM kill or
     * power loss mid-cell. Only honoured by the job-store execution
     * paths (sim/shard.hh), which arm it exactly once per store via
     * an on-disk marker so the resumed/reclaimed retry runs clean;
     * the plain in-memory SweepRunner ignores it.
     */
    CrashProcess,
    /**
     * Process-level: the worker claims the cell's lease, then stops
     * renewing the heartbeat and stalls past the lease timeout
     * before running — so the coordinator/peers reclaim and re-queue
     * the cell while this worker is still "executing" it. When the
     * stalled worker finally finishes it must notice it lost the
     * lease and discard its result (no duplicate journal record).
     * Only meaningful under lease-based sharding (ShardWorker);
     * armed once per store, ignored elsewhere.
     */
    StallHeartbeat,
};

/**
 * How one run actually ended: status, the error (kind + one-line
 * text + context) when it did not end well, how many attempts it
 * took, and data-quality caveats that are not errors (a requested
 * fast-forward with no `steady:` symbol).
 */
struct RunOutcome
{
    RunStatus status = RunStatus::Ok;
    /** Meaningful only when !ok(). */
    ErrorKind errorKind = ErrorKind::Workload;
    /** One-line "[kind] message @context" (SimError::oneLine()), or
     *  the exception's what() for untyped errors. */
    std::string error;
    /** Failure context (cycle, committed, machine, workload, dump). */
    SimContext context;
    /** Attempts consumed (1 = first try; > 1 means retries). */
    unsigned attempts = 1;
    /** Total milliseconds slept in retry backoff before the final
     *  attempt (0 when the first attempt succeeded). Recorded so
     *  journal records and artifacts can attribute wall time lost to
     *  recovery, not simulation. */
    uint64_t backoffMs = 0;
    /** fast_forward was requested but the kernel has no `steady:`
     *  symbol — the run timed the initialization code too. */
    bool steadyMissing = false;

    bool ok() const { return status == RunStatus::Ok; }
};

/**
 * Fluent machine assembly with eager naming and deferred
 * validation:
 *
 *   Machine m = Machine::base(4)
 *                   .wakeup(core::WakeupModel::Sequential)
 *                   .lap(1024)
 *                   .regfile(core::RegfileModel::SequentialAccess)
 *                   .build();
 *
 * Each setter updates the configuration and appends the historical
 * machine-name suffix from the policy registry (the names key the
 * golden IPC gate, so they are part of the stable surface).
 * build() — or the implicit Machine conversion — validates the
 * combination and throws std::invalid_argument on contradictions:
 * a lap() table on a predictor-less wakeup scheme, a non-power-of-2
 * predictor, a detectDelay() without tag elimination, a zero-cycle
 * bypass window, or a width outside Table 1.
 */
class MachineBuilder
{
  public:
    /** Start from a Table 1 base machine; width must be 4 or 8. */
    static MachineBuilder base(unsigned width);

    /** Start from an existing machine (modify a built Machine). */
    static MachineBuilder from(Machine m);

    MachineBuilder &wakeup(core::WakeupModel w);
    MachineBuilder &regfile(core::RegfileModel r);
    MachineBuilder &recovery(core::RecoveryModel r);
    MachineBuilder &rename(core::RenameModel r);

    /** Select the wakeup/select policy by registry key ("conv",
     *  "seq", "seq-nopred", "tag-elim", "dlt"); throws ConfigError
     *  listing the registered names on an unknown key. */
    MachineBuilder &schedPolicy(std::string_view name);

    /** Select the register-file port policy by registry key
     *  ("2port", "seq", "extra-stage", "half-xbar", "prefetch");
     *  throws ConfigError listing the registered names. */
    MachineBuilder &rfPolicy(std::string_view name);

    /** Last-arrival predictor entries (power of 2); only meaningful
     *  — and only accepted — with a predictor-based wakeup scheme
     *  (Sequential or TagElimination). */
    MachineBuilder &lap(unsigned entries);

    /** Bypass-network window in cycles (>= 1, Section 4.2). */
    MachineBuilder &bypassWindow(unsigned cycles);

    /** Scheduler data-structure engine (masked or reference).
     *  Result-invariant simulator implementation choice — never
     *  appended to the machine name (see core::SchedEngine). */
    MachineBuilder &schedEngine(core::SchedEngine e);

    /** Tag-elimination scoreboard detection delay (>= 1); requires
     *  WakeupModel::TagElimination. */
    MachineBuilder &detectDelay(unsigned cycles);

    /** Validate the accumulated configuration and return it. */
    Machine build() const;

    /** Implicit finalization so a chain can be passed anywhere a
     *  Machine is expected. */
    operator Machine() const { return build(); }

  private:
    explicit MachineBuilder(Machine m) : m_(std::move(m)) {}

    Machine m_;
    bool lapSet_ = false;
    bool detectSet_ = false;
};

/**
 * A declarative run request: which workload, on which machine, under
 * which budgets. This is the unit the sweep engine executes (the
 * legacy name SweepJob aliases this type) and the unit serialized
 * into run artifacts.
 */
struct ExperimentSpec
{
    /** Workload registry name (workloads::benchmarkNames()). */
    std::string workload;
    Machine machine;
    /** Committed-instruction budget (0 = run to HALT). */
    uint64_t max_insts = 0;
    /** Cycle budget (0 = unbounded). */
    uint64_t max_cycles = 0;
    /** Fast-forward functionally to the kernel's `steady:` label. */
    bool fast_forward = true;
    workloads::Scale scale = workloads::Scale::Full;

    /**
     * Replay the workload's committed stream from a shared,
     * capture-once trace (WorkloadCache::trace()) instead of
     * stepping a private emulator per cell. Bit-identical results —
     * the trace replays the exact ExecRecord stream — but functional
     * emulation is paid once per (workload, budget, fast-forward)
     * instead of once per cell, which is what makes N-machine sweeps
     * cheap. Off buys back the live emulator (architectural state
     * inspection mid-run) at per-cell emulation cost.
     */
    bool trace_cache = true;

    /**
     * Batched replay width: how many cells sharing this workload's
     * trace may be replayed in one pass by a single worker, their
     * lanes ticked in interleaved quanta so the shared trace stream
     * stays cache-hot across machine configs (sim::BatchedSimulation).
     * 0 = auto (SweepRunner::resolveBatch), 1 = replay each cell
     * alone. Purely a data-layout/scheduling knob: results are
     * bit-identical for every batch size. Cells that need run-level
     * isolation — fault injection, wall budgets, live emulators
     * (trace_cache off) — always fall back to solo replay so
     * RunOutcome isolation is preserved.
     */
    unsigned batch = 0;

    /** Per-run wall-clock budget in seconds (0 = unbounded). The
     *  core checks it cooperatively and raises hpa::Timeout. */
    double wall_budget_seconds = 0.0;
    /** Extra attempts after a failed/timed-out run before the cell
     *  is reported failed (0 = no retries). */
    unsigned max_retries = 0;
    /** Base of the exponential retry backoff in milliseconds: the
     *  sleep before attempt N+1 is base * 2^(N-1) plus a
     *  deterministic jitter, capped (SweepRunner::backoffDelayMs).
     *  0 disables sleeping between retries (tests). */
    unsigned retry_backoff_ms = 25;

    /** Test-only fault injection (FaultKind::None in production). */
    FaultKind fault = FaultKind::None;
    /** Cycle at which InvariantTrip/BlockCommit faults arm. */
    uint64_t fault_cycle = 1000;

    /**
     * Check the spec is runnable: the workload must be a registered
     * benchmark and the machine must have been assembled (non-empty
     * name, non-zero width). Throws hpa::ConfigError (a
     * std::invalid_argument).
     */
    void validate() const;
};

/**
 * A completed experiment. The Simulation is kept alive so callers
 * can reach the core, the LAP monitor, the emulator console, … —
 * and so the statistics snapshot can be rendered in any format
 * after the fact.
 */
struct RunResult
{
    ExperimentSpec spec;
    std::unique_ptr<Simulation> sim;
    double ipc = 0.0;
    uint64_t committed = 0;
    uint64_t cycles = 0;
    /** Instructions functionally skipped before timing began. */
    uint64_t fastForwarded = 0;
    /** Wall-clock seconds of the timing run (excludes workload
     *  assembly and functional fast-forward). */
    double wallSeconds = 0.0;
    /** How the run ended; a failed cell keeps its spec and outcome
     *  but may have no sim and zeroed metrics. */
    RunOutcome outcome;

    /** Metrics are meaningful: the run succeeded and actually
     *  simulated cycles. Failed/zero-cycle cells report ipc = 0.0
     *  with valid() = false instead of NaN/Inf. */
    bool
    valid() const
    {
        return outcome.ok() && cycles > 0;
    }

    /** Simulated cycles per wall second (host throughput). */
    double
    cyclesPerSec() const
    {
        return wallSeconds > 0 ? double(cycles) / wallSeconds : 0.0;
    }

    /** The core's statistics block (requires sim). */
    const core::CoreStats &coreStats() const;

    /** Full statistics snapshot: every core/memory/bpred stat plus
     *  the IPC formula, as the text report registers them. */
    stats::Registry statsRegistry() const;

    /**
     * Serialize onto @p jw as one "hpa.run.v2" object: the spec,
     * the status/error outcome, the metrics and (optionally) the
     * full stats snapshot. v2 adds status, valid, steady_missing,
     * attempts and — on failed cells — error_kind/error over v1.
     * Wall-clock fields are emitted only when @p with_timing — keep
     * them out of committed reference artifacts, which must be
     * reproducible byte-for-byte.
     */
    void toJson(stats::json::JsonWriter &jw, bool with_stats = true,
                bool with_timing = false) const;

    /** Standalone toJson() convenience: one document on @p os. */
    void toJson(std::ostream &os, bool with_stats = true,
                bool with_timing = false) const;

    /** Schema tag of toJson() documents. */
    static constexpr const char *JSON_SCHEMA = "hpa.run.v2";
};

} // namespace hpa::sim

#endif // HPA_SIM_EXPERIMENT_HH
