#include "sim/simulation.hh"

#include "sim/experiment.hh"

namespace hpa::sim
{

Simulation::Simulation(const assembler::Program &prog,
                       const core::CoreConfig &cfg, uint64_t max_insts,
                       uint64_t fast_forward_pc)
{
    emu_ = std::make_unique<func::Emulator>(prog);
    if (fast_forward_pc) {
        while (!emu_->halted() && emu_->pc() != fast_forward_pc) {
            emu_->step();
            ++fastForwarded_;
        }
    }
    source_ = std::make_unique<core::EmulatorSource>(*emu_, max_insts);
    core_ = std::make_unique<core::Core>(cfg, *source_);
    corePtr_ = core_.get();
}

Simulation::Simulation(const func::CommittedTrace &trace,
                       const core::CoreConfig &cfg)
    : trace_(&trace), fastForwarded_(trace.fastForwarded())
{
    lane_ = std::make_unique<core::CoreLane>(cfg, trace);
    corePtr_ = &lane_->core();
}

func::Emulator &
Simulation::emulator()
{
    if (!emu_)
        throw ConfigError(
            "trace-replay simulation has no emulator (use console() "
            "or construct from a program for architectural state)");
    return *emu_;
}

const std::string &
Simulation::console() const
{
    return emu_ ? emu_->console() : trace_->console();
}

uint64_t
Simulation::run(uint64_t max_cycles)
{
    return corePtr_->run(max_cycles);
}

stats::Registry
Simulation::statsRegistry()
{
    stats::Registry reg;
    corePtr_->regStats(reg);
    core::Core *c = corePtr_;
    reg.add(stats::Formula("core.ipc", "committed per cycle",
                           [c] { return c->ipc(); }));
    return reg;
}

void
Simulation::report(std::ostream &os)
{
    statsRegistry().dump(os);
}

double
runIpc(const std::string &program_text, const core::CoreConfig &cfg,
       uint64_t max_insts)
{
    auto prog = assembler::assemble(program_text);
    Simulation s(prog, cfg, max_insts);
    s.run();
    return s.ipc();
}

} // namespace hpa::sim
