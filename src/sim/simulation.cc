#include "sim/simulation.hh"

namespace hpa::sim
{

Machine
baseMachine(unsigned width)
{
    Machine m;
    if (width == 8) {
        m.name = "8-wide";
        m.cfg = core::eightWideConfig();
    } else {
        m.name = "4-wide";
        m.cfg = core::fourWideConfig();
    }
    return m;
}

Machine
withWakeup(Machine m, core::WakeupModel w, unsigned lap_entries)
{
    m.cfg.wakeup = w;
    m.cfg.lap_entries = lap_entries;
    switch (w) {
      case core::WakeupModel::Conventional:
        m.name += "/conv-wakeup";
        break;
      case core::WakeupModel::Sequential:
        m.name += "/seq-wakeup";
        break;
      case core::WakeupModel::SequentialNoPred:
        m.name += "/seq-wakeup-nopred";
        break;
      case core::WakeupModel::TagElimination:
        m.name += "/tag-elim";
        break;
    }
    return m;
}

Machine
withRegfile(Machine m, core::RegfileModel r)
{
    m.cfg.regfile = r;
    switch (r) {
      case core::RegfileModel::TwoPort:
        m.name += "/2r-port";
        break;
      case core::RegfileModel::SequentialAccess:
        m.name += "/seq-rf";
        break;
      case core::RegfileModel::ExtraStage:
        m.name += "/extra-rf-stage";
        break;
      case core::RegfileModel::HalfPortCrossbar:
        m.name += "/half-ports-xbar";
        break;
    }
    return m;
}

Machine
withRecovery(Machine m, core::RecoveryModel r)
{
    m.cfg.recovery = r;
    m.name += r == core::RecoveryModel::Selective
        ? "/selective" : "/non-selective";
    return m;
}

Machine
withRename(Machine m, core::RenameModel r)
{
    m.cfg.rename = r;
    m.name += r == core::RenameModel::HalfPort
        ? "/half-rename" : "/2r-rename";
    return m;
}

Simulation::Simulation(const assembler::Program &prog,
                       const core::CoreConfig &cfg, uint64_t max_insts,
                       uint64_t fast_forward_pc)
{
    emu_ = std::make_unique<func::Emulator>(prog);
    if (fast_forward_pc) {
        while (!emu_->halted() && emu_->pc() != fast_forward_pc) {
            emu_->step();
            ++fastForwarded_;
        }
    }
    source_ = std::make_unique<core::EmulatorSource>(*emu_, max_insts);
    core_ = std::make_unique<core::Core>(cfg, *source_);
}

uint64_t
Simulation::run(uint64_t max_cycles)
{
    return core_->run(max_cycles);
}

void
Simulation::report(std::ostream &os)
{
    stats::Registry reg;
    core_->regStats(reg);
    reg.add(stats::Formula("core.ipc", "committed per cycle",
                           [this] { return core_->ipc(); }));
    reg.dump(os);
}

double
runIpc(const std::string &program_text, const core::CoreConfig &cfg,
       uint64_t max_insts)
{
    auto prog = assembler::assemble(program_text);
    Simulation s(prog, cfg, max_insts);
    s.run();
    return s.ipc();
}

} // namespace hpa::sim
