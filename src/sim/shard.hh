/**
 * @file
 * Multi-process sweep sharding over a persistent JobStore: worker
 * processes claim sweep cells via on-disk lease files with heartbeat
 * renewal, run them, and stream the results into the journal; a
 * coordinator (or any peer) reclaims leases whose heartbeat expired —
 * the worker died mid-cell — and re-queues the cell behind an
 * exponential-backoff gate with an attempt cap.
 *
 * The protocol is built from three atomic filesystem primitives, so
 * it needs no server and survives SIGKILL at any instruction:
 *
 *   claim    `open(leases/<key>.lease, O_CREAT|O_EXCL)` — exactly one
 *            winner; the file body is the claimant's unique token.
 *   renew    bump the lease file's mtime (the heartbeat). A lease
 *            whose mtime is older than the timeout is *stale*: its
 *            holder is presumed dead.
 *   reclaim  `rename(<key>.lease, <key>.reclaim-<token>)` — atomic,
 *            so concurrent reclaimers get exactly one winner — then
 *            set the retry gate and unlink. The stalled holder, if it
 *            was merely slow, discovers the loss because its token no
 *            longer matches (owned() == false) and discards its
 *            result instead of appending a duplicate.
 *
 * Attempt accounting lives in `retry/<key>` ("attempts not_before_ms",
 * written atomically via rename): each successful claim counts one
 * attempt, a reclaim arms an exponential not-before gate, and a cell
 * whose attempts reach the cap is recorded as a permanent failure
 * instead of looping forever.
 */

#ifndef HPA_SIM_SHARD_HH
#define HPA_SIM_SHARD_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/job_store.hh"

namespace hpa::sim
{

/** Lease-protocol tuning. */
struct LeaseOptions
{
    /** Heartbeat staleness threshold in seconds: a lease not renewed
     *  for this long is presumed orphaned and may be reclaimed.
     *  Holders renew every timeout/4. */
    double timeout_seconds = 30.0;
    /** Total times a cell may be started before it is recorded as a
     *  permanent failure (crash-retry cap). */
    unsigned max_attempts = 3;
};

/**
 * The lease half of the sharding protocol (claim / renew / reclaim /
 * attempt bookkeeping) over a JobStore directory. One instance per
 * worker process; every method is safe against concurrent instances
 * in other processes, and renew()/owned() are additionally
 * thread-safe against the owner's heartbeat thread.
 */
class LeaseManager
{
  public:
    /** @param store_dir the JobStore directory (leases/ and retry/
     *  are created beneath it)
     *  @param worker_id unique writer identity (same token the
     *  JobStore shard uses) */
    LeaseManager(std::string store_dir, std::string worker_id,
                 LeaseOptions opts = {});

    const LeaseOptions &options() const { return opts_; }

    /**
     * Try to claim @p key: respects the retry not-before gate, never
     * steals a live (or even stale) lease — stale ones must be
     * reclaim()ed first — and on success counts one attempt in
     * retry/<key>. @return true iff this process now holds the lease.
     */
    bool tryAcquire(const std::string &key);

    /**
     * Claim @p key ignoring the retry gate and without attempt
     * bookkeeping — used to serialize the permanent-failure record
     * of a cell that exhausted its attempts (exactly one worker
     * writes it). Never steals an existing lease.
     */
    bool forceAcquire(const std::string &key);

    /** Renew the heartbeat on a lease this process holds. @return
     *  false when the lease was lost (reclaimed by a peer). */
    bool renew(const std::string &key);

    /** Does this process still hold @p key? Reads the lease file and
     *  compares tokens — a reclaimed or re-claimed lease no longer
     *  matches, and the caller must discard its result. */
    bool owned(const std::string &key) const;

    /** Release a held lease (unlink; no-op if already lost). */
    void release(const std::string &key);

    /** Release every lease this process still holds (signal-exit
     *  path, so peers need not wait out the timeout). */
    void releaseAll();

    /**
     * Scan leases/ for stale entries and reclaim them: atomically
     * rename (single winner among concurrent reclaimers), arm the
     * exponential not-before gate for the cell's next attempt, and
     * unlink. @return leases reclaimed by this call.
     */
    size_t reclaimExpired();

    /** Attempts already started for @p key (0 = never claimed). */
    unsigned attempts(const std::string &key) const;

    /** Attempts reached the cap and the cell still has no durable
     *  result — it must be recorded as a permanent failure. */
    bool
    attemptsExhausted(const std::string &key) const
    {
        return attempts(key) >= opts_.max_attempts;
    }

  private:
    std::string leasePath(const std::string &key) const;
    std::string retryPath(const std::string &key) const;
    /** Read retry/<key>; false when absent/garbled. */
    bool readRetry(const std::string &key, unsigned &att,
                   int64_t &not_before_ms) const;
    void writeRetry(const std::string &key, unsigned att,
                    int64_t not_before_ms);
    int64_t nowMs() const;

    std::string dir_;
    std::string worker_;
    LeaseOptions opts_;
    /** Unique claim-token prefix (worker id + pid). */
    std::string token_;
    uint64_t seq_ = 0;
    mutable std::mutex mu_;
    /** key -> token written into the lease file we hold. */
    std::unordered_map<std::string, std::string> held_;
};

/** Shared knobs of both store-backed execution modes. */
struct ShardOptions
{
    LeaseOptions lease;
    /** Cooperative stop flag (SIGINT/SIGTERM): finish the in-flight
     *  cell, journal it, release leases, return. */
    std::atomic<bool> *stop = nullptr;
    /** Idle poll interval while waiting for claimable work (ms). */
    unsigned poll_ms = 200;
};

/** What a worker/runner actually did (its exit report). */
struct ShardSummary
{
    /** Cells this process executed and journaled. */
    size_t executed = 0;
    /** Cells found already completed in the journal (skipped). */
    size_t resumed = 0;
    /** Permanent-failure records this process appended (cells whose
     *  crash-retry attempts were exhausted). */
    size_t failed_permanent = 0;
    /** Results computed but discarded because the lease was lost
     *  mid-run (stalled heartbeat — never journaled, no duplicate). */
    size_t discarded = 0;
    /** True when the run ended early on the stop flag. */
    bool stopped = false;
};

/**
 * One sharded worker: loops over the job list claiming unfinished
 * cells by lease, runs each via SweepRunner::runOne with a heartbeat
 * thread renewing the lease, re-verifies ownership before journaling
 * (a lost lease discards the result — the zero-duplicate guarantee),
 * reclaims expired peer leases while idle, and exits when every cell
 * has a durable record or the stop flag is raised.
 *
 * Process-level fault injection (FaultKind::CrashProcess /
 * StallHeartbeat on a spec) is honoured here: armed exactly once per
 * store via JobStore::armInjectionOnce, stripped from the spec before
 * simulation, so the reclaimed retry runs clean and bit-identical.
 */
class ShardWorker
{
  public:
    ShardWorker(JobStore &store, std::vector<ExperimentSpec> jobs,
                ShardOptions opts = {});
    ~ShardWorker();

    ShardWorker(const ShardWorker &) = delete;
    ShardWorker &operator=(const ShardWorker &) = delete;

    /** Run until all cells are durable (or stop). */
    ShardSummary run();

    LeaseManager &leases() { return leases_; }

  private:
    void heartbeatLoop();
    void setHeartbeat(const std::string &key, bool suppressed);
    bool stopRequested() const;

    JobStore &store_;
    std::vector<ExperimentSpec> jobs_;
    std::vector<std::string> keys_;
    ShardOptions opts_;
    LeaseManager leases_;

    std::thread hbThread_;
    std::mutex hbMu_;
    std::condition_variable hbCv_;
    std::string hbKey_;
    bool hbSuppressed_ = false;
    bool hbStop_ = false;
};

/**
 * Single-process store-backed sweep: run every cell of @p jobs that
 * has no journal record yet on @p threads pool threads (dynamic
 * claiming, SweepRunner::parallelFor), journaling each result as it
 * completes — so a crash costs at most the in-flight cells and a
 * subsequent --resume run executes only the remainder. No leases:
 * within one process the store index is the claim set. CrashProcess
 * injection is honoured (armed once via the store marker);
 * StallHeartbeat is lease-specific and ignored here.
 */
ShardSummary runWithStore(JobStore &store,
                          const std::vector<ExperimentSpec> &jobs,
                          unsigned threads,
                          std::atomic<bool> *stop = nullptr);

} // namespace hpa::sim

#endif // HPA_SIM_SHARD_HH
