#include "sim/error.hh"

namespace hpa
{

const char *
kindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config: return "config";
      case ErrorKind::Workload: return "workload";
      case ErrorKind::Invariant: return "invariant";
      case ErrorKind::Deadlock: return "deadlock";
      case ErrorKind::Timeout: return "timeout";
    }
    return "unknown";
}

std::string
SimContext::summary() const
{
    std::string s;
    if (cycle)
        s += " cycle=" + std::to_string(cycle);
    if (committed)
        s += " committed=" + std::to_string(committed);
    if (lastCommitCycle)
        s += " last_commit_cycle=" + std::to_string(lastCommitCycle);
    if (!machine.empty())
        s += " machine=" + machine;
    if (!workload.empty())
        s += " workload=" + workload;
    if (!s.empty())
        s = " @" + s.substr(1);
    return s;
}

// Built with appends rather than operator+ chains: GCC 12's -Wrestrict
// misfires on temporary-string concatenation at -O3 (GCC PR105329).
std::string
SimError::oneLine() const
{
    std::string s = "[";
    s += kindName(kind());
    s += "] ";
    s += message();
    s += context().summary();
    return s;
}

namespace detail
{

std::string
compose(ErrorKind kind, const std::string &msg, const SimContext &ctx)
{
    std::string s = "[";
    s += kindName(kind);
    s += "] ";
    s += msg;
    s += ctx.summary();
    if (!ctx.dump.empty()) {
        s += '\n';
        s += ctx.dump;
    }
    return s;
}

void
invariantFailed(const char *file, int line, const char *cond,
                const std::string &msg, SimContext ctx)
{
    std::string where(file);
    // Keep only the path tail; full build paths add noise.
    size_t slash = where.rfind("src/");
    if (slash != std::string::npos)
        where = where.substr(slash);
    throw InvariantViolation("HPA_CHECK failed at " + where + ":"
                                 + std::to_string(line) + ": (" + cond
                                 + ") — " + msg,
                             std::move(ctx));
}

} // namespace detail
} // namespace hpa
