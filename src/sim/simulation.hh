/**
 * @file
 * Convenience driver tying together an assembled program, the
 * functional emulator and the timing core, plus the Table 1 machine
 * configurations.
 */

#ifndef HPA_SIM_SIMULATION_HH
#define HPA_SIM_SIMULATION_HH

#include <memory>
#include <ostream>
#include <string>

#include "asm/assembler.hh"
#include "core/core.hh"
#include "core/core_lane.hh"
#include "func/emulator.hh"
#include "func/trace.hh"

namespace hpa::sim
{

class MachineBuilder;

/** Named machine model variants used across the evaluation. */
struct Machine
{
    std::string name;
    core::CoreConfig cfg;

    /**
     * Start a fluent, validating builder chain from a Table 1 base
     * machine (width 4 or 8; anything else throws):
     *
     *   Machine m = Machine::base(4)
     *                   .wakeup(core::WakeupModel::Sequential)
     *                   .lap(1024);
     *
     * See sim/experiment.hh for the full MachineBuilder interface.
     */
    static MachineBuilder base(unsigned width);
};

/**
 * One simulation: the timing core plus its committed-path source.
 * Two source flavours share every other member:
 *  - execution-driven: owns an emulator stepped per instruction
 *    (the program-based constructor), or
 *  - trace-replay: replays a shared read-only CommittedTrace (the
 *    trace-based constructor; no emulator, functional execution was
 *    paid once at capture).
 */
class Simulation
{
  public:
    /**
     * @param prog assembled program
     * @param cfg core configuration
     * @param max_insts cap on simulated committed instructions
     *        (0 = run to HALT)
     * @param fast_forward_pc functionally execute (without timing)
     *        until the PC first reaches this address — SimpleScalar
     *        style fast-forward past initialization. 0 disables.
     */
    Simulation(const assembler::Program &prog,
               const core::CoreConfig &cfg, uint64_t max_insts = 0,
               uint64_t fast_forward_pc = 0);

    /**
     * Trace-replay simulation: drive the core from @p trace (which
     * already encodes the fast-forward skip and instruction budget
     * it was captured with). @p trace must outlive this Simulation —
     * WorkloadCache::trace() entries satisfy that for free.
     */
    Simulation(const func::CommittedTrace &trace,
               const core::CoreConfig &cfg);

    /** Instructions skipped by fast-forwarding. */
    uint64_t fastForwarded() const { return fastForwarded_; }

    /** Run to completion; @return committed instructions. */
    uint64_t run(uint64_t max_cycles = 0);

    core::Core &core() { return *corePtr_; }

    /**
     * The replay lane of a trace-backed simulation, for batch
     * schedulers that interleave several lanes over one shared
     * trace (sim::BatchedSimulation). Null on execution-driven
     * runs, which cannot be batched.
     */
    core::CoreLane *lane() { return lane_.get(); }

    /** True on execution-driven runs; trace replays own no emulator. */
    bool hasEmulator() const { return emu_ != nullptr; }

    /** The emulator of an execution-driven run. Throws
     *  hpa::ConfigError on trace-replay simulations. */
    func::Emulator &emulator();

    /**
     * Console bytes of the workload: the emulator's console (live,
     * grows as the source is stepped) or, on trace replays, the
     * console recorded at capture (complete from the start).
     */
    const std::string &console() const;

    double ipc() const { return corePtr_->ipc(); }

    /**
     * Every statistic of this run in one registry: the core's
     * counters/distributions plus the core.ipc formula. The registry
     * holds non-owning pointers into the core, so it must not
     * outlive this Simulation. All renderings — the text report,
     * JSON, CSV — are views over this registry.
     */
    stats::Registry statsRegistry();

    /** Dump a full statistics report (statsRegistry() as text). */
    void report(std::ostream &os);

  private:
    std::unique_ptr<func::Emulator> emu_;
    /** Non-owning on trace replays (the cache owns the trace). */
    const func::CommittedTrace *trace_ = nullptr;
    /** Execution-driven path: emulator-backed source + core. */
    std::unique_ptr<core::InstSource> source_;
    std::unique_ptr<core::Core> core_;
    /** Trace-replay path: the (source, core) pair lives in a lane. */
    std::unique_ptr<core::CoreLane> lane_;
    /** The core of whichever path is active. */
    core::Core *corePtr_ = nullptr;
    uint64_t fastForwarded_ = 0;
};

/**
 * Assemble-and-run helper: run @p program_text on @p cfg for at most
 * @p max_insts instructions and return the achieved IPC.
 */
double runIpc(const std::string &program_text,
              const core::CoreConfig &cfg, uint64_t max_insts = 0);

} // namespace hpa::sim

#endif // HPA_SIM_SIMULATION_HH
