#include "sim/experiment.hh"

#include <algorithm>

#include "core/policy_registry.hh"
#include "sim/error.hh"

namespace hpa::sim
{

const char *
statusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok:
        return "ok";
      case RunStatus::Failed:
        return "failed";
      case RunStatus::TimedOut:
        return "timed_out";
    }
    return "?";
}

MachineBuilder
Machine::base(unsigned width)
{
    return MachineBuilder::base(width);
}

MachineBuilder
MachineBuilder::base(unsigned width)
{
    if (width != 4 && width != 8)
        throw ConfigError(
            "machine width must be 4 or 8 (Table 1), got "
            + std::to_string(width));
    Machine m;
    m.name = width == 8 ? "8-wide" : "4-wide";
    m.cfg = width == 8 ? core::eightWideConfig()
                       : core::fourWideConfig();
    return MachineBuilder(std::move(m));
}

MachineBuilder
MachineBuilder::from(Machine m)
{
    return MachineBuilder(std::move(m));
}

MachineBuilder &
MachineBuilder::wakeup(core::WakeupModel w)
{
    // The registry owns the name suffixes (they key the golden IPC
    // gate); enum and string entry points stay in lockstep.
    m_.cfg.wakeup = w;
    m_.name += core::schedPolicyFor(w).suffix;
    return *this;
}

MachineBuilder &
MachineBuilder::regfile(core::RegfileModel r)
{
    m_.cfg.regfile = r;
    m_.name += core::rfPolicyFor(r).suffix;
    return *this;
}

MachineBuilder &
MachineBuilder::schedPolicy(std::string_view name)
{
    const core::SchedPolicyInfo *info = core::findSchedPolicy(name);
    if (!info)
        throw ConfigError(
            "unknown scheduler policy '" + std::string(name)
            + "' (registered: " + core::schedPolicyNames() + ")");
    return wakeup(info->model);
}

MachineBuilder &
MachineBuilder::rfPolicy(std::string_view name)
{
    const core::RFPolicyInfo *info = core::findRFPolicy(name);
    if (!info)
        throw ConfigError(
            "unknown register-file policy '" + std::string(name)
            + "' (registered: " + core::rfPolicyNames() + ")");
    return regfile(info->model);
}

MachineBuilder &
MachineBuilder::recovery(core::RecoveryModel r)
{
    m_.cfg.recovery = r;
    m_.name += r == core::RecoveryModel::Selective ? "/selective"
                                                   : "/non-selective";
    return *this;
}

MachineBuilder &
MachineBuilder::rename(core::RenameModel r)
{
    m_.cfg.rename = r;
    m_.name += r == core::RenameModel::HalfPort ? "/half-rename"
                                                : "/2r-rename";
    return *this;
}

MachineBuilder &
MachineBuilder::lap(unsigned entries)
{
    m_.cfg.lap_entries = entries;
    lapSet_ = true;
    return *this;
}

MachineBuilder &
MachineBuilder::bypassWindow(unsigned cycles)
{
    m_.cfg.bypass_window = cycles;
    return *this;
}

MachineBuilder &
MachineBuilder::schedEngine(core::SchedEngine e)
{
    // No name suffix: the engine is a simulator implementation
    // choice, pinned result-invariant by the golden gate.
    m_.cfg.sched_engine = e;
    return *this;
}

MachineBuilder &
MachineBuilder::detectDelay(unsigned cycles)
{
    m_.cfg.tagelim_detect_delay = cycles;
    detectSet_ = true;
    return *this;
}

Machine
MachineBuilder::build() const
{
    const core::CoreConfig &cfg = m_.cfg;
    bool predictor_wakeup =
        cfg.wakeup == core::WakeupModel::Sequential
        || cfg.wakeup == core::WakeupModel::TagElimination;

    if (lapSet_ && !predictor_wakeup)
        throw ConfigError(
            "machine '" + m_.name
            + "': lap() needs a predictor-based wakeup scheme "
              "(Sequential or TagElimination)");
    if (cfg.lap_entries == 0
        || (cfg.lap_entries & (cfg.lap_entries - 1)))
        throw ConfigError(
            "machine '" + m_.name
            + "': predictor entries must be a power of 2, got "
            + std::to_string(cfg.lap_entries));
    if (detectSet_ && cfg.wakeup != core::WakeupModel::TagElimination)
        throw ConfigError(
            "machine '" + m_.name
            + "': detectDelay() only applies to tag elimination");
    if (cfg.tagelim_detect_delay == 0)
        throw ConfigError(
            "machine '" + m_.name
            + "': tag-elimination detect delay must be >= 1 cycle");
    if (cfg.bypass_window == 0)
        throw ConfigError(
            "machine '" + m_.name
            + "': bypass window must be >= 1 cycle");
    return m_;
}

void
ExperimentSpec::validate() const
{
    if (machine.name.empty() || machine.cfg.width == 0)
        throw ConfigError(
            "experiment spec has no machine (use Machine::base())");
    if (workload.empty())
        throw ConfigError(
            "experiment spec has no workload");
    const auto names = workloads::benchmarkNames();
    if (std::find(names.begin(), names.end(), workload)
        == names.end()) {
        SimContext ctx;
        ctx.machine = machine.name;
        ctx.workload = workload;
        throw ConfigError("unknown workload '" + workload
                              + "' (see workloads::benchmarkNames())",
                          ctx);
    }
}

const core::CoreStats &
RunResult::coreStats() const
{
    return sim->core().stats();
}

stats::Registry
RunResult::statsRegistry() const
{
    return sim->statsRegistry();
}

void
RunResult::toJson(stats::json::JsonWriter &jw, bool with_stats,
                  bool with_timing) const
{
    jw.beginObject()
        .kv("schema", JSON_SCHEMA)
        .kv("workload", spec.workload)
        .kv("machine", spec.machine.name)
        .kv("width", spec.machine.cfg.width)
        .kv("max_insts", spec.max_insts)
        .kv("max_cycles", spec.max_cycles)
        .kv("fast_forward", spec.fast_forward)
        .kv("status", statusName(outcome.status))
        .kv("valid", valid())
        .kv("steady_missing", outcome.steadyMissing)
        .kv("attempts", outcome.attempts)
        .kv("ipc", ipc)
        .kv("committed", committed)
        .kv("cycles", cycles)
        .kv("fast_forwarded", fastForwarded);
    if (!outcome.ok()) {
        jw.kv("error_kind", kindName(outcome.errorKind))
            .kv("error", outcome.error);
    }
    if (with_timing) {
        jw.kv("wall_seconds", wallSeconds)
            .kv("cycles_per_sec", cyclesPerSec(), 0);
    }
    if (with_stats && sim) {
        jw.key("stats");
        statsRegistry().toJson(jw);
    }
    jw.endObject();
}

void
RunResult::toJson(std::ostream &os, bool with_stats,
                  bool with_timing) const
{
    stats::json::JsonWriter jw(os);
    toJson(jw, with_stats, with_timing);
}

} // namespace hpa::sim
