/**
 * @file
 * Batched trace replay: run B trace-backed Simulations ("lanes")
 * over one shared CommittedTrace in a single pass, rotating the
 * decode stream through the lanes in fixed cycle quanta so the trace
 * region the first lane just touched is still cache-resident when
 * the last lane reads it. The per-lane Core state (window, scheduler
 * chains, event calendar, cache models) stays private, so lanes are
 * fully independent and any interleaving reproduces each lane's solo
 * Core::run() schedule bit for bit — batch size is a throughput
 * knob, never a semantic one (the golden sweep gate holds for every
 * batch size).
 *
 * Fault isolation: a lane that throws (invariant violation,
 * deadlock, workload error) is deactivated and its exception
 * captured; the remaining lanes keep replaying undisturbed. The
 * sweep engine turns captured exceptions into per-cell RunOutcomes
 * exactly as it does for solo runs.
 */

#ifndef HPA_SIM_BATCHED_SIMULATION_HH
#define HPA_SIM_BATCHED_SIMULATION_HH

#include <exception>
#include <memory>
#include <vector>

#include "sim/simulation.hh"

namespace hpa::sim
{

/** Interleaves the replay of B lanes sharing one trace. */
class BatchedSimulation
{
  public:
    /** Cycles a lane advances before the stream rotates on. The
     *  quantum trades trace-span locality (smaller = lane cursors
     *  closer together) against lane-state residency (each switch
     *  refills the next lane's window/cache/bpred tables, ~350 KB);
     *  on small-LLC hosts the lane state dominates, so the default
     *  is large — measured on the 1-CPU reference VM, 1K quanta cost
     *  ~20% versus solo, 16K still ~6%, while 64K is neutral (a
     *  50k-inst golden-budget lane then completes in 1-2 rotations,
     *  and longer runs still rotate often enough to share the
     *  trace's streaming footprint). */
    static constexpr uint64_t DEFAULT_QUANTUM = 65536;

    /**
     * @param lanes trace-backed Simulations (Simulation::lane() must
     *        be non-null for every entry; throws ConfigError
     *        otherwise). The batch takes ownership.
     * @param quantum cycles per lane per rotation
     */
    explicit BatchedSimulation(
        std::vector<std::unique_ptr<Simulation>> lanes,
        uint64_t quantum = DEFAULT_QUANTUM);

    size_t laneCount() const { return lanes_.size(); }

    /**
     * Replay every lane to completion (or its cycle cap, or its
     * first error). @p max_cycles[i] bounds lane i (empty vector or
     * 0 entries = unbounded). Never throws for per-lane failures —
     * read them back via laneError().
     */
    void run(const std::vector<uint64_t> &max_cycles = {});

    /** Lane i's Simulation (valid after run(), even on failure). */
    Simulation &lane(size_t i) { return *lanes_[i]; }

    /** Release lane i's Simulation to the caller. */
    std::unique_ptr<Simulation> takeLane(size_t i)
    {
        return std::move(lanes_[i]);
    }

    /** The exception that stopped lane i, or nullptr if it ran to
     *  completion. */
    std::exception_ptr laneError(size_t i) const { return errors_[i]; }

  private:
    std::vector<std::unique_ptr<Simulation>> lanes_;
    std::vector<std::exception_ptr> errors_;
    uint64_t quantum_;
};

} // namespace hpa::sim

#endif // HPA_SIM_BATCHED_SIMULATION_HH
