#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
// hpa-nolint(HPA007): host wall-time measurement for throughput reporting; never simulated state
#include <chrono>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "sim/batched_simulation.hh"

namespace hpa::sim
{

SweepRunner::SweepRunner(unsigned jobs,
                         workloads::WorkloadCache *cache)
    : jobs_(resolveJobs(jobs)),
      cache_(cache ? cache : &workloads::globalCache())
{}

unsigned
SweepRunner::resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned
SweepRunner::resolveBatch(unsigned requested)
{
    return requested > 0 ? requested : DEFAULT_BATCH;
}

bool
SweepRunner::batchable(const SweepJob &job)
{
    return job.trace_cache && job.fault == FaultKind::None
        && job.wall_budget_seconds <= 0.0;
}

namespace
{

/**
 * One attempt of one job: build (or fetch) the workload, construct a
 * fresh Simulation, arm any injected fault, run, and record metrics
 * into @p r. Throws on any failure; the caller owns isolation.
 */
void
runAttempt(const SweepJob &job, unsigned attempt,
           workloads::WorkloadCache &cache, SweepResult &r)
{
    if (job.fault == FaultKind::FlakyOnce && attempt == 1) {
        SimContext ctx;
        ctx.machine = job.machine.name;
        ctx.workload = job.workload;
        throw WorkloadError(
            "injected transient workload fault (FlakyOnce)", ctx);
    }

    // PoisonWorkload goes through the real registry path so the
    // whole lookup-failure plumbing is exercised, not a shortcut.
    const std::string name = job.fault == FaultKind::PoisonWorkload
        ? job.workload + "!poisoned"
        : job.workload;
    const workloads::Workload &w = cache.get(name, job.scale);

    uint64_t ff = 0;
    if (job.fast_forward) {
        auto it = w.program.symbols.find("steady");
        if (it != w.program.symbols.end())
            ff = it->second;
        else
            r.outcome.steadyMissing = true;
    }

    core::CoreConfig cfg = job.machine.cfg;
    if (job.fault == FaultKind::InvariantTrip && cfg.check_interval == 0)
        cfg.check_interval = 1;

    if (job.trace_cache) {
        // Trace-once/replay-many: the first cell of a (workload,
        // budget, fast-forward) group captures the committed stream;
        // every other cell — across machines, threads and repeat
        // sweeps — replays the shared immutable buffer.
        const func::CommittedTrace &trace =
            cache.trace(name, job.scale, job.max_insts, ff);
        r.sim = std::make_unique<Simulation>(trace, cfg);
    } else {
        r.sim = std::make_unique<Simulation>(w.program, cfg,
                                             job.max_insts, ff);
    }
    if (job.wall_budget_seconds > 0)
        r.sim->core().setWallDeadline(job.wall_budget_seconds);
    if (job.fault == FaultKind::InvariantTrip)
        r.sim->core().testCorruptSchedulerAt(job.fault_cycle);
    if (job.fault == FaultKind::BlockCommit)
        r.sim->core().testBlockCommitAfter(job.fault_cycle);

    // hpa-nolint(HPA007): wall-time around the run; reported, never fed back
    auto t0 = std::chrono::steady_clock::now();
    r.sim->run(job.max_cycles);
    // hpa-nolint(HPA007): wall-time around the run; reported, never fed back
    auto t1 = std::chrono::steady_clock::now();
    // hpa-nolint(HPA007): wall-time around the run; reported, never fed back
    r.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    r.ipc = r.sim->ipc();
    r.committed = r.sim->core().stats().committed.value();
    r.cycles = r.sim->core().cycle();
    r.fastForwarded = r.sim->fastForwarded();
}

/**
 * Replay one batch chunk: the cells at @p cell_indices (all sharing
 * one committed trace) as interleaved lanes of a BatchedSimulation.
 * Any setup failure — bad workload, trace capture error — and any
 * lane-level failure falls back to the solo runOne() path, whose
 * retry loop and error classification are the reference semantics;
 * successful lanes are bit-identical to solo replays, so the
 * fallback only costs (rare) duplicated work, never a divergent
 * result.
 *
 * The batch's wall time is attributed to lanes proportionally to
 * simulated cycles: lane wallSeconds = batch_wall x lane_cycles /
 * total_cycles, keeping cyclesPerSec() comparable across batch
 * sizes.
 */
void
runBatch(const std::vector<SweepJob> &jobs,
         const std::vector<size_t> &cell_indices,
         workloads::WorkloadCache &cache,
         std::vector<SweepResult> &results)
{
    try {
        const SweepJob &first = jobs[cell_indices.front()];
        const workloads::Workload &w =
            cache.get(first.workload, first.scale);

        uint64_t ff = 0;
        bool steady_missing = false;
        if (first.fast_forward) {
            auto it = w.program.symbols.find("steady");
            if (it != w.program.symbols.end())
                ff = it->second;
            else
                steady_missing = true;
        }

        const func::CommittedTrace &trace =
            cache.trace(first.workload, first.scale, first.max_insts,
                        ff);

        std::vector<std::unique_ptr<Simulation>> lanes;
        std::vector<uint64_t> caps;
        lanes.reserve(cell_indices.size());
        caps.reserve(cell_indices.size());
        for (size_t idx : cell_indices) {
            const SweepJob &job = jobs[idx];
            lanes.push_back(std::make_unique<Simulation>(
                trace, job.machine.cfg));
            caps.push_back(job.max_cycles);
        }

        BatchedSimulation batch(std::move(lanes));
        // hpa-nolint(HPA007): wall-time around the run; reported, never fed back
        auto t0 = std::chrono::steady_clock::now();
        batch.run(caps);
        // hpa-nolint(HPA007): wall-time around the run; reported, never fed back
        auto t1 = std::chrono::steady_clock::now();
        double wall =
            // hpa-nolint(HPA007): wall-time around the run; reported, never fed back
            std::chrono::duration<double>(t1 - t0).count();

        uint64_t total_cycles = 0;
        for (size_t i = 0; i < batch.laneCount(); ++i)
            total_cycles += batch.lane(i).core().cycle();

        for (size_t i = 0; i < cell_indices.size(); ++i) {
            size_t idx = cell_indices[i];
            if (batch.laneError(i)) {
                results[idx] =
                    SweepRunner::runOne(jobs[idx], cache);
                continue;
            }
            SweepResult &r = results[idx];
            r.spec = jobs[idx];
            r.outcome = RunOutcome{};
            r.outcome.steadyMissing = steady_missing;
            r.sim = batch.takeLane(i);
            r.ipc = r.sim->ipc();
            r.committed = r.sim->core().stats().committed.value();
            r.cycles = r.sim->core().cycle();
            r.fastForwarded = r.sim->fastForwarded();
            r.wallSeconds = total_cycles
                ? wall * double(r.cycles) / double(total_cycles)
                : 0.0;
        }
    } catch (...) {
        for (size_t idx : cell_indices)
            results[idx] = SweepRunner::runOne(jobs[idx], cache);
    }
}

} // namespace

unsigned
SweepRunner::backoffDelayMs(unsigned attempt, uint64_t seed,
                            unsigned base_ms)
{
    if (base_ms == 0)
        return 0;
    const unsigned shift = std::min(attempt > 0 ? attempt - 1 : 0u,
                                    16u);
    uint64_t delay =
        std::min<uint64_t>(uint64_t(base_ms) << shift, 2000);
    // Deterministic jitter (splitmix-style finalizer): reproducible
    // for a given (seed, attempt), decorrelated across cells.
    uint64_t h = seed ^ (uint64_t(attempt) * 1099511628211ull);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    delay += h % (delay / 4 + 1);
    return unsigned(delay);
}

SweepResult
SweepRunner::runOne(const SweepJob &job,
                    workloads::WorkloadCache &cache)
{
    SweepResult r;
    r.spec = job;
    // Jitter seed: stable per cell, so retries of the same cell back
    // off identically run to run while distinct cells decorrelate.
    uint64_t seed = 1469598103934665603ull;
    for (unsigned char c : job.workload + "|" + job.machine.name) {
        seed ^= c;
        seed *= 1099511628211ull;
    }
    // Survives the per-attempt outcome reset below.
    uint64_t backoff_total = 0;
    for (unsigned attempt = 1;; ++attempt) {
        r.outcome = RunOutcome{};
        r.outcome.attempts = attempt;
        r.outcome.backoffMs = backoff_total;
        try {
            runAttempt(job, attempt, cache, r);
            return r;
        } catch (const std::exception &e) {
            // Discard the partial attempt so a failed cell carries
            // no half-simulated state, only its spec and outcome.
            r.sim.reset();
            r.ipc = 0.0;
            r.committed = r.cycles = r.fastForwarded = 0;
            r.wallSeconds = 0.0;

            RunOutcome &o = r.outcome;
            const auto *se = dynamic_cast<const SimError *>(&e);
            if (se) {
                o.status = se->kind() == ErrorKind::Timeout
                    ? RunStatus::TimedOut
                    : RunStatus::Failed;
                o.errorKind = se->kind();
                o.error = se->oneLine();
                o.context = se->context();
            } else {
                o.status = RunStatus::Failed;
                o.errorKind = ErrorKind::Workload;
                o.error = e.what();
            }
            // The core knows cycles, not names; file them in here.
            o.context.machine = job.machine.name;
            o.context.workload = job.workload;
            if (attempt > job.max_retries)
                return r;
            // Exponential backoff + jitter before the next attempt —
            // a transient failure (flaky workload build, host
            // pressure) is given room instead of a hot retry loop.
            const unsigned delay = backoffDelayMs(
                attempt, seed, job.retry_backoff_ms);
            backoff_total += delay;
            o.backoffMs = backoff_total;
            if (delay)
                std::this_thread::sleep_for(
                    // hpa-nolint(HPA007): retry backoff between sweep attempts
                    std::chrono::milliseconds(delay));
        }
    }
}

void
requireAllOk(const std::vector<SweepResult> &results)
{
    std::string detail;
    size_t failed = 0;
    for (const SweepResult &r : results) {
        if (r.outcome.ok())
            continue;
        ++failed;
        detail += "\n  " + r.spec.workload + " @ "
            + r.spec.machine.name + ": " + r.outcome.error;
    }
    if (failed) {
        throw WorkloadError(std::to_string(failed) + " of "
                            + std::to_string(results.size())
                            + " sweep cells failed:" + detail);
    }
}

void
SweepRunner::parallelFor(size_t n, unsigned jobs,
                         const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    unsigned workers =
        unsigned(std::min<size_t>(resolveJobs(jobs), n));
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto work = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(work);
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<SweepResult>
SweepRunner::run(std::vector<SweepJob> jobs)
{
    std::vector<SweepResult> results(jobs.size());
    workloads::WorkloadCache &cache = *cache_;

    // Partition the cells into work units: solo cells, plus batch
    // chunks of up to resolveBatch(spec.batch) lanes over one shared
    // trace. Grouping is deterministic (submission order within each
    // trace group) but scheduling never affects results — every unit
    // writes only its own result slots and lanes are bit-identical
    // to solo replays.
    std::vector<std::vector<size_t>> units;
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < jobs.size(); ++i) {
        const SweepJob &job = jobs[i];
        if (!batchable(job) || resolveBatch(job.batch) == 1) {
            units.push_back({i});
            continue;
        }
        // Cells batch iff they replay the same trace under the same
        // requested width: (workload, scale, budget, fast-forward)
        // keys WorkloadCache::trace(); batch keys the chunk size.
        std::string key = job.workload + '\0'
            + std::to_string(unsigned(job.scale)) + '\0'
            + std::to_string(job.max_insts) + '\0'
            + (job.fast_forward ? '1' : '0') + '\0'
            + std::to_string(resolveBatch(job.batch));
        groups[key].push_back(i);
    }

    batchesFormed_ = 0;
    lanesMax_ = 0;
    for (const auto &[key, cells] : groups) {
        const unsigned width =
            resolveBatch(jobs[cells.front()].batch);
        for (size_t at = 0; at < cells.size(); at += width) {
            size_t n = std::min<size_t>(width, cells.size() - at);
            std::vector<size_t> chunk(cells.begin() + at,
                                      cells.begin() + at + n);
            if (n > 1) {
                ++batchesFormed_;
                lanesMax_ = std::max<size_t>(lanesMax_, n);
            }
            units.push_back(std::move(chunk));
        }
    }

    parallelFor(units.size(), jobs_, [&](size_t u) {
        const std::vector<size_t> &cells = units[u];
        if (cells.size() == 1)
            results[cells[0]] = runOne(jobs[cells[0]], cache);
        else
            runBatch(jobs, cells, cache, results);
    });
    return results;
}

std::vector<Machine>
reproductionMachines()
{
    using core::RegfileModel;
    using core::WakeupModel;
    std::vector<Machine> ms;
    for (unsigned width : {4u, 8u}) {
        ms.push_back(Machine::base(width));
        ms.push_back(Machine::base(width)
                         .wakeup(WakeupModel::Sequential)
                         .lap(1024));
        ms.push_back(Machine::base(width)
                         .wakeup(WakeupModel::TagElimination)
                         .lap(1024));
        ms.push_back(Machine::base(width)
                         .wakeup(WakeupModel::SequentialNoPred));
        ms.push_back(Machine::base(width)
                         .regfile(RegfileModel::SequentialAccess));
        ms.push_back(Machine::base(width)
                         .regfile(RegfileModel::ExtraStage));
        ms.push_back(Machine::base(width)
                         .regfile(RegfileModel::HalfPortCrossbar));
        ms.push_back(Machine::base(width)
                         .wakeup(WakeupModel::Sequential)
                         .lap(1024)
                         .regfile(RegfileModel::SequentialAccess));
    }
    return ms;
}

std::vector<Machine>
policyZooMachines()
{
    // The post-paper policy points, selected through the string
    // registry (the same path the --sched-policy/--rf-policy CLI
    // flags take): each new policy alone, the two combined, and one
    // cross with a paper scheme.
    std::vector<Machine> ms;
    for (unsigned width : {4u, 8u}) {
        ms.push_back(Machine::base(width).schedPolicy("dlt"));
        ms.push_back(Machine::base(width).rfPolicy("prefetch"));
        ms.push_back(Machine::base(width)
                         .schedPolicy("dlt")
                         .rfPolicy("prefetch"));
        ms.push_back(Machine::base(width)
                         .schedPolicy("seq")
                         .lap(1024)
                         .rfPolicy("prefetch"));
    }
    return ms;
}

} // namespace hpa::sim
