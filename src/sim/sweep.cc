#include "sim/sweep.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace hpa::sim
{

SweepRunner::SweepRunner(unsigned jobs,
                         workloads::WorkloadCache *cache)
    : jobs_(resolveJobs(jobs)),
      cache_(cache ? cache : &workloads::globalCache())
{}

unsigned
SweepRunner::resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SweepResult
SweepRunner::runOne(const SweepJob &job,
                    workloads::WorkloadCache &cache)
{
    const workloads::Workload &w =
        cache.get(job.workload, job.scale);

    uint64_t ff = 0;
    if (job.fast_forward) {
        auto it = w.program.symbols.find("steady");
        if (it != w.program.symbols.end())
            ff = it->second;
    }

    SweepResult r;
    r.spec = job;
    r.sim = std::make_unique<Simulation>(w.program, job.machine.cfg,
                                         job.max_insts, ff);
    auto t0 = std::chrono::steady_clock::now();
    r.sim->run(job.max_cycles);
    auto t1 = std::chrono::steady_clock::now();
    r.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    r.ipc = r.sim->ipc();
    r.committed = r.sim->core().stats().committed.value();
    r.cycles = r.sim->core().cycle();
    r.fastForwarded = r.sim->fastForwarded();
    return r;
}

void
SweepRunner::parallelFor(size_t n, unsigned jobs,
                         const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    unsigned workers =
        unsigned(std::min<size_t>(resolveJobs(jobs), n));
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto work = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(work);
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<SweepResult>
SweepRunner::run(std::vector<SweepJob> jobs)
{
    std::vector<SweepResult> results(jobs.size());
    workloads::WorkloadCache &cache = *cache_;
    parallelFor(jobs.size(), jobs_, [&](size_t i) {
        results[i] = runOne(jobs[i], cache);
    });
    return results;
}

std::vector<Machine>
reproductionMachines()
{
    using core::RegfileModel;
    using core::WakeupModel;
    std::vector<Machine> ms;
    for (unsigned width : {4u, 8u}) {
        ms.push_back(Machine::base(width));
        ms.push_back(Machine::base(width)
                         .wakeup(WakeupModel::Sequential)
                         .lap(1024));
        ms.push_back(Machine::base(width)
                         .wakeup(WakeupModel::TagElimination)
                         .lap(1024));
        ms.push_back(Machine::base(width)
                         .wakeup(WakeupModel::SequentialNoPred));
        ms.push_back(Machine::base(width)
                         .regfile(RegfileModel::SequentialAccess));
        ms.push_back(Machine::base(width)
                         .regfile(RegfileModel::ExtraStage));
        ms.push_back(Machine::base(width)
                         .regfile(RegfileModel::HalfPortCrossbar));
        ms.push_back(Machine::base(width)
                         .wakeup(WakeupModel::Sequential)
                         .lap(1024)
                         .regfile(RegfileModel::SequentialAccess));
    }
    return ms;
}

} // namespace hpa::sim
