/**
 * @file
 * Persistent, resumable sweep job store: an on-disk append-only
 * journal of completed sweep cells, keyed by a content hash of each
 * cell's ExperimentSpec (machine configuration + policies + workload
 * + budgets + trace-cache/batch knobs), so a sweep interrupted by
 * SIGKILL, OOM or power loss resumes from the last durable record
 * instead of from scratch.
 *
 * Layout under the store directory:
 *
 *   journal-<worker>.hpaj   framed result records (one shard per
 *                           writer process — shards never interleave)
 *   leases/<key>.lease      work-unit leases (sim/shard.hh)
 *   retry/<key>             crash-retry attempt count + backoff gate
 *   inject-<kind>-<i>.armed one-shot fault-injection markers
 *
 * Record framing is crash-safe: every record is
 *
 *   'H' 'P' 'A' 'J' | u32 payload length | u64 FNV-1a(payload) | payload
 *
 * (integers little-endian). A writer emits the whole frame in one
 * buffered write and flushes it to the OS before the cell is
 * considered durable, so a torn tail — the partial frame a dying
 * process leaves behind — is detectable: on open, the owner's shard
 * is scanned and truncated at the first bad frame, foreign shards
 * are read up to theirs, and every dropped byte/record is counted
 * and surfaced (droppedBytes()/droppedRecords()) rather than
 * silently merged.
 *
 * Each payload is one standalone JSON document tagged
 * "hpa.sweep-journal.v1" (schema-gated by hpa_json_validate), so
 * journals stay greppable/exportable without custom tooling.
 */

#ifndef HPA_SIM_JOB_STORE_HH
#define HPA_SIM_JOB_STORE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace hpa::sim
{

/**
 * One journal record: the durable summary of a completed (or
 * permanently failed) sweep cell. Metric doubles are stored in
 * shortest-round-trip form, so a resumed sweep's merged results are
 * bit-identical to the run that produced them.
 */
struct StoredRun
{
    std::string specKey;
    std::string workload;
    std::string machine;
    /** statusName() tag: "ok", "failed", "timed_out"; empty when the
     *  slot is unpopulated (no record for this cell yet). */
    std::string status;
    bool valid = false;
    bool steadyMissing = false;
    unsigned attempts = 1;
    uint64_t backoffMs = 0;
    double ipc = 0.0;
    uint64_t committed = 0;
    uint64_t cycles = 0;
    uint64_t fastForwarded = 0;
    double wallSeconds = 0.0;
    /** Writer identity, for post-mortem attribution. */
    std::string worker;
    /** Populated on non-ok records. */
    std::string errorKind;
    std::string error;

    bool ok() const { return status == "ok"; }
    bool present() const { return !status.empty(); }
};

/**
 * The persistent job store. One instance per writer process: it owns
 * (and appends to) its own journal shard and reads every shard in
 * the directory, so concurrent worker processes share one store
 * without write interleaving. All methods are thread-safe — the
 * parallel store-mode runner appends from pool threads.
 */
class JobStore
{
  public:
    /** Schema tag of every journal record payload. */
    static constexpr const char *JSON_SCHEMA = "hpa.sweep-journal.v1";

    /**
     * Content hash (16 hex chars, FNV-1a 64) identifying a sweep
     * cell as an idempotent work unit: two specs share a key iff
     * specCanonical() agrees — same workload, scale, budgets,
     * fast-forward, trace-cache/batch knobs, and every machine
     * configuration field including the policy selections.
     * Execution-policy fields (fault injection, retries, wall
     * budgets) are deliberately excluded: they change how a cell is
     * run, not what result it produces.
     */
    static std::string specKey(const ExperimentSpec &spec);

    /** The canonical "field=value|..." text specKey() hashes —
     *  stable across processes, exposed for tests and debugging. */
    static std::string specCanonical(const ExperimentSpec &spec);

    /** Render @p r as its journal payload: one standalone
     *  JSON_SCHEMA document, byte-identical to what append() frames
     *  (the --dump-journal schema-gate path reuses this). */
    static std::string recordJson(const StoredRun &r);

    /**
     * Open (creating if needed) the store at @p dir as writer
     * @p worker_id. Scans every journal shard in the directory,
     * truncates a torn tail on the owned shard, and builds the
     * completed-cell index. Throws hpa::WorkloadError on I/O
     * failure, hpa::ConfigError on an unusable @p worker_id.
     */
    JobStore(std::string dir, std::string worker_id);
    ~JobStore();

    JobStore(const JobStore &) = delete;
    JobStore &operator=(const JobStore &) = delete;

    const std::string &dir() const { return dir_; }
    const std::string &workerId() const { return worker_; }

    /** The best record for @p key (ok preferred over failed), or
     *  nullptr when the cell has no durable result yet. The pointer
     *  is invalidated by reload()/compact(). */
    const StoredRun *find(const std::string &key) const;

    /** Completed cells (distinct keys with any record). */
    size_t completed() const;
    /** Completed cells whose best record is ok. */
    size_t okCount() const;

    /** Bytes discarded while loading (torn tails, corrupt frames). */
    size_t droppedBytes() const { return droppedBytes_; }
    /** Records lost to those discards (frames that began but failed
     *  validation; a clean tail contributes zero). */
    size_t droppedRecords() const { return droppedRecords_; }
    /** Journal records successfully loaded across all shards. */
    size_t loadedRecords() const { return loadedRecords_; }

    /**
     * Durably record a completed cell: serialize @p r (keyed by
     * @p spec), frame it, append to the owned shard and flush it to
     * disk before returning — after append() returns, a SIGKILL
     * cannot lose the record. Also inserts it into the index.
     */
    void append(const ExperimentSpec &spec, const RunResult &r);

    /** Record a permanent failure that produced no RunResult (e.g.
     *  a cell whose workers crashed past the attempt cap). */
    void appendFailure(const ExperimentSpec &spec,
                       const std::string &error_kind,
                       const std::string &error, unsigned attempts);

    /** Re-scan every shard in the directory (picks up records other
     *  workers appended since open). */
    void reload();

    /**
     * Compaction pass: rewrite the store as a single shard holding
     * only the best record per key, then remove the superseded
     * shard files. Crash-safe — the replacement shard is fully
     * written and flushed before any old file is unlinked, and the
     * ok-wins load rule makes a partial cleanup harmless. Callers
     * must guarantee no other writer is active. @return records
     * dropped as duplicates/superseded.
     */
    size_t compact();

    /**
     * Arm a one-shot fault injection: atomically create the marker
     * `inject-<kind>-<index>.armed`. @return true for exactly one
     * caller per store lifetime — the worker that should inject —
     * and false ever after, so a reclaimed or resumed retry of the
     * same cell runs clean.
     */
    bool armInjectionOnce(const std::string &kind, size_t index);

    /** Every loaded record in shard-scan order (diagnostics and the
     *  --dump-journal tool path). */
    const std::vector<StoredRun> &records() const { return records_; }

  private:
    void loadLocked();
    void appendRecord(const std::string &key,
                      const std::string &payload);
    std::string ownShardPath() const;

    std::string dir_;
    std::string worker_;
    std::FILE *out_ = nullptr;
    mutable std::mutex mu_;
    /** Best record per spec key (ok preferred, else first seen). */
    std::map<std::string, StoredRun> index_;
    std::vector<StoredRun> records_;
    size_t droppedBytes_ = 0;
    size_t droppedRecords_ = 0;
    size_t loadedRecords_ = 0;
};

} // namespace hpa::sim

#endif // HPA_SIM_JOB_STORE_HH
