#include "sim/shard.hh"

#include <algorithm>
#include <cerrno>
// hpa-nolint(HPA007): lease/heartbeat timing for crash recovery; host-side, never simulated state
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <unistd.h>

#include "sim/error.hh"
#include "sim/sweep.hh"
#include "workloads/workloads.hh"

namespace fs = std::filesystem;

namespace hpa::sim
{

namespace
{

uint64_t
fnv1a64(std::string_view data)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : data) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
readFirstLine(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    char buf[256];
    std::string line;
    if (std::fgets(buf, sizeof buf, f))
        line = buf;
    std::fclose(f);
    while (!line.empty()
           && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
    return line;
}

/** Base of the lease-reclaim backoff gate — coarser than the
 *  in-process retry base: restarting a crashed cell costs a whole
 *  workload build. */
constexpr unsigned RECLAIM_BACKOFF_BASE_MS = 100;

} // namespace

// --- LeaseManager --------------------------------------------------

LeaseManager::LeaseManager(std::string store_dir,
                           std::string worker_id, LeaseOptions opts)
    : dir_(std::move(store_dir)), worker_(std::move(worker_id)),
      opts_(opts)
{
    token_ = worker_ + "." + std::to_string(::getpid());
    std::error_code ec;
    fs::create_directories(fs::path(dir_) / "leases", ec);
    fs::create_directories(fs::path(dir_) / "retry", ec);
    if (ec)
        throw WorkloadError("lease manager: cannot create lease "
                            "directories under " + dir_ + ": "
                            + ec.message());
}

std::string
LeaseManager::leasePath(const std::string &key) const
{
    return (fs::path(dir_) / "leases" / (key + ".lease")).string();
}

std::string
LeaseManager::retryPath(const std::string &key) const
{
    return (fs::path(dir_) / "retry" / key).string();
}

int64_t
LeaseManager::nowMs() const
{
    // hpa-nolint(HPA007): lease timestamps (ms since epoch) for worker liveness
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

bool
LeaseManager::readRetry(const std::string &key, unsigned &att,
                        int64_t &not_before_ms) const
{
    const std::string line = readFirstLine(retryPath(key));
    if (line.empty())
        return false;
    char *end = nullptr;
    unsigned long a = std::strtoul(line.c_str(), &end, 10);
    if (end == line.c_str())
        return false;
    att = unsigned(a);
    not_before_ms = std::strtoll(end, nullptr, 10);
    return true;
}

void
LeaseManager::writeRetry(const std::string &key, unsigned att,
                         int64_t not_before_ms)
{
    // tmp + rename: readers never see a half-written gate file.
    const std::string tmp = retryPath(key) + ".tmp-" + token_;
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw WorkloadError("lease manager: cannot write retry gate "
                            + tmp);
    std::fprintf(f, "%u %lld\n", att,
                 static_cast<long long>(not_before_ms));
    std::fclose(f);
    std::error_code ec;
    fs::rename(tmp, retryPath(key), ec);
    if (ec)
        throw WorkloadError("lease manager: retry gate rename failed "
                            "for " + key + ": " + ec.message());
}

unsigned
LeaseManager::attempts(const std::string &key) const
{
    unsigned att = 0;
    int64_t nb = 0;
    readRetry(key, att, nb);
    return att;
}

bool
LeaseManager::tryAcquire(const std::string &key)
{
    unsigned att = 0;
    int64_t nb = 0;
    if (readRetry(key, att, nb) && nowMs() < nb)
        return false; // backoff gate still closed
    // "wx" = O_CREAT|O_EXCL: exactly one claimant wins; losers see
    // the existing lease and move on (stale ones are reclaimed, not
    // stolen — reclaimExpired() is the only path that removes a
    // lease this process does not hold).
    const std::string path = leasePath(key);
    std::FILE *f = std::fopen(path.c_str(), "wx");
    if (!f)
        return false;
    std::string tok;
    {
        std::lock_guard<std::mutex> lock(mu_);
        tok = token_ + "." + std::to_string(seq_++);
        held_[key] = tok;
    }
    std::fputs((tok + "\n").c_str(), f);
    std::fflush(f);
    std::fclose(f);
    // This claim is attempt #att+1 — counted at start, so a crash
    // mid-cell still consumed an attempt.
    writeRetry(key, att + 1, nb);
    return true;
}

bool
LeaseManager::forceAcquire(const std::string &key)
{
    const std::string path = leasePath(key);
    std::FILE *f = std::fopen(path.c_str(), "wx");
    if (!f)
        return false;
    std::string tok;
    {
        std::lock_guard<std::mutex> lock(mu_);
        tok = token_ + "." + std::to_string(seq_++);
        held_[key] = tok;
    }
    std::fputs((tok + "\n").c_str(), f);
    std::fflush(f);
    std::fclose(f);
    return true;
}

bool
LeaseManager::owned(const std::string &key) const
{
    std::string tok;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = held_.find(key);
        if (it == held_.end())
            return false;
        tok = it->second;
    }
    return readFirstLine(leasePath(key)) == tok;
}

bool
LeaseManager::renew(const std::string &key)
{
    if (!owned(key))
        return false;
    std::error_code ec;
    fs::last_write_time(leasePath(key),
                        fs::file_time_type::clock::now(), ec);
    return !ec;
}

void
LeaseManager::release(const std::string &key)
{
    bool was_held;
    {
        std::lock_guard<std::mutex> lock(mu_);
        was_held = held_.erase(key) > 0;
    }
    if (!was_held)
        return;
    std::error_code ec;
    fs::remove(leasePath(key), ec);
}

void
LeaseManager::releaseAll()
{
    std::vector<std::string> keys;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[key, tok] : held_)
            keys.push_back(key);
    }
    for (const std::string &key : keys)
        if (owned(key))
            release(key);
        else {
            std::lock_guard<std::mutex> lock(mu_);
            held_.erase(key);
        }
}

size_t
LeaseManager::reclaimExpired()
{
    const auto timeout =
        // hpa-nolint(HPA007): stale-lease timeout for crash recovery
        std::chrono::duration_cast<fs::file_time_type::duration>(
            std::chrono::duration<double>(opts_.timeout_seconds));
    const auto now = fs::file_time_type::clock::now();

    size_t reclaimed = 0;
    std::error_code ec;
    for (const auto &e :
         fs::directory_iterator(fs::path(dir_) / "leases", ec)) {
        const std::string name = e.path().filename().string();
        // Leftover reclaim tombstones (a reclaimer crashed between
        // rename and unlink) are garbage-collected once stale.
        const bool tombstone =
            name.find(".reclaim-") != std::string::npos;
        if (!tombstone
            && (name.size() <= 6
                || name.compare(name.size() - 6, 6, ".lease") != 0))
            continue;
        std::error_code mec;
        const auto mtime = fs::last_write_time(e.path(), mec);
        if (mec || now - mtime <= timeout)
            continue;
        if (tombstone) {
            fs::remove(e.path(), mec);
            continue;
        }
        const std::string key = name.substr(0, name.size() - 6);
        // Atomic rename: of N concurrent reclaimers exactly one
        // succeeds and does the retry-gate bookkeeping; the holder's
        // token no longer resolves, so its in-flight result will be
        // discarded (owned() == false).
        std::string grave;
        {
            std::lock_guard<std::mutex> lock(mu_);
            grave = (fs::path(dir_) / "leases"
                     / (key + ".reclaim-" + token_ + "."
                        + std::to_string(seq_++)))
                        .string();
        }
        std::error_code rec;
        fs::rename(e.path(), grave, rec);
        if (rec)
            continue; // a peer won the reclaim
        unsigned att = 0;
        int64_t nb = 0;
        readRetry(key, att, nb);
        const unsigned delay = SweepRunner::backoffDelayMs(
            att > 0 ? att : 1, fnv1a64(key),
            RECLAIM_BACKOFF_BASE_MS);
        writeRetry(key, att, nowMs() + int64_t(delay));
        fs::remove(grave, rec);
        ++reclaimed;
    }
    return reclaimed;
}

// --- ShardWorker ---------------------------------------------------

ShardWorker::ShardWorker(JobStore &store,
                         std::vector<ExperimentSpec> jobs,
                         ShardOptions opts)
    : store_(store), jobs_(std::move(jobs)), opts_(opts),
      leases_(store.dir(), store.workerId(), opts.lease)
{
    keys_.reserve(jobs_.size());
    for (const ExperimentSpec &job : jobs_)
        keys_.push_back(JobStore::specKey(job));
}

ShardWorker::~ShardWorker()
{
    {
        std::lock_guard<std::mutex> lock(hbMu_);
        hbStop_ = true;
    }
    hbCv_.notify_all();
    if (hbThread_.joinable())
        hbThread_.join();
}

bool
ShardWorker::stopRequested() const
{
    return opts_.stop && opts_.stop->load();
}

void
ShardWorker::setHeartbeat(const std::string &key, bool suppressed)
{
    {
        std::lock_guard<std::mutex> lock(hbMu_);
        hbKey_ = key;
        hbSuppressed_ = suppressed;
    }
    hbCv_.notify_all();
}

void
ShardWorker::heartbeatLoop()
{
    const auto interval = std::max(
        // hpa-nolint(HPA007): heartbeat cadence for the lease-renewal thread
        std::chrono::milliseconds(50),
        std::chrono::milliseconds(int64_t(
            opts_.lease.timeout_seconds * 1000.0 / 4.0)));
    std::unique_lock<std::mutex> lock(hbMu_);
    while (!hbStop_) {
        hbCv_.wait_for(lock, interval);
        if (hbStop_)
            break;
        if (hbKey_.empty() || hbSuppressed_)
            continue;
        const std::string key = hbKey_;
        lock.unlock();
        leases_.renew(key);
        lock.lock();
    }
}

ShardSummary
ShardWorker::run()
{
    ShardSummary s;
    if (!hbThread_.joinable())
        hbThread_ = std::thread([this] { heartbeatLoop(); });

    const size_t n = jobs_.size();
    // Rotate each worker's scan start so a fleet doesn't contend on
    // the same cells in the same order.
    const size_t start =
        n ? size_t(fnv1a64(store_.workerId()) % n) : 0;

    bool first_pass = true;
    while (!stopRequested()) {
        size_t pending = 0;
        bool claimed_any = false;
        for (size_t j = 0; j < n && !stopRequested(); ++j) {
            const size_t i = (start + j) % n;
            const std::string &key = keys_[i];
            if (store_.find(key)) {
                if (first_pass)
                    ++s.resumed;
                continue;
            }
            ++pending;
            if (leases_.attemptsExhausted(key)) {
                // Crash-retry cap reached: record the permanent
                // failure exactly once (plain O_EXCL claim, no
                // attempt bookkeeping) so the sweep can finish.
                if (!leases_.forceAcquire(key))
                    continue;
                store_.reload();
                if (!store_.find(key)) {
                    store_.appendFailure(
                        jobs_[i], "crash",
                        "worker process died on every attempt "
                        "(attempt cap reached)",
                        leases_.attempts(key));
                    ++s.failed_permanent;
                }
                leases_.release(key);
                continue;
            }
            if (!leases_.tryAcquire(key))
                continue;
            // Close the lost-update window: a peer may have finished
            // this cell between our index snapshot and the claim —
            // its record is durable before its lease release, so a
            // fresh scan is authoritative.
            store_.reload();
            if (store_.find(key)) {
                leases_.release(key);
                continue;
            }
            claimed_any = true;

            ExperimentSpec spec = jobs_[i];
            bool crash_armed = false;
            bool stall_armed = false;
            if (spec.fault == FaultKind::CrashProcess) {
                crash_armed = store_.armInjectionOnce("crash", i);
                spec.fault = FaultKind::None;
            } else if (spec.fault == FaultKind::StallHeartbeat) {
                stall_armed =
                    store_.armInjectionOnce("stall-heartbeat", i);
                spec.fault = FaultKind::None;
            }

            if (stall_armed) {
                // Injected stall: hold the lease but stop renewing,
                // and outlive the timeout so peers reclaim the cell
                // while we are still "running" it.
                setHeartbeat(key, true);
                std::this_thread::sleep_for(
                    // hpa-nolint(HPA007): chaos hook: hold a lease past its timeout on purpose
                    std::chrono::duration<double>(
                        opts_.lease.timeout_seconds * 2.5));
            } else {
                setHeartbeat(key, false);
            }

            RunResult r =
                SweepRunner::runOne(spec, workloads::globalCache());
            setHeartbeat("", false);

            if (!leases_.owned(key)) {
                // Lease lost mid-run (reclaimed as stale): someone
                // else owns — or already finished — this cell.
                // Discard, never journal: the zero-duplicate rule.
                ++s.discarded;
                leases_.release(key);
                continue;
            }
            if (crash_armed) {
                // Injected crash: die after computing the result but
                // before it reaches the journal — the worst-case
                // window a real SIGKILL can hit.
                std::raise(SIGKILL);
            }
            store_.append(spec, r);
            ++s.executed;
            leases_.release(key);
        }
        first_pass = false;
        if (pending == 0)
            break;
        if (!claimed_any && !stopRequested()) {
            // Nothing claimable but cells remain: some peer holds
            // them (alive or dead) or a backoff gate is closed.
            leases_.reclaimExpired();
            store_.reload();
            std::this_thread::sleep_for(
                // hpa-nolint(HPA007): poll backoff while waiting for unclaimed jobs
                std::chrono::milliseconds(opts_.poll_ms));
        }
    }
    s.stopped = stopRequested();
    leases_.releaseAll();
    return s;
}

// --- Single-process store-backed runner ----------------------------

ShardSummary
runWithStore(JobStore &store, const std::vector<ExperimentSpec> &jobs,
             unsigned threads, std::atomic<bool> *stop)
{
    ShardSummary s;
    std::vector<size_t> todo;
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (store.find(JobStore::specKey(jobs[i])))
            ++s.resumed;
        else
            todo.push_back(i);
    }

    std::atomic<size_t> executed{0};
    SweepRunner::parallelFor(
        todo.size(), SweepRunner::resolveJobs(threads),
        [&](size_t t) {
            if (stop && stop->load())
                return; // drain: claimed-but-unstarted cells skip
            const size_t i = todo[t];
            ExperimentSpec spec = jobs[i];
            bool crash_armed = false;
            if (spec.fault == FaultKind::CrashProcess) {
                crash_armed = store.armInjectionOnce("crash", i);
                spec.fault = FaultKind::None;
            } else if (spec.fault == FaultKind::StallHeartbeat) {
                // Lease-specific; meaningless without sharding.
                spec.fault = FaultKind::None;
            }
            RunResult r =
                SweepRunner::runOne(spec, workloads::globalCache());
            if (crash_armed)
                std::raise(SIGKILL);
            store.append(spec, r);
            ++executed;
        });
    s.executed = executed.load();
    s.stopped = stop && stop->load();
    return s;
}

} // namespace hpa::sim
