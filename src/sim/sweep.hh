/**
 * @file
 * Parallel sweep engine. Every figure/table harness replays the same
 * pattern — a loop over (workload, machine, budget) tuples, each an
 * independent Simulation — so the engine runs them as jobs on a
 * fixed thread pool: one isolated Simulation per job, workload
 * programs built once process-wide (thread-safe cache), and results
 * returned in submission order so table printing — and the stats
 * themselves — are identical to a serial run.
 */

#ifndef HPA_SIM_SWEEP_HH
#define HPA_SIM_SWEEP_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "workloads/workloads.hh"

namespace hpa::sim
{

/** One (workload, machine, budget) simulation request. */
struct SweepJob
{
    /** Workload registry name (workloads::benchmarkNames()). */
    std::string workload;
    Machine machine;
    /** Committed-instruction budget (0 = run to HALT). */
    uint64_t max_insts = 0;
    /** Cycle budget (0 = unbounded). */
    uint64_t max_cycles = 0;
    /** Fast-forward functionally to the kernel's `steady:` label. */
    bool fast_forward = true;
    workloads::Scale scale = workloads::Scale::Full;
};

/** A completed sweep job. The Simulation is kept alive so callers
 *  read IPC, CoreStats, the LAP monitor, … exactly as they would
 *  after a serial runSim(). */
struct SweepResult
{
    SweepJob job;
    std::unique_ptr<Simulation> sim;
    double ipc = 0.0;
    uint64_t committed = 0;
    uint64_t cycles = 0;
    /** Wall-clock seconds of the timing run (excludes workload
     *  assembly and functional fast-forward). */
    double wallSeconds = 0.0;

    /** Simulated cycles per wall second (host throughput). */
    double
    cyclesPerSec() const
    {
        return wallSeconds > 0 ? double(cycles) / wallSeconds : 0.0;
    }
};

/**
 * Fixed-size thread pool running sweep jobs. Results are ordered by
 * submission index regardless of completion order, and each job gets
 * a fully isolated Simulation, so `jobs(N)` output is byte-identical
 * to `jobs(1)`.
 */
class SweepRunner
{
  public:
    /**
     * @param jobs worker threads; 0 = one per hardware thread
     * @param cache workload cache to share (default: globalCache())
     */
    explicit SweepRunner(unsigned jobs = 0,
                         workloads::WorkloadCache *cache = nullptr);

    unsigned jobs() const { return jobs_; }

    /** Run all jobs; result[i] corresponds to jobs[i]. */
    std::vector<SweepResult> run(std::vector<SweepJob> jobs);

    /** Run one job synchronously on the calling thread. */
    static SweepResult runOne(const SweepJob &job,
                              workloads::WorkloadCache &cache);

    /**
     * Deterministic parallel loop: fn(0..n-1) each exactly once,
     * claimed dynamically across `jobs` threads (jobs <= 1: inline,
     * in order). The first exception thrown by any fn is rethrown
     * on the caller after all workers join.
     */
    static void parallelFor(size_t n, unsigned jobs,
                            const std::function<void(size_t)> &fn);

    /** Resolve a --jobs style request: 0 means hardware threads. */
    static unsigned resolveJobs(unsigned requested);

  private:
    unsigned jobs_;
    workloads::WorkloadCache *cache_;
};

/**
 * The machine configurations of the paper's main IPC figures
 * (Table 2 base, Figure 14 wakeup schemes, Figure 15 register
 * files, Figure 16 combined), for both Table 1 widths. Crossed with
 * the twelve workloads this is the canonical "full reproduction
 * sweep" run by tools/hpa_bench_sweep and the determinism tests.
 */
std::vector<Machine> reproductionMachines();

} // namespace hpa::sim

#endif // HPA_SIM_SWEEP_HH
