/**
 * @file
 * Parallel sweep engine. Every figure/table harness replays the same
 * pattern — a loop over (workload, machine, budget) tuples, each an
 * independent Simulation — so the engine runs them as jobs on a
 * fixed thread pool: one isolated Simulation per job, workload
 * programs built once process-wide (thread-safe cache), and results
 * returned in submission order so table printing — and the stats
 * themselves — are identical to a serial run.
 *
 * On top of the thread pool the engine batches: cells that replay
 * the same shared trace (same workload, scale, budget, fast-forward)
 * are grouped into chunks of ExperimentSpec::batch lanes and run by
 * one worker as a BatchedSimulation, amortizing the trace decode
 * stream across machine configs. Batching never changes results —
 * lanes share only the immutable trace — and cells that need
 * run-level isolation (fault injection, wall budgets, trace_cache
 * off) always run solo.
 */

#ifndef HPA_SIM_SWEEP_HH
#define HPA_SIM_SWEEP_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/simulation.hh"
#include "workloads/workloads.hh"

namespace hpa::sim
{

/** One (workload, machine, budget) simulation request. Historical
 *  name for ExperimentSpec (sim/experiment.hh). */
using SweepJob = ExperimentSpec;

/** A completed sweep job. Historical name for RunResult
 *  (sim/experiment.hh); the Simulation is kept alive so callers read
 *  IPC, CoreStats, the LAP monitor, … exactly as they would after a
 *  serial runSim(). */
using SweepResult = RunResult;

/**
 * Fixed-size thread pool running sweep jobs. Results are ordered by
 * submission index regardless of completion order, and each job gets
 * a fully isolated Simulation, so `jobs(N)` output is byte-identical
 * to `jobs(1)`.
 */
class SweepRunner
{
  public:
    /**
     * @param jobs worker threads; 0 = one per hardware thread
     * @param cache workload cache to share (default: globalCache())
     */
    explicit SweepRunner(unsigned jobs = 0,
                         workloads::WorkloadCache *cache = nullptr);

    unsigned jobs() const { return jobs_; }

    /**
     * Run all jobs; result[i] corresponds to jobs[i]. Jobs are fault
     * isolated: a job that throws (invariant violation, deadlock,
     * timeout, bad workload) or exhausts its retries is returned as a
     * Failed/TimedOut cell — with the error kind, one-line text and
     * failure context in its RunOutcome — and never disturbs the
     * other cells, whose results stay bit-identical to a fault-free
     * run. Callers that still want all-or-nothing semantics wrap the
     * result in requireAllOk().
     */
    std::vector<SweepResult> run(std::vector<SweepJob> jobs);

    /**
     * Run one job synchronously on the calling thread, including its
     * retry loop and fault injection. Never throws for per-run
     * failures — they are filed into the returned RunOutcome.
     */
    static SweepResult runOne(const SweepJob &job,
                              workloads::WorkloadCache &cache);

    /**
     * Deterministic parallel loop: fn(0..n-1) each exactly once,
     * claimed dynamically across `jobs` threads (jobs <= 1: inline,
     * in order). The first exception thrown by any fn is rethrown
     * on the caller after all workers join.
     */
    static void parallelFor(size_t n, unsigned jobs,
                            const std::function<void(size_t)> &fn);

    /** Resolve a --jobs style request: 0 means hardware threads. */
    static unsigned resolveJobs(unsigned requested);

    /**
     * Exponential retry backoff with deterministic jitter: the sleep
     * before attempt @p attempt + 1, in milliseconds —
     * base * 2^(attempt-1), capped at 2 s, plus a hash-derived jitter
     * of up to 25% so co-failing workers decorrelate without any
     * global randomness (same seed + attempt → same delay, so runs
     * stay reproducible). @p base_ms 0 disables sleeping (tests).
     */
    static unsigned backoffDelayMs(unsigned attempt, uint64_t seed,
                                   unsigned base_ms = 25);

    /** Batched-replay width when ExperimentSpec::batch is 0 (auto).
     *  Eight lanes keep the shared trace span cache-resident while
     *  amortizing its decode across most of a reproduction sweep's
     *  machines per workload. */
    static constexpr unsigned DEFAULT_BATCH = 8;

    /** Resolve an ExperimentSpec::batch request: 0 means
     *  DEFAULT_BATCH, anything else is taken literally. */
    static unsigned resolveBatch(unsigned requested);

    /** True when @p job may share a BatchedSimulation with
     *  lane-mates: trace-replayed, fault-free, and not under a wall
     *  budget (wall deadlines are per-run and would be distorted by
     *  interleaving; faulted cells keep their solo RunOutcome
     *  isolation). Non-batchable jobs run solo — same results,
     *  no sharing. */
    static bool batchable(const SweepJob &job);

    /** Batches formed by the most recent run() (diagnostics). */
    size_t batchesFormed() const { return batchesFormed_; }
    /** Widest batch actually formed by the most recent run(). */
    size_t lanesMax() const { return lanesMax_; }

  private:
    unsigned jobs_;
    workloads::WorkloadCache *cache_;
    size_t batchesFormed_ = 0;
    size_t lanesMax_ = 0;
};

/**
 * All-or-nothing view of a sweep: throws hpa::WorkloadError listing
 * every failed cell (workload, machine, one-line error) when any
 * result is not ok. Harnesses that cannot use partial results — the
 * figure generators, the golden gate's serial path — call this right
 * after SweepRunner::run().
 */
void requireAllOk(const std::vector<SweepResult> &results);

/**
 * The machine configurations of the paper's main IPC figures
 * (Table 2 base, Figure 14 wakeup schemes, Figure 15 register
 * files, Figure 16 combined), for both Table 1 widths. Crossed with
 * the twelve workloads this is the canonical "full reproduction
 * sweep" run by tools/hpa_bench_sweep and the determinism tests.
 */
std::vector<Machine> reproductionMachines();

/**
 * The post-paper policy-zoo machines: load-delay-tracking wakeup
 * ("dlt") and the operand-prefetch register file ("prefetch"), alone
 * and combined, for both Table 1 widths. This is the sweep dimension
 * behind `hpa_bench_sweep --zoo` and the EXPERIMENTS.md policy-sweep
 * guide; unlike reproductionMachines() it is not pinned by the
 * golden gate and is expected to grow as policies are added.
 */
std::vector<Machine> policyZooMachines();

} // namespace hpa::sim

#endif // HPA_SIM_SWEEP_HH
