/**
 * @file
 * A two-pass assembler for HPA-ISA.
 *
 * Source syntax (one instruction or directive per line):
 *
 *   ; comment                     // comment
 *   label:  add   r1, r2, r3     ; rc <- ra op rb
 *           add   r1, #8, r3     ; 8-bit literal second operand
 *           ldq   r2, 16(r4)     ; memory: disp(base)
 *           lda   r1, 100(r31)
 *           beq   r2, loop       ; branch to label
 *           br    done           ; br [ra,] target
 *           bsr   r26, func
 *           jsr   r26, (r4)
 *           ret   (r26)
 *           halt
 *
 * Pseudo-instructions:
 *   nop              -> bis r31, r31, r31   (2-source-format nop)
 *   mov  ra, rc      -> bis ra, r31, rc
 *   clr  rc          -> bis r31, r31, rc
 *   li   rc, imm     -> lda (16-bit) or ldah+lda pair (32-bit)
 *   la   rc, label   -> ldah+lda pair (always two instructions)
 *   neg  rb, rc      -> sub r31, rb, rc
 *   not  rb, rc      -> ornot r31, rb, rc
 *
 * Directives:
 *   .text / .data            section switch
 *   .word v, ...             8-byte values (also accepts labels)
 *   .long v, ...             4-byte values
 *   .byte v, ...             1-byte values
 *   .space n                 n zero bytes
 *   .align n                 pad to n-byte boundary (text: nops)
 *
 * Register aliases: sp = r30, lr = r26, zero = r31, fzero = f31.
 */

#ifndef HPA_ASM_ASSEMBLER_HH
#define HPA_ASM_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/decode.hh"
#include "sim/error.hh"

namespace hpa::assembler
{

/** Assembly failure with source line context. Part of the SimError
 *  taxonomy (kind Workload): a kernel that does not assemble is a
 *  workload-construction failure, not a simulator bug. */
class AsmError : public std::runtime_error, public SimError
{
  public:
    AsmError(unsigned line_no, const std::string &msg)
        : std::runtime_error("asm line " + std::to_string(line_no)
                             + ": " + msg),
          SimError(ErrorKind::Workload,
                   "asm line " + std::to_string(line_no) + ": " + msg,
                   {}),
          line(line_no)
    {}

    const char *
    what() const noexcept override
    {
        return std::runtime_error::what();
    }

    unsigned line;
};

/** Section base addresses for the assembled image. */
struct AsmOptions
{
    uint64_t code_base = 0x1000;
    uint64_t data_base = 0x100000;
};

/** An assembled, loadable program image. */
struct Program
{
    uint64_t codeBase = 0;
    uint64_t entry = 0;
    std::vector<isa::MachInst> code;

    uint64_t dataBase = 0;
    std::vector<uint8_t> data;

    std::map<std::string, uint64_t> symbols;

    /** Address one past the last code word. */
    uint64_t codeEnd() const { return codeBase + 4 * code.size(); }
    /** Address one past the last data byte. */
    uint64_t dataEnd() const { return dataBase + data.size(); }

    /** Look up a symbol; throws std::out_of_range when missing. */
    uint64_t symbol(const std::string &name) const
    {
        return symbols.at(name);
    }
};

/**
 * Assemble HPA-ISA source text.
 * @throws AsmError on any syntax or range error.
 */
Program assemble(const std::string &source, const AsmOptions &opts = {});

} // namespace hpa::assembler

#endif // HPA_ASM_ASSEMBLER_HH
