#include "asm/assembler.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <optional>

namespace hpa::assembler
{

using isa::Opcode;
using isa::RegIndex;
using isa::StaticInst;

namespace
{

/** A parsed operand. */
struct Operand
{
    enum class Kind
    {
        IntReg,     ///< r0..r31
        FpReg,      ///< f0..f31
        Literal,    ///< #expr
        Mem,        ///< expr(reg)
        Expr,       ///< bare expression or label (branch target, imm)
    };

    Kind kind;
    RegIndex reg = 31;          // register (IntReg/FpReg/Mem base)
    std::string expr;           // unevaluated expression text
};

/** A tokenized source line. */
struct Line
{
    unsigned number = 0;
    std::string label;
    std::string mnemonic;       // empty for label-only lines
    std::vector<Operand> ops;
    /** Assigned during pass 1. */
    uint64_t address = 0;
    bool inText = true;
};

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

std::optional<RegIndex>
parseIntReg(const std::string &t)
{
    std::string s = lower(t);
    if (s == "sp")
        return RegIndex(30);
    if (s == "lr")
        return RegIndex(26);
    if (s == "zero")
        return RegIndex(31);
    if (s.size() >= 2 && s[0] == 'r') {
        int v = 0;
        for (size_t i = 1; i < s.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(s[i])))
                return std::nullopt;
            v = v * 10 + (s[i] - '0');
        }
        if (v <= 31)
            return RegIndex(v);
    }
    return std::nullopt;
}

std::optional<RegIndex>
parseFpReg(const std::string &t)
{
    std::string s = lower(t);
    if (s == "fzero")
        return RegIndex(31);
    if (s.size() >= 2 && s[0] == 'f') {
        int v = 0;
        for (size_t i = 1; i < s.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(s[i])))
                return std::nullopt;
            v = v * 10 + (s[i] - '0');
        }
        if (v <= 31)
            return RegIndex(v);
    }
    return std::nullopt;
}

/** Split a comma list, respecting that '(' groups never contain ','. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

Operand
parseOperand(const std::string &tok, unsigned line)
{
    Operand op;
    if (tok.empty())
        throw AsmError(line, "empty operand");

    if (tok[0] == '#') {
        op.kind = Operand::Kind::Literal;
        op.expr = trim(tok.substr(1));
        return op;
    }
    if (auto r = parseIntReg(tok)) {
        op.kind = Operand::Kind::IntReg;
        op.reg = *r;
        return op;
    }
    if (auto f = parseFpReg(tok)) {
        op.kind = Operand::Kind::FpReg;
        op.reg = *f;
        return op;
    }
    // Memory operand: disp(reg) or (reg).
    size_t paren = tok.find('(');
    if (paren != std::string::npos) {
        if (tok.back() != ')')
            throw AsmError(line, "malformed memory operand: " + tok);
        std::string base =
            trim(tok.substr(paren + 1, tok.size() - paren - 2));
        auto r = parseIntReg(base);
        if (!r)
            throw AsmError(line, "bad base register: " + base);
        op.kind = Operand::Kind::Mem;
        op.reg = *r;
        op.expr = trim(tok.substr(0, paren));
        return op;
    }
    op.kind = Operand::Kind::Expr;
    op.expr = tok;
    return op;
}

/** Mnemonic table mapping to opcodes; pseudos handled separately. */
std::optional<Opcode>
mnemonicOpcode(const std::string &m)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(Opcode::NumOpcodes); ++i) {
        auto op = static_cast<Opcode>(i);
        if (isa::opInfo(op).mnemonic == m)
            return op;
    }
    return std::nullopt;
}

class Assembler
{
  public:
    Assembler(const std::string &source, const AsmOptions &opts)
        : opts_(opts)
    {
        tokenize(source);
    }

    Program
    run()
    {
        pass1();
        pass2();
        prog_.codeBase = opts_.code_base;
        prog_.dataBase = opts_.data_base;
        prog_.entry = prog_.symbols.count("start")
            ? prog_.symbols.at("start") : opts_.code_base;
        return std::move(prog_);
    }

  private:
    AsmOptions opts_;
    std::vector<Line> lines_;
    Program prog_;

    void
    tokenize(const std::string &source)
    {
        unsigned lineno = 0;
        size_t pos = 0;
        while (pos <= source.size()) {
            size_t nl = source.find('\n', pos);
            std::string raw = nl == std::string::npos
                ? source.substr(pos) : source.substr(pos, nl - pos);
            pos = nl == std::string::npos ? source.size() + 1 : nl + 1;
            ++lineno;

            // Strip comments (';' and '//').
            size_t c = raw.find(';');
            if (c != std::string::npos)
                raw = raw.substr(0, c);
            c = raw.find("//");
            if (c != std::string::npos)
                raw = raw.substr(0, c);
            raw = trim(raw);
            if (raw.empty())
                continue;

            Line ln;
            ln.number = lineno;

            // Label?
            size_t colon = raw.find(':');
            if (colon != std::string::npos
                && raw.find_first_of(" \t") > colon) {
                ln.label = trim(raw.substr(0, colon));
                raw = trim(raw.substr(colon + 1));
            }

            if (!raw.empty()) {
                size_t sp = raw.find_first_of(" \t");
                ln.mnemonic = lower(sp == std::string::npos
                                    ? raw : raw.substr(0, sp));
                std::string rest = sp == std::string::npos
                    ? "" : trim(raw.substr(sp));
                if (!rest.empty())
                    for (auto &t : splitOperands(rest))
                        ln.ops.push_back(parseOperand(t, lineno));
            }
            lines_.push_back(std::move(ln));
        }
    }

    /** Evaluate a (possibly symbolic) expression. */
    int64_t
    evalExpr(const std::string &expr, unsigned line) const
    {
        std::string e = trim(expr);
        if (e.empty())
            return 0;
        // sym+num / sym-num (split at last +/- not at position 0 and
        // not part of a leading sign or hex literal).
        for (size_t i = e.size(); i-- > 1;) {
            if ((e[i] == '+' || e[i] == '-')
                && !std::isdigit(static_cast<unsigned char>(e[0]))
                && e[0] != '-' && e[0] != '+') {
                int64_t lhs = evalExpr(e.substr(0, i), line);
                int64_t rhs = evalExpr(e.substr(i + 1), line);
                return e[i] == '+' ? lhs + rhs : lhs - rhs;
            }
        }
        // Character literal.
        if (e.size() >= 3 && e.front() == '\'' && e.back() == '\'')
            return static_cast<int64_t>(e[1]);
        // Numeric literal.
        char first = e[0];
        if (std::isdigit(static_cast<unsigned char>(first))
            || first == '-' || first == '+') {
            try {
                size_t used = 0;
                int64_t v = std::stoll(e, &used, 0);
                if (used != e.size())
                    throw AsmError(line, "bad number: " + e);
                return v;
            } catch (const std::exception &) {
                throw AsmError(line, "bad number: " + e);
            }
        }
        // Symbol.
        auto it = prog_.symbols.find(e);
        if (it == prog_.symbols.end())
            throw AsmError(line, "undefined symbol: " + e);
        return static_cast<int64_t>(it->second);
    }

    /** Number of machine instructions a (pseudo)mnemonic expands to. */
    unsigned
    instCount(const Line &ln) const
    {
        const std::string &m = ln.mnemonic;
        if (m == "la")
            return 2;
        if (m == "li") {
            if (ln.ops.size() != 2)
                throw AsmError(ln.number, "li needs 2 operands");
            int64_t v = evalNumericOnly(ln.ops[1].expr, ln.number);
            return (v >= -32768 && v <= 32767) ? 1 : 2;
        }
        return 1;
    }

    /** Pass-1 evaluation for li: numeric constants only. */
    int64_t
    evalNumericOnly(const std::string &expr, unsigned line) const
    {
        std::string e = trim(expr);
        if (e.empty() || (!std::isdigit(static_cast<unsigned char>(e[0]))
                          && e[0] != '-' && e[0] != '+'
                          && !(e.size() >= 3 && e.front() == '\'')))
            throw AsmError(line, "li requires a numeric constant");
        return evalExpr(e, line);
    }

    void
    pass1()
    {
        uint64_t text = opts_.code_base;
        uint64_t data = opts_.data_base;
        bool in_text = true;

        for (Line &ln : lines_) {
            ln.inText = in_text;
            ln.address = in_text ? text : data;
            if (!ln.label.empty()) {
                if (prog_.symbols.count(ln.label))
                    throw AsmError(ln.number,
                                   "duplicate label: " + ln.label);
                prog_.symbols[ln.label] = ln.address;
            }
            if (ln.mnemonic.empty())
                continue;

            const std::string &m = ln.mnemonic;
            if (m == ".text") {
                in_text = true;
            } else if (m == ".data") {
                in_text = false;
            } else if (m == ".word") {
                data += 8 * ln.ops.size();
            } else if (m == ".long") {
                data += 4 * ln.ops.size();
            } else if (m == ".byte") {
                data += ln.ops.size();
            } else if (m == ".space") {
                data += static_cast<uint64_t>(
                    evalNumericOnly(ln.ops.at(0).expr, ln.number));
            } else if (m == ".align") {
                uint64_t a = static_cast<uint64_t>(
                    evalNumericOnly(ln.ops.at(0).expr, ln.number));
                if (a == 0 || (a & (a - 1)))
                    throw AsmError(ln.number, ".align must be power of 2");
                uint64_t &p = in_text ? text : data;
                p = (p + a - 1) & ~(a - 1);
                // Re-pin the label (if any) to the aligned address.
                if (!ln.label.empty())
                    prog_.symbols[ln.label] = p;
                ln.address = p;
            } else if (m[0] == '.') {
                throw AsmError(ln.number, "unknown directive: " + m);
            } else {
                if (!in_text)
                    throw AsmError(ln.number,
                                   "instruction in .data section");
                text += 4 * instCount(ln);
            }
            // Labels on section-switch lines bind to the new section
            // start; keep simple and forbid it instead.
            if ((m == ".text" || m == ".data") && !ln.label.empty())
                throw AsmError(ln.number,
                               "label not allowed on section directive");
        }
    }

    void
    emit(const StaticInst &si)
    {
        prog_.code.push_back(isa::encode(si));
    }

    void
    emitData(uint64_t v, unsigned bytes)
    {
        for (unsigned i = 0; i < bytes; ++i)
            prog_.data.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    RegIndex
    wantIntReg(const Line &ln, unsigned i) const
    {
        if (i >= ln.ops.size()
            || ln.ops[i].kind != Operand::Kind::IntReg)
            throw AsmError(ln.number, "expected integer register");
        return ln.ops[i].reg;
    }

    RegIndex
    wantFpReg(const Line &ln, unsigned i) const
    {
        if (i >= ln.ops.size() || ln.ops[i].kind != Operand::Kind::FpReg)
            throw AsmError(ln.number, "expected fp register");
        return ln.ops[i].reg;
    }

    /** Branch displacement, in words, from instruction at addr. */
    int32_t
    branchDisp(const Operand &op, uint64_t addr, unsigned line) const
    {
        int64_t v = evalExpr(op.expr, line);
        // Numeric constants are raw word displacements; symbols are
        // absolute targets.
        bool symbolic = !op.expr.empty()
            && !std::isdigit(static_cast<unsigned char>(op.expr[0]))
            && op.expr[0] != '-' && op.expr[0] != '+';
        int64_t disp = symbolic
            ? (v - static_cast<int64_t>(addr) - 4) / 4 : v;
        if (disp < -(1 << 20) || disp >= (1 << 20))
            throw AsmError(line, "branch displacement out of range");
        return static_cast<int32_t>(disp);
    }

    void
    pass2()
    {
        for (const Line &ln : lines_) {
            if (ln.mnemonic.empty())
                continue;
            const std::string &m = ln.mnemonic;
            try {
                if (m[0] == '.')
                    emitDirective(ln);
                else
                    emitInstruction(ln);
            } catch (const std::out_of_range &) {
                throw AsmError(ln.number, "missing operand");
            }
        }
    }

    void
    emitDirective(const Line &ln)
    {
        const std::string &m = ln.mnemonic;
        if (m == ".text" || m == ".data")
            return;
        if (m == ".word") {
            for (const auto &op : ln.ops)
                emitData(static_cast<uint64_t>(
                             evalExpr(op.expr, ln.number)), 8);
        } else if (m == ".long") {
            for (const auto &op : ln.ops)
                emitData(static_cast<uint64_t>(
                             evalExpr(op.expr, ln.number)), 4);
        } else if (m == ".byte") {
            for (const auto &op : ln.ops)
                emitData(static_cast<uint64_t>(
                             evalExpr(op.expr, ln.number)), 1);
        } else if (m == ".space") {
            auto n = static_cast<uint64_t>(
                evalExpr(ln.ops.at(0).expr, ln.number));
            prog_.data.insert(prog_.data.end(), n, 0);
        } else if (m == ".align") {
            uint64_t a = static_cast<uint64_t>(
                evalExpr(ln.ops.at(0).expr, ln.number));
            if (ln.inText) {
                uint64_t cur = opts_.code_base + 4 * prog_.code.size();
                while (cur & (a - 1)) {
                    emit(isa::makeNop());
                    cur += 4;
                }
            } else {
                uint64_t cur = opts_.data_base + prog_.data.size();
                while (cur & (a - 1)) {
                    prog_.data.push_back(0);
                    ++cur;
                }
            }
        }
    }

    void
    emitOperate(const Line &ln, Opcode op)
    {
        bool fp = isa::opInfo(op).opClass == isa::OpClass::FpAlu
            || isa::opInfo(op).opClass == isa::OpClass::FpMult
            || isa::opInfo(op).opClass == isa::OpClass::FpDiv;
        unsigned nsrc = isa::opInfo(op).numSrcFields;

        if (nsrc == 1) {
            // sqrtf fa, fc / itof ra, fc / ftoi fa, rc
            RegIndex src, dst;
            if (op == Opcode::ITOF) {
                src = wantIntReg(ln, 0);
                dst = wantFpReg(ln, 1);
            } else if (op == Opcode::FTOI) {
                src = wantFpReg(ln, 0);
                dst = wantIntReg(ln, 1);
            } else {
                src = wantFpReg(ln, 0);
                dst = wantFpReg(ln, 1);
            }
            emit(isa::makeOp(op, src, 31, dst));
            return;
        }

        if (ln.ops.size() != 3)
            throw AsmError(ln.number, "operate needs 3 operands");
        RegIndex ra = fp ? wantFpReg(ln, 0) : wantIntReg(ln, 0);
        RegIndex rc = fp ? wantFpReg(ln, 2) : wantIntReg(ln, 2);
        if (ln.ops[1].kind == Operand::Kind::Literal) {
            int64_t v = evalExpr(ln.ops[1].expr, ln.number);
            if (v < 0 || v > 255)
                throw AsmError(ln.number,
                               "literal out of range (0..255)");
            emit(isa::makeOpImm(op, ra, static_cast<uint8_t>(v), rc));
        } else {
            RegIndex rb = fp ? wantFpReg(ln, 1) : wantIntReg(ln, 1);
            emit(isa::makeOp(op, ra, rb, rc));
        }
    }

    void
    emitInstruction(const Line &ln)
    {
        const std::string &m = ln.mnemonic;

        // --- Pseudo-instructions. ---
        if (m == "nop") {
            emit(isa::makeNop());
            return;
        }
        if (m == "mov") {
            RegIndex ra = wantIntReg(ln, 0), rc = wantIntReg(ln, 1);
            emit(isa::makeOp(Opcode::BIS, ra, 31, rc));
            return;
        }
        if (m == "clr") {
            emit(isa::makeOp(Opcode::BIS, 31, 31, wantIntReg(ln, 0)));
            return;
        }
        if (m == "neg") {
            emit(isa::makeOp(Opcode::SUB, 31, wantIntReg(ln, 0),
                             wantIntReg(ln, 1)));
            return;
        }
        if (m == "not") {
            emit(isa::makeOp(Opcode::ORNOT, 31, wantIntReg(ln, 0),
                             wantIntReg(ln, 1)));
            return;
        }
        if (m == "li" || m == "la") {
            RegIndex rc = wantIntReg(ln, 0);
            int64_t v = evalExpr(ln.ops.at(1).expr, ln.number);
            bool one_inst = m == "li" && v >= -32768 && v <= 32767;
            if (one_inst) {
                emit(isa::makeMem(Opcode::LDA, rc, 31,
                                  static_cast<int32_t>(v)));
            } else {
                if (v < INT32_MIN || v > INT32_MAX)
                    throw AsmError(ln.number,
                                   "li/la constant exceeds 32 bits");
                int32_t lo = static_cast<int16_t>(v & 0xFFFF);
                int32_t hi = static_cast<int32_t>((v - lo) >> 16);
                emit(isa::makeMem(Opcode::LDAH, rc, 31, hi));
                emit(isa::makeMem(Opcode::LDA, rc, rc, lo));
            }
            return;
        }

        auto opc = mnemonicOpcode(m);
        if (!opc)
            throw AsmError(ln.number, "unknown mnemonic: " + m);
        Opcode op = *opc;
        const isa::OpInfo &inf = isa::opInfo(op);

        switch (inf.format) {
          case isa::Format::Operate:
            emitOperate(ln, op);
            break;
          case isa::Format::Memory: {
            bool fp = op == Opcode::LDF || op == Opcode::STF;
            RegIndex ra = fp ? wantFpReg(ln, 0) : wantIntReg(ln, 0);
            if (ln.ops.size() < 2
                || ln.ops[1].kind != Operand::Kind::Mem)
                throw AsmError(ln.number, "expected disp(base) operand");
            int64_t d = evalExpr(ln.ops[1].expr, ln.number);
            if (d < -32768 || d > 32767)
                throw AsmError(ln.number, "displacement out of range");
            emit(isa::makeMem(op, ra, ln.ops[1].reg,
                              static_cast<int32_t>(d)));
            break;
          }
          case isa::Format::Branch: {
            uint64_t pc = ln.address;
            if (op == Opcode::BR || op == Opcode::BSR) {
                RegIndex link = op == Opcode::BSR ? isa::LINK_REG : 31;
                unsigned ti = 0;
                if (ln.ops.size() == 2) {
                    link = wantIntReg(ln, 0);
                    ti = 1;
                }
                emit(isa::makeBranch(
                         op, link,
                         branchDisp(ln.ops.at(ti), pc, ln.number)));
            } else {
                RegIndex ra = wantIntReg(ln, 0);
                emit(isa::makeBranch(
                         op, ra,
                         branchDisp(ln.ops.at(1), pc, ln.number)));
            }
            break;
          }
          case isa::Format::Jump: {
            RegIndex link = op == Opcode::JSR ? isa::LINK_REG : 31;
            unsigned ti = 0;
            if (ln.ops.size() == 2) {
                link = wantIntReg(ln, 0);
                ti = 1;
            }
            if (op == Opcode::RET && ln.ops.empty()) {
                emit(isa::makeJump(op, 31, isa::LINK_REG));
                break;
            }
            if (ti >= ln.ops.size()
                || ln.ops[ti].kind != Operand::Kind::Mem)
                throw AsmError(ln.number, "expected (reg) operand");
            emit(isa::makeJump(op, link, ln.ops[ti].reg));
            break;
          }
          case isa::Format::System:
            if (op == Opcode::OUT)
                emit(isa::makeSystem(op, wantIntReg(ln, 0)));
            else
                emit(isa::makeSystem(op));
            break;
        }
    }
};

} // namespace

Program
assemble(const std::string &source, const AsmOptions &opts)
{
    Assembler as(source, opts);
    return as.run();
}

} // namespace hpa::assembler
