#include "mem/cache.hh"

#include <cassert>

#include "sim/error.hh"

namespace hpa::mem
{

namespace
{

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
log2u(uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : hits(config.name + ".hits", "cache hits"),
      misses(config.name + ".misses", "cache misses"),
      writebacks(config.name + ".writebacks", "dirty evictions"),
      cfg_(config)
{
    if (!isPow2(cfg_.line_bytes) || !isPow2(cfg_.size_bytes))
        throw ConfigError(
            "cache size and line size must be powers of 2");
    if (cfg_.assoc == 0 ||
        cfg_.size_bytes % (cfg_.line_bytes * cfg_.assoc) != 0)
        throw ConfigError("cache size/assoc mismatch");
    num_sets_ =
        static_cast<unsigned>(cfg_.size_bytes
                              / (cfg_.line_bytes * cfg_.assoc));
    if (!isPow2(num_sets_))
        throw ConfigError("number of sets must be power of 2");
    line_mask_ = cfg_.line_bytes - 1;
    set_shift_ = log2u(cfg_.line_bytes);
    lines_.resize(static_cast<size_t>(num_sets_) * cfg_.assoc);
}

Cache::Line *
Cache::set(uint64_t addr)
{
    uint64_t idx = (addr >> set_shift_) & (num_sets_ - 1);
    return &lines_[idx * cfg_.assoc];
}

const Cache::Line *
Cache::set(uint64_t addr) const
{
    uint64_t idx = (addr >> set_shift_) & (num_sets_ - 1);
    return &lines_[idx * cfg_.assoc];
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr >> set_shift_;
}

AccessResult
Cache::access(uint64_t addr, bool is_write)
{
    Line *s = set(addr);
    uint64_t tag = tagOf(addr);
    AccessResult res;

    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (s[w].valid && s[w].tag == tag) {
            s[w].lru = ++lru_clock_;
            s[w].dirty |= is_write;
            res.hit = true;
            ++hits;
            return res;
        }
    }

    ++misses;

    // Fill: choose invalid way or LRU victim.
    Line *victim = &s[0];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (!s[w].valid) {
            victim = &s[w];
            break;
        }
        if (s[w].lru < victim->lru)
            victim = &s[w];
    }
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        // Reconstruct the victim's line address from its tag and this
        // set index (tag includes the set bits by construction).
        res.victim_line_addr = victim->tag << set_shift_;
        ++writebacks;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lru = ++lru_clock_;
    return res;
}

bool
Cache::probe(uint64_t addr) const
{
    const Line *s = set(addr);
    uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < cfg_.assoc; ++w)
        if (s[w].valid && s[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (Line &l : lines_) {
        l.valid = false;
        l.dirty = false;
    }
}

void
Cache::regStats(stats::Registry &reg)
{
    reg.add(&hits);
    reg.add(&misses);
    reg.add(&writebacks);
}

} // namespace hpa::mem
