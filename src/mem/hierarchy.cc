#include "mem/hierarchy.hh"

namespace hpa::mem
{

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : cfg_(config),
      il1_(std::make_unique<Cache>(cfg_.il1)),
      dl1_(std::make_unique<Cache>(cfg_.dl1)),
      l2_(std::make_unique<Cache>(cfg_.l2))
{}

unsigned
Hierarchy::belowL1(uint64_t addr, bool is_write)
{
    AccessResult l2r = l2_->access(addr, is_write);
    if (l2r.hit)
        return cfg_.l2.latency;
    // L2 miss: main memory. Dirty L2 victims write back to memory;
    // latency of the writeback is off the critical path.
    return cfg_.l2.latency + cfg_.mem_latency;
}

unsigned
Hierarchy::fetchAccess(uint64_t addr)
{
    AccessResult r = il1_->access(addr, false);
    if (r.hit)
        return cfg_.il1.latency;
    return cfg_.il1.latency + belowL1(addr, false);
}

unsigned
Hierarchy::dataAccess(uint64_t addr, bool is_write)
{
    AccessResult r = dl1_->access(addr, is_write);
    unsigned lat = cfg_.dl1.latency;
    if (!r.hit)
        lat += belowL1(addr, is_write);
    if (r.writeback) {
        // Write the dirty victim into L2 (tag update only; latency
        // hidden behind the demand fill).
        l2_->access(r.victim_line_addr, true);
    }
    return lat;
}

void
Hierarchy::regStats(stats::Registry &reg)
{
    il1_->regStats(reg);
    dl1_->regStats(reg);
    l2_->regStats(reg);
}

} // namespace hpa::mem
