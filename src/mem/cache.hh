/**
 * @file
 * Set-associative cache timing model with true-LRU replacement and
 * write-back/write-allocate policy. Tag-only: no data is stored; the
 * functional emulator holds architectural memory contents.
 */

#ifndef HPA_MEM_CACHE_HH
#define HPA_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats.hh"

namespace hpa::mem
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    uint64_t size_bytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned line_bytes = 32;
    /** Access (hit) latency in cycles. */
    unsigned latency = 2;
};

/** Result of a timing access. */
struct AccessResult
{
    bool hit = false;
    /** A dirty line was evicted (needs a write-back below). */
    bool writeback = false;
    /** Line address of the evicted dirty line, valid iff writeback. */
    uint64_t victim_line_addr = 0;
};

/** One level of set-associative cache state (tags only). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Perform a timing access.
     * @param addr byte address
     * @param is_write marks the line dirty on hit/fill
     */
    AccessResult access(uint64_t addr, bool is_write);

    /** Probe without updating LRU or contents. */
    bool probe(uint64_t addr) const;

    /** Invalidate all lines (does not report writebacks). */
    void flush();

    const CacheConfig &config() const { return cfg_; }
    unsigned numSets() const { return num_sets_; }

    uint64_t lineAddr(uint64_t addr) const { return addr & ~line_mask_; }

    /** Register hit/miss counters with a stats registry. */
    void regStats(stats::Registry &reg);

    stats::Counter hits;
    stats::Counter misses;
    stats::Counter writebacks;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        /** LRU stamp; larger is more recent. */
        uint64_t lru = 0;
    };

    CacheConfig cfg_;
    unsigned num_sets_;
    uint64_t line_mask_;
    unsigned set_shift_;
    std::vector<Line> lines_;
    uint64_t lru_clock_ = 0;

    Line *set(uint64_t addr);
    const Line *set(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;
};

} // namespace hpa::mem

#endif // HPA_MEM_CACHE_HH
