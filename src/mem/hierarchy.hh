/**
 * @file
 * Two-level memory hierarchy per Table 1: split IL1/DL1, unified L2,
 * fixed-latency main memory. Returns total access latency in cycles;
 * contention is modeled by the core's memory-port limits.
 */

#ifndef HPA_MEM_HIERARCHY_HH
#define HPA_MEM_HIERARCHY_HH

#include <memory>

#include "mem/cache.hh"

namespace hpa::mem
{

/** Hierarchy-wide configuration (defaults: Table 1). */
struct HierarchyConfig
{
    CacheConfig il1{"il1", 64 * 1024, 2, 32, 2};
    CacheConfig dl1{"dl1", 64 * 1024, 4, 16, 2};
    CacheConfig l2{"l2", 512 * 1024, 4, 64, 8};
    unsigned mem_latency = 50;
};

/** IL1/DL1 + unified L2 + main memory. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config = {});

    /**
     * Instruction fetch of one cache line.
     * @return total latency in cycles (IL1 hit latency on a hit).
     */
    unsigned fetchAccess(uint64_t addr);

    /**
     * Data access latency for a load or store.
     * @return total latency in cycles.
     */
    unsigned dataAccess(uint64_t addr, bool is_write);

    /** DL1-hit latency assumed by the speculative scheduler. */
    unsigned assumedLoadLatency() const { return cfg_.dl1.latency; }

    Cache &il1() { return *il1_; }
    Cache &dl1() { return *dl1_; }
    Cache &l2() { return *l2_; }

    void regStats(stats::Registry &reg);

  private:
    HierarchyConfig cfg_;
    std::unique_ptr<Cache> il1_;
    std::unique_ptr<Cache> dl1_;
    std::unique_ptr<Cache> l2_;

    /** L2 + memory path shared by both L1s. */
    unsigned belowL1(uint64_t addr, bool is_write);
};

} // namespace hpa::mem

#endif // HPA_MEM_HIERARCHY_HH
