#include "workloads/common.hh"

namespace hpa::workloads::detail
{

std::string
substitute(std::string text,
           const std::map<std::string, int64_t> &params)
{
    for (const auto &[key, value] : params) {
        std::string pat = "{" + key + "}";
        std::string rep = std::to_string(value);
        size_t pos = 0;
        while ((pos = text.find(pat, pos)) != std::string::npos) {
            text.replace(pos, pat.size(), rep);
            pos += rep.size();
        }
    }
    return text;
}

} // namespace hpa::workloads::detail
