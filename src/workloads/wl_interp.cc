/**
 * @file
 * perl: a stack-machine bytecode interpreter dispatching through a
 * jump table (indirect jumps, as in 253.perlbmk's opcode loop).
 * eon: floating-point ray-sphere intersection (252.eon substitute).
 */

#include <vector>

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace hpa::workloads
{

using detail::checksumBytes;
using detail::lcgStep;
using detail::substitute;

// --------------------------------------------------------------------
// perl: bytecode interpreter.
// --------------------------------------------------------------------

namespace
{

const char *PERL_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {K}             ; bytecode length
        la    r1, code
        la    r4, stack
        la    r5, consts
        la    r7, jt
        li    r16, 256            ; stack capacity
        clr   r2
pgen:   mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #7, r8
        cmple r8, #5, r9
        bne   r9, genok
        clr   r8
genok:  add   r1, r2, r9
        stb   r8, 0(r9)
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #255, r8
        s8add r2, r5, r9
        stq   r8, 0(r9)
        add   r2, #1, r2
        cmplt r2, r6, r8
        bne   r8, pgen
steady: clr   r20
        clr   r3                  ; sp persists across runs
        li    r13, {INNER}
prun:   clr   r2                  ; pc
iloop:  cmplt r2, r6, r8
        beq   r8, idone
        add   r1, r2, r9
        ldbu  r8, 0(r9)
        s8add r8, r7, r9
        ldq   r9, 0(r9)
        jmp   r31, (r9)
op_push:
        cmpeq r3, r16, r8
        beq   r8, push2
        clr   r3
push2:  s8add r2, r5, r9
        ldq   r14, 0(r9)
        s8add r3, r4, r9
        stq   r14, 0(r9)
        add   r3, #1, r3
        br    inext
op_add: cmplt r3, #2, r8
        bne   r8, inext
        sub   r3, #1, r3
        s8add r3, r4, r9
        ldq   r14, 0(r9)
        sub   r3, #1, r15
        s8add r15, r4, r9
        ldq   r15, 0(r9)
        add   r15, r14, r14
        stq   r14, 0(r9)
        br    inext
op_sub: cmplt r3, #2, r8
        bne   r8, inext
        sub   r3, #1, r3
        s8add r3, r4, r9
        ldq   r14, 0(r9)
        sub   r3, #1, r15
        s8add r15, r4, r9
        ldq   r15, 0(r9)
        sub   r15, r14, r14
        stq   r14, 0(r9)
        br    inext
op_xor: cmplt r3, #2, r8
        bne   r8, inext
        sub   r3, #1, r3
        s8add r3, r4, r9
        ldq   r14, 0(r9)
        sub   r3, #1, r15
        s8add r15, r4, r9
        ldq   r15, 0(r9)
        xor   r15, r14, r14
        stq   r14, 0(r9)
        br    inext
op_dup: beq   r3, inext
        cmpeq r3, r16, r8
        bne   r8, inext
        sub   r3, #1, r8
        s8add r8, r4, r9
        ldq   r14, 0(r9)
        s8add r3, r4, r9
        stq   r14, 0(r9)
        add   r3, #1, r3
        br    inext
op_swap:
        nop                       ; alignment-style 2-source nop
        cmplt r3, #2, r8
        bne   r8, inext
        sub   r3, #1, r8
        s8add r8, r4, r9
        ldq   r14, 0(r9)
        sub   r3, #2, r8
        s8add r8, r4, r17
        ldq   r15, 0(r17)
        stq   r15, 0(r9)
        stq   r14, 0(r17)
inext:  add   r2, #1, r2
        br    iloop
idone:  add   r20, r3, r20
        beq   r3, nostk
        sub   r3, #1, r8
        s8add r8, r4, r9
        ldq   r14, 0(r9)
        add   r20, r14, r20
nostk:  sub   r13, #1, r13
        bne   r13, prun
{EPILOGUE}
        .data
code:   .space {K}
        .align 8
consts: .space {KBYTES}
stack:  .space 2048
jt:     .word op_push, op_add, op_sub, op_xor, op_dup, op_swap
)";

uint64_t
perlGolden(uint64_t seed, int64_t k, int64_t inner)
{
    uint64_t x = seed;
    std::vector<uint8_t> code(k);
    std::vector<uint64_t> consts(k);
    for (int64_t i = 0; i < k; ++i) {
        uint64_t op = (lcgStep(x) >> 16) & 7;
        if (op > 5)
            op = 0;
        code[i] = static_cast<uint8_t>(op);
        consts[i] = (lcgStep(x) >> 16) & 0xFF;
    }
    uint64_t stack[256];
    uint64_t sp = 0;
    uint64_t checksum = 0;
    for (int64_t run = 0; run < inner; ++run) {
        for (int64_t pc = 0; pc < k; ++pc) {
            switch (code[pc]) {
              case 0:
                if (sp == 256)
                    sp = 0;
                stack[sp++] = consts[pc];
                break;
              case 1:
                if (sp < 2)
                    break;
                --sp;
                stack[sp - 1] = stack[sp - 1] + stack[sp];
                break;
              case 2:
                if (sp < 2)
                    break;
                --sp;
                stack[sp - 1] = stack[sp - 1] - stack[sp];
                break;
              case 3:
                if (sp < 2)
                    break;
                --sp;
                stack[sp - 1] = stack[sp - 1] ^ stack[sp];
                break;
              case 4:
                if (sp == 0 || sp == 256)
                    break;
                stack[sp] = stack[sp - 1];
                ++sp;
                break;
              default:
                if (sp < 2)
                    break;
                std::swap(stack[sp - 1], stack[sp - 2]);
                break;
            }
        }
        checksum += sp;
        if (sp > 0)
            checksum += stack[sp - 1];
    }
    return checksum;
}

} // namespace

Workload
makePerl(Scale scale)
{
    int64_t k = scale == Scale::Test ? 512 : 4096;
    int64_t inner = scale == Scale::Test ? 8 : 40000;
    uint64_t seed = 25300101;

    Workload w;
    w.name = "perl";
    w.description =
        "stack-machine bytecode interpreter (253.perlbmk substitute)";
    std::string src = substitute(PERL_ASM, {
        {"SEED", int64_t(seed)},
        {"K", k},
        {"KBYTES", k * 8},
        {"INNER", inner},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole = checksumBytes(perlGolden(seed, k, inner));
    return w;
}

// --------------------------------------------------------------------
// eon: ray-sphere intersection with IEEE doubles.
// --------------------------------------------------------------------

namespace
{

const char *EON_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {NS}            ; spheres
        la    r1, scx
        la    r2, scy
        la    r3, scz
        la    r4, sr2
        li    r8, 128
        itof  r8, f1              ; 128.0
        clr   r5
einit:  mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #255, r8
        itof  r8, f2
        subf  f2, f1, f2
        s8add r5, r1, r9
        stf   f2, 0(r9)
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #255, r8
        itof  r8, f2
        subf  f2, f1, f2
        s8add r5, r2, r9
        stf   f2, 0(r9)
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #255, r8
        itof  r8, f2
        subf  f2, f1, f2
        s8add r5, r3, r9
        stf   f2, 0(r9)
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #15, r8
        add   r8, #4, r8
        itof  r8, f2
        mulf  f2, f2, f2          ; r^2
        s8add r5, r4, r9
        stf   f2, 0(r9)
        add   r5, #1, r5
        cmplt r5, r6, r8
        bne   r8, einit
steady: clr   r19                 ; hits
        itof  r31, f20            ; acc = 0.0
        li    r13, {NR}           ; rays
eray:   mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #15, r8
        add   r8, #1, r8
        itof  r8, f6              ; dx
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #15, r8
        add   r8, #1, r8
        itof  r8, f7              ; dy
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #15, r8
        add   r8, #1, r8
        itof  r8, f8              ; dz
        addf  f6, f7, f9
        addf  f9, f8, f9          ; norm
        divf  f6, f9, f6
        divf  f7, f9, f7
        divf  f8, f9, f8
        clr   r5
esph:   s8add r5, r1, r9
        ldf   f2, 0(r9)           ; cx
        s8add r5, r2, r9
        ldf   f3, 0(r9)
        s8add r5, r3, r9
        ldf   f4, 0(r9)
        s8add r5, r4, r9
        ldf   f5, 0(r9)           ; r^2
        mulf  f2, f6, f9
        mulf  f3, f7, f10
        addf  f9, f10, f9
        mulf  f4, f8, f10
        addf  f9, f10, f9         ; b
        mulf  f2, f2, f10
        mulf  f3, f3, f11
        addf  f10, f11, f10
        mulf  f4, f4, f11
        addf  f10, f11, f10
        subf  f10, f5, f10        ; cc = |c|^2 - r^2
        mulf  f9, f9, f11
        subf  f11, f10, f11       ; disc
        cmpflt f31, f11, f12
        ftoi  f12, r8
        beq   r8, emiss
        add   r19, #1, r19
        sqrtf f11, f11
        subf  f9, f11, f9         ; t = b - sqrt(disc)
        addf  f20, f9, f20
emiss:  add   r5, #1, r5
        cmplt r5, r6, r8
        bne   r8, esph
        sub   r13, #1, r13
        bne   r13, eray
        ftoi  f20, r20
        add   r20, r19, r20
{EPILOGUE}
        .data
        .align 8
scx:    .space {NSBYTES}
scy:    .space {NSBYTES}
scz:    .space {NSBYTES}
sr2:    .space {NSBYTES}
)";

uint64_t
eonGolden(uint64_t seed, int64_t ns, int64_t nr)
{
    uint64_t x = seed;
    std::vector<double> scx(ns), scy(ns), scz(ns), sr2(ns);
    for (int64_t s = 0; s < ns; ++s) {
        scx[s] = double((lcgStep(x) >> 16) & 0xFF) - 128.0;
        scy[s] = double((lcgStep(x) >> 16) & 0xFF) - 128.0;
        scz[s] = double((lcgStep(x) >> 16) & 0xFF) - 128.0;
        double r = double(((lcgStep(x) >> 16) & 0xF) + 4);
        sr2[s] = r * r;
    }
    uint64_t hits = 0;
    double acc = 0.0;
    for (int64_t i = 0; i < nr; ++i) {
        double dx = double(((lcgStep(x) >> 16) & 0xF) + 1);
        double dy = double(((lcgStep(x) >> 16) & 0xF) + 1);
        double dz = double(((lcgStep(x) >> 16) & 0xF) + 1);
        double norm = (dx + dy) + dz;
        dx /= norm;
        dy /= norm;
        dz /= norm;
        for (int64_t s = 0; s < ns; ++s) {
            double b = (scx[s] * dx + scy[s] * dy) + scz[s] * dz;
            double cc =
                ((scx[s] * scx[s] + scy[s] * scy[s])
                 + scz[s] * scz[s]) - sr2[s];
            double disc = b * b - cc;
            if (0.0 < disc) {
                ++hits;
                double root = disc < 0.0 ? 0.0 : __builtin_sqrt(disc);
                acc += b - root;
            }
        }
    }
    return static_cast<uint64_t>(static_cast<int64_t>(acc) + int64_t(hits));
}

} // namespace

Workload
makeEon(Scale scale)
{
    int64_t ns = scale == Scale::Test ? 32 : 128;
    int64_t nr = scale == Scale::Test ? 100 : 100000;
    uint64_t seed = 25200101;

    Workload w;
    w.name = "eon";
    w.description = "ray-sphere intersection (252.eon substitute)";
    std::string src = substitute(EON_ASM, {
        {"SEED", int64_t(seed)},
        {"NS", ns},
        {"NSBYTES", ns * 8},
        {"NR", nr},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole = checksumBytes(eonGolden(seed, ns, nr));
    return w;
}

} // namespace hpa::workloads
