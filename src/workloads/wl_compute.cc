/**
 * @file
 * Computation-heavy substitutes: crafty (bitboard fills/popcounts),
 * gap (bignum Fibonacci with carry propagation), twolf
 * (annealing-style cell swaps with branchless abs).
 */

#include <vector>

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace hpa::workloads
{

using detail::checksumBytes;
using detail::lcgStep;
using detail::substitute;

// --------------------------------------------------------------------
// crafty: bitboard operations.
// --------------------------------------------------------------------

namespace
{

const char *CRAFTY_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r13, {ITERS}
steady: clr   r20
citer:  mul   r10, r11, r10
        add   r10, r12, r10
        mov   r10, r1
        mul   r10, r11, r10
        add   r10, r12, r10
        sll   r1, #32, r1
        xor   r1, r10, r1         ; 64-bit board
        clr   r2
pop:    beq   r1, popd
        sub   r1, #1, r3
        and   r1, r3, r1
        add   r2, #1, r2
        br    pop
popd:   add   r20, r2, r20
        mul   r10, r11, r10
        add   r10, r12, r10
        mov   r10, r4
        sll   r4, #8, r5
        bis   r4, r5, r4
        sll   r4, #16, r5
        bis   r4, r5, r4
        sll   r4, #32, r5
        bis   r4, r5, r4          ; north fill
        and   r10, #63, r6
        li    r7, 1
        sll   r7, r6, r7
        sll   r7, #1, r8
        srl   r7, #1, r9
        bis   r8, r9, r8
        sll   r7, #8, r9
        bis   r8, r9, r8
        srl   r7, #8, r9
        bis   r8, r9, r8          ; king-neighbour mask
        and   r4, r8, r4
        srl   r4, #32, r5
        xor   r4, r5, r4
        srl   r4, #16, r5
        xor   r4, r5, r4
        and   r4, #255, r4
        add   r20, r4, r20
        sub   r13, #1, r13
        bne   r13, citer
{EPILOGUE}
)";

uint64_t
craftyGolden(uint64_t seed, int64_t iters)
{
    uint64_t x = seed;
    uint64_t checksum = 0;
    for (int64_t it = 0; it < iters; ++it) {
        uint64_t hi = lcgStep(x);
        uint64_t lo = lcgStep(x);
        uint64_t board = (hi << 32) ^ lo;
        unsigned pop = 0;
        while (board) {
            board &= board - 1;
            ++pop;
        }
        checksum += pop;
        uint64_t fill = lcgStep(x);
        fill |= fill << 8;
        fill |= fill << 16;
        fill |= fill << 32;
        uint64_t sq = x & 63;
        uint64_t bit = uint64_t(1) << sq;
        uint64_t mask = (bit << 1) | (bit >> 1);
        mask |= bit << 8;
        mask |= bit >> 8;
        uint64_t v = fill & mask;
        v ^= v >> 32;
        v ^= v >> 16;
        v &= 0xFF;
        checksum += v;
    }
    return checksum;
}

} // namespace

Workload
makeCrafty(Scale scale)
{
    int64_t iters = scale == Scale::Test ? 600 : 2000000;
    uint64_t seed = 18860321;

    Workload w;
    w.name = "crafty";
    w.description = "bitboard fills and popcounts (186.crafty substitute)";
    std::string src = substitute(CRAFTY_ASM, {
        {"SEED", int64_t(seed)}, {"ITERS", iters},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole = checksumBytes(craftyGolden(seed, iters));
    return w;
}

// --------------------------------------------------------------------
// gap: bignum Fibonaccis — 32-bit limbs in 64-bit words, explicit
// carry chains, plus a sampled limb product per step.
// --------------------------------------------------------------------

namespace
{

const char *GAP_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {L}
        la    r1, biga
        la    r2, bigb
        la    r3, bigc
        li    r16, 1
        sll   r16, #32, r16
        sub   r16, #1, r16        ; 0xFFFFFFFF
        clr   r4
ginit:  mul   r10, r11, r10
        add   r10, r12, r10
        and   r10, r16, r8
        s8add r4, r1, r9
        stq   r8, 0(r9)
        mul   r10, r11, r10
        add   r10, r12, r10
        and   r10, r16, r8
        s8add r4, r2, r9
        stq   r8, 0(r9)
        add   r4, #1, r4
        cmplt r4, r6, r8
        bne   r8, ginit
steady: clr   r20
        li    r13, {ITERS}
giter:  ; c = a + b with carry (walking limb pointers)
        clr   r4
        clr   r5                  ; carry
        mov   r1, r17
        mov   r2, r18
        mov   r3, r19
gadd:   ldq   r7, 0(r17)
        ldq   r8, 0(r18)
        lda   r17, 8(r17)
        lda   r18, 8(r18)
        add   r7, r8, r7
        add   r7, r5, r7
        srl   r7, #32, r5
        and   r7, r16, r7
        stq   r7, 0(r19)
        lda   r19, 8(r19)
        add   r4, #1, r4
        cmplt r4, r6, r8
        bne   r8, gadd
        ; checksum ^= c[L-1] + carry; += a[0]*b[0] low
        sub   r6, #1, r4
        s8add r4, r3, r9
        ldq   r7, 0(r9)
        add   r7, r5, r7
        xor   r20, r7, r20
        ldq   r7, 0(r1)
        ldq   r8, 0(r2)
        mul   r7, r8, r7
        and   r7, r16, r7
        add   r20, r7, r20
        ; a <- b ; b <- c (walking pointers)
        clr   r4
        mov   r1, r17
        mov   r2, r18
        mov   r3, r19
gcopy:  ldq   r7, 0(r18)
        stq   r7, 0(r17)
        ldq   r7, 0(r19)
        stq   r7, 0(r18)
        lda   r17, 8(r17)
        lda   r18, 8(r18)
        lda   r19, 8(r19)
        add   r4, #1, r4
        cmplt r4, r6, r8
        bne   r8, gcopy
        sub   r13, #1, r13
        bne   r13, giter
{EPILOGUE}
        .data
        .align 8
biga:   .space {LBYTES}
bigb:   .space {LBYTES}
bigc:   .space {LBYTES}
)";

uint64_t
gapGolden(uint64_t seed, int64_t limbs, int64_t iters)
{
    uint64_t x = seed;
    const uint64_t mask = 0xFFFFFFFFull;
    std::vector<uint64_t> a(limbs), b(limbs), c(limbs);
    for (int64_t i = 0; i < limbs; ++i) {
        a[i] = lcgStep(x) & mask;
        b[i] = lcgStep(x) & mask;
    }
    uint64_t checksum = 0;
    for (int64_t it = 0; it < iters; ++it) {
        uint64_t carry = 0;
        for (int64_t i = 0; i < limbs; ++i) {
            uint64_t t = a[i] + b[i] + carry;
            carry = t >> 32;
            c[i] = t & mask;
        }
        checksum ^= c[limbs - 1] + carry;
        checksum += (a[0] * b[0]) & mask;
        a = b;
        b = c;
    }
    return checksum;
}

} // namespace

Workload
makeGap(Scale scale)
{
    int64_t limbs = scale == Scale::Test ? 32 : 96;
    int64_t iters = scale == Scale::Test ? 60 : 50000;
    uint64_t seed = 25400101;

    Workload w;
    w.name = "gap";
    w.description = "bignum add chains (254.gap substitute)";
    std::string src = substitute(GAP_ASM, {
        {"SEED", int64_t(seed)},
        {"L", limbs},
        {"ITERS", iters},
        {"LBYTES", limbs * 8},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole = checksumBytes(gapGolden(seed, limbs, iters));
    return w;
}

// --------------------------------------------------------------------
// twolf: annealing-style swaps with neighbour wirelength deltas.
// --------------------------------------------------------------------

namespace
{

const char *TWOLF_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {C}             ; number of cells (power of 2)
        li    r16, {CMASK}
        la    r1, posx
        la    r2, posy
        clr   r4
tinit:  mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #255, r8
        s8add r4, r1, r9
        stq   r8, 0(r9)
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #255, r8
        s8add r4, r2, r9
        stq   r8, 0(r9)
        add   r4, #1, r4
        cmplt r4, r6, r8
        bne   r8, tinit
steady: clr   r20
        clr   r19                 ; accepted
        li    r13, {MOVES}
titer:  mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #8, r4
        and   r4, r16, r4         ; i
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #8, r5
        and   r5, r16, r5         ; j
        ; cost of i at pos(i) vs pos(j): dist to neighbour i+1
        add   r4, #1, r7
        and   r7, r16, r7         ; ni
        s8add r4, r1, r9
        ldq   r14, 0(r9)          ; x[i]
        s8add r7, r1, r9
        ldq   r15, 0(r9)          ; x[ni]
        s8add r4, r2, r9
        ldq   r17, 0(r9)          ; y[i]
        s8add r7, r2, r9
        ldq   r18, 0(r9)          ; y[ni]
        ; before = |x[i]-x[ni]| + |y[i]-y[ni]| (branchy abs, as
        ; annealing cost code typically compiles)
        sub   r14, r15, r3
        bge   r3, tpos1
        neg   r3, r3
tpos1:  sub   r17, r18, r7
        sra   r7, #63, r8
        xor   r7, r8, r7
        sub   r7, r8, r7
        add   r3, r7, r3          ; before
        ; after: i takes pos(j)
        s8add r5, r1, r9
        ldq   r21, 0(r9)          ; x[j]
        s8add r5, r2, r9
        ldq   r22, 0(r9)          ; y[j]
        sub   r21, r15, r7
        bge   r7, tpos3
        neg   r7, r7
tpos3:  sub   r22, r18, r15
        sra   r15, #63, r8
        xor   r15, r8, r15
        sub   r15, r8, r15
        add   r7, r15, r7         ; after
        sub   r7, r3, r3          ; delta
        blt   r3, accept
        and   r10, #15, r8
        beq   r8, accept
        br    reject
accept: ; swap pos(i) and pos(j)
        s8add r4, r1, r9
        stq   r21, 0(r9)
        s8add r5, r1, r9
        stq   r14, 0(r9)
        s8add r4, r2, r9
        stq   r22, 0(r9)
        s8add r5, r2, r9
        stq   r17, 0(r9)
        add   r19, #1, r19
reject: add   r20, r3, r20
        sub   r13, #1, r13
        bne   r13, titer
        sll   r19, #16, r19
        add   r20, r19, r20
{EPILOGUE}
        .data
        .align 8
posx:   .space {CBYTES}
posy:   .space {CBYTES}
)";

uint64_t
twolfGolden(uint64_t seed, int64_t cells, int64_t moves)
{
    uint64_t x = seed;
    std::vector<int64_t> px(cells), py(cells);
    for (int64_t i = 0; i < cells; ++i) {
        px[i] = int64_t((lcgStep(x) >> 16) & 0xFF);
        py[i] = int64_t((lcgStep(x) >> 16) & 0xFF);
    }
    uint64_t cmask = uint64_t(cells) - 1;
    uint64_t checksum = 0;
    uint64_t accepted = 0;
    auto iabs = [](int64_t v) { return v < 0 ? -v : v; };
    for (int64_t m = 0; m < moves; ++m) {
        uint64_t i = (lcgStep(x) >> 8) & cmask;
        uint64_t j = (lcgStep(x) >> 8) & cmask;
        uint64_t ni = (i + 1) & cmask;
        int64_t before =
            iabs(px[i] - px[ni]) + iabs(py[i] - py[ni]);
        int64_t after =
            iabs(px[j] - px[ni]) + iabs(py[j] - py[ni]);
        int64_t delta = after - before;
        bool take = delta < 0 || (x & 15) == 0;
        if (take) {
            std::swap(px[i], px[j]);
            std::swap(py[i], py[j]);
            ++accepted;
        }
        checksum += uint64_t(delta);
    }
    checksum += accepted << 16;
    return checksum;
}

} // namespace

Workload
makeTwolf(Scale scale)
{
    int64_t cells = scale == Scale::Test ? 256 : 2048;
    int64_t moves = scale == Scale::Test ? 2000 : 2000000;
    uint64_t seed = 30000101;

    Workload w;
    w.name = "twolf";
    w.description = "annealing cell swaps (300.twolf substitute)";
    std::string src = substitute(TWOLF_ASM, {
        {"SEED", int64_t(seed)},
        {"C", cells},
        {"CMASK", cells - 1},
        {"MOVES", moves},
        {"CBYTES", cells * 8},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole =
            checksumBytes(twolfGolden(seed, cells, moves));
    return w;
}

} // namespace hpa::workloads
