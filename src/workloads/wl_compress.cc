/**
 * @file
 * Compression/text-processing substitutes: bzip (RLE + move-to-front),
 * gzip (LZ77 hash-chain match search), parser (tokenizer + dictionary).
 * Each kernel's golden model mirrors the assembly instruction for
 * instruction so the OUT checksum is predictable.
 */

#include <vector>

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace hpa::workloads
{

using detail::checksumBytes;
using detail::lcgStep;
using detail::substitute;

// --------------------------------------------------------------------
// bzip: run-length encoding + move-to-front over a small alphabet.
// --------------------------------------------------------------------

namespace
{

const char *BZIP_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {N}
        la    r1, buf
        mov   r1, r17
        clr   r2
gen:    mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #255, r8
        srl   r8, #5, r8
        stb   r8, 0(r17)
        lda   r17, 1(r17)
        add   r2, #1, r2
        cmplt r2, r6, r8
        bne   r8, gen
        la    r7, mtf
        clr   r2
mtfi:   add   r7, r2, r9
        stb   r2, 0(r9)
        add   r2, #1, r2
        cmplt r2, #8, r8
        bne   r8, mtfi
steady: clr   r20
        li    r13, {OUTER}
outer:  clr   r2
        mov   r1, r17
        ldbu  r4, 0(r1)
        clr   r5
rle:    ldbu  r3, 0(r17)
        lda   r17, 1(r17)
        cmpeq r3, r4, r8
        beq   r8, flush
        add   r5, #1, r5
        br    rlenext
flush:  add   r4, #1, r8
        nop                       ; alignment-style 2-source nop
        mul   r5, r8, r8
        add   r20, r8, r20
        clr   r14
find:   add   r7, r14, r9
        ldbu  r15, 0(r9)
        cmpeq r15, r4, r8
        bne   r8, found
        add   r14, #1, r14
        br    find
found:  add   r20, r14, r20
shift:  beq   r14, shdone
        sub   r14, #1, r14
        add   r7, r14, r9
        ldbu  r15, 0(r9)
        add   r9, #1, r9
        stb   r15, 0(r9)
        br    shift
shdone: stb   r4, 0(r7)
        mov   r3, r4
        li    r5, 1
rlenext:
        add   r2, #1, r2
        cmplt r2, r6, r8
        bne   r8, rle
        add   r4, #1, r8
        mul   r5, r8, r8
        add   r20, r8, r20
        clr   r2
        mov   r1, r17
mut:    ldbu  r3, 0(r17)
        add   r2, #1, r8
        cmpeq r8, r6, r15
        beq   r15, nowrap
        ldbu  r15, 0(r1)
        br    mixin
nowrap: ldbu  r15, 1(r17)
mixin:  add   r3, r15, r3
        and   r3, #7, r3
        stb   r3, 0(r17)
        lda   r17, 1(r17)
        add   r2, #1, r2
        cmplt r2, r6, r8
        bne   r8, mut
        sub   r13, #1, r13
        bne   r13, outer
{EPILOGUE}
        .data
buf:    .space {N}
mtf:    .space 8
)";

uint64_t
bzipGolden(uint64_t seed, int64_t n, int64_t outer)
{
    uint64_t x = seed;
    std::vector<uint8_t> buf(n);
    for (int64_t i = 0; i < n; ++i)
        buf[i] = static_cast<uint8_t>(((lcgStep(x) >> 16) & 0xFF) >> 5);
    uint8_t mtf[8];
    for (int i = 0; i < 8; ++i)
        mtf[i] = static_cast<uint8_t>(i);

    uint64_t checksum = 0;
    auto flush = [&](uint8_t v, uint64_t run) {
        checksum += run * (uint64_t(v) + 1);
        unsigned idx = 0;
        while (mtf[idx] != v)
            ++idx;
        checksum += idx;
        for (unsigned j = idx; j > 0; --j)
            mtf[j] = mtf[j - 1];
        mtf[0] = v;
    };

    for (int64_t pass = 0; pass < outer; ++pass) {
        uint8_t prev = buf[0];
        uint64_t run = 0;
        for (int64_t i = 0; i < n; ++i) {
            uint8_t cur = buf[i];
            if (cur == prev) {
                ++run;
            } else {
                flush(prev, run);
                prev = cur;
                run = 1;
            }
        }
        // The kernel's end-of-buffer flush adds the run term only
        // (no move-to-front update).
        checksum += run * (uint64_t(prev) + 1);
        for (int64_t i = 0; i < n; ++i)
            buf[i] = static_cast<uint8_t>(
                (buf[i] + buf[(i + 1) % n]) & 7);
    }
    return checksum;
}

} // namespace

Workload
makeBzip(Scale scale)
{
    int64_t n = scale == Scale::Test ? 1024 : 24576;
    int64_t outer = scale == Scale::Test ? 2 : 4000;
    uint64_t seed = 20030609;

    Workload w;
    w.name = "bzip";
    w.description = "RLE + move-to-front coding (256.bzip2 substitute)";
    std::string src = substitute(BZIP_ASM, {
        {"SEED", int64_t(seed)}, {"N", n}, {"OUTER", outer},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole = checksumBytes(bzipGolden(seed, n, outer));
    return w;
}

// --------------------------------------------------------------------
// gzip: LZ77 greedy match search with a hash head table.
// --------------------------------------------------------------------

namespace
{

const char *GZIP_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {N}
        la    r1, buf
        la    r7, head
        mov   r1, r17
        clr   r2
gen:    mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #7, r8
        stb   r8, 0(r17)
        lda   r17, 1(r17)
        add   r2, #1, r2
        cmplt r2, r6, r8
        bne   r8, gen
steady: clr   r20
        li    r13, {OUTER}
outer:  clr   r2                  ; p
        mov   r1, r17             ; walking &b[p]
        sub   r6, #2, r16         ; limit = N-2
ploop:  cmplt r2, r16, r8
        beq   r8, pdone
        ; h = (b[p]<<6) | (b[p+1]<<3) | b[p+2]
        ldbu  r3, 0(r17)
        ldbu  r4, 1(r17)
        ldbu  r5, 2(r17)
        sll   r3, #6, r3
        sll   r4, #3, r4
        bis   r3, r4, r3
        bis   r3, r5, r3
        ; cand = head[h]
        s8add r3, r7, r9
        ldq   r4, 0(r9)
        ; head[h] = p+1
        add   r2, #1, r5
        stq   r5, 0(r9)
        beq   r4, pnext
        sub   r4, #1, r4          ; c
        cmpult r4, r2, r8
        beq   r8, pnext
        ; match length
        clr   r5                  ; l
mloop:  add   r2, r5, r8
        cmplt r8, r6, r9
        beq   r9, mdone
        cmplt r5, #64, r9
        beq   r9, mdone
        add   r1, r8, r9
        ldbu  r14, 0(r9)
        add   r4, r5, r8
        add   r1, r8, r9
        ldbu  r15, 0(r9)
        cmpeq r14, r15, r9
        beq   r9, mdone
        add   r5, #1, r5
        br    mloop
mdone:  add   r20, r5, r20
        nop                       ; alignment-style 2-source nop
pnext:  add   r2, #1, r2
        lda   r17, 1(r17)
        br    ploop
pdone:  ; mutate buffer
        clr   r2
        mov   r1, r17
mut:    ldbu  r3, 0(r17)
        and   r2, #3, r8
        add   r3, r8, r3
        and   r3, #7, r3
        stb   r3, 0(r17)
        lda   r17, 1(r17)
        add   r2, #1, r2
        cmplt r2, r6, r8
        bne   r8, mut
        sub   r13, #1, r13
        bne   r13, outer
{EPILOGUE}
        .data
buf:    .space {N}
        .align 8
head:   .space 4096
)";

uint64_t
gzipGolden(uint64_t seed, int64_t n, int64_t outer)
{
    uint64_t x = seed;
    std::vector<uint8_t> buf(n);
    for (int64_t i = 0; i < n; ++i)
        buf[i] = static_cast<uint8_t>((lcgStep(x) >> 16) & 7);
    std::vector<uint64_t> head(512, 0);
    uint64_t checksum = 0;

    for (int64_t pass = 0; pass < outer; ++pass) {
        for (int64_t p = 0; p < n - 2; ++p) {
            uint64_t h = (uint64_t(buf[p]) << 6)
                | (uint64_t(buf[p + 1]) << 3) | buf[p + 2];
            uint64_t cand = head[h];
            head[h] = uint64_t(p) + 1;
            if (!cand)
                continue;
            uint64_t c = cand - 1;
            if (c >= uint64_t(p))
                continue;
            uint64_t l = 0;
            while (int64_t(p + l) < n && l < 64
                   && buf[c + l] == buf[p + l])
                ++l;
            checksum += l;
        }
        for (int64_t i = 0; i < n; ++i)
            buf[i] = static_cast<uint8_t>((buf[i] + (i & 3)) & 7);
    }
    return checksum;
}

} // namespace

Workload
makeGzip(Scale scale)
{
    int64_t n = scale == Scale::Test ? 1024 : 32768;
    int64_t outer = scale == Scale::Test ? 2 : 3000;
    uint64_t seed = 19770101;

    Workload w;
    w.name = "gzip";
    w.description = "LZ77 hash-chain match search (164.gzip substitute)";
    std::string src = substitute(GZIP_ASM, {
        {"SEED", int64_t(seed)}, {"N", n}, {"OUTER", outer},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole = checksumBytes(gzipGolden(seed, n, outer));
    return w;
}

// --------------------------------------------------------------------
// parser: tokenizer with an open-addressing dictionary.
// --------------------------------------------------------------------

namespace
{

const char *PARSER_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {T}
        li    r16, {HMASK}
        la    r7, tab
        la    r17, cnt
steady: clr   r20
        li    r13, {OUTER}
outer:  clr   r2                  ; char index
        clr   r3                  ; h
        clr   r4                  ; wordlen
tloop:  cmplt r2, r6, r8
        beq   r8, tdone
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r5
        and   r5, #7, r5          ; 0 = space, 1..7 = letters
        beq   r5, space
        mul   r3, #31, r3
        add   r3, r5, r3
        add   r4, #1, r4
        br    tnext
space:  beq   r4, tnext           ; empty word
        sll   r3, #1, r5
        add   r5, #1, r5          ; key (nonzero)
        and   r5, r16, r14        ; idx
        clr   r15                 ; probes
probe:  s8add r14, r7, r9
        ldq   r8, 0(r9)
        beq   r8, insert
        cmpeq r8, r5, r18
        bne   r18, hit
        add   r14, #1, r14
        and   r14, r16, r14
        add   r15, #1, r15
        cmplt r15, #16, r18
        bne   r18, probe
        ; gave up
        add   r20, #16, r20
        br    flushd
insert: stq   r5, 0(r9)
        s8add r14, r17, r9
        li    r8, 1
        stq   r8, 0(r9)
        add   r20, r14, r20
        br    flushd
hit:    s8add r14, r17, r9
        ldq   r8, 0(r9)
        add   r8, #1, r8
        stq   r8, 0(r9)
        add   r20, r14, r20
        add   r20, r8, r20
flushd: clr   r3
        clr   r4
        add   r20, r15, r20
tnext:  add   r2, #1, r2
        br    tloop
tdone:  sub   r13, #1, r13
        bne   r13, outer
{EPILOGUE}
        .data
        .align 8
tab:    .space {TABBYTES}
cnt:    .space {TABBYTES}
)";

uint64_t
parserGolden(uint64_t seed, int64_t t_chars, int64_t outer,
             uint64_t hsize)
{
    uint64_t x = seed;
    std::vector<uint64_t> tab(hsize, 0), cnt(hsize, 0);
    uint64_t checksum = 0;
    uint64_t hmask = hsize - 1;

    for (int64_t pass = 0; pass < outer; ++pass) {
        uint64_t h = 0, wordlen = 0;
        for (int64_t i = 0; i < t_chars; ++i) {
            uint64_t c = (lcgStep(x) >> 16) & 7;
            if (c != 0) {
                h = h * 31 + c;
                ++wordlen;
                continue;
            }
            if (wordlen == 0)
                continue;
            uint64_t key = (h << 1) + 1;
            uint64_t idx = key & hmask;
            uint64_t probes = 0;
            while (true) {
                uint64_t k = tab[idx];
                if (k == 0) {
                    tab[idx] = key;
                    cnt[idx] = 1;
                    checksum += idx;
                    break;
                }
                if (k == key) {
                    ++cnt[idx];
                    checksum += idx + cnt[idx];
                    break;
                }
                idx = (idx + 1) & hmask;
                ++probes;
                if (probes >= 16) {
                    checksum += 16;
                    break;
                }
            }
            h = 0;
            wordlen = 0;
            checksum += probes;
        }
    }
    return checksum;
}

} // namespace

Workload
makeParser(Scale scale)
{
    int64_t t_chars = scale == Scale::Test ? 4096 : 65536;
    int64_t outer = scale == Scale::Test ? 2 : 1500;
    uint64_t hsize = scale == Scale::Test ? 1024 : 4096;
    uint64_t seed = 19990417;

    Workload w;
    w.name = "parser";
    w.description =
        "tokenizer + open-addressing dictionary (197.parser substitute)";
    std::string src = substitute(PARSER_ASM, {
        {"SEED", int64_t(seed)},
        {"T", t_chars},
        {"OUTER", outer},
        {"HMASK", int64_t(hsize - 1)},
        {"TABBYTES", int64_t(hsize * 8)},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole =
            checksumBytes(parserGolden(seed, t_chars, outer, hsize));
    return w;
}

} // namespace hpa::workloads
