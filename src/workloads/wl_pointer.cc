/**
 * @file
 * Pointer/memory-dominated substitutes: gcc (expression-tree constant
 * folding), mcf (Bellman-Ford edge relaxation over a random graph),
 * vortex (object-record transactions with link chasing), vpr
 * (maze-routing BFS wavefront).
 */

#include <vector>

#include "workloads/common.hh"
#include "workloads/workloads.hh"

namespace hpa::workloads
{

using detail::checksumBytes;
using detail::lcgStep;
using detail::substitute;

// --------------------------------------------------------------------
// gcc: iterative bottom-up constant folding of a binary expression
// tree stored as 32-byte nodes {op, left*, right*, val}.
// --------------------------------------------------------------------

namespace
{

const char *GCC_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {N}
        la    r1, nodes
        li    r16, 65535
        ; build
        clr   r2
build:  sll   r2, #5, r9
        add   r1, r9, r9          ; node addr
        sll   r2, #1, r3
        add   r3, #1, r3          ; 2i+1
        cmplt r3, r6, r8
        beq   r8, leaf
        and   r2, #3, r8
        stq   r8, 0(r9)           ; op
        sll   r3, #5, r8
        add   r1, r8, r8
        stq   r8, 8(r9)           ; left ptr
        add   r3, #1, r3          ; 2i+2
        cmplt r3, r6, r8
        beq   r8, onechild
        sll   r3, #5, r8
        add   r1, r8, r8
        stq   r8, 16(r9)
        br    bnext
onechild:
        ldq   r8, 8(r9)
        stq   r8, 16(r9)
        br    bnext
leaf:   mul   r10, r11, r10
        add   r10, r12, r10
        and   r10, r16, r8
        stq   r8, 24(r9)
bnext:  add   r2, #1, r2
        cmplt r2, r6, r8
        bne   r8, build
steady: clr   r20
        li    r13, {OUTER}
        li    r17, {LASTINT}
gouter: ; re-mutate leaves: val = (val + i) & 0xffff
        add   r17, #1, r2
remut:  cmplt r2, r6, r8
        beq   r8, remutd
        sll   r2, #5, r9
        add   r1, r9, r9
        ldq   r8, 24(r9)
        add   r8, r2, r8
        and   r8, r16, r8
        stq   r8, 24(r9)
        add   r2, #1, r2
        br    remut
remutd: ; fold from LASTINT down to 0
        mov   r17, r2
fold:   sll   r2, #5, r9
        add   r1, r9, r9
        ldq   r3, 0(r9)           ; op
        ldq   r4, 8(r9)
        ldq   r4, 24(r4)          ; left val
        ldq   r5, 16(r9)
        ldq   r5, 24(r5)          ; right val
        cmpeq r3, #0, r8
        bne   r8, fadd
        cmpeq r3, #1, r8
        bne   r8, fsub
        cmpeq r3, #2, r8
        bne   r8, fxor
        and   r4, r5, r4
        br    fstore
fadd:   add   r4, r5, r4
        br    fstore
fsub:   sub   r4, r5, r4
        br    fstore
fxor:   xor   r4, r5, r4
fstore: and   r4, r16, r4
        stq   r4, 24(r9)
        beq   r2, folded
        sub   r2, #1, r2
        br    fold
folded: ldq   r8, 24(r1)          ; root val
        xor   r20, r8, r20
        add   r20, #1, r20
        sub   r13, #1, r13
        bne   r13, gouter
{EPILOGUE}
        .data
        .align 8
nodes:  .space {NODEBYTES}
)";

uint64_t
gccGolden(uint64_t seed, int64_t n, int64_t outer)
{
    uint64_t x = seed;
    struct Node
    {
        uint64_t op = 0;
        int64_t left = 0;
        int64_t right = 0;
        uint64_t val = 0;
    };
    std::vector<Node> nodes(n);
    for (int64_t i = 0; i < n; ++i) {
        int64_t l = 2 * i + 1;
        if (l < n) {
            nodes[i].op = uint64_t(i) & 3;
            nodes[i].left = l;
            nodes[i].right = l + 1 < n ? l + 1 : l;
        } else {
            nodes[i].val = lcgStep(x) & 0xFFFF;
        }
    }
    int64_t lastint = (n - 2) / 2;
    uint64_t checksum = 0;
    for (int64_t pass = 0; pass < outer; ++pass) {
        for (int64_t i = lastint + 1; i < n; ++i)
            nodes[i].val = (nodes[i].val + uint64_t(i)) & 0xFFFF;
        for (int64_t i = lastint; i >= 0; --i) {
            uint64_t a = nodes[nodes[i].left].val;
            uint64_t b = nodes[nodes[i].right].val;
            uint64_t v;
            switch (nodes[i].op) {
              case 0: v = a + b; break;
              case 1: v = a - b; break;
              case 2: v = a ^ b; break;
              default: v = a & b; break;
            }
            nodes[i].val = v & 0xFFFF;
        }
        checksum ^= nodes[0].val;
        checksum += 1;
    }
    return checksum;
}

} // namespace

Workload
makeGcc(Scale scale)
{
    int64_t n = scale == Scale::Test ? 511 : 8191;
    int64_t outer = scale == Scale::Test ? 3 : 20000;
    uint64_t seed = 17600115;

    Workload w;
    w.name = "gcc";
    w.description =
        "expression-tree constant folding (176.gcc substitute)";
    std::string src = substitute(GCC_ASM, {
        {"SEED", int64_t(seed)},
        {"N", n},
        {"OUTER", outer},
        {"LASTINT", (n - 2) / 2},
        {"NODEBYTES", n * 32},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole = checksumBytes(gccGolden(seed, n, outer));
    return w;
}

// --------------------------------------------------------------------
// mcf: Bellman-Ford relaxation rounds over a random sparse graph.
// --------------------------------------------------------------------

namespace
{

const char *MCF_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {M}             ; edge records
        li    r16, {NMASK}
        li    r18, {STRIDE}
        la    r1, recs
        la    r4, dist
        ; generate 32-byte edge records {src, dst, w, next}
        mov   r1, r5
        clr   r2
minit:  mul   r10, r11, r10
        add   r10, r12, r10
        and   r10, r16, r8
        stq   r8, 0(r5)           ; src
        mul   r10, r11, r10
        add   r10, r12, r10
        and   r10, r16, r8
        stq   r8, 8(r5)           ; dst
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #255, r8
        add   r8, #1, r8
        stq   r8, 16(r5)          ; w
        add   r2, r18, r8         ; (e + STRIDE) mod M
        cmplt r8, r6, r9
        bne   r9, nmod
        sub   r8, r6, r8
nmod:   sll   r8, #5, r8
        add   r1, r8, r8
        stq   r8, 24(r5)          ; next record pointer
        lda   r5, 32(r5)
        add   r2, #1, r2
        cmplt r2, r6, r8
        bne   r8, minit
        ; dist init
        li    r7, {NN}
        li    r14, 16384
        sll   r14, #16, r14       ; BIG = 1<<30
        mov   r4, r5
        clr   r2
dinit:  stq   r14, 0(r5)
        lda   r5, 8(r5)
        add   r2, #1, r2
        cmplt r2, r7, r8
        bne   r8, dinit
        stq   r31, 0(r4)          ; dist[0] = 0
steady: clr   r20
        li    r13, {ROUNDS}
round:  mov   r1, r5
        clr   r2
relax:  ldq   r8, 0(r5)           ; src
        s8add r8, r4, r9
        ldq   r14, 0(r9)          ; dist[src]
        ldq   r15, 16(r5)         ; w
        add   r14, r15, r14       ; nd
        ldq   r8, 8(r5)           ; dst
        s8add r8, r4, r9
        ldq   r15, 0(r9)          ; dist[dst]
        cmplt r14, r15, r8
        beq   r8, norelax
        stq   r14, 0(r9)
        add   r20, #1, r20        ; relaxations
norelax:
        ldq   r5, 24(r5)          ; serial walk: next record
        add   r2, #1, r2
        cmplt r2, r6, r8
        bne   r8, relax
        sub   r13, #1, r13
        bne   r13, round
        ; checksum += sum(dist)
        mov   r4, r5
        clr   r2
dsum:   ldq   r8, 0(r5)
        lda   r5, 8(r5)
        add   r20, r8, r20
        add   r2, #1, r2
        cmplt r2, r7, r8
        bne   r8, dsum
{EPILOGUE}
        .data
        .align 8
recs:   .space {RECBYTES}
dist:   .space {NBYTES}
)";

uint64_t
mcfGolden(uint64_t seed, int64_t nn, int64_t m, int64_t stride,
          int64_t rounds)
{
    uint64_t x = seed;
    uint64_t nmask = uint64_t(nn) - 1;
    std::vector<uint64_t> esrc(m), edst(m), ew(m);
    for (int64_t e = 0; e < m; ++e) {
        esrc[e] = lcgStep(x) & nmask;
        edst[e] = lcgStep(x) & nmask;
        ew[e] = ((lcgStep(x) >> 16) & 0xFF) + 1;
    }
    std::vector<uint64_t> dist(nn, uint64_t(1) << 30);
    dist[0] = 0;
    uint64_t checksum = 0;
    for (int64_t r = 0; r < rounds; ++r) {
        int64_t e = 0;
        for (int64_t cnt = 0; cnt < m; ++cnt) {
            uint64_t nd = dist[esrc[e]] + ew[e];
            if (nd < dist[edst[e]]) {
                dist[edst[e]] = nd;
                ++checksum;
            }
            e += stride;
            if (e >= m)
                e -= m;
        }
    }
    for (int64_t i = 0; i < nn; ++i)
        checksum += dist[i];
    return checksum;
}

} // namespace

Workload
makeMcf(Scale scale)
{
    int64_t nn = scale == Scale::Test ? 256 : 32768;
    int64_t m = 4 * nn;
    int64_t stride = scale == Scale::Test ? 409 : 26881;
    int64_t rounds = scale == Scale::Test ? 4 : 400;
    uint64_t seed = 18100101;

    Workload w;
    w.name = "mcf";
    w.description =
        "linked-edge Bellman-Ford relaxation (181.mcf substitute)";
    std::string src = substitute(MCF_ASM, {
        {"SEED", int64_t(seed)},
        {"NN", nn},
        {"NMASK", nn - 1},
        {"M", m},
        {"STRIDE", stride},
        {"ROUNDS", rounds},
        {"RECBYTES", m * 32},
        {"NBYTES", nn * 8},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole =
            checksumBytes(mcfGolden(seed, nn, m, stride, rounds));
    return w;
}

// --------------------------------------------------------------------
// vortex: object-record transactions with a link-chasing update.
// --------------------------------------------------------------------

namespace
{

const char *VORTEX_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {R}
        li    r16, {RMASK}
        la    r1, recs
        li    r17, 65535
        clr   r2
vinit:  sll   r2, #6, r9
        add   r1, r9, r9
        stq   r2, 0(r9)           ; id
        mul   r10, r11, r10
        add   r10, r12, r10
        and   r10, r17, r8
        stq   r8, 8(r9)           ; a
        mul   r10, r11, r10
        add   r10, r12, r10
        and   r10, r17, r8
        stq   r8, 16(r9)          ; b
        mul   r10, r11, r10
        add   r10, r12, r10
        and   r10, r17, r8
        stq   r8, 24(r9)          ; c
        mul   r10, r11, r10
        add   r10, r12, r10
        and   r10, r16, r8
        sll   r8, #6, r8
        add   r1, r8, r8
        stq   r8, 32(r9)          ; link
        add   r2, #1, r2
        cmplt r2, r6, r8
        bne   r8, vinit
steady: clr   r20
        mov   r1, r2              ; scan cursor A: first record
        li    r19, {HALFBYTES}
        add   r1, r19, r19        ; scan cursor B: middle record
        li    r21, {RECBYTES}
        add   r1, r21, r21        ; end of record array
        li    r13, {K}            ; iterations; 2 transactions each
vtx:    ; --- transaction at cursor A ---
        ldq   r3, 8(r2)           ; a
        ldq   r5, 24(r2)          ; c
        mul   r3, #3, r4
        add   r4, r5, r4          ; b' = a*3 + c
        srl   r4, #2, r7
        add   r5, r7, r5          ; c' = c + (b' >> 2)
        stq   r4, 16(r2)
        stq   r5, 24(r2)
        ldq   r7, 32(r2)          ; link
        ldq   r8, 8(r7)           ; linked a
        and   r4, #255, r14
        add   r8, r14, r8
        stq   r8, 8(r7)
        and   r4, r17, r14
        add   r20, r14, r20
        lda   r2, 64(r2)
        cmpult r2, r21, r8
        bne   r8, oka
        mov   r1, r2
oka:    ; --- independent transaction at cursor B ---
        ldq   r3, 8(r19)
        ldq   r5, 24(r19)
        mul   r3, #3, r4
        add   r4, r5, r4
        srl   r4, #2, r7
        add   r5, r7, r5
        stq   r4, 16(r19)
        stq   r5, 24(r19)
        ldq   r7, 32(r19)
        ldq   r8, 8(r7)
        and   r4, #255, r14
        add   r8, r14, r8
        stq   r8, 8(r7)
        and   r4, r17, r14
        add   r20, r14, r20
        lda   r19, 64(r19)
        cmpult r19, r21, r8
        bne   r8, okb
        mov   r1, r19
okb:    sub   r13, #1, r13
        bne   r13, vtx
{EPILOGUE}
        .data
        .align 8
recs:   .space {RECBYTES}
)";

uint64_t
vortexGolden(uint64_t seed, int64_t r, int64_t k)
{
    uint64_t x = seed;
    struct Rec
    {
        uint64_t a, b, c;
        int64_t link;
    };
    std::vector<Rec> recs(r);
    uint64_t rmask = uint64_t(r) - 1;
    for (int64_t i = 0; i < r; ++i) {
        recs[i].a = lcgStep(x) & 0xFFFF;
        recs[i].b = lcgStep(x) & 0xFFFF;
        recs[i].c = lcgStep(x) & 0xFFFF;
        recs[i].link = int64_t(lcgStep(x) & rmask);
    }
    uint64_t checksum = 0;
    auto txn = [&](int64_t i) {
        Rec &rec = recs[i];
        uint64_t b2 = rec.a * 3 + rec.c;
        rec.c = rec.c + (b2 >> 2);
        rec.b = b2;
        recs[rec.link].a += b2 & 255;
        checksum += b2 & 0xFFFF;
    };
    int64_t ia = 0, ib = r / 2;
    for (int64_t t = 0; t < k; ++t) {
        txn(ia);
        ia = ia + 1 == r ? 0 : ia + 1;
        txn(ib);
        ib = ib + 1 == r ? 0 : ib + 1;
    }
    return checksum;
}

} // namespace

Workload
makeVortex(Scale scale)
{
    int64_t r = scale == Scale::Test ? 512 : 512;
    int64_t k = scale == Scale::Test ? 2000 : 1500000;
    uint64_t seed = 25500101;

    Workload w;
    w.name = "vortex";
    w.description =
        "object-record transactions (255.vortex substitute)";
    std::string src = substitute(VORTEX_ASM, {
        {"SEED", int64_t(seed)},
        {"R", r},
        {"RMASK", r - 1},
        {"K", k},
        {"HALFBYTES", (r / 2) * 64},
        {"RECBYTES", r * 64},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole = checksumBytes(vortexGolden(seed, r, k));
    return w;
}

// --------------------------------------------------------------------
// vpr: repeated maze-routing BFS over a random-obstacle grid.
// --------------------------------------------------------------------

namespace
{

const char *VPR_ASM = R"(
        li    r11, 1103515245
        li    r12, 12345
        li    r10, {SEED}
        li    r6, {NCELLS}
        li    r16, {GMASK}
        la    r1, obst
        la    r2, dist
        la    r3, queue
        clr   r20
        li    r13, {OUTER}
vouter: ; clear dist, generate obstacles
        clr   r4
vgen:   s8add r4, r2, r9
        stq   r31, 0(r9)
        mul   r10, r11, r10
        add   r10, r12, r10
        srl   r10, #16, r8
        and   r8, #3, r8
        cmpeq r8, #0, r8
        add   r1, r4, r9
        stb   r8, 0(r9)
        add   r4, #1, r4
        cmplt r4, r6, r8
        bne   r8, vgen
        stb   r31, 0(r1)          ; start clear
        stb   r31, 1(r1)          ; keep the source pins open
        li    r8, {G}
        add   r1, r8, r9
        stb   r31, 0(r9)
        sub   r6, #1, r4
        add   r1, r4, r9
        stb   r31, 0(r9)          ; goal clear
steady: ; BFS
        li    r4, 1
        stq   r4, 0(r2)           ; dist[0] = 1
        stq   r31, 0(r3)          ; queue[0] = 0
        clr   r4                  ; qh
        li    r5, 1               ; qt
bfs:    cmplt r4, r5, r8
        beq   r8, bfsd
        s8add r4, r3, r9
        ldq   r7, 0(r9)           ; cur
        add   r4, #1, r4
        s8add r7, r2, r9
        ldq   r14, 0(r9)          ; d
        add   r14, #1, r14        ; nd
        and   r7, r16, r15        ; x
        ; west
        beq   r15, noW
        sub   r7, #1, r17
        add   r1, r17, r9
        ldbu  r8, 0(r9)
        bne   r8, noW
        s8add r17, r2, r9
        ldq   r8, 0(r9)
        bne   r8, noW
        stq   r14, 0(r9)
        s8add r5, r3, r9
        stq   r17, 0(r9)
        add   r5, #1, r5
noW:    ; east
        cmpeq r15, r16, r8
        bne   r8, noE
        add   r7, #1, r17
        add   r1, r17, r9
        ldbu  r8, 0(r9)
        bne   r8, noE
        s8add r17, r2, r9
        ldq   r8, 0(r9)
        bne   r8, noE
        stq   r14, 0(r9)
        s8add r5, r3, r9
        stq   r17, 0(r9)
        add   r5, #1, r5
noE:    ; north (cur - G)
        li    r18, {G}
        sub   r7, r18, r17
        blt   r17, noN
        add   r1, r17, r9
        ldbu  r8, 0(r9)
        bne   r8, noN
        s8add r17, r2, r9
        ldq   r8, 0(r9)
        bne   r8, noN
        stq   r14, 0(r9)
        s8add r5, r3, r9
        stq   r17, 0(r9)
        add   r5, #1, r5
noN:    ; south (cur + G)
        add   r7, r18, r17
        cmplt r17, r6, r8
        beq   r8, noS
        add   r1, r17, r9
        ldbu  r8, 0(r9)
        bne   r8, noS
        s8add r17, r2, r9
        ldq   r8, 0(r9)
        bne   r8, noS
        stq   r14, 0(r9)
        s8add r5, r3, r9
        stq   r17, 0(r9)
        add   r5, #1, r5
noS:    br    bfs
bfsd:   sub   r6, #1, r8
        s8add r8, r2, r9
        ldq   r8, 0(r9)
        add   r20, r8, r20        ; dist to goal
        add   r20, r5, r20        ; + visited count
        sub   r13, #1, r13
        bne   r13, vouter
{EPILOGUE}
        .data
obst:   .space {NCELLS}
        .align 8
dist:   .space {NBYTES}
queue:  .space {NBYTES}
)";

uint64_t
vprGolden(uint64_t seed, int64_t g, int64_t outer)
{
    uint64_t x = seed;
    int64_t n = g * g;
    std::vector<uint8_t> obst(n);
    std::vector<uint64_t> dist(n);
    std::vector<int64_t> queue(n);
    uint64_t checksum = 0;

    for (int64_t pass = 0; pass < outer; ++pass) {
        for (int64_t i = 0; i < n; ++i) {
            dist[i] = 0;
            obst[i] = ((lcgStep(x) >> 16) & 3) == 0 ? 1 : 0;
        }
        obst[0] = 0;
        obst[1] = 0;
        obst[g] = 0;
        obst[n - 1] = 0;
        dist[0] = 1;
        queue[0] = 0;
        int64_t qh = 0, qt = 1;
        while (qh < qt) {
            int64_t cur = queue[qh++];
            uint64_t nd = dist[cur] + 1;
            int64_t cx = cur & (g - 1);
            auto visit = [&](int64_t nb) {
                if (!obst[nb] && dist[nb] == 0) {
                    dist[nb] = nd;
                    queue[qt++] = nb;
                }
            };
            if (cx != 0)
                visit(cur - 1);
            if (cx != g - 1)
                visit(cur + 1);
            if (cur - g >= 0)
                visit(cur - g);
            if (cur + g < n)
                visit(cur + g);
        }
        checksum += dist[n - 1];
        checksum += uint64_t(qt);
    }
    return checksum;
}

} // namespace

Workload
makeVpr(Scale scale)
{
    int64_t g = scale == Scale::Test ? 32 : 256;
    int64_t outer = scale == Scale::Test ? 3 : 500;
    uint64_t seed = 17500101;

    Workload w;
    w.name = "vpr";
    w.description = "maze-routing BFS wavefront (175.vpr substitute)";
    std::string src = substitute(VPR_ASM, {
        {"SEED", int64_t(seed)},
        {"G", g},
        {"GMASK", g - 1},
        {"NCELLS", g * g},
        {"NBYTES", g * g * 8},
        {"OUTER", outer},
        });
    size_t pos = src.find("{EPILOGUE}");
    src.replace(pos, 10, detail::CHECKSUM_EPILOGUE);
    w.program = assembler::assemble(src);
    if (scale == Scale::Test)
        w.expectedConsole = checksumBytes(vprGolden(seed, g, outer));
    return w;
}

} // namespace hpa::workloads
