#include "workloads/workloads.hh"

namespace hpa::workloads
{

const Workload &
WorkloadCache::get(const std::string &name, Scale scale)
{
    Entry *e;
    {
        std::lock_guard<std::mutex> lock(mu_);
        e = &entries_[{name, scale}];
    }
    std::call_once(e->once, [&] { e->w = make(name, scale); });
    return e->w;
}

WorkloadCache &
globalCache()
{
    static WorkloadCache cache;
    return cache;
}

} // namespace hpa::workloads
