#include "workloads/workloads.hh"

namespace hpa::workloads
{

const Workload &
WorkloadCache::get(const std::string &name, Scale scale)
{
    Entry *e;
    {
        std::lock_guard<std::mutex> lock(mu_);
        e = &entries_[{name, scale}];
    }
    std::call_once(e->once, [&] { e->w = make(name, scale); });
    return e->w;
}

const func::CommittedTrace &
WorkloadCache::trace(const std::string &name, Scale scale,
                     uint64_t max_insts, uint64_t fast_forward_pc)
{
    // The program build goes through get() first so the workload
    // entry (and its build-once guarantee) is shared with plain
    // program consumers.
    const Workload &w = get(name, scale);
    TraceEntry *e;
    {
        std::lock_guard<std::mutex> lock(mu_);
        e = &traces_[{name, scale, max_insts, fast_forward_pc}];
    }
    std::call_once(e->once, [&] {
        e->t = std::make_unique<func::CommittedTrace>(
            func::CommittedTrace::capture(w.program, fast_forward_pc,
                                          max_insts));
    });
    return *e->t;
}

WorkloadCache &
globalCache()
{
    static WorkloadCache cache;
    return cache;
}

} // namespace hpa::workloads
