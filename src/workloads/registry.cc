#include "sim/error.hh"
#include "workloads/workloads.hh"

namespace hpa::workloads
{

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "bzip", "crafty", "eon", "gap", "gcc", "gzip",
        "mcf", "parser", "perl", "twolf", "vortex", "vpr",
    };
    return names;
}

Workload
make(const std::string &name, Scale scale)
{
    if (name == "bzip")
        return makeBzip(scale);
    if (name == "crafty")
        return makeCrafty(scale);
    if (name == "eon")
        return makeEon(scale);
    if (name == "gap")
        return makeGap(scale);
    if (name == "gcc")
        return makeGcc(scale);
    if (name == "gzip")
        return makeGzip(scale);
    if (name == "mcf")
        return makeMcf(scale);
    if (name == "parser")
        return makeParser(scale);
    if (name == "perl")
        return makePerl(scale);
    if (name == "twolf")
        return makeTwolf(scale);
    if (name == "vortex")
        return makeVortex(scale);
    if (name == "vpr")
        return makeVpr(scale);
    SimContext ctx;
    ctx.workload = name;
    throw ConfigError("unknown workload: " + name, ctx);
}

std::vector<Workload>
makeAll(Scale scale)
{
    std::vector<Workload> out;
    for (const std::string &n : benchmarkNames())
        out.push_back(make(n, scale));
    return out;
}

} // namespace hpa::workloads
