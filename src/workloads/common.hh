/**
 * @file
 * Shared helpers for workload builders: the LCG both the kernels and
 * their golden models use, checksum emission, and parameter
 * substitution in assembly templates.
 */

#ifndef HPA_WORKLOADS_COMMON_HH
#define HPA_WORKLOADS_COMMON_HH

#include <cstdint>
#include <map>
#include <string>

namespace hpa::workloads::detail
{

/** LCG multiplier shared between asm kernels and golden models. */
constexpr uint64_t LCG_MUL = 1103515245;
/** LCG increment. */
constexpr uint64_t LCG_ADD = 12345;

/** One LCG step (64-bit wraparound, identical to the kernels). */
inline uint64_t
lcgStep(uint64_t &x)
{
    x = x * LCG_MUL + LCG_ADD;
    return x;
}

/** Byte extraction used by the kernels: bits [23:16]. */
inline uint8_t
lcgByte(uint64_t &x)
{
    return static_cast<uint8_t>(lcgStep(x) >> 16);
}

/** The 8 bytes OUT'd by the standard checksum epilogue. */
inline std::string
checksumBytes(uint64_t checksum)
{
    std::string s;
    for (int i = 0; i < 8; ++i)
        s += static_cast<char>((checksum >> (8 * i)) & 0xFF);
    return s;
}

/**
 * Standard checksum epilogue: emits the 8 bytes of r20 (low byte
 * first) and halts. Clobbers r21.
 */
inline const char *CHECKSUM_EPILOGUE = R"(
        li    r21, 8
emit_:  out   r20
        srl   r20, #8, r20
        sub   r21, #1, r21
        bne   r21, emit_
        halt
)";

/** Replace every "{key}" in @p text with the decimal value. */
std::string substitute(std::string text,
                       const std::map<std::string, int64_t> &params);

} // namespace hpa::workloads::detail

#endif // HPA_WORKLOADS_COMMON_HH
