/**
 * @file
 * SPEC CINT2000 substitute workloads (Table 2). Each benchmark is an
 * HPA-ISA assembly kernel chosen to mimic the dominant behaviour of
 * its SPEC counterpart, paired with a C++ golden model that predicts
 * the bytes the kernel emits via OUT — used by the test suite to
 * validate the assembler, emulator and kernels end-to-end.
 *
 * | name   | SPEC benchmark | kernel                                 |
 * |--------|----------------|----------------------------------------|
 * | bzip   | 256.bzip2      | RLE + move-to-front coding             |
 * | crafty | 186.crafty     | bitboard fills and popcounts           |
 * | eon    | 252.eon        | ray-sphere intersection (FP)           |
 * | gap    | 254.gap        | bignum add/multiply                    |
 * | gcc    | 176.gcc        | expression-tree constant folding       |
 * | gzip   | 164.gzip       | LZ77 hash-chain match search           |
 * | mcf    | 181.mcf        | Bellman-Ford edge relaxation           |
 * | parser | 197.parser     | tokenizer + open-addressing dictionary |
 * | perl   | 253.perlbmk    | stack-machine bytecode interpreter     |
 * | twolf  | 300.twolf      | annealing-style cell swaps             |
 * | vortex | 255.vortex     | object-record transactions             |
 * | vpr    | 175.vpr        | maze-routing BFS wavefront             |
 */

#ifndef HPA_WORKLOADS_WORKLOADS_HH
#define HPA_WORKLOADS_WORKLOADS_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "asm/assembler.hh"
#include "func/trace.hh"

namespace hpa::workloads
{

/** Workload size. Test scale finishes quickly and is verified against
 *  the golden model; Full scale provides enough dynamic instructions
 *  for timing measurements. */
enum class Scale
{
    Test,
    Full,
};

/** A built benchmark substitute. */
struct Workload
{
    std::string name;
    std::string description;
    assembler::Program program;
    /** Bytes the program emits via OUT (golden-model prediction). */
    std::string expectedConsole;
};

/** The twelve benchmark names, in Table 2 order. */
const std::vector<std::string> &benchmarkNames();

/** Build one benchmark substitute by name; throws on unknown name. */
Workload make(const std::string &name, Scale scale = Scale::Full);

/** Build all twelve. */
std::vector<Workload> makeAll(Scale scale = Scale::Full);

/**
 * Build-once, thread-safe workload cache. Assembling a full-scale
 * kernel is orders of magnitude slower than looking it up, and the
 * parallel sweep engine hits the same (name, scale) pairs from many
 * worker threads at once: each entry is built exactly once (under a
 * per-entry once_flag, so distinct workloads still build
 * concurrently) and lives for the cache's lifetime — returned
 * references are stable.
 */
class WorkloadCache
{
  public:
    /** Get (building on first use) one workload. */
    const Workload &get(const std::string &name,
                        Scale scale = Scale::Full);

    /**
     * Get (capturing on first use) the committed trace of one
     * workload under a given fast-forward PC and instruction budget
     * — the trace-once half of trace-once/replay-many sweeps. Like
     * get(), each trace is captured exactly once per key under a
     * per-entry once_flag and the returned reference is stable and
     * immutable, so any number of sweep threads can replay it
     * concurrently through core::TraceSource.
     */
    const func::CommittedTrace &trace(const std::string &name,
                                      Scale scale, uint64_t max_insts,
                                      uint64_t fast_forward_pc);

  private:
    struct Entry
    {
        std::once_flag once;
        Workload w;
    };

    /** (name, scale, max_insts, fast_forward_pc). */
    using TraceKey =
        std::tuple<std::string, Scale, uint64_t, uint64_t>;

    struct TraceEntry
    {
        std::once_flag once;
        /** Stable address even if the map's node type changes. */
        std::unique_ptr<func::CommittedTrace> t;
    };

    std::mutex mu_;
    /** Node-stable map: entry addresses survive later insertions. */
    std::map<std::pair<std::string, Scale>, Entry> entries_;
    std::map<TraceKey, TraceEntry> traces_;
};

/** Process-wide shared cache used by the sweep engine and the bench
 *  harnesses (one build of each program per process). */
WorkloadCache &globalCache();

// Individual builders.
Workload makeBzip(Scale scale);
Workload makeCrafty(Scale scale);
Workload makeEon(Scale scale);
Workload makeGap(Scale scale);
Workload makeGcc(Scale scale);
Workload makeGzip(Scale scale);
Workload makeMcf(Scale scale);
Workload makeParser(Scale scale);
Workload makePerl(Scale scale);
Workload makeTwolf(Scale scale);
Workload makeVortex(Scale scale);
Workload makeVpr(Scale scale);

} // namespace hpa::workloads

#endif // HPA_WORKLOADS_WORKLOADS_HH
