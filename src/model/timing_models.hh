/**
 * @file
 * Analytical circuit-delay models for the two structures the
 * half-price architecture narrows, calibrated to the paper's
 * published 0.18µ data points:
 *
 *  - Wakeup-logic delay (Palacharla-style tag drive + match + OR):
 *    a 4-wide, 64-entry scheduler falls from 466 ps with two bus
 *    comparators per entry to 374 ps with one (sequential wakeup),
 *    a 24.6% speedup (Section 3.3).
 *  - Multiported register-file access time (CACTI 3.0-style): a
 *    160-entry file falls from 1.71 ns with 24 ports to 1.36 ns with
 *    16 ports, a 20.5% reduction (Section 4).
 *
 * The models reproduce those calibration points exactly and scale
 * with the structural parameters (entries, comparators, ports) the
 * way the underlying wire/diffusion capacitances do: wakeup-bus delay
 * grows with the capacitance hung on the bus (comparators per entry x
 * entries) plus the bus wire itself; register-file access grows with
 * the array side length, which is proportional to sqrt(entries) times
 * the port-dependent cell pitch.
 */

#ifndef HPA_MODEL_TIMING_MODELS_HH
#define HPA_MODEL_TIMING_MODELS_HH

namespace hpa::model
{

/** Parameters of the wakeup-delay model (picoseconds, 0.18µ). */
struct WakeupDelayModel
{
    /** Fixed delay: select handshake, match OR, latch. */
    double fixed_ps = 200.0;
    /** Per (entry x comparator) diffusion capacitance on the bus. */
    double comparator_ps = 1.4375;
    /** Per-entry wire capacitance of the bus run. */
    double wire_ps = 1.28125;
    /** Reference issue width the constants were extracted at. */
    unsigned ref_issue_width = 4;

    /**
     * Delay of one wakeup-bus broadcast + match.
     * @param entries issue-queue entries
     * @param comparators_per_entry comparators attached to the bus
     *        (2 = conventional, 1 = sequential wakeup fast bus)
     * @param issue_width drives the number of parallel buses; wider
     *        machines lengthen each entry and thus the wire run
     */
    double delayPs(unsigned entries, unsigned comparators_per_entry,
                   unsigned issue_width = 4) const;

    /** Relative speedup of config b over config a: (a-b)/b. */
    double speedup(unsigned entries, unsigned cmp_a, unsigned cmp_b,
                   unsigned issue_width = 4) const;
};

/** Parameters of the register-file access-time model (ns, 0.18µ). */
struct RegfileTimingModel
{
    /** Decoder + sense amp + drive, port independent. */
    double fixed_ns = 0.30;
    /** Wordline/bitline RC per unit of (sqrt(entries) x pitch). */
    double rc_ns = 0.0034594;
    /** Port-independent component of the cell pitch. */
    double pitch_offset = 8.23;

    /**
     * Access time of a register file.
     * @param entries physical registers
     * @param ports total read+write ports (each adds a wordline and
     *        a bitline pair to every cell, growing both dimensions)
     */
    double accessNs(unsigned entries, unsigned ports) const;

    /** Relative access-time reduction going from @p ports_a to
     *  @p ports_b: (a-b)/a. */
    double reduction(unsigned entries, unsigned ports_a,
                     unsigned ports_b) const;

    /**
     * Relative area (arbitrary units): cell area grows quadratically
     * with ports; total area is entries x cell area.
     */
    double area(unsigned entries, unsigned ports) const;
};

} // namespace hpa::model

#endif // HPA_MODEL_TIMING_MODELS_HH
