#include "model/timing_models.hh"

#include <cmath>

namespace hpa::model
{

double
WakeupDelayModel::delayPs(unsigned entries,
                          unsigned comparators_per_entry,
                          unsigned issue_width) const
{
    // Each issue slot adds a broadcast bus; buses run the full height
    // of the window, so the wire run scales with the entry height,
    // which grows with the number of buses routed past each entry.
    double width_scale =
        static_cast<double>(issue_width) / ref_issue_width;
    double load = comparator_ps * entries * comparators_per_entry;
    double wire = wire_ps * entries * width_scale;
    return fixed_ps + load + wire;
}

double
WakeupDelayModel::speedup(unsigned entries, unsigned cmp_a,
                          unsigned cmp_b, unsigned issue_width) const
{
    double a = delayPs(entries, cmp_a, issue_width);
    double b = delayPs(entries, cmp_b, issue_width);
    return (a - b) / b;
}

double
RegfileTimingModel::accessNs(unsigned entries, unsigned ports) const
{
    double side = std::sqrt(static_cast<double>(entries))
        * (static_cast<double>(ports) + pitch_offset);
    return fixed_ns + rc_ns * side;
}

double
RegfileTimingModel::reduction(unsigned entries, unsigned ports_a,
                              unsigned ports_b) const
{
    double a = accessNs(entries, ports_a);
    double b = accessNs(entries, ports_b);
    return (a - b) / a;
}

double
RegfileTimingModel::area(unsigned entries, unsigned ports) const
{
    double pitch = static_cast<double>(ports) + pitch_offset;
    return static_cast<double>(entries) * pitch * pitch;
}

} // namespace hpa::model
