#include "func/emulator.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace hpa::func
{

using isa::Opcode;
using isa::StaticInst;

Emulator::Emulator(const assembler::Program &prog)
    : pc_(prog.entry), codeBase_(prog.codeBase), codeEnd_(prog.codeEnd())
{
    icache_.resize(prog.code.size());
    icacheValid_.assign(prog.code.size(), 0);
    mem_.writeBlock(prog.codeBase, prog.code.data(),
                    prog.code.size() * sizeof(isa::MachInst));
    if (!prog.data.empty())
        mem_.writeBlock(prog.dataBase, prog.data.data(),
                        prog.data.size());
    // Conventional stack: grows down from a region above the data
    // segment's page ceiling.
    ireg_[isa::STACK_REG] =
        static_cast<int64_t>(0x7FF0000ull);
}

void
Emulator::setIntReg(unsigned i, int64_t v)
{
    if (i != isa::INT_ZERO_REG)
        ireg_[i] = v;
}

void
Emulator::setFpReg(unsigned i, double v)
{
    if (i != isa::FP_ZERO_REG)
        freg_[i] = v;
}

isa::StaticInst
Emulator::fetchDecode(uint64_t pc) const
{
    const bool cacheable = pc >= codeBase_ && pc < codeEnd_
        && ((pc - codeBase_) & 3) == 0;
    const size_t idx = cacheable ? size_t((pc - codeBase_) >> 2) : 0;
    if (cacheable && icacheValid_[idx])
        return icache_[idx];

    auto word = static_cast<isa::MachInst>(mem_.read(pc, 4));
    auto si = isa::decode(word);
    if (!si)
        throw EmulationError("illegal instruction at pc 0x"
                             + std::to_string(pc));
    if (cacheable) {
        icache_[idx] = *si;
        icacheValid_[idx] = 1;
    }
    return *si;
}

void
Emulator::writeMem(uint64_t ea, uint64_t val, unsigned size)
{
    mem_.write(ea, val, size);
    // A store into the text segment must drop the covered decoded
    // entries so the next fetch re-decodes from memory.
    if (ea + size > codeBase_ && ea < codeEnd_) {
        uint64_t end = std::min<uint64_t>(ea + size, codeEnd_);
        uint64_t lo = ea > codeBase_ ? (ea - codeBase_) >> 2 : 0;
        uint64_t hi = (end - codeBase_ + 3) >> 2;
        for (uint64_t i = lo; i < hi && i < icacheValid_.size(); ++i)
            icacheValid_[i] = 0;
    }
}

void
Emulator::execOperate(const StaticInst &si)
{
    auto ival = [this](isa::RegIndex r) -> int64_t {
        return r == isa::INT_ZERO_REG ? 0 : ireg_[r];
    };
    auto fval = [this](isa::RegIndex r) -> double {
        return r == isa::FP_ZERO_REG ? 0.0 : freg_[r];
    };

    switch (si.op) {
      // Integer ALU.
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::BIS: case Opcode::XOR: case Opcode::BIC:
      case Opcode::ORNOT: case Opcode::EQV: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::CMPEQ:
      case Opcode::CMPLT: case Opcode::CMPLE: case Opcode::CMPULT:
      case Opcode::CMPULE: case Opcode::S4ADD: case Opcode::S8ADD: {
        int64_t a = ival(si.ra);
        int64_t b = si.useLiteral ? si.literal : ival(si.rb);
        auto ua = static_cast<uint64_t>(a);
        auto ub = static_cast<uint64_t>(b);
        int64_t r = 0;
        switch (si.op) {
          case Opcode::ADD: r = static_cast<int64_t>(ua + ub); break;
          case Opcode::SUB: r = static_cast<int64_t>(ua - ub); break;
          case Opcode::MUL: r = static_cast<int64_t>(ua * ub); break;
          case Opcode::DIV: r = b == 0 ? 0 : a / b; break;
          case Opcode::REM: r = b == 0 ? 0 : a % b; break;
          case Opcode::AND: r = a & b; break;
          case Opcode::BIS: r = a | b; break;
          case Opcode::XOR: r = a ^ b; break;
          case Opcode::BIC: r = a & ~b; break;
          case Opcode::ORNOT: r = a | ~b; break;
          case Opcode::EQV: r = a ^ ~b; break;
          case Opcode::SLL: r = static_cast<int64_t>(ua << (ub & 63));
            break;
          case Opcode::SRL: r = static_cast<int64_t>(ua >> (ub & 63));
            break;
          case Opcode::SRA: r = a >> (ub & 63); break;
          case Opcode::CMPEQ: r = a == b; break;
          case Opcode::CMPLT: r = a < b; break;
          case Opcode::CMPLE: r = a <= b; break;
          case Opcode::CMPULT: r = ua < ub; break;
          case Opcode::CMPULE: r = ua <= ub; break;
          case Opcode::S4ADD: r = static_cast<int64_t>(ua * 4 + ub);
            break;
          case Opcode::S8ADD: r = static_cast<int64_t>(ua * 8 + ub);
            break;
          default: break;
        }
        setIntReg(si.rc, r);
        break;
      }
      // Floating point.
      case Opcode::ADDF:
        setFpReg(si.rc, fval(si.ra) + fval(si.rb));
        break;
      case Opcode::SUBF:
        setFpReg(si.rc, fval(si.ra) - fval(si.rb));
        break;
      case Opcode::MULF:
        setFpReg(si.rc, fval(si.ra) * fval(si.rb));
        break;
      case Opcode::DIVF: {
        double b = fval(si.rb);
        setFpReg(si.rc, b == 0.0 ? 0.0 : fval(si.ra) / b);
        break;
      }
      case Opcode::CMPFEQ:
        setFpReg(si.rc, fval(si.ra) == fval(si.rb) ? 1.0 : 0.0);
        break;
      case Opcode::CMPFLT:
        setFpReg(si.rc, fval(si.ra) < fval(si.rb) ? 1.0 : 0.0);
        break;
      case Opcode::CMPFLE:
        setFpReg(si.rc, fval(si.ra) <= fval(si.rb) ? 1.0 : 0.0);
        break;
      case Opcode::SQRTF: {
        double a = fval(si.ra);
        setFpReg(si.rc, a < 0.0 ? 0.0 : std::sqrt(a));
        break;
      }
      case Opcode::ITOF:
        setFpReg(si.rc, static_cast<double>(ival(si.ra)));
        break;
      case Opcode::FTOI:
        setIntReg(si.rc, static_cast<int64_t>(fval(si.ra)));
        break;
      default:
        throw EmulationError("execOperate: bad opcode");
    }
}

ExecRecord
Emulator::step()
{
    if (halted_)
        throw EmulationError("step() after halt");

    ExecRecord rec;
    rec.pc = pc_;
    StaticInst si = fetchDecode(pc_);
    rec.inst = si;
    uint64_t next = pc_ + 4;

    auto ival = [this](isa::RegIndex r) -> int64_t {
        return r == isa::INT_ZERO_REG ? 0 : ireg_[r];
    };

    switch (si.format()) {
      case isa::Format::Operate:
        execOperate(si);
        break;
      case isa::Format::Memory: {
        int64_t base = ival(si.rb);
        if (si.op == Opcode::LDA) {
            setIntReg(si.ra, base + si.disp);
        } else if (si.op == Opcode::LDAH) {
            setIntReg(si.ra,
                      base + (static_cast<int64_t>(si.disp) << 16));
        } else {
            uint64_t ea = static_cast<uint64_t>(base + si.disp);
            rec.effAddr = ea;
            unsigned size = si.memSize();
            switch (si.op) {
              case Opcode::LDBU:
                setIntReg(si.ra,
                          static_cast<int64_t>(mem_.read(ea, 1)));
                break;
              case Opcode::LDW:
                setIntReg(si.ra, static_cast<int16_t>(mem_.read(ea, 2)));
                break;
              case Opcode::LDL:
                setIntReg(si.ra, static_cast<int32_t>(mem_.read(ea, 4)));
                break;
              case Opcode::LDQ:
                setIntReg(si.ra,
                          static_cast<int64_t>(mem_.read(ea, 8)));
                break;
              case Opcode::LDF: {
                uint64_t bits = mem_.read(ea, 8);
                double d;
                static_assert(sizeof(d) == sizeof(bits));
                std::memcpy(&d, &bits, sizeof(d));
                setFpReg(si.ra, d);
                break;
              }
              case Opcode::STB: case Opcode::STW: case Opcode::STL:
              case Opcode::STQ:
                writeMem(ea, static_cast<uint64_t>(ival(si.ra)),
                         size);
                break;
              case Opcode::STF: {
                double d = si.ra == isa::FP_ZERO_REG
                    ? 0.0 : freg_[si.ra];
                uint64_t bits;
                std::memcpy(&bits, &d, sizeof(bits));
                writeMem(ea, bits, 8);
                break;
              }
              default:
                throw EmulationError("bad memory opcode");
            }
        }
        break;
      }
      case isa::Format::Branch: {
        uint64_t target =
            pc_ + 4 + (static_cast<int64_t>(si.disp) << 2);
        bool taken = false;
        int64_t a = ival(si.ra);
        switch (si.op) {
          case Opcode::BR: case Opcode::BSR:
            setIntReg(si.ra, static_cast<int64_t>(pc_ + 4));
            taken = true;
            break;
          case Opcode::BEQ: taken = a == 0; break;
          case Opcode::BNE: taken = a != 0; break;
          case Opcode::BLT: taken = a < 0; break;
          case Opcode::BLE: taken = a <= 0; break;
          case Opcode::BGT: taken = a > 0; break;
          case Opcode::BGE: taken = a >= 0; break;
          case Opcode::BLBC: taken = (a & 1) == 0; break;
          case Opcode::BLBS: taken = (a & 1) == 1; break;
          default:
            throw EmulationError("bad branch opcode");
        }
        if (taken)
            next = target;
        rec.taken = taken;
        break;
      }
      case isa::Format::Jump: {
        uint64_t target = static_cast<uint64_t>(ival(si.rb)) & ~3ull;
        setIntReg(si.ra, static_cast<int64_t>(pc_ + 4));
        next = target;
        rec.taken = true;
        break;
      }
      case isa::Format::System:
        if (si.op == Opcode::HALT)
            halted_ = true;
        else if (si.op == Opcode::OUT)
            console_ += static_cast<char>(ival(si.ra) & 0xFF);
        break;
    }

    pc_ = next;
    ++icount_;
    rec.nextPc = next;

    if (!halted_ && (pc_ < codeBase_ || pc_ >= codeEnd_))
        throw EmulationError("pc left text section: 0x"
                             + std::to_string(pc_));
    return rec;
}

uint64_t
Emulator::run(uint64_t max_insts)
{
    uint64_t n = 0;
    while (!halted_ && n < max_insts) {
        step();
        ++n;
    }
    return n;
}

} // namespace hpa::func
