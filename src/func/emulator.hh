/**
 * @file
 * Functional emulator for HPA-ISA. Executes an assembled program
 * architecturally and, per retired instruction, produces the dynamic
 * record (next PC, branch outcome, effective address) that drives the
 * timing simulator's committed-path front end.
 */

#ifndef HPA_FUNC_EMULATOR_HH
#define HPA_FUNC_EMULATOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "func/memory.hh"
#include "isa/static_inst.hh"
#include "sim/error.hh"

namespace hpa::func
{

/** Dynamic record of one architecturally executed instruction. */
struct ExecRecord
{
    uint64_t pc = 0;
    uint64_t nextPc = 0;
    isa::StaticInst inst;
    /** Control instruction actually redirected the PC. */
    bool taken = false;
    /** Effective address for memory references. */
    uint64_t effAddr = 0;
};

/** Raised on illegal instructions or runaway execution. Part of the
 *  SimError taxonomy (kind Workload): a kernel that faults during
 *  architectural execution is a workload failure. */
class EmulationError : public std::runtime_error, public SimError
{
  public:
    explicit EmulationError(const std::string &msg)
        : std::runtime_error(msg),
          SimError(ErrorKind::Workload, msg, {})
    {}

    const char *
    what() const noexcept override
    {
        return std::runtime_error::what();
    }
};

/**
 * Architectural-state interpreter. One instruction per step();
 * halts on HALT or when the PC leaves the text section.
 */
class Emulator
{
  public:
    explicit Emulator(const assembler::Program &prog);

    /** Execute one instruction. Must not be called after halted(). */
    ExecRecord step();

    /**
     * Run until HALT or @p max_insts instructions.
     * @return number of instructions executed.
     */
    uint64_t run(uint64_t max_insts);

    bool halted() const { return halted_; }
    uint64_t pc() const { return pc_; }
    uint64_t instCount() const { return icount_; }

    /** Bytes emitted by OUT instructions. */
    const std::string &console() const { return console_; }

    int64_t intReg(unsigned i) const { return ireg_[i]; }
    double fpReg(unsigned i) const { return freg_[i]; }
    void setIntReg(unsigned i, int64_t v);
    void setFpReg(unsigned i, double v);

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }

  private:
    uint64_t pc_;
    std::array<int64_t, isa::NUM_INT_REGS> ireg_{};
    std::array<double, isa::NUM_FP_REGS> freg_{};
    Memory mem_;
    bool halted_ = false;
    uint64_t icount_ = 0;
    std::string console_;

    uint64_t codeBase_;
    uint64_t codeEnd_;

    /** Lazily decoded text segment, one entry per aligned code word:
     *  decode (and the StaticInst::finalize operand-property
     *  precompute) runs once per *static* instruction instead of
     *  once per executed instruction. Stores that overlap the text
     *  segment invalidate the covered entries, so self-modifying
     *  code still re-decodes from memory. */
    mutable std::vector<isa::StaticInst> icache_;
    mutable std::vector<uint8_t> icacheValid_;

    isa::StaticInst fetchDecode(uint64_t pc) const;
    void writeMem(uint64_t ea, uint64_t val, unsigned size);
    void execOperate(const isa::StaticInst &si);
};

} // namespace hpa::func

#endif // HPA_FUNC_EMULATOR_HH
