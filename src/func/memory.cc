#include "func/memory.hh"

#include <cstring>

namespace hpa::func
{

Memory::Page &
Memory::page(uint64_t addr)
{
    uint64_t pn = addr >> PAGE_BITS;
    if (pn == lastWritePageNum_ && lastWritePage_)
        return *lastWritePage_;
    auto [it, inserted] = pages_.try_emplace(pn);
    if (inserted)
        it->second.assign(PAGE_SIZE, 0);
    lastWritePageNum_ = pn;
    lastWritePage_ = &it->second;
    // A rehash may have moved other pages; invalidate the read cache.
    lastReadPageNum_ = ~0ull;
    lastReadPage_ = nullptr;
    return it->second;
}

const Memory::Page *
Memory::pageIfPresent(uint64_t addr) const
{
    uint64_t pn = addr >> PAGE_BITS;
    if (pn == lastReadPageNum_)
        return lastReadPage_;
    auto it = pages_.find(pn);
    const Page *p = it == pages_.end() ? nullptr : &it->second;
    lastReadPageNum_ = pn;
    lastReadPage_ = p;
    return p;
}

uint8_t
Memory::readByte(uint64_t addr) const
{
    const Page *p = pageIfPresent(addr);
    return p ? (*p)[addr & (PAGE_SIZE - 1)] : 0;
}

void
Memory::writeByte(uint64_t addr, uint8_t value)
{
    page(addr)[addr & (PAGE_SIZE - 1)] = value;
}

uint64_t
Memory::read(uint64_t addr, unsigned size) const
{
    uint64_t off = addr & (PAGE_SIZE - 1);
    if (off + size <= PAGE_SIZE) {
        const Page *p = pageIfPresent(addr);
        if (!p)
            return 0;
        uint64_t v = 0;
        std::memcpy(&v, p->data() + off, size);
        return v;
    }
    uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
    return v;
}

void
Memory::write(uint64_t addr, uint64_t value, unsigned size)
{
    uint64_t off = addr & (PAGE_SIZE - 1);
    if (off + size <= PAGE_SIZE) {
        Page &p = page(addr);
        std::memcpy(p.data() + off, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

void
Memory::writeBlock(uint64_t addr, const void *src, size_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(src);
    for (size_t i = 0; i < len; ++i)
        writeByte(addr + i, bytes[i]);
}

} // namespace hpa::func
