#include "func/trace.hh"

namespace hpa::func
{

CommittedTrace
CommittedTrace::capture(const assembler::Program &prog,
                        uint64_t fast_forward_pc, uint64_t max_insts)
{
    CommittedTrace t;
    Emulator emu(prog);

    // Same loop as sim::Simulation's fast-forward: architectural
    // execution only, stopping the first time the PC hits the label.
    if (fast_forward_pc) {
        while (!emu.halted() && emu.pc() != fast_forward_pc) {
            emu.step();
            ++t.fastForwarded_;
        }
    }

    if (max_insts)
        t.records_.reserve(max_insts);

    // Same stop condition as EmulatorSource::next(): halt or budget,
    // checked before each step.
    uint64_t count = 0;
    while (!emu.halted() && (!max_insts || count < max_insts)) {
        ++count;
        t.records_.push_back(emu.step());
    }

    t.console_ = emu.console();
    return t;
}

} // namespace hpa::func
