/**
 * @file
 * Committed-trace capture for trace-once/replay-many sweeps. A
 * CommittedTrace records the exact ExecRecord stream an Emulator
 * would feed the timing core — fast-forward skip, per-instruction
 * dynamic record, console output — once, into one flat immutable
 * record array. Every machine cell of a sweep then replays the
 * shared buffer read-only (core::TraceSource) instead of re-running
 * functional emulation per cell, so assembly, decode and
 * architectural execution are paid once per (workload, budget)
 * instead of once per (workload, budget, machine) — and a batched
 * replay (sim::BatchedSimulation) streams the same records through
 * many machine configs while they are cache-hot.
 */

#ifndef HPA_FUNC_TRACE_HH
#define HPA_FUNC_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "func/emulator.hh"

namespace hpa::func
{

/**
 * Immutable recording of a program's committed dynamic stream.
 *
 * Replay contract: record(0..size()) reproduces, byte for byte, the
 * ExecRecords an EmulatorSource over a fresh Emulator (after the
 * same fast-forward) would return, and size() marks end-of-stream
 * exactly where EmulatorSource::next() would first return null
 * (HALT or the instruction budget, whichever comes first). Records
 * are stored as one contiguous array of ExecRecords, so a replay
 * cursor is a single sequential prefetch stream and record access is
 * a stable pointer — no per-instruction gather, no copies, no shared
 * mutable state: one trace can feed any number of concurrent sweep
 * threads or batched replay lanes.
 */
class CommittedTrace
{
  public:
    /**
     * Functionally execute @p prog and record its committed stream.
     *
     * @param prog assembled program
     * @param fast_forward_pc architecturally execute (without
     *        recording) until the PC first reaches this address —
     *        the same loop sim::Simulation runs. 0 disables.
     * @param max_insts record at most this many instructions
     *        (0 = run to HALT), mirroring EmulatorSource's budget.
     */
    static CommittedTrace capture(const assembler::Program &prog,
                                  uint64_t fast_forward_pc,
                                  uint64_t max_insts);

    /** Recorded instructions (EmulatorSource stream length). */
    size_t size() const { return records_.size(); }

    /** The @p i-th ExecRecord of the stream. The reference is
     *  stable for the lifetime of the trace. */
    const ExecRecord &record(size_t i) const { return records_[i]; }

    /** Instructions skipped by the fast-forward loop. */
    uint64_t fastForwarded() const { return fastForwarded_; }

    /** Console bytes emitted over the whole capture (fast-forward
     *  plus the recorded stream) — what an emulator-backed run's
     *  console holds once the source is drained. */
    const std::string &console() const { return console_; }

    /** Approximate heap footprint, for diagnostics. */
    size_t
    memoryBytes() const
    {
        return records_.capacity() * sizeof(ExecRecord);
    }

  private:
    std::vector<ExecRecord> records_;
    uint64_t fastForwarded_ = 0;
    std::string console_;
};

} // namespace hpa::func

#endif // HPA_FUNC_TRACE_HH
