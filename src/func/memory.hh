/**
 * @file
 * Sparse flat byte-addressable little-endian memory used by the
 * functional emulator (and, for addresses/tags only, by the timing
 * model's cache hierarchy).
 */

#ifndef HPA_FUNC_MEMORY_HH
#define HPA_FUNC_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace hpa::func
{

/** Sparse memory backed by demand-allocated 4 KiB pages. */
class Memory
{
  public:
    static constexpr uint64_t PAGE_BITS = 12;
    static constexpr uint64_t PAGE_SIZE = 1ull << PAGE_BITS;

    uint8_t readByte(uint64_t addr) const;
    void writeByte(uint64_t addr, uint8_t value);

    /** Read @p size (1/2/4/8) bytes little-endian. */
    uint64_t read(uint64_t addr, unsigned size) const;
    /** Write the low @p size bytes of @p value little-endian. */
    void write(uint64_t addr, uint64_t value, unsigned size);

    /** Bulk copy-in used by the program loader. */
    void writeBlock(uint64_t addr, const void *src, size_t len);

    /** Number of currently allocated pages. */
    size_t numPages() const { return pages_.size(); }

  private:
    using Page = std::vector<uint8_t>;

    Page &page(uint64_t addr);
    const Page *pageIfPresent(uint64_t addr) const;

    std::unordered_map<uint64_t, Page> pages_;
    // One-entry lookup caches; hot loops touch one page repeatedly.
    mutable uint64_t lastReadPageNum_ = ~0ull;
    mutable const Page *lastReadPage_ = nullptr;
    uint64_t lastWritePageNum_ = ~0ull;
    Page *lastWritePage_ = nullptr;
};

} // namespace hpa::func

#endif // HPA_FUNC_MEMORY_HH
