
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bpred.cc" "tests/CMakeFiles/test_bpred.dir/test_bpred.cc.o" "gcc" "tests/CMakeFiles/test_bpred.dir/test_bpred.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/hpa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/hpa_func.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hpa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/hpa_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hpa_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/hpa_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hpa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
