# Empty compiler generated dependencies file for test_fu_pool.
# This may be replaced when dependencies are built.
