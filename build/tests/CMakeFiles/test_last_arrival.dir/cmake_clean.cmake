file(REMOVE_RECURSE
  "CMakeFiles/test_last_arrival.dir/test_last_arrival.cc.o"
  "CMakeFiles/test_last_arrival.dir/test_last_arrival.cc.o.d"
  "test_last_arrival"
  "test_last_arrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_last_arrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
