file(REMOVE_RECURSE
  "CMakeFiles/ablation_detect_delay.dir/ablation_detect_delay.cc.o"
  "CMakeFiles/ablation_detect_delay.dir/ablation_detect_delay.cc.o.d"
  "ablation_detect_delay"
  "ablation_detect_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_detect_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
