# Empty dependencies file for ablation_detect_delay.
# This may be replaced when dependencies are built.
