file(REMOVE_RECURSE
  "CMakeFiles/fig2_two_source_format.dir/fig2_two_source_format.cc.o"
  "CMakeFiles/fig2_two_source_format.dir/fig2_two_source_format.cc.o.d"
  "fig2_two_source_format"
  "fig2_two_source_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_two_source_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
