# Empty compiler generated dependencies file for fig2_two_source_format.
# This may be replaced when dependencies are built.
