file(REMOVE_RECURSE
  "CMakeFiles/fig14_sequential_wakeup.dir/fig14_sequential_wakeup.cc.o"
  "CMakeFiles/fig14_sequential_wakeup.dir/fig14_sequential_wakeup.cc.o.d"
  "fig14_sequential_wakeup"
  "fig14_sequential_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sequential_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
