# Empty compiler generated dependencies file for fig14_sequential_wakeup.
# This may be replaced when dependencies are built.
