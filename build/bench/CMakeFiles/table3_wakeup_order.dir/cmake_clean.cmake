file(REMOVE_RECURSE
  "CMakeFiles/table3_wakeup_order.dir/table3_wakeup_order.cc.o"
  "CMakeFiles/table3_wakeup_order.dir/table3_wakeup_order.cc.o.d"
  "table3_wakeup_order"
  "table3_wakeup_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_wakeup_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
