# Empty compiler generated dependencies file for table3_wakeup_order.
# This may be replaced when dependencies are built.
