# Empty dependencies file for fig3_unique_sources.
# This may be replaced when dependencies are built.
