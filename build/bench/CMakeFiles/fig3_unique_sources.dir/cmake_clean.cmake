file(REMOVE_RECURSE
  "CMakeFiles/fig3_unique_sources.dir/fig3_unique_sources.cc.o"
  "CMakeFiles/fig3_unique_sources.dir/fig3_unique_sources.cc.o.d"
  "fig3_unique_sources"
  "fig3_unique_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_unique_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
