file(REMOVE_RECURSE
  "CMakeFiles/fig10_reg_access.dir/fig10_reg_access.cc.o"
  "CMakeFiles/fig10_reg_access.dir/fig10_reg_access.cc.o.d"
  "fig10_reg_access"
  "fig10_reg_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_reg_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
