# Empty dependencies file for fig10_reg_access.
# This may be replaced when dependencies are built.
