file(REMOVE_RECURSE
  "CMakeFiles/fig15_sequential_regfile.dir/fig15_sequential_regfile.cc.o"
  "CMakeFiles/fig15_sequential_regfile.dir/fig15_sequential_regfile.cc.o.d"
  "fig15_sequential_regfile"
  "fig15_sequential_regfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sequential_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
