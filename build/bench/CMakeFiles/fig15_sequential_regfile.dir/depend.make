# Empty dependencies file for fig15_sequential_regfile.
# This may be replaced when dependencies are built.
