# Empty compiler generated dependencies file for ablation_rename.
# This may be replaced when dependencies are built.
