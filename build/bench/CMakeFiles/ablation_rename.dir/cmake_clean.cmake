file(REMOVE_RECURSE
  "CMakeFiles/ablation_rename.dir/ablation_rename.cc.o"
  "CMakeFiles/ablation_rename.dir/ablation_rename.cc.o.d"
  "ablation_rename"
  "ablation_rename.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rename.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
