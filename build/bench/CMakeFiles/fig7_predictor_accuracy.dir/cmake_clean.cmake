file(REMOVE_RECURSE
  "CMakeFiles/fig7_predictor_accuracy.dir/fig7_predictor_accuracy.cc.o"
  "CMakeFiles/fig7_predictor_accuracy.dir/fig7_predictor_accuracy.cc.o.d"
  "fig7_predictor_accuracy"
  "fig7_predictor_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_predictor_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
