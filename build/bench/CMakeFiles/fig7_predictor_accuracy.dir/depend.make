# Empty dependencies file for fig7_predictor_accuracy.
# This may be replaced when dependencies are built.
