# Empty compiler generated dependencies file for ablation_bypass_window.
# This may be replaced when dependencies are built.
