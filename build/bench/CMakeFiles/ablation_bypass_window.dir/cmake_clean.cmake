file(REMOVE_RECURSE
  "CMakeFiles/ablation_bypass_window.dir/ablation_bypass_window.cc.o"
  "CMakeFiles/ablation_bypass_window.dir/ablation_bypass_window.cc.o.d"
  "ablation_bypass_window"
  "ablation_bypass_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bypass_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
