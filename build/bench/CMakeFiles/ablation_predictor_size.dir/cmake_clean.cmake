file(REMOVE_RECURSE
  "CMakeFiles/ablation_predictor_size.dir/ablation_predictor_size.cc.o"
  "CMakeFiles/ablation_predictor_size.dir/ablation_predictor_size.cc.o.d"
  "ablation_predictor_size"
  "ablation_predictor_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_predictor_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
