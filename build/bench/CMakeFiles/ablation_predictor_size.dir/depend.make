# Empty dependencies file for ablation_predictor_size.
# This may be replaced when dependencies are built.
