file(REMOVE_RECURSE
  "CMakeFiles/fig4_ready_at_insert.dir/fig4_ready_at_insert.cc.o"
  "CMakeFiles/fig4_ready_at_insert.dir/fig4_ready_at_insert.cc.o.d"
  "fig4_ready_at_insert"
  "fig4_ready_at_insert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ready_at_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
