# Empty dependencies file for fig4_ready_at_insert.
# This may be replaced when dependencies are built.
