# Empty compiler generated dependencies file for fig16_combined.
# This may be replaced when dependencies are built.
