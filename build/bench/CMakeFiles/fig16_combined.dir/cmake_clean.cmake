file(REMOVE_RECURSE
  "CMakeFiles/fig16_combined.dir/fig16_combined.cc.o"
  "CMakeFiles/fig16_combined.dir/fig16_combined.cc.o.d"
  "fig16_combined"
  "fig16_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
