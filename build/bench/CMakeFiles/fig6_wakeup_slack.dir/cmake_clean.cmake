file(REMOVE_RECURSE
  "CMakeFiles/fig6_wakeup_slack.dir/fig6_wakeup_slack.cc.o"
  "CMakeFiles/fig6_wakeup_slack.dir/fig6_wakeup_slack.cc.o.d"
  "fig6_wakeup_slack"
  "fig6_wakeup_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_wakeup_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
