# Empty dependencies file for fig6_wakeup_slack.
# This may be replaced when dependencies are built.
