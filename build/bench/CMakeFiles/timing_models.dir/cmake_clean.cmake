file(REMOVE_RECURSE
  "CMakeFiles/timing_models.dir/timing_models.cc.o"
  "CMakeFiles/timing_models.dir/timing_models.cc.o.d"
  "timing_models"
  "timing_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
