# Empty compiler generated dependencies file for timing_models.
# This may be replaced when dependencies are built.
