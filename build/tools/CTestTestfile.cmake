# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/hpa_sim" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bench "/root/repo/build/tools/hpa_sim" "--bench" "crafty" "--insts" "20000" "--wakeup" "seq" "--regfile" "seq" "--report")
set_tests_properties(cli_bench PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pipeview "/root/repo/build/tools/hpa_pipeview" "--bench" "crafty" "--insts" "24")
set_tests_properties(cli_pipeview PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_option "/root/repo/build/tools/hpa_sim" "--frobnicate")
set_tests_properties(cli_bad_option PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
