file(REMOVE_RECURSE
  "CMakeFiles/hpa_sim_cli.dir/hpa_sim.cc.o"
  "CMakeFiles/hpa_sim_cli.dir/hpa_sim.cc.o.d"
  "hpa_sim"
  "hpa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
