# Empty dependencies file for hpa_sim_cli.
# This may be replaced when dependencies are built.
