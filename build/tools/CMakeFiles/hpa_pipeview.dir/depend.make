# Empty dependencies file for hpa_pipeview.
# This may be replaced when dependencies are built.
