file(REMOVE_RECURSE
  "CMakeFiles/hpa_pipeview.dir/hpa_pipeview.cc.o"
  "CMakeFiles/hpa_pipeview.dir/hpa_pipeview.cc.o.d"
  "hpa_pipeview"
  "hpa_pipeview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_pipeview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
