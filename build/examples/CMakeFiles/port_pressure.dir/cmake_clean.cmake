file(REMOVE_RECURSE
  "CMakeFiles/port_pressure.dir/port_pressure.cpp.o"
  "CMakeFiles/port_pressure.dir/port_pressure.cpp.o.d"
  "port_pressure"
  "port_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
