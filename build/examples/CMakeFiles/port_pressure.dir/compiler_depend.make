# Empty compiler generated dependencies file for port_pressure.
# This may be replaced when dependencies are built.
