# Empty dependencies file for hpa_core.
# This may be replaced when dependencies are built.
