file(REMOVE_RECURSE
  "libhpa_core.a"
)
