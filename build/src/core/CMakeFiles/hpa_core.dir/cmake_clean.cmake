file(REMOVE_RECURSE
  "CMakeFiles/hpa_core.dir/core.cc.o"
  "CMakeFiles/hpa_core.dir/core.cc.o.d"
  "CMakeFiles/hpa_core.dir/fu_pool.cc.o"
  "CMakeFiles/hpa_core.dir/fu_pool.cc.o.d"
  "CMakeFiles/hpa_core.dir/inst_source.cc.o"
  "CMakeFiles/hpa_core.dir/inst_source.cc.o.d"
  "CMakeFiles/hpa_core.dir/last_arrival.cc.o"
  "CMakeFiles/hpa_core.dir/last_arrival.cc.o.d"
  "libhpa_core.a"
  "libhpa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
