file(REMOVE_RECURSE
  "CMakeFiles/hpa_bpred.dir/bpred.cc.o"
  "CMakeFiles/hpa_bpred.dir/bpred.cc.o.d"
  "libhpa_bpred.a"
  "libhpa_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
