# Empty dependencies file for hpa_bpred.
# This may be replaced when dependencies are built.
