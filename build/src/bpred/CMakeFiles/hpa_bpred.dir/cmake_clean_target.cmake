file(REMOVE_RECURSE
  "libhpa_bpred.a"
)
