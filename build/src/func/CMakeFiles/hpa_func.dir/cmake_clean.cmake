file(REMOVE_RECURSE
  "CMakeFiles/hpa_func.dir/emulator.cc.o"
  "CMakeFiles/hpa_func.dir/emulator.cc.o.d"
  "CMakeFiles/hpa_func.dir/memory.cc.o"
  "CMakeFiles/hpa_func.dir/memory.cc.o.d"
  "libhpa_func.a"
  "libhpa_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
