file(REMOVE_RECURSE
  "libhpa_func.a"
)
