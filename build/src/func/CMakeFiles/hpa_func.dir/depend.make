# Empty dependencies file for hpa_func.
# This may be replaced when dependencies are built.
