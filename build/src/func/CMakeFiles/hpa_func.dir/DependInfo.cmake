
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/func/emulator.cc" "src/func/CMakeFiles/hpa_func.dir/emulator.cc.o" "gcc" "src/func/CMakeFiles/hpa_func.dir/emulator.cc.o.d"
  "/root/repo/src/func/memory.cc" "src/func/CMakeFiles/hpa_func.dir/memory.cc.o" "gcc" "src/func/CMakeFiles/hpa_func.dir/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/hpa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/hpa_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
