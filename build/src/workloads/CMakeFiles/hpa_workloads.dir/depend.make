# Empty dependencies file for hpa_workloads.
# This may be replaced when dependencies are built.
