file(REMOVE_RECURSE
  "libhpa_workloads.a"
)
