file(REMOVE_RECURSE
  "CMakeFiles/hpa_workloads.dir/common.cc.o"
  "CMakeFiles/hpa_workloads.dir/common.cc.o.d"
  "CMakeFiles/hpa_workloads.dir/registry.cc.o"
  "CMakeFiles/hpa_workloads.dir/registry.cc.o.d"
  "CMakeFiles/hpa_workloads.dir/wl_compress.cc.o"
  "CMakeFiles/hpa_workloads.dir/wl_compress.cc.o.d"
  "CMakeFiles/hpa_workloads.dir/wl_compute.cc.o"
  "CMakeFiles/hpa_workloads.dir/wl_compute.cc.o.d"
  "CMakeFiles/hpa_workloads.dir/wl_interp.cc.o"
  "CMakeFiles/hpa_workloads.dir/wl_interp.cc.o.d"
  "CMakeFiles/hpa_workloads.dir/wl_pointer.cc.o"
  "CMakeFiles/hpa_workloads.dir/wl_pointer.cc.o.d"
  "libhpa_workloads.a"
  "libhpa_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
