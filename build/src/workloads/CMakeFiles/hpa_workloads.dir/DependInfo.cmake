
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/common.cc" "src/workloads/CMakeFiles/hpa_workloads.dir/common.cc.o" "gcc" "src/workloads/CMakeFiles/hpa_workloads.dir/common.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/hpa_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/hpa_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/wl_compress.cc" "src/workloads/CMakeFiles/hpa_workloads.dir/wl_compress.cc.o" "gcc" "src/workloads/CMakeFiles/hpa_workloads.dir/wl_compress.cc.o.d"
  "/root/repo/src/workloads/wl_compute.cc" "src/workloads/CMakeFiles/hpa_workloads.dir/wl_compute.cc.o" "gcc" "src/workloads/CMakeFiles/hpa_workloads.dir/wl_compute.cc.o.d"
  "/root/repo/src/workloads/wl_interp.cc" "src/workloads/CMakeFiles/hpa_workloads.dir/wl_interp.cc.o" "gcc" "src/workloads/CMakeFiles/hpa_workloads.dir/wl_interp.cc.o.d"
  "/root/repo/src/workloads/wl_pointer.cc" "src/workloads/CMakeFiles/hpa_workloads.dir/wl_pointer.cc.o" "gcc" "src/workloads/CMakeFiles/hpa_workloads.dir/wl_pointer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/hpa_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hpa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
