file(REMOVE_RECURSE
  "CMakeFiles/hpa_sim.dir/simulation.cc.o"
  "CMakeFiles/hpa_sim.dir/simulation.cc.o.d"
  "libhpa_sim.a"
  "libhpa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
