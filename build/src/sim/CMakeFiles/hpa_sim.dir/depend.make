# Empty dependencies file for hpa_sim.
# This may be replaced when dependencies are built.
