file(REMOVE_RECURSE
  "libhpa_sim.a"
)
