# Empty dependencies file for hpa_asm.
# This may be replaced when dependencies are built.
