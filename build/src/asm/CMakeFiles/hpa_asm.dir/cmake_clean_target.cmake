file(REMOVE_RECURSE
  "libhpa_asm.a"
)
