file(REMOVE_RECURSE
  "CMakeFiles/hpa_asm.dir/assembler.cc.o"
  "CMakeFiles/hpa_asm.dir/assembler.cc.o.d"
  "libhpa_asm.a"
  "libhpa_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
