file(REMOVE_RECURSE
  "libhpa_model.a"
)
