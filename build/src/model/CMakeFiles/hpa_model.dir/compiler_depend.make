# Empty compiler generated dependencies file for hpa_model.
# This may be replaced when dependencies are built.
