file(REMOVE_RECURSE
  "CMakeFiles/hpa_model.dir/timing_models.cc.o"
  "CMakeFiles/hpa_model.dir/timing_models.cc.o.d"
  "libhpa_model.a"
  "libhpa_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
