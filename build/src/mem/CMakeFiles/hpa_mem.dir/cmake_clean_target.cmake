file(REMOVE_RECURSE
  "libhpa_mem.a"
)
