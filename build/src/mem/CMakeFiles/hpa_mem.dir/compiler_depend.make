# Empty compiler generated dependencies file for hpa_mem.
# This may be replaced when dependencies are built.
