file(REMOVE_RECURSE
  "CMakeFiles/hpa_mem.dir/cache.cc.o"
  "CMakeFiles/hpa_mem.dir/cache.cc.o.d"
  "CMakeFiles/hpa_mem.dir/hierarchy.cc.o"
  "CMakeFiles/hpa_mem.dir/hierarchy.cc.o.d"
  "libhpa_mem.a"
  "libhpa_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
