# Empty compiler generated dependencies file for hpa_stats.
# This may be replaced when dependencies are built.
