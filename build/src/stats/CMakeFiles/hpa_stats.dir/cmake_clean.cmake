file(REMOVE_RECURSE
  "CMakeFiles/hpa_stats.dir/stats.cc.o"
  "CMakeFiles/hpa_stats.dir/stats.cc.o.d"
  "libhpa_stats.a"
  "libhpa_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
