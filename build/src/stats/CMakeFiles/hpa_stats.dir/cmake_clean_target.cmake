file(REMOVE_RECURSE
  "libhpa_stats.a"
)
