file(REMOVE_RECURSE
  "libhpa_isa.a"
)
