file(REMOVE_RECURSE
  "CMakeFiles/hpa_isa.dir/decode.cc.o"
  "CMakeFiles/hpa_isa.dir/decode.cc.o.d"
  "CMakeFiles/hpa_isa.dir/disasm.cc.o"
  "CMakeFiles/hpa_isa.dir/disasm.cc.o.d"
  "CMakeFiles/hpa_isa.dir/opcodes.cc.o"
  "CMakeFiles/hpa_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/hpa_isa.dir/static_inst.cc.o"
  "CMakeFiles/hpa_isa.dir/static_inst.cc.o.d"
  "libhpa_isa.a"
  "libhpa_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
