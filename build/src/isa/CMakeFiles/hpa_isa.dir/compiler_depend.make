# Empty compiler generated dependencies file for hpa_isa.
# This may be replaced when dependencies are built.
