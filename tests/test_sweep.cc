/** @file Sweep-engine tests: parallel results byte-identical to a
 *  serial run for every (machine x workload) pair of the full
 *  reproduction sweep, thread-safe build-once workload cache,
 *  deterministic parallelFor, and the strict environment parsing of
 *  the harness helpers. */

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <vector>
#include <unistd.h>

#include <gtest/gtest.h>

#include "bench_util.hh"
#include "sim/job_store.hh"
#include "sim/shard.hh"
#include "sim/sweep.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<unsigned>> hits(257);
    sim::SweepRunner::parallelFor(hits.size(), 8, [&](size_t i) {
        hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelFor, SingleWorkerRunsInlineInOrder)
{
    std::vector<size_t> order;
    sim::SweepRunner::parallelFor(10, 1, [&](size_t i) {
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 10u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesTheFirstException)
{
    EXPECT_THROW(
        sim::SweepRunner::parallelFor(100, 4,
                                      [](size_t i) {
                                          if (i == 13)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
        std::runtime_error);
}

TEST(ResolveJobs, ExplicitRequestWinsZeroMeansHardware)
{
    EXPECT_EQ(sim::SweepRunner::resolveJobs(3), 3u);
    EXPECT_EQ(sim::SweepRunner::resolveJobs(1), 1u);
    EXPECT_GE(sim::SweepRunner::resolveJobs(0), 1u);
}

TEST(WorkloadCacheTest, ConcurrentGetsReturnTheSameBuiltEntry)
{
    workloads::WorkloadCache cache;
    auto names = workloads::benchmarkNames();
    ASSERT_GE(names.size(), 4u);

    // 16 threads hammer 4 distinct keys; every get of a key must
    // return the identical (build-once) Workload object.
    std::vector<const workloads::Workload *> got(64);
    sim::SweepRunner::parallelFor(got.size(), 16, [&](size_t i) {
        got[i] = &cache.get(names[i % 4], workloads::Scale::Test);
    });
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_NE(got[i], nullptr);
        EXPECT_EQ(got[i], got[i % 4]) << "key " << names[i % 4];
        EXPECT_EQ(got[i]->name, names[i % 4]);
    }
}

TEST(SweepDeterminism, EightWorkersMatchSerialForEveryPair)
{
    // The full reproduction grid at a small budget: every machine of
    // the paper's main figures crossed with every workload. jobs(8)
    // must reproduce jobs(1) bit-for-bit — same IPC doubles, same
    // cycle counts, and a byte-identical statistics report.
    const uint64_t BUDGET = 2000;
    auto machines = sim::reproductionMachines();
    auto names = workloads::benchmarkNames();

    std::vector<sim::SweepJob> jobs;
    for (const auto &m : machines) {
        for (const auto &n : names) {
            sim::SweepJob j;
            j.workload = n;
            j.machine = m;
            j.max_insts = BUDGET;
            jobs.push_back(j);
        }
    }

    workloads::WorkloadCache cache;
    auto serial = sim::SweepRunner(1, &cache).run(jobs);
    auto parallel = sim::SweepRunner(8, &cache).run(jobs);
    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());

    for (size_t i = 0; i < jobs.size(); ++i) {
        std::string what =
            jobs[i].machine.name + "|" + jobs[i].workload;
        ASSERT_NE(serial[i].sim, nullptr) << what;
        ASSERT_NE(parallel[i].sim, nullptr) << what;
        EXPECT_EQ(serial[i].ipc, parallel[i].ipc) << what;
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << what;
        EXPECT_EQ(serial[i].committed, parallel[i].committed) << what;

        std::ostringstream a, b;
        serial[i].sim->report(a);
        parallel[i].sim->report(b);
        EXPECT_EQ(a.str(), b.str()) << what;
    }
}

TEST(SweepDeterminism, PolicyZooMatchesSerialAtEveryBatchSize)
{
    // The post-paper policy machines (dlt wakeup, prefetch regfile,
    // combined) go through the same determinism contract as the
    // reproduction grid: jobs(8) must reproduce jobs(1) bit-for-bit,
    // and batched replay (batch 8) must reproduce solo replay
    // (batch 1) bit-for-bit.
    const uint64_t BUDGET = 2000;
    auto machines = sim::policyZooMachines();
    ASSERT_GE(machines.size(), 4u);
    auto names = workloads::benchmarkNames();

    auto grid = [&](unsigned batch) {
        std::vector<sim::SweepJob> jobs;
        for (const auto &m : machines) {
            for (const auto &n : names) {
                sim::SweepJob j;
                j.workload = n;
                j.machine = m;
                j.max_insts = BUDGET;
                j.batch = batch;
                jobs.push_back(j);
            }
        }
        return jobs;
    };

    workloads::WorkloadCache cache;
    auto serial = sim::SweepRunner(1, &cache).run(grid(1));
    auto parallel = sim::SweepRunner(8, &cache).run(grid(8));
    ASSERT_EQ(serial.size(), parallel.size());

    for (size_t i = 0; i < serial.size(); ++i) {
        std::string what = serial[i].spec.machine.name + "|"
            + serial[i].spec.workload;
        ASSERT_TRUE(serial[i].outcome.ok()) << what;
        ASSERT_TRUE(parallel[i].outcome.ok()) << what;
        EXPECT_EQ(serial[i].ipc, parallel[i].ipc) << what;
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << what;
        EXPECT_EQ(serial[i].committed, parallel[i].committed)
            << what;

        std::ostringstream a, b;
        serial[i].sim->report(a);
        parallel[i].sim->report(b);
        EXPECT_EQ(a.str(), b.str()) << what;
    }
}

TEST(SweepTraceCache, ReplayGridMatchesEmulatorGridByteForByte)
{
    // The trace cache is a pure host-side optimization: every cell
    // of a grid run with job.trace_cache on must reproduce the
    // emulator-driven grid bit for bit — IPC doubles, cycle counts
    // and the full statistics report.
    const uint64_t BUDGET = 2000;
    std::vector<sim::Machine> machines = {
        sim::Machine::base(4),
        sim::Machine::base(8),
        sim::Machine::base(4)
            .wakeup(core::WakeupModel::Sequential)
            .lap(1024),
        sim::Machine::base(4)
            .regfile(core::RegfileModel::SequentialAccess),
    };
    auto names = workloads::benchmarkNames();

    std::vector<sim::SweepJob> traced, live;
    for (const auto &m : machines) {
        for (const auto &n : names) {
            sim::SweepJob j;
            j.workload = n;
            j.machine = m;
            j.max_insts = BUDGET;
            j.trace_cache = true;
            traced.push_back(j);
            j.trace_cache = false;
            live.push_back(j);
        }
    }

    workloads::WorkloadCache cache;
    auto with = sim::SweepRunner(1, &cache).run(traced);
    auto without = sim::SweepRunner(1, &cache).run(live);
    ASSERT_EQ(with.size(), without.size());

    for (size_t i = 0; i < with.size(); ++i) {
        std::string what =
            traced[i].machine.name + "|" + traced[i].workload;
        ASSERT_TRUE(with[i].outcome.ok()) << what;
        ASSERT_TRUE(without[i].outcome.ok()) << what;
        EXPECT_EQ(with[i].ipc, without[i].ipc) << what;
        EXPECT_EQ(with[i].cycles, without[i].cycles) << what;
        EXPECT_EQ(with[i].committed, without[i].committed) << what;
        EXPECT_EQ(with[i].fastForwarded, without[i].fastForwarded)
            << what;

        std::ostringstream a, b;
        with[i].sim->report(a);
        without[i].sim->report(b);
        EXPECT_EQ(a.str(), b.str()) << what;
    }
}

TEST(SweepTraceCache, ConcurrentCellsShareOneTraceDeterministically)
{
    // Many cells of one (workload, budget) group racing on the
    // cache: the first capture must win for everyone (the trace is
    // immutable and shared), and 8 workers must reproduce the
    // 1-worker results exactly even though every cell replays the
    // same buffer concurrently.
    const uint64_t BUDGET = 3000;
    auto machines = sim::reproductionMachines();
    std::vector<sim::SweepJob> jobs;
    for (const auto &m : machines) {
        sim::SweepJob j;
        j.workload = "parser";
        j.machine = m;
        j.max_insts = BUDGET;
        j.trace_cache = true;
        jobs.push_back(j);
    }

    workloads::WorkloadCache serial_cache, parallel_cache;
    auto serial = sim::SweepRunner(1, &serial_cache).run(jobs);
    auto parallel = sim::SweepRunner(8, &parallel_cache).run(jobs);
    ASSERT_EQ(serial.size(), jobs.size());

    for (size_t i = 0; i < jobs.size(); ++i) {
        const std::string &what = jobs[i].machine.name;
        ASSERT_TRUE(serial[i].outcome.ok()) << what;
        ASSERT_TRUE(parallel[i].outcome.ok()) << what;
        EXPECT_EQ(serial[i].ipc, parallel[i].ipc) << what;
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << what;
        EXPECT_EQ(serial[i].committed, parallel[i].committed) << what;
    }
}

TEST(SweepBatching, EveryBatchSizeReproducesSoloBitForBit)
{
    // The batched-replay acceptance gate at unit scale: the full
    // reproduction grid run at batch {auto, 2, 8} must reproduce the
    // batch=1 (solo) run bit for bit — IPC doubles, cycle counts and
    // the complete statistics report — while actually forming
    // multi-lane batches (the diagnostics prove the batched path,
    // not a silent solo fallback, produced the results).
    const uint64_t BUDGET = 2000;
    auto machines = sim::reproductionMachines();
    auto names = workloads::benchmarkNames();
    workloads::WorkloadCache cache;

    auto grid = [&](unsigned batch) {
        std::vector<sim::SweepJob> jobs;
        for (const auto &m : machines)
            for (const auto &n : names) {
                sim::SweepJob j;
                j.workload = n;
                j.machine = m;
                j.max_insts = BUDGET;
                j.batch = batch;
                jobs.push_back(j);
            }
        return jobs;
    };

    sim::SweepRunner solo_runner(1, &cache);
    auto solo = solo_runner.run(grid(1));
    EXPECT_EQ(solo_runner.batchesFormed(), 0u);
    EXPECT_EQ(solo_runner.lanesMax(), 0u);

    for (unsigned batch : {0u, 2u, 8u}) {
        sim::SweepRunner runner(1, &cache);
        auto res = runner.run(grid(batch));
        ASSERT_EQ(res.size(), solo.size());
        EXPECT_GT(runner.batchesFormed(), 0u) << "batch " << batch;
        EXPECT_LE(runner.lanesMax(),
                  size_t(sim::SweepRunner::resolveBatch(batch)))
            << "batch " << batch;
        for (size_t i = 0; i < res.size(); ++i) {
            std::string what = "batch " + std::to_string(batch) + " "
                + solo[i].spec.machine.name + "|"
                + solo[i].spec.workload;
            ASSERT_TRUE(res[i].outcome.ok()) << what;
            EXPECT_EQ(res[i].ipc, solo[i].ipc) << what;
            EXPECT_EQ(res[i].cycles, solo[i].cycles) << what;
            EXPECT_EQ(res[i].committed, solo[i].committed) << what;
            EXPECT_EQ(res[i].fastForwarded, solo[i].fastForwarded)
                << what;

            std::ostringstream a, b;
            res[i].sim->report(a);
            solo[i].sim->report(b);
            EXPECT_EQ(a.str(), b.str()) << what;
        }
    }
}

TEST(SweepBatching, MixedWorkloadGridBatchesPerTraceGroup)
{
    // Cells arrive interleaved across workloads (the natural order
    // of a machine-major sweep); batches must form per trace group
    // anyway, and every result must land at its submission index.
    const uint64_t BUDGET = 2000;
    auto names = workloads::benchmarkNames();
    ASSERT_GE(names.size(), 3u);
    std::vector<sim::Machine> machines = {
        sim::Machine::base(4),
        sim::Machine::base(8),
        sim::Machine::base(4)
            .wakeup(core::WakeupModel::Sequential)
            .lap(1024),
    };

    std::vector<sim::SweepJob> jobs;
    for (const auto &m : machines)
        for (size_t w = 0; w < 3; ++w) {
            sim::SweepJob j;
            j.workload = names[w];
            j.machine = m;
            j.max_insts = BUDGET;
            jobs.push_back(j);
        }

    workloads::WorkloadCache cache;
    sim::SweepRunner solo_runner(1, &cache);
    std::vector<sim::SweepJob> solo_jobs = jobs;
    for (auto &j : solo_jobs)
        j.batch = 1;
    auto solo = solo_runner.run(solo_jobs);

    sim::SweepRunner runner(1, &cache);
    auto res = runner.run(jobs);
    // 3 workload groups of 3 machine lanes each.
    EXPECT_EQ(runner.batchesFormed(), 3u);
    EXPECT_EQ(runner.lanesMax(), 3u);
    for (size_t i = 0; i < res.size(); ++i) {
        std::string what =
            jobs[i].machine.name + "|" + jobs[i].workload;
        ASSERT_TRUE(res[i].outcome.ok()) << what;
        EXPECT_EQ(res[i].spec.workload, jobs[i].workload) << what;
        EXPECT_EQ(res[i].spec.machine.name, jobs[i].machine.name)
            << what;
        EXPECT_EQ(res[i].ipc, solo[i].ipc) << what;
        EXPECT_EQ(res[i].cycles, solo[i].cycles) << what;
    }
}

TEST(SweepBatching, FaultInjectedCellsRunSoloAndLeaveLaneMatesIntact)
{
    // Fault-injected cells are never batchable (RunOutcome isolation
    // needs the solo path), but their lane-mates — cells of the same
    // workload group — still batch, and every surviving cell must be
    // bit-identical to the all-clean batched sweep.
    const uint64_t BUDGET = 2000;
    auto names = workloads::benchmarkNames();
    std::vector<sim::Machine> machines = {
        sim::Machine::base(4),
        sim::Machine::base(8),
    };
    std::vector<sim::SweepJob> jobs;
    for (const auto &m : machines)
        for (size_t w = 0; w < 4; ++w) {
            sim::SweepJob j;
            j.workload = names[w];
            j.machine = m;
            j.max_insts = BUDGET;
            jobs.push_back(j);
        }

    workloads::WorkloadCache cache;
    auto clean = sim::SweepRunner(1, &cache).run(jobs);

    auto faulty = jobs;
    faulty[1].fault = sim::FaultKind::InvariantTrip;
    faulty[1].fault_cycle = 500;
    sim::SweepRunner runner(1, &cache);
    auto res = runner.run(faulty);
    EXPECT_FALSE(sim::SweepRunner::batchable(faulty[1]));
    EXPECT_GT(runner.batchesFormed(), 0u);

    EXPECT_EQ(res[1].outcome.status, sim::RunStatus::Failed);
    EXPECT_EQ(res[1].outcome.errorKind, ErrorKind::Invariant);
    for (size_t i = 0; i < res.size(); ++i) {
        if (i == 1)
            continue;
        std::string what =
            jobs[i].machine.name + "|" + jobs[i].workload;
        ASSERT_TRUE(res[i].outcome.ok()) << what;
        EXPECT_EQ(res[i].ipc, clean[i].ipc) << what;
        EXPECT_EQ(res[i].cycles, clean[i].cycles) << what;
        EXPECT_EQ(res[i].committed, clean[i].committed) << what;
    }
}

TEST(SweepBatching, LaneSetupFailureFallsBackToSoloSemantics)
{
    // A cell whose machine config cannot even construct (non-pow2
    // predictor table, injected under the builder's validation)
    // breaks its batch's setup; the engine must fall back to solo
    // replay for the whole unit — the broken cell reports its
    // ConfigError, lane-mates of the same batch still succeed with
    // reference results.
    const uint64_t BUDGET = 2000;
    auto names = workloads::benchmarkNames();
    std::vector<sim::Machine> machines = {
        sim::Machine::base(4),
        sim::Machine::base(4)
            .wakeup(core::WakeupModel::Sequential)
            .lap(1024),
    };
    std::vector<sim::SweepJob> jobs;
    for (const auto &m : machines)
        for (size_t w = 0; w < 2; ++w) {
            sim::SweepJob j;
            j.workload = names[w];
            j.machine = m;
            j.max_insts = BUDGET;
            jobs.push_back(j);
        }

    workloads::WorkloadCache cache;
    auto clean = sim::SweepRunner(1, &cache).run(jobs);

    auto broken = jobs;
    broken[2].machine.cfg.lap_entries = 1000; // not a power of 2
    auto res = sim::SweepRunner(1, &cache).run(broken);

    EXPECT_EQ(res[2].outcome.status, sim::RunStatus::Failed);
    EXPECT_EQ(res[2].outcome.errorKind, ErrorKind::Config);
    for (size_t i = 0; i < res.size(); ++i) {
        if (i == 2)
            continue;
        std::string what =
            jobs[i].machine.name + "|" + jobs[i].workload;
        ASSERT_TRUE(res[i].outcome.ok()) << what;
        EXPECT_EQ(res[i].ipc, clean[i].ipc) << what;
        EXPECT_EQ(res[i].cycles, clean[i].cycles) << what;
    }
}

TEST(SweepBatching, ResolveBatchAndBatchablePredicate)
{
    EXPECT_EQ(sim::SweepRunner::resolveBatch(0),
              sim::SweepRunner::DEFAULT_BATCH);
    EXPECT_EQ(sim::SweepRunner::resolveBatch(1), 1u);
    EXPECT_EQ(sim::SweepRunner::resolveBatch(5), 5u);

    sim::SweepJob j;
    j.workload = "gzip";
    j.machine = sim::Machine::base(4);
    j.max_insts = 1000;
    EXPECT_TRUE(sim::SweepRunner::batchable(j));

    sim::SweepJob live = j;
    live.trace_cache = false;
    EXPECT_FALSE(sim::SweepRunner::batchable(live));

    sim::SweepJob faulted = j;
    faulted.fault = sim::FaultKind::BlockCommit;
    EXPECT_FALSE(sim::SweepRunner::batchable(faulted));

    sim::SweepJob budgeted = j;
    budgeted.wall_budget_seconds = 10.0;
    EXPECT_FALSE(sim::SweepRunner::batchable(budgeted));
}

/** The small grid the fault-isolation tests run: two machines by
 *  four workloads, tiny budget. */
std::vector<sim::SweepJob>
smallGrid(uint64_t budget = 5000)
{
    std::vector<sim::SweepJob> jobs;
    std::vector<sim::Machine> machines = {
        sim::Machine::base(4),
        sim::Machine::base(4).wakeup(core::WakeupModel::Sequential)
            .lap(1024),
    };
    auto names = workloads::benchmarkNames();
    for (const auto &m : machines)
        for (size_t i = 0; i < 4; ++i) {
            sim::SweepJob j;
            j.workload = names[i];
            j.machine = m;
            j.max_insts = budget;
            jobs.push_back(j);
        }
    return jobs;
}

TEST(SweepFaultIsolation, FailedAndHungCellsLeaveTheRestIntact)
{
    // The acceptance scenario: one cell trips an invariant, one cell
    // deadlocks — every other cell must be bit-identical to the
    // fault-free sweep, and both failures must carry their kind and
    // context.
    workloads::WorkloadCache cache;
    auto clean_jobs = smallGrid();
    auto clean = sim::SweepRunner(4, &cache).run(clean_jobs);

    auto jobs = smallGrid();
    jobs[2].fault = sim::FaultKind::InvariantTrip;
    jobs[2].fault_cycle = 500;
    jobs[5].fault = sim::FaultKind::BlockCommit;
    jobs[5].fault_cycle = 200;
    jobs[5].machine.cfg.watchdog_cycles = 2000;
    auto res = sim::SweepRunner(4, &cache).run(jobs);
    ASSERT_EQ(res.size(), clean.size());

    for (size_t i = 0; i < res.size(); ++i) {
        if (i == 2 || i == 5)
            continue;
        std::string what =
            jobs[i].machine.name + "|" + jobs[i].workload;
        EXPECT_TRUE(res[i].outcome.ok()) << what;
        EXPECT_TRUE(res[i].valid()) << what;
        EXPECT_EQ(res[i].ipc, clean[i].ipc) << what;
        EXPECT_EQ(res[i].cycles, clean[i].cycles) << what;
        EXPECT_EQ(res[i].committed, clean[i].committed) << what;
    }

    EXPECT_EQ(res[2].outcome.status, sim::RunStatus::Failed);
    EXPECT_EQ(res[2].outcome.errorKind, ErrorKind::Invariant);
    EXPECT_FALSE(res[2].valid());
    EXPECT_EQ(res[2].sim, nullptr);
    EXPECT_EQ(res[2].outcome.context.workload, jobs[2].workload);
    EXPECT_NE(res[2].outcome.error.find("[invariant]"),
              std::string::npos)
        << res[2].outcome.error;

    EXPECT_EQ(res[5].outcome.status, sim::RunStatus::Failed);
    EXPECT_EQ(res[5].outcome.errorKind, ErrorKind::Deadlock);
    EXPECT_FALSE(res[5].valid());
    EXPECT_GT(res[5].outcome.context.cycle, 2000u);
    EXPECT_FALSE(res[5].outcome.context.dump.empty());
}

TEST(SweepFaultIsolation, PoisonedWorkloadReportsConfigError)
{
    workloads::WorkloadCache cache;
    auto jobs = smallGrid(2000);
    jobs[0].fault = sim::FaultKind::PoisonWorkload;
    auto res = sim::SweepRunner(2, &cache).run(jobs);
    EXPECT_EQ(res[0].outcome.status, sim::RunStatus::Failed);
    EXPECT_EQ(res[0].outcome.errorKind, ErrorKind::Config);
    EXPECT_NE(res[0].outcome.error.find("unknown workload"),
              std::string::npos)
        << res[0].outcome.error;
    for (size_t i = 1; i < res.size(); ++i)
        EXPECT_TRUE(res[i].outcome.ok()) << i;
}

TEST(SweepFaultIsolation, RetriesRecoverTransientFaults)
{
    workloads::WorkloadCache cache;
    auto jobs = smallGrid(2000);

    // Without retries the flaky cell fails on its single attempt...
    jobs[1].fault = sim::FaultKind::FlakyOnce;
    auto res = sim::SweepRunner(2, &cache).run(jobs);
    EXPECT_EQ(res[1].outcome.status, sim::RunStatus::Failed);
    EXPECT_EQ(res[1].outcome.attempts, 1u);

    // ...with one retry it succeeds on the second, and the result is
    // indistinguishable from an untroubled cell apart from the
    // attempt count.
    jobs[1].max_retries = 1;
    auto retried = sim::SweepRunner(2, &cache).run(jobs);
    EXPECT_TRUE(retried[1].outcome.ok());
    EXPECT_EQ(retried[1].outcome.attempts, 2u);
    EXPECT_TRUE(retried[1].valid());
    EXPECT_GT(retried[1].cycles, 0u);
}

TEST(SweepFaultIsolation, WallBudgetTimesOutRunawayCells)
{
    workloads::WorkloadCache cache;
    auto jobs = smallGrid(200000);
    jobs[3].wall_budget_seconds = 1e-9;
    auto res = sim::SweepRunner(2, &cache).run(jobs);
    EXPECT_EQ(res[3].outcome.status, sim::RunStatus::TimedOut);
    EXPECT_EQ(res[3].outcome.errorKind, ErrorKind::Timeout);
    for (size_t i = 0; i < res.size(); ++i) {
        if (i != 3) {
            EXPECT_TRUE(res[i].outcome.ok()) << i;
        }
    }
}

TEST(RequireAllOk, ThrowsListingEveryFailedCell)
{
    workloads::WorkloadCache cache;
    auto jobs = smallGrid(2000);
    jobs[0].fault = sim::FaultKind::PoisonWorkload;
    auto res = sim::SweepRunner(2, &cache).run(jobs);
    try {
        sim::requireAllOk(res);
        FAIL() << "expected hpa::WorkloadError";
    } catch (const WorkloadError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("1 of 8 sweep cells failed"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find(jobs[0].workload), std::string::npos)
            << what;
    }

    // A clean sweep sails through.
    auto clean = sim::SweepRunner(2, &cache).run(smallGrid(2000));
    EXPECT_NO_THROW(sim::requireAllOk(clean));
}

TEST(InstBudgetEnv, AcceptsOnlyPositiveIntegers)
{
    setenv("HPA_INSTS", "12345", 1);
    EXPECT_EQ(benchutil::instBudget(), 12345u);
    setenv("HPA_INSTS", "garbage", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    setenv("HPA_INSTS", "123abc", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    setenv("HPA_INSTS", "-5", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    setenv("HPA_INSTS", "0", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    setenv("HPA_INSTS", "", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    setenv("HPA_INSTS", "99999999999999999999999999", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    unsetenv("HPA_INSTS");
    EXPECT_EQ(benchutil::instBudget(500), 500u);
}

/** Fresh store directory under TMPDIR, removed on scope exit. */
class TempStoreDir
{
  public:
    explicit TempStoreDir(const std::string &tag)
        : path_((std::filesystem::temp_directory_path()
                 / ("hpa_sweep_store." + std::to_string(::getpid())
                    + "." + tag))
                    .string())
    {
        std::filesystem::remove_all(path_);
    }
    ~TempStoreDir() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::vector<sim::SweepJob>
resumeGrid()
{
    std::vector<sim::SweepJob> jobs;
    for (const auto &m :
         {sim::Machine::base(4), sim::Machine::base(8)}) {
        for (const char *w : {"gzip", "parser", "crafty"}) {
            sim::SweepJob j;
            j.workload = w;
            j.machine = m;
            j.max_insts = 2000;
            jobs.push_back(j);
        }
    }
    return jobs;
}

TEST(SweepStore, ResumeRunsOnlyTheRemainderBitIdentically)
{
    const auto jobs = resumeGrid();

    // Reference: the same grid through the plain (storeless) runner.
    auto reference = sim::SweepRunner(1).run(jobs);
    sim::requireAllOk(reference);

    TempStoreDir dir("resume");
    {
        // "Crashed" first pass: only half the grid reached the
        // journal before the process died.
        sim::JobStore store(dir.path(), "w0");
        std::vector<sim::SweepJob> half(jobs.begin(),
                                        jobs.begin() + 3);
        auto s = sim::runWithStore(store, half, 1);
        EXPECT_EQ(s.executed, 3u);
        EXPECT_EQ(s.resumed, 0u);
    }
    sim::JobStore store(dir.path(), "w1");
    auto s = sim::runWithStore(store, jobs, 1);
    EXPECT_EQ(s.resumed, 3u) << "journaled cells must not re-run";
    EXPECT_EQ(s.executed, jobs.size() - 3);

    // The merged journal reproduces the fresh run bit for bit.
    ASSERT_EQ(store.completed(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const auto *r = store.find(sim::JobStore::specKey(jobs[i]));
        ASSERT_NE(r, nullptr) << jobs[i].workload;
        EXPECT_TRUE(r->ok());
        EXPECT_EQ(r->ipc, reference[i].ipc) << jobs[i].workload;
        EXPECT_EQ(r->cycles, reference[i].cycles);
        EXPECT_EQ(r->committed, reference[i].committed);
        EXPECT_EQ(r->fastForwarded, reference[i].fastForwarded);
    }
}

TEST(SweepStore, CompletedStoreExecutesNothingAndNeverDuplicates)
{
    const auto jobs = resumeGrid();
    TempStoreDir dir("dedupe");
    sim::JobStore store(dir.path(), "w0");
    auto first = sim::runWithStore(store, jobs, 2);
    EXPECT_EQ(first.executed, jobs.size());

    auto again = sim::runWithStore(store, jobs, 2);
    EXPECT_EQ(again.executed, 0u);
    EXPECT_EQ(again.resumed, jobs.size());
    // One record per cell even after two full passes over the grid.
    EXPECT_EQ(store.loadedRecords(), jobs.size());
    EXPECT_EQ(store.completed(), jobs.size());
}

TEST(SweepJobsEnv, AcceptsSmallUnsignedIntegers)
{
    setenv("HPA_JOBS", "4", 1);
    EXPECT_EQ(benchutil::sweepJobs(), 4u);
    setenv("HPA_JOBS", "0", 1);
    EXPECT_EQ(benchutil::sweepJobs(), 0u);
    setenv("HPA_JOBS", "2000", 1); // over the sanity cap
    EXPECT_EQ(benchutil::sweepJobs(), 0u);
    setenv("HPA_JOBS", "four", 1);
    EXPECT_EQ(benchutil::sweepJobs(), 0u);
    setenv("HPA_JOBS", "-1", 1);
    EXPECT_EQ(benchutil::sweepJobs(), 0u);
    unsetenv("HPA_JOBS");
    EXPECT_EQ(benchutil::sweepJobs(), 0u);
}

} // namespace
