/** @file Sweep-engine tests: parallel results byte-identical to a
 *  serial run for every (machine x workload) pair of the full
 *  reproduction sweep, thread-safe build-once workload cache,
 *  deterministic parallelFor, and the strict environment parsing of
 *  the harness helpers. */

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hh"
#include "sim/sweep.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<unsigned>> hits(257);
    sim::SweepRunner::parallelFor(hits.size(), 8, [&](size_t i) {
        hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelFor, SingleWorkerRunsInlineInOrder)
{
    std::vector<size_t> order;
    sim::SweepRunner::parallelFor(10, 1, [&](size_t i) {
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 10u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesTheFirstException)
{
    EXPECT_THROW(
        sim::SweepRunner::parallelFor(100, 4,
                                      [](size_t i) {
                                          if (i == 13)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
        std::runtime_error);
}

TEST(ResolveJobs, ExplicitRequestWinsZeroMeansHardware)
{
    EXPECT_EQ(sim::SweepRunner::resolveJobs(3), 3u);
    EXPECT_EQ(sim::SweepRunner::resolveJobs(1), 1u);
    EXPECT_GE(sim::SweepRunner::resolveJobs(0), 1u);
}

TEST(WorkloadCacheTest, ConcurrentGetsReturnTheSameBuiltEntry)
{
    workloads::WorkloadCache cache;
    auto names = workloads::benchmarkNames();
    ASSERT_GE(names.size(), 4u);

    // 16 threads hammer 4 distinct keys; every get of a key must
    // return the identical (build-once) Workload object.
    std::vector<const workloads::Workload *> got(64);
    sim::SweepRunner::parallelFor(got.size(), 16, [&](size_t i) {
        got[i] = &cache.get(names[i % 4], workloads::Scale::Test);
    });
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_NE(got[i], nullptr);
        EXPECT_EQ(got[i], got[i % 4]) << "key " << names[i % 4];
        EXPECT_EQ(got[i]->name, names[i % 4]);
    }
}

TEST(SweepDeterminism, EightWorkersMatchSerialForEveryPair)
{
    // The full reproduction grid at a small budget: every machine of
    // the paper's main figures crossed with every workload. jobs(8)
    // must reproduce jobs(1) bit-for-bit — same IPC doubles, same
    // cycle counts, and a byte-identical statistics report.
    const uint64_t BUDGET = 2000;
    auto machines = sim::reproductionMachines();
    auto names = workloads::benchmarkNames();

    std::vector<sim::SweepJob> jobs;
    for (const auto &m : machines) {
        for (const auto &n : names) {
            sim::SweepJob j;
            j.workload = n;
            j.machine = m;
            j.max_insts = BUDGET;
            jobs.push_back(j);
        }
    }

    workloads::WorkloadCache cache;
    auto serial = sim::SweepRunner(1, &cache).run(jobs);
    auto parallel = sim::SweepRunner(8, &cache).run(jobs);
    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());

    for (size_t i = 0; i < jobs.size(); ++i) {
        std::string what =
            jobs[i].machine.name + "|" + jobs[i].workload;
        ASSERT_NE(serial[i].sim, nullptr) << what;
        ASSERT_NE(parallel[i].sim, nullptr) << what;
        EXPECT_EQ(serial[i].ipc, parallel[i].ipc) << what;
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << what;
        EXPECT_EQ(serial[i].committed, parallel[i].committed) << what;

        std::ostringstream a, b;
        serial[i].sim->report(a);
        parallel[i].sim->report(b);
        EXPECT_EQ(a.str(), b.str()) << what;
    }
}

TEST(InstBudgetEnv, AcceptsOnlyPositiveIntegers)
{
    setenv("HPA_INSTS", "12345", 1);
    EXPECT_EQ(benchutil::instBudget(), 12345u);
    setenv("HPA_INSTS", "garbage", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    setenv("HPA_INSTS", "123abc", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    setenv("HPA_INSTS", "-5", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    setenv("HPA_INSTS", "0", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    setenv("HPA_INSTS", "", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    setenv("HPA_INSTS", "99999999999999999999999999", 1);
    EXPECT_EQ(benchutil::instBudget(500), 500u);
    unsetenv("HPA_INSTS");
    EXPECT_EQ(benchutil::instBudget(500), 500u);
}

TEST(SweepJobsEnv, AcceptsSmallUnsignedIntegers)
{
    setenv("HPA_JOBS", "4", 1);
    EXPECT_EQ(benchutil::sweepJobs(), 4u);
    setenv("HPA_JOBS", "0", 1);
    EXPECT_EQ(benchutil::sweepJobs(), 0u);
    setenv("HPA_JOBS", "2000", 1); // over the sanity cap
    EXPECT_EQ(benchutil::sweepJobs(), 0u);
    setenv("HPA_JOBS", "four", 1);
    EXPECT_EQ(benchutil::sweepJobs(), 0u);
    setenv("HPA_JOBS", "-1", 1);
    EXPECT_EQ(benchutil::sweepJobs(), 0u);
    unsetenv("HPA_JOBS");
    EXPECT_EQ(benchutil::sweepJobs(), 0u);
}

} // namespace
