/** @file Unit tests for branch prediction structures. */

#include <gtest/gtest.h>

#include "bpred/bpred.hh"
#include "isa/static_inst.hh"

namespace
{

using namespace hpa;
using namespace hpa::bpred;
using isa::Opcode;

TEST(TwoBitTable, InitiallyWeaklyNotTaken)
{
    TwoBitTable t(16);
    EXPECT_FALSE(t.taken(3));
}

TEST(TwoBitTable, SaturatesUpAndDown)
{
    TwoBitTable t(16);
    for (int i = 0; i < 10; ++i)
        t.update(5, true);
    EXPECT_TRUE(t.taken(5));
    t.update(5, false);
    EXPECT_TRUE(t.taken(5));           // hysteresis: 3 -> 2
    t.update(5, false);
    EXPECT_FALSE(t.taken(5));
    for (int i = 0; i < 10; ++i)
        t.update(5, false);
    t.update(5, true);
    EXPECT_FALSE(t.taken(5));          // 0 -> 1
}

TEST(TwoBitTable, IndexWraps)
{
    TwoBitTable t(16);
    t.update(16 + 3, true);
    t.update(16 + 3, true);
    EXPECT_TRUE(t.taken(3));
}

TEST(Btb, MissThenHit)
{
    Btb b(64, 4);
    EXPECT_FALSE(b.lookup(0x1000).has_value());
    b.update(0x1000, 0x2000);
    ASSERT_TRUE(b.lookup(0x1000).has_value());
    EXPECT_EQ(*b.lookup(0x1000), 0x2000u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb b(64, 4);
    b.update(0x1000, 0x2000);
    b.update(0x1000, 0x3000);
    EXPECT_EQ(*b.lookup(0x1000), 0x3000u);
}

TEST(Btb, SetConflictEvictsLru)
{
    Btb b(16, 4);   // 4 sets
    // 5 branches mapping to set 0 (pc>>2 & 3 == 0): pcs 16 bytes apart.
    for (int i = 0; i < 5; ++i)
        b.update(0x1000 + i * 16, 0x2000 + i);
    EXPECT_FALSE(b.lookup(0x1000).has_value());   // oldest evicted
    EXPECT_TRUE(b.lookup(0x1000 + 4 * 16).has_value());
}

TEST(Ras, PushPopLifo)
{
    Ras r(16);
    r.push(1);
    r.push(2);
    EXPECT_EQ(r.pop(), 2u);
    EXPECT_EQ(r.pop(), 1u);
    EXPECT_TRUE(r.empty());
}

TEST(Ras, UnderflowReturnsZero)
{
    Ras r(4);
    EXPECT_EQ(r.pop(), 0u);
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    Ras r(4);
    for (uint64_t i = 1; i <= 6; ++i)
        r.push(i);
    EXPECT_EQ(r.pop(), 6u);
    EXPECT_EQ(r.pop(), 5u);
    EXPECT_EQ(r.pop(), 4u);
    EXPECT_EQ(r.pop(), 3u);
}

// --- Facade. ---

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    auto br = isa::makeBranch(Opcode::BNE, 1, 10);
    uint64_t target = 0x1000 + 4 + 40;
    for (int i = 0; i < 8; ++i)
        bp.resolve(0x1000, br, true, target);
    auto p = bp.predict(0x1000, br);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, target);
}

TEST(BranchPredictor, LearnsAlternatingViaGshare)
{
    BranchPredictor bp;
    auto br = isa::makeBranch(Opcode::BNE, 1, 10);
    uint64_t pc = 0x4000;
    // Strict alternation is history-predictable; after warmup the
    // combined predictor should track it well.
    int correct = 0;
    bool t = false;
    for (int i = 0; i < 400; ++i) {
        auto p = bp.predict(pc, br);
        if (i >= 200 && p.taken == t)
            ++correct;
        bp.resolve(pc, br, t, pc + 44);
        t = !t;
    }
    EXPECT_GT(correct, 180);
}

TEST(BranchPredictor, UnconditionalAlwaysPredictedTaken)
{
    BranchPredictor bp;
    auto br = isa::makeBranch(Opcode::BR, 31, 25);
    auto p = bp.predict(0x1000, br);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x1000u + 4 + 100);
}

TEST(BranchPredictor, IndirectNeedsBtb)
{
    BranchPredictor bp;
    auto j = isa::makeJump(Opcode::JMP, 31, 5);
    auto p = bp.predict(0x2000, j);
    EXPECT_TRUE(p.taken);
    EXPECT_FALSE(p.targetKnown);
    bp.resolve(0x2000, j, true, 0x9000);
    p = bp.predict(0x2000, j);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x9000u);
}

TEST(BranchPredictor, ReturnUsesRasFromCall)
{
    BranchPredictor bp;
    auto call = isa::makeBranch(Opcode::BSR, 26, 100);
    auto ret = isa::makeJump(Opcode::RET, 31, 26);
    bp.predict(0x1000, call);          // pushes 0x1004
    auto p = bp.predict(0x5000, ret);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x1004u);
}

TEST(BranchPredictor, NestedCallsReturnInOrder)
{
    BranchPredictor bp;
    auto call = isa::makeBranch(Opcode::BSR, 26, 1);
    auto ret = isa::makeJump(Opcode::RET, 31, 26);
    bp.predict(0x1000, call);
    bp.predict(0x2000, call);
    EXPECT_EQ(bp.predict(0x3000, ret).target, 0x2004u);
    EXPECT_EQ(bp.predict(0x3100, ret).target, 0x1004u);
}

TEST(BranchPredictor, LookupCounterAdvances)
{
    BranchPredictor bp;
    auto br = isa::makeBranch(Opcode::BEQ, 1, 1);
    bp.predict(0x1000, br);
    bp.predict(0x1000, br);
    EXPECT_EQ(bp.lookups.value(), 2u);
}

TEST(BranchPredictor, ColdConditionalPredictsNotTaken)
{
    BranchPredictor bp;
    auto br = isa::makeBranch(Opcode::BEQ, 1, 1);
    EXPECT_FALSE(bp.predict(0x7000, br).taken);
}

} // namespace
