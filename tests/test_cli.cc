/**
 * @file
 * hpa_sim command-line regression tests, in two layers: the factored
 * parser (tools/sim_options.hh) is unit-tested directly, and the
 * installed binary (path injected as HPA_SIM_BINARY by CMake) is
 * shelled to pin down the observable contract — unknown options are
 * rejected with a clear message and exit code 2, and --stats-json
 * emits a well-formed schema-versioned document.
 */

#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <vector>

#include <gtest/gtest.h>

#include "sim_options.hh"
#include "stats/json.hh"

using namespace hpa;
using tools::SimOptions;
using tools::parseSimOptions;

namespace
{

int
parse(std::vector<std::string> args, SimOptions &opt, std::string &err)
{
    return parseSimOptions(args, opt, err);
}

/** Run a command, capture combined stdout+stderr and the exit code. */
struct ShellResult
{
    int status = -1;
    std::string out;
};

ShellResult
shell(const std::string &cmd)
{
    ShellResult r;
    FILE *p = popen((cmd + " 2>&1").c_str(), "r");
    if (!p)
        return r;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, p)) > 0)
        r.out.append(buf, n);
    int status = pclose(p);
    r.status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

std::string
simBinary()
{
    return HPA_SIM_BINARY;
}

} // namespace

TEST(SimOptionsParse, Defaults)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({}, o, err), 0);
    EXPECT_EQ(o.width, 4u);
    EXPECT_EQ(o.wakeup, core::WakeupModel::Conventional);
    EXPECT_EQ(o.regfile, core::RegfileModel::TwoPort);
    EXPECT_TRUE(o.fastforward);
    EXPECT_FALSE(o.lap_set);
    EXPECT_FALSE(o.machineReadableStdout());
}

TEST(SimOptionsParse, FullMachineLine)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--bench", "gzip", "--width", "8", "--wakeup",
                     "tag-elim", "--regfile", "half-xbar",
                     "--recovery", "sel", "--rename", "half", "--lap",
                     "512", "--bypass", "2", "--insts", "1000"},
                    o, err),
              0)
        << err;
    EXPECT_EQ(o.bench, "gzip");
    EXPECT_EQ(o.width, 8u);
    EXPECT_EQ(o.wakeup, core::WakeupModel::TagElimination);
    EXPECT_EQ(o.regfile, core::RegfileModel::HalfPortCrossbar);
    EXPECT_EQ(o.recovery, core::RecoveryModel::Selective);
    EXPECT_EQ(o.rename, core::RenameModel::HalfPort);
    EXPECT_TRUE(o.lap_set);
    EXPECT_EQ(o.lap, 512u);
    EXPECT_EQ(o.bypass, 2u);
    EXPECT_EQ(o.insts, 1000u);
}

TEST(SimOptionsParse, UnknownOptionIsRejected)
{
    SimOptions o;
    std::string err;
    EXPECT_EQ(parse({"--frobnicate"}, o, err), 2);
    EXPECT_NE(err.find("unknown option"), std::string::npos);
    EXPECT_NE(err.find("--frobnicate"), std::string::npos);
}

TEST(SimOptionsParse, MalformedNumbersAreRejected)
{
    for (const char *bad : {"banana", "12x", "-5", ""}) {
        SimOptions o;
        std::string err;
        EXPECT_EQ(parse({"--insts", bad}, o, err), 2)
            << "accepted --insts " << bad;
        EXPECT_NE(err.find("--insts"), std::string::npos);
    }
}

TEST(SimOptionsParse, MissingValueIsRejected)
{
    SimOptions o;
    std::string err;
    EXPECT_EQ(parse({"--bench"}, o, err), 2);
    EXPECT_EQ(parse({"--insts"}, o, err), 2);
}

TEST(SimOptionsParse, BadModelNamesAreRejected)
{
    SimOptions o;
    std::string err;
    EXPECT_EQ(parse({"--wakeup", "psychic"}, o, err), 2);
    EXPECT_EQ(parse({"--recovery", "maybe"}, o, err), 2);
    EXPECT_EQ(parse({"--rename", "quarter"}, o, err), 2);
    EXPECT_EQ(parse({"--regfile", "3port"}, o, err), 2);
}

TEST(SimOptionsParse, StdoutTargetsSuppressSummary)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--stats-json", "-"}, o, err), 0);
    EXPECT_TRUE(o.machineReadableStdout());
    SimOptions o2;
    ASSERT_EQ(parse({"--stats-json", "out.json"}, o2, err), 0);
    EXPECT_FALSE(o2.machineReadableStdout());
}

TEST(SimOptionsMachine, BuildsLegacyFiveComponentName)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--wakeup", "seq", "--regfile", "seq"}, o, err),
              0);
    sim::Machine m = tools::machineFor(o);
    EXPECT_EQ(m.name,
              "4-wide/seq-wakeup/seq-rf/non-selective/2r-rename");
}

TEST(SimOptionsMachine, LapWithConventionalWakeupThrows)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--lap", "512"}, o, err), 0);
    EXPECT_THROW(tools::machineFor(o), std::invalid_argument);
}

TEST(SimOptionsMachine, WidthOutsideTable1Throws)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--width", "6"}, o, err), 0);
    EXPECT_THROW(tools::machineFor(o), std::invalid_argument);
}

TEST(SimCliBinary, UnknownOptionExitsTwo)
{
    auto r = shell(simBinary() + " --frobnicate");
    EXPECT_EQ(r.status, 2);
    EXPECT_NE(r.out.find("unknown option"), std::string::npos);
}

TEST(SimCliBinary, MalformedNumberExitsTwo)
{
    auto r = shell(simBinary() + " --bench gzip --insts banana");
    EXPECT_EQ(r.status, 2);
    EXPECT_NE(r.out.find("--insts"), std::string::npos);
}

TEST(SimCliBinary, StatsJsonOnStdoutIsSchemaVersioned)
{
    auto r = shell(simBinary()
                   + " --bench gzip --insts 5000 --stats-json -");
    ASSERT_EQ(r.status, 0) << r.out;
    std::string err;
    ASSERT_TRUE(stats::json::validate(r.out, &err))
        << err << "\n" << r.out.substr(0, 400);
    EXPECT_EQ(stats::json::findStringField(r.out, "schema"),
              "hpa.stats.v1");
}

TEST(SimCliBinary, RunJsonCarriesSpecAndMetrics)
{
    auto r = shell(simBinary()
                   + " --bench gzip --insts 5000 --json -");
    ASSERT_EQ(r.status, 0) << r.out;
    std::string err;
    ASSERT_TRUE(stats::json::validate(r.out, &err)) << err;
    EXPECT_EQ(stats::json::findStringField(r.out, "schema"),
              "hpa.run.v1");
    EXPECT_EQ(stats::json::findStringField(r.out, "workload"), "gzip");
    EXPECT_NE(r.out.find("\"ipc\""), std::string::npos);
    EXPECT_NE(r.out.find("\"stats\""), std::string::npos);
}
