/**
 * @file
 * hpa_sim command-line regression tests, in two layers: the factored
 * parser (tools/sim_options.hh) is unit-tested directly, and the
 * installed binary (path injected as HPA_SIM_BINARY by CMake) is
 * shelled to pin down the observable contract — unknown options are
 * rejected with a clear message and exit code 2, and --stats-json
 * emits a well-formed schema-versioned document.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <vector>

#include <gtest/gtest.h>

#include "sim_options.hh"
#include "stats/json.hh"

using namespace hpa;
using tools::SimOptions;
using tools::parseSimOptions;

namespace
{

int
parse(std::vector<std::string> args, SimOptions &opt, std::string &err)
{
    return parseSimOptions(args, opt, err);
}

/** Run a command, capture combined stdout+stderr and the exit code. */
struct ShellResult
{
    int status = -1;
    std::string out;
};

ShellResult
shell(const std::string &cmd)
{
    ShellResult r;
    FILE *p = popen((cmd + " 2>&1").c_str(), "r");
    if (!p)
        return r;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, p)) > 0)
        r.out.append(buf, n);
    int status = pclose(p);
    r.status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

std::string
simBinary()
{
    return HPA_SIM_BINARY;
}

} // namespace

TEST(SimOptionsParse, Defaults)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({}, o, err), 0);
    EXPECT_EQ(o.width, 4u);
    EXPECT_EQ(o.wakeup, core::WakeupModel::Conventional);
    EXPECT_EQ(o.regfile, core::RegfileModel::TwoPort);
    EXPECT_TRUE(o.fastforward);
    EXPECT_FALSE(o.lap_set);
    EXPECT_FALSE(o.machineReadableStdout());
}

TEST(SimOptionsParse, FullMachineLine)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--bench", "gzip", "--width", "8", "--wakeup",
                     "tag-elim", "--regfile", "half-xbar",
                     "--recovery", "sel", "--rename", "half", "--lap",
                     "512", "--bypass", "2", "--insts", "1000"},
                    o, err),
              0)
        << err;
    EXPECT_EQ(o.bench, "gzip");
    EXPECT_EQ(o.width, 8u);
    EXPECT_EQ(o.wakeup, core::WakeupModel::TagElimination);
    EXPECT_EQ(o.regfile, core::RegfileModel::HalfPortCrossbar);
    EXPECT_EQ(o.recovery, core::RecoveryModel::Selective);
    EXPECT_EQ(o.rename, core::RenameModel::HalfPort);
    EXPECT_TRUE(o.lap_set);
    EXPECT_EQ(o.lap, 512u);
    EXPECT_EQ(o.bypass, 2u);
    EXPECT_EQ(o.insts, 1000u);
}

TEST(SimOptionsParse, UnknownOptionIsRejected)
{
    SimOptions o;
    std::string err;
    EXPECT_EQ(parse({"--frobnicate"}, o, err), 2);
    EXPECT_NE(err.find("unknown option"), std::string::npos);
    EXPECT_NE(err.find("--frobnicate"), std::string::npos);
}

TEST(SimOptionsParse, MalformedNumbersAreRejected)
{
    for (const char *bad : {"banana", "12x", "-5", ""}) {
        SimOptions o;
        std::string err;
        EXPECT_EQ(parse({"--insts", bad}, o, err), 2)
            << "accepted --insts " << bad;
        EXPECT_NE(err.find("--insts"), std::string::npos);
    }
}

TEST(SimOptionsParse, OverflowNumericsAreRejected)
{
    // Past uint64_t: strtoull saturates with ERANGE; must not parse.
    for (const char *bad :
         {"18446744073709551616", "99999999999999999999"}) {
        SimOptions o;
        std::string err;
        EXPECT_EQ(parse({"--insts", bad}, o, err), 2)
            << "accepted --insts " << bad;
    }
    // Fits uint64_t but not the unsigned field: must be an error,
    // not a silent truncation (4294967300 would wrap to width 4).
    for (const char *flag : {"--width", "--jobs", "--lap", "--bypass"}) {
        SimOptions o;
        std::string err;
        EXPECT_EQ(parse({flag, "4294967300"}, o, err), 2)
            << flag << " truncated instead of rejecting";
        EXPECT_NE(err.find("out of range"), std::string::npos) << err;
        EXPECT_NE(err.find(flag), std::string::npos) << err;
    }
    // The uint64_t-backed options take the full range.
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--insts", "18446744073709551615"}, o, err), 0)
        << err;
    EXPECT_EQ(o.insts, UINT64_MAX);
}

TEST(SimOptionsParse, DuplicateFlagsAreLastWins)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--insts", "100", "--wakeup", "conv", "--insts",
                     "200", "--wakeup", "seq"},
                    o, err),
              0)
        << err;
    EXPECT_EQ(o.insts, 200u);
    EXPECT_EQ(o.wakeup, core::WakeupModel::Sequential);
}

TEST(SimOptionsParse, EqualsFormMatchesSpaceForm)
{
    SimOptions spaced, eq;
    std::string err;
    ASSERT_EQ(parse({"--bench", "gzip", "--insts", "5000", "--wakeup",
                     "seq", "--width", "8"},
                    spaced, err),
              0)
        << err;
    ASSERT_EQ(parse({"--bench=gzip", "--insts=5000", "--wakeup=seq",
                     "--width=8"},
                    eq, err),
              0)
        << err;
    EXPECT_EQ(eq.bench, spaced.bench);
    EXPECT_EQ(eq.insts, spaced.insts);
    EXPECT_EQ(eq.wakeup, spaced.wakeup);
    EXPECT_EQ(eq.width, spaced.width);
}

TEST(SimOptionsParse, EqualsFormRejectsBadValuesLikeSpaceForm)
{
    SimOptions o;
    std::string err;
    EXPECT_EQ(parse({"--insts=banana"}, o, err), 2);
    EXPECT_NE(err.find("--insts"), std::string::npos) << err;
    // An empty inline value is a malformed number, not "missing".
    EXPECT_EQ(parse({"--insts="}, o, err), 2);
    // Unknown flags report the token as typed, '=' and all.
    EXPECT_EQ(parse({"--frobnicate=7"}, o, err), 2);
    EXPECT_NE(err.find("--frobnicate=7"), std::string::npos) << err;
}

TEST(SimOptionsParse, EqualsFormOnValuelessFlagIsRejected)
{
    for (const char *bad :
         {"--report=yes", "--sweep=1", "--no-fastforward=off"}) {
        SimOptions o;
        std::string err;
        EXPECT_EQ(parse({bad}, o, err), 2) << "accepted " << bad;
        EXPECT_NE(err.find("does not take a value"), std::string::npos)
            << err;
    }
}

TEST(SimOptionsParse, MissingValueIsRejected)
{
    SimOptions o;
    std::string err;
    EXPECT_EQ(parse({"--bench"}, o, err), 2);
    EXPECT_EQ(parse({"--insts"}, o, err), 2);
}

TEST(SimOptionsParse, BadModelNamesAreRejected)
{
    SimOptions o;
    std::string err;
    EXPECT_EQ(parse({"--wakeup", "psychic"}, o, err), 2);
    EXPECT_EQ(parse({"--recovery", "maybe"}, o, err), 2);
    EXPECT_EQ(parse({"--rename", "quarter"}, o, err), 2);
    EXPECT_EQ(parse({"--regfile", "3port"}, o, err), 2);
}

TEST(SimOptionsParse, PolicyFlagsAliasModelFlags)
{
    SimOptions a, b;
    std::string err;
    ASSERT_EQ(parse({"--sched-policy", "dlt", "--rf-policy",
                     "prefetch"},
                    a, err),
              0)
        << err;
    EXPECT_EQ(a.wakeup, core::WakeupModel::LoadDelayTracking);
    EXPECT_EQ(a.regfile, core::RegfileModel::PrefetchBuffer);
    ASSERT_EQ(parse({"--wakeup", "dlt", "--regfile", "prefetch"}, b,
                    err),
              0)
        << err;
    EXPECT_EQ(b.wakeup, a.wakeup);
    EXPECT_EQ(b.regfile, a.regfile);
}

TEST(SimOptionsParse, PolicyListFormSetsBothModels)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--policy", "sched=tag-elim,rf=half-xbar"}, o,
                    err),
              0)
        << err;
    EXPECT_EQ(o.wakeup, core::WakeupModel::TagElimination);
    EXPECT_EQ(o.regfile, core::RegfileModel::HalfPortCrossbar);
    // Single-item form works too.
    SimOptions o2;
    ASSERT_EQ(parse({"--policy", "rf=prefetch"}, o2, err), 0) << err;
    EXPECT_EQ(o2.regfile, core::RegfileModel::PrefetchBuffer);
    EXPECT_EQ(o2.wakeup, core::WakeupModel::Conventional);
}

TEST(SimOptionsParse, UnknownPolicyNamesListTheRegistry)
{
    SimOptions o;
    std::string err;
    EXPECT_EQ(parse({"--sched-policy", "psychic"}, o, err), 2);
    for (const char *name :
         {"conv", "seq", "seq-nopred", "tag-elim", "dlt"})
        EXPECT_NE(err.find(name), std::string::npos)
            << "sched error does not list " << name << ": " << err;
    EXPECT_EQ(parse({"--rf-policy", "3port"}, o, err), 2);
    for (const char *name :
         {"2port", "extra-stage", "half-xbar", "prefetch"})
        EXPECT_NE(err.find(name), std::string::npos)
            << "rf error does not list " << name << ": " << err;
    EXPECT_EQ(parse({"--policy", "sched=psychic"}, o, err), 2);
    EXPECT_NE(err.find("dlt"), std::string::npos) << err;
    EXPECT_EQ(parse({"--policy", "fetch=wide"}, o, err), 2);
    EXPECT_NE(err.find("sched or rf"), std::string::npos) << err;
    EXPECT_EQ(parse({"--policy", "just-a-name"}, o, err), 2);
    EXPECT_NE(err.find("k=v"), std::string::npos) << err;
}

TEST(SimOptionsMachine, NewPolicySuffixesComposeTheMachineName)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--policy", "sched=dlt,rf=prefetch"}, o, err),
              0)
        << err;
    sim::Machine m = tools::machineFor(o);
    EXPECT_EQ(
        m.name,
        "4-wide/dlt-wakeup/prefetch-rf/non-selective/2r-rename");
    EXPECT_EQ(m.cfg.wakeup, core::WakeupModel::LoadDelayTracking);
    EXPECT_EQ(m.cfg.regfile, core::RegfileModel::PrefetchBuffer);
}

TEST(SimOptionsParse, StdoutTargetsSuppressSummary)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--stats-json", "-"}, o, err), 0);
    EXPECT_TRUE(o.machineReadableStdout());
    SimOptions o2;
    ASSERT_EQ(parse({"--stats-json", "out.json"}, o2, err), 0);
    EXPECT_FALSE(o2.machineReadableStdout());
}

TEST(SimOptionsMachine, BuildsLegacyFiveComponentName)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--wakeup", "seq", "--regfile", "seq"}, o, err),
              0);
    sim::Machine m = tools::machineFor(o);
    EXPECT_EQ(m.name,
              "4-wide/seq-wakeup/seq-rf/non-selective/2r-rename");
}

TEST(SimOptionsMachine, LapWithConventionalWakeupThrows)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--lap", "512"}, o, err), 0);
    EXPECT_THROW(tools::machineFor(o), std::invalid_argument);
}

TEST(SimOptionsMachine, WidthOutsideTable1Throws)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--width", "6"}, o, err), 0);
    EXPECT_THROW(tools::machineFor(o), std::invalid_argument);
}

TEST(SimCliBinary, UnknownOptionExitsTwo)
{
    auto r = shell(simBinary() + " --frobnicate");
    EXPECT_EQ(r.status, 2);
    EXPECT_NE(r.out.find("unknown option"), std::string::npos);
}

TEST(SimCliBinary, MalformedNumberExitsTwo)
{
    auto r = shell(simBinary() + " --bench gzip --insts banana");
    EXPECT_EQ(r.status, 2);
    EXPECT_NE(r.out.find("--insts"), std::string::npos);
}

TEST(SimCliBinary, StatsJsonOnStdoutIsSchemaVersioned)
{
    auto r = shell(simBinary()
                   + " --bench gzip --insts 5000 --stats-json -");
    ASSERT_EQ(r.status, 0) << r.out;
    std::string err;
    ASSERT_TRUE(stats::json::validate(r.out, &err))
        << err << "\n" << r.out.substr(0, 400);
    EXPECT_EQ(stats::json::findStringField(r.out, "schema"),
              "hpa.stats.v1");
}

TEST(SimCliBinary, RunJsonCarriesSpecAndMetrics)
{
    auto r = shell(simBinary()
                   + " --bench gzip --insts 5000 --json -");
    ASSERT_EQ(r.status, 0) << r.out;
    std::string err;
    ASSERT_TRUE(stats::json::validate(r.out, &err)) << err;
    EXPECT_EQ(stats::json::findStringField(r.out, "schema"),
              "hpa.run.v2");
    EXPECT_EQ(stats::json::findStringField(r.out, "workload"), "gzip");
    EXPECT_EQ(stats::json::findStringField(r.out, "status"), "ok");
    EXPECT_NE(r.out.find("\"valid\": true"), std::string::npos);
    EXPECT_NE(r.out.find("\"ipc\""), std::string::npos);
    EXPECT_NE(r.out.find("\"stats\""), std::string::npos);
}

TEST(SimOptionsParse, RobustnessKnobsReachTheConfig)
{
    SimOptions o;
    std::string err;
    ASSERT_EQ(parse({"--watchdog", "5000", "--check-interval", "256"},
                    o, err),
              0)
        << err;
    EXPECT_TRUE(o.watchdog_set);
    sim::Machine m = tools::machineFor(o);
    EXPECT_EQ(m.cfg.watchdog_cycles, 5000u);
    EXPECT_EQ(m.cfg.check_interval, 256u);

    // Unset knobs keep the CoreConfig defaults.
    SimOptions d;
    ASSERT_EQ(parse({}, d, err), 0);
    sim::Machine md = tools::machineFor(d);
    EXPECT_EQ(md.cfg.watchdog_cycles, 100000u);
    EXPECT_EQ(md.cfg.check_interval, 0u);

    // --watchdog 0 is an explicit disable, not "unset".
    SimOptions z;
    ASSERT_EQ(parse({"--watchdog", "0"}, z, err), 0);
    EXPECT_EQ(tools::machineFor(z).cfg.watchdog_cycles, 0u);
}

TEST(SimCliBinary, UnknownWorkloadExitsTwoWithOneLineConfigError)
{
    auto r = shell(simBinary() + " --bench frobnozzle");
    EXPECT_EQ(r.status, 2);
    EXPECT_NE(r.out.find("[config]"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("unknown workload"), std::string::npos)
        << r.out;
    // One line, no usage dump: the message is the whole output.
    EXPECT_EQ(std::count(r.out.begin(), r.out.end(), '\n'), 1)
        << r.out;
}

TEST(SimCliBinary, MissingSteadySymbolWarnsAndLandsInJson)
{
    // A kernel without a steady: label — fast-forward is requested
    // by default but has nowhere to go.
    std::string asm_path = "test_cli_no_steady.s";
    {
        FILE *f = fopen(asm_path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        fputs("start:  add r1, #1, r1\n        halt\n", f);
        fclose(f);
    }
    auto r = shell(simBinary() + " --asm " + asm_path + " --json -");
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("no steady: symbol"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("\"steady_missing\": true"),
              std::string::npos)
        << r.out;
    remove(asm_path.c_str());
}
