/** @file Tests for the simulation driver and Table 1 machine
 *  factories. */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/simulation.hh"

namespace
{

using namespace hpa;
using namespace hpa::sim;

TEST(Machines, FourWideMatchesTable1)
{
    auto m = baseMachine(4);
    EXPECT_EQ(m.name, "4-wide");
    EXPECT_EQ(m.cfg.width, 4u);
    EXPECT_EQ(m.cfg.ruu_size, 64u);
    EXPECT_EQ(m.cfg.lsq_size, 32u);
    EXPECT_EQ(m.cfg.num_int_alu, 4u);
    EXPECT_EQ(m.cfg.num_fp_alu, 2u);
    EXPECT_EQ(m.cfg.num_int_muldiv, 2u);
    EXPECT_EQ(m.cfg.num_mem_ports, 2u);
}

TEST(Machines, EightWideMatchesTable1)
{
    auto m = baseMachine(8);
    EXPECT_EQ(m.cfg.width, 8u);
    EXPECT_EQ(m.cfg.ruu_size, 128u);
    EXPECT_EQ(m.cfg.lsq_size, 64u);
    EXPECT_EQ(m.cfg.num_int_alu, 8u);
    EXPECT_EQ(m.cfg.num_mem_ports, 4u);
}

TEST(Machines, Table1MemoryAndBpredDefaults)
{
    auto m = baseMachine(4);
    EXPECT_EQ(m.cfg.mem.il1.size_bytes, 64u * 1024);
    EXPECT_EQ(m.cfg.mem.il1.assoc, 2u);
    EXPECT_EQ(m.cfg.mem.il1.line_bytes, 32u);
    EXPECT_EQ(m.cfg.mem.dl1.assoc, 4u);
    EXPECT_EQ(m.cfg.mem.dl1.line_bytes, 16u);
    EXPECT_EQ(m.cfg.mem.l2.size_bytes, 512u * 1024);
    EXPECT_EQ(m.cfg.mem.l2.latency, 8u);
    EXPECT_EQ(m.cfg.mem.mem_latency, 50u);
    EXPECT_EQ(m.cfg.bpred.bimodal_entries, 4096u);
    EXPECT_EQ(m.cfg.bpred.btb_entries, 1024u);
    EXPECT_EQ(m.cfg.bpred.ras_entries, 16u);
    EXPECT_EQ(m.cfg.min_branch_penalty, 11u);
}

TEST(Machines, SchemeModifiersComposeNames)
{
    auto m = withRegfile(
        withWakeup(baseMachine(4), core::WakeupModel::Sequential),
        core::RegfileModel::SequentialAccess);
    EXPECT_EQ(m.name, "4-wide/seq-wakeup/seq-rf");
    EXPECT_EQ(m.cfg.wakeup, core::WakeupModel::Sequential);
    EXPECT_EQ(m.cfg.regfile, core::RegfileModel::SequentialAccess);
}

TEST(Machines, LapEntriesConfigurable)
{
    auto m = withWakeup(baseMachine(4), core::WakeupModel::Sequential,
                        128);
    EXPECT_EQ(m.cfg.lap_entries, 128u);
}

TEST(Machines, ExtraStageAffectsSchedToExec)
{
    auto m = withRegfile(baseMachine(4),
                         core::RegfileModel::ExtraStage);
    EXPECT_EQ(m.cfg.schedToExec(), baseMachine(4).cfg.schedToExec() + 1);
}

TEST(Machines, RenameModifier)
{
    auto m = withRename(baseMachine(4), core::RenameModel::HalfPort);
    EXPECT_EQ(m.cfg.rename, core::RenameModel::HalfPort);
    EXPECT_EQ(m.name, "4-wide/half-rename");
}

TEST(Machines, BypassWindowDefaultsToOneCycle)
{
    EXPECT_EQ(baseMachine(4).cfg.bypass_window, 1u);
}

TEST(Simulation, FastForwardSkipsInstructions)
{
    auto p = assembler::assemble(R"(
        li r1, 100
warm:   sub r1, #1, r1
        bne r1, warm
steady: li r2, 50
meas:   sub r2, #1, r2
        bne r2, meas
        halt)");
    Simulation s(p, core::fourWideConfig(), 0, p.symbol("steady"));
    s.run();
    EXPECT_GT(s.fastForwarded(), 190u);
    // Only the measured region is timed.
    EXPECT_LT(s.core().stats().committed.value(), 120u);
    EXPECT_TRUE(s.emulator().halted());
}

TEST(Simulation, FastForwardToUnreachedPcRunsToHalt)
{
    auto p = assembler::assemble("li r1, 5\nhalt");
    Simulation s(p, core::fourWideConfig(), 0, 0xDEAD000);
    s.run();
    // The emulator halts during fast-forward; nothing is timed.
    EXPECT_EQ(s.core().stats().committed.value(), 0u);
}

TEST(Simulation, RunIpcHelper)
{
    double ipc = runIpc(R"(
        li r1, 100
loop:   sub r1, #1, r1
        bne r1, loop
        halt)", core::fourWideConfig());
    EXPECT_GT(ipc, 0.5);
    EXPECT_LE(ipc, 4.0);
}

TEST(Simulation, MaxInstsCapsRun)
{
    auto p = assembler::assemble("loop: add r1, #1, r1\nbr loop");
    Simulation s(p, core::fourWideConfig(), 500);
    s.run();
    EXPECT_EQ(s.core().stats().committed.value(), 500u);
    EXPECT_FALSE(s.emulator().halted());
}

TEST(Simulation, ReportContainsKeySections)
{
    auto p = assembler::assemble("li r1, 5\nhalt");
    Simulation s(p, core::fourWideConfig());
    s.run();
    std::ostringstream os;
    s.report(os);
    std::string out = os.str();
    EXPECT_NE(out.find("core.committed"), std::string::npos);
    EXPECT_NE(out.find("core.ipc"), std::string::npos);
    EXPECT_NE(out.find("dl1.hits"), std::string::npos);
    EXPECT_NE(out.find("bpred.lookups"), std::string::npos);
    EXPECT_NE(out.find("sched.wakeup_slack"), std::string::npos);
}

TEST(Simulation, WiderMachineIsNotSlower)
{
    const char *src = R"(
        li r1, 300
loop:   add r2, #1, r2
        add r3, #1, r3
        add r4, #1, r4
        add r5, #1, r5
        add r6, #1, r6
        add r7, #1, r7
        sub r1, #1, r1
        bne r1, loop
        halt)";
    auto p = assembler::assemble(src);
    Simulation s4(p, baseMachine(4).cfg);
    Simulation s8(p, baseMachine(8).cfg);
    s4.run();
    s8.run();
    EXPECT_GE(s8.ipc(), s4.ipc());
}

} // namespace
