/** @file Tests for the simulation driver, Table 1 machine factories
 *  and the declarative MachineBuilder/ExperimentSpec API. */

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulation.hh"

namespace
{

using namespace hpa;
using namespace hpa::sim;

TEST(Machines, FourWideMatchesTable1)
{
    Machine m = Machine::base(4);
    EXPECT_EQ(m.name, "4-wide");
    EXPECT_EQ(m.cfg.width, 4u);
    EXPECT_EQ(m.cfg.ruu_size, 64u);
    EXPECT_EQ(m.cfg.lsq_size, 32u);
    EXPECT_EQ(m.cfg.num_int_alu, 4u);
    EXPECT_EQ(m.cfg.num_fp_alu, 2u);
    EXPECT_EQ(m.cfg.num_int_muldiv, 2u);
    EXPECT_EQ(m.cfg.num_mem_ports, 2u);
}

TEST(Machines, EightWideMatchesTable1)
{
    Machine m = Machine::base(8);
    EXPECT_EQ(m.cfg.width, 8u);
    EXPECT_EQ(m.cfg.ruu_size, 128u);
    EXPECT_EQ(m.cfg.lsq_size, 64u);
    EXPECT_EQ(m.cfg.num_int_alu, 8u);
    EXPECT_EQ(m.cfg.num_mem_ports, 4u);
}

TEST(Machines, Table1MemoryAndBpredDefaults)
{
    Machine m = Machine::base(4);
    EXPECT_EQ(m.cfg.mem.il1.size_bytes, 64u * 1024);
    EXPECT_EQ(m.cfg.mem.il1.assoc, 2u);
    EXPECT_EQ(m.cfg.mem.il1.line_bytes, 32u);
    EXPECT_EQ(m.cfg.mem.dl1.assoc, 4u);
    EXPECT_EQ(m.cfg.mem.dl1.line_bytes, 16u);
    EXPECT_EQ(m.cfg.mem.l2.size_bytes, 512u * 1024);
    EXPECT_EQ(m.cfg.mem.l2.latency, 8u);
    EXPECT_EQ(m.cfg.mem.mem_latency, 50u);
    EXPECT_EQ(m.cfg.bpred.bimodal_entries, 4096u);
    EXPECT_EQ(m.cfg.bpred.btb_entries, 1024u);
    EXPECT_EQ(m.cfg.bpred.ras_entries, 16u);
    EXPECT_EQ(m.cfg.min_branch_penalty, 11u);
}

TEST(Machines, SchemeModifiersComposeNames)
{
    Machine m = Machine::base(4)
                    .wakeup(core::WakeupModel::Sequential)
                    .regfile(core::RegfileModel::SequentialAccess);
    EXPECT_EQ(m.name, "4-wide/seq-wakeup/seq-rf");
    EXPECT_EQ(m.cfg.wakeup, core::WakeupModel::Sequential);
    EXPECT_EQ(m.cfg.regfile, core::RegfileModel::SequentialAccess);
}

TEST(Machines, LapEntriesConfigurable)
{
    Machine m = Machine::base(4)
                    .wakeup(core::WakeupModel::Sequential)
                    .lap(128);
    EXPECT_EQ(m.cfg.lap_entries, 128u);
}

TEST(Machines, ExtraStageAffectsSchedToExec)
{
    Machine base = Machine::base(4);
    Machine m = Machine::base(4).regfile(
        core::RegfileModel::ExtraStage);
    EXPECT_EQ(m.cfg.schedToExec(), base.cfg.schedToExec() + 1);
}

TEST(Machines, RenameModifier)
{
    Machine m =
        Machine::base(4).rename(core::RenameModel::HalfPort);
    EXPECT_EQ(m.cfg.rename, core::RenameModel::HalfPort);
    EXPECT_EQ(m.name, "4-wide/half-rename");
}

TEST(Machines, BypassWindowDefaultsToOneCycle)
{
    Machine m = Machine::base(4);
    EXPECT_EQ(m.cfg.bypass_window, 1u);
}

TEST(Builder, BaseRejectsWidthsOutsideTable1)
{
    EXPECT_THROW(Machine::base(0), std::invalid_argument);
    EXPECT_THROW(Machine::base(5), std::invalid_argument);
    EXPECT_THROW(Machine::base(16), std::invalid_argument);
    EXPECT_NO_THROW(Machine::base(4).build());
    EXPECT_NO_THROW(Machine::base(8).build());
}

TEST(Builder, DefaultsMatchTable1)
{
    Machine m4 = Machine::base(4);
    EXPECT_EQ(m4.name, "4-wide");
    EXPECT_EQ(m4.cfg.width, 4u);
    EXPECT_EQ(m4.cfg.ruu_size, 64u);
    EXPECT_EQ(m4.cfg.lsq_size, 32u);
    EXPECT_EQ(m4.cfg.bypass_window, 1u);
    Machine m8 = Machine::base(8);
    EXPECT_EQ(m8.name, "8-wide");
    EXPECT_EQ(m8.cfg.ruu_size, 128u);
    EXPECT_EQ(m8.cfg.lsq_size, 64u);
}

TEST(Builder, RegistryNamesProduceSameMachinesAsEnums)
{
    Machine by_name = Machine::base(4)
                          .schedPolicy("seq")
                          .lap(1024)
                          .rfPolicy("seq");
    Machine by_enum = Machine::base(4)
                          .wakeup(core::WakeupModel::Sequential)
                          .lap(1024)
                          .regfile(core::RegfileModel::SequentialAccess);
    EXPECT_EQ(by_name.name, by_enum.name);
    EXPECT_EQ(by_name.name, "4-wide/seq-wakeup/seq-rf");
    EXPECT_EQ(by_name.cfg.wakeup, by_enum.cfg.wakeup);
    EXPECT_EQ(by_name.cfg.regfile, by_enum.cfg.regfile);
    EXPECT_EQ(by_name.cfg.lap_entries, by_enum.cfg.lap_entries);
}

TEST(Builder, UnknownPolicyNamesThrowListingRegistry)
{
    try {
        Machine::base(4).schedPolicy("bogus");
        FAIL() << "schedPolicy(\"bogus\") did not throw";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("conv"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("dlt"),
                  std::string::npos);
    }
    try {
        Machine::base(4).rfPolicy("bogus");
        FAIL() << "rfPolicy(\"bogus\") did not throw";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("2port"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("prefetch"),
                  std::string::npos);
    }
}

TEST(Builder, NewPolicySuffixesComposeNames)
{
    EXPECT_EQ(Machine(Machine::base(4).schedPolicy("dlt")).name,
              "4-wide/dlt-wakeup");
    EXPECT_EQ(Machine(Machine::base(8).rfPolicy("prefetch")).name,
              "8-wide/prefetch-rf");
    EXPECT_EQ(Machine(Machine::base(4)
                          .schedPolicy("dlt")
                          .rfPolicy("prefetch"))
                  .name,
              "4-wide/dlt-wakeup/prefetch-rf");
}

TEST(Builder, AppendsEveryLegacyNameSuffix)
{
    EXPECT_EQ(Machine::base(8)
                  .wakeup(core::WakeupModel::TagElimination)
                  .build()
                  .name,
              "8-wide/tag-elim");
    EXPECT_EQ(Machine::base(4)
                  .wakeup(core::WakeupModel::SequentialNoPred)
                  .build()
                  .name,
              "4-wide/seq-wakeup-nopred");
    EXPECT_EQ(Machine::base(4)
                  .regfile(core::RegfileModel::HalfPortCrossbar)
                  .build()
                  .name,
              "4-wide/half-ports-xbar");
    EXPECT_EQ(Machine::base(4)
                  .recovery(core::RecoveryModel::Selective)
                  .build()
                  .name,
              "4-wide/selective");
    EXPECT_EQ(Machine::base(4)
                  .rename(core::RenameModel::HalfPort)
                  .build()
                  .name,
              "4-wide/half-rename");
}

TEST(Builder, LapRequiresPredictorBasedWakeup)
{
    // Conventional and SequentialNoPred have no last-arrival
    // predictor, so a lap table is a configuration contradiction.
    EXPECT_THROW(Machine::base(4).lap(1024).build(),
                 std::invalid_argument);
    EXPECT_THROW(Machine::base(4)
                     .wakeup(core::WakeupModel::SequentialNoPred)
                     .lap(1024)
                     .build(),
                 std::invalid_argument);
    EXPECT_NO_THROW(Machine::base(4)
                        .wakeup(core::WakeupModel::Sequential)
                        .lap(1024)
                        .build());
    EXPECT_NO_THROW(Machine::base(4)
                        .wakeup(core::WakeupModel::TagElimination)
                        .lap(256)
                        .build());
}

TEST(Builder, LapEntriesMustBePowerOfTwo)
{
    auto seq = [] {
        return Machine::base(4).wakeup(core::WakeupModel::Sequential);
    };
    EXPECT_THROW(seq().lap(0).build(), std::invalid_argument);
    EXPECT_THROW(seq().lap(1000).build(), std::invalid_argument);
    EXPECT_NO_THROW(seq().lap(1).build());
    EXPECT_NO_THROW(seq().lap(4096).build());
}

TEST(Builder, DetectDelayRequiresTagElimination)
{
    EXPECT_THROW(Machine::base(4).detectDelay(2).build(),
                 std::invalid_argument);
    EXPECT_THROW(Machine::base(4)
                     .wakeup(core::WakeupModel::Sequential)
                     .detectDelay(2)
                     .build(),
                 std::invalid_argument);
    EXPECT_THROW(Machine::base(4)
                     .wakeup(core::WakeupModel::TagElimination)
                     .detectDelay(0)
                     .build(),
                 std::invalid_argument);
    Machine m = Machine::base(4)
                    .wakeup(core::WakeupModel::TagElimination)
                    .detectDelay(2);
    EXPECT_EQ(m.cfg.tagelim_detect_delay, 2u);
}

TEST(Builder, BypassWindowMustBeAtLeastOneCycle)
{
    EXPECT_THROW(Machine::base(4).bypassWindow(0).build(),
                 std::invalid_argument);
    Machine m = Machine::base(4).bypassWindow(3);
    EXPECT_EQ(m.cfg.bypass_window, 3u);
}

TEST(Builder, ImplicitConversionValidates)
{
    // The implicit Machine conversion runs build(), so a bad chain
    // throws even without an explicit build() call.
    auto use = [](const Machine &m) { return m.cfg.width; };
    EXPECT_THROW(use(Machine::base(4).lap(1024)),
                 std::invalid_argument);
    EXPECT_EQ(use(Machine::base(8)), 8u);
}

TEST(ExperimentSpecTest, ValidateChecksWorkloadAndMachine)
{
    ExperimentSpec spec;
    spec.machine = Machine::base(4);
    spec.workload = "gzip";
    EXPECT_NO_THROW(spec.validate());

    spec.workload = "no-such-benchmark";
    EXPECT_THROW(spec.validate(), std::invalid_argument);

    spec.workload = "gzip";
    spec.machine = Machine{};
    EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Simulation, StatsRegistryMatchesReport)
{
    auto p = assembler::assemble("li r1, 5\nhalt");
    Simulation s(p, core::fourWideConfig());
    s.run();
    std::ostringstream from_report, from_registry;
    s.report(from_report);
    s.statsRegistry().dump(from_registry);
    EXPECT_EQ(from_report.str(), from_registry.str());
    EXPECT_NE(from_report.str().find("core.ipc"), std::string::npos);
}

TEST(Simulation, FastForwardSkipsInstructions)
{
    auto p = assembler::assemble(R"(
        li r1, 100
warm:   sub r1, #1, r1
        bne r1, warm
steady: li r2, 50
meas:   sub r2, #1, r2
        bne r2, meas
        halt)");
    Simulation s(p, core::fourWideConfig(), 0, p.symbol("steady"));
    s.run();
    EXPECT_GT(s.fastForwarded(), 190u);
    // Only the measured region is timed.
    EXPECT_LT(s.core().stats().committed.value(), 120u);
    EXPECT_TRUE(s.emulator().halted());
}

TEST(Simulation, FastForwardToUnreachedPcRunsToHalt)
{
    auto p = assembler::assemble("li r1, 5\nhalt");
    Simulation s(p, core::fourWideConfig(), 0, 0xDEAD000);
    s.run();
    // The emulator halts during fast-forward; nothing is timed.
    EXPECT_EQ(s.core().stats().committed.value(), 0u);
}

TEST(Simulation, RunIpcHelper)
{
    double ipc = runIpc(R"(
        li r1, 100
loop:   sub r1, #1, r1
        bne r1, loop
        halt)", core::fourWideConfig());
    EXPECT_GT(ipc, 0.5);
    EXPECT_LE(ipc, 4.0);
}

TEST(Simulation, MaxInstsCapsRun)
{
    auto p = assembler::assemble("loop: add r1, #1, r1\nbr loop");
    Simulation s(p, core::fourWideConfig(), 500);
    s.run();
    EXPECT_EQ(s.core().stats().committed.value(), 500u);
    EXPECT_FALSE(s.emulator().halted());
}

TEST(Simulation, ReportContainsKeySections)
{
    auto p = assembler::assemble("li r1, 5\nhalt");
    Simulation s(p, core::fourWideConfig());
    s.run();
    std::ostringstream os;
    s.report(os);
    std::string out = os.str();
    EXPECT_NE(out.find("core.committed"), std::string::npos);
    EXPECT_NE(out.find("core.ipc"), std::string::npos);
    EXPECT_NE(out.find("dl1.hits"), std::string::npos);
    EXPECT_NE(out.find("bpred.lookups"), std::string::npos);
    EXPECT_NE(out.find("sched.wakeup_slack"), std::string::npos);
}

TEST(Simulation, WiderMachineIsNotSlower)
{
    const char *src = R"(
        li r1, 300
loop:   add r2, #1, r2
        add r3, #1, r3
        add r4, #1, r4
        add r5, #1, r5
        add r6, #1, r6
        add r7, #1, r7
        sub r1, #1, r1
        bne r1, loop
        halt)";
    auto p = assembler::assemble(src);
    Simulation s4(p, Machine(Machine::base(4)).cfg);
    Simulation s8(p, Machine(Machine::base(8)).cfg);
    s4.run();
    s8.run();
    EXPECT_GE(s8.ipc(), s4.ipc());
}

} // namespace
