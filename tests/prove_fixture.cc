/**
 * @file
 * Deliberately-violating fixture TU for `hpa_prove --self-test`.
 *
 * NOT part of any build target: the self-test compiles this file on
 * its own (with and without -fcallgraph-info=su,da) and asserts that
 * every property P1-P4 catches its planted violation, that the
 * pruned guard subtree is NOT flagged, and that an
 * hpa-prove-allow'd call site is excused. Keep the function names in
 * sync with FIXTURE_* in tools/analyze/hpa_prove.py.
 *
 * Everything is noinline so the emitted call graph keeps the shape
 * the assertions expect regardless of optimization level.
 */

#include <cstddef>
#include <string>

#define FIX_NOINLINE __attribute__((noinline))

namespace provefix
{

/** P3 bait: a guaranteed-indirect call through a volatile pointer
 *  (the compiler cannot devirtualize or constant-fold it). */
using Callback = int (*)(int);

struct FixCore
{
    static int tick(int x, Callback cb);
    static int cleanTick(int x);

    static int hotAlloc(int n);
    static int hotThrow(int x);
    static int hotIndirect(int x, Callback cb);
    static int hotStack(int seed);
    static int hotRecurse(int n);
    static int allowedAlloc(int n);
    static int allowedDeep(int n);
    static int guards(int x);
    static int guardAlloc(int n);
    static int cleanLeaf(int x);
};

/** Escape hatch: pointers stored here are visible outside the TU,
 *  so -O2 cannot elide the new/delete pairs (-fallocation-dce would
 *  otherwise delete the planted P1 violations outright). */
int *g_escape[4];

/** P1 violation: reachable operator new[]. */
FIX_NOINLINE int
FixCore::hotAlloc(int n)
{
    int *p = new int[static_cast<size_t>(n) + 1];
    p[0] = n;
    g_escape[0] = p;
    return p[0];
}

/** P2 violation: reachable __cxa_throw. */
FIX_NOINLINE int
FixCore::hotThrow(int x)
{
    if (x < 0)
        throw x;
    return x + 1;
}

/** P3 violation: indirect call site. The +1 keeps it a real
 *  `call *` — a bare `return fp(x)` becomes an indirect *jump*
 *  (tail call), which the objdump fallback deliberately treats as
 *  switch-table control flow. */
FIX_NOINLINE int
FixCore::hotIndirect(int x, Callback cb)
{
    Callback volatile fp = cb;
    return fp(x) + 1;
}

/** P4 violation: an 8 KiB frame (the self-test proves with a 4 KiB
 *  stack limit). */
FIX_NOINLINE int
FixCore::hotStack(int seed)
{
    volatile char buf[8192];
    buf[0] = static_cast<char>(seed);
    buf[sizeof(buf) - 1] = static_cast<char>(seed >> 1);
    return buf[0] + buf[sizeof(buf) - 1];
}

/** P4 violation: recursion makes the static stack bound
 *  meaningless. Mutual recursion between two noinline functions —
 *  plain self-recursion with an accumulator gets rewritten into a
 *  loop at -O2 and would leave no cycle in the emitted graph. */
FIX_NOINLINE static int
hotRecurseB(int n)
{
    if (n <= 0)
        return 2;
    return FixCore::hotRecurse(n - 1) * 3 - n;
}

FIX_NOINLINE int
FixCore::hotRecurse(int n)
{
    if (n <= 1)
        return 1;
    return n + hotRecurseB(n - 1);
}

/** Allowed allocation: the hpa-prove-allow on the call line excuses
 *  this edge for P1 (and only P1). */
FIX_NOINLINE int
FixCore::allowedAlloc(int n)
{
    // hpa-prove-allow(P1): fixture exercises the suppression path
    int *p = new int[static_cast<size_t>(n) + 1];
    int r = p[0] = n;
    g_escape[1] = p;
    return r;
}

/** Function-level allow: the allocation happens inside inlined
 *  std::to_string machinery, so every violating callsite is a
 *  libstdc++ header line that no repo-line allow can name; the allow
 *  above the definition excuses this function's edges into non-repo
 *  code (edges to repo functions would stay checked). */
// hpa-prove-allow(P1,P2): fixture exercises the function-level suppression path
FIX_NOINLINE int
FixCore::allowedDeep(int n)
{
    std::string s = std::to_string(n + 41);
    return static_cast<int>(s.size());
}

/** Pruned guard subtree: allocates AND throws, but the self-test
 *  prunes it (like the real tickGuards whitelist), so neither may be
 *  reported. */
FIX_NOINLINE int
FixCore::guardAlloc(int n)
{
    int *p = new int[static_cast<size_t>(n) + 2];
    p[1] = n;
    g_escape[2] = p;
    if (p[1] < 0)
        throw n;
    return p[1];
}

FIX_NOINLINE int
FixCore::guards(int x)
{
    return guardAlloc(x) + 1;
}

/** The violating root: reaches every planted violation. */
FIX_NOINLINE int
FixCore::tick(int x, Callback cb)
{
    int acc = hotAlloc(x);
    acc += hotThrow(acc);
    acc += hotIndirect(acc, cb);
    acc += hotStack(acc);
    acc += hotRecurse(acc & 7);
    acc += allowedAlloc(acc);
    acc += allowedDeep(acc);
    acc += guards(acc);
    return acc;
}

/** The clean root: arithmetic only — P1-P3 must prove. */
FIX_NOINLINE int
FixCore::cleanLeaf(int x)
{
    return x * 2 + 1;
}

FIX_NOINLINE int
FixCore::cleanTick(int x)
{
    int acc = 0;
    for (int i = 0; i < 4; ++i)
        acc += cleanLeaf(x + i);
    return acc;
}

} // namespace provefix

/** Keep every root alive through the object file. */
int
prove_fixture_entry(int x, provefix::Callback cb)
{
    return provefix::FixCore::tick(x, cb)
        + provefix::FixCore::cleanTick(x);
}
