/** @file Tests for the analytical circuit-timing models against the
 *  paper's published calibration points. */

#include <gtest/gtest.h>

#include "model/timing_models.hh"

namespace
{

using namespace hpa::model;

TEST(WakeupDelay, PaperCalibrationPoints)
{
    WakeupDelayModel m;
    // Section 3.3: 4-wide, 64-entry scheduler.
    EXPECT_NEAR(m.delayPs(64, 2, 4), 466.0, 0.5);
    EXPECT_NEAR(m.delayPs(64, 1, 4), 374.0, 0.5);
}

TEST(WakeupDelay, PaperSpeedupClaim)
{
    WakeupDelayModel m;
    // "24.6% speedup over a conventional scheduler".
    EXPECT_NEAR(m.speedup(64, 2, 1, 4), 0.246, 0.001);
}

TEST(WakeupDelay, MonotonicInEntries)
{
    WakeupDelayModel m;
    EXPECT_LT(m.delayPs(32, 2), m.delayPs(64, 2));
    EXPECT_LT(m.delayPs(64, 2), m.delayPs(128, 2));
}

TEST(WakeupDelay, MonotonicInComparators)
{
    WakeupDelayModel m;
    EXPECT_LT(m.delayPs(64, 1), m.delayPs(64, 2));
}

TEST(WakeupDelay, WiderMachineIsSlower)
{
    WakeupDelayModel m;
    EXPECT_LT(m.delayPs(64, 2, 4), m.delayPs(64, 2, 8));
}

TEST(WakeupDelay, SequentialGainGrowsWithWindow)
{
    WakeupDelayModel m;
    EXPECT_GT(m.speedup(128, 2, 1), m.speedup(64, 2, 1));
}

TEST(RegfileTiming, PaperCalibrationPoints)
{
    RegfileTimingModel m;
    // Section 4: 160-entry register file at 0.18u.
    EXPECT_NEAR(m.accessNs(160, 24), 1.71, 0.005);
    EXPECT_NEAR(m.accessNs(160, 16), 1.36, 0.005);
}

TEST(RegfileTiming, PaperReductionClaim)
{
    RegfileTimingModel m;
    // "a 20.5% drop when the number of ports decreases from 24 to 16".
    EXPECT_NEAR(m.reduction(160, 24, 16), 0.205, 0.002);
}

TEST(RegfileTiming, MonotonicInEntriesAndPorts)
{
    RegfileTimingModel m;
    EXPECT_LT(m.accessNs(80, 24), m.accessNs(160, 24));
    EXPECT_LT(m.accessNs(160, 8), m.accessNs(160, 16));
}

TEST(RegfileTiming, AreaQuadraticInPorts)
{
    RegfileTimingModel m;
    double a16 = m.area(160, 16);
    double a32 = m.area(160, 32);
    // Doubling ports should more than double area (quadratic cell
    // growth) but the fixed pitch offset keeps it below 4x.
    EXPECT_GT(a32, 2.0 * a16);
    EXPECT_LT(a32, 4.0 * a16);
}

TEST(RegfileTiming, AreaLinearInEntries)
{
    RegfileTimingModel m;
    EXPECT_DOUBLE_EQ(m.area(320, 16), 2.0 * m.area(160, 16));
}

} // namespace
