/**
 * @file
 * Error-taxonomy and release-mode invariant tests: the SimError
 * mixin stays catchable as the matching std exception, HPA_CHECK
 * throws InvariantViolation with file/line/condition context and
 * evaluates its message lazily, and the core's runtime guards — the
 * no-forward-progress watchdog, the periodic scheduler
 * cross-validation and the cooperative wall-clock deadline — each
 * turn the corresponding injected fault into the right typed error
 * with a usable pipeline-state dump.
 */

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/core.hh"
#include "sim/error.hh"
#include "sim/experiment.hh"
#include "sim/simulation.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

TEST(ErrorTaxonomy, KindAndStatusNamesAreStable)
{
    // These tags appear in v2 JSON artifacts; they are frozen.
    EXPECT_STREQ(kindName(ErrorKind::Config), "config");
    EXPECT_STREQ(kindName(ErrorKind::Workload), "workload");
    EXPECT_STREQ(kindName(ErrorKind::Invariant), "invariant");
    EXPECT_STREQ(kindName(ErrorKind::Deadlock), "deadlock");
    EXPECT_STREQ(kindName(ErrorKind::Timeout), "timeout");
    EXPECT_STREQ(sim::statusName(sim::RunStatus::Ok), "ok");
    EXPECT_STREQ(sim::statusName(sim::RunStatus::Failed), "failed");
    EXPECT_STREQ(sim::statusName(sim::RunStatus::TimedOut),
                 "timed_out");
}

TEST(ErrorTaxonomy, ConcreteErrorsMatchTheirStdBase)
{
    // The mixin contract: pre-taxonomy call sites that catch the
    // standard exception types keep working unchanged.
    EXPECT_THROW(throw ConfigError("x"), std::invalid_argument);
    EXPECT_THROW(throw WorkloadError("x"), std::runtime_error);
    EXPECT_THROW(throw InvariantViolation("x"), std::logic_error);
    EXPECT_THROW(throw Deadlock("x"), std::runtime_error);
    EXPECT_THROW(throw Timeout("x"), std::runtime_error);
}

TEST(ErrorTaxonomy, CatchAsSimErrorYieldsKindMessageAndContext)
{
    SimContext ctx;
    ctx.workload = "frobnozzle";
    try {
        throw ConfigError("unknown workload: frobnozzle", ctx);
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_EQ(e.message(), "unknown workload: frobnozzle");
        EXPECT_EQ(e.context().workload, "frobnozzle");
        std::string line = e.oneLine();
        EXPECT_NE(line.find("[config]"), std::string::npos) << line;
        EXPECT_NE(line.find("workload=frobnozzle"),
                  std::string::npos)
            << line;
        // One line means one line — the dump never leaks in here.
        EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    }
}

TEST(ErrorTaxonomy, WhatCarriesKindTagThroughStdCatch)
{
    SimContext ctx;
    ctx.cycle = 12345;
    try {
        throw Deadlock("no commit in 100 cycles", ctx);
    } catch (const std::exception &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("[deadlock]"), std::string::npos) << what;
        EXPECT_NE(what.find("cycle=12345"), std::string::npos) << what;
    }
}

TEST(HpaCheck, FailureThrowsWithFileLineAndConditionText)
{
    try {
        HPA_CHECK(1 + 1 == 3, "arithmetic is broken");
        FAIL() << "HPA_CHECK did not throw";
    } catch (const InvariantViolation &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Invariant);
        std::string what = e.what();
        EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
        EXPECT_NE(what.find("arithmetic is broken"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("test_error.cc"), std::string::npos)
            << what;
    }
}

TEST(HpaCheck, MessageIsOnlyEvaluatedOnFailure)
{
    int evaluations = 0;
    auto expensive = [&] {
        ++evaluations;
        return std::string("should never be built");
    };
    HPA_CHECK(true, expensive());
    EXPECT_EQ(evaluations, 0);
    EXPECT_THROW(HPA_CHECK(false, expensive()), InvariantViolation);
    EXPECT_EQ(evaluations, 1);
}

/** A small timing run on a real workload with one fault injected. */
class CoreGuards : public ::testing::Test
{
  protected:
    sim::Simulation
    makeSim(const core::CoreConfig &cfg, uint64_t max_insts)
    {
        const workloads::Workload &w =
            workloads::globalCache().get("gzip");
        return sim::Simulation(w.program, cfg, max_insts, 0);
    }
};

TEST_F(CoreGuards, WatchdogTurnsBlockedCommitIntoDeadlock)
{
    core::CoreConfig cfg = core::fourWideConfig();
    cfg.watchdog_cycles = 2000;
    auto s = makeSim(cfg, 50000);
    s.core().testBlockCommitAfter(100);
    try {
        s.run();
        FAIL() << "expected hpa::Deadlock";
    } catch (const Deadlock &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Deadlock);
        // Tripped after the threshold, with attribution and a dump.
        EXPECT_GT(e.context().cycle, 2000u);
        EXPECT_LE(e.context().lastCommitCycle, 101u);
        ASSERT_FALSE(e.context().dump.empty());
        EXPECT_NE(e.context().dump.find("window"), std::string::npos)
            << e.context().dump;
    }
}

TEST_F(CoreGuards, WatchdogZeroDisablesTheCheck)
{
    core::CoreConfig cfg = core::fourWideConfig();
    cfg.watchdog_cycles = 0;
    auto s = makeSim(cfg, 5000);
    s.core().testBlockCommitAfter(100);
    // Without the watchdog the run only ends on the cycle budget.
    uint64_t committed = s.run(30000);
    EXPECT_EQ(committed, s.core().stats().committed.value());
    EXPECT_GE(s.core().cycle(), 30000u);
}

TEST_F(CoreGuards, CrossValidationCatchesACorruptedReadyList)
{
    core::CoreConfig cfg = core::fourWideConfig();
    cfg.check_interval = 64;
    auto s = makeSim(cfg, 50000);
    s.core().testCorruptSchedulerAt(512);
    try {
        s.run();
        FAIL() << "expected hpa::InvariantViolation";
    } catch (const InvariantViolation &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Invariant);
        EXPECT_NE(std::string(e.what()).find("cross-validation"),
                  std::string::npos)
            << e.what();
        EXPECT_GE(e.context().cycle, 512u);
    }
}

TEST_F(CoreGuards, CleanRunsPassPeriodicCrossValidation)
{
    // The paranoid mode on a healthy core must be silent — this is
    // the guard against the checker itself drifting from the
    // scheduler's incremental bookkeeping.
    core::CoreConfig cfg = core::fourWideConfig();
    cfg.check_interval = 1;
    auto s = makeSim(cfg, 20000);
    EXPECT_NO_THROW(s.run());
    EXPECT_GT(s.core().cycle(), 0u);
}

TEST_F(CoreGuards, ExpiredWallDeadlineRaisesTimeout)
{
    core::CoreConfig cfg = core::fourWideConfig();
    auto s = makeSim(cfg, 200000);
    s.core().setWallDeadline(0.0);
    // The deadline is polled every 4096 cycles; a 200k-inst gzip run
    // lasts well past the first poll.
    EXPECT_THROW(s.run(), Timeout);
}

} // namespace
