/** @file Dynamic half of the PR 4 zero-steady-state-allocation claim,
 *  cross-validating hpa-lint's static HPA002 rule: this binary
 *  replaces the global operator new with a counting wrapper, warms a
 *  trace-backed core past every pool/ring/map high-water mark, then
 *  counts allocations across thousands more Core::tick() calls. Any
 *  count above zero fails — the static rule catches per-operation
 *  container types at review time, this test catches everything the
 *  regexes cannot see (amortised std::vector growth, allocations in
 *  callees, regressions in the pooled containers themselves). */

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/core.hh"
#include "core/core_lane.hh"
#include "core/inst_source.hh"
#include "func/trace.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

namespace
{

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<bool> g_armed{false};

void *
countedAlloc(std::size_t n)
{
    if (g_armed.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

// Replaceable global allocation functions (count when armed). The
// aligned-new overloads are deliberately not replaced: nothing on
// the tick path uses over-aligned types, and the default ones fall
// back to these anyway on this ABI.
void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}
void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace hpa;

uint64_t
steadyPc(const workloads::Workload &w)
{
    auto it = w.program.symbols.find("steady");
    return it != w.program.symbols.end() ? it->second : 0;
}

/** The counter itself must count, or a silent linker change could
 *  turn every zero-allocation assertion into a vacuous pass. */
TEST(HotPathAllocCounter, CounterObservesHeapTraffic)
{
    g_allocs.store(0);
    g_armed.store(true);
    {
        std::vector<int> v;
        v.reserve(1024);
    }
    g_armed.store(false);
    EXPECT_GT(g_allocs.load(), 0u)
        << "operator new replacement is not linked in";
}

/** Warm a trace-backed core on @p bench, then require that @p
 *  measure_cycles further ticks perform zero heap allocations. */
void
expectSteadyStateAllocFree(const std::string &bench,
                           core::CoreConfig cfg)
{
    const uint64_t budget = 60000;
    const uint64_t warm_insts = 30000;
    const uint64_t measure_cycles = 5000;

    auto &cache = workloads::globalCache();
    const workloads::Workload &w = cache.get(bench);
    const func::CommittedTrace &trace =
        cache.trace(bench, workloads::Scale::Full, budget,
                    steadyPc(w));
    core::TraceSource src(trace);
    core::Core core(cfg, src);

    while (core.stats().committed.value() < warm_insts
           && !core.done()) {
        core.tick();
        ASSERT_LT(core.cycle(), 10 * budget) << bench
            << ": warm-up did not reach " << warm_insts
            << " committed instructions";
    }
    ASSERT_FALSE(core.done())
        << bench << ": trace exhausted during warm-up; measurement "
        << "window would be idle";

    g_allocs.store(0);
    g_armed.store(true);
    for (uint64_t i = 0; i < measure_cycles && !core.done(); ++i)
        core.tick();
    g_armed.store(false);

    EXPECT_EQ(g_allocs.load(), 0u)
        << bench << ": steady-state Core::tick allocated (cycle "
        << core.cycle() << ", committed "
        << core.stats().committed.value() << ")";
}

TEST(HotPathAlloc, BaseMachineGzip)
{
    expectSteadyStateAllocFree("gzip", core::fourWideConfig());
}

TEST(HotPathAlloc, BaseMachineCrafty)
{
    expectSteadyStateAllocFree("crafty", core::fourWideConfig());
}

TEST(HotPathAlloc, EightWideMcf)
{
    expectSteadyStateAllocFree("mcf", core::eightWideConfig());
}

/** The half-price techniques share tick()'s bookkeeping; the
 *  allocation-free property must hold for them too, not just the
 *  base machine. */
TEST(HotPathAlloc, HalfPriceMachineGzip)
{
    sim::Machine m = sim::Machine::base(4)
                         .wakeup(core::WakeupModel::Sequential)
                         .regfile(core::RegfileModel::SequentialAccess)
                         .recovery(core::RecoveryModel::Selective)
                         .rename(core::RenameModel::HalfPort)
                         .build();
    expectSteadyStateAllocFree("gzip", m.cfg);
}

/** The new registry policies dispatch through std::visit on the
 *  policy variants; their hooks (DLT wake adjustment, prefetch
 *  bandwidth accounting) must stay allocation-free like the paper
 *  designs. */
TEST(HotPathAlloc, PolicyZooMachineGzip)
{
    sim::Machine m = sim::Machine::base(4)
                         .schedPolicy("dlt")
                         .rfPolicy("prefetch")
                         .build();
    expectSteadyStateAllocFree("gzip", m.cfg);
}

/** Both scheduler engines, pinned explicitly. The masked engine's
 *  bit planes and dependency matrix are flat vectors sized once at
 *  reset — wakeup broadcasts and producer clears are pure bit ops,
 *  so the zero-allocation property must hold for the matrix storage
 *  exactly as it does for the reference engine's pooled lists. */
TEST(HotPathAlloc, MaskedEngineGzip)
{
    core::CoreConfig cfg = core::fourWideConfig();
    cfg.sched_engine = core::SchedEngine::Masked;
    expectSteadyStateAllocFree("gzip", cfg);
}

TEST(HotPathAlloc, ReferenceEngineGzip)
{
    core::CoreConfig cfg = core::fourWideConfig();
    cfg.sched_engine = core::SchedEngine::Reference;
    expectSteadyStateAllocFree("gzip", cfg);
}

/** Batched replay must not reintroduce per-cycle allocation: warm a
 *  batch of lanes over one shared trace, then count across further
 *  tickQuantum rotations. The quantum switchovers themselves are on
 *  the measured path — rotating lanes is steady state, not setup. */
TEST(HotPathAlloc, BatchedLanesTickAllocFree)
{
    const uint64_t budget = 60000;
    const uint64_t warm_insts = 30000;
    const uint64_t quantum = 1024;

    auto &cache = workloads::globalCache();
    const workloads::Workload &w = cache.get("gzip");
    const func::CommittedTrace &trace =
        cache.trace("gzip", workloads::Scale::Full, budget,
                    steadyPc(w));

    std::vector<std::unique_ptr<core::CoreLane>> lanes;
    lanes.push_back(std::make_unique<core::CoreLane>(
        core::fourWideConfig(), trace));
    lanes.push_back(std::make_unique<core::CoreLane>(
        core::eightWideConfig(), trace));

    // Warm every lane past its high-water marks, interleaved the way
    // BatchedSimulation rotates them.
    bool more = true;
    while (more
           && lanes[0]->core().stats().committed.value() < warm_insts) {
        more = false;
        for (auto &lane : lanes)
            more = lane->tickQuantum(quantum, 0) || more;
    }
    ASSERT_TRUE(more) << "trace exhausted during warm-up";

    g_allocs.store(0);
    g_armed.store(true);
    for (int rotations = 0; rotations < 4 && more; ++rotations) {
        more = false;
        for (auto &lane : lanes)
            more = lane->tickQuantum(quantum, 0) || more;
    }
    g_armed.store(false);

    EXPECT_EQ(g_allocs.load(), 0u)
        << "batched lane rotation allocated in steady state";
}

} // namespace
