/** @file Trace capture/replay tests: the committed-trace SoA buffer
 *  must reproduce the emulator-driven instruction stream byte for
 *  byte for every registered workload (the tentpole determinism
 *  contract of trace-once/replay-many sweeps), the workload cache
 *  must hand every cell of a (workload, budget, fast-forward) group
 *  the same immutable trace instance, and a trace-backed Simulation
 *  must report exactly the metrics of an emulator-backed one. */

#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/inst_source.hh"
#include "func/trace.hh"
#include "sim/experiment.hh"
#include "sim/simulation.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

/** Fast-forward pc of a workload (its `steady:` label), or 0. */
uint64_t
steadyPc(const workloads::Workload &w)
{
    auto it = w.program.symbols.find("steady");
    return it != w.program.symbols.end() ? it->second : 0;
}

/** Every field of two ExecRecords, with a useful failure message. */
void
expectSameRecord(const func::ExecRecord &a, const func::ExecRecord &b,
                 const std::string &what, uint64_t index)
{
    ASSERT_EQ(a.pc, b.pc) << what << " record " << index;
    ASSERT_EQ(a.nextPc, b.nextPc) << what << " record " << index;
    ASSERT_EQ(a.taken, b.taken) << what << " record " << index;
    ASSERT_EQ(a.effAddr, b.effAddr) << what << " record " << index;
    ASSERT_EQ(a.inst.op, b.inst.op) << what << " record " << index;
    ASSERT_EQ(a.inst.ra, b.inst.ra) << what << " record " << index;
    ASSERT_EQ(a.inst.rb, b.inst.rb) << what << " record " << index;
    ASSERT_EQ(a.inst.rc, b.inst.rc) << what << " record " << index;
    ASSERT_EQ(a.inst.useLiteral, b.inst.useLiteral)
        << what << " record " << index;
    ASSERT_EQ(a.inst.literal, b.inst.literal)
        << what << " record " << index;
    ASSERT_EQ(a.inst.disp, b.inst.disp)
        << what << " record " << index;
}

/** Drain a TraceSource over @p trace and an EmulatorSource over a
 *  fresh emulator with the same fast-forward/budget; both streams
 *  must agree on every record and end together. */
void
expectSameStream(const workloads::Workload &w, uint64_t ff,
                 uint64_t budget, const std::string &what)
{
    func::CommittedTrace trace =
        func::CommittedTrace::capture(w.program, ff, budget);
    core::TraceSource replay(trace);

    func::Emulator emu(w.program);
    uint64_t skipped = 0;
    if (ff) {
        while (!emu.halted() && emu.pc() != ff) {
            emu.step();
            ++skipped;
        }
    }
    ASSERT_EQ(skipped, trace.fastForwarded()) << what;
    core::EmulatorSource live(emu, budget);

    uint64_t n = 0;
    for (;; ++n) {
        const func::ExecRecord *a = replay.next();
        const func::ExecRecord *b = live.next();
        ASSERT_EQ(a != nullptr, b != nullptr)
            << what << ": streams end at different lengths (record "
            << n << ")";
        if (!a)
            break;
        expectSameRecord(*a, *b, what, n);
    }
    ASSERT_EQ(n, trace.size()) << what;
    ASSERT_EQ(emu.console(), trace.console()) << what;
}

TEST(TraceCapture, ByteIdenticalToEmulatorForEveryWorkload)
{
    for (const auto &name : workloads::benchmarkNames()) {
        auto w = workloads::make(name, workloads::Scale::Test);
        expectSameStream(w, steadyPc(w), 3000, name);
    }
}

TEST(TraceCapture, BudgetAndFastForwardVariants)
{
    auto w = workloads::make("gzip", workloads::Scale::Test);
    // No fast-forward, including a budget of a single instruction.
    expectSameStream(w, 0, 1, "gzip ff=0 budget=1");
    expectSameStream(w, 0, 500, "gzip ff=0 budget=500");
    // Fast-forwarded, tiny and moderate budgets.
    expectSameStream(w, steadyPc(w), 1, "gzip steady budget=1");
    expectSameStream(w, steadyPc(w), 2500, "gzip steady budget=2500");
}

TEST(TraceCapture, UncappedCaptureRunsToHalt)
{
    // A Test-scale kernel runs to HALT under budget 0 (no cap); the
    // last record's stream position must coincide with the halted
    // emulator, and replay must deliver every record.
    auto w = workloads::make("mcf", workloads::Scale::Test);
    expectSameStream(w, 0, 0, "mcf to-halt");
}

TEST(WorkloadCacheTrace, SameKeyReturnsTheSameInstance)
{
    workloads::WorkloadCache cache;
    const func::CommittedTrace &a =
        cache.trace("gzip", workloads::Scale::Test, 2000, 0);
    const func::CommittedTrace &b =
        cache.trace("gzip", workloads::Scale::Test, 2000, 0);
    EXPECT_EQ(&a, &b) << "one trace per (workload, budget, ff) group";

    // Any key component changing must produce a distinct capture.
    const func::CommittedTrace &other_budget =
        cache.trace("gzip", workloads::Scale::Test, 1000, 0);
    EXPECT_NE(&a, &other_budget);
    EXPECT_EQ(other_budget.size(), 1000u);

    auto w = workloads::make("gzip", workloads::Scale::Test);
    const func::CommittedTrace &other_ff = cache.trace(
        "gzip", workloads::Scale::Test, 2000, steadyPc(w));
    EXPECT_NE(&a, &other_ff);
    EXPECT_GT(other_ff.fastForwarded(), 0u);
}

TEST(WorkloadCacheTrace, ConcurrentFirstUseCapturesOnce)
{
    workloads::WorkloadCache cache;
    std::vector<const func::CommittedTrace *> seen(8, nullptr);
    std::vector<std::thread> pool;
    for (size_t t = 0; t < seen.size(); ++t)
        pool.emplace_back([&cache, &seen, t] {
            seen[t] = &cache.trace("crafty", workloads::Scale::Test,
                                   1500, 0);
        });
    for (auto &t : pool)
        t.join();
    for (size_t t = 1; t < seen.size(); ++t)
        EXPECT_EQ(seen[t], seen[0]) << "thread " << t;
    EXPECT_EQ(seen[0]->size(), 1500u);
}

TEST(TraceReplay, SimulationMatchesEmulatorDrivenMetrics)
{
    // The acceptance criterion behind the trace cache: replaying the
    // captured stream through the timing core must give bit-identical
    // results to driving the emulator live — IPC doubles and all.
    for (const auto &name : {"gzip", "vpr", "twolf"}) {
        auto w = workloads::make(name, workloads::Scale::Full);
        uint64_t ff = steadyPc(w);
        sim::Machine m = sim::Machine::base(4);
        core::CoreConfig cfg = m.cfg;

        sim::Simulation live(w.program, cfg, 4000, ff);
        live.run();

        func::CommittedTrace trace =
            func::CommittedTrace::capture(w.program, ff, 4000);
        sim::Simulation replay(trace, cfg);
        replay.run();

        EXPECT_EQ(live.ipc(), replay.ipc()) << name;
        EXPECT_EQ(live.core().cycle(), replay.core().cycle()) << name;
        EXPECT_EQ(live.core().stats().committed.value(),
                  replay.core().stats().committed.value())
            << name;
        EXPECT_EQ(live.fastForwarded(), replay.fastForwarded())
            << name;
        EXPECT_EQ(live.console(), replay.console()) << name;
        EXPECT_TRUE(live.hasEmulator());
        EXPECT_FALSE(replay.hasEmulator());
        EXPECT_THROW(replay.emulator(), ConfigError);
    }
}

} // namespace
