/** @file Behavioural tests for the out-of-order core: base-machine
 *  timing, speculative scheduling and replay, and each half-price
 *  technique exercised by purpose-built micro-programs. */

#include <memory>

#include <gtest/gtest.h>

#include "sim/simulation.hh"

namespace
{

using namespace hpa;
using core::CoreConfig;
using core::RecoveryModel;
using core::RegfileModel;
using core::WakeupModel;

std::unique_ptr<sim::Simulation>
run(const std::string &src, const CoreConfig &cfg,
    uint64_t max_insts = 0)
{
    auto prog = assembler::assemble(src);
    auto s = std::make_unique<sim::Simulation>(prog, cfg, max_insts);
    s->run(5000000);
    return s;
}

CoreConfig
base4()
{
    return core::fourWideConfig();
}

/** Serial dependent ALU chain: one instruction per cycle steady state. */
const char *CHAIN = R"(
        li r1, 400
        clr r2
loop:   add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        sub r1, #1, r1
        bne r1, loop
        halt
)";

TEST(CoreBase, SerialChainRunsBackToBack)
{
    auto s = run(CHAIN, base4());
    // 8 dependent adds per iteration: the chain limits IPC to ~1.25
    // (sub/bne overlap). It must be close to the dataflow bound and
    // certainly not suffer bubbles between dependent adds.
    EXPECT_GT(s->ipc(), 1.0);
    EXPECT_LT(s->ipc(), 1.6);
}

TEST(CoreBase, IndependentOpsReachWidth)
{
    const char *src = R"(
        li r1, 400
loop:   add r2, #1, r2
        add r3, #1, r3
        add r4, #1, r4
        add r5, #1, r5
        add r6, #1, r6
        add r7, #1, r7
        add r8, #1, r8
        add r9, #1, r9
        sub r1, #1, r1
        bne r1, loop
        halt
)";
    auto s = run(src, base4());
    // Four independent chains: bounded by 4-wide fetch/issue.
    EXPECT_GT(s->ipc(), 2.8);
    EXPECT_LE(s->ipc(), 4.0);
}

TEST(CoreBase, CommittedMatchesEmulator)
{
    auto s = run(CHAIN, base4());
    EXPECT_TRUE(s->emulator().halted());
    EXPECT_EQ(s->core().stats().committed.value(),
              s->emulator().instCount());
}

TEST(CoreBase, Deterministic)
{
    auto a = run(CHAIN, base4());
    auto b = run(CHAIN, base4());
    EXPECT_EQ(a->core().cycle(), b->core().cycle());
    EXPECT_EQ(a->core().stats().issued.value(),
              b->core().stats().issued.value());
}

TEST(CoreBase, LoadUseLatencyVisible)
{
    // Pointer-chase in a tiny (always-hitting) ring: serial load-use
    // chain costs ~3 cycles per load (agen + 2-cycle DL1).
    const char *src = R"(
        la  r1, ring
        li  r2, 600
loop:   ldq r1, 0(r1)
        sub r2, #1, r2
        bne r2, loop
        halt
        .data
        .align 8
ring:   .word ring
)";
    auto s = run(src, base4());
    double cpl = double(s->core().cycle()) / 600.0;
    EXPECT_GT(cpl, 2.7);
    EXPECT_LT(cpl, 3.6);
}

TEST(CoreBase, DivideLatencyAndStructuralHazard)
{
    const char *src = R"(
        li r1, 40
        li r3, 7
loop:   div r3, #1, r4
        div r3, #1, r5
        div r3, #1, r6
        sub r1, #1, r1
        bne r1, loop
        halt
)";
    auto s = run(src, base4());
    // 120 independent divides on 2 unpipelined 20-cycle dividers:
    // at least 120/2 x 20 cycles, minus pipeline ramp.
    EXPECT_GT(double(s->core().cycle()), 1150.0);
}

TEST(CoreBase, MispredictsCostRefillTime)
{
    // Data-dependent branches on LCG bits: poorly predictable.
    const char *noisy = R"(
        li r10, 12345
        li r11, 1103515245
        li r12, 12345
        li r1, 400
loop:   mul r10, r11, r10
        add r10, r12, r10
        srl r10, #17, r2
        and r2, #1, r2
        beq r2, skip
        add r3, #1, r3
skip:   sub r1, #1, r1
        bne r1, loop
        halt
)";
    auto s = run(noisy, base4());
    const auto &st = s->core().stats();
    EXPECT_GT(st.branchMispredicts.value(), 50u);
    // Each mispredict costs at least the 11-cycle refill.
    EXPECT_GT(s->core().cycle(),
              st.branchMispredicts.value() * 11);
}

TEST(CoreBase, WindowLimitRespected)
{
    CoreConfig tiny = base4();
    tiny.ruu_size = 8;
    tiny.lsq_size = 4;
    auto s = run(CHAIN, tiny);
    EXPECT_TRUE(s->emulator().halted());
    // A small window must be slower than the 64-entry window.
    auto big = run(CHAIN, base4());
    EXPECT_GE(s->core().cycle(), big->core().cycle());
}

TEST(CoreBase, StoreLoadForwardingThroughMemory)
{
    // A store followed by a dependent load of the same address.
    const char *src = R"(
        la  r1, slot
        li  r2, 300
        clr r3
loop:   stq r3, 0(r1)
        ldq r3, 0(r1)
        add r3, #1, r3
        sub r2, #1, r2
        bne r2, loop
        halt
        .data
        .align 8
slot:   .space 8
)";
    auto s = run(src, base4());
    EXPECT_TRUE(s->emulator().halted());
    // Forwarding keeps this from paying miss latencies; the final
    // architectural value proves the ordering was preserved.
    EXPECT_EQ(s->emulator().intReg(3), 300);
}

// --- Speculative scheduling / replay. ---

const char *MISSY = R"(
        li  r1, 300
        la  r2, arr
        clr r3
loop:   ldq r4, 0(r2)
        add r4, r3, r3
        add r3, #1, r3
        lda r2, 4096(r2)
        sub r1, #1, r1
        bne r1, loop
        halt
        .data
        .align 8
arr:    .space 8
)";

TEST(Replay, LoadMissesTriggerReplays)
{
    auto s = run(MISSY, base4());
    const auto &st = s->core().stats();
    EXPECT_GT(st.loadMissReplays.value(), 100u);
    EXPECT_GT(st.squashedIssues.value(), 0u);
    EXPECT_EQ(st.issued.value(),
              st.committed.value() + st.squashedIssues.value());
}

TEST(Replay, HitOnlyProgramsNeverReplay)
{
    auto s = run(CHAIN, base4());
    EXPECT_EQ(s->core().stats().loadMissReplays.value(), 0u);
}

TEST(Replay, SelectiveSquashesNoMoreThanNonSelective)
{
    CoreConfig nonsel = base4();
    CoreConfig sel = base4();
    sel.recovery = RecoveryModel::Selective;
    auto a = run(MISSY, nonsel);
    auto b = run(MISSY, sel);
    EXPECT_LE(b->core().stats().squashedIssues.value(),
              a->core().stats().squashedIssues.value());
    EXPECT_LE(b->core().cycle(), a->core().cycle() + 10);
}

// --- Characterization statistics. ---

TEST(Characterization, ReadyAtInsertMatchesConstruction)
{
    // r8/r9 are produced long before the loop: every 2-source add in
    // the loop sees both operands ready at insert.
    const char *src = R"(
        li r8, 3
        li r9, 4
        li r1, 300
loop:   add r8, r9, r10
        sub r1, #1, r1
        bne r1, loop
        halt
)";
    auto s = run(src, base4());
    const auto &d = s->core().stats().readyAtInsert;
    EXPECT_GT(d.total(), 250u);
    EXPECT_GT(d.fraction(2), 0.95);
}

TEST(Characterization, TwoPendingDetected)
{
    // r2 and r4 both derive from the loop-carried r5: two pending
    // operands at insert for the combining add.
    const char *src = R"(
        li r1, 300
        clr r5
loop:   add r5, #1, r2
        add r5, #2, r4
        add r2, r4, r5
        sub r1, #1, r1
        bne r1, loop
        halt
)";
    auto s = run(src, base4());
    const auto &d = s->core().stats().readyAtInsert;
    EXPECT_GT(d.fraction(0), 0.9);
    // Both producers issue in the same cycle: slack 0 (simultaneous).
    const auto &slack = s->core().stats().wakeupSlack;
    EXPECT_GT(slack.fraction(0), 0.9);
}

TEST(Characterization, WakeupSlackOfMulAddPair)
{
    // Producers with latencies 3 (mul) and 1 (add) started in the
    // same cycle: slack 2 between operand wakeups.
    const char *src = R"(
        li r1, 300
        clr r5
loop:   mul r5, #3, r2
        add r5, #2, r4
        add r2, r4, r5
        sub r1, #1, r1
        bne r1, loop
        halt
)";
    auto s = run(src, base4());
    const auto &slack = s->core().stats().wakeupSlack;
    EXPECT_GT(slack.total(), 250u);
    EXPECT_GT(slack.fraction(2), 0.9);
    // The mul (left field) always arrives last.
    const auto &st = s->core().stats();
    EXPECT_GT(st.leftLast.value(), 250u);
    EXPECT_EQ(st.rightLast.value(), 0u);
    // Stable order: same as previous occurrence nearly always.
    EXPECT_GT(st.orderSame.value(), st.orderDiff.value() * 50);
}

TEST(Characterization, FormatCountsPartitionCommits)
{
    auto s = run(MISSY, base4());
    const auto &st = s->core().stats();
    EXPECT_EQ(st.fmt2srcInsts.value() + st.fmtStores.value()
              + st.fmtOther.value(),
              st.committed.value());
    EXPECT_EQ(st.fmtNops.value() + st.fmtOneUnique.value()
              + st.fmtTwoUnique.value(),
              st.fmt2srcInsts.value());
}

TEST(Characterization, RfCategoriesPartitionTwoSourceIssues)
{
    auto s = run(MISSY, base4());
    const auto &st = s->core().stats();
    EXPECT_EQ(st.rfBackToBack.value() + st.rfTwoReady.value()
              + st.rfNonBackToBack.value(),
              st.fmtTwoUnique.value());
}

// --- Sequential wakeup (Section 3.3). ---

/** Simultaneous-wakeup-dominated loop (carried 2-cycle recurrence). */
const char *SIMUL = R"(
        li r1, 500
        clr r5
loop:   add r5, #1, r2
        add r5, #2, r4
        add r2, r4, r5
        add r2, r4, r6
        sub r1, #1, r1
        bne r1, loop
        halt
)";

TEST(SequentialWakeup, SimultaneousWakeupCostsOneCycle)
{
    CoreConfig conv = base4();
    CoreConfig seq = base4();
    seq.wakeup = WakeupModel::Sequential;
    auto a = run(SIMUL, conv);
    auto b = run(SIMUL, seq);
    uint64_t extra = b->core().cycle() - a->core().cycle();
    // One extra cycle per iteration (the carried add waits for the
    // slow bus), within scheduling noise.
    EXPECT_GT(extra, 400u);
    EXPECT_LT(extra, 650u);
    EXPECT_GT(b->core().stats().seqWakeupDelayed.value(), 400u);
}

TEST(SequentialWakeup, PredictableLastArrivalIsFree)
{
    // mul (left) always last: the predictor learns to put it on the
    // fast side, hiding the slow bus entirely.
    const char *src = R"(
        li r1, 500
        clr r5
loop:   mul r5, #3, r2
        add r5, #2, r4
        add r2, r4, r5
        sub r1, #1, r1
        bne r1, loop
        halt
)";
    CoreConfig conv = base4();
    CoreConfig seq = base4();
    seq.wakeup = WakeupModel::Sequential;
    auto a = run(src, conv);
    auto b = run(src, seq);
    EXPECT_LE(b->core().cycle(), a->core().cycle() + 40);
}

TEST(SequentialWakeup, NoPredPenalizesLeftLastArrivals)
{
    // Actual last-arriving operand is the LEFT field (mul). The
    // no-predictor variant statically fast-sides the right operand,
    // so every iteration pays the slow-bus cycle; the predictor
    // variant learns and avoids it.
    const char *src = R"(
        li r1, 500
        clr r5
loop:   mul r5, #3, r2
        add r5, #2, r4
        add r2, r4, r5
        sub r1, #1, r1
        bne r1, loop
        halt
)";
    CoreConfig pred = base4();
    pred.wakeup = WakeupModel::Sequential;
    CoreConfig nopred = base4();
    nopred.wakeup = WakeupModel::SequentialNoPred;
    auto a = run(src, pred);
    auto b = run(src, nopred);
    EXPECT_GT(b->core().cycle(), a->core().cycle() + 350);
}

TEST(SequentialWakeup, NeverSquashes)
{
    CoreConfig seq = base4();
    seq.wakeup = WakeupModel::Sequential;
    auto s = run(SIMUL, seq);
    // Sequential wakeup requires no scheduling recovery of its own
    // (no loads miss in this program).
    EXPECT_EQ(s->core().stats().squashedIssues.value(), 0u);
    EXPECT_EQ(s->core().stats().tagElimMisissues.value(), 0u);
}

// --- Tag elimination (Section 3.1 / 5.1 reference scheme). ---

/** Both operands of the combining add come from long-latency
 *  producers whose arrival order alternates every iteration at the
 *  same PC: the last-arrival predictor is wrong ~50% of the time. */
const char *ALTERNATING = R"(
        li r1, 250
        clr r5
loop:   and r1, #1, r7
        beq r7, even
        mul r5, #3, r2
        add r5, #1, r9
        mul r9, #5, r4
        br join
even:   add r5, #1, r9
        mul r9, #5, r2
        mul r5, #3, r4
join:   add r2, r4, r5
        sub r1, #1, r1
        bne r1, loop
        halt
)";

TEST(TagElimination, MisissuesDetectedAndRecovered)
{
    CoreConfig te = base4();
    te.wakeup = WakeupModel::TagElimination;
    auto s = run(ALTERNATING, te);
    EXPECT_GT(s->core().stats().tagElimMisissues.value(), 100u);
    // Non-selective recovery drags independent instructions along:
    // several squashes per mis-schedule.
    EXPECT_GT(s->core().stats().squashedIssues.value(),
              s->core().stats().tagElimMisissues.value() * 2);
    EXPECT_TRUE(s->emulator().halted());
}

TEST(TagElimination, MispredictionsCostCyclesUnlikeConventional)
{
    CoreConfig te = base4();
    te.wakeup = WakeupModel::TagElimination;
    auto a = run(ALTERNATING, te);
    auto b = run(ALTERNATING, base4());
    EXPECT_GT(a->core().cycle(), b->core().cycle() + 80);
}

TEST(TagElimination, RecoveryCostAtLeastSlowBusCost)
{
    // Figure 14: sequential wakeup's worst case (one slow-bus cycle)
    // never exceeds tag elimination's mis-schedule + replay cost on
    // the same stream; on the narrow machine they can tie.
    CoreConfig te = base4();
    te.wakeup = WakeupModel::TagElimination;
    CoreConfig sw = base4();
    sw.wakeup = WakeupModel::Sequential;
    auto a = run(ALTERNATING, te);
    auto b = run(ALTERNATING, sw);
    EXPECT_GE(a->core().cycle() + 5, b->core().cycle());
    // Sequential wakeup pays with delayed issues but never recovers;
    // tag elimination pays with squashed issue bandwidth.
    EXPECT_EQ(b->core().stats().squashedIssues.value(), 0u);
    EXPECT_GT(a->core().stats().squashedIssues.value(), 300u);
}

TEST(TagElimination, WiderMachineAmplifiesRecoveryCost)
{
    // Section 5.1: the tag-elimination penalty grows with machine
    // width (more instructions squashed per mis-schedule).
    CoreConfig te8 = core::eightWideConfig();
    te8.wakeup = WakeupModel::TagElimination;
    auto a = run(ALTERNATING, te8);
    CoreConfig te4 = base4();
    te4.wakeup = WakeupModel::TagElimination;
    auto b = run(ALTERNATING, te4);
    double per_miss_8 = double(a->core().stats().squashedIssues.value())
        / double(std::max<uint64_t>(
              1, a->core().stats().tagElimMisissues.value()));
    double per_miss_4 = double(b->core().stats().squashedIssues.value())
        / double(std::max<uint64_t>(
              1, b->core().stats().tagElimMisissues.value()));
    EXPECT_GE(per_miss_8 + 0.5, per_miss_4);
}

TEST(TagElimination, CleanWhenOperandsReadyAtInsert)
{
    const char *src = R"(
        li r8, 3
        li r9, 4
        li r1, 300
loop:   add r8, r9, r10
        sub r1, #1, r1
        bne r1, loop
        halt
)";
    CoreConfig te = base4();
    te.wakeup = WakeupModel::TagElimination;
    auto s = run(src, te);
    EXPECT_EQ(s->core().stats().tagElimMisissues.value(), 0u);
}

// --- Sequential register access (Section 4.3). ---

/** Every loop add reads two long-ready registers: worst case for a
 *  single read port per slot. Eight per iteration so the register
 *  port demand (not fetch) is the binding resource. */
const char *TWO_READY = R"(
        li r8, 3
        li r9, 4
        li r1, 400
loop:   add r8, r9, r10
        add r8, r9, r11
        add r8, r9, r12
        add r8, r9, r13
        add r8, r9, r14
        add r8, r9, r15
        add r8, r9, r16
        add r8, r9, r17
        sub r1, #1, r1
        bne r1, loop
        halt
)";

TEST(SeqRegAccess, PenaltyAppliedToTwoReadyInstructions)
{
    CoreConfig seqrf = base4();
    seqrf.regfile = RegfileModel::SequentialAccess;
    auto s = run(TWO_READY, seqrf);
    EXPECT_GT(s->core().stats().seqRegAccesses.value(), 3000u);
    auto b = run(TWO_READY, base4());
    // Issue-slot blocking costs ~1.4x on this adversarial kernel.
    EXPECT_GT(s->core().cycle(), b->core().cycle() * 135 / 100);
}

TEST(SeqRegAccess, BypassCapturedOperandsAvoidPenalty)
{
    // Serial chain: consumers issue back-to-back with producers, so
    // one operand is always caught on the bypass.
    CoreConfig seqrf = base4();
    seqrf.regfile = RegfileModel::SequentialAccess;
    auto s = run(CHAIN, seqrf);
    auto b = run(CHAIN, base4());
    EXPECT_LE(s->core().cycle(), b->core().cycle() + 30);
}

TEST(SeqRegAccess, DelaysDependentByOneCycle)
{
    // Loop-carried chain through a 2-ready-operand instruction: each
    // iteration pays +1 cycle latency for the sequential read.
    const char *src = R"(
        li r8, 0
        li r9, 1
        li r1, 400
loop:   add r8, r9, r10   ; both from RF
        add r10, #1, r11  ; dependent
        sub r1, #1, r1
        bne r1, loop
        halt
)";
    CoreConfig seqrf = base4();
    seqrf.regfile = RegfileModel::SequentialAccess;
    auto a = run(src, seqrf);
    auto b = run(src, base4());
    EXPECT_GT(a->core().cycle(), b->core().cycle());
}

TEST(HalfPortCrossbar, PortArbitrationLimitsIssue)
{
    CoreConfig xbar = base4();
    xbar.regfile = RegfileModel::HalfPortCrossbar;
    auto s = run(TWO_READY, xbar);
    auto b = run(TWO_READY, base4());
    // 8 two-port instructions per iteration demand 16 reads against
    // 4 total ports: global arbitration limits issue, with no
    // sequential-access penalties.
    EXPECT_GT(s->core().cycle(), b->core().cycle() * 12 / 10);
    EXPECT_EQ(s->core().stats().seqRegAccesses.value(), 0u);
}

TEST(ExtraRfStage, DeepensMispredictLoop)
{
    const char *noisy = R"(
        li r10, 999
        li r11, 1103515245
        li r12, 12345
        li r1, 300
loop:   mul r10, r11, r10
        add r10, r12, r10
        srl r10, #17, r2
        and r2, #1, r2
        beq r2, skip
        add r3, #1, r3
skip:   sub r1, #1, r1
        bne r1, loop
        halt
)";
    CoreConfig extra = base4();
    extra.regfile = RegfileModel::ExtraStage;
    auto a = run(noisy, extra);
    auto b = run(noisy, base4());
    EXPECT_GT(a->core().cycle(), b->core().cycle());
}

// --- Combined techniques (Section 5.3). ---

TEST(Combined, RunsCorrectlyAndSlowerThanBase)
{
    CoreConfig comb = base4();
    comb.wakeup = WakeupModel::Sequential;
    comb.regfile = RegfileModel::SequentialAccess;
    auto a = run(SIMUL, comb);
    auto b = run(SIMUL, base4());
    EXPECT_TRUE(a->emulator().halted());
    EXPECT_GE(a->core().cycle(), b->core().cycle());
    // Simultaneous wakeups force sequential register access in the
    // combined configuration (Section 5.3).
    EXPECT_GT(a->core().stats().seqRegAccesses.value(), 100u);
}

// --- Half-price renaming (Section 6 future-work extension). ---

TEST(HalfPortRename, TwoSourceGroupsSplit)
{
    // 8 two-source adds per iteration want 16 map lookups against 4
    // rename ports: dispatch groups split every cycle.
    CoreConfig rn = base4();
    rn.rename = core::RenameModel::HalfPort;
    auto s = run(TWO_READY, rn);
    EXPECT_GT(s->core().stats().renameStalls.value(), 500u);
    auto b = run(TWO_READY, base4());
    EXPECT_GT(s->core().cycle(), b->core().cycle());
}

TEST(HalfPortRename, SingleSourceCodeUnaffected)
{
    CoreConfig rn = base4();
    rn.rename = core::RenameModel::HalfPort;
    auto s = run(CHAIN, rn);
    auto b = run(CHAIN, base4());
    // One lookup per instruction fits W ports at W-wide dispatch.
    EXPECT_EQ(s->core().stats().renameStalls.value(), 0u);
    EXPECT_EQ(s->core().cycle(), b->core().cycle());
}

TEST(HalfPortRename, BaseMachineNeverStalls)
{
    auto s = run(TWO_READY, base4());
    EXPECT_EQ(s->core().stats().renameStalls.value(), 0u);
}

// --- Bypass window (Section 4.2 relaxation). ---

TEST(BypassWindow, WiderWindowCutsSequentialAccesses)
{
    // Combined machine on the simultaneous-wakeup kernel: the
    // slow-side operand arrives one cycle before issue, so a 2-cycle
    // bypass window catches it and clears seq_reg_access.
    CoreConfig w1 = base4();
    w1.wakeup = WakeupModel::Sequential;
    w1.regfile = RegfileModel::SequentialAccess;
    CoreConfig w2 = w1;
    w2.bypass_window = 2;
    auto a = run(SIMUL, w1);
    auto b = run(SIMUL, w2);
    EXPECT_LT(b->core().stats().seqRegAccesses.value(),
              a->core().stats().seqRegAccesses.value() / 2);
    EXPECT_LE(b->core().cycle(), a->core().cycle());
}

TEST(BypassWindow, AncientOperandsStillReadPorts)
{
    // Operands written long ago are beyond any plausible window.
    CoreConfig w3 = base4();
    w3.regfile = RegfileModel::SequentialAccess;
    w3.bypass_window = 3;
    auto s = run(TWO_READY, w3);
    EXPECT_GT(s->core().stats().seqRegAccesses.value(), 3000u);
}

// --- Commit listener. ---

TEST(CommitListener, ObservesEveryCommitInOrder)
{
    auto prog = assembler::assemble(CHAIN);
    sim::Simulation s(prog, base4());
    uint64_t count = 0;
    uint64_t last_seq = 0;
    bool ordered = true;
    s.core().setCommitListener(
        [&](const core::DynInst &di, uint64_t commit) {
            if (count > 0 && di.seq != last_seq + 1)
                ordered = false;
            last_seq = di.seq;
            ++count;
            // Milestones are monotonic.
            EXPECT_LE(di.fetchCycle, di.dispatchCycle);
            EXPECT_LT(di.dispatchCycle, di.issueCycle);
            EXPECT_LT(di.issueCycle, di.completeCycle);
            EXPECT_LT(di.completeCycle, commit);
        });
    s.run(5000000);
    EXPECT_TRUE(ordered);
    EXPECT_EQ(count, s.core().stats().committed.value());
}

// --- Property sweep over synthetic streams and configurations. ---

struct SweepParam
{
    WakeupModel wakeup;
    RegfileModel regfile;
    RecoveryModel recovery;
    uint64_t seed;
};

class CoreSweep : public ::testing::TestWithParam<SweepParam>
{};

TEST_P(CoreSweep, InvariantsHold)
{
    const SweepParam &p = GetParam();
    core::SyntheticParams sp;
    sp.num_insts = 6000;
    sp.seed = p.seed;
    core::SyntheticSource src(sp);

    CoreConfig cfg = core::fourWideConfig();
    cfg.wakeup = p.wakeup;
    cfg.regfile = p.regfile;
    cfg.recovery = p.recovery;

    core::Core c(cfg, src);
    c.run(4000000);
    ASSERT_TRUE(c.done());

    const auto &st = c.stats();
    EXPECT_EQ(st.committed.value(), sp.num_insts);
    EXPECT_EQ(st.dispatched.value(), st.committed.value());
    // Every issue event either commits or is squashed.
    EXPECT_EQ(st.issued.value(),
              st.committed.value() + st.squashedIssues.value());
    // Format classes partition commits.
    EXPECT_EQ(st.fmt2srcInsts.value() + st.fmtStores.value()
              + st.fmtOther.value(),
              st.committed.value());
    // Figure 4 samples exactly the 2-unique-source instructions.
    EXPECT_EQ(st.readyAtInsert.total(), st.fmtTwoUnique.value());
    // Figure 10 categories partition them as well.
    EXPECT_EQ(st.rfBackToBack.value() + st.rfTwoReady.value()
              + st.rfNonBackToBack.value(),
              st.fmtTwoUnique.value());
    // Every 2-pending instruction resolves its wakeup order once.
    EXPECT_EQ(st.wakeupSlack.total(), st.readyAtInsert.bucket(0));
    EXPECT_EQ(st.leftLast.value() + st.rightLast.value(),
              st.wakeupSlack.total() - st.wakeupSlack.bucket(0));
    EXPECT_LE(c.ipc(), double(cfg.width));
    EXPECT_GT(c.ipc(), 0.0);
}

std::vector<SweepParam>
sweepGrid()
{
    std::vector<SweepParam> out;
    for (auto w : {WakeupModel::Conventional, WakeupModel::Sequential,
                   WakeupModel::SequentialNoPred,
                   WakeupModel::TagElimination})
        for (auto r : {RegfileModel::TwoPort,
                       RegfileModel::SequentialAccess,
                       RegfileModel::ExtraStage,
                       RegfileModel::HalfPortCrossbar})
            for (uint64_t seed : {7ull, 1234ull})
                out.push_back(SweepParam{
                    w, r,
                    seed % 2 ? RecoveryModel::Selective
                             : RecoveryModel::NonSelective,
                    seed});
    return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, CoreSweep,
                         ::testing::ValuesIn(sweepGrid()));

} // namespace
