/** @file Differential and fuzz tests: decoder robustness on random
 *  words, disassemble->assemble round trips, sparse memory vs a
 *  reference map, cache vs a reference LRU model, emulator
 *  determinism on random straight-line programs, and the core's
 *  incremental scheduler lists vs a brute-force window recompute. */

#include <map>
#include <random>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/core.hh"
#include "core/event_queue.hh"
#include "core/inst_source.hh"
#include "core/issue_window.hh"
#include "func/emulator.hh"
#include "mem/cache.hh"

namespace
{

using namespace hpa;
using isa::Opcode;

TEST(DecoderFuzz, RandomWordsNeverCrashAndReencodeStably)
{
    std::mt19937_64 rng(42);
    unsigned decoded = 0;
    for (int i = 0; i < 200000; ++i) {
        auto w = static_cast<isa::MachInst>(rng());
        auto si = isa::decode(w);
        if (!si)
            continue;
        ++decoded;
        // Decode must be stable across an encode round trip.
        auto si2 = isa::decode(isa::encode(*si));
        ASSERT_TRUE(si2.has_value());
        EXPECT_EQ(si2->op, si->op);
        EXPECT_EQ(si2->ra, si->ra);
        EXPECT_EQ(si2->rb, si->rb);
        EXPECT_EQ(si2->rc, si->rc);
        EXPECT_EQ(si2->useLiteral, si->useLiteral);
        EXPECT_EQ(si2->literal, si->literal);
        EXPECT_EQ(si2->disp, si->disp);
        // Disassembly of any legal instruction is printable.
        EXPECT_FALSE(si->disassemble().empty());
    }
    // A healthy fraction of random words decode.
    EXPECT_GT(decoded, 10000u);
}

TEST(DisasmFuzz, DisassembleAssembleRoundTrip)
{
    std::mt19937_64 rng(7);
    auto reg = [&] { return isa::RegIndex(rng() & 31); };

    for (int i = 0; i < 4000; ++i) {
        isa::StaticInst si;
        switch (rng() % 6) {
          case 0: {
            auto op = Opcode(rng() % (unsigned(Opcode::S8ADD) + 1));
            si = rng() & 1
                ? isa::makeOpImm(op, reg(), uint8_t(rng()), reg())
                : isa::makeOp(op, reg(), reg(), reg());
            break;
          }
          case 1: {
            unsigned base = unsigned(Opcode::ADDF);
            auto op = Opcode(base + rng() % 7);   // 2-source fp ops
            si = isa::makeOp(op, reg(), reg(), reg());
            break;
          }
          case 2: {
            const Opcode mem[] = {Opcode::LDA, Opcode::LDAH,
                                  Opcode::LDBU, Opcode::LDW,
                                  Opcode::LDL, Opcode::LDQ,
                                  Opcode::STB, Opcode::STW,
                                  Opcode::STL, Opcode::STQ};
            si = isa::makeMem(mem[rng() % 10], reg(), reg(),
                              int32_t(rng() % 65536) - 32768);
            break;
          }
          case 3: {
            const Opcode br[] = {Opcode::BR, Opcode::BSR, Opcode::BEQ,
                                 Opcode::BNE, Opcode::BLT, Opcode::BLE,
                                 Opcode::BGT, Opcode::BGE,
                                 Opcode::BLBC, Opcode::BLBS};
            si = isa::makeBranch(br[rng() % 10], reg(),
                                 int32_t(rng() % 1024) - 512);
            break;
          }
          case 4: {
            const Opcode j[] = {Opcode::JMP, Opcode::JSR, Opcode::RET};
            si = isa::makeJump(j[rng() % 3], reg(), reg());
            break;
          }
          default:
            si = rng() & 1 ? isa::makeSystem(Opcode::HALT)
                           : isa::makeSystem(Opcode::OUT, reg());
        }

        std::string text = si.disassemble();
        assembler::Program p;
        ASSERT_NO_THROW(p = assembler::assemble(text)) << text;
        ASSERT_EQ(p.code.size(), 1u) << text;
        auto back = isa::decode(p.code[0]);
        ASSERT_TRUE(back.has_value()) << text;
        EXPECT_EQ(back->op, si.op) << text;
        EXPECT_EQ(back->disp, si.disp) << text;
        EXPECT_EQ(isa::encode(*back), isa::encode(si)) << text;
    }
}

TEST(MemoryFuzz, MatchesReferenceMap)
{
    std::mt19937_64 rng(99);
    func::Memory mem;
    std::map<uint64_t, uint8_t> ref;

    for (int i = 0; i < 50000; ++i) {
        // Cluster addresses to hit page boundaries often.
        uint64_t addr = (rng() % 8) * func::Memory::PAGE_SIZE
            + (rng() % 32) + func::Memory::PAGE_SIZE - 16;
        unsigned size = 1u << (rng() % 4);
        if (rng() & 1) {
            uint64_t v = rng();
            mem.write(addr, v, size);
            for (unsigned b = 0; b < size; ++b)
                ref[addr + b] = uint8_t(v >> (8 * b));
        } else {
            uint64_t got = mem.read(addr, size);
            uint64_t want = 0;
            for (unsigned b = 0; b < size; ++b) {
                auto it = ref.find(addr + b);
                uint64_t byte = it == ref.end() ? 0 : it->second;
                want |= byte << (8 * b);
            }
            ASSERT_EQ(got, want) << "addr " << addr << " size " << size;
        }
    }
}

/** Reference set-associative LRU cache. */
class RefCache
{
  public:
    RefCache(unsigned sets, unsigned assoc, unsigned line)
        : sets_(sets), assoc_(assoc), line_(line), data_(sets)
    {}

    bool
    access(uint64_t addr)
    {
        uint64_t tag = addr / line_;
        auto &set = data_[(addr / line_) % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == tag) {
                set.erase(it);
                set.insert(set.begin(), tag);
                return true;
            }
        }
        set.insert(set.begin(), tag);
        if (set.size() > assoc_)
            set.pop_back();
        return false;
    }

  private:
    unsigned sets_, assoc_, line_;
    std::vector<std::vector<uint64_t>> data_;
};

class CacheFuzz
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(CacheFuzz, MatchesReferenceLru)
{
    auto [assoc, line] = GetParam();
    unsigned sets = 16;
    mem::Cache cache(mem::CacheConfig{
        "fuzz", uint64_t(sets) * assoc * line, assoc, line, 1});
    RefCache ref(sets, assoc, line);

    std::mt19937_64 rng(assoc * 1000 + line);
    for (int i = 0; i < 30000; ++i) {
        uint64_t addr = rng() % (sets * assoc * line * 4);
        bool hit = cache.access(addr, rng() & 1).hit;
        bool ref_hit = ref.access(addr);
        ASSERT_EQ(hit, ref_hit) << "i=" << i << " addr=" << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheFuzz,
    ::testing::Values(std::tuple{1u, 16u}, std::tuple{2u, 16u},
                      std::tuple{4u, 32u}, std::tuple{8u, 64u}));

/**
 * Ready-list invariant fuzz: drive the core cycle by cycle on a
 * synthetic committed path (loads, stores, branches, replays) under
 * every wakeup/recovery/regfile family and assert after each tick
 * that the incrementally maintained ready/issued/store lists match a
 * brute-force recompute over the whole window. Small window and LSQ
 * force frequent ring-buffer wraps and replay squashes.
 */
TEST(CoreReadyListFuzz, IncrementalListsMatchBruteForceEveryCycle)
{
    struct ModelMix
    {
        core::WakeupModel wakeup;
        core::RegfileModel regfile;
        core::RecoveryModel recovery;
        const char *tag;
    };
    const ModelMix mixes[] = {
        {core::WakeupModel::Conventional, core::RegfileModel::TwoPort,
         core::RecoveryModel::NonSelective, "conv/nonsel"},
        {core::WakeupModel::Conventional, core::RegfileModel::TwoPort,
         core::RecoveryModel::Selective, "conv/sel"},
        {core::WakeupModel::Sequential,
         core::RegfileModel::SequentialAccess,
         core::RecoveryModel::NonSelective, "seqw/seqrf"},
        {core::WakeupModel::SequentialNoPred,
         core::RegfileModel::TwoPort, core::RecoveryModel::Selective,
         "seqnp/sel"},
        {core::WakeupModel::TagElimination,
         core::RegfileModel::TwoPort,
         core::RecoveryModel::NonSelective, "tagelim/nonsel"},
    };

    for (const auto &mix : mixes) {
        for (uint64_t seed : {1ull, 77ull, 4242ull}) {
            core::SyntheticParams sp;
            sp.num_insts = 3000;
            sp.seed = seed;
            sp.load_frac = 0.25;
            sp.store_frac = 0.15;
            core::SyntheticSource src(sp);

            core::CoreConfig cfg = core::fourWideConfig();
            cfg.ruu_size = 32;
            cfg.lsq_size = 16;
            cfg.wakeup = mix.wakeup;
            cfg.regfile = mix.regfile;
            cfg.recovery = mix.recovery;

            core::Core c(cfg, src);
            uint64_t guard = 0;
            while (!c.done() && guard++ < 200000) {
                c.tick();
                ASSERT_TRUE(c.readyListConsistent())
                    << mix.tag << " seed " << seed << " cycle "
                    << c.cycle();
            }
            ASSERT_TRUE(c.done()) << mix.tag << " seed " << seed;
            EXPECT_TRUE(c.readyListSnapshot().empty())
                << mix.tag << " seed " << seed;
            EXPECT_EQ(c.stats().committed.value(), sp.num_insts)
                << mix.tag << " seed " << seed;
        }
    }
}

TEST(CalendarQueueFuzz, MatchesMapReferenceIncludingOverflow)
{
    // Differential fuzz of the calendar event queue against the
    // std::map<cycle, per-rank vectors> structure it replaced: random
    // deltas spanning the ring (1..255), the exact ring horizon
    // (255/256 boundary) and far-future overflow territory (up to ~8
    // ring spans), with new events scheduled while a bucket is being
    // drained — exactly what core event handlers do, and a random
    // delivery rank per event so the rank-split planes (including
    // overflow migration per plane) are exercised. Per cycle each
    // rank's drained vector must match the reference in content AND
    // order.
    using RankedBucket = std::array<std::vector<uint32_t>, 3>;
    for (uint64_t seed : {7ull, 1234ull, 998877ull}) {
        std::mt19937_64 rng(seed);
        core::CalendarQueue<uint32_t, 3> q; // 256-slot default ring
        std::map<uint64_t, RankedBucket> ref;
        uint32_t next_id = 0;

        auto scheduleRandom = [&](uint64_t now) {
            uint64_t delta;
            switch (rng() % 4) {
              case 0:
                delta = 1 + rng() % 254;             // ring interior
                break;
              case 1:
                delta = 254 + rng() % 4;             // 254..257: the
                break;                               // ring horizon
              case 2:
                delta = 257 + rng() % 1791;          // overflow
                break;
              default:
                delta = 1 + rng() % 2047;            // anywhere
                break;
            }
            uint32_t id = next_id++;
            unsigned rank = unsigned(rng() % 3);
            q.schedule(now + delta, now, id, rank);
            ref[now + delta][rank].push_back(id);
        };

        uint64_t now = 0;
        for (int step = 0; step < 4000; ++step) {
            ++now;
            RankedBucket &bucket = q.beginCycle(now);
            auto it = ref.find(now);
            const RankedBucket empty;
            const RankedBucket &want =
                it != ref.end() ? it->second : empty;
            ASSERT_EQ(bucket, want)
                << "seed " << seed << " cycle " << now;
            // Handlers schedule follow-up events mid-drain; the
            // bucket reference must stay valid and unperturbed.
            size_t before = bucket[0].size() + bucket[1].size()
                + bucket[2].size();
            for (unsigned k = rng() % 4; k > 0; --k)
                scheduleRandom(now);
            ASSERT_EQ(bucket[0].size() + bucket[1].size()
                          + bucket[2].size(),
                      before)
                << "seed " << seed << " cycle " << now;
            q.endCycle(now);
            if (it != ref.end())
                ref.erase(it);
        }

        // Drain everything left so the accounting closes.
        size_t left = 0;
        for (const auto &[when, evs] : ref)
            for (const auto &r : evs)
                left += r.size();
        ASSERT_EQ(q.pending(), left) << "seed " << seed;
        while (!ref.empty()) {
            ++now;
            RankedBucket &bucket = q.beginCycle(now);
            auto it = ref.find(now);
            if (it != ref.end()) {
                ASSERT_EQ(bucket, it->second)
                    << "seed " << seed << " cycle " << now;
                ref.erase(it);
            } else {
                ASSERT_TRUE(bucket[0].empty() && bucket[1].empty()
                            && bucket[2].empty())
                    << "seed " << seed << " cycle " << now;
            }
            q.endCycle(now);
        }
        ASSERT_EQ(q.pending(), 0u) << "seed " << seed;
        ASSERT_EQ(q.overflowPending(), 0u) << "seed " << seed;
    }
}

TEST(CoreEventOverflowFuzz, FarFutureLatenciesKeepListsConsistent)
{
    // Drive real cores whose completion events land beyond the
    // 256-cycle calendar ring (memory latency 1500, div-heavy
    // synthetic streams), so load-miss completions take the overflow
    // path while ALU wakes stay in the ring. The incremental
    // scheduler lists and the consumer pool must stay consistent
    // every cycle, and the run must still commit every instruction.
    for (uint64_t seed : {5ull, 909ull}) {
        core::SyntheticParams sp;
        sp.num_insts = 2000;
        sp.seed = seed;
        sp.load_frac = 0.30;
        sp.store_frac = 0.10;
        // Small span so the same lines thrash between hits/misses.
        sp.mem_span = 1 << 14;
        core::SyntheticSource src(sp);

        core::CoreConfig cfg = core::fourWideConfig();
        cfg.ruu_size = 32;
        cfg.lsq_size = 16;
        cfg.mem.mem_latency = 1500; // far past the ring horizon
        cfg.watchdog_cycles = 500000;

        core::Core c(cfg, src);
        uint64_t guard = 0;
        while (!c.done() && guard++ < 2000000) {
            c.tick();
            ASSERT_TRUE(c.readyListConsistent())
                << "seed " << seed << " cycle " << c.cycle();
        }
        ASSERT_TRUE(c.done()) << "seed " << seed;
        EXPECT_EQ(c.stats().committed.value(), sp.num_insts)
            << "seed " << seed;
    }
}

/**
 * ReadyMaskFuzz: the masked engine's bit planes on randomized
 * dependence chains. Every N cycles the planes are cross-validated
 * against readyListConsistent()'s brute-force model-readiness
 * predicate (same members, oldest-first order), and the structural
 * plane invariants are checked directly: ready and issued are
 * disjoint, both are subsets of occupancy, and a dependency-matrix
 * bit only ever names an occupied consumer slot while its producer
 * is in the window. Trials randomize the chain shape (dependence
 * distance, two-source fraction, memory mix) and rotate the wakeup
 * model so the fast/slow planes and the tag-elimination path all
 * get traffic.
 */
TEST(ReadyMaskFuzz, PlanesMatchModelReadinessOnRandomDepChains)
{
    const core::WakeupModel wakeups[] = {
        core::WakeupModel::Conventional,
        core::WakeupModel::Sequential,
        core::WakeupModel::SequentialNoPred,
        core::WakeupModel::TagElimination,
        core::WakeupModel::LoadDelayTracking,
    };
    std::mt19937_64 rng(20260808);
    for (int trial = 0; trial < 10; ++trial) {
        core::SyntheticParams sp;
        sp.num_insts = 2500;
        sp.seed = rng();
        sp.two_source_frac = 0.15 + 0.15 * double(trial % 5);
        sp.dep_distance_p = 0.15 + 0.20 * double(trial % 4);
        sp.load_frac = 0.10 + 0.10 * double(trial % 3);
        sp.store_frac = (trial % 2) ? 0.10 : 0.0;
        core::SyntheticSource src(sp);

        core::CoreConfig cfg = core::fourWideConfig();
        cfg.ruu_size = 32;
        cfg.lsq_size = 16;
        cfg.wakeup = wakeups[trial % 5];
        cfg.sched_engine = core::SchedEngine::Masked;
        core::Core c(cfg, src);

        const unsigned N = 3; // validate every N cycles
        uint64_t guard = 0;
        while (!c.done() && guard++ < 400000) {
            c.tick();
            if (guard % N)
                continue;
            ASSERT_TRUE(c.readyListConsistent())
                << "trial " << trial << " cycle " << c.cycle();
            const core::IssueWindowMasks &m = c.issueMasks();
            for (unsigned s = 0; s < cfg.ruu_size; ++s) {
                ASSERT_FALSE(m.ready.test(s) && m.issued.test(s))
                    << "slot " << s << " both ready and issued, "
                    << "trial " << trial << " cycle " << c.cycle();
                if (m.ready.test(s) || m.issued.test(s)) {
                    ASSERT_TRUE(m.occupancy.test(s))
                        << "slot " << s << " ready/issued but "
                        << "unoccupied, trial " << trial << " cycle "
                        << c.cycle();
                }
            }
            // While a producer is in the window, each of its
            // dependency bits must name an occupied consumer slot
            // (the header's lifetime invariant).
            for (unsigned p = 0; p < cfg.ruu_size; ++p) {
                if (!m.occupancy.test(p))
                    continue;
                for (int plane = 0; plane < 2; ++plane) {
                    for (unsigned s = 0; s < cfg.ruu_size; ++s) {
                        if (m.dep[plane].test(p, s)) {
                            ASSERT_TRUE(m.occupancy.test(s))
                                << "dep[" << plane << "] row " << p
                                << " names unoccupied slot " << s
                                << ", trial " << trial << " cycle "
                                << c.cycle();
                        }
                    }
                }
            }
        }
        ASSERT_TRUE(c.done()) << "trial " << trial;
        EXPECT_EQ(c.stats().committed.value(), sp.num_insts)
            << "trial " << trial;
    }
}

/**
 * Lock-step differential: one masked-engine core and one
 * reference-engine core over the same synthetic stream must agree on
 * the ready and issued sets (members AND age order) every single
 * cycle, and on the cycle/commit totals at the end. This is the
 * strongest engine-equivalence statement short of the golden sweep:
 * not just same final IPC, same scheduler state at every step.
 */
TEST(ReadyMaskFuzz, LockstepEnginesAgreeEveryCycle)
{
    for (uint64_t seed : {11ull, 2025ull, 777777ull}) {
        core::SyntheticParams sp;
        sp.num_insts = 2000;
        sp.seed = seed;
        sp.load_frac = 0.25;
        sp.store_frac = 0.10;
        sp.two_source_frac = 0.5;
        core::SyntheticSource srcA(sp), srcB(sp);

        core::CoreConfig cfg = core::fourWideConfig();
        cfg.ruu_size = 32;
        cfg.lsq_size = 16;
        cfg.wakeup = core::WakeupModel::Sequential;
        cfg.regfile = core::RegfileModel::SequentialAccess;

        core::CoreConfig cfgA = cfg, cfgB = cfg;
        cfgA.sched_engine = core::SchedEngine::Masked;
        cfgB.sched_engine = core::SchedEngine::Reference;
        core::Core a(cfgA, srcA), b(cfgB, srcB);

        uint64_t guard = 0;
        while ((!a.done() || !b.done()) && guard++ < 400000) {
            a.tick();
            b.tick();
            ASSERT_EQ(a.readyListSnapshot(), b.readyListSnapshot())
                << "seed " << seed << " cycle " << a.cycle();
            ASSERT_EQ(a.issuedListSnapshot(), b.issuedListSnapshot())
                << "seed " << seed << " cycle " << a.cycle();
        }
        ASSERT_TRUE(a.done() && b.done()) << "seed " << seed;
        EXPECT_EQ(a.cycle(), b.cycle()) << "seed " << seed;
        EXPECT_EQ(a.stats().committed.value(),
                  b.stats().committed.value())
            << "seed " << seed;
        EXPECT_EQ(a.stats().issued.value(), b.stats().issued.value())
            << "seed " << seed;
    }
}

TEST(EmulatorFuzz, RandomStraightLineProgramsAreDeterministic)
{
    std::mt19937_64 rng(31337);
    for (int trial = 0; trial < 40; ++trial) {
        // Random operate-only program (no control, no memory).
        std::vector<isa::MachInst> code;
        for (int i = 0; i < 200; ++i) {
            auto op = Opcode(rng() % (unsigned(Opcode::S8ADD) + 1));
            isa::StaticInst si = rng() & 1
                ? isa::makeOpImm(op, isa::RegIndex(rng() & 31),
                                 uint8_t(rng()),
                                 isa::RegIndex(rng() & 31))
                : isa::makeOp(op, isa::RegIndex(rng() & 31),
                              isa::RegIndex(rng() & 31),
                              isa::RegIndex(rng() & 31));
            code.push_back(isa::encode(si));
        }
        code.push_back(isa::encode(isa::makeSystem(Opcode::HALT)));

        assembler::Program prog;
        prog.codeBase = 0x1000;
        prog.entry = 0x1000;
        prog.code = code;

        func::Emulator a(prog), b(prog);
        a.run(1000);
        b.run(1000);
        ASSERT_TRUE(a.halted());
        for (unsigned r = 0; r < isa::NUM_INT_REGS; ++r)
            ASSERT_EQ(a.intReg(r), b.intReg(r)) << "reg " << r;
        ASSERT_EQ(a.intReg(31), 0);
    }
}

} // namespace
