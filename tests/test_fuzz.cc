/** @file Differential and fuzz tests: decoder robustness on random
 *  words, disassemble->assemble round trips, sparse memory vs a
 *  reference map, cache vs a reference LRU model, and emulator
 *  determinism on random straight-line programs. */

#include <map>
#include <random>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "func/emulator.hh"
#include "mem/cache.hh"

namespace
{

using namespace hpa;
using isa::Opcode;

TEST(DecoderFuzz, RandomWordsNeverCrashAndReencodeStably)
{
    std::mt19937_64 rng(42);
    unsigned decoded = 0;
    for (int i = 0; i < 200000; ++i) {
        auto w = static_cast<isa::MachInst>(rng());
        auto si = isa::decode(w);
        if (!si)
            continue;
        ++decoded;
        // Decode must be stable across an encode round trip.
        auto si2 = isa::decode(isa::encode(*si));
        ASSERT_TRUE(si2.has_value());
        EXPECT_EQ(si2->op, si->op);
        EXPECT_EQ(si2->ra, si->ra);
        EXPECT_EQ(si2->rb, si->rb);
        EXPECT_EQ(si2->rc, si->rc);
        EXPECT_EQ(si2->useLiteral, si->useLiteral);
        EXPECT_EQ(si2->literal, si->literal);
        EXPECT_EQ(si2->disp, si->disp);
        // Disassembly of any legal instruction is printable.
        EXPECT_FALSE(si->disassemble().empty());
    }
    // A healthy fraction of random words decode.
    EXPECT_GT(decoded, 10000u);
}

TEST(DisasmFuzz, DisassembleAssembleRoundTrip)
{
    std::mt19937_64 rng(7);
    auto reg = [&] { return isa::RegIndex(rng() & 31); };

    for (int i = 0; i < 4000; ++i) {
        isa::StaticInst si;
        switch (rng() % 6) {
          case 0: {
            auto op = Opcode(rng() % (unsigned(Opcode::S8ADD) + 1));
            si = rng() & 1
                ? isa::makeOpImm(op, reg(), uint8_t(rng()), reg())
                : isa::makeOp(op, reg(), reg(), reg());
            break;
          }
          case 1: {
            unsigned base = unsigned(Opcode::ADDF);
            auto op = Opcode(base + rng() % 7);   // 2-source fp ops
            si = isa::makeOp(op, reg(), reg(), reg());
            break;
          }
          case 2: {
            const Opcode mem[] = {Opcode::LDA, Opcode::LDAH,
                                  Opcode::LDBU, Opcode::LDW,
                                  Opcode::LDL, Opcode::LDQ,
                                  Opcode::STB, Opcode::STW,
                                  Opcode::STL, Opcode::STQ};
            si = isa::makeMem(mem[rng() % 10], reg(), reg(),
                              int32_t(rng() % 65536) - 32768);
            break;
          }
          case 3: {
            const Opcode br[] = {Opcode::BR, Opcode::BSR, Opcode::BEQ,
                                 Opcode::BNE, Opcode::BLT, Opcode::BLE,
                                 Opcode::BGT, Opcode::BGE,
                                 Opcode::BLBC, Opcode::BLBS};
            si = isa::makeBranch(br[rng() % 10], reg(),
                                 int32_t(rng() % 1024) - 512);
            break;
          }
          case 4: {
            const Opcode j[] = {Opcode::JMP, Opcode::JSR, Opcode::RET};
            si = isa::makeJump(j[rng() % 3], reg(), reg());
            break;
          }
          default:
            si = rng() & 1 ? isa::makeSystem(Opcode::HALT)
                           : isa::makeSystem(Opcode::OUT, reg());
        }

        std::string text = si.disassemble();
        assembler::Program p;
        ASSERT_NO_THROW(p = assembler::assemble(text)) << text;
        ASSERT_EQ(p.code.size(), 1u) << text;
        auto back = isa::decode(p.code[0]);
        ASSERT_TRUE(back.has_value()) << text;
        EXPECT_EQ(back->op, si.op) << text;
        EXPECT_EQ(back->disp, si.disp) << text;
        EXPECT_EQ(isa::encode(*back), isa::encode(si)) << text;
    }
}

TEST(MemoryFuzz, MatchesReferenceMap)
{
    std::mt19937_64 rng(99);
    func::Memory mem;
    std::map<uint64_t, uint8_t> ref;

    for (int i = 0; i < 50000; ++i) {
        // Cluster addresses to hit page boundaries often.
        uint64_t addr = (rng() % 8) * func::Memory::PAGE_SIZE
            + (rng() % 32) + func::Memory::PAGE_SIZE - 16;
        unsigned size = 1u << (rng() % 4);
        if (rng() & 1) {
            uint64_t v = rng();
            mem.write(addr, v, size);
            for (unsigned b = 0; b < size; ++b)
                ref[addr + b] = uint8_t(v >> (8 * b));
        } else {
            uint64_t got = mem.read(addr, size);
            uint64_t want = 0;
            for (unsigned b = 0; b < size; ++b) {
                auto it = ref.find(addr + b);
                uint64_t byte = it == ref.end() ? 0 : it->second;
                want |= byte << (8 * b);
            }
            ASSERT_EQ(got, want) << "addr " << addr << " size " << size;
        }
    }
}

/** Reference set-associative LRU cache. */
class RefCache
{
  public:
    RefCache(unsigned sets, unsigned assoc, unsigned line)
        : sets_(sets), assoc_(assoc), line_(line), data_(sets)
    {}

    bool
    access(uint64_t addr)
    {
        uint64_t tag = addr / line_;
        auto &set = data_[(addr / line_) % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == tag) {
                set.erase(it);
                set.insert(set.begin(), tag);
                return true;
            }
        }
        set.insert(set.begin(), tag);
        if (set.size() > assoc_)
            set.pop_back();
        return false;
    }

  private:
    unsigned sets_, assoc_, line_;
    std::vector<std::vector<uint64_t>> data_;
};

class CacheFuzz
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(CacheFuzz, MatchesReferenceLru)
{
    auto [assoc, line] = GetParam();
    unsigned sets = 16;
    mem::Cache cache(mem::CacheConfig{
        "fuzz", uint64_t(sets) * assoc * line, assoc, line, 1});
    RefCache ref(sets, assoc, line);

    std::mt19937_64 rng(assoc * 1000 + line);
    for (int i = 0; i < 30000; ++i) {
        uint64_t addr = rng() % (sets * assoc * line * 4);
        bool hit = cache.access(addr, rng() & 1).hit;
        bool ref_hit = ref.access(addr);
        ASSERT_EQ(hit, ref_hit) << "i=" << i << " addr=" << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheFuzz,
    ::testing::Values(std::tuple{1u, 16u}, std::tuple{2u, 16u},
                      std::tuple{4u, 32u}, std::tuple{8u, 64u}));

TEST(EmulatorFuzz, RandomStraightLineProgramsAreDeterministic)
{
    std::mt19937_64 rng(31337);
    for (int trial = 0; trial < 40; ++trial) {
        // Random operate-only program (no control, no memory).
        std::vector<isa::MachInst> code;
        for (int i = 0; i < 200; ++i) {
            auto op = Opcode(rng() % (unsigned(Opcode::S8ADD) + 1));
            isa::StaticInst si = rng() & 1
                ? isa::makeOpImm(op, isa::RegIndex(rng() & 31),
                                 uint8_t(rng()),
                                 isa::RegIndex(rng() & 31))
                : isa::makeOp(op, isa::RegIndex(rng() & 31),
                              isa::RegIndex(rng() & 31),
                              isa::RegIndex(rng() & 31));
            code.push_back(isa::encode(si));
        }
        code.push_back(isa::encode(isa::makeSystem(Opcode::HALT)));

        assembler::Program prog;
        prog.codeBase = 0x1000;
        prog.entry = 0x1000;
        prog.code = code;

        func::Emulator a(prog), b(prog);
        a.run(1000);
        b.run(1000);
        ASSERT_TRUE(a.halted());
        for (unsigned r = 0; r < isa::NUM_INT_REGS; ++r)
            ASSERT_EQ(a.intReg(r), b.intReg(r)) << "reg " << r;
        ASSERT_EQ(a.intReg(31), 0);
    }
}

} // namespace
