/** @file Persistent job-store and lease-protocol tests: spec-key
 *  content hashing, crash-safe journal framing (torn-tail truncation,
 *  corrupt-frame recovery — detected and counted, never silently
 *  merged), multi-shard merging with the ok-wins index rule,
 *  compaction, one-shot injection arming, lease claim/renew/reclaim
 *  semantics and the exponential retry backoff schedule. */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "sim/job_store.hh"
#include "sim/shard.hh"
#include "sim/sweep.hh"
#include "stats/json.hh"

namespace fs = std::filesystem;

namespace
{

using namespace hpa;

/** Fresh, self-cleaning store directory per test. */
class JobStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path()
                / ("hpa_job_store_test."
                   + std::to_string(::getpid()) + "."
                   + info->test_suite_name() + "." + info->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

sim::ExperimentSpec
spec(const std::string &workload = "gzip", unsigned width = 4,
     uint64_t insts = 2000)
{
    sim::ExperimentSpec s;
    s.workload = workload;
    s.machine = sim::Machine::base(width).build();
    s.max_insts = insts;
    return s;
}

/** A synthetic completed run (no simulation needed to test the
 *  journal plumbing). */
sim::RunResult
fakeResult(const sim::ExperimentSpec &s, double ipc = 1.25)
{
    sim::RunResult r;
    r.spec = s;
    r.ipc = ipc;
    r.committed = s.max_insts;
    r.cycles = uint64_t(double(s.max_insts) / ipc);
    r.wallSeconds = 0.001;
    return r;
}

std::string
ownShard(const std::string &dir, const std::string &worker)
{
    return (fs::path(dir) / ("journal-" + worker + ".hpaj")).string();
}

TEST_F(JobStoreTest, SpecKeyIsStableAndContentSensitive)
{
    const std::string k = sim::JobStore::specKey(spec());
    EXPECT_EQ(k.size(), 16u);
    EXPECT_EQ(k, sim::JobStore::specKey(spec()));

    // Identity fields change the key...
    EXPECT_NE(k, sim::JobStore::specKey(spec("crafty")));
    EXPECT_NE(k, sim::JobStore::specKey(spec("gzip", 8)));
    EXPECT_NE(k, sim::JobStore::specKey(spec("gzip", 4, 5000)));
    auto batched = spec();
    batched.batch = 2;
    EXPECT_NE(k, sim::JobStore::specKey(batched));
    auto no_trace = spec();
    no_trace.trace_cache = false;
    EXPECT_NE(k, sim::JobStore::specKey(no_trace));
    auto policy = spec();
    policy.machine =
        sim::Machine::base(4).schedPolicy("seq").build();
    EXPECT_NE(k, sim::JobStore::specKey(policy));

    // ...execution-policy fields do not: they change how a cell is
    // run, not what result it produces.
    auto exec_only = spec();
    exec_only.max_retries = 7;
    exec_only.retry_backoff_ms = 999;
    exec_only.wall_budget_seconds = 3.0;
    exec_only.fault = sim::FaultKind::CrashProcess;
    exec_only.fault_cycle = 42;
    EXPECT_EQ(k, sim::JobStore::specKey(exec_only));
}

TEST_F(JobStoreTest, AppendThenReopenRoundTrips)
{
    const auto s1 = spec("gzip");
    const auto s2 = spec("crafty");
    {
        sim::JobStore store(dir_, "w0");
        store.append(s1, fakeResult(s1, 1.5));
        store.append(s2, fakeResult(s2, 0.75));
        EXPECT_EQ(store.completed(), 2u);
    }
    sim::JobStore store(dir_, "w0");
    EXPECT_EQ(store.loadedRecords(), 2u);
    EXPECT_EQ(store.droppedBytes(), 0u);
    const sim::StoredRun *r = store.find(sim::JobStore::specKey(s1));
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->ok());
    EXPECT_TRUE(r->valid);
    EXPECT_EQ(r->workload, "gzip");
    EXPECT_EQ(r->machine, s1.machine.name);
    // Doubles are stored shortest-round-trip: bit-identical reload.
    EXPECT_EQ(r->ipc, 1.5);
    EXPECT_EQ(r->committed, 2000u);
    EXPECT_EQ(r->worker, "w0");
}

TEST_F(JobStoreTest, ErrorStringsSurviveJsonEscaping)
{
    const auto s = spec();
    {
        sim::JobStore store(dir_, "w0");
        store.appendFailure(s, "crash",
                            "line1\nline2 \"quoted\" \\slash\tend",
                            3);
    }
    sim::JobStore store(dir_, "w0");
    const sim::StoredRun *r = store.find(sim::JobStore::specKey(s));
    ASSERT_NE(r, nullptr);
    EXPECT_FALSE(r->ok());
    EXPECT_EQ(r->status, "failed");
    EXPECT_EQ(r->attempts, 3u);
    EXPECT_EQ(r->errorKind, "crash");
    EXPECT_EQ(r->error, "line1\nline2 \"quoted\" \\slash\tend");
}

TEST_F(JobStoreTest, OkRecordWinsOverFailed)
{
    const auto s = spec();
    sim::JobStore store(dir_, "w0");
    store.appendFailure(s, "deadlock", "watchdog tripped", 2);
    EXPECT_FALSE(store.find(sim::JobStore::specKey(s))->ok());
    store.append(s, fakeResult(s));
    const sim::StoredRun *r = store.find(sim::JobStore::specKey(s));
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->ok());
    // ...and the preference survives a reload (ok wins regardless of
    // record order) and keeps the cell counted once.
    store.reload();
    EXPECT_TRUE(store.find(sim::JobStore::specKey(s))->ok());
    EXPECT_EQ(store.completed(), 1u);
    EXPECT_EQ(store.loadedRecords(), 2u);
}

TEST_F(JobStoreTest, TornTailIsTruncatedNotMerged)
{
    const auto s1 = spec("gzip");
    const auto s2 = spec("crafty");
    {
        sim::JobStore store(dir_, "w0");
        store.append(s1, fakeResult(s1));
        store.append(s2, fakeResult(s2));
    }
    // Simulate a crash mid-write: drop the last 7 bytes of the tail
    // frame.
    const std::string shard = ownShard(dir_, "w0");
    const auto size = fs::file_size(shard);
    fs::resize_file(shard, size - 7);

    sim::JobStore store(dir_, "w0");
    EXPECT_EQ(store.loadedRecords(), 1u);
    EXPECT_GT(store.droppedBytes(), 0u);
    EXPECT_EQ(store.droppedRecords(), 1u);
    EXPECT_NE(store.find(sim::JobStore::specKey(s1)), nullptr);
    EXPECT_EQ(store.find(sim::JobStore::specKey(s2)), nullptr);
    // The owner healed its shard in place: the torn bytes are gone
    // and a fresh open reports a clean journal.
    EXPECT_LT(fs::file_size(shard), size - 7);
    sim::JobStore again(dir_, "w0");
    EXPECT_EQ(again.droppedBytes(), 0u);
    EXPECT_EQ(again.loadedRecords(), 1u);
}

TEST_F(JobStoreTest, CorruptFrameStopsTheScan)
{
    const auto s1 = spec("gzip");
    const auto s2 = spec("crafty");
    const auto s3 = spec("eon");
    uint64_t first_end = 0;
    {
        sim::JobStore store(dir_, "w0");
        store.append(s1, fakeResult(s1));
        first_end = fs::file_size(ownShard(dir_, "w0"));
        store.append(s2, fakeResult(s2));
        store.append(s3, fakeResult(s3));
    }
    // Flip one payload byte inside the second record: its checksum
    // no longer matches, so it and everything after it must be
    // dropped (a checksum mismatch could be a short torn write too —
    // nothing beyond it is trustworthy).
    const std::string shard = ownShard(dir_, "w0");
    {
        std::FILE *f = std::fopen(shard.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, long(first_end) + 40, SEEK_SET);
        std::fputc('X', f);
        std::fclose(f);
    }
    sim::JobStore store(dir_, "w0");
    EXPECT_EQ(store.loadedRecords(), 1u);
    EXPECT_EQ(store.droppedRecords(), 1u);
    EXPECT_GT(store.droppedBytes(), 0u);
    EXPECT_NE(store.find(sim::JobStore::specKey(s1)), nullptr);
    EXPECT_EQ(store.find(sim::JobStore::specKey(s2)), nullptr);
    EXPECT_EQ(store.find(sim::JobStore::specKey(s3)), nullptr);
}

TEST_F(JobStoreTest, ForeignShardsAreReadButNeverTruncated)
{
    const auto s1 = spec("gzip");
    {
        sim::JobStore w1(dir_, "w1");
        w1.append(s1, fakeResult(s1));
    }
    const std::string shard = ownShard(dir_, "w1");
    const auto size = fs::file_size(shard);
    {
        // Append garbage to w1's shard, then open as a different
        // worker: the garbage is detected and dropped from the
        // index, but the file belongs to w1 and must stay intact.
        std::FILE *f = std::fopen(shard.c_str(), "ab");
        std::fputs("partial-frame-garbage", f);
        std::fclose(f);
    }
    sim::JobStore w2(dir_, "w2");
    EXPECT_EQ(w2.loadedRecords(), 1u);
    EXPECT_GT(w2.droppedBytes(), 0u);
    EXPECT_EQ(fs::file_size(shard), size + 21);
}

TEST_F(JobStoreTest, ShardsMergeAcrossWorkers)
{
    const auto s1 = spec("gzip");
    const auto s2 = spec("crafty");
    {
        sim::JobStore w1(dir_, "w1");
        w1.append(s1, fakeResult(s1, 1.0));
    }
    {
        sim::JobStore w2(dir_, "w2");
        w2.append(s2, fakeResult(s2, 2.0));
        // w2 opened after w1 wrote: it already sees w1's record.
        EXPECT_EQ(w2.completed(), 2u);
    }
    sim::JobStore reader(dir_, "w3");
    EXPECT_EQ(reader.completed(), 2u);
    EXPECT_EQ(reader.okCount(), 2u);
    EXPECT_EQ(reader.find(sim::JobStore::specKey(s1))->worker, "w1");
    EXPECT_EQ(reader.find(sim::JobStore::specKey(s2))->worker, "w2");
}

TEST_F(JobStoreTest, ReloadSeesRecordsAppendedByPeers)
{
    const auto s1 = spec("gzip");
    sim::JobStore a(dir_, "a");
    EXPECT_EQ(a.completed(), 0u);
    {
        sim::JobStore b(dir_, "b");
        b.append(s1, fakeResult(s1));
    }
    EXPECT_EQ(a.find(sim::JobStore::specKey(s1)), nullptr);
    a.reload();
    EXPECT_NE(a.find(sim::JobStore::specKey(s1)), nullptr);
}

TEST_F(JobStoreTest, CompactionKeepsBestRecordPerCellInOneShard)
{
    const auto s1 = spec("gzip");
    const auto s2 = spec("crafty");
    {
        sim::JobStore w1(dir_, "w1");
        w1.appendFailure(s1, "deadlock", "first try died", 1);
        w1.append(s2, fakeResult(s2, 2.0));
    }
    sim::JobStore w2(dir_, "w2");
    w2.append(s1, fakeResult(s1, 1.0));
    EXPECT_EQ(w2.loadedRecords(), 3u);

    const size_t dropped = w2.compact();
    EXPECT_EQ(dropped, 1u); // the superseded failure record

    size_t shards = 0;
    for (const auto &e : fs::directory_iterator(dir_))
        if (e.path().extension() == ".hpaj")
            ++shards;
    EXPECT_EQ(shards, 1u);

    EXPECT_EQ(w2.loadedRecords(), 2u);
    EXPECT_EQ(w2.completed(), 2u);
    EXPECT_TRUE(w2.find(sim::JobStore::specKey(s1))->ok());
    EXPECT_EQ(w2.find(sim::JobStore::specKey(s2))->ipc, 2.0);
    // The store stays appendable after compaction.
    const auto s3 = spec("eon");
    w2.append(s3, fakeResult(s3));
    EXPECT_EQ(w2.completed(), 3u);
}

TEST_F(JobStoreTest, RecordJsonValidatesAndCarriesTheSchema)
{
    const auto s = spec();
    sim::JobStore store(dir_, "w0");
    store.append(s, fakeResult(s));
    const std::string doc =
        sim::JobStore::recordJson(store.records().front());
    std::string err;
    EXPECT_TRUE(stats::json::validate(doc, &err)) << err;
    EXPECT_NE(doc.find("\"hpa.sweep-journal.v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"spec_key\""), std::string::npos);
    EXPECT_NE(doc.find("\"backoff_ms\""), std::string::npos);
}

TEST_F(JobStoreTest, InjectionArmsExactlyOnce)
{
    sim::JobStore store(dir_, "w0");
    EXPECT_TRUE(store.armInjectionOnce("crash", 40));
    EXPECT_FALSE(store.armInjectionOnce("crash", 40));
    // Distinct kind/index markers are independent.
    EXPECT_TRUE(store.armInjectionOnce("crash", 41));
    EXPECT_TRUE(store.armInjectionOnce("stall-heartbeat", 40));
    // ...and a second store instance (reclaimed retry, resumed run)
    // still sees the marker.
    sim::JobStore again(dir_, "w1");
    EXPECT_FALSE(again.armInjectionOnce("crash", 40));
}

TEST_F(JobStoreTest, RejectsUnusableWorkerIds)
{
    EXPECT_THROW(sim::JobStore(dir_, ""), ConfigError);
    EXPECT_THROW(sim::JobStore(dir_, "a/b"), ConfigError);
    EXPECT_THROW(sim::JobStore(dir_, "a b"), ConfigError);
}

// --- lease protocol ------------------------------------------------

TEST_F(JobStoreTest, LeaseClaimIsExclusiveUntilReleased)
{
    sim::LeaseManager a(dir_, "a");
    sim::LeaseManager b(dir_, "b");
    EXPECT_TRUE(a.tryAcquire("cell1"));
    EXPECT_TRUE(a.owned("cell1"));
    EXPECT_FALSE(b.tryAcquire("cell1"));
    EXPECT_FALSE(b.owned("cell1"));
    EXPECT_TRUE(a.renew("cell1"));
    a.release("cell1");
    EXPECT_FALSE(a.owned("cell1"));
    EXPECT_TRUE(b.tryAcquire("cell1"));
    // Each successful claim counts one attempt.
    EXPECT_EQ(b.attempts("cell1"), 2u);
}

TEST_F(JobStoreTest, StaleLeaseIsReclaimedAndOwnerFindsOut)
{
    sim::LeaseOptions lo;
    lo.timeout_seconds = 0.2;
    sim::LeaseManager holder(dir_, "holder", lo);
    sim::LeaseManager peer(dir_, "peer", lo);

    ASSERT_TRUE(holder.tryAcquire("cell1"));
    EXPECT_EQ(peer.reclaimExpired(), 0u); // still fresh
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    // The heartbeat stopped (we never renewed): the lease is stale
    // and exactly one reclaimer wins it.
    EXPECT_EQ(peer.reclaimExpired(), 1u);
    EXPECT_EQ(peer.reclaimExpired(), 0u);
    // The stalled holder must notice it lost the cell — this is the
    // check that prevents duplicate journal records.
    EXPECT_FALSE(holder.owned("cell1"));
    EXPECT_FALSE(holder.renew("cell1"));
    // After the reclaim backoff gate passes, the cell is claimable.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_TRUE(peer.tryAcquire("cell1"));
}

TEST_F(JobStoreTest, ReclaimArmsABackoffGate)
{
    sim::LeaseOptions lo;
    lo.timeout_seconds = 0.05;
    sim::LeaseManager m(dir_, "m", lo);
    ASSERT_TRUE(m.tryAcquire("cell1"));
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    ASSERT_EQ(m.reclaimExpired(), 1u);
    // Immediately after a reclaim the not-before gate is closed
    // (attempt 1 backs off >= 100 ms).
    EXPECT_FALSE(m.tryAcquire("cell1"));
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_TRUE(m.tryAcquire("cell1"));
}

TEST_F(JobStoreTest, ForceAcquireIgnoresTheGateButNotTheLease)
{
    sim::LeaseOptions lo;
    lo.timeout_seconds = 0.05;
    sim::LeaseManager a(dir_, "a", lo);
    sim::LeaseManager b(dir_, "b", lo);
    ASSERT_TRUE(a.tryAcquire("cell1"));
    // Held: force must not steal.
    EXPECT_FALSE(b.forceAcquire("cell1"));
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    ASSERT_EQ(b.reclaimExpired(), 1u);
    // Gate closed for tryAcquire, but force (the permanent-failure
    // recording path) goes through — without counting an attempt.
    EXPECT_FALSE(b.tryAcquire("cell1"));
    EXPECT_TRUE(b.forceAcquire("cell1"));
    EXPECT_EQ(b.attempts("cell1"), 1u);
    b.release("cell1");
}

TEST_F(JobStoreTest, AttemptCapMarksExhaustion)
{
    sim::LeaseOptions lo;
    lo.timeout_seconds = 0.02;
    lo.max_attempts = 2;
    sim::LeaseManager m(dir_, "m", lo);
    EXPECT_FALSE(m.attemptsExhausted("cell1"));
    for (unsigned i = 0; i < lo.max_attempts; ++i) {
        // Claim then crash (simulated: never release, let the lease
        // go stale and get reclaimed).
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        ASSERT_TRUE(m.tryAcquire("cell1")) << "attempt " << i;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        ASSERT_EQ(m.reclaimExpired(), 1u);
    }
    EXPECT_TRUE(m.attemptsExhausted("cell1"));
}

TEST_F(JobStoreTest, ReleaseAllDropsEveryHeldLease)
{
    sim::LeaseManager m(dir_, "m");
    ASSERT_TRUE(m.tryAcquire("c1"));
    ASSERT_TRUE(m.tryAcquire("c2"));
    m.releaseAll();
    EXPECT_FALSE(m.owned("c1"));
    EXPECT_FALSE(m.owned("c2"));
    sim::LeaseManager peer(dir_, "peer");
    EXPECT_TRUE(peer.tryAcquire("c1"));
    EXPECT_TRUE(peer.tryAcquire("c2"));
}

// --- retry backoff schedule ----------------------------------------

TEST(BackoffDelay, GrowsExponentiallyWithCapAndJitter)
{
    const uint64_t seed = 12345;
    unsigned prev = 0;
    for (unsigned attempt = 1; attempt <= 6; ++attempt) {
        unsigned d =
            sim::SweepRunner::backoffDelayMs(attempt, seed, 25);
        const unsigned base = std::min(25u << (attempt - 1), 2000u);
        EXPECT_GE(d, base) << "attempt " << attempt;
        EXPECT_LE(d, base + base / 4) << "attempt " << attempt;
        EXPECT_GT(d, prev);
        prev = d;
    }
    // Capped: far-out attempts never exceed 2 s + 25% jitter.
    EXPECT_LE(sim::SweepRunner::backoffDelayMs(30, seed, 25), 2500u);
}

TEST(BackoffDelay, DeterministicPerSeedZeroBaseDisables)
{
    EXPECT_EQ(sim::SweepRunner::backoffDelayMs(3, 99, 25),
              sim::SweepRunner::backoffDelayMs(3, 99, 25));
    EXPECT_NE(sim::SweepRunner::backoffDelayMs(3, 99, 25),
              sim::SweepRunner::backoffDelayMs(4, 99, 25));
    EXPECT_EQ(sim::SweepRunner::backoffDelayMs(3, 99, 0), 0u);
}

} // namespace
