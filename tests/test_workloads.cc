/** @file Validation of the SPEC substitute workloads against their
 *  golden models, plus characterization sanity. */

#include <gtest/gtest.h>

#include "func/emulator.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

class WorkloadGolden : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadGolden, EmulatorMatchesGoldenModel)
{
    auto w = workloads::make(GetParam(), workloads::Scale::Test);
    func::Emulator emu(w.program);
    emu.run(50000000);
    ASSERT_TRUE(emu.halted()) << w.name << " did not halt";
    EXPECT_EQ(emu.console(), w.expectedConsole) << w.name;
    EXPECT_EQ(w.expectedConsole.size(), 8u);
}

TEST_P(WorkloadGolden, BuilderIsDeterministic)
{
    auto a = workloads::make(GetParam(), workloads::Scale::Test);
    auto b = workloads::make(GetParam(), workloads::Scale::Test);
    EXPECT_EQ(a.program.code, b.program.code);
    EXPECT_EQ(a.expectedConsole, b.expectedConsole);
}

TEST_P(WorkloadGolden, FullScaleIsLarger)
{
    auto t = workloads::make(GetParam(), workloads::Scale::Test);
    auto f = workloads::make(GetParam(), workloads::Scale::Full);
    // Full scale must provide much more dynamic work; statically the
    // program text is the same order of size, so check data/params
    // via a bounded functional run that must NOT halt quickly.
    func::Emulator emu(f.program);
    emu.run(2 * 1000 * 1000);
    EXPECT_FALSE(emu.halted())
        << f.name << " exhausted at full scale in 2M insts";
    (void)t;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadGolden,
    ::testing::ValuesIn(workloads::benchmarkNames()));

TEST(Workloads, TwelveBenchmarksInTable2Order)
{
    const auto &names = workloads::benchmarkNames();
    ASSERT_EQ(names.size(), 12u);
    EXPECT_EQ(names.front(), "bzip");
    EXPECT_EQ(names.back(), "vpr");
}

TEST(Workloads, UnknownNameThrows)
{
    EXPECT_THROW(workloads::make("specfp", workloads::Scale::Test),
                 std::invalid_argument);
}

TEST(Workloads, MakeAllBuildsTwelve)
{
    auto all = workloads::makeAll(workloads::Scale::Test);
    EXPECT_EQ(all.size(), 12u);
    for (const auto &w : all) {
        EXPECT_FALSE(w.program.code.empty()) << w.name;
        EXPECT_FALSE(w.description.empty()) << w.name;
    }
}

TEST(Workloads, EonExercisesFloatingPoint)
{
    auto w = workloads::make("eon", workloads::Scale::Test);
    func::Emulator emu(w.program);
    bool fp_seen = false;
    while (!emu.halted()) {
        auto rec = emu.step();
        auto cls = rec.inst.opClass();
        if (cls == isa::OpClass::FpMult || cls == isa::OpClass::FpDiv)
            fp_seen = true;
    }
    EXPECT_TRUE(fp_seen);
}

TEST(Workloads, PerlExercisesIndirectJumps)
{
    auto w = workloads::make("perl", workloads::Scale::Test);
    func::Emulator emu(w.program);
    uint64_t indirect = 0;
    while (!emu.halted()) {
        auto rec = emu.step();
        if (rec.inst.isIndirect())
            ++indirect;
    }
    EXPECT_GT(indirect, 1000u);
}

TEST(Workloads, TwoSourceFractionInPaperRange)
{
    // Figure 2 reports 18-36% 2-source-format instructions across
    // SPEC CINT2000; the substitutes should land in a comparable
    // band in aggregate.
    uint64_t two_src = 0, total = 0;
    for (const auto &name : workloads::benchmarkNames()) {
        auto w = workloads::make(name, workloads::Scale::Test);
        func::Emulator emu(w.program);
        while (!emu.halted() && emu.instCount() < 60000) {
            auto rec = emu.step();
            if (rec.inst.isTwoSourceFormat())
                ++two_src;
            ++total;
        }
    }
    double frac = double(two_src) / double(total);
    EXPECT_GT(frac, 0.10);
    EXPECT_LT(frac, 0.45);
}

} // namespace
