/** @file Unit tests for the statistics framework, the JSON
 *  writer/validator, and the hpa.stats.v1 emitter. */

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "stats/json.hh"
#include "stats/stats.hh"

namespace
{

using namespace hpa::stats;

TEST(Counter, StartsAtZero)
{
    Counter c("c", "d");
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementForms)
{
    Counter c("c", "d");
    ++c;
    c++;
    c += 5;
    EXPECT_EQ(c.value(), 7u);
}

TEST(Counter, Reset)
{
    Counter c("c", "d");
    c += 3;
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, SamplesLandInBuckets)
{
    Distribution d("d", "desc", 4);
    d.sample(0);
    d.sample(1);
    d.sample(1);
    EXPECT_EQ(d.bucket(0), 1u);
    EXPECT_EQ(d.bucket(1), 2u);
    EXPECT_EQ(d.total(), 3u);
}

TEST(Distribution, OverflowBucketCollectsLargeValues)
{
    Distribution d("d", "desc", 4);
    d.sample(4);
    d.sample(100);
    d.sample(7, 3);
    EXPECT_EQ(d.bucket(4), 5u);
    EXPECT_EQ(d.total(), 5u);
}

TEST(Distribution, NumBucketsIncludesOverflow)
{
    Distribution d("d", "desc", 2);
    EXPECT_EQ(d.numBuckets(), 3u);
}

TEST(Distribution, FractionOfEmptyIsZero)
{
    Distribution d("d", "desc", 2);
    EXPECT_DOUBLE_EQ(d.fraction(0), 0.0);
}

TEST(Distribution, FractionSumsToOne)
{
    Distribution d("d", "desc", 3);
    d.sample(0, 2);
    d.sample(1, 2);
    d.sample(9, 4);
    double sum = 0;
    for (unsigned i = 0; i < d.numBuckets(); ++i)
        sum += d.fraction(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(d.fraction(3), 0.5, 1e-12);
}

TEST(Distribution, WeightedSample)
{
    Distribution d("d", "desc", 2);
    d.sample(1, 10);
    EXPECT_EQ(d.bucket(1), 10u);
    EXPECT_EQ(d.total(), 10u);
}

TEST(Distribution, Reset)
{
    Distribution d("d", "desc", 2);
    d.sample(1, 5);
    d.reset();
    EXPECT_EQ(d.total(), 0u);
    EXPECT_EQ(d.bucket(1), 0u);
}

TEST(Formula, EvaluatesLazily)
{
    int x = 1;
    Formula f("f", "d", [&x] { return x * 2.0; });
    x = 21;
    EXPECT_DOUBLE_EQ(f.value(), 42.0);
}

TEST(Registry, DumpContainsNamesValuesDescriptions)
{
    Registry reg;
    Counter c("hits", "number of hits");
    c += 42;
    reg.add(&c);
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("hits"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("number of hits"), std::string::npos);
}

TEST(Registry, DumpRendersDistributionPercentages)
{
    Registry reg;
    Distribution d("slack", "wakeup slack", 2);
    d.sample(0);
    d.sample(0);
    d.sample(5);
    reg.add(&d);
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("slack.0"), std::string::npos);
    EXPECT_NE(out.find("slack.2+"), std::string::npos);
    EXPECT_NE(out.find("66.67%"), std::string::npos);
}

TEST(Registry, ResetClearsAll)
{
    Registry reg;
    Counter c("c", "d");
    Distribution d("d", "d", 2);
    c += 3;
    d.sample(0);
    reg.add(&c);
    reg.add(&d);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(d.total(), 0u);
}

TEST(Registry, FindByName)
{
    Registry reg;
    Counter c("alpha", "d");
    Distribution d("beta", "d", 2);
    reg.add(&c);
    reg.add(&d);
    EXPECT_EQ(reg.findCounter("alpha"), &c);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_EQ(reg.findDist("beta"), &d);
    EXPECT_EQ(reg.findDist("alpha"), nullptr);
}

TEST(Registry, FormulaAppearsInDump)
{
    Registry reg;
    reg.add(Formula("ipc", "ipc", [] { return 1.5; }));
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("1.5000"), std::string::npos);
}

TEST(Registry, VisitSeesEveryStatInRegistrationOrder)
{
    Registry reg;
    Counter c1("a", "d"), c2("b", "d");
    Distribution d("dist", "d", 2);
    reg.add(&c1);
    reg.add(&c2);
    reg.add(&d);
    reg.add(Formula("f", "d", [] { return 2.0; }));

    struct Recorder final : Registry::Visitor
    {
        void counter(const Counter &c) override { names.push_back(c.name); }
        void distribution(const Distribution &dd) override
        {
            names.push_back(dd.name);
        }
        void formula(const Formula &f, double v) override
        {
            names.push_back(f.name);
            value = v;
        }
        std::vector<std::string> names;
        double value = 0;
    } rec;
    reg.visit(rec);
    ASSERT_EQ(rec.names,
              (std::vector<std::string>{"a", "b", "dist", "f"}));
    EXPECT_DOUBLE_EQ(rec.value, 2.0);
}

// --- JSON writer / validator. ---

TEST(JsonWriter, NestedDocumentValidates)
{
    std::ostringstream os;
    json::JsonWriter jw(os);
    jw.beginObject()
        .kv("schema", "test.v1")
        .kv("n", uint64_t(42))
        .kv("x", 1.25)
        .kv("flag", true)
        .key("list")
        .beginArray()
        .value(1)
        .value("two")
        .beginObject()
        .kv("deep", int64_t(-3))
        .endObject()
        .endArray()
        .endObject();
    EXPECT_TRUE(jw.complete());
    std::string err;
    EXPECT_TRUE(json::validate(os.str(), &err)) << err << "\n"
                                                << os.str();
    EXPECT_EQ(json::findStringField(os.str(), "schema"), "test.v1");
}

TEST(JsonWriter, EscapesStringsForRoundTrip)
{
    std::ostringstream os;
    json::JsonWriter jw(os);
    jw.beginObject()
        .kv("quote\"back\\slash", "tab\tnew\nline\x01")
        .endObject();
    std::string err;
    EXPECT_TRUE(json::validate(os.str(), &err)) << err;
    EXPECT_NE(os.str().find("\\\""), std::string::npos);
    EXPECT_NE(os.str().find("\\u0001"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    json::JsonWriter jw(os);
    jw.beginArray().value(0.0 / 0.0).value(1e308 * 10).endArray();
    EXPECT_TRUE(json::validate(os.str()));
    EXPECT_NE(os.str().find("null"), std::string::npos);
}

TEST(JsonValidate, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "{\"a\":}", "[1,]", "{\"a\":1,}", "{\"a\" 1}",
          "[1] trailing", "nul", "\"unterminated", "{\"a\":01}",
          "[\"bad\\escape\"]", "--1", "[1 2]"}) {
        std::string err;
        EXPECT_FALSE(json::validate(bad, &err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(JsonValidate, AcceptsEdgeCaseValues)
{
    for (const char *good :
         {"0", "-0.5e+10", "true", "null", "\"\"", "[]", "{}",
          "[[[[1]]]]", "{\"u\": \"\\u00e9\"}", "  {\"a\": [1, 2]}  "}) {
        std::string err;
        EXPECT_TRUE(json::validate(good, &err)) << good << ": " << err;
    }
}

// --- hpa.stats.v1 emitter round-trip. ---

namespace
{

/** A registry with one of everything, as a core run would build. */
struct SampleStats
{
    Counter hits{"cache.hits", "cache hits"};
    Counter misses{"cache.misses", "cache misses"};
    Distribution slack{"sched.slack", "wakeup slack", 2};
    Registry reg;

    SampleStats()
    {
        hits += 90;
        misses += 10;
        slack.sample(0, 3);
        slack.sample(1, 1);
        slack.sample(7, 4);
        reg.add(&hits);
        reg.add(&misses);
        reg.add(&slack);
        reg.add(Formula("cache.hit_rate", "hit fraction",
                        [this] {
                            return double(hits.value())
                                / double(hits.value()
                                         + misses.value());
                        }));
    }
};

} // namespace

TEST(RegistryJson, DocumentIsValidAndSchemaVersioned)
{
    SampleStats s;
    std::ostringstream os;
    s.reg.toJson(os);
    std::string err;
    ASSERT_TRUE(json::validate(os.str(), &err)) << err;
    EXPECT_EQ(json::findStringField(os.str(), "schema"),
              Registry::JSON_SCHEMA);
}

TEST(RegistryJson, EveryRegisteredStatIsPresent)
{
    SampleStats s;
    std::ostringstream os;
    s.reg.toJson(os);
    std::string out = os.str();
    // Every counter, distribution and formula of the registry, with
    // its exact value.
    EXPECT_NE(out.find("\"cache.hits\""), std::string::npos);
    EXPECT_NE(out.find("\"value\": 90"), std::string::npos);
    EXPECT_NE(out.find("\"cache.misses\""), std::string::npos);
    EXPECT_NE(out.find("\"sched.slack\""), std::string::npos);
    EXPECT_NE(out.find("\"total\": 8"), std::string::npos);
    // Buckets [3, 1, 4] with the overflow index flagged.
    EXPECT_NE(out.find("3,\n"), std::string::npos);
    EXPECT_NE(out.find("\"overflow_bucket\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"cache.hit_rate\""), std::string::npos);
}

TEST(RegistryJson, FormulaValuesMatchTheTextReport)
{
    SampleStats s;
    std::ostringstream report, js;
    s.reg.dump(report);
    s.reg.toJson(js);

    // The text report renders hit_rate at 4 decimals; the JSON value
    // reformatted the same way must agree exactly.
    std::string out = js.str();
    size_t name = out.find("cache.hit_rate");
    ASSERT_NE(name, std::string::npos);
    size_t vkey = out.find("\"value\": ", name);
    ASSERT_NE(vkey, std::string::npos);
    double v = std::strtod(out.c_str() + vkey + 9, nullptr);
    char formatted[32];
    std::snprintf(formatted, sizeof(formatted), "%.4f", v);
    EXPECT_NE(report.str().find(formatted), std::string::npos)
        << "report lacks formula value " << formatted;
    EXPECT_DOUBLE_EQ(v, 0.9);
}

TEST(RegistryJson, EmbedsIntoALargerDocument)
{
    SampleStats s;
    std::ostringstream os;
    json::JsonWriter jw(os);
    jw.beginObject().kv("kind", "wrapper").key("stats");
    s.reg.toJson(jw);
    jw.endObject();
    std::string err;
    EXPECT_TRUE(json::validate(os.str(), &err)) << err;
    EXPECT_TRUE(jw.complete());
}

TEST(RegistryCsv, HeaderAndRowAgreeColumnForColumn)
{
    SampleStats s;
    std::ostringstream hdr, rowos;
    s.reg.csvHeader(hdr);
    s.reg.csvRow(rowos);

    auto split = [](const std::string &line) {
        std::vector<std::string> cells;
        std::istringstream is(line);
        std::string cell;
        while (std::getline(is, cell, ','))
            cells.push_back(cell);
        return cells;
    };
    auto h = split(hdr.str());
    auto r = split(rowos.str());
    ASSERT_EQ(h.size(), r.size());
    ASSERT_EQ(h.size(), 2u /*counters*/ + 1 /*total*/ + 3 /*buckets*/
                  + 1 /*formula*/);
    EXPECT_EQ(h.front(), "cache.hits");
    EXPECT_EQ(r.front(), "90");
    EXPECT_EQ(h[2], "sched.slack.total");
    EXPECT_EQ(r[2], "8");
    EXPECT_EQ(h[5], "sched.slack.2+");
    EXPECT_EQ(r[5], "4");
}

} // namespace
