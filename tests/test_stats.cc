/** @file Unit tests for the statistics framework. */

#include <sstream>

#include <gtest/gtest.h>

#include "stats/stats.hh"

namespace
{

using namespace hpa::stats;

TEST(Counter, StartsAtZero)
{
    Counter c("c", "d");
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementForms)
{
    Counter c("c", "d");
    ++c;
    c++;
    c += 5;
    EXPECT_EQ(c.value(), 7u);
}

TEST(Counter, Reset)
{
    Counter c("c", "d");
    c += 3;
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, SamplesLandInBuckets)
{
    Distribution d("d", "desc", 4);
    d.sample(0);
    d.sample(1);
    d.sample(1);
    EXPECT_EQ(d.bucket(0), 1u);
    EXPECT_EQ(d.bucket(1), 2u);
    EXPECT_EQ(d.total(), 3u);
}

TEST(Distribution, OverflowBucketCollectsLargeValues)
{
    Distribution d("d", "desc", 4);
    d.sample(4);
    d.sample(100);
    d.sample(7, 3);
    EXPECT_EQ(d.bucket(4), 5u);
    EXPECT_EQ(d.total(), 5u);
}

TEST(Distribution, NumBucketsIncludesOverflow)
{
    Distribution d("d", "desc", 2);
    EXPECT_EQ(d.numBuckets(), 3u);
}

TEST(Distribution, FractionOfEmptyIsZero)
{
    Distribution d("d", "desc", 2);
    EXPECT_DOUBLE_EQ(d.fraction(0), 0.0);
}

TEST(Distribution, FractionSumsToOne)
{
    Distribution d("d", "desc", 3);
    d.sample(0, 2);
    d.sample(1, 2);
    d.sample(9, 4);
    double sum = 0;
    for (unsigned i = 0; i < d.numBuckets(); ++i)
        sum += d.fraction(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(d.fraction(3), 0.5, 1e-12);
}

TEST(Distribution, WeightedSample)
{
    Distribution d("d", "desc", 2);
    d.sample(1, 10);
    EXPECT_EQ(d.bucket(1), 10u);
    EXPECT_EQ(d.total(), 10u);
}

TEST(Distribution, Reset)
{
    Distribution d("d", "desc", 2);
    d.sample(1, 5);
    d.reset();
    EXPECT_EQ(d.total(), 0u);
    EXPECT_EQ(d.bucket(1), 0u);
}

TEST(Formula, EvaluatesLazily)
{
    int x = 1;
    Formula f("f", "d", [&x] { return x * 2.0; });
    x = 21;
    EXPECT_DOUBLE_EQ(f.value(), 42.0);
}

TEST(Registry, DumpContainsNamesValuesDescriptions)
{
    Registry reg;
    Counter c("hits", "number of hits");
    c += 42;
    reg.add(&c);
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("hits"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("number of hits"), std::string::npos);
}

TEST(Registry, DumpRendersDistributionPercentages)
{
    Registry reg;
    Distribution d("slack", "wakeup slack", 2);
    d.sample(0);
    d.sample(0);
    d.sample(5);
    reg.add(&d);
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("slack.0"), std::string::npos);
    EXPECT_NE(out.find("slack.2+"), std::string::npos);
    EXPECT_NE(out.find("66.67%"), std::string::npos);
}

TEST(Registry, ResetClearsAll)
{
    Registry reg;
    Counter c("c", "d");
    Distribution d("d", "d", 2);
    c += 3;
    d.sample(0);
    reg.add(&c);
    reg.add(&d);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(d.total(), 0u);
}

TEST(Registry, FindByName)
{
    Registry reg;
    Counter c("alpha", "d");
    Distribution d("beta", "d", 2);
    reg.add(&c);
    reg.add(&d);
    EXPECT_EQ(reg.findCounter("alpha"), &c);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_EQ(reg.findDist("beta"), &d);
    EXPECT_EQ(reg.findDist("alpha"), nullptr);
}

TEST(Registry, FormulaAppearsInDump)
{
    Registry reg;
    reg.add(Formula("ipc", "ipc", [] { return 1.5; }));
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("1.5000"), std::string::npos);
}

} // namespace
