/** @file Exact-timing litmus tests driven by the commit listener:
 *  per-instruction pipeline timestamps must follow the documented
 *  conventions (back-to-back issue, load-to-use latency, slow-bus
 *  delay, sequential-RF stretch, replay re-issue) and the structural
 *  occupancy invariants (window, LSQ, commit width). */

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulation.hh"

namespace
{

using namespace hpa;
using core::CoreConfig;
using core::DynInst;

struct Stamp
{
    uint64_t seq, pc;
    uint64_t fetch, dispatch, issue, complete, commit;
    uint32_t issues;
    bool seq_ra;
    bool is_mem;
};

std::vector<Stamp>
trace(const std::string &src, const CoreConfig &cfg)
{
    auto prog = assembler::assemble(src);
    sim::Simulation s(prog, cfg);
    std::vector<Stamp> out;
    s.core().setCommitListener(
        [&out](const DynInst &di, uint64_t commit) {
            out.push_back(Stamp{di.seq, di.rec->pc, di.fetchCycle,
                                di.dispatchCycle, di.issueCycle,
                                di.completeCycle, commit,
                                di.issueToken, di.seqRegAccess,
                                di.rec->inst.isMemRef()});
        });
    s.run(2000000);
    EXPECT_TRUE(s.emulator().halted());
    return out;
}

/** Stamps of the instruction at a given static PC offset (words). */
std::vector<Stamp>
atWord(const std::vector<Stamp> &t, uint64_t word)
{
    std::vector<Stamp> out;
    for (const Stamp &s : t)
        if (s.pc == 0x1000 + 4 * word)
            out.push_back(s);
    return out;
}

TEST(ExactTiming, BackToBackDependentAlusIssueOneApart)
{
    // Straight-line dependent adds (no loop, no branches).
    auto t = trace(R"(
        li  r1, 1
        add r1, #1, r1
        add r1, #1, r1
        add r1, #1, r1
        add r1, #1, r1
        halt)", core::fourWideConfig());
    // Words 1..4 are the chain.
    for (int w = 2; w <= 4; ++w) {
        auto cur = atWord(t, w);
        auto prev = atWord(t, w - 1);
        ASSERT_EQ(cur.size(), 1u);
        EXPECT_EQ(cur[0].issue, prev[0].issue + 1) << "word " << w;
    }
}

TEST(ExactTiming, AluCompletesSchedToExecPlusLatencyMinusOne)
{
    CoreConfig cfg = core::fourWideConfig();
    auto t = trace("li r1, 1\nadd r1, #1, r2\nmul r1, #3, r3\nhalt",
                   cfg);
    auto add = atWord(t, 1);
    auto mul = atWord(t, 2);
    ASSERT_EQ(add.size(), 1u);
    EXPECT_EQ(add[0].complete,
              add[0].issue + cfg.schedToExec() + 1 - 1);
    EXPECT_EQ(mul[0].complete,
              mul[0].issue + cfg.schedToExec() + 3 - 1);
}

TEST(ExactTiming, ExtraRfStageShiftsCompletion)
{
    CoreConfig cfg = core::fourWideConfig();
    cfg.regfile = core::RegfileModel::ExtraStage;
    auto t = trace("li r1, 1\nadd r1, #1, r2\nhalt", cfg);
    auto add = atWord(t, 1);
    EXPECT_EQ(add[0].complete, add[0].issue + cfg.schedToExec());
    EXPECT_EQ(cfg.schedToExec(),
              core::fourWideConfig().schedToExec() + 1);
}

TEST(ExactTiming, LoadToUseIsOnePlusDl1Latency)
{
    // Warm the line, then let the cold-miss shadow fully drain
    // behind a long serial chain before the measured load issues.
    std::string src = "        la  r1, v\n        ldq r2, 0(r1)\n";
    src += "        li  r5, 1\n";
    for (int i = 0; i < 80; ++i)
        src += "        add r5, #1, r5\n";
    src += R"(
        ldq r3, 0(r1)
        add r3, #1, r4
        halt
        .data
        .align 8
v:      .word 5)";
    auto t = trace(src, core::fourWideConfig());
    // Words: la(0,1), warm ldq(2), li(3), 80 adds(4..83),
    // measured ldq(84), use(85).
    auto ld = atWord(t, 84);
    auto use = atWord(t, 85);
    ASSERT_EQ(ld.size(), 1u);
    ASSERT_EQ(use.size(), 1u);
    EXPECT_EQ(ld[0].issues, 1u);   // warmed: no replay
    EXPECT_EQ(use[0].issue, ld[0].issue + 3);
}

TEST(ExactTiming, SlowBusDelaysMispredictedSide)
{
    // NoPred statically fast-sides the right operand; the actual
    // last arriver is the LEFT (mul), so the consumer sees its tag
    // one cycle late versus the conventional machine.
    const char *src = R"(
        li  r1, 1
        mul r1, #3, r2
        add r1, #2, r4
        add r2, r4, r5
        halt)";
    auto conv = trace(src, core::fourWideConfig());
    CoreConfig np = core::fourWideConfig();
    np.wakeup = core::WakeupModel::SequentialNoPred;
    auto seq = trace(src, np);
    auto c = atWord(conv, 3);
    auto s = atWord(seq, 3);
    ASSERT_EQ(c.size(), 1u);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0].issue, c[0].issue + 1);
}

TEST(ExactTiming, SequentialRfStretchesDependentByOneCycle)
{
    // Both operands of the add sit in the register file (produced
    // long before): +1 cycle to its consumer under sequential access.
    std::string src = "        li  r8, 3\n        li  r9, 4\n";
    // Serial filler so the measured add dispatches well after its
    // operands' broadcasts (they must come from the register file).
    src += "        li  r20, 1\n";
    // 13 fillers put the measured pair at words 16/17, inside one
    // 32-byte fetch line (cold IL1 misses land on line boundaries).
    for (int i = 0; i < 13; ++i)
        src += "        add r20, #1, r20\n";
    src += "        add r8, r9, r2\n        add r2, #1, r3\n"
           "        halt\n";
    auto base = trace(src, core::fourWideConfig());
    CoreConfig sq = core::fourWideConfig();
    sq.regfile = core::RegfileModel::SequentialAccess;
    auto seq = trace(src, sq);
    auto b2 = atWord(base, 16), b3 = atWord(base, 17);
    auto s2 = atWord(seq, 16), s3 = atWord(seq, 17);
    ASSERT_EQ(s2.size(), 1u);
    EXPECT_TRUE(s2[0].seq_ra);
    EXPECT_FALSE(b2[0].seq_ra);
    // The consumer's issue gap to its producer grows by one cycle.
    EXPECT_EQ(s3[0].issue - s2[0].issue,
              (b3[0].issue - b2[0].issue) + 1);
}

TEST(ExactTiming, MissedLoadDependentsReissue)
{
    // A cold load misses; its dependent issues speculatively, gets
    // squashed, and re-issues once the data is really back.
    auto t = trace(R"(
        la  r1, far
        ldq r2, 0(r1)
        add r2, #1, r3
        halt
        .data
        .align 8
far:    .word 9)", core::fourWideConfig());
    auto ld = atWord(t, 2);    // la expands to two instructions
    auto dep = atWord(t, 3);
    ASSERT_EQ(ld.size(), 1u);
    ASSERT_EQ(dep.size(), 1u);
    // The dependent was pulled back at least once.
    EXPECT_GE(dep[0].issues, 2u);
    // Its final issue waits for the true memory latency (cold DL1 +
    // L2 + memory = 60, plus agen).
    EXPECT_GE(dep[0].issue, ld[0].issue + 61);
}

TEST(Occupancy, IssueGroupsRespectWidthAndAluCount)
{
    // Ten independent adds: at most 4 can issue per cycle (4 ALUs,
    // 4-wide).
    auto t = trace(R"(
        add r1, #1, r1
        add r2, #1, r2
        add r3, #1, r3
        add r4, #1, r4
        add r5, #1, r5
        add r6, #1, r6
        add r7, #1, r7
        add r8, #1, r8
        add r9, #1, r9
        add r10, #1, r10
        halt)", core::fourWideConfig());
    std::map<uint64_t, unsigned> per_cycle;
    for (const Stamp &s : t)
        ++per_cycle[s.issue];
    for (auto &[cycle, n] : per_cycle)
        EXPECT_LE(n, 4u) << "cycle " << cycle;
}

TEST(Occupancy, CommitWidthBounded)
{
    core::SyntheticParams sp;
    sp.num_insts = 5000;
    core::SyntheticSource src(sp);
    core::Core c(core::fourWideConfig(), src);
    std::map<uint64_t, unsigned> per_cycle;
    c.setCommitListener([&](const DynInst &, uint64_t commit) {
        ++per_cycle[commit];
    });
    c.run(2000000);
    for (auto &[cycle, n] : per_cycle)
        ASSERT_LE(n, 4u) << "cycle " << cycle;
}

TEST(Occupancy, WindowAndLsqNeverExceedConfiguredSize)
{
    CoreConfig cfg = core::fourWideConfig();
    cfg.ruu_size = 16;
    cfg.lsq_size = 6;
    core::SyntheticParams sp;
    sp.num_insts = 4000;
    sp.load_frac = 0.3;
    sp.store_frac = 0.15;
    core::SyntheticSource src(sp);
    core::Core c(cfg, src);

    // Sweep-line over [dispatch, commit) intervals.
    std::vector<std::pair<uint64_t, int>> events;     // window
    std::vector<std::pair<uint64_t, int>> mem_events; // lsq
    c.setCommitListener([&](const DynInst &di, uint64_t commit) {
        events.push_back({di.dispatchCycle, +1});
        events.push_back({commit, -1});
        if (di.rec->inst.isMemRef()) {
            mem_events.push_back({di.dispatchCycle, +1});
            mem_events.push_back({commit, -1});
        }
    });
    c.run(2000000);
    ASSERT_TRUE(c.done());

    auto max_occupancy = [](std::vector<std::pair<uint64_t, int>> &ev) {
        std::sort(ev.begin(), ev.end());
        int cur = 0, peak = 0;
        for (auto &[cycle, delta] : ev) {
            cur += delta;
            peak = std::max(peak, cur);
        }
        return peak;
    };
    EXPECT_LE(max_occupancy(events), int(cfg.ruu_size));
    EXPECT_LE(max_occupancy(mem_events), int(cfg.lsq_size));
}

TEST(Occupancy, CommitFollowsCompleteByAtLeastOneCycle)
{
    auto t = trace(R"(
        li r1, 50
loop:   sub r1, #1, r1
        bne r1, loop
        halt)", core::fourWideConfig());
    for (const Stamp &s : t)
        ASSERT_GT(s.commit, s.complete);
}

// ---- Load-delay-tracking wakeup (WakeupModel::LoadDelayTracking) --

TEST(PolicyTiming, DltSaturatesDividerWakeupToCompletion)
{
    // IntDiv latency (20) exceeds the 4-bit delay counter
    // (dlt_max_delay = 15): the dependent's wakeup saturates to the
    // divider's completion broadcast, one cycle after complete.
    const char *src = R"(
        li  r1, 84
        div r1, #4, r2
        add r2, #1, r3
        halt)";
    auto prog = assembler::assemble(src);

    CoreConfig conv = core::fourWideConfig();
    sim::Simulation sc(prog, conv);
    std::vector<Stamp> tc;
    sc.core().setCommitListener(
        [&tc](const DynInst &di, uint64_t commit) {
            tc.push_back(Stamp{di.seq, di.rec->pc, di.fetchCycle,
                               di.dispatchCycle, di.issueCycle,
                               di.completeCycle, commit,
                               di.issueToken, di.seqRegAccess,
                               di.rec->inst.isMemRef()});
        });
    sc.run(100000);

    CoreConfig dlt = core::fourWideConfig();
    dlt.wakeup = core::WakeupModel::LoadDelayTracking;
    sim::Simulation sd(prog, dlt);
    std::vector<Stamp> td;
    sd.core().setCommitListener(
        [&td](const DynInst &di, uint64_t commit) {
            td.push_back(Stamp{di.seq, di.rec->pc, di.fetchCycle,
                               di.dispatchCycle, di.issueCycle,
                               di.completeCycle, commit,
                               di.issueToken, di.seqRegAccess,
                               di.rec->inst.isMemRef()});
        });
    sd.run(100000);

    auto div_c = atWord(tc, 1), use_c = atWord(tc, 2);
    auto div_d = atWord(td, 1), use_d = atWord(td, 2);
    ASSERT_EQ(div_c.size(), 1u);
    ASSERT_EQ(use_c.size(), 1u);
    ASSERT_EQ(div_d.size(), 1u);
    ASSERT_EQ(use_d.size(), 1u);
    // Conventional: wakeup broadcast rides the 20-cycle tag timing.
    EXPECT_EQ(use_c[0].issue, div_c[0].issue + 20);
    // DLT: the counter saturated, so the dependent waits for the
    // completion broadcast instead.
    EXPECT_EQ(use_d[0].issue, div_d[0].complete);
    EXPECT_GT(use_d[0].issue, use_c[0].issue);
    EXPECT_EQ(sd.core().stats().dltSaturated.value(), 1u);
    EXPECT_EQ(sc.core().stats().dltSaturated.value(), 0u);
}

TEST(PolicyTiming, DltLeavesShortLatencyWakeupsUntouched)
{
    // Every producer here fits the delay counter (ALU latencies and
    // mul's 3 cycles are all <= 15): DLT must be timing-identical to
    // the conventional scheduler and never saturate.
    const char *src = R"(
        li  r1, 7
        mul r1, #3, r2
        add r2, #1, r3
        add r3, #1, r4
        halt)";
    CoreConfig conv = core::fourWideConfig();
    CoreConfig dlt = core::fourWideConfig();
    dlt.wakeup = core::WakeupModel::LoadDelayTracking;
    auto tc = trace(src, conv);
    auto td = trace(src, dlt);
    ASSERT_EQ(tc.size(), td.size());
    for (size_t i = 0; i < tc.size(); ++i) {
        EXPECT_EQ(tc[i].issue, td[i].issue) << "seq " << tc[i].seq;
        EXPECT_EQ(tc[i].complete, td[i].complete)
            << "seq " << tc[i].seq;
    }
}

TEST(PolicyTiming, DltSurvivesContinuousCrossValidation)
{
    CoreConfig cfg = core::fourWideConfig();
    cfg.wakeup = core::WakeupModel::LoadDelayTracking;
    cfg.check_interval = 1;
    EXPECT_NO_THROW(trace(R"(
        li  r1, 60
        la  r2, v
loop:   ldq r3, 0(r2)
        div r3, #3, r4
        add r4, #1, r5
        stq r5, 0(r2)
        sub r1, #1, r1
        bne r1, loop
        halt
        .data
        .align 8
v:      .word 9)", cfg));
}

// ---- Operand-prefetch register file (RegfileModel::PrefetchBuffer)

TEST(PolicyTiming, PrefetchBufferServesArchitecturalReads)
{
    // r1/r2 are architecturally stable by the time the loop body
    // dispatches its reads: those operands are prefetch-eligible
    // (ready at insert, no in-flight producer) and must hit the
    // buffer, skipping issue-time port arbitration.
    const char *src = R"(
        li  r1, 5
        li  r2, 9
        li  r7, 40
loop:   add r1, r2, r3
        add r1, r2, r4
        add r1, r2, r5
        sub r7, #1, r7
        bne r7, loop
        halt)";
    CoreConfig cfg = core::fourWideConfig();
    cfg.regfile = core::RegfileModel::PrefetchBuffer;
    auto prog = assembler::assemble(src);
    sim::Simulation s(prog, cfg);
    s.run(100000);
    EXPECT_GT(s.core().stats().prefetchHits.value(), 0u);

    // The buffer has per-cycle bandwidth (width / 2 = 2): the loop
    // body dispatches three adds with six eligible operands, so a
    // same-cycle dispatch group overflows the bandwidth and must
    // record misses — grants are bounded, not free.
    EXPECT_GT(s.core().stats().prefetchMisses.value(), 0u);
}

TEST(PolicyTiming, PrefetchSurvivesContinuousCrossValidation)
{
    CoreConfig cfg = core::fourWideConfig();
    cfg.regfile = core::RegfileModel::PrefetchBuffer;
    cfg.check_interval = 1;
    EXPECT_NO_THROW(trace(R"(
        li  r1, 60
        la  r2, v
loop:   ldq r3, 0(r2)
        mul r3, #3, r4
        add r4, r3, r5
        stq r5, 0(r2)
        sub r1, #1, r1
        bne r1, loop
        halt
        .data
        .align 8
v:      .word 4)", cfg));
}

} // namespace
