/** @file Unit tests for the sparse memory and functional emulator. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "func/emulator.hh"

namespace
{

using namespace hpa;
using func::Emulator;
using func::Memory;

// --- Memory. ---

TEST(Memory, UnwrittenReadsAsZero)
{
    Memory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.readByte(99), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(Memory, ByteRoundTrip)
{
    Memory m;
    m.writeByte(5, 0xAB);
    EXPECT_EQ(m.readByte(5), 0xAB);
}

TEST(Memory, LittleEndianMultiByte)
{
    Memory m;
    m.write(0x100, 0x0102030405060708ull, 8);
    EXPECT_EQ(m.readByte(0x100), 0x08);
    EXPECT_EQ(m.readByte(0x107), 0x01);
    EXPECT_EQ(m.read(0x100, 4), 0x05060708u);
    EXPECT_EQ(m.read(0x104, 2), 0x0304u);
}

TEST(Memory, PageBoundaryCrossing)
{
    Memory m;
    uint64_t addr = Memory::PAGE_SIZE - 3;
    m.write(addr, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(addr, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(Memory, WriteBlockAndReadBack)
{
    Memory m;
    uint8_t buf[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    m.writeBlock(0x2000 - 4, buf, 10);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(m.readByte(0x2000 - 4 + i), buf[i]);
}

TEST(Memory, PartialWriteLeavesNeighboursIntact)
{
    Memory m;
    m.write(0x10, ~0ull, 8);
    m.write(0x12, 0, 2);
    EXPECT_EQ(m.read(0x10, 8), 0xFFFFFFFF0000FFFFull);
}

// --- Emulator helpers. ---

Emulator
runProgram(const std::string &src, uint64_t max = 1000000)
{
    auto p = assembler::assemble(src);
    Emulator emu(p);
    emu.run(max);
    return emu;
}

TEST(Emulator, ArithmeticBasics)
{
    auto e = runProgram(R"(
        li r1, 7
        li r2, 5
        add r1, r2, r3
        sub r1, r2, r4
        mul r1, r2, r5
        div r1, r2, r6
        rem r1, r2, r7
        halt)");
    EXPECT_EQ(e.intReg(3), 12);
    EXPECT_EQ(e.intReg(4), 2);
    EXPECT_EQ(e.intReg(5), 35);
    EXPECT_EQ(e.intReg(6), 1);
    EXPECT_EQ(e.intReg(7), 2);
}

TEST(Emulator, DivideByZeroYieldsZero)
{
    auto e = runProgram("li r1, 9\ndiv r1, r31, r2\nrem r1, r31, r3\nhalt");
    EXPECT_EQ(e.intReg(2), 0);
    EXPECT_EQ(e.intReg(3), 0);
}

TEST(Emulator, LogicalOps)
{
    auto e = runProgram(R"(
        li r1, 0xF0
        li r2, 0x3C
        and r1, r2, r3
        bis r1, r2, r4
        xor r1, r2, r5
        bic r1, r2, r6
        ornot r31, r2, r7
        eqv r1, r1, r8
        halt)");
    EXPECT_EQ(e.intReg(3), 0x30);
    EXPECT_EQ(e.intReg(4), 0xFC);
    EXPECT_EQ(e.intReg(5), 0xCC);
    EXPECT_EQ(e.intReg(6), 0xC0);
    EXPECT_EQ(e.intReg(7), ~int64_t(0x3C));
    EXPECT_EQ(e.intReg(8), -1);
}

TEST(Emulator, Shifts)
{
    auto e = runProgram(R"(
        li r1, -8
        sll r1, #4, r2
        srl r1, #4, r3
        sra r1, #2, r4
        halt)");
    EXPECT_EQ(e.intReg(2), -128);
    EXPECT_EQ(uint64_t(e.intReg(3)), (~0ull - 7) >> 4);
    EXPECT_EQ(e.intReg(4), -2);
}

TEST(Emulator, Compares)
{
    auto e = runProgram(R"(
        li r1, -1
        li r2, 1
        cmplt r1, r2, r3
        cmple r2, r2, r4
        cmpeq r1, r2, r5
        cmpult r1, r2, r6
        cmpule r2, r1, r7
        halt)");
    EXPECT_EQ(e.intReg(3), 1);
    EXPECT_EQ(e.intReg(4), 1);
    EXPECT_EQ(e.intReg(5), 0);
    EXPECT_EQ(e.intReg(6), 0);   // unsigned: ~0 > 1
    EXPECT_EQ(e.intReg(7), 1);
}

TEST(Emulator, ScaledAdds)
{
    auto e = runProgram(
        "li r1, 10\nli r2, 3\ns4add r1, r2, r3\ns8add r1, r2, r4\nhalt");
    EXPECT_EQ(e.intReg(3), 43);
    EXPECT_EQ(e.intReg(4), 83);
}

TEST(Emulator, ZeroRegisterReadsZeroAndDiscardsWrites)
{
    auto e = runProgram("li r1, 5\nadd r1, r1, r31\nadd r31, #3, r2\nhalt");
    EXPECT_EQ(e.intReg(2), 3);
    EXPECT_EQ(e.intReg(31), 0);
}

TEST(Emulator, LdaLdah)
{
    auto e = runProgram("lda r1, 100(r31)\nldah r2, 2(r1)\nhalt");
    EXPECT_EQ(e.intReg(1), 100);
    EXPECT_EQ(e.intReg(2), 100 + (2 << 16));
}

TEST(Emulator, LoadStoreSizes)
{
    auto e = runProgram(R"(
        la r1, buf
        li r2, -2
        stq r2, 0(r1)
        ldl r3, 0(r1)
        ldw r4, 0(r1)
        ldbu r5, 0(r1)
        li r6, 0x1234
        stw r6, 8(r1)
        ldw r7, 8(r1)
        stb r6, 16(r1)
        ldbu r8, 16(r1)
        halt
        .data
buf:    .space 32)");
    EXPECT_EQ(e.intReg(3), -2);      // sign-extended 32-bit
    EXPECT_EQ(e.intReg(4), -2);      // sign-extended 16-bit
    EXPECT_EQ(e.intReg(5), 0xFE);    // zero-extended byte
    EXPECT_EQ(e.intReg(7), 0x1234);
    EXPECT_EQ(e.intReg(8), 0x34);
}

TEST(Emulator, FloatingPoint)
{
    auto e = runProgram(R"(
        li r1, 9
        itof r1, f1
        li r2, 2
        itof r2, f2
        addf f1, f2, f3
        subf f1, f2, f4
        mulf f1, f2, f5
        divf f1, f2, f6
        sqrtf f1, f7
        cmpflt f2, f1, f8
        ftoi f3, r3
        ftoi f6, r4
        ftoi f7, r5
        ftoi f8, r6
        halt)");
    EXPECT_EQ(e.intReg(3), 11);
    EXPECT_EQ(e.intReg(4), 4);       // trunc(4.5)
    EXPECT_EQ(e.intReg(5), 3);
    EXPECT_EQ(e.intReg(6), 1);
    EXPECT_DOUBLE_EQ(e.fpReg(5), 18.0);
}

TEST(Emulator, FpZeroRegister)
{
    auto e = runProgram("li r1, 3\nitof r1, f31\nftoi f31, r2\nhalt");
    EXPECT_EQ(e.intReg(2), 0);
}

TEST(Emulator, FpLoadStore)
{
    auto e = runProgram(R"(
        li r1, 42
        itof r1, f1
        la r2, d
        stf f1, 0(r2)
        ldf f2, 0(r2)
        ftoi f2, r3
        halt
        .data
        .align 8
d:      .space 8)");
    EXPECT_EQ(e.intReg(3), 42);
}

TEST(Emulator, ConditionalBranches)
{
    auto e = runProgram(R"(
        li r1, 3
        clr r2
loop:   add r2, #1, r2
        sub r1, #1, r1
        bne r1, loop
        halt)");
    EXPECT_EQ(e.intReg(2), 3);
}

TEST(Emulator, BranchVariants)
{
    auto e = runProgram(R"(
        li r1, -5
        clr r10
        bge r1, nope1
        add r10, #1, r10      ; taken path: blt semantics via bge fail
nope1:  blt r1, yes2
        br fail
yes2:   add r10, #2, r10
        li r2, 4
        blbc r2, yes3
        br fail
yes3:   add r10, #4, r10
        li r3, 5
        blbs r3, yes4
        br fail
yes4:   add r10, #8, r10
        ble r31, yes5
        br fail
yes5:   add r10, #16, r10
        br done
fail:   li r10, 0
done:   halt)");
    EXPECT_EQ(e.intReg(10), 31);
}

TEST(Emulator, CallAndReturn)
{
    auto e = runProgram(R"(
        li r1, 5
        bsr r26, double
        bsr r26, double
        halt
double: add r1, r1, r1
        ret (r26)
)");
    EXPECT_EQ(e.intReg(1), 20);
}

TEST(Emulator, IndirectJumpThroughTable)
{
    auto e = runProgram(R"(
        la r1, tab
        ldq r2, 8(r1)
        jmp (r2)
        li r9, 1
        halt
t1:     li r9, 11
        halt
t2:     li r9, 22
        halt
        .data
        .align 8
tab:    .word t1, t2
)");
    EXPECT_EQ(e.intReg(9), 22);
}

TEST(Emulator, LinkRegisterValue)
{
    auto e = runProgram("bsr r26, f\nf: mov r26, r5\nhalt");
    EXPECT_EQ(uint64_t(e.intReg(5)), e.memory().numPages() ? 0x1004 : 0x1004);
    EXPECT_EQ(e.intReg(5), 0x1004);
}

TEST(Emulator, ConsoleOutput)
{
    auto e = runProgram("li r1, 'H'\nout r1\nli r1, 'i'\nout r1\nhalt");
    EXPECT_EQ(e.console(), "Hi");
}

TEST(Emulator, HaltStopsExecution)
{
    auto e = runProgram("li r1, 1\nhalt\nli r1, 2\nhalt");
    EXPECT_TRUE(e.halted());
    EXPECT_EQ(e.intReg(1), 1);
}

TEST(Emulator, StepAfterHaltThrows)
{
    auto p = assembler::assemble("halt");
    Emulator emu(p);
    emu.step();
    EXPECT_TRUE(emu.halted());
    EXPECT_THROW(emu.step(), func::EmulationError);
}

TEST(Emulator, PcEscapeDetected)
{
    // Fall off the end of the text section.
    auto p = assembler::assemble("nop");
    Emulator emu(p);
    EXPECT_THROW(emu.step(), func::EmulationError);
}

TEST(Emulator, RunRespectsInstructionCap)
{
    auto p = assembler::assemble("loop: br loop");
    Emulator emu(p);
    EXPECT_EQ(emu.run(100), 100u);
    EXPECT_FALSE(emu.halted());
    EXPECT_EQ(emu.instCount(), 100u);
}

TEST(Emulator, ExecRecordForBranch)
{
    auto p = assembler::assemble("beq r31, skip\nnop\nskip: halt");
    Emulator emu(p);
    auto rec = emu.step();
    EXPECT_TRUE(rec.taken);
    EXPECT_EQ(rec.nextPc, p.codeBase + 8);
    EXPECT_EQ(rec.pc, p.codeBase);
}

TEST(Emulator, ExecRecordForMemory)
{
    auto p = assembler::assemble(
        "la r1, x\nldq r2, 8(r1)\nhalt\n.data\nx: .word 1, 2");
    Emulator emu(p);
    emu.step();
    emu.step();
    auto rec = emu.step();
    EXPECT_EQ(rec.effAddr, p.symbol("x") + 8);
    EXPECT_EQ(emu.intReg(2), 2);
}

TEST(Emulator, StackPointerInitialized)
{
    auto p = assembler::assemble("halt");
    Emulator emu(p);
    EXPECT_GT(emu.intReg(isa::STACK_REG), 0);
}

TEST(Emulator, DataSectionLoaded)
{
    auto e = runProgram(R"(
        la r1, v
        ldq r2, 0(r1)
        halt
        .data
        .align 8
v:      .word 123456789)");
    EXPECT_EQ(e.intReg(2), 123456789);
}


TEST(Emulator, SelfModifyingCodeSeesPatchedInstruction)
{
    // Executes `target` once (r5 = 11), overwrites that word with the
    // encoding of the never-executed donor instruction (`li r5, 22`),
    // then re-executes it. The second pass must decode the patched
    // word, so a decoded-instruction cache has to be invalidated by
    // stores into the text segment.
    auto e = runProgram(R"(
        la   r2, target
        la   r1, donor
        ldl  r3, 0(r1)
target: li   r5, 11
        bne  r7, fin
        li   r7, 1
        stl  r3, 0(r2)
        br   target
fin:    halt
donor:  li   r5, 22)");
    EXPECT_EQ(e.intReg(5), 22);
}

TEST(EmulatorEdge, ShiftAmountsUseLowSixBits)
{
    auto e = runProgram(R"(
        li r1, 1
        li r2, 64
        sll r1, r2, r3        ; shift by 64 & 63 = 0
        li r2, 65
        sll r1, r2, r4        ; shift by 1
        halt)");
    EXPECT_EQ(e.intReg(3), 1);
    EXPECT_EQ(e.intReg(4), 2);
}

TEST(EmulatorEdge, LdahNegativeDisplacement)
{
    auto e = runProgram("ldah r1, -1(r31)\nhalt");
    EXPECT_EQ(e.intReg(1), -65536);
}

TEST(EmulatorEdge, WraparoundArithmetic)
{
    auto e = runProgram(R"(
        li  r1, 0x7FFFFFFF
        sll r1, #32, r1
        li  r2, 0xFFFF
        sll r2, #16, r3
        bis r2, r3, r2
        sll r2, #32, r3
        srl r3, #32, r3
        bis r1, r3, r1        ; r1 = INT64_MAX
        add r1, #1, r2        ; wraps to INT64_MIN
        halt)");
    EXPECT_EQ(e.intReg(1), INT64_MAX);
    EXPECT_EQ(e.intReg(2), INT64_MIN);
}

TEST(EmulatorEdge, UnsignedCompareAtBoundary)
{
    auto e = runProgram(R"(
        li r1, -1             ; 0xFFFF..FF unsigned max
        cmpult r1, r31, r2    ; max < 0 ? no
        cmpult r31, r1, r3    ; 0 < max ? yes
        cmpule r1, r1, r4
        halt)");
    EXPECT_EQ(e.intReg(2), 0);
    EXPECT_EQ(e.intReg(3), 1);
    EXPECT_EQ(e.intReg(4), 1);
}

TEST(EmulatorEdge, SignedDivisionTruncatesTowardZero)
{
    auto e = runProgram(R"(
        li r1, -7
        li r2, 2
        div r1, r2, r3
        rem r1, r2, r4
        halt)");
    EXPECT_EQ(e.intReg(3), -3);
    EXPECT_EQ(e.intReg(4), -1);
}

TEST(EmulatorEdge, StoreByteDoesNotClobberNeighbours)
{
    auto e = runProgram(R"(
        la  r1, buf
        li  r2, -1
        stq r2, 0(r1)
        clr r3
        stb r3, 3(r1)
        ldq r4, 0(r1)
        halt
        .data
        .align 8
buf:    .space 8)");
    EXPECT_EQ(uint64_t(e.intReg(4)), 0xFFFFFFFF00FFFFFFull);
}

TEST(EmulatorEdge, JsrClobberOrderWhenLinkIsTarget)
{
    // jsr r4, (r4): the target must be read before the link write.
    auto e = runProgram(R"(
        la  r4, dest
        jsr r4, (r4)
        halt
dest:   mov r4, r5
        halt)");
    // r5 holds the return address (pc of jsr + 4).
    EXPECT_EQ(uint64_t(e.intReg(5)), 0x1000u + 3 * 4);
}

} // namespace
