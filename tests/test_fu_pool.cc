/** @file Unit tests for the functional-unit pool. */

#include <gtest/gtest.h>

#include "core/fu_pool.hh"

namespace
{

using namespace hpa::core;
using hpa::isa::OpClass;

TEST(FuGroupMap, Table1Grouping)
{
    EXPECT_EQ(fuGroup(OpClass::IntAlu), FuGroup::IntAlu);
    EXPECT_EQ(fuGroup(OpClass::Branch), FuGroup::IntAlu);
    EXPECT_EQ(fuGroup(OpClass::System), FuGroup::IntAlu);
    EXPECT_EQ(fuGroup(OpClass::IntMult), FuGroup::IntMulDiv);
    EXPECT_EQ(fuGroup(OpClass::IntDiv), FuGroup::IntMulDiv);
    EXPECT_EQ(fuGroup(OpClass::FpMult), FuGroup::FpMulDiv);
    EXPECT_EQ(fuGroup(OpClass::MemRead), FuGroup::MemPort);
    EXPECT_EQ(fuGroup(OpClass::MemWrite), FuGroup::MemPort);
}

TEST(FuPool, CountsFollowConfig)
{
    FuPool p(fourWideConfig());
    EXPECT_EQ(p.count(OpClass::IntAlu), 4u);
    EXPECT_EQ(p.count(OpClass::FpAlu), 2u);
    EXPECT_EQ(p.count(OpClass::IntDiv), 2u);
    EXPECT_EQ(p.count(OpClass::MemRead), 2u);
}

TEST(FuPool, EightWideCounts)
{
    FuPool p(eightWideConfig());
    EXPECT_EQ(p.count(OpClass::IntAlu), 8u);
    EXPECT_EQ(p.count(OpClass::MemRead), 4u);
}

TEST(FuPool, LimitedUnitsPerCycle)
{
    FuPool p(fourWideConfig());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(p.acquire(OpClass::IntAlu, 10));
    EXPECT_FALSE(p.acquire(OpClass::IntAlu, 10));
}

TEST(FuPool, PipelinedUnitsFreeNextCycle)
{
    FuPool p(fourWideConfig());
    for (int i = 0; i < 4; ++i)
        p.acquire(OpClass::IntAlu, 10);
    EXPECT_TRUE(p.acquire(OpClass::IntAlu, 11));
}

TEST(FuPool, MultiplierIsPipelined)
{
    FuPool p(fourWideConfig());
    EXPECT_TRUE(p.acquire(OpClass::IntMult, 10));
    EXPECT_TRUE(p.acquire(OpClass::IntMult, 10));
    EXPECT_FALSE(p.acquire(OpClass::IntMult, 10));
    EXPECT_TRUE(p.acquire(OpClass::IntMult, 11));
}

TEST(FuPool, DividerOccupiesForFullLatency)
{
    FuPool p(fourWideConfig());
    EXPECT_TRUE(p.acquire(OpClass::IntDiv, 10));
    EXPECT_TRUE(p.acquire(OpClass::IntDiv, 10));
    // Both dividers busy for 20 cycles.
    EXPECT_FALSE(p.acquire(OpClass::IntDiv, 11));
    EXPECT_FALSE(p.acquire(OpClass::IntDiv, 29));
    EXPECT_TRUE(p.acquire(OpClass::IntDiv, 30));
}

TEST(FuPool, DividerBlocksMultiplier)
{
    // MUL and DIV share the MULT/DIV units (Table 1).
    FuPool p(fourWideConfig());
    p.acquire(OpClass::IntDiv, 10);
    p.acquire(OpClass::IntDiv, 10);
    EXPECT_FALSE(p.acquire(OpClass::IntMult, 15));
}

TEST(FuPool, GroupsAreIndependent)
{
    FuPool p(fourWideConfig());
    for (int i = 0; i < 4; ++i)
        p.acquire(OpClass::IntAlu, 10);
    EXPECT_TRUE(p.acquire(OpClass::MemRead, 10));
    EXPECT_TRUE(p.acquire(OpClass::FpAlu, 10));
}

} // namespace
