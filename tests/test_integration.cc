/** @file End-to-end integration: SPEC substitutes running through the
 *  full execution-driven timing pipeline on every scheme, validated
 *  against the golden-model console output. */

#include <tuple>

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;
using core::CoreConfig;
using core::RegfileModel;
using core::WakeupModel;

/** (workload, wakeup, regfile) combinations for the full-pipe runs. */
using PipeParam = std::tuple<std::string, WakeupModel, RegfileModel>;

class FullPipe : public ::testing::TestWithParam<PipeParam>
{};

TEST_P(FullPipe, TimingRunPreservesArchitecturalResults)
{
    auto [name, wakeup, regfile] = GetParam();
    auto w = workloads::make(name, workloads::Scale::Test);

    CoreConfig cfg = core::fourWideConfig();
    cfg.wakeup = wakeup;
    cfg.regfile = regfile;

    sim::Simulation s(w.program, cfg);
    s.run(20000000);
    ASSERT_TRUE(s.emulator().halted()) << name;
    // The timing core consumed the committed stream to completion and
    // the emulator produced the golden checksum on the way.
    EXPECT_EQ(s.emulator().console(), w.expectedConsole) << name;
    EXPECT_EQ(s.core().stats().committed.value(),
              s.emulator().instCount());
    EXPECT_GT(s.ipc(), 0.1);
    EXPECT_LE(s.ipc(), 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, FullPipe,
    ::testing::Values(
        PipeParam{"bzip", WakeupModel::Conventional,
                  RegfileModel::TwoPort},
        PipeParam{"bzip", WakeupModel::Sequential,
                  RegfileModel::SequentialAccess},
        PipeParam{"mcf", WakeupModel::TagElimination,
                  RegfileModel::TwoPort},
        PipeParam{"perl", WakeupModel::Sequential,
                  RegfileModel::TwoPort},
        PipeParam{"gcc", WakeupModel::SequentialNoPred,
                  RegfileModel::TwoPort},
        PipeParam{"vpr", WakeupModel::Conventional,
                  RegfileModel::HalfPortCrossbar},
        PipeParam{"eon", WakeupModel::Sequential,
                  RegfileModel::ExtraStage},
        PipeParam{"twolf", WakeupModel::Conventional,
                  RegfileModel::SequentialAccess}));

class AllBenchTiming : public ::testing::TestWithParam<std::string>
{};

TEST_P(AllBenchTiming, BaseMachineIpcInPlausibleBand)
{
    auto w = workloads::make(GetParam(), workloads::Scale::Test);
    sim::Simulation s(w.program, core::fourWideConfig());
    s.run(20000000);
    ASSERT_TRUE(s.emulator().halted());
    // Table 2 base IPCs range 0.71-2.02 on the 4-wide machine; allow
    // a wider band for the substitutes.
    EXPECT_GT(s.ipc(), 0.3) << GetParam();
    EXPECT_LT(s.ipc(), 3.9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, AllBenchTiming,
    ::testing::ValuesIn(workloads::benchmarkNames()));

TEST(Integration, SchemesDegradeGracefullyOnRealKernel)
{
    // Figure 16's qualitative claim: the combined techniques stay
    // close to base performance on real workloads.
    auto w = workloads::make("gzip", workloads::Scale::Test);

    sim::Simulation base(w.program, core::fourWideConfig());
    base.run(20000000);

    CoreConfig comb = core::fourWideConfig();
    comb.wakeup = WakeupModel::Sequential;
    comb.regfile = RegfileModel::SequentialAccess;
    sim::Simulation half(w.program, comb);
    half.run(20000000);

    ASSERT_TRUE(base.emulator().halted());
    ASSERT_TRUE(half.emulator().halted());
    double ratio = half.ipc() / base.ipc();
    EXPECT_LE(ratio, 1.001);
    EXPECT_GT(ratio, 0.85);
}

TEST(Integration, EightWideRunsEveryScheme)
{
    auto w = workloads::make("parser", workloads::Scale::Test);
    for (auto wakeup :
         {WakeupModel::Conventional, WakeupModel::Sequential,
          WakeupModel::SequentialNoPred, WakeupModel::TagElimination}) {
        CoreConfig cfg = core::eightWideConfig();
        cfg.wakeup = wakeup;
        sim::Simulation s(w.program, cfg);
        s.run(20000000);
        ASSERT_TRUE(s.emulator().halted());
        EXPECT_EQ(s.emulator().console(), w.expectedConsole);
    }
}

TEST(Integration, LastArrivalMonitorPopulatedOnRealKernel)
{
    auto w = workloads::make("bzip", workloads::Scale::Test);
    sim::Simulation s(w.program, core::fourWideConfig());
    s.run(20000000);
    const auto &mon = s.core().lapMonitor();
    EXPECT_GT(mon.samples(), 100u);
    // Larger tables should not be (much) worse than smaller ones.
    EXPECT_GE(mon.accuracy(3) + 0.05, mon.accuracy(0));
}

} // namespace
